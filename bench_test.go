// Package repro's benchmark harness regenerates every figure and
// evaluation claim of "Interoperable Web Services for Computational
// Portals" (SC 2002). The paper reports no numeric tables — its evaluation
// is the set of interoperability exercises and qualitative costs — so each
// benchmark quantifies one claim's *shape* (who wins, by what factor,
// where growth bites). EXPERIMENTS.md maps benchmark output to the paper's
// statements. Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appws"
	"repro/internal/authsvc"
	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/databind"
	"repro/internal/gateway"
	"repro/internal/grid"
	"repro/internal/gss"
	"repro/internal/jobsub"
	"repro/internal/portal"
	"repro/internal/portlet"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/schemawizard"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
	"repro/internal/uddi"
	"repro/internal/wal"
	"repro/internal/webflow"
	"repro/internal/wsdl"
	"repro/internal/xmlregistry"
)

// ---------------------------------------------------------------------------
// FIG1 — Figure 1: UI server -> UDDI find -> bind SSP -> SOAP invoke.
// Decomposes the cost of breaking the stovepipe: direct call, SOAP hop,
// and full discovery+bind+invoke.
// ---------------------------------------------------------------------------

func fig1Fixture(b *testing.B) (gen *batchscript.Generator, cl *batchscript.Client,
	reg *uddi.Registry, tr soap.Transport, tmKey string) {
	b.Helper()
	gen = batchscript.NewIUGenerator()
	ssp := core.NewProvider("iu-ssp", "loopback://iu")
	ssp.MustRegister(batchscript.NewService(gen))
	tr = ssp.Loopback()
	cl = batchscript.NewClient(tr, "loopback://iu/BatchScriptGenerator")
	reg = uddi.NewRegistry()
	biz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "IU"})
	if _, err := batchscript.PublishUDDI(reg, biz.Key, "IU BSG",
		"loopback://iu/BatchScriptGenerator", gen); err != nil {
		b.Fatal(err)
	}
	tm, _ := reg.TModelByName(batchscript.TModelName)
	return gen, cl, reg, tr, tm.Key
}

var benchRequest = batchscript.Request{
	Scheduler: grid.PBS, JobName: "bench", Executable: "/bin/date",
	Queue: "batch", Nodes: 4, WallTime: time.Hour,
}

func BenchmarkFigure1_DirectCall(b *testing.B) {
	gen, _, _, _, _ := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(benchRequest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_SOAPInvoke(b *testing.B) {
	_, cl, _, _, _ := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.GenerateScript(benchRequest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_SOAPInvoke_Gateway is the same SOAP hop routed through
// the federated front door: mount by WSIL/WSDL crawl, consistent-hash
// ring lookup, breaker admission, forward, relay. The delta against
// BenchmarkFigure1_SOAPInvoke is the price of federation.
func BenchmarkFigure1_SOAPInvoke_Gateway(b *testing.B) {
	srv := rpc.NewServer("bench", "http://backend.bench")
	srv.Provider("/ssp").MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	gw := gateway.New("gw", "http://gw.bench")
	gw.Fetch = func(u string) (string, error) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, u, nil))
		if rec.Code != http.StatusOK {
			return "", fmt.Errorf("GET %s: HTTP %d", u, rec.Code)
		}
		return rec.Body.String(), nil
	}
	gw.Forward = &gateway.TransportForwarder{RT: srv.Transport().(soap.RawTransport)}
	if err := gw.Mount("http://backend.bench"); err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	cl := batchscript.NewClient(gw.Loopback(), "http://gw.bench/ssp/BatchScriptGenerator")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.GenerateScript(benchRequest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_SOAPInvoke_Durable prices durability on the SOAP write
// path: the same publish (saveBusiness) against an in-memory registry, a
// WAL-backed registry with group-committed fsyncs, and — to separate record
// framing from the fsync itself — a WAL with sync disabled. The in-memory
// sub-benchmark doubles as the no-regression control: with -data unset the
// persistence seam is a nil binding, so it must track the historical
// in-memory publish cost.
func BenchmarkFigure1_SOAPInvoke_Durable(b *testing.B) {
	run := func(b *testing.B, attach func(*uddi.Registry) error) {
		reg := uddi.NewRegistry()
		if err := attach(reg); err != nil {
			b.Fatal(err)
		}
		ssp := core.NewProvider("uddi-bench", "loopback://uddi")
		ssp.MustRegister(uddi.NewService(reg))
		cl := uddi.NewClient(ssp.Loopback(), "loopback://uddi/UDDIRegistry")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.SaveBusiness(fmt.Sprintf("biz-%d", i), "durability bench"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := reg.ClosePersist(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("publish-memory", func(b *testing.B) {
		run(b, func(*uddi.Registry) error { return nil })
	})
	b.Run("publish-wal-fsync", func(b *testing.B) {
		run(b, func(r *uddi.Registry) error {
			l, err := wal.Open(b.TempDir(), wal.Options{})
			if err != nil {
				return err
			}
			return r.Persist(l)
		})
	})
	b.Run("publish-wal-nosync", func(b *testing.B) {
		run(b, func(r *uddi.Registry) error {
			l, err := wal.Open(b.TempDir(), wal.Options{NoSync: true})
			if err != nil {
				return err
			}
			return r.Persist(l)
		})
	})
}

func BenchmarkFigure1_DiscoveryBindInvoke(b *testing.B) {
	_, _, reg, tr, tmKey := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		services := reg.FindServiceByTModel(tmKey)
		if len(services) != 1 {
			b.Fatal("discovery failed")
		}
		cl := batchscript.NewClient(tr, services[0].Bindings[0].AccessPoint)
		if _, err := cl.GenerateScript(benchRequest); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// S3.1a — Globusrun WS: plain-string method vs XML multi-job batching.
// The XML DTD lets N jobs ride one request; per-job cost falls with N.
// ---------------------------------------------------------------------------

func globusrunFixture(b *testing.B) *jobsub.GlobusrunClient {
	b.Helper()
	g := grid.NewTestbed()
	g.Authorize("bench@GRID")
	ssp := core.NewProvider("ssp", "loopback://grid")
	ssp.MustRegister(jobsub.NewGlobusrunService(g, "bench@GRID"))
	return jobsub.NewGlobusrunClient(ssp.Loopback(), "loopback://grid/Globusrun")
}

func BenchmarkS31_JobSubmission_PlainStrings(b *testing.B) {
	cl := globusrunFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run("modi4.ncsa.uiuc.edu", "&(executable=/bin/hostname)"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkS31_JobSubmission_XMLMultiJob(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			cl := globusrunFixture(b)
			jobs := make([]jobsub.JobRequest, n)
			for i := range jobs {
				jobs[i] = jobsub.JobRequest{
					Host: "modi4.ncsa.uiuc.edu",
					Spec: grid.JobSpec{Executable: "/bin/hostname"},
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := cl.RunXML(jobs)
				if err != nil || len(results) != n {
					b.Fatalf("results=%d err=%v", len(results), err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/job")
		})
	}
}

// S3.1b — Service composition: the batch-job WS calling the Globusrun WS
// adds one full SOAP hop per request.
func BenchmarkS31_ServiceComposition(b *testing.B) {
	inner := globusrunFixture(b)
	batchSSP := core.NewProvider("batch", "loopback://batch")
	batchSSP.MustRegister(jobsub.NewBatchJobService(inner))
	outer := jobsub.NewBatchJobClient(batchSSP.Loopback(),
		"loopback://batch/BatchJobSubmission")
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inner.Run("modi4.ncsa.uiuc.edu", "&(executable=/bin/hostname)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("composed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := outer.SubmitBatch("modi4.ncsa.uiuc.edu", "/bin/hostname"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// S3.1c — The IU flavour: direct mini-ORB call vs the SOAP->IIOP bridge.
func BenchmarkS31_WebFlowBridge(b *testing.B) {
	g := grid.NewTestbed()
	g.Authorize("bench@GRID")
	wfServer := webflow.NewServer()
	wfServer.RegisterServant(webflow.JobSubmissionKey, &webflow.JobSubmissionModule{Grid: g})
	if _, err := wfServer.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer wfServer.Close()
	orb := webflow.InitORB()
	defer orb.Shutdown()
	ref, err := orb.Resolve(wfServer.IOR(webflow.JobSubmissionKey))
	if err != nil {
		b.Fatal(err)
	}
	bridgeSvc, err := jobsub.NewWebFlowBridgeService(orb, wfServer.IOR(webflow.JobSubmissionKey), "bench@GRID")
	if err != nil {
		b.Fatal(err)
	}
	ssp := core.NewProvider("iu", "loopback://iu")
	ssp.MustRegister(bridgeSvc)
	soapClient := core.NewClient(ssp.Loopback(),
		"loopback://iu/WebFlowJobSubmission", jobsub.WebFlowBridgeContract())

	b.Run("direct-orb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ref.Invoke("runJob", "bench@GRID", "hpc-sge.iu.edu", "&(executable=/bin/hostname)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soap-bridge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := soapClient.CallText("runJob",
				soap.Str("host", "hpc-sge.iu.edu"),
				soap.Str("rsl", "&(executable=/bin/hostname)"))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// S3.2 — SRB transfer: "simply streaming the file as a string ... does not
// scale well". String-streaming vs chunked, across sizes; MB/s reported.
// ---------------------------------------------------------------------------

func srbFixture(b *testing.B, size int) (*srbws.Client, string) {
	b.Helper()
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("bench")
	data := strings.Repeat("x", size)
	if err := broker.Sput("bench", home+"/payload", data, ""); err != nil {
		b.Fatal(err)
	}
	ssp := core.NewProvider("srb", "loopback://srb")
	ssp.MustRegister(srbws.NewService(broker, "bench"))
	return srbws.NewClient(ssp.Loopback(), "loopback://srb/SRBService"), home
}

var transferSizes = []int{1 << 10, 64 << 10, 1 << 20, 4 << 20}

func BenchmarkS32_SRBTransfer_StringStream(b *testing.B) {
	for _, size := range transferSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			cl, home := srbFixture(b, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := cl.Get(home + "/payload")
				if err != nil || len(data) != size {
					b.Fatalf("len=%d err=%v", len(data), err)
				}
			}
		})
	}
}

func BenchmarkS32_SRBTransfer_Chunked64K(b *testing.B) {
	for _, size := range transferSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			cl, home := srbFixture(b, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := cl.GetChunked(home+"/payload", 64<<10)
				if err != nil || len(data) != size {
					b.Fatalf("len=%d err=%v", len(data), err)
				}
			}
		})
	}
}

func BenchmarkS32_SRBPut_StringStream(b *testing.B) {
	for _, size := range transferSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			cl, home := srbFixture(b, 1)
			payload := strings.Repeat("y", size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Put(home+"/up", payload, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}

// ---------------------------------------------------------------------------
// S3.3 — Decoupling the script generator from the context manager forced
// "artificial contexts (sessions) for HotPage users", which "introduced
// unnecessary overhead". Integrated reuse vs per-call placeholder creation
// vs the standalone (decoupled, stateless) service.
// ---------------------------------------------------------------------------

func BenchmarkS33_ArtificialContext(b *testing.B) {
	newCoupled := func() *core.Client {
		store := contextmgr.NewStore()
		if err := store.CreatePlaceholder("gateway-user", "cfd", "session1"); err != nil {
			b.Fatal(err)
		}
		ssp := core.NewProvider("ssp", "loopback://x")
		ssp.MustRegister(batchscript.NewCoupledService(batchscript.NewIUGenerator(), store))
		return core.NewClient(ssp.Loopback(), "x", batchscript.CoupledContract())
	}
	genArgs := func(user, problem, session string) []soap.Value {
		return []soap.Value{
			soap.Str("user", user), soap.Str("problem", problem), soap.Str("session", session),
			soap.Str("scheduler", "PBS"), soap.Str("jobName", "j"), soap.Str("executable", "/bin/date"),
			soap.StrArray("arguments", nil), soap.Str("stdin", ""), soap.Str("queue", "batch"),
			soap.Int("nodes", 1), soap.Int("wallTimeSeconds", 600),
		}
	}
	b.Run("integrated-reuse", func(b *testing.B) {
		// A Gateway user with a long-lived session: context exists once.
		cl := newCoupled()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Call("generateScript", genArgs("gateway-user", "cfd", "session1")...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("placeholder-per-call", func(b *testing.B) {
		// A HotPage user: every call first manufactures an artificial
		// session through the context manager service.
		store := contextmgr.NewStore()
		ssp := core.NewProvider("ssp", "loopback://x")
		ssp.MustRegister(batchscript.NewCoupledService(batchscript.NewIUGenerator(), store))
		ssp.MustRegister(contextmgr.NewMonolithService(store))
		tr := ssp.Loopback()
		gen := core.NewClient(tr, "x", batchscript.CoupledContract())
		ctx := core.NewClient(tr, "x", contextmgr.MonolithContract())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			session := fmt.Sprintf("tmp-%d", i)
			if _, err := ctx.Call("createPlaceholderContext",
				soap.Str("user", "hotpage-user"), soap.Str("problem", "generic"), soap.Str("session", session)); err != nil {
				b.Fatal(err)
			}
			if _, err := gen.Call("generateScript", genArgs("hotpage-user", "generic", session)...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decoupled-stateless", func(b *testing.B) {
		// The redesigned independent service: no context at all.
		ssp := core.NewProvider("ssp", "loopback://x")
		ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
		cl := batchscript.NewClient(ssp.Loopback(), "x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.GenerateScript(batchscript.Request{
				Scheduler: grid.PBS, Executable: "/bin/date", Queue: "batch",
				Nodes: 1, WallTime: 10 * time.Minute,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// S3.4 — Discovery: UDDI string-convention search vs the proposed XML
// container-hierarchy registry's typed query, at growing registry sizes.
// (Precision is asserted in the uddi and xmlregistry package tests; here
// the latency shape.)
// ---------------------------------------------------------------------------

func BenchmarkS34_Discovery(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		reg := uddi.NewRegistry()
		biz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "GCE"})
		xreg := xmlregistry.NewRegistry()
		for i := 0; i < n; i++ {
			scheds := []string{"PBS"}
			if i%2 == 0 {
				scheds = []string{"LSF", "NQS"}
			}
			if _, err := reg.SaveService(uddi.BusinessService{
				BusinessKey: biz.Key,
				Name:        fmt.Sprintf("svc-%d", i),
				Description: uddi.DescribeCapabilities("generator", scheds),
			}); err != nil {
				b.Fatal(err)
			}
			props := []xmlregistry.Property{{Name: "interface", Value: batchscript.TModelName}}
			for _, s := range scheds {
				props = append(props, xmlregistry.Property{Name: "supportedScheduler", Value: s})
			}
			if err := xreg.Put(fmt.Sprintf("services/grp%d/svc%d", i%10, i), "service", props); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("uddi-convention/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := reg.FindByParsedConvention("NQS"); len(got) != n/2+n%2 {
					b.Fatalf("matches=%d", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("xmlregistry-typed/n=%d", n), func(b *testing.B) {
			q := xmlregistry.Query{
				Type:       "service",
				PropEquals: []xmlregistry.Property{{Name: "supportedScheduler", Value: "NQS"}},
			}
			for i := 0; i < b.N; i++ {
				got, err := xreg.Find(q)
				if err != nil || len(got) != n/2+n%2 {
					b.Fatalf("matches=%d err=%v", len(got), err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// FIG2 — The atomic authentication step: cost of SAML assertion signing +
// Authentication Service verification per call, local and over SOAP.
// ---------------------------------------------------------------------------

func authFixture(b *testing.B) (*authsvc.ClientSession, *authsvc.Service, *authsvc.Client) {
	b.Helper()
	kdc := gss.NewKDC("GRID")
	kdc.AddPrincipal("bench", "pw")
	kdc.AddPrincipal("authsvc/grid", "sk")
	kt, err := kdc.Keytab("authsvc/grid")
	if err != nil {
		b.Fatal(err)
	}
	service := authsvc.NewService(kt)
	authSSP := core.NewProvider("auth", "loopback://auth")
	authSSP.MustRegister(authsvc.NewSOAPService(service))
	remote := authsvc.NewClient(authSSP.Loopback(),
		"loopback://auth/AuthenticationService")
	session, err := authsvc.Login(kdc, "bench", "pw", "authsvc/grid", service.EstablishSession, nil)
	if err != nil {
		b.Fatal(err)
	}
	return session, service, remote
}

func echoDef() *rpc.Def {
	return &rpc.Def{
		Name: "Echo", NS: "urn:bench:echo",
		Ops: []rpc.Op{{
			Name: "ping",
			Out:  []wsdl.Param{rpc.Str("pong")},
			Handle: func(ctx *core.Context, _ rpc.Args) ([]interface{}, error) {
				return rpc.Ret(ctx.Principal), nil
			},
		}},
	}
}

func echoProvider(mw core.Middleware) *core.Provider {
	p := core.NewProvider("spp", "loopback://spp")
	if mw != nil {
		p.Use(mw)
	}
	p.MustRegister(echoDef().MustBuild())
	return p
}

func echoClient(p *core.Provider) *core.Client {
	return core.NewClient(p.Loopback(), "x", echoDef().Interface())
}

func BenchmarkFig2_AuthOverhead(b *testing.B) {
	session, service, remote := authFixture(b)
	b.Run("unauthenticated", func(b *testing.B) {
		cl := echoClient(echoProvider(nil))
		for i := 0; i < b.N; i++ {
			if _, err := cl.CallText("ping"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("saml-local-verify", func(b *testing.B) {
		cl := echoClient(echoProvider(authsvc.RequireAssertion(&authsvc.LocalVerifier{Service: service})))
		cl.Use(session.Interceptor())
		for i := 0; i < b.N; i++ {
			if _, err := cl.CallText("ping"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("saml-forwarded-verify", func(b *testing.B) {
		// The paper's deployment: the SPP forwards each assertion to the
		// Authentication Service over SOAP.
		cl := echoClient(echoProvider(authsvc.RequireAssertion(remote)))
		cl.Use(session.Interceptor())
		for i := 0; i < b.N; i++ {
			if _, err := cl.CallText("ping"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// FIG3 — Schema wizard: schema -> SOM -> widgets -> form, and the form ->
// instance -> reload round trip, as schema size grows.
// ---------------------------------------------------------------------------

func wizardSchema(fields int) string {
	var b strings.Builder
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="app"><xs:complexType><xs:sequence>`)
	for i := 0; i < fields; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, `<xs:element name="text%d" type="xs:string" default="v"/>`, i)
		case 1:
			fmt.Fprintf(&b, `<xs:element name="num%d" type="xs:int" default="1"/>`, i)
		case 2:
			fmt.Fprintf(&b, `<xs:element name="enum%d"><xs:simpleType><xs:restriction base="xs:string"><xs:enumeration value="a"/><xs:enumeration value="b"/></xs:restriction></xs:simpleType></xs:element>`, i)
		default:
			fmt.Fprintf(&b, `<xs:element name="list%d" type="xs:string" maxOccurs="unbounded" minOccurs="0"/>`, i)
		}
	}
	b.WriteString(`</xs:sequence></xs:complexType></xs:element></xs:schema>`)
	return b.String()
}

func BenchmarkFig3_SchemaWizard(b *testing.B) {
	for _, fields := range []int{5, 25, 100} {
		doc := wizardSchema(fields)
		b.Run(fmt.Sprintf("parse/fields=%d", fields), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := databind.ParseSchema(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		schema, err := databind.ParseSchema(doc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("render-form/fields=%d", fields), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				page := schemawizard.RenderForm("/x", schema.Roots[0], nil)
				if len(page) == 0 {
					b.Fatal("empty page")
				}
			}
		})
		b.Run(fmt.Sprintf("instance-roundtrip/fields=%d", fields), func(b *testing.B) {
			obj := databind.NewDataObject(schema.Roots[0])
			for j := 0; j < fields; j++ {
				if j%4 == 2 {
					if err := obj.SetField(fmt.Sprintf("enum%d", j), "a"); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				el := obj.Marshal()
				if _, err := databind.Unmarshal(schema.Roots[0], el); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// S5.2 — "Converting all of the Castor methods to WSDL ... is not really a
// practical interface": adapter facade vs raw accessor walk for the same
// job preparation, plus the method-count gap reported as a metric.
// ---------------------------------------------------------------------------

func BenchmarkS52_AdapterFacade(b *testing.B) {
	desc := &appws.Descriptor{
		Name: "Gaussian", Version: "98",
		Hosts: []appws.HostBinding{{
			DNS: "bluehorizon.sdsc.edu", IP: "1.2.3.4",
			Executable: "/usr/local/bin/gaussian",
			Queue:      appws.QueueBinding{Scheduler: grid.LSF, Queue: "normal", MaxNodes: 64, MaxWallTime: 4 * time.Hour},
		}},
	}
	schema, err := databind.ParseSchema(wizardSchema(24))
	if err != nil {
		b.Fatal(err)
	}
	generated := len(databind.AccessorNames(schema.Roots[0]))
	facade := len(appws.AdapterMethodNames())
	b.Run("facade", func(b *testing.B) {
		b.ReportMetric(float64(facade), "methods")
		for i := 0; i < b.N; i++ {
			a := appws.NewAdapter(desc)
			if err := a.ChooseHost("bluehorizon.sdsc.edu"); err != nil {
				b.Fatal(err)
			}
			_ = a.SetNodes(8)
			a.SetWallTime(time.Hour)
			a.SetArguments([]string{"-v"})
			if _, _, err := a.RunRequest(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated-accessors", func(b *testing.B) {
		b.ReportMetric(float64(generated), "methods")
		for i := 0; i < b.N; i++ {
			obj := databind.NewDataObject(schema.Roots[0])
			for j := 0; j < 24; j += 4 {
				if err := obj.SetField(fmt.Sprintf("text%d", j), "value"); err != nil {
					b.Fatal(err)
				}
			}
			if obj.Marshal() == nil {
				b.Fatal("nil marshal")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// S5.4 — Portlet aggregation: page assembly cost as portlet count grows
// (real HTTP fetches per portlet).
// ---------------------------------------------------------------------------

func BenchmarkS54_PortletAggregation(b *testing.B) {
	remote := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<p>content</p><a href="/next">next</a>`)
	}))
	defer remote.Close()
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("portlets=%d", n), func(b *testing.B) {
			c := portlet.NewContainer(remote.Client(), "/portal")
			for i := 0; i < n; i++ {
				if err := c.Register(portlet.Entry{
					Name: fmt.Sprintf("p%d", i), Type: "WebFormPortlet",
					URL: remote.URL + "/", Title: fmt.Sprintf("P%d", i),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page := c.RenderPage("bench")
				if strings.Count(page, `<table class="portlet"`) != n {
					b.Fatal("aggregation wrong")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// FIG4 — The portal shell: pipelines linking 1..3 core services.
// ---------------------------------------------------------------------------

func BenchmarkFig4_PortalShell(b *testing.B) {
	g := grid.NewTestbed()
	g.Authorize("bench@GRID")
	broker := srb.NewBroker("sdsc")
	broker.CreateUser("bench")
	ssp := core.NewProvider("ssp", "loopback://ssp")
	ssp.MustRegister(jobsub.NewGlobusrunService(g, "bench@GRID"))
	ssp.MustRegister(srbws.NewService(broker, "bench"))
	ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	tr := ssp.Loopback()
	sh := portal.NewStandardShell(portal.Services{
		Script:    batchscript.NewClient(tr, "loopback://ssp/BatchScriptGenerator"),
		Globusrun: jobsub.NewGlobusrunClient(tr, "loopback://ssp/Globusrun"),
		SRB:       srbws.NewClient(tr, "loopback://ssp/SRBService"),
	})
	pipelines := map[string]string{
		"1-stage": `genscript PBS batch 2 10 /bin/echo out`,
		"2-stage": `genscript PBS batch 2 10 /bin/echo out | submitscript modi4.ncsa.uiuc.edu PBS`,
		"3-stage": `genscript PBS batch 2 10 /bin/echo out | submitscript modi4.ncsa.uiuc.edu PBS | srbput /sdsc/home/bench/out`,
	}
	for _, name := range []string{"1-stage", "2-stage", "3-stage"} {
		line := pipelines[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sh.Run(line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation — raw messaging layer: envelope encode/decode and full loopback
// round trip, isolating the XML cost every experiment above pays.
// ---------------------------------------------------------------------------

func BenchmarkAblation_SOAPEnvelope(b *testing.B) {
	call := &soap.Call{ServiceNS: "urn:bench", Method: "op", Params: []soap.Value{
		soap.Str("a", strings.Repeat("x", 256)), soap.Int("b", 42), soap.Bool("c", true),
	}}
	// encode is the production request-encode path: the streamed
	// direct-to-buffer writer, no element tree.
	b.Run("encode", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			call.WireEnvelope().AppendTo(&buf)
			if buf.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
	// encode-tree is the pre-PR4 path kept as the oracle: build the
	// element tree, then render it.
	b.Run("encode-tree", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			call.Envelope().AppendTo(&buf)
			if buf.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
	// encode-response is the server-side hot path: the rpc kernel's typed
	// return values streamed straight to the wire.
	resp := &soap.Response{ServiceNS: "urn:bench", Method: "op", Returns: []soap.Value{
		soap.Str("result", strings.Repeat("y", 256)), soap.Int("count", 7),
	}}
	b.Run("encode-response", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			resp.WireEnvelope().AppendTo(&buf)
			if buf.Len() == 0 {
				b.Fatal("empty")
			}
		}
	})
	wire := call.Envelope().Render()
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env, err := soap.ParseEnvelope(wire)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := soap.ParseCall(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	// decode-stream is the treeless fast path over the same bytes: the
	// pooled cursor feeds parameter Values directly, no element tree. The
	// rpc kernel layers typed conversion on top of exactly this loop.
	wireBytes := []byte(wire)
	b.Run("decode-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := soap.AcquireBodyReader(wireBytes)
			_, _, ok := r.Begin()
			n := 0
			for ok {
				v, done, vok := r.ReadValue()
				if !vok {
					ok = false
					break
				}
				if done {
					break
				}
				_ = v
				n++
			}
			if !ok || !r.Finish() || n != 3 {
				r.Release()
				b.Fatal("stream decode outside subset")
			}
			r.Release()
		}
	})
}

// ---------------------------------------------------------------------------
// RESILIENCE — overhead of the end-to-end resilience layer. The serial
// variant is BenchmarkFigure1_SOAPInvoke with every production guard
// switched on: Deadline + LoadShed middleware on the provider, Retry +
// circuit breakers on the client. On the happy path nothing fires — the
// number here is the pure bookkeeping tax (context plumbing, admission
// accounting, breaker reads), and the acceptance bar is <=5% over the
// unguarded serial figure.
// ---------------------------------------------------------------------------

var benchGenerateParams = []soap.Value{
	soap.Str("scheduler", "PBS"), soap.Str("jobName", "bench"),
	soap.Str("executable", "/bin/date"), soap.StrArray("arguments", nil),
	soap.Str("stdin", ""), soap.Str("queue", "batch"),
	soap.Int("nodes", 4), soap.Int("wallTimeSeconds", 3600),
}

// resilientClient wraps the endpoint with the full client-side guard set.
// The policies are shared when callers pass the same pointers, matching how
// a portal binary configures one policy per downstream service.
func resilientClient(tr soap.Transport, endpoint string,
	retry *resilience.RetryPolicy, breakers *resilience.BreakerSet) *core.Client {
	cl := core.NewClient(tr, endpoint, batchscript.Contract())
	cl.Retry = retry
	cl.Breakers = breakers
	return cl
}

func benchRetryPolicy() *resilience.RetryPolicy {
	return &resilience.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond},
		Seed:        1,
	}
}

func benchBreakerSet() *resilience.BreakerSet {
	return &resilience.BreakerSet{Config: resilience.BreakerConfig{
		FailureThreshold: 5, OpenFor: 50 * time.Millisecond,
	}}
}

func BenchmarkFigure1_SOAPInvoke_Resilient(b *testing.B) {
	ssp := core.NewProvider("iu-ssp", "loopback://iu")
	ssp.Use(rpc.Deadline(time.Second))
	ssp.Use(rpc.LoadShed(64, 128))
	ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	cl := resilientClient(ssp.Loopback(), "loopback://iu/BatchScriptGenerator",
		benchRetryPolicy(), benchBreakerSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.CallText("generateScript", benchGenerateParams...); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// PARALLEL — multi-core scale-out tier. Every benchmark above drives the
// stack from one goroutine; these drive it from GOMAXPROCS goroutines via
// b.RunParallel so cross-request contention becomes visible. Run with
// -cpu 1,4,8 to trace the scaling curve; the sharded stores, the
// segmented response cache, and the lock-free stats collector are exactly
// the layers being contended on. Each sub-benchmark has a loopback variant
// (in-process dispatch, serialise+reparse for wire fidelity) and an http
// variant (real TCP through net/http).
// ---------------------------------------------------------------------------

// parallelServer assembles the full hosting stack (stats middleware,
// recovery, optional extra middleware) around the given services, exactly
// as the binaries do, so the parallel tier contends on everything a real
// deployment would.
func parallelServer(b *testing.B, svcs ...*core.Service) *rpc.Server {
	b.Helper()
	srv := rpc.NewServer("bench-par", "loopback://par")
	p := srv.Provider("")
	for _, svc := range svcs {
		p.MustRegister(svc)
	}
	return srv
}

// parallelHTTP exposes the server over real HTTP and returns a transport
// whose connection pool is wide enough that scaling measures the server,
// not the client's idle-connection limit.
func parallelHTTP(b *testing.B, srv *rpc.Server) (soap.Transport, string, func()) {
	b.Helper()
	hs := httptest.NewServer(srv.Handler())
	srv.SetBaseURL(hs.URL)
	hc := &http.Client{Transport: &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 128}}
	cleanup := func() {
		hc.CloseIdleConnections()
		hs.Close()
	}
	return &soap.HTTPTransport{Client: hc}, hs.URL, cleanup
}

func BenchmarkParallel_SOAPInvoke(b *testing.B) {
	run := func(b *testing.B, tr soap.Transport, endpoint string) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			cl := batchscript.NewClient(tr, endpoint)
			for pb.Next() {
				if _, err := cl.GenerateScript(benchRequest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("loopback", func(b *testing.B) {
		srv := parallelServer(b, batchscript.NewService(batchscript.NewIUGenerator()))
		run(b, srv.Transport(), "loopback://par/BatchScriptGenerator")
	})
	b.Run("http", func(b *testing.B) {
		srv := parallelServer(b, batchscript.NewService(batchscript.NewIUGenerator()))
		tr, base, cleanup := parallelHTTP(b, srv)
		defer cleanup()
		run(b, tr, base+"/BatchScriptGenerator")
	})
	// Full guard set under contention: Deadline + LoadShed admission on the
	// server, one shared RetryPolicy + BreakerSet across all client
	// goroutines — the shedder's admission counter and the breaker's shared
	// state are exactly the cross-request words being hammered.
	b.Run("loopback-resilient", func(b *testing.B) {
		srv := rpc.NewServer("bench-par", "loopback://par")
		p := srv.Provider("", rpc.Deadline(time.Second), rpc.LoadShed(256, 512))
		p.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
		retry, breakers := benchRetryPolicy(), benchBreakerSet()
		tr := srv.Transport()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			cl := resilientClient(tr, "loopback://par/BatchScriptGenerator", retry, breakers)
			for pb.Next() {
				if _, err := cl.CallText("generateScript", benchGenerateParams...); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func BenchmarkParallel_CachedInquiry(b *testing.B) {
	// Discovery traffic as uddiserver serves it: the response cache
	// memoises the repeated findServiceByTModel inquiry, so after one miss
	// every request is a cache hit — the benchmark measures whether hits
	// scale or serialise behind the cache's locking.
	setup := func(b *testing.B) (*core.Service, string) {
		reg := uddi.NewRegistry()
		biz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "IU"})
		gen := batchscript.NewIUGenerator()
		if _, err := batchscript.PublishUDDI(reg, biz.Key, "IU BSG",
			"loopback://par/BatchScriptGenerator", gen); err != nil {
			b.Fatal(err)
		}
		tm, _ := reg.TModelByName(batchscript.TModelName)
		svc := uddi.NewService(reg)
		cache := rpc.NewResponseCache(time.Minute, 4096)
		svc.Use(cache.Middleware(rpc.OpPrefixes("find", "get")))
		return svc, tm.Key
	}
	run := func(b *testing.B, tr soap.Transport, endpoint, tmKey string) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			cl := uddi.NewClient(tr, endpoint)
			for pb.Next() {
				services, err := cl.FindServiceByTModel(tmKey)
				if err != nil {
					b.Fatal(err)
				}
				if len(services) != 1 {
					b.Fatal("discovery failed")
				}
			}
		})
	}
	b.Run("loopback", func(b *testing.B) {
		svc, tmKey := setup(b)
		srv := parallelServer(b, svc)
		run(b, srv.Transport(), "loopback://par/UDDIRegistry", tmKey)
	})
	b.Run("http", func(b *testing.B) {
		svc, tmKey := setup(b)
		srv := parallelServer(b, svc)
		tr, base, cleanup := parallelHTTP(b, srv)
		defer cleanup()
		run(b, tr, base+"/UDDIRegistry", tmKey)
	})
}

func BenchmarkParallel_ContextReadWrite(b *testing.B) {
	// A portal's session-state traffic: each goroutine works its own user
	// subtree (own shard) with a 3-reads-per-write property mix through the
	// monolith SOAP interface. The pre-sharding store serialised every one
	// of these on a single store mutex.
	const users = 32 // enough for any -cpu value the tier is run at
	setup := func(b *testing.B) *core.Service {
		store := contextmgr.NewStore()
		for u := 0; u < users; u++ {
			path := []string{fmt.Sprintf("user-%d", u), "cfd", "session1"}
			for depth := 1; depth <= len(path); depth++ {
				if err := store.Create(path[:depth]); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.SetProp(path, "input", "deck-0"); err != nil {
				b.Fatal(err)
			}
		}
		return contextmgr.NewMonolithService(store)
	}
	run := func(b *testing.B, tr soap.Transport, endpoint string) {
		var next atomic.Int32
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			user := fmt.Sprintf("user-%d", int(next.Add(1)-1)%users)
			cl := core.NewClient(tr, endpoint, contextmgr.MonolithContract())
			pathArgs := []soap.Value{
				soap.Str("user", user), soap.Str("problem", "cfd"), soap.Str("session", "session1"),
			}
			i := 0
			for pb.Next() {
				var err error
				if i%4 == 0 {
					_, err = cl.Call("setSessionProperty",
						append(pathArgs, soap.Str("name", "input"), soap.Str("value", "deck-1"))...)
				} else {
					_, err = cl.Call("getSessionProperty",
						append(pathArgs, soap.Str("name", "input"))...)
				}
				if err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	}
	b.Run("loopback", func(b *testing.B) {
		srv := parallelServer(b, setup(b))
		run(b, srv.Transport(), "loopback://par/ContextManager")
	})
	b.Run("http", func(b *testing.B) {
		srv := parallelServer(b, setup(b))
		tr, base, cleanup := parallelHTTP(b, srv)
		defer cleanup()
		run(b, tr, base+"/ContextManager")
	})
}
