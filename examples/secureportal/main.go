// Command secureportal walks Figure 2's assertion-based authentication
// end to end: Kerberos login on the UI server, GSS context establishment
// with the Authentication Service, SAML-signed SOAP requests to a
// protected SOAP Service Provider, and the SPP forwarding each assertion
// to the Authentication Service for verification before serving the call.
package main

import (
	"fmt"
	"log"

	"repro/internal/authsvc"
	"repro/internal/gss"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
)

func main() {
	// --- Realm setup: KDC, principals, and the one keytab that only the
	// Authentication Service holds.
	kdc := gss.NewKDC("GRID.IU.EDU")
	kdc.AddPrincipal("cyoun", "hunter2")
	kdc.AddPrincipal("intruder", "password")
	kdc.AddPrincipal("authsvc/grids.iu.edu", "keytab-secret")
	keytab, err := kdc.Keytab("authsvc/grids.iu.edu")
	check(err)
	authService := authsvc.NewService(keytab)

	// One kernel server hosts both halves: the Authentication Service at
	// /auth, and the SAML-protected data SPP at /data — the auth
	// enforcement is a middleware on the /data provider only.
	srv := rpc.NewServer("secure-portal", "loopback://portal")
	srv.Provider("/auth").MustRegister(authsvc.NewSOAPService(authService))
	tr := srv.Transport()
	authClient := authsvc.NewClient(tr, "loopback://portal/auth/AuthenticationService")

	// --- A protected SPP hosting the SRB service. It holds no keys: it
	// forwards assertions to the Authentication Service.
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("cyoun")
	check(broker.Sput("cyoun", home+"/notes.txt", "grid secrets", ""))
	srv.Provider("/data", authsvc.RequireAssertion(authClient)).
		MustRegister(srbws.NewService(broker, "")) // authentication required
	dataTr := tr

	// --- Figure 2 step 1-2: login gets a ticket; the client session
	// object establishes a GSS context with the Authentication Service.
	session, err := authsvc.Login(kdc, "cyoun", "hunter2", "authsvc/grids.iu.edu",
		authClient.EstablishSession, nil)
	check(err)
	fmt.Printf("logged in as %s; auth session %s established\n", session.Principal, session.SessionID)

	// --- Step 3-4: SOAP requests carry signed assertions; the SPP
	// verifies through the Authentication Service and serves the call.
	srbClient := srbws.NewClient(dataTr, "loopback://portal/data/SRBService")
	srbClient.Use(session.Interceptor())
	data, err := srbClient.Get(home + "/notes.txt")
	check(err)
	fmt.Printf("authenticated read of %s/notes.txt: %q\n", home, data)

	// The atomic step in detail, for the log.
	assertion := session.NewAssertion(0)
	fmt.Println("\na signed assertion looks like:")
	fmt.Println(assertion.Element().RenderIndent())

	// --- Negative paths.
	// No assertion at all.
	bare := srbws.NewClient(dataTr, "loopback://portal/data/SRBService")
	if _, err := bare.Get(home + "/notes.txt"); err != nil {
		fmt.Println("request without assertion rejected: ", soap.AsPortalError(err).Code)
	}
	// A different user's signature cannot vouch for cyoun.
	other, err := authsvc.Login(kdc, "intruder", "password", "authsvc/grids.iu.edu",
		authClient.EstablishSession, nil)
	check(err)
	forged := other.NewAssertion(0)
	forged.Subject = "cyoun" // tampering breaks the MIC
	if _, err := authClient.Verify(forged); err != nil {
		fmt.Println("forged assertion rejected by Authentication Service")
	}
	// The intruder authenticates fine as themselves but SRB denies access
	// to cyoun's collection: authentication and authorization compose.
	intruderClient := srbws.NewClient(dataTr, "loopback://portal/data/SRBService")
	intruderClient.Use(other.Interceptor())
	if _, err := intruderClient.Get(home + "/notes.txt"); err != nil {
		fmt.Println("intruder read denied with portal code:", soap.AsPortalError(err).Code)
	}
	fmt.Printf("\nlive auth sessions at the service: %d\n", authService.SessionCount())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
