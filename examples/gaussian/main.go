// Command gaussian demonstrates the full Application Web Service lifecycle
// of Section 5 for the paper's canonical application: a Gaussian
// descriptor binds the code to the core services it needs; the schema
// wizard generates a user interface from the application schema; the user
// choices become a prepared instance that runs on the simulated grid and
// archives its output into SRB.
package main

import (
	"fmt"
	"log"
	"net/url"
	"strings"
	"time"

	"repro/internal/appws"
	"repro/internal/databind"
	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/rpc"
	"repro/internal/schemawizard"
	"repro/internal/srb"
	"repro/internal/srbws"
)

// gaussianSchema is the application-instance schema the wizard turns into
// a form.
const gaussianSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:gce:gaussian">
  <xs:element name="gaussianRun">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="method">
          <xs:simpleType>
            <xs:restriction base="xs:string">
              <xs:enumeration value="HF"/>
              <xs:enumeration value="B3LYP"/>
              <xs:enumeration value="MP2"/>
            </xs:restriction>
          </xs:simpleType>
        </xs:element>
        <xs:element name="basis" type="xs:int" default="6">
          <xs:annotation><xs:documentation>Basis set size</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="nodes" type="xs:int" default="4"/>
        <xs:element name="host" type="xs:string" default="bluehorizon.sdsc.edu"/>
        <xs:element name="molecule" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	// --- Substrate: grid + SRB behind SOAP services.
	g := grid.NewTestbed()
	g.Authorize("cyoun@IU.EDU")
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("cyoun")
	check(broker.Mkdir("cyoun", home+"/archives"))

	srv := rpc.NewServer("app", "loopback://ssp")
	ssp := srv.Provider("")
	ssp.MustRegister(jobsub.NewGlobusrunService(g, "cyoun@IU.EDU"))
	ssp.MustRegister(srbws.NewService(broker, "cyoun"))
	tr := srv.Transport()

	// --- The portal-independent application descriptor.
	manager := appws.NewManager(jobsub.NewGlobusrunClient(tr, "loopback://ssp/Globusrun"))
	manager.SRB = srbws.NewClient(tr, "loopback://ssp/SRBService")
	manager.ArchiveCollection = home + "/archives"
	check(manager.Register(&appws.Descriptor{
		Name: "Gaussian", Version: "98-A.7",
		Description: "Quantum chemistry package",
		Input:       appws.FieldBinding{Name: "inputDeck", Service: "SRBService", Location: home + "/decks"},
		Output:      appws.FieldBinding{Name: "logFile", Service: "SRBService", Location: home + "/archives"},
		Services:    []string{"Globusrun", "SRBService"},
		Hosts: []appws.HostBinding{{
			DNS: "bluehorizon.sdsc.edu", IP: "198.202.96.41",
			Executable: "/usr/local/bin/gaussian", WorkDir: "/scratch",
			Queue: appws.QueueBinding{Scheduler: grid.LSF, Queue: "normal", MaxNodes: 64, MaxWallTime: 4 * time.Hour},
		}},
	}))
	desc, _ := manager.Describe("Gaussian")
	fmt.Println("application descriptor (portal-independent):")
	fmt.Println(desc.Element().RenderIndent())

	// --- The schema wizard generates the user interface.
	parser := &schemawizard.SchemaParser{Fetch: func(string) (string, error) { return gaussianSchema, nil }}
	app, err := parser.Parse("http://schemas.gce.org/gaussian.xsd", "gaussian", "gaussianRun")
	check(err)
	fmt.Println("wizard widgets generated from the schema:")
	for _, w := range schemawizard.Widgets(app.Root) {
		fmt.Printf("  %-24s -> %s widget\n", w.Path, w.Kind)
	}

	// --- Simulated form submission (the user's choices).
	obj, err := schemawizard.ParseForm(app.Root, url.Values{
		"gaussianRun.method":   {"B3LYP"},
		"gaussianRun.basis":    {"8"},
		"gaussianRun.nodes":    {"8"},
		"gaussianRun.host":     {"bluehorizon.sdsc.edu"},
		"gaussianRun.molecule": {"water"},
	})
	check(err)
	app.SaveInstance("water-b3lyp", obj)
	fmt.Println("\nsaved instance document:")
	doc, _ := app.InstanceXML("water-b3lyp")
	fmt.Println(doc)

	// --- Prepare, run, archive.
	deck := fmt.Sprintf("# %s opt\nbasis=%s\n\n%s\n0 1\nO\nH 1 0.96\nH 1 0.96 2 104.5\n",
		obj.GetField("method"), obj.GetField("basis"), obj.GetField("molecule"))
	inst, err := manager.Prepare("Gaussian", obj.GetField("host"), 8, time.Hour, nil, deck)
	check(err)
	fmt.Printf("prepared instance %s (state %s)\n", inst.ID, inst.State)
	check(manager.RunSynchronously(inst.ID))
	got, _ := manager.Instance(inst.ID)
	fmt.Printf("ran to %s; output:\n%s", got.State, indent(got.Stdout))
	location, err := manager.Archive(inst.ID)
	check(err)
	fmt.Println("archived output at", location)

	// --- The archive is readable back through the SRB service binding.
	data, err := manager.SRB.Get(location)
	check(err)
	if !strings.Contains(data, "SCF Done") {
		log.Fatal("archive did not preserve the SCF energy")
	}
	fmt.Println("\nsession archive round trip verified: SCF line present in SRB copy")
	fmt.Println("\ninstance metadata (the session-archive backbone):")
	fmt.Println(got.Element().RenderIndent())

	_ = databind.KindComplex // package linked for the wizard pipeline
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
