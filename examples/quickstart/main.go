// Command quickstart walks the Figure 1 flow end to end on one machine:
// start a UDDI registry and a SOAP Service Provider over real HTTP,
// publish a service, discover it through the registry, bind to its WSDL,
// and invoke it.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/batchscript"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/uddi"
)

func main() {
	// 1. A kernel-hosted SOAP Service Provider with the SDSC batch script
	// service (WSDL, WSIL, and /healthz come along for free).
	sdsc := rpc.NewServer("sdsc", "placeholder")
	sdsc.Provider("").MustRegister(batchscript.NewService(batchscript.NewSDSCGenerator()))
	sspServer := httptest.NewServer(sdsc.Handler())
	defer sspServer.Close()
	sdsc.SetBaseURL(sspServer.URL)
	fmt.Println("SSP running at     ", sspServer.URL)

	// 2. A UDDI registry, itself a SOAP web service.
	reg := uddi.NewRegistry()
	regSrv := rpc.NewServer("registry", "placeholder")
	regSrv.Provider("").MustRegister(uddi.NewService(reg))
	regServer := httptest.NewServer(regSrv.Handler())
	defer regServer.Close()
	regSrv.SetBaseURL(regServer.URL)
	fmt.Println("UDDI running at    ", regServer.URL)

	// 3. Publish: business, interface tModel, service binding.
	transport := &soap.HTTPTransport{Client: sspServer.Client()}
	uddiClient := uddi.NewClient(transport, regServer.URL+"/UDDIRegistry")
	bizKey, err := uddiClient.SaveBusiness("SDSC", "San Diego Supercomputer Center")
	check(err)
	tmKey, err := uddiClient.SaveTModel(batchscript.TModelName,
		"Agreed GCE batch script interface", sspServer.URL+"/BatchScriptGenerator?wsdl")
	check(err)
	_, err = uddiClient.SaveService(bizKey, "SDSC Batch Script Generator",
		uddi.DescribeCapabilities("HotPage script service.", []string{"LSF", "NQS"}),
		sspServer.URL+"/BatchScriptGenerator", []string{tmKey})
	check(err)
	fmt.Println("published service under tModel", tmKey[:24], "...")

	// 4. Discover: find every implementation of the agreed interface.
	found, err := uddiClient.FindServiceByTModel(tmKey)
	check(err)
	for _, s := range found {
		fmt.Printf("discovered %q at %s (capabilities: %v)\n",
			s.Name, s.Bindings[0].AccessPoint, uddi.ParseCapabilities(s.Description))
	}

	// 5. Bind dynamically from the provider's WSDL and invoke.
	endpoint := found[0].Bindings[0].AccessPoint
	tm, err := uddiClient.GetTModel(tmKey)
	check(err)
	fmt.Println("fetching WSDL from ", tm.OverviewURL)
	client, err := core.BindURL(transport, sspServer.Client(), tm.OverviewURL)
	check(err)
	if client.Endpoint != endpoint {
		log.Fatalf("WSDL endpoint %s != UDDI access point %s", client.Endpoint, endpoint)
	}
	bsClient := batchscript.NewClient(transport, endpoint)
	script, err := bsClient.GenerateScript(batchscript.Request{
		Scheduler:  grid.LSF,
		JobName:    "quickstart",
		Executable: "/usr/local/bin/matmul",
		Arguments:  []string{"512"},
		Queue:      "normal",
		Nodes:      8,
	})
	check(err)
	fmt.Println("\ngenerated LSF script through the discovered service:")
	fmt.Println(script)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
