// Command portlets demonstrates Section 5.4: a Jetspeed-style container
// aggregates remote user interfaces — here the schema wizard's generated
// Gaussian form and a HotPage-style machine status page — into one portal
// page, with per-user customisation and WebFormPortlet URL remapping so
// navigation stays inside the portlet window.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/grid"
	"repro/internal/portlet"
	"repro/internal/rpc"
	"repro/internal/schemawizard"
)

const runSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="gaussianRun">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="method">
          <xs:simpleType><xs:restriction base="xs:string">
            <xs:enumeration value="HF"/><xs:enumeration value="B3LYP"/>
          </xs:restriction></xs:simpleType>
        </xs:element>
        <xs:element name="nodes" type="xs:int" default="4"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	// --- Remote content source 1: a wizard-generated application form.
	parser := &schemawizard.SchemaParser{Fetch: func(string) (string, error) { return runSchema, nil }}
	app, err := parser.Parse("mem://gaussian.xsd", "gaussian", "gaussianRun")
	check(err)
	wizardMux := http.NewServeMux()
	app.Deploy(wizardMux)

	// Both content sources ride one kernel-hosted server: the wizard under
	// /wizard and the HotPage-style machine status page under /status.
	remote := rpc.NewServer("content", "placeholder")
	remote.Handle("/wizard/", http.StripPrefix("/wizard", wizardMux))

	// --- Remote content source 2: a HotPage-style machine status page.
	testbed := grid.NewTestbed()
	remote.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "<table border='1'><tr><th>host</th><th>scheduler</th><th>queues</th></tr>")
		for _, name := range testbed.HostNames() {
			h, _ := testbed.Host(name)
			var queues []string
			for _, qi := range h.Scheduler.Snapshot() {
				queues = append(queues, fmt.Sprintf("%s(q:%d r:%d)", qi.Queue.Name, qi.Queued, qi.Running))
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				name, h.Scheduler.Kind, strings.Join(queues, " "))
		}
		fmt.Fprintln(w, "</table>")
	})
	remoteServer := httptest.NewServer(remote.Handler())
	defer remoteServer.Close()
	remote.SetBaseURL(remoteServer.URL)

	// --- The portlet container, configured from an xreg document, exactly
	// as Jetspeed administrators edit local-portlets.xreg.
	xreg := portlet.RenderRegistry([]portlet.Entry{
		{Name: "gaussian-ui", Type: "WebFormPortlet", URL: remoteServer.URL + "/wizard/gaussian/", Title: "Gaussian (wizard UI)"},
		{Name: "machine-status", Type: "WebPagePortlet", URL: remoteServer.URL + "/status", Title: "HotPage Machine Status"},
	})
	fmt.Println("portlet registry (local-portlets.xreg):")
	fmt.Println(xreg)

	container := portlet.NewContainer(http.DefaultClient, "/portal")
	check(container.LoadRegistry(xreg))
	portalServer := httptest.NewServer(container)
	defer portalServer.Close()

	// --- Aggregate page for a user who wants both portlets.
	page := container.RenderPage("cyoun")
	fmt.Printf("aggregated page for cyoun: %d bytes, %d portlet tables\n",
		len(page), strings.Count(page, `<table class="portlet"`))
	if !strings.Contains(page, "Gaussian (wizard UI)") || !strings.Contains(page, "bluehorizon.sdsc.edu") {
		log.Fatal("aggregation missing expected content")
	}
	// The wizard form's action is remapped into the portlet window.
	if !strings.Contains(page, "/portal/portlet?name=gaussian-ui") {
		log.Fatal("WebFormPortlet URL remapping missing")
	}
	fmt.Println("wizard form action remapped through /portal/portlet — navigation stays in the window")

	// --- Another user customises down to one portlet.
	check(container.Customize("kurt", []string{"machine-status"}))
	kurtPage := container.RenderPage("kurt")
	fmt.Printf("kurt's customised page shows %d portlet(s)\n",
		strings.Count(kurtPage, `<table class="portlet"`))

	// --- Post the wizard form through the portlet (feature 1: form
	// parameters) and observe the created instance.
	resp, err := http.Post(
		portalServer.URL+"/portlet?name=gaussian-ui&user=cyoun&url="+
			urlQueryEscape(remoteServer.URL+"/wizard/gaussian/"),
		"application/x-www-form-urlencoded",
		strings.NewReader("gaussianRun.method=B3LYP&gaussianRun.nodes=8&_instanceName=from-portlet"))
	check(err)
	resp.Body.Close()
	names := app.InstanceNames()
	fmt.Printf("instances created through the portlet window: %v\n", names)
	doc, _ := app.InstanceXML("from-portlet")
	fmt.Println(doc)
}

func urlQueryEscape(s string) string {
	r := strings.NewReplacer(":", "%3A", "/", "%2F", "?", "%3F", "&", "%26", "=", "%3D")
	return r.Replace(s)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
