// Command batchinterop reproduces the Section 3.4 interoperability
// exercise: IU and SDSC deploy independent implementations of the agreed
// batch script interface, register them in UDDI with the string-convention
// capability descriptions, and a client searches by queuing system, binds
// to whichever provider supports it, generates a script, and finally runs
// the script on the matching simulated testbed machine.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/batchscript"
	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/uddi"
)

// hostFor maps each queuing system to its testbed machine.
var hostFor = map[grid.SchedulerKind]string{
	grid.PBS: "modi4.ncsa.uiuc.edu",
	grid.LSF: "bluehorizon.sdsc.edu",
	grid.NQS: "tcsini.psc.edu",
	grid.GRD: "hpc-sge.iu.edu",
}

func main() {
	// Two groups, two kernel-hosted servers, one agreed contract; one
	// transport routes to whichever server owns the endpoint.
	iuSrv := rpc.NewServer("iu", "loopback://iu")
	iuSrv.Provider("").MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	sdscSrv := rpc.NewServer("sdsc", "loopback://sdsc")
	sdscSrv.Provider("").MustRegister(batchscript.NewService(batchscript.NewSDSCGenerator()))
	tr := rpc.Transport(iuSrv, sdscSrv)

	// Publish both into UDDI.
	reg := uddi.NewRegistry()
	iu, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "IU Community Grids Lab"})
	sdsc, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "SDSC"})
	mustKey(batchscript.PublishUDDI(reg, iu.Key, "IU Batch Script Generator",
		"loopback://iu/BatchScriptGenerator", batchscript.NewIUGenerator()))
	mustKey(batchscript.PublishUDDI(reg, sdsc.Key, "SDSC Batch Script Generator",
		"loopback://sdsc/BatchScriptGenerator", batchscript.NewSDSCGenerator()))

	tm, _ := reg.TModelByName(batchscript.TModelName)
	fmt.Printf("UDDI holds %d implementations of %s\n\n",
		len(reg.FindServiceByTModel(tm.Key)), batchscript.TModelName)

	// The testbed the scripts will run on.
	testbed := grid.NewTestbed()

	// For every queuing system: discover a provider, generate, run.
	for _, kind := range grid.AllSchedulerKinds {
		providers := reg.FindByParsedConvention(string(kind))
		if len(providers) != 1 {
			log.Fatalf("%s: expected exactly one provider, found %d", kind, len(providers))
		}
		p := providers[0]
		fmt.Printf("== %s: served by %q ==\n", kind, p.Name)
		client := batchscript.NewClient(tr, p.Bindings[0].AccessPoint)
		script, err := client.GenerateScript(batchscript.Request{
			Scheduler:  kind,
			JobName:    "interop-" + string(kind),
			Executable: "/bin/echo",
			Arguments:  []string{"interop", "via", string(kind)},
			Nodes:      2,
			WallTime:   10 * time.Minute,
		})
		check(err)
		fmt.Print(script)

		// Run the generated script on the matching machine.
		host, _ := testbed.Host(hostFor[kind])
		spec, err := grid.ParseScript(kind, script)
		check(err)
		id, err := host.Scheduler.Submit(spec)
		check(err)
		host.Scheduler.Drain()
		job, _ := host.Scheduler.Status(id)
		fmt.Printf("ran on %s -> %s: %s\n", host.Name, job.State, job.Result.Stdout)
	}

	// And the paper's UDDI critique, live: a naive description search for
	// "PBS" also matches services that merely mention it.
	_, err := reg.SaveService(uddi.BusinessService{
		BusinessKey: iu.Key,
		Name:        "Migration Notes",
		Description: "Documentation for groups migrating away from PBS.",
	})
	check(err)
	naive := reg.FindByConvention("PBS")
	parsed := reg.FindByParsedConvention("PBS")
	fmt.Printf("UDDI precision: naive substring search for PBS returns %d services, parsed convention returns %d\n",
		len(naive), len(parsed))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustKey(key string, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = key
}
