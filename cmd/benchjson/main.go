// Command benchjson converts `go test -bench` text output into a JSON
// document, so the performance trajectory of the repository is machine
// readable across PRs. It reads the benchmark output on stdin and writes a
// JSON report to -o (default stdout):
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH.json
//
// Every metric pair the benchmark framework emits is kept, including custom
// b.ReportMetric values (ns/job, MB/s, methods, ...), keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -cpu suffix, e.g. "BenchmarkAblation_SOAPEnvelope/decode-8".
	Name string `json:"name"`
	// Runs is the iteration count the framework settled on.
	Runs int64 `json:"runs"`
	// Metrics maps unit to value, e.g. {"ns/op": 5376, "allocs/op": 19}.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	return r, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   43238   26633 ns/op   5816 B/op   104 allocs/op
//
// Metrics are (value, unit) pairs after the run count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
