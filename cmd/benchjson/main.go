// Command benchjson converts `go test -bench` text output into a JSON
// document, so the performance trajectory of the repository is machine
// readable across PRs. It reads the benchmark output on stdin and writes a
// JSON report to -o (default stdout):
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH.json
//
// Every metric pair the benchmark framework emits is kept, including custom
// b.ReportMetric values (ns/job, MB/s, methods, ...), keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -cpu suffix, e.g. "BenchmarkAblation_SOAPEnvelope/decode-8".
	Name string `json:"name"`
	// Runs is the iteration count the framework settled on.
	Runs int64 `json:"runs"`
	// Metrics maps unit to value, e.g. {"ns/op": 5376, "allocs/op": 19}.
	Metrics map[string]float64 `json:"metrics"`
}

// Breakdown summarises the raw-messaging ablation: where the XML cost of
// one SOAP round trip sits between encode and decode, and what the
// streamed encoder saves over the element-tree path. Derived from the
// BenchmarkAblation_SOAPEnvelope sub-benchmarks when present.
type Breakdown struct {
	// EncodeNsOp is the streamed (production) envelope encode cost.
	EncodeNsOp float64 `json:"encode_ns_op"`
	// EncodeTreeNsOp is the legacy element-tree encode cost, kept as the
	// differential oracle.
	EncodeTreeNsOp float64 `json:"encode_tree_ns_op,omitempty"`
	// DecodeNsOp is the envelope decode (scanner) cost.
	DecodeNsOp float64 `json:"decode_ns_op"`
	// EncodeAllocsOp / DecodeAllocsOp are the per-op allocation counts.
	EncodeAllocsOp float64 `json:"encode_allocs_op"`
	DecodeAllocsOp float64 `json:"decode_allocs_op"`
	// EncodeShare is encode/(encode+decode) in ns — the fraction of the
	// XML round-trip tax paid on the way out.
	EncodeShare float64 `json:"encode_share"`
}

// DecodePaths summarises the server-side decode split introduced by the
// treeless streaming path: what a request decode costs through the
// per-operation stream codecs against the pooled element-tree fallback
// that handles everything outside the streaming subset. Derived from the
// BenchmarkAblation_SOAPEnvelope "decode-stream" and "decode"
// sub-benchmarks when both are present.
type DecodePaths struct {
	// StreamNsOp / StreamAllocsOp are the fast-path costs: envelope
	// tokens straight into typed values, no element tree.
	StreamNsOp     float64 `json:"stream_ns_op"`
	StreamAllocsOp float64 `json:"stream_allocs_op"`
	// TreeNsOp / TreeAllocsOp are the fallback costs: the pooled tree
	// parse every out-of-subset request still takes.
	TreeNsOp     float64 `json:"tree_ns_op"`
	TreeAllocsOp float64 `json:"tree_allocs_op"`
	// Speedup is TreeNsOp/StreamNsOp — how much cheaper the fast path
	// makes the common case.
	Speedup float64 `json:"speedup"`
}

// ScalingPoint is one -cpu measurement of a parallel benchmark.
type ScalingPoint struct {
	// CPU is the GOMAXPROCS value the point ran at (the -cpu suffix; 1
	// when the framework omitted it).
	CPU int `json:"cpu"`
	// NsOp is the per-operation wall time at that parallelism.
	NsOp float64 `json:"ns_op"`
	// Speedup is throughput relative to this benchmark's lowest-CPU point:
	// ns_op(min cpu) / ns_op(this cpu). 1.0 at the base point; values
	// approaching the CPU ratio mean linear scaling, a flat 1.0 across the
	// curve means a shared lock is serialising the stack.
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// EncodeVsDecode is present when the SOAP envelope ablation ran.
	EncodeVsDecode *Breakdown `json:"encode_vs_decode,omitempty"`
	// DecodeFastVsFallback is present when the ablation ran with the
	// streaming decode sub-benchmark.
	DecodeFastVsFallback *DecodePaths `json:"decode_fast_vs_fallback,omitempty"`
	// ParallelScaling groups every BenchmarkParallel_* result into its
	// scaling curve across -cpu values, keyed by benchmark name with the
	// cpu suffix stripped. Present when the parallel tier ran.
	ParallelScaling map[string][]ScalingPoint `json:"parallel_scaling,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	r.EncodeVsDecode = breakdown(r.Benchmarks)
	r.DecodeFastVsFallback = decodePaths(r.Benchmarks)
	r.ParallelScaling = parallelScaling(r.Benchmarks)
	return r, sc.Err()
}

// cpuSuffix splits a full benchmark name into its base (the -cpu suffix
// stripped) and the GOMAXPROCS value it ran at. The framework omits the
// suffix when GOMAXPROCS is 1, so a name with no numeric suffix is a
// 1-CPU point.
func cpuSuffix(name string) (string, int) {
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], n
		}
	}
	return name, 1
}

// parallelScaling collects every BenchmarkParallel_* result into per-
// benchmark scaling curves ordered by CPU count, with speedups relative
// to each curve's lowest-CPU point. Nil when the parallel tier was not in
// the run.
func parallelScaling(benchmarks []Benchmark) map[string][]ScalingPoint {
	curves := map[string][]ScalingPoint{}
	for i := range benchmarks {
		if !strings.HasPrefix(benchmarks[i].Name, "BenchmarkParallel_") {
			continue
		}
		base, cpu := cpuSuffix(benchmarks[i].Name)
		pt := ScalingPoint{CPU: cpu, NsOp: benchmarks[i].Metrics["ns/op"]}
		// One point per CPU count, later measurement wins: when a run
		// concatenates a general bench pass with a dedicated -cpu sweep,
		// the sweep owns the curve.
		replaced := false
		for j, prev := range curves[base] {
			if prev.CPU == cpu {
				curves[base][j] = pt
				replaced = true
				break
			}
		}
		if !replaced {
			curves[base] = append(curves[base], pt)
		}
	}
	if len(curves) == 0 {
		return nil
	}
	for name, pts := range curves {
		sort.Slice(pts, func(a, b int) bool { return pts[a].CPU < pts[b].CPU })
		if base := pts[0].NsOp; base > 0 {
			for j := range pts {
				if pts[j].NsOp > 0 {
					pts[j].Speedup = base / pts[j].NsOp
				}
			}
		}
		curves[name] = pts
	}
	return curves
}

// subBenchName extracts the sub-benchmark segment of a full name,
// stripping the trailing -cpu suffix the framework appends:
// "BenchmarkX/encode-tree-8" -> "encode-tree".
func subBenchName(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// breakdown derives the encode-vs-decode summary from the envelope
// ablation sub-benchmarks, or nil when they are absent from the run.
func breakdown(benchmarks []Benchmark) *Breakdown {
	find := func(sub string) *Benchmark {
		for i := range benchmarks {
			if strings.Contains(benchmarks[i].Name, "Ablation_SOAPEnvelope/") &&
				subBenchName(benchmarks[i].Name) == sub {
				return &benchmarks[i]
			}
		}
		return nil
	}
	encode := find("encode")
	tree := find("encode-tree")
	decode := find("decode")
	if encode == nil || decode == nil {
		return nil
	}
	b := &Breakdown{
		EncodeNsOp:     encode.Metrics["ns/op"],
		DecodeNsOp:     decode.Metrics["ns/op"],
		EncodeAllocsOp: encode.Metrics["allocs/op"],
		DecodeAllocsOp: decode.Metrics["allocs/op"],
	}
	if tree != nil {
		b.EncodeTreeNsOp = tree.Metrics["ns/op"]
	}
	if total := b.EncodeNsOp + b.DecodeNsOp; total > 0 {
		b.EncodeShare = b.EncodeNsOp / total
	}
	return b
}

// decodePaths derives the fast-path-vs-fallback decode summary from the
// envelope ablation, or nil when the streaming sub-benchmark is absent.
func decodePaths(benchmarks []Benchmark) *DecodePaths {
	find := func(sub string) *Benchmark {
		for i := range benchmarks {
			if strings.Contains(benchmarks[i].Name, "Ablation_SOAPEnvelope/") &&
				subBenchName(benchmarks[i].Name) == sub {
				return &benchmarks[i]
			}
		}
		return nil
	}
	stream := find("decode-stream")
	tree := find("decode")
	if stream == nil || tree == nil {
		return nil
	}
	d := &DecodePaths{
		StreamNsOp:     stream.Metrics["ns/op"],
		StreamAllocsOp: stream.Metrics["allocs/op"],
		TreeNsOp:       tree.Metrics["ns/op"],
		TreeAllocsOp:   tree.Metrics["allocs/op"],
	}
	if d.StreamNsOp > 0 {
		d.Speedup = d.TreeNsOp / d.StreamNsOp
	}
	return d
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   43238   26633 ns/op   5816 B/op   104 allocs/op
//
// Metrics are (value, unit) pairs after the run count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
