package main

import (
	"bufio"
	"strings"
	"testing"
)

// TestParallelScaling pins the scaling-curve derivation: -cpu suffixes
// group into one curve per benchmark, points sort by CPU, and speedups
// are relative to the lowest-CPU point (which the framework emits with no
// suffix at all).
func TestParallelScaling(t *testing.T) {
	out := `
goos: linux
pkg: repro
BenchmarkParallel_SOAPInvoke/loopback         	  100000	     12000 ns/op	    3200 B/op	      31 allocs/op
BenchmarkParallel_SOAPInvoke/loopback-4       	  100000	      4000 ns/op	    3200 B/op	      31 allocs/op
BenchmarkParallel_SOAPInvoke/loopback-8       	  100000	      2000 ns/op	    3200 B/op	      31 allocs/op
BenchmarkFigure1_SOAPInvoke                   	  100000	     11000 ns/op	    2500 B/op	      28 allocs/op
BenchmarkParallel_SOAPInvoke/loopback-4       	  100000	      3000 ns/op	    3200 B/op	      31 allocs/op
`
	r, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(r.Benchmarks))
	}
	if len(r.ParallelScaling) != 1 {
		t.Fatalf("parallel_scaling has %d curves, want 1: %+v", len(r.ParallelScaling), r.ParallelScaling)
	}
	curve := r.ParallelScaling["BenchmarkParallel_SOAPInvoke/loopback"]
	if len(curve) != 3 {
		t.Fatalf("curve = %+v, want 3 points", curve)
	}
	// The later 3000 ns/op measurement at cpu=4 replaces the earlier
	// 4000 ns/op one: a dedicated -cpu sweep overrides a general pass.
	wantCPU := []int{1, 4, 8}
	wantSpeedup := []float64{1, 4, 6}
	for i, p := range curve {
		if p.CPU != wantCPU[i] || p.Speedup != wantSpeedup[i] {
			t.Fatalf("point %d = %+v, want cpu=%d speedup=%g", i, p, wantCPU[i], wantSpeedup[i])
		}
	}
}

// TestParallelScalingAbsent keeps the section out of serial-only reports.
func TestParallelScalingAbsent(t *testing.T) {
	out := "BenchmarkFigure1_SOAPInvoke \t 100000 \t 11000 ns/op\n"
	r, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if r.ParallelScaling != nil {
		t.Fatalf("parallel_scaling = %+v, want nil", r.ParallelScaling)
	}
}
