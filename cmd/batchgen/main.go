// Command batchgen is the interoperable batch-script client of Section
// 3.4: point it at any endpoint implementing the agreed WSDL interface
// (IU's or SDSC's) and generate a script. With no endpoint it runs an
// in-process generator.
//
//	batchgen -endpoint http://host:8080/ssp/BatchScriptGenerator \
//	    -scheduler PBS -queue batch -nodes 4 -wall 60 /usr/local/bin/app arg1
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/batchscript"
	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/soap"
)

func main() {
	endpoint := flag.String("endpoint", "", "remote service endpoint (empty: in-process IU+SDSC generator)")
	scheduler := flag.String("scheduler", "PBS", "queuing system: PBS, LSF, NQS, GRD")
	queue := flag.String("queue", "", "queue name")
	jobName := flag.String("name", "portaljob", "job name")
	nodes := flag.Int("nodes", 1, "node count")
	wall := flag.Int("wall", 60, "walltime in minutes")
	list := flag.Bool("list", false, "list supported schedulers and exit")
	flag.Parse()

	var client *batchscript.Client
	if *endpoint != "" {
		client = batchscript.NewClient(&soap.HTTPTransport{}, *endpoint)
	} else {
		// In-process: one generator covering all four dialects, hosted on
		// the kernel and reached through its loopback transport.
		gen := &batchscript.Generator{Group: "local", Supported: grid.AllSchedulerKinds}
		srv := rpc.NewServer("local", "loopback://local")
		srv.Provider("").MustRegister(batchscript.NewService(gen))
		client = batchscript.NewClient(srv.Transport(), "loopback://local/BatchScriptGenerator")
	}
	if *list {
		names, err := client.ListSchedulers()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("usage: batchgen [flags] <executable> [args...]")
	}
	script, err := client.GenerateScript(batchscript.Request{
		Scheduler:  grid.SchedulerKind(*scheduler),
		JobName:    *jobName,
		Executable: flag.Arg(0),
		Arguments:  flag.Args()[1:],
		Queue:      *queue,
		Nodes:      *nodes,
		WallTime:   time.Duration(*wall) * time.Minute,
	})
	if err != nil {
		if pe := soap.AsPortalError(err); pe != nil {
			log.Fatalf("portal error %s: %s", pe.Code, pe.Message)
		}
		log.Fatal(err)
	}
	fmt.Print(script)
}
