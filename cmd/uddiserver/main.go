// Command uddiserver runs a standalone UDDI registry as a SOAP web
// service, the discovery hub of Figure 1.
//
//	uddiserver -addr :8081
//	uddiserver -addr :8081 -data /var/lib/uddi   # durable: survives kill -9
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/rpc"
	"repro/internal/uddi"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "response cache TTL for find*/get* inquiries (0 disables)")
	flushToken := flag.String("flush-token", "", "enable the authenticated __flush cache-invalidation op with this shared token")
	dataDir := flag.String("data", "", "directory for the registry's write-ahead log; empty = in-memory only (state is lost on restart)")
	flag.Parse()
	registry := uddi.NewRegistry()
	if *dataDir != "" {
		l, err := wal.Open(*dataDir, wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := registry.Persist(l); err != nil {
			log.Fatalf("recover registry: %v", err)
		}
		b, s, t := registry.Counts()
		log.Printf("recovered registry from %s: %d businesses, %d services, %d tModels", *dataDir, b, s, t)
	}
	srv := rpc.NewServer("uddi", "http://localhost"+*addr)
	svc := uddi.NewService(registry)
	if *cacheTTL > 0 {
		// Discovery traffic is dominated by repeated find*/get* inquiries;
		// memoise them (publishes flush the cache automatically).
		cache := rpc.NewResponseCache(*cacheTTL, 4096)
		svc.Use(cache.Middleware(rpc.OpPrefixes("find", "get")))
		srv.Stats().RegisterCache("uddi", cache)
		if *flushToken != "" {
			// Let a federating gateway invalidate this replica's cache when
			// a write lands on a sibling node.
			srv.RegisterFlushCache(uddi.ServiceNS, cache)
			srv.EnableCacheFlush(*flushToken)
		}
	}
	srv.Provider("", rpc.Logging(nil)).MustRegister(svc)
	log.Printf("UDDI registry listening on %s (endpoint /UDDIRegistry, WSDL at /UDDIRegistry?wsdl, health at /healthz)", *addr)
	if err := srv.ListenAndServeGraceful(*addr, *drain); err != nil {
		log.Fatal(err)
	}
	if err := registry.ClosePersist(); err != nil {
		log.Printf("close registry log: %v", err)
	}
}
