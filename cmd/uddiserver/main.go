// Command uddiserver runs a standalone UDDI registry as a SOAP web
// service, the discovery hub of Figure 1.
//
//	uddiserver -addr :8081
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/uddi"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	flag.Parse()
	registry := uddi.NewRegistry()
	provider := core.NewProvider("uddi", "http://localhost"+*addr)
	provider.MustRegister(uddi.NewService(registry))
	log.Printf("UDDI registry listening on %s (endpoint /UDDIRegistry, WSDL at /UDDIRegistry?wsdl)", *addr)
	log.Fatal(http.ListenAndServe(*addr, provider))
}
