// Command uddiserver runs a standalone UDDI registry as a SOAP web
// service, the discovery hub of Figure 1.
//
//	uddiserver -addr :8081
package main

import (
	"flag"
	"log"

	"repro/internal/rpc"
	"repro/internal/uddi"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	flag.Parse()
	registry := uddi.NewRegistry()
	srv := rpc.NewServer("uddi", "http://localhost"+*addr)
	srv.Provider("", rpc.Logging(nil)).MustRegister(uddi.NewService(registry))
	log.Printf("UDDI registry listening on %s (endpoint /UDDIRegistry, WSDL at /UDDIRegistry?wsdl, health at /healthz)", *addr)
	log.Fatal(srv.ListenAndServe(*addr))
}
