// Command authserver runs the Figure 2 Authentication Service: the single
// well-secured holder of the service keytab, issuing sessions and
// verifying SAML assertions for SOAP Service Providers.
//
// Principals are supplied as repeated -principal name:password flags:
//
//	authserver -addr :8082 -realm GRID.IU.EDU -principal cyoun:hunter2
package main

import (
	"flag"
	"log"
	"strings"
	"time"

	"repro/internal/authsvc"
	"repro/internal/gss"
	"repro/internal/rpc"
)

type principalList []string

func (p *principalList) String() string { return strings.Join(*p, ",") }
func (p *principalList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8082", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	realm := flag.String("realm", "GRID.IU.EDU", "Kerberos realm")
	servicePrincipal := flag.String("service", "authsvc/localhost", "service principal")
	serviceKey := flag.String("servicekey", "keytab-secret", "service principal password")
	var principals principalList
	flag.Var(&principals, "principal", "user principal as name:password (repeatable)")
	flag.Parse()

	kdc := gss.NewKDC(*realm)
	kdc.AddPrincipal(*servicePrincipal, *serviceKey)
	for _, p := range principals {
		name, password, ok := strings.Cut(p, ":")
		if !ok {
			log.Fatalf("bad -principal %q, want name:password", p)
		}
		kdc.AddPrincipal(name, password)
		log.Printf("registered principal %s@%s", name, *realm)
	}
	keytab, err := kdc.Keytab(*servicePrincipal)
	if err != nil {
		log.Fatal(err)
	}
	srv := rpc.NewServer("auth", "http://localhost"+*addr)
	srv.Provider("", rpc.Logging(nil)).MustRegister(authsvc.NewSOAPService(authsvc.NewService(keytab)))
	log.Printf("Authentication Service (%s) listening on %s", *servicePrincipal, *addr)
	if err := srv.ListenAndServeGraceful(*addr, *drain); err != nil {
		log.Fatal(err)
	}
}
