// Command gridnode runs one simulated HPC machine behind a Globusrun SOAP
// service: a gatekeeper, a batch scheduler in the chosen dialect, and the
// standard synthetic executables.
//
//	gridnode -addr :8083 -host modi4.ncsa.uiuc.edu -scheduler PBS -cpus 48
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/rpc"
)

func main() {
	addr := flag.String("addr", ":8083", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	hostName := flag.String("host", "modi4.ncsa.uiuc.edu", "simulated host DNS name")
	scheduler := flag.String("scheduler", "PBS", "queuing system: PBS, LSF, NQS, or GRD")
	cpus := flag.Int("cpus", 32, "processor count")
	principal := flag.String("principal", "guest", "grid-map entry and default SOAP principal")
	flag.Parse()

	g := grid.NewGrid()
	g.AddHost(grid.HostConfig{
		Name:      *hostName,
		IP:        "127.0.0.1",
		CPUs:      *cpus,
		Scheduler: grid.SchedulerKind(*scheduler),
	})
	g.Authorize(*principal)

	srv := rpc.NewServer("gridnode", "http://localhost"+*addr)
	srv.Provider("", rpc.Logging(nil)).MustRegister(jobsub.NewGlobusrunService(g, *principal))
	log.Printf("grid node %s (%s, %d cpus) listening on %s", *hostName, *scheduler, *cpus, *addr)
	if err := srv.ListenAndServeGraceful(*addr, *drain); err != nil {
		log.Fatal(err)
	}
}
