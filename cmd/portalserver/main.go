// Command portalserver runs the complete portal stack on one HTTP server:
// the simulated grid testbed and SRB, every core portal Web Service
// (Globusrun, batch job, SRB, batch script generation, context manager,
// application service), a UDDI registry with all services published, the
// Authentication Service, the schema wizard, and the portlet container —
// all hosted on the rpc kernel's server.
//
//	portalserver -addr :8080 -user guest
//
// Useful endpoints once running:
//
//	/ssp/<Service>?wsdl        WSDL of each deployed service
//	/uddi/UDDIRegistry         UDDI SOAP endpoint
//	/auth/AuthenticationService SAML verification endpoint
//	/portal/                   aggregated portlet page
//	/wizard/gaussian/          schema-wizard generated form
//	/inspection.wsil           WS-Inspection document
//	/healthz                   request counts and latency stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/appws"
	"repro/internal/authsvc"
	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/grid"
	"repro/internal/gss"
	"repro/internal/jobsub"
	"repro/internal/persist"
	"repro/internal/portlet"
	"repro/internal/rpc"
	"repro/internal/schemawizard"
	"repro/internal/srb"
	"repro/internal/srbws"
	"repro/internal/uddi"
	"repro/internal/wal"
	"repro/internal/xmlregistry"
)

const gaussianSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="gaussianRun">
    <xs:complexType><xs:sequence>
      <xs:element name="method">
        <xs:simpleType><xs:restriction base="xs:string">
          <xs:enumeration value="HF"/><xs:enumeration value="B3LYP"/><xs:enumeration value="MP2"/>
        </xs:restriction></xs:simpleType>
      </xs:element>
      <xs:element name="basis" type="xs:int" default="6"/>
      <xs:element name="nodes" type="xs:int" default="4"/>
      <xs:element name="molecule" type="xs:string"/>
    </xs:sequence></xs:complexType></xs:element>
</xs:schema>`

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	user := flag.String("user", "guest", "default portal principal")
	baseURL := flag.String("base", "", "externally visible base URL (default http://localhost<addr>)")
	flushToken := flag.String("flush-token", "", "enable the authenticated __flush cache-invalidation op with this shared token")
	dataDir := flag.String("data", "", "directory for write-ahead logs; empty = in-memory only (state is lost on restart)")
	flag.Parse()
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}

	// openStore attaches a WAL under <data>/<name> to a stateful service's
	// persistence seam, replaying prior state into it. With -data unset it
	// does nothing and every store stays purely in-memory.
	openStore := func(name string, attach func(persist.Store) error) {
		if *dataDir == "" {
			return
		}
		l, err := wal.Open(filepath.Join(*dataDir, name), wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := attach(l); err != nil {
			log.Fatalf("recover %s: %v", name, err)
		}
	}

	// Substrate.
	testbed := grid.NewTestbed()
	testbed.Authorize(*user)
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser(*user)
	store := contextmgr.NewStore()
	openStore("contextmgr", store.Persist)

	// One hosting server; core services, UDDI, and auth each get their own
	// provider mount. Recovery, stats, WSDL, WSIL, and /healthz come from
	// the kernel.
	srv := rpc.NewServer("portal", base)
	ssp := srv.Provider("/ssp", rpc.Logging(nil))
	loop := srv.Transport()
	globusrunClient := jobsub.NewGlobusrunClient(loop, base+"/ssp/Globusrun")
	ssp.MustRegister(jobsub.NewGlobusrunService(testbed, *user))
	ssp.MustRegister(jobsub.NewBatchJobService(globusrunClient))
	ssp.MustRegister(srbws.NewService(broker, *user))
	ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	ssp.MustRegister(contextmgr.NewMonolithService(store))
	manager := appws.NewManager(globusrunClient)
	manager.SRB = srbws.NewClient(loop, base+"/ssp/SRBService")
	manager.ArchiveCollection = home
	ssp.MustRegister(appws.NewService(manager))

	// UDDI with everything published. A recovered registry already holds
	// the boot publications of the previous incarnation (and anything
	// published since); republishing would mint duplicate entities with
	// fresh keys on every restart, so boot publishing only runs on an
	// empty registry.
	registry := uddi.NewRegistry()
	openStore("uddi", registry.Persist)
	if b, _, _ := registry.Counts(); b == 0 {
		biz, err := registry.SaveBusiness(uddi.BusinessEntity{Name: "Portal Server", Description: "all-in-one deployment"})
		if err != nil {
			log.Fatal(err)
		}
		for _, svc := range ssp.Services() {
			tm, err := registry.SaveTModel(uddi.TModel{
				Name:        "gce:" + svc.Contract.Name,
				OverviewURL: ssp.EndpointFor(svc) + "?wsdl",
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := registry.SaveService(uddi.BusinessService{
				BusinessKey: biz.Key,
				Name:        svc.Contract.Name,
				Description: svc.Contract.Doc,
				Bindings:    []uddi.BindingTemplate{{AccessPoint: ssp.EndpointFor(svc), TModelKeys: []string{tm.Key}}},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Inquiry ops are memoised: repeated discovery traffic (find*/get*)
	// short-circuits the codec and handler entirely; publishes flush.
	uddiSvc := uddi.NewService(registry)
	uddiCache := rpc.NewResponseCache(30*time.Second, 4096)
	uddiSvc.Use(uddiCache.Middleware(rpc.OpPrefixes("find", "get")))
	srv.Stats().RegisterCache("uddi", uddiCache)
	srv.Provider("/uddi").MustRegister(uddiSvc)

	// XML container-hierarchy registry (Section 3.4's typed discovery),
	// with the same inquiry caching on its read surface.
	xreg := xmlregistry.NewRegistry()
	openStore("xmlregistry", xreg.Persist)
	xregSvc := xmlregistry.NewService(xreg)
	xregCache := rpc.NewResponseCache(30*time.Second, 4096)
	xregSvc.Use(xregCache.Middleware(rpc.OpPrefixes("find", "get")))
	srv.Stats().RegisterCache("xmlregistry", xregCache)
	srv.Provider("/registry").MustRegister(xregSvc)

	// Cross-node cache invalidation: a federating gateway posts the
	// authenticated __flush control op after forwarding a write elsewhere.
	if *flushToken != "" {
		srv.RegisterFlushCache(uddi.ServiceNS, uddiCache)
		srv.RegisterFlushCache(xmlregistry.ServiceNS, xregCache)
		srv.EnableCacheFlush(*flushToken)
	}

	// Authentication Service.
	kdc := gss.NewKDC("PORTAL.LOCAL")
	kdc.AddPrincipal(*user, "guest")
	kdc.AddPrincipal("authsvc/portal.local", "keytab-secret")
	keytab, err := kdc.Keytab("authsvc/portal.local")
	if err != nil {
		log.Fatal(err)
	}
	srv.Provider("/auth").MustRegister(authsvc.NewSOAPService(authsvc.NewService(keytab)))

	// Schema wizard app.
	parser := &schemawizard.SchemaParser{Fetch: func(string) (string, error) { return gaussianSchema, nil }}
	wizardApp, err := parser.Parse("mem://gaussian.xsd", "gaussian", "gaussianRun")
	if err != nil {
		log.Fatal(err)
	}
	wizardMux := http.NewServeMux()
	wizardApp.Deploy(wizardMux)
	srv.Handle("/wizard/", http.StripPrefix("/wizard", wizardMux))

	// Portlet container aggregating the wizard UI.
	container := portlet.NewContainer(&http.Client{Timeout: 10 * time.Second}, "/portal")
	if err := container.Register(portlet.Entry{
		Name: "gaussian-ui", Type: "WebFormPortlet",
		URL: base + "/wizard/gaussian/", Title: "Gaussian",
	}); err != nil {
		log.Fatal(err)
	}
	srv.Handle("/portal/", container)

	srv.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "computational portal server\nservices:\n")
		for _, svc := range ssp.Services() {
			fmt.Fprintf(w, "  %s?wsdl\n", ssp.EndpointFor(svc))
		}
		fmt.Fprintf(w, "uddi: %s/uddi/UDDIRegistry\nauth: %s/auth/AuthenticationService\n", base, base)
		fmt.Fprintf(w, "portal page: %s/portal/\nwizard: %s/wizard/gaussian/\nhealth: %s/healthz\n", base, base, base)
	})

	log.Printf("portal server listening on %s (base %s)", *addr, base)
	if err := srv.ListenAndServeGraceful(*addr, *drain); err != nil {
		log.Fatal(err)
	}
	// Drained: no more writes in flight; flush and close the logs.
	for name, closeFn := range map[string]func() error{
		"contextmgr":  store.ClosePersist,
		"uddi":        registry.ClosePersist,
		"xmlregistry": xreg.ClosePersist,
	} {
		if err := closeFn(); err != nil {
			log.Printf("close %s log: %v", name, err)
		}
	}
}
