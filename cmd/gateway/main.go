// Command gateway runs the federated portal front door: it mounts one or
// more portal backends by reading their WS-Inspection documents, then
// serves the whole fleet behind a single base URL with health-aware
// consistent-hash routing, failover for idempotent operations, an
// aggregated /inspection.wsil, and fleet-wide cache invalidation for
// forwarded writes.
//
//	gateway -addr :8080 -backends http://node1:8081,http://node2:8082
//
// Useful endpoints once running:
//
//	/<service path>            forwarded SOAP endpoint (?wsdl for the contract)
//	/inspection.wsil           aggregated WS-Inspection document
//	/healthz                   per-op stats and backend circuit states
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	baseURL := flag.String("base", "", "externally visible base URL (default http://localhost<addr>)")
	poll := flag.Duration("poll", 2*time.Second, "health poll interval")
	flushToken := flag.String("flush-token", "", "shared token for the backends' __flush cache-invalidation op")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	flag.Parse()
	if *backends == "" {
		log.Fatal("gateway: -backends is required")
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}

	gw := gateway.New("gateway", base)
	gw.FlushToken = *flushToken
	var fleet []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			fleet = append(fleet, b)
		}
	}
	if err := gw.Mount(fleet...); err != nil {
		log.Fatal(err)
	}
	gw.StartHealth(*poll)
	defer gw.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("gateway listening on %s (base %s), federating %s", *addr, base, strings.Join(fleet, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("gateway: %v, draining for up to %s", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("gateway: drain incomplete: %v", err)
		}
	}
}
