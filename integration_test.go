package repro

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/appws"
	"repro/internal/authsvc"
	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/gss"
	"repro/internal/jobsub"
	"repro/internal/portal"
	"repro/internal/portlet"
	"repro/internal/schemawizard"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
	"repro/internal/uddi"
	"repro/internal/wsil"
	"repro/internal/xmlregistry"
)

// TestGCETestbed reproduces the whole paper as one integration scenario:
// two portal groups deploy their services over real HTTP, register in
// UDDI, secure the SDSC data services with the Figure 2 authentication
// flow, and a Gateway user drives an application run whose artifacts land
// in SRB and in the session archive.
func TestGCETestbed(t *testing.T) {
	// ---- Shared grid + realm -------------------------------------------------
	testbed := grid.NewTestbed()
	testbed.Authorize("cyoun@GRID.IU.EDU")
	kdc := gss.NewKDC("GRID.IU.EDU")
	kdc.AddPrincipal("cyoun", "hunter2")
	kdc.AddPrincipal("authsvc/grids.iu.edu", "keytab-secret")
	keytab, err := kdc.Keytab("authsvc/grids.iu.edu")
	if err != nil {
		t.Fatal(err)
	}
	authService := authsvc.NewService(keytab)

	// ---- IU deployment: script generation + Globusrun + contexts -------------
	store := contextmgr.NewStore()
	iuSSP := core.NewProvider("iu-ssp", "placeholder")
	iuSSP.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	iuSSP.MustRegister(jobsub.NewGlobusrunService(testbed, "cyoun@GRID.IU.EDU"))
	iuSSP.MustRegister(contextmgr.NewContextStoreService(store))
	iuSSP.MustRegister(contextmgr.NewSessionArchiveService(store))
	iuServer := httptest.NewServer(iuSSP)
	defer iuServer.Close()
	iuSSP.BaseURL = iuServer.URL

	// ---- SDSC deployment: script generation + SRB, SAML-protected ------------
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("cyoun")
	authSSP := core.NewProvider("auth-ssp", "placeholder")
	authSSP.MustRegister(authsvc.NewSOAPService(authService))
	authServer := httptest.NewServer(authSSP)
	defer authServer.Close()
	httpTr := &soap.HTTPTransport{Client: authServer.Client()}
	authClient := authsvc.NewClient(httpTr, authServer.URL+"/AuthenticationService")

	sdscSSP := core.NewProvider("sdsc-ssp", "placeholder")
	sdscSSP.Use(authsvc.RequireAssertion(authClient))
	sdscSSP.MustRegister(batchscript.NewService(batchscript.NewSDSCGenerator()))
	sdscSSP.MustRegister(srbws.NewService(broker, ""))
	sdscServer := httptest.NewServer(sdscSSP)
	defer sdscServer.Close()
	sdscSSP.BaseURL = sdscServer.URL

	// ---- Discovery: UDDI + the proposed XML registry + WSIL ------------------
	reg := uddi.NewRegistry()
	iuBiz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "IU Community Grids Lab"})
	sdscBiz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "SDSC"})
	if _, err := batchscript.PublishUDDI(reg, iuBiz.Key, "IU Batch Script Generator",
		iuServer.URL+"/BatchScriptGenerator", batchscript.NewIUGenerator()); err != nil {
		t.Fatal(err)
	}
	if _, err := batchscript.PublishUDDI(reg, sdscBiz.Key, "SDSC Batch Script Generator",
		sdscServer.URL+"/BatchScriptGenerator", batchscript.NewSDSCGenerator()); err != nil {
		t.Fatal(err)
	}
	xreg := xmlregistry.NewRegistry()
	for _, pub := range []struct {
		path, endpoint string
		scheds         []string
	}{
		{"portals/iu/bsg", iuServer.URL + "/BatchScriptGenerator", []string{"PBS", "GRD"}},
		{"portals/sdsc/bsg", sdscServer.URL + "/BatchScriptGenerator", []string{"LSF", "NQS"}},
	} {
		props := []xmlregistry.Property{{Name: "endpoint", Value: pub.endpoint}}
		for _, s := range pub.scheds {
			props = append(props, xmlregistry.Property{Name: "supportedScheduler", Value: s})
		}
		if err := xreg.Put(pub.path, "service", props); err != nil {
			t.Fatal(err)
		}
	}
	inspection := wsil.NewPublisher()
	for _, svc := range iuSSP.Services() {
		inspection.AddService(wsil.ServiceEntry{
			Name: svc.Contract.Name, WSDLLocation: iuSSP.EndpointFor(svc) + "?wsdl"})
	}
	wsilServer := httptest.NewServer(inspection)
	defer wsilServer.Close()

	// ---- Figure 2 login -------------------------------------------------------
	session, err := authsvc.Login(kdc, "cyoun", "hunter2", "authsvc/grids.iu.edu",
		authClient.EstablishSession, nil)
	if err != nil {
		t.Fatal(err)
	}

	// ---- Cross-group script generation via discovery --------------------------
	// The user needs an LSF script: UDDI says SDSC; the SDSC SSP demands a
	// SAML assertion.
	lsfProviders := reg.FindByParsedConvention("LSF")
	if len(lsfProviders) != 1 || !strings.HasPrefix(lsfProviders[0].Name, "SDSC") {
		t.Fatalf("LSF providers = %v", lsfProviders)
	}
	sdscScript := batchscript.NewClient(httpTr, lsfProviders[0].Bindings[0].AccessPoint)
	if _, err := sdscScript.GenerateScript(batchscript.Request{
		Scheduler: grid.LSF, Executable: "/bin/date"}); err == nil {
		t.Fatal("unauthenticated call to protected SDSC SSP succeeded")
	}
	sdscScript.Use(session.Interceptor())
	script, err := sdscScript.GenerateScript(batchscript.Request{
		Scheduler: grid.LSF, JobName: "testbed", Executable: "/bin/echo",
		Arguments: []string{"gce", "testbed"}, Queue: "normal", Nodes: 2, WallTime: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "#BSUB -J testbed") {
		t.Fatalf("script:\n%s", script)
	}
	// The typed registry finds the same provider with an exact query.
	matches, err := xreg.Find(xmlregistry.Query{
		Type:       "service",
		PropEquals: []xmlregistry.Property{{Name: "supportedScheduler", Value: "LSF"}},
	})
	if err != nil || len(matches) != 1 || matches[0].Path != "portals/sdsc/bsg" {
		t.Fatalf("xmlregistry matches = %v, %v", matches, err)
	}

	// ---- Run the script through IU's Globusrun over HTTP ----------------------
	globusrun := jobsub.NewGlobusrunClient(httpTr, iuServer.URL+"/Globusrun")
	spec, err := grid.ParseScript(grid.LSF, script)
	if err != nil {
		t.Fatal(err)
	}
	out, err := globusrun.Run("bluehorizon.sdsc.edu", grid.FormatRSL(spec))
	if err != nil {
		t.Fatal(err)
	}
	if out != "gce testbed\n" {
		t.Fatalf("job output = %q", out)
	}

	// ---- Store the output in SRB (authenticated) and record the session -------
	srbClient := srbws.NewClient(httpTr, sdscServer.URL+"/SRBService")
	srbClient.Use(session.Interceptor())
	if err := srbClient.Put(home+"/testbed.out", out, ""); err != nil {
		t.Fatal(err)
	}
	archClient := core.NewClient(httpTr, iuServer.URL+"/SessionArchive", contextmgr.SessionArchiveContract())
	if _, err := archClient.Call("placeholder",
		soap.Str("user", "cyoun"), soap.Str("problem", "gce"), soap.Str("session", "testbed-1")); err != nil {
		t.Fatal(err)
	}
	storeClient := core.NewClient(httpTr, iuServer.URL+"/ContextStore", contextmgr.ContextStoreContract())
	if _, err := storeClient.Call("setProperty",
		soap.StrArray("path", []string{"cyoun", "gce", "testbed-1"}),
		soap.Str("name", "outputLocation"), soap.Str("value", home+"/testbed.out")); err != nil {
		t.Fatal(err)
	}
	resp, err := archClient.Call("archive",
		soap.Str("user", "cyoun"), soap.Str("problem", "gce"), soap.Str("session", "testbed-1"))
	if err != nil || resp.ReturnText("archiveID") == "" {
		t.Fatalf("archive = %v, %v", resp, err)
	}

	// ---- Verify the artifacts end to end ---------------------------------------
	stored, err := srbClient.Get(home + "/testbed.out")
	if err != nil || stored != "gce testbed\n" {
		t.Errorf("SRB copy = %q, %v", stored, err)
	}
	loc, err := store.GetProp([]string{"cyoun", "gce", "testbed-1"}, "outputLocation")
	if err != nil || loc != home+"/testbed.out" {
		t.Errorf("context record = %q, %v", loc, err)
	}
	// WSIL crawl finds the IU services.
	entries, err := wsil.Crawl(wsilServer.URL, 1, wsil.FetchHTTP(wsilServer.Client()))
	if err != nil || len(entries) != 4 {
		t.Errorf("wsil entries = %v, %v", entries, err)
	}
}

// TestPortalShellOverHTTP runs the Figure 4 shell against services bound
// over real HTTP rather than the loopback transport.
func TestPortalShellOverHTTP(t *testing.T) {
	testbed := grid.NewTestbed()
	testbed.Authorize("shell@GRID")
	broker := srb.NewBroker("sdsc")
	broker.CreateUser("shell")
	ssp := core.NewProvider("ssp", "placeholder")
	ssp.MustRegister(jobsub.NewGlobusrunService(testbed, "shell@GRID"))
	ssp.MustRegister(srbws.NewService(broker, "shell"))
	ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	server := httptest.NewServer(ssp)
	defer server.Close()
	tr := &soap.HTTPTransport{Client: server.Client()}

	sh := portal.NewStandardShell(portal.Services{
		Script:    batchscript.NewClient(tr, server.URL+"/BatchScriptGenerator"),
		Globusrun: jobsub.NewGlobusrunClient(tr, server.URL+"/Globusrun"),
		SRB:       srbws.NewClient(tr, server.URL+"/SRBService"),
	})
	out, err := sh.Run(`genscript GRD all.q 2 10 /bin/echo over http` +
		` | submitscript hpc-sge.iu.edu GRD` +
		` | srbput /sdsc/home/shell/http.out`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored 10 bytes") {
		t.Errorf("pipeline = %q", out)
	}
	got, err := sh.Run("srbget /sdsc/home/shell/http.out")
	if err != nil || got != "over http\n" {
		t.Errorf("stored = %q, %v", got, err)
	}
}

// TestWizardToGridFlow connects Figure 3 to the grid: a schema-wizard
// form submission becomes an application instance that runs and archives.
func TestWizardToGridFlow(t *testing.T) {
	const schema = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="run"><xs:complexType><xs:sequence>
	    <xs:element name="n" type="xs:int" default="64"/>
	    <xs:element name="nodes" type="xs:int" default="2"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`
	parser := &schemawizard.SchemaParser{Fetch: func(string) (string, error) { return schema, nil }}
	app, err := parser.Parse("mem://run.xsd", "matmul", "run")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := schemawizard.ParseForm(app.Root, url.Values{
		"run.n": {"128"}, "run.nodes": {"4"},
	})
	if err != nil {
		t.Fatal(err)
	}

	testbed := grid.NewTestbed()
	testbed.Authorize("wiz@GRID")
	ssp := core.NewProvider("ssp", "loopback://ssp")
	ssp.MustRegister(jobsub.NewGlobusrunService(testbed, "wiz@GRID"))
	manager := appws.NewManager(jobsub.NewGlobusrunClient(
		&soap.LoopbackTransport{Handler: ssp.Dispatch}, "loopback://ssp/Globusrun"))
	if err := manager.Register(&appws.Descriptor{
		Name: "MatMul", Version: "1",
		Hosts: []appws.HostBinding{{
			DNS: "modi4.ncsa.uiuc.edu", IP: "141.142.30.72",
			Executable: "/usr/local/bin/matmul",
			Queue:      appws.QueueBinding{Scheduler: grid.PBS, Queue: "batch", MaxNodes: 48, MaxWallTime: time.Hour},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	inst, err := manager.Prepare("MatMul", "modi4.ncsa.uiuc.edu",
		atoiOr(obj.GetField("nodes"), 1), time.Hour,
		[]string{obj.GetField("n")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := manager.RunSynchronously(inst.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := manager.Instance(inst.ID)
	if got.State != appws.StateCompleted || !strings.Contains(got.Stdout, "matmul n=128 nodes=4") {
		t.Errorf("instance = %+v", got)
	}
	if _, err := manager.Archive(inst.ID); err != nil {
		t.Fatal(err)
	}
}

func atoiOr(s string, def int) int {
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return def
	}
	return n
}

// TestPortletFrontsProtectedPortal exercises Section 5.4 + Section 4
// together: a WebFormPortlet aggregates a remote UI whose backing service
// calls are SAML-authenticated.
func TestPortletFrontsProtectedPortal(t *testing.T) {
	kdc := gss.NewKDC("GRID")
	kdc.AddPrincipal("cyoun", "pw")
	kdc.AddPrincipal("authsvc/x", "sk")
	kt, _ := kdc.Keytab("authsvc/x")
	svc := authsvc.NewService(kt)
	session, err := authsvc.Login(kdc, "cyoun", "pw", "authsvc/x", svc.EstablishSession, nil)
	if err != nil {
		t.Fatal(err)
	}
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("cyoun")
	_ = broker.Sput("cyoun", home+"/f1", "data", "")
	spp := core.NewProvider("spp", "loopback://spp")
	spp.Use(authsvc.RequireAssertion(&authsvc.LocalVerifier{Service: svc}))
	spp.MustRegister(srbws.NewService(broker, ""))
	srbClient := srbws.NewClient(&soap.LoopbackTransport{Handler: spp.Dispatch}, "loopback://spp/SRBService")
	srbClient.Use(session.Interceptor())

	// The remote UI: a tiny web front end that lists the user's home
	// collection through the authenticated client.
	ui := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entries, err := srbClient.Ls(home)
		if err != nil {
			fmt.Fprintf(w, "error: %v", err)
			return
		}
		for _, e := range entries {
			fmt.Fprintf(w, `<li><a href="/file?n=%s">%s</a></li>`, e.Name, e.Name)
		}
	}))
	defer ui.Close()

	container := portlet.NewContainer(ui.Client(), "/portal")
	if err := container.Register(portlet.Entry{
		Name: "files", Type: "WebFormPortlet", URL: ui.URL + "/", Title: "My Files"}); err != nil {
		t.Fatal(err)
	}
	page := container.RenderPage("cyoun")
	if !strings.Contains(page, "f1") {
		t.Fatalf("portlet page missing authenticated content:\n%s", page)
	}
	if !strings.Contains(page, "/portal/portlet?name=files") {
		t.Error("file links not remapped into the portlet window")
	}
}
