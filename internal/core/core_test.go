package core

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

func echoContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "Echo",
		TargetNS: "urn:test:echo",
		Operations: []wsdl.Operation{
			{Name: "say", Input: []wsdl.Param{{Name: "msg", Type: "string"}},
				Output: []wsdl.Param{{Name: "echo", Type: "string"}}},
			{Name: "add", Input: []wsdl.Param{{Name: "a", Type: "int"}, {Name: "b", Type: "int"}},
				Output: []wsdl.Param{{Name: "sum", Type: "int"}}},
			{Name: "whoami", Output: []wsdl.Param{{Name: "principal", Type: "string"}}},
		},
	}
}

func echoService() *Service {
	return NewService(echoContract()).
		Handle("say", func(_ *Context, args soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.Str("echo", args.String("msg"))}, nil
		}).
		Handle("add", func(_ *Context, args soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.Int("sum", args.Int("a")+args.Int("b"))}, nil
		}).
		Handle("whoami", func(ctx *Context, _ soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.Str("principal", ctx.Principal)}, nil
		})
}

func newTestProvider(t *testing.T) (*Provider, *Client) {
	t.Helper()
	p := NewProvider("test-ssp", "loopback://ssp")
	p.MustRegister(echoService())
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	c := NewClient(tr, "loopback://ssp/Echo", echoContract())
	return p, c
}

func TestDispatchAndCall(t *testing.T) {
	_, c := newTestProvider(t)
	got, err := c.CallText("say", soap.Str("msg", "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("echo = %q", got)
	}
	resp, err := c.Call("add", soap.Int("a", 20), soap.Int("b", 22))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReturnText("sum") != "42" {
		t.Errorf("sum = %q", resp.ReturnText("sum"))
	}
}

func TestContractValidation(t *testing.T) {
	_, c := newTestProvider(t)
	cases := []struct {
		name string
		op   string
		args []soap.Value
		want string
	}{
		{"unknown op", "vanish", nil, "not in contract"},
		{"wrong arity", "say", nil, "takes 1 parameters"},
		{"wrong name", "say", []soap.Value{soap.Str("message", "x")}, `parameter 0 is "message"`},
		{"wrong type", "add", []soap.Value{soap.Str("a", "1"), soap.Int("b", 2)}, "wire type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Call(tc.op, tc.args...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestNonStrictClientSkipsValidation(t *testing.T) {
	_, c := newTestProvider(t)
	c.Strict = false
	// Wrong parameter name reaches the server, which just sees no "msg".
	got, err := c.CallText("say", soap.Str("message", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("echo = %q, want empty", got)
	}
}

func TestUnknownNamespaceFault(t *testing.T) {
	p, _ := newTestProvider(t)
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	other := &wsdl.Interface{Name: "Other", TargetNS: "urn:other",
		Operations: []wsdl.Operation{{Name: "x"}}}
	c := NewClient(tr, "loopback://ssp/Other", other)
	_, err := c.Call("x")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultClient {
		t.Errorf("err = %v, want Client fault", err)
	}
}

func TestUnimplementedOperationPortalError(t *testing.T) {
	p := NewProvider("ssp", "loopback://x")
	svc := NewService(echoContract())
	// Register bypassing Validate to simulate a drifted deployment.
	svc.handlers["say"] = func(_ *Context, _ soap.Args) ([]soap.Value, error) { return nil, nil }
	p.byNS[svc.Contract.TargetNS] = svc
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	c := NewClient(tr, "x", echoContract())
	_, err := c.Call("add", soap.Int("a", 1), soap.Int("b", 2))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeNoSuchMethod {
		t.Errorf("err = %v, want NoSuchMethod portal error", err)
	}
}

func TestValidateMissingHandlers(t *testing.T) {
	svc := NewService(echoContract())
	err := svc.Validate()
	if err == nil || !strings.Contains(err.Error(), "add") {
		t.Errorf("err = %v", err)
	}
	p := NewProvider("ssp", "http://x")
	if err := p.Register(svc); err == nil {
		t.Error("provider accepted invalid service")
	}
}

func TestHandleUncontractedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Handle of uncontracted op did not panic")
		}
	}()
	NewService(echoContract()).Handle("bogus", nil)
}

func TestDuplicateRegistration(t *testing.T) {
	p := NewProvider("ssp", "http://x")
	p.MustRegister(echoService())
	if err := p.Register(echoService()); err == nil {
		t.Error("duplicate namespace accepted")
	}
}

func TestMiddlewareOrderAndRejection(t *testing.T) {
	p := NewProvider("ssp", "loopback://x")
	var order []string
	p.Use(func(next HandlerFunc) HandlerFunc {
		return func(ctx *Context, args soap.Args) ([]soap.Value, error) {
			order = append(order, "provider")
			ctx.Set("token", "t-123")
			vals, err := next(ctx, args)
			order = append(order, "provider-out")
			return vals, err
		}
	})
	svc := echoService().Use(func(next HandlerFunc) HandlerFunc {
		return func(ctx *Context, args soap.Args) ([]soap.Value, error) {
			order = append(order, "service")
			if ctx.Value("token") != "t-123" {
				t.Error("context value not propagated")
			}
			ctx.Principal = "cyoun"
			return next(ctx, args)
		}
	})
	p.MustRegister(svc)
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	c := NewClient(tr, "x", echoContract())
	got, err := c.CallText("whoami")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cyoun" {
		t.Errorf("principal = %q", got)
	}
	// Provider middleware is outermost: first in, last out.
	want := []string{"provider", "service", "provider-out"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order = %v, want %v", order, want)
			break
		}
	}
}

func TestMiddlewareRejects(t *testing.T) {
	p := NewProvider("ssp", "loopback://x")
	p.Use(func(HandlerFunc) HandlerFunc {
		return func(*Context, soap.Args) ([]soap.Value, error) {
			return nil, soap.NewPortalError("gate", soap.ErrCodeAccessDenied, "no assertion")
		}
	})
	p.MustRegister(echoService())
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	c := NewClient(tr, "x", echoContract())
	_, err := c.CallText("say", soap.Str("msg", "x"))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeAccessDenied {
		t.Errorf("err = %v", err)
	}
}

func TestClientInterceptorAddsHeader(t *testing.T) {
	p := NewProvider("ssp", "loopback://x")
	svc := NewService(echoContract())
	svc.Handle("say", func(ctx *Context, args soap.Args) ([]soap.Value, error) {
		h := ctx.Envelope.HeaderNamed("Assertion")
		if h == nil {
			return nil, soap.NewPortalError("echo", soap.ErrCodeAuthFailed, "missing assertion")
		}
		return []soap.Value{soap.Str("echo", h.AttrDefault("subject", ""))}, nil
	})
	svc.Handle("add", func(*Context, soap.Args) ([]soap.Value, error) { return nil, nil })
	svc.Handle("whoami", func(*Context, soap.Args) ([]soap.Value, error) { return nil, nil })
	p.MustRegister(svc)
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	c := NewClient(tr, "x", echoContract())
	c.Use(func(_ *soap.Call, env *soap.Envelope) error {
		env.AddHeader(xmlutil.NewNS("urn:saml", "Assertion").SetAttr("subject", "mock@sdsc"))
		return nil
	})
	got, err := c.CallText("say", soap.Str("msg", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "mock@sdsc" {
		t.Errorf("subject = %q", got)
	}
}

func TestHTTPServerWSDLAndBind(t *testing.T) {
	p := NewProvider("ssp", "placeholder")
	p.MustRegister(echoService())
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.BaseURL = srv.URL

	// Fetch WSDL over HTTP and bind dynamically — the Figure 1 flow.
	c, err := BindURL(&soap.HTTPTransport{Client: srv.Client()}, srv.Client(), srv.URL+"/Echo?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	if c.Endpoint != srv.URL+"/Echo" {
		t.Errorf("bound endpoint = %q", c.Endpoint)
	}
	got, err := c.CallText("say", soap.Str("msg", "over http"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "over http" {
		t.Errorf("echo = %q", got)
	}
}

func TestHTTPWSDLNotFound(t *testing.T) {
	p := NewProvider("ssp", "http://x")
	p.MustRegister(echoService())
	srv := httptest.NewServer(p)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/Nothing?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBindErrors(t *testing.T) {
	if _, err := Bind(nil, "garbage"); err == nil {
		t.Error("garbage WSDL accepted")
	}
	noEndpoint := `<definitions xmlns="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:x">
	  <portType name="T"><operation name="go"/></portType></definitions>`
	if _, err := Bind(nil, noEndpoint); err == nil {
		t.Error("WSDL without endpoint accepted")
	}
}

func TestCallStringsAndXML(t *testing.T) {
	contract := &wsdl.Interface{Name: "Lists", TargetNS: "urn:lists", Operations: []wsdl.Operation{
		{Name: "names", Output: []wsdl.Param{{Name: "out", Type: "stringArray"}}},
		{Name: "doc", Output: []wsdl.Param{{Name: "out", Type: "xml"}}},
		{Name: "nothing"},
	}}
	svc := NewService(contract).
		Handle("names", func(*Context, soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.StrArray("out", []string{"PBS", "LSF"})}, nil
		}).
		Handle("doc", func(*Context, soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.XMLDoc("out", xmlutil.NewText("v", "1"))}, nil
		}).
		Handle("nothing", func(*Context, soap.Args) ([]soap.Value, error) { return nil, nil })
	p := NewProvider("ssp", "loopback://x")
	p.MustRegister(svc)
	c := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "x", contract)

	names, err := c.CallStrings("names")
	if err != nil || len(names) != 2 || names[0] != "PBS" {
		t.Errorf("names = %v, %v", names, err)
	}
	doc, err := c.CallXML("doc")
	if err != nil || doc.Text != "1" {
		t.Errorf("doc = %v, %v", doc, err)
	}
	if _, err := c.CallXML("nothing"); err == nil {
		t.Error("CallXML on empty return should fail")
	}
	if _, err := c.CallStrings("nothing"); err == nil {
		t.Error("CallStrings on empty return should fail")
	}
}

func TestProviderServicesSorted(t *testing.T) {
	p := NewProvider("ssp", "http://x")
	p.MustRegister(echoService())
	b := NewService(&wsdl.Interface{Name: "Alpha", TargetNS: "urn:alpha",
		Operations: []wsdl.Operation{{Name: "op"}}}).
		Handle("op", func(*Context, soap.Args) ([]soap.Value, error) { return nil, nil })
	p.MustRegister(b)
	svcs := p.Services()
	if len(svcs) != 2 || svcs[0].Contract.Name != "Alpha" || svcs[1].Contract.Name != "Echo" {
		t.Errorf("services order wrong: %v", svcs)
	}
	if got := p.EndpointFor(svcs[0]); got != "http://x/Alpha" {
		t.Errorf("endpoint = %q", got)
	}
}
