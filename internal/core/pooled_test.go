package core

import (
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

func xmlContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "Trees",
		TargetNS: "urn:test:trees",
		Operations: []wsdl.Operation{
			{Name: "grow", Input: []wsdl.Param{{Name: "name", Type: "string"}},
				Output: []wsdl.Param{{Name: "tree", Type: "xml"}}},
			{Name: "fail", Output: []wsdl.Param{{Name: "never", Type: "string"}}},
		},
	}
}

func xmlProviderClient() *Client {
	p := NewProvider("trees-ssp", "loopback://trees")
	svc := NewService(xmlContract()).
		Handle("grow", func(_ *Context, args soap.Args) ([]soap.Value, error) {
			el := xmlutil.New("tree").SetAttr("name", args.String("name"))
			el.AddText("leaf", "green")
			return []soap.Value{soap.XMLDoc("tree", el)}, nil
		}).
		Handle("fail", func(_ *Context, _ soap.Args) ([]soap.Value, error) {
			return nil, soap.NewPortalError("Trees", soap.ErrCodeResourceFull, "forest full")
		})
	p.MustRegister(svc)
	return NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://trees/Trees", xmlContract())
}

func TestCallPooled(t *testing.T) {
	c := xmlProviderClient()
	resp, release, err := c.CallPooled("grow", soap.Str("name", "oak"))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := resp.Return("tree")
	if !ok || v.XML == nil {
		t.Fatal("no XML return")
	}
	// Strings extracted from the pooled tree stay valid past release.
	name, _ := v.XML.Attr("name")
	leaf := v.XML.ChildText("leaf")
	release()
	if name != "oak" || leaf != "green" {
		t.Fatalf("extracted strings wrong after release: name=%q leaf=%q", name, leaf)
	}
}

// TestCallPooledFaultDetached pins that a fault returned from the pooled
// path stays usable after the arena is recycled: the detail trees are
// detached before release.
func TestCallPooledFaultDetached(t *testing.T) {
	c := xmlProviderClient()
	_, release, err := c.CallPooled("fail")
	if err == nil {
		t.Fatal("expected fault")
	}
	release() // must be a safe no-op on the error path
	pe := soap.AsPortalError(err)
	if pe == nil {
		t.Fatalf("portal error not relayed: %v", err)
	}
	if pe.Code != soap.ErrCodeResourceFull || !strings.Contains(pe.Message, "forest full") {
		t.Fatalf("detached portal error wrong: %+v", pe)
	}
}

// TestCallPooledFallback verifies a transport without RoundTripRaw still
// works through the retained path.
type parsedOnlyTransport struct{ inner soap.Transport }

func (t parsedOnlyTransport) RoundTrip(endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	return t.inner.RoundTrip(endpoint, action, req)
}

func TestCallPooledFallback(t *testing.T) {
	p := NewProvider("trees-ssp", "loopback://trees")
	svc := NewService(xmlContract()).
		Handle("grow", func(_ *Context, args soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.XMLDoc("tree", xmlutil.New("tree"))}, nil
		}).
		Handle("fail", func(_ *Context, _ soap.Args) ([]soap.Value, error) { return nil, nil })
	p.MustRegister(svc)
	c := NewClient(parsedOnlyTransport{&soap.LoopbackTransport{Handler: p.Dispatch}},
		"loopback://trees/Trees", xmlContract())
	resp, release, err := c.CallPooled("grow", soap.Str("name", "elm"))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if v, ok := resp.Return("tree"); !ok || v.XML == nil {
		t.Fatal("fallback path lost the XML return")
	}
}
