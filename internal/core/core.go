// Package core is the portal Web Services framework — the paper's primary
// contribution realised as a library. It provides:
//
//   - Service: a WSDL contract plus operation handlers, the unit a portal
//     group deploys.
//   - Provider: a SOAP Service Provider (SSP), the separate server in
//     Figure 1 that hosts services, dispatches SOAP requests by namespace
//     and method, and publishes each service's WSDL.
//   - Client: a proxy bound to an endpoint and contract. The client
//     validates calls against the agreed interface before they leave the
//     process, which is how independently developed clients and servers
//     stay interoperable (Section 3.4).
//   - A composable server-side middleware chain and client interceptors
//     for the security layer (Section 4): the SAML assertion is attached
//     by a client interceptor and verified by a provider middleware,
//     without the service implementations knowing. The built-in
//     middlewares (auth enforcement, logging, recovery, limiting, stats)
//     live in the rpc package; core only defines the chain.
//
// The separation between the server that manages the user interface and
// the server that manages a particular service — "the key development for
// breaking the portal stove pipe" — is exactly the Provider/Client split.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/resilience"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// Context carries per-request information into operation handlers.
type Context struct {
	// Operation is the invoked operation name.
	Operation string
	// ServiceNS is the service namespace of the call.
	ServiceNS string
	// Envelope is the full request envelope, giving handlers access to
	// header entries such as SAML assertions.
	Envelope *soap.Envelope
	// HTTPRequest is the underlying HTTP request when served over HTTP;
	// may be synthetic for loopback transports.
	HTTPRequest *http.Request
	// Principal is the authenticated identity, set by a verification
	// interceptor; empty for unauthenticated calls.
	Principal string
	// Decoded carries the kernel-typed arguments when the request came in
	// through the streaming decode fast path (DispatchRaw): the service's
	// StreamDecoder produced it straight from the wire tokens, and the
	// kernel handler consumes it instead of re-decoding the raw args. Nil
	// on the tree path. Middleware may read it as a fast-path marker but
	// should treat its dynamic type as the kernel's business.
	Decoded interface{}
	// Ctx is the request's lifetime: cancelled when the client goes away,
	// the deadline middleware's budget expires, or the server drains.
	// Handlers doing slow work should watch it. Use Context() for a
	// nil-safe read.
	Ctx context.Context
	// values holds interceptor-provided request-scoped data.
	values map[string]interface{}
	// abandoned is set (atomically; the dispatch goroutine and the
	// deadline middleware race on it by design) when the handler chain was
	// given up on mid-flight, so dispatch must not recycle pooled request
	// storage the runaway handler may still read.
	abandoned uint32
}

// Set stores a request-scoped value for downstream interceptors/handlers.
func (c *Context) Set(key string, v interface{}) {
	if c.values == nil {
		c.values = map[string]interface{}{}
	}
	c.values[key] = v
}

// Value retrieves a request-scoped value, or nil.
func (c *Context) Value(key string) interface{} {
	return c.values[key]
}

// Context returns the request's context.Context, never nil.
func (c *Context) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Abandon marks the request's handler chain as given up on: a middleware
// that stops waiting for the chain (deadline expiry) must call it before
// returning, so dispatch leaks the request's pooled storage to the garbage
// collector instead of recycling it under the still-running goroutine.
func (c *Context) Abandon() { atomic.StoreUint32(&c.abandoned, 1) }

// Abandoned reports whether Abandon was called.
func (c *Context) Abandoned() bool { return atomic.LoadUint32(&c.abandoned) != 0 }

// Detach returns a shallow copy of the context for running the inner
// handler chain on a goroutine that may outlive the request: the copy gets
// its own values map, so a runaway handler mutating it cannot race with
// outer middleware reading the original. ctx becomes the copy's lifetime.
func (c *Context) Detach(ctx context.Context) *Context {
	d := &Context{
		Operation:   c.Operation,
		ServiceNS:   c.ServiceNS,
		Envelope:    c.Envelope,
		HTTPRequest: c.HTTPRequest,
		Principal:   c.Principal,
		Decoded:     c.Decoded,
		Ctx:         ctx,
	}
	if c.values != nil {
		d.values = make(map[string]interface{}, len(c.values))
		for k, v := range c.values {
			d.values[k] = v
		}
	}
	return d
}

// Adopt copies the mutable outcomes of a detached run back onto the
// original context. Only call it after the detached chain has returned in
// time (never after Abandon).
func (c *Context) Adopt(d *Context) {
	c.Principal = d.Principal
	c.values = d.values
}

// HandlerFunc implements one operation: it receives the decoded arguments
// and returns the out parameters or an error. Errors that are (or wrap)
// *soap.PortalError are relayed with the portal-standard error detail.
type HandlerFunc func(ctx *Context, args soap.Args) ([]soap.Value, error)

// Middleware wraps an operation handler, forming a composable chain:
// provider-wide middlewares run outermost, then service middlewares, then
// the handler. A middleware may inspect or mutate the context (e.g. set
// Principal after verifying an assertion), short-circuit with an error, or
// observe the outcome of the inner handler (timing, recovery, stats).
type Middleware func(next HandlerFunc) HandlerFunc

// ClientInterceptor may mutate an outbound request envelope before it is
// sent (e.g. attach a signed SAML assertion header). Request envelopes are
// streamed (soap.Call.WireEnvelope): AddHeader and AddBody both still
// serialise, and the call element itself is read from call at send time —
// but env.Body does not expose the call element as a tree, so interceptors
// that need to inspect the outgoing parameters should read call.Params.
type ClientInterceptor func(call *soap.Call, env *soap.Envelope) error

// StreamDecoder decodes request parameters straight from the streaming
// body reader — the treeless fast path the rpc kernel compiles per
// operation at build time. DecodeCallStream is called with the reader
// positioned after the operation element's start tag; it returns the
// kernel-typed argument value (delivered to handlers via Context.Decoded),
// the raw wire values for middleware that inspects or keys off them
// (identical to what soap.ParseCall would have produced), and ok=false
// when the operation cannot be stream-decoded — unknown operation,
// xml-typed parameters, a wire shape outside the streaming subset, or a
// value that fails validation (the tree path then reproduces the exact
// fault). On !ok nothing may have been committed anywhere.
type StreamDecoder interface {
	DecodeCallStream(op string, r *soap.BodyReader) (decoded interface{}, raw []soap.Value, ok bool)
}

// StreamReleaser is an optional extension of StreamDecoder for decoders
// that hand out pooled scratch inside decoded/raw. The provider calls
// ReleaseStream exactly once per successful DecodeCallStream, after the
// dispatch completes (the handler chain has returned and the response is
// built from handler-owned values) or when the request is abandoned to
// the tree fallback — the two points where nothing can still reference
// the request's decode products under the handler-retention contract.
type StreamReleaser interface {
	ReleaseStream(decoded interface{}, raw []soap.Value)
}

// Service couples a WSDL contract with its operation handlers.
type Service struct {
	// Contract is the abstract interface this service implements.
	Contract *wsdl.Interface
	// Path is the HTTP path the provider mounts the service at, defaulting
	// to "/" + Contract.Name.
	Path string
	// Stream, when non-nil, lets the provider decode requests for this
	// service through the streaming fast path (set by rpc.Def.Build).
	Stream StreamDecoder
	// handlers maps operation name to implementation.
	handlers map[string]HandlerFunc
	// middleware wraps this service's handlers only.
	middleware []Middleware
	// composed memoizes fully chained handlers per operation; guarded by
	// the owning provider's lock and rebuilt after any Use call.
	composed map[string]HandlerFunc
}

// NewService creates a service for the contract.
func NewService(contract *wsdl.Interface) *Service {
	return &Service{
		Contract: contract,
		Path:     "/" + contract.Name,
		handlers: map[string]HandlerFunc{},
	}
}

// Handle registers the implementation of a contract operation. It panics if
// the operation is not part of the contract: registering an uncontracted
// method is a programming error that would silently break interoperability.
func (s *Service) Handle(operation string, h HandlerFunc) *Service {
	if s.Contract.Operation(operation) == nil {
		panic(fmt.Sprintf("core: operation %q not in contract %s", operation, s.Contract.Name))
	}
	s.handlers[operation] = h
	return s
}

// Use appends a middleware wrapping this service's handlers. Configure
// middleware during wiring, before the service starts dispatching.
func (s *Service) Use(mw Middleware) *Service {
	s.middleware = append(s.middleware, mw)
	s.composed = nil
	return s
}

// Validate verifies every contract operation has a handler; deploying an
// incomplete implementation is what Validate prevents.
func (s *Service) Validate() error {
	var missing []string
	for _, op := range s.Contract.Operations {
		if _, ok := s.handlers[op.Name]; !ok {
			missing = append(missing, op.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("core: service %s missing handlers: %s", s.Contract.Name, strings.Join(missing, ", "))
	}
	return nil
}

// Provider is a SOAP Service Provider: one web server hosting one or more
// services, each at its own path, with WSDL publication.
type Provider struct {
	// Name identifies the provider (e.g. "SDSC-SSP") in faults and logs.
	Name string
	// BaseURL is the externally visible URL prefix used in published WSDL
	// endpoint addresses, e.g. "http://hotpage.sdsc.edu:8080".
	BaseURL string

	mu         sync.RWMutex
	byNS       map[string]*Service
	byPath     map[string]*Service
	middleware []Middleware
	// wsdlCache holds the rendered WSDL bytes per service path so the
	// ?wsdl GET endpoint does not re-render the document on every fetch.
	// Entries are keyed to the BaseURL they were rendered for, so a
	// SetBaseURL after wiring (httptest, port 0) invalidates them.
	wsdlCache map[string]wsdlCacheEntry
}

type wsdlCacheEntry struct {
	baseURL string
	doc     []byte
}

// NewProvider creates an empty provider.
func NewProvider(name, baseURL string) *Provider {
	return &Provider{
		Name:    name,
		BaseURL: strings.TrimSuffix(baseURL, "/"),
		byNS:    map[string]*Service{},
		byPath:  map[string]*Service{},
	}
}

// SetBaseURL rewrites the externally visible URL prefix under the
// provider's lock, keeping the WSDL cache's keyed-to-base entries coherent
// with concurrent readers. Prefer it over assigning BaseURL directly once
// the provider is serving.
func (p *Provider) SetBaseURL(baseURL string) {
	p.mu.Lock()
	p.BaseURL = strings.TrimSuffix(baseURL, "/")
	p.mu.Unlock()
}

// Use appends a provider-wide middleware that wraps every service's chain
// (outermost first: provider middlewares run before service middlewares).
func (p *Provider) Use(mw Middleware) *Provider {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.middleware = append(p.middleware, mw)
	for _, s := range p.byNS {
		s.composed = nil
	}
	return p
}

// Register deploys a service. The service must validate, and its namespace
// and path must be unique within the provider.
func (p *Provider) Register(s *Service) error {
	if err := s.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ns := s.Contract.TargetNS
	if _, dup := p.byNS[ns]; dup {
		return fmt.Errorf("core: provider %s already serves namespace %q", p.Name, ns)
	}
	if _, dup := p.byPath[s.Path]; dup {
		return fmt.Errorf("core: provider %s already serves path %q", p.Name, s.Path)
	}
	p.byNS[ns] = s
	p.byPath[s.Path] = s
	return nil
}

// MustRegister registers or panics; for static wiring in examples and mains.
func (p *Provider) MustRegister(s *Service) {
	if err := p.Register(s); err != nil {
		panic(err)
	}
}

// Services returns the deployed services sorted by contract name.
func (p *Provider) Services() []*Service {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Service, 0, len(p.byNS))
	for _, s := range p.byNS {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Contract.Name < out[j].Contract.Name })
	return out
}

// EndpointFor returns the externally visible endpoint URL of a deployed
// service.
func (p *Provider) EndpointFor(s *Service) string {
	return p.BaseURL + s.Path
}

// WSDLFor renders the WSDL document for a deployed service, with the
// provider's endpoint address.
func (p *Provider) WSDLFor(s *Service) string {
	svc := &wsdl.Service{Name: s.Contract.Name + "Service", Interface: s.Contract, Endpoint: p.EndpointFor(s)}
	return svc.Render()
}

// wsdlBytesFor returns the rendered WSDL for a deployed service, cached
// per service path. Contracts are immutable after registration, so the
// only invalidation trigger is a BaseURL rewrite. The document is rendered
// from the same BaseURL snapshot the cache entry is keyed to, so a
// concurrent SetBaseURL can never poison an entry with mismatched endpoint
// addresses.
func (p *Provider) wsdlBytesFor(s *Service) []byte {
	p.mu.RLock()
	e, ok := p.wsdlCache[s.Path]
	base := p.BaseURL
	p.mu.RUnlock()
	if ok && e.baseURL == base {
		return e.doc
	}
	svc := &wsdl.Service{Name: s.Contract.Name + "Service", Interface: s.Contract, Endpoint: base + s.Path}
	doc := []byte(svc.Render())
	p.mu.Lock()
	if p.wsdlCache == nil {
		p.wsdlCache = make(map[string]wsdlCacheEntry)
	}
	p.wsdlCache[s.Path] = wsdlCacheEntry{baseURL: base, doc: doc}
	p.mu.Unlock()
	return doc
}

// Dispatch processes one request envelope addressed to any hosted service.
// It is the EnvelopeHandler for the whole provider: routing is by the call
// element's namespace, so one SSP port can front every service, exactly as
// the paper's Apache SOAP rpcrouter did. ctx scopes the request (HTTP
// request context on the wire path, caller's context in-process) and is
// surfaced to handlers as Context.Ctx. When the handler chain was
// abandoned mid-flight (deadline middleware), the returned error is marked
// with soap.Hold so transports leak the pooled request tree instead of
// recycling it under the runaway goroutine.
func (p *Provider) Dispatch(ctx context.Context, env *soap.Envelope, httpReq *http.Request) (*soap.Envelope, error) {
	call, err := soap.ParseCall(env)
	if err != nil {
		return nil, err
	}
	p.mu.RLock()
	svc := p.byNS[call.ServiceNS]
	p.mu.RUnlock()
	if svc == nil {
		return nil, &soap.Fault{Code: soap.FaultClient, Actor: p.Name,
			String: fmt.Sprintf("no service for namespace %q", call.ServiceNS)}
	}
	h := p.handlerFor(svc, call.Method)
	if h == nil {
		return nil, soap.NewPortalError(svc.Contract.Name, soap.ErrCodeNoSuchMethod,
			"operation %q not implemented", call.Method)
	}
	c := &Context{
		Operation:   call.Method,
		ServiceNS:   call.ServiceNS,
		Envelope:    env,
		HTTPRequest: httpReq,
		Ctx:         ctx,
	}
	returns, err := h(c, soap.Args(call.Params))
	if err != nil {
		if c.Abandoned() {
			err = soap.Hold(err)
		}
		return nil, err
	}
	resp := &soap.Response{ServiceNS: call.ServiceNS, Method: call.Method, Returns: returns}
	// The response envelope is streamed: when the transport serialises it,
	// the operation element and typed return values are written directly to
	// the output buffer, with no element tree in between.
	return resp.WireEnvelope(), nil
}

// handlerFor returns the fully composed middleware chain for one
// operation, composing and memoizing it on first use (Use invalidates the
// memo, so wiring-time changes still apply); nil when the operation has no
// handler.
func (p *Provider) handlerFor(svc *Service, method string) HandlerFunc {
	p.mu.RLock()
	h := svc.composed[method]
	p.mu.RUnlock()
	if h != nil {
		return h
	}
	base, ok := svc.handlers[method]
	if !ok {
		return nil
	}
	p.mu.Lock()
	h = Chain(base, p.middleware, svc.middleware)
	if svc.composed == nil {
		svc.composed = make(map[string]HandlerFunc, len(svc.handlers))
	}
	svc.composed[method] = h
	p.mu.Unlock()
	return h
}

// DispatchRaw is the streaming decode fast path: it dispatches a request
// straight from its serialised bytes, walking envelope tokens into typed
// arguments through the target service's StreamDecoder without building
// an element tree. handled=false means the request is outside the
// streaming subset (headers present, xml-typed or malformed parameters,
// unknown service or operation, foreign envelope shapes ...) and the
// caller must re-dispatch through Dispatch, whose tree path is the
// semantic authority for every such case. The decision is made before the
// handler runs: once handled is true the operation has executed and the
// result is final, errors converting to faults exactly as for Dispatch.
func (p *Provider) DispatchRaw(ctx context.Context, body []byte, httpReq *http.Request) (resp *soap.Envelope, handled bool, err error) {
	r := soap.AcquireBodyReader(body)
	cursorHeld := true
	defer func() {
		if cursorHeld {
			r.Release()
		}
	}()
	ns, method, ok := r.Begin()
	if !ok {
		return nil, false, nil
	}
	p.mu.RLock()
	svc := p.byNS[ns]
	p.mu.RUnlock()
	if svc == nil || svc.Stream == nil {
		return nil, false, nil
	}
	decoded, raw, ok := svc.Stream.DecodeCallStream(method, r)
	if !ok {
		return nil, false, nil
	}
	// release recycles the decoder's pooled scratch (when it pools any) at
	// every exit past this point: the decode products must not outlive the
	// dispatch, which the handler-retention contract guarantees.
	release := func() {
		if rel, ok := svc.Stream.(StreamReleaser); ok {
			rel.ReleaseStream(decoded, raw)
		}
	}
	if !r.Finish() {
		release()
		return nil, false, nil
	}
	h := p.handlerFor(svc, method)
	if h == nil {
		release()
		return nil, false, nil // NoSuchMethod fault via the tree path
	}
	// Decode is complete and its products are copies: the cursor and
	// scanner go back to their pools now, before the handler runs, so a
	// slow or cancelled handler never pins them.
	cursorHeld = false
	r.Release()
	// The fast path only handles headerless requests, so an empty envelope
	// is a faithful view for middleware that inspects ctx.Envelope (e.g.
	// SAML header checks see the same absence either way). Context, the
	// request envelope view, the response, and the response envelope all
	// share one request-scoped allocation.
	var cx struct {
		ctx    Context
		env    soap.Envelope
		out    soap.Response
		outEnv soap.Envelope
	}
	cx.ctx = Context{
		Operation:   method,
		ServiceNS:   ns,
		Envelope:    &cx.env,
		HTTPRequest: httpReq,
		Decoded:     decoded,
		Ctx:         ctx,
	}
	returns, err := h(&cx.ctx, soap.Args(raw))
	if err != nil {
		// An abandoned handler may still read the decoded args, so their
		// pooled scratch must leak to the garbage collector, not recycle.
		if !cx.ctx.Abandoned() {
			release()
		}
		return nil, true, err
	}
	cx.out = soap.Response{ServiceNS: ns, Method: method, Returns: returns}
	cx.out.WireEnvelopeInto(&cx.outEnv)
	release()
	return &cx.outEnv, true, nil
}

// Loopback returns the in-process transport for this provider with both
// dispatch paths wired: the streaming fast path first, the pooled tree
// path as fallback — the exact wiring ServeHTTP uses.
func (p *Provider) Loopback() *soap.LoopbackTransport {
	return &soap.LoopbackTransport{Handler: p.Dispatch, Raw: p.DispatchRaw}
}

// Chain composes middleware groups around a handler. Groups are applied in
// order with earlier groups outermost, and within a group earlier
// middlewares are outermost, so Chain(h, provider, service) runs provider
// middlewares first on the way in and last on the way out.
func Chain(h HandlerFunc, groups ...[]Middleware) HandlerFunc {
	for g := len(groups) - 1; g >= 0; g-- {
		mws := groups[g]
		for i := len(mws) - 1; i >= 0; i-- {
			h = mws[i](h)
		}
	}
	return h
}

// ServeHTTP implements http.Handler: POST dispatches SOAP; GET with ?wsdl
// on a service path returns its WSDL document (the paper's UDDI entries
// point at exactly these URLs).
func (p *Provider) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			p.mu.RLock()
			svc := p.byPath[r.URL.Path]
			p.mu.RUnlock()
			if svc == nil {
				http.NotFound(w, r)
				return
			}
			doc := p.wsdlBytesFor(svc)
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
			_, _ = w.Write(doc)
			return
		}
		http.Error(w, "soap service provider: POST SOAP or GET ?wsdl", http.StatusBadRequest)
		return
	}
	soap.HandlerWithRaw(p.Dispatch, p.DispatchRaw).ServeHTTP(w, r)
}

// Client is a proxy bound to a service endpoint and contract. It validates
// each call against the contract before sending: an interoperability bug
// (wrong operation, wrong arity, wrong parameter name or type) surfaces at
// the caller rather than as a confusing remote fault.
type Client struct {
	// Transport carries the SOAP messages.
	Transport soap.Transport
	// Endpoint is the bound service URL.
	Endpoint string
	// Contract is the agreed interface.
	Contract *wsdl.Interface
	// Strict disables contract validation when false-positive flexibility
	// is needed (defaults to strict).
	Strict bool
	// Retry, when non-nil, retries failed calls with backoff. Only
	// failures that cannot have executed server-side (ServerBusy and
	// ServiceUnavailable rejections) are retried unconditionally;
	// transport failures and timeouts are retried only for operations the
	// contract declares Idempotent. The caller's context bounds the whole
	// retry loop.
	Retry *resilience.RetryPolicy
	// Breakers, when non-nil, applies a per-endpoint circuit breaker: a
	// dead backend opens the circuit and subsequent calls fail fast with
	// resilience.ErrOpen instead of waiting out another timeout.
	Breakers *resilience.BreakerSet

	interceptors []ClientInterceptor
}

// Bind constructs a client from a WSDL document, taking the endpoint from
// the service port address — the dynamic binding step of Figure 1.
func Bind(t soap.Transport, wsdlDoc string) (*Client, error) {
	svc, err := wsdl.Parse(wsdlDoc)
	if err != nil {
		return nil, err
	}
	if svc.Endpoint == "" {
		return nil, fmt.Errorf("core: WSDL for %s has no endpoint address", svc.Name)
	}
	return &Client{Transport: t, Endpoint: svc.Endpoint, Contract: svc.Interface, Strict: true}, nil
}

// BindURL fetches a WSDL document from url (conventionally endpoint+"?wsdl")
// with the given HTTP client and binds to it.
func BindURL(t soap.Transport, hc *http.Client, url string) (*Client, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(url)
	if err != nil {
		return nil, fmt.Errorf("core: fetch WSDL %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("core: fetch WSDL %s: HTTP %d", url, resp.StatusCode)
	}
	return Bind(t, string(body))
}

// NewClient constructs a client directly from a known contract and
// endpoint (static binding).
func NewClient(t soap.Transport, endpoint string, contract *wsdl.Interface) *Client {
	return &Client{Transport: t, Endpoint: endpoint, Contract: contract, Strict: true}
}

// Use appends a client interceptor.
func (c *Client) Use(i ClientInterceptor) *Client {
	c.interceptors = append(c.interceptors, i)
	return c
}

// prepare validates a call against the contract, builds the streamed
// request envelope, and runs the client interceptors.
func (c *Client) prepare(operation string, params []soap.Value) (*soap.Envelope, error) {
	if c.Strict {
		if err := c.validate(operation, params); err != nil {
			return nil, err
		}
	}
	// Call and envelope share one request-scoped allocation; the envelope
	// reads the call at serialisation time, so interceptor amendments to
	// either still land on the wire.
	var m struct {
		call soap.Call
		env  soap.Envelope
	}
	m.call = soap.Call{ServiceNS: c.Contract.TargetNS, Method: operation, Params: params}
	m.call.WireEnvelopeInto(&m.env)
	for _, i := range c.interceptors {
		if err := i(&m.call, &m.env); err != nil {
			return nil, err
		}
	}
	return &m.env, nil
}

// idempotent reports the contract's idempotency declaration for operation.
func (c *Client) idempotent(operation string) bool {
	op := c.Contract.Operation(operation)
	return op != nil && op.Idempotent
}

// retryable reports whether err may be retried given the operation's
// idempotency. ServerBusy and ServiceUnavailable are pre-execution
// rejections (load shedding, drain) and always retryable; timeouts and
// transport failures are ambiguous — the request may have executed — so
// only idempotent operations retry them. Faults and context expiry are
// definitive.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if pe := soap.AsPortalError(err); pe != nil {
		switch pe.Code {
		case soap.ErrCodeServerBusy, soap.ErrCodeUnavailable:
			return true
		case soap.ErrCodeTimeout:
			return idempotent
		default:
			return false
		}
	}
	if soap.AsFault(err) != nil {
		return false // a definitive answer, just not the wanted one
	}
	return idempotent // transport-level failure: execution is ambiguous
}

// endpointFailure classifies an attempt outcome for the circuit breaker:
// any response from the endpoint — success or fault — proves it alive;
// transport-level failures (including timeouts) count against it.
func endpointFailure(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	return soap.AsFault(err) == nil && soap.AsPortalError(err) == nil
}

// withResilience runs one logical call as one or more attempts under the
// client's breaker and retry policy. attempt must be safely re-runnable.
func (c *Client) withResilience(ctx context.Context, operation string, attempt func(ctx context.Context) error) error {
	if c.Retry == nil && c.Breakers == nil {
		return attempt(ctx)
	}
	var br *resilience.Breaker
	if c.Breakers != nil {
		br = c.Breakers.For(c.Endpoint)
	}
	idem := c.idempotent(operation)
	attempts := c.Retry.Attempts()
	for n := 0; ; n++ {
		if br != nil {
			if err := br.Allow(); err != nil {
				return fmt.Errorf("core: %s %s: %w", c.Endpoint, operation, err)
			}
		}
		err := attempt(ctx)
		if br != nil {
			br.Record(endpointFailure(err))
		}
		if err == nil || n+1 >= attempts || !retryable(err, idem) {
			return err
		}
		if werr := c.Retry.Wait(ctx, n); werr != nil {
			return err // context expired mid-backoff: surface the last real failure
		}
	}
}

// Call invokes a contract operation with ordered parameters. The response
// tree is retained and owned by the caller forever; request-scoped callers
// that only extract strings should prefer CallPooled (or the CallText /
// CallStrings helpers, which pool internally).
func (c *Client) Call(operation string, params ...soap.Value) (*soap.Response, error) {
	return c.CallCtx(context.Background(), operation, params...)
}

// CallCtx is Call scoped to a context: the deadline bounds the transport
// round trip and the whole retry loop.
func (c *Client) CallCtx(ctx context.Context, operation string, params ...soap.Value) (*soap.Response, error) {
	env, err := c.prepare(operation, params)
	if err != nil {
		return nil, err
	}
	action := c.Contract.TargetNS + "#" + operation
	var resp *soap.Response
	err = c.withResilience(ctx, operation, func(ctx context.Context) error {
		resp = nil
		respEnv, rerr := soap.RoundTripContext(ctx, c.Transport, c.Endpoint, action, env)
		if rerr != nil {
			return rerr
		}
		resp, rerr = soap.ParseResponse(respEnv)
		return rerr
	})
	return resp, err
}

// CallPooled invokes a contract operation and parses the response envelope
// into a pooled element arena — the client-side counterpart of the pooled
// request decode the server transports use. The returned release function
// must be called exactly once when the caller is done with the response;
// afterwards no *xmlutil.Element reachable from it (XML-valued returns,
// fault details) may be retained. Strings extracted from the response stay
// valid forever. On error the response storage has already been reclaimed
// (fault details are detached first, so a returned *soap.Fault is safe to
// keep) and the release function is a no-op.
//
// Transports that cannot return raw bytes (non-RawTransport
// implementations) fall back to the retained parse of Call.
func (c *Client) CallPooled(operation string, params ...soap.Value) (*soap.Response, func(), error) {
	return c.CallPooledCtx(context.Background(), operation, params...)
}

// CallPooledCtx is CallPooled scoped to a context; see CallCtx.
func (c *Client) CallPooledCtx(ctx context.Context, operation string, params ...soap.Value) (*soap.Response, func(), error) {
	noop := func() {}
	rt, ok := c.Transport.(soap.RawTransport)
	if !ok {
		resp, err := c.CallCtx(ctx, operation, params...)
		return resp, noop, err
	}
	env, err := c.prepare(operation, params)
	if err != nil {
		return nil, noop, err
	}
	action := c.Contract.TargetNS + "#" + operation
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	var resp *soap.Response
	release := noop
	err = c.withResilience(ctx, operation, func(ctx context.Context) error {
		buf.Reset()
		resp, release = nil, noop
		if rerr := soap.RoundTripRawContext(ctx, rt, c.Endpoint, action, env, buf); rerr != nil {
			return rerr
		}
		// Streaming fast path: scalar/array responses decode straight from
		// the wire tokens with nothing to release. Faults, XML-valued
		// returns, and anything unusual fall back to the pooled tree parse.
		if r, ok := soap.ParseResponseStream(buf.Bytes()); ok {
			resp = r
			return nil
		}
		respEnv, doc, perr := soap.ParseEnvelopeBytesPooled(buf.Bytes())
		if perr != nil {
			return perr
		}
		r, rerr := soap.ParseResponse(respEnv)
		if rerr != nil {
			// The error (usually a *soap.Fault) outlives the arena: detach
			// any detail trees before recycling the envelope storage.
			if r != nil && r.Fault != nil {
				detail := make([]*xmlutil.Element, len(r.Fault.Detail))
				for i, d := range r.Fault.Detail {
					detail[i] = d.Clone()
				}
				r.Fault.Detail = detail
			}
			doc.Release()
			resp = r
			return rerr
		}
		resp, release = r, doc.Release
		return nil
	})
	return resp, release, err
}

// validate checks the call against the contract.
func (c *Client) validate(operation string, params []soap.Value) error {
	op := c.Contract.Operation(operation)
	if op == nil {
		return fmt.Errorf("core: operation %q not in contract %s", operation, c.Contract.Name)
	}
	if len(params) != len(op.Input) {
		return fmt.Errorf("core: %s.%s takes %d parameters, got %d",
			c.Contract.Name, operation, len(op.Input), len(params))
	}
	for i, want := range op.Input {
		got := params[i]
		if got.Name != want.Name {
			return fmt.Errorf("core: %s.%s parameter %d is %q, contract says %q",
				c.Contract.Name, operation, i, got.Name, want.Name)
		}
		if !typeMatches(want.Type, got) {
			return fmt.Errorf("core: %s.%s parameter %q has wire type %q, contract says %q",
				c.Contract.Name, operation, want.Name, wireType(got), want.Type)
		}
	}
	return nil
}

func typeMatches(contractType string, v soap.Value) bool {
	return wireType(v) == contractType
}

func wireType(v soap.Value) string {
	switch {
	case v.XML != nil:
		return "xml"
	case v.Type == "Array":
		return "stringArray"
	default:
		return v.Type
	}
}

// CallText invokes an operation and returns the first out parameter's text;
// the one-string-in, one-string-out convenience shape most of the paper's
// services expose. The response is parsed into a pooled arena and released
// before returning — the extracted string is always safe to keep.
func (c *Client) CallText(operation string, params ...soap.Value) (string, error) {
	return c.CallTextCtx(context.Background(), operation, params...)
}

// CallTextCtx is CallText scoped to a context; see CallCtx.
func (c *Client) CallTextCtx(ctx context.Context, operation string, params ...soap.Value) (string, error) {
	resp, release, err := c.CallPooledCtx(ctx, operation, params...)
	if err != nil {
		return "", err
	}
	text := resp.ReturnText("")
	release()
	return text, nil
}

// CallXML invokes an operation and returns the first out parameter's XML
// payload. The whole response tree is retained; prefer CallXMLCopy, which
// parses through the pooled arena and hands back only a copy of the
// payload itself.
func (c *Client) CallXML(operation string, params ...soap.Value) (*xmlutil.Element, error) {
	resp, err := c.Call(operation, params...)
	if err != nil {
		return nil, err
	}
	v, ok := resp.Return("")
	if !ok || v.XML == nil {
		return nil, fmt.Errorf("core: %s.%s returned no XML payload", c.Contract.Name, operation)
	}
	return v.XML, nil
}

// CallXMLCopy invokes an operation and returns a copy of the first out
// parameter's XML payload. The response envelope is parsed into a pooled
// element arena (the RoundTripRaw path) and released before returning:
// only the payload subtree is copied out, so the caller owns a minimal
// tree instead of retaining the whole envelope as CallXML does.
func (c *Client) CallXMLCopy(operation string, params ...soap.Value) (*xmlutil.Element, error) {
	resp, release, err := c.CallPooled(operation, params...)
	if err != nil {
		return nil, err
	}
	defer release()
	v, ok := resp.Return("")
	if !ok || v.XML == nil {
		return nil, fmt.Errorf("core: %s.%s returned no XML payload", c.Contract.Name, operation)
	}
	return v.XML.Clone(), nil
}

// CallStrings invokes an operation and returns the first out parameter as a
// string slice. Like CallText it parses the response into a pooled arena
// and releases it before returning.
func (c *Client) CallStrings(operation string, params ...soap.Value) ([]string, error) {
	resp, release, err := c.CallPooled(operation, params...)
	if err != nil {
		return nil, err
	}
	defer release()
	v, ok := resp.Return("")
	if !ok {
		return nil, fmt.Errorf("core: %s.%s returned nothing", c.Contract.Name, operation)
	}
	out := make([]string, 0, len(v.Items))
	for _, item := range v.Items {
		out = append(out, item.Text)
	}
	return out, nil
}
