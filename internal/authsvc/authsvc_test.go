package authsvc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gss"
	"repro/internal/saml"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

var t0 = time.Date(2002, 6, 1, 9, 0, 0, 0, time.UTC)

// fixture wires the full Figure 2 topology: KDC, Authentication Service
// (optionally reached over SOAP), a protected SPP with an echo service,
// and a UI-server client session.
type fixture struct {
	kdc     *gss.KDC
	service *Service
	now     time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{now: t0}
	f.kdc = gss.NewKDC("GRID.IU.EDU")
	f.kdc.SetTimeSource(func() time.Time { return f.now })
	f.kdc.AddPrincipal("cyoun", "hunter2")
	f.kdc.AddPrincipal("marpierce", "gateway")
	f.kdc.AddPrincipal("authsvc/grids.iu.edu", "keytab-secret")
	kt, err := f.kdc.Keytab("authsvc/grids.iu.edu")
	if err != nil {
		t.Fatal(err)
	}
	f.service = NewService(kt)
	f.service.SetTimeSource(func() time.Time { return f.now })
	return f
}

func (f *fixture) login(t *testing.T, user, password string) *ClientSession {
	t.Helper()
	cs, err := Login(f.kdc, user, password, "authsvc/grids.iu.edu",
		f.service.EstablishSession, func() time.Time { return f.now })
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestLoginAndVerify(t *testing.T) {
	f := newFixture(t)
	cs := f.login(t, "cyoun", "hunter2")
	if cs.Principal != "cyoun" || cs.SessionID == "" {
		t.Fatalf("session = %+v", cs)
	}
	if f.service.SessionCount() != 1 {
		t.Errorf("sessions = %d", f.service.SessionCount())
	}
	a := cs.NewAssertion(0)
	principal, err := f.service.VerifyAssertion(a)
	if err != nil || principal != "cyoun" {
		t.Errorf("verify = %q, %v", principal, err)
	}
}

func TestLoginFailures(t *testing.T) {
	f := newFixture(t)
	if _, err := Login(f.kdc, "cyoun", "wrong", "authsvc/grids.iu.edu",
		f.service.EstablishSession, func() time.Time { return f.now }); err == nil {
		t.Error("bad password login succeeded")
	}
	if _, err := Login(f.kdc, "ghost", "x", "authsvc/grids.iu.edu",
		f.service.EstablishSession, func() time.Time { return f.now }); err == nil {
		t.Error("unknown user login succeeded")
	}
}

func TestVerifyRejections(t *testing.T) {
	f := newFixture(t)
	cs := f.login(t, "cyoun", "hunter2")
	// Unknown session.
	a := cs.NewAssertion(0)
	a.SessionID = "authsess-999"
	if _, err := f.service.VerifyAssertion(a); err == nil {
		t.Error("unknown session accepted")
	}
	// Expired assertion.
	a2 := cs.NewAssertion(time.Minute)
	f.now = f.now.Add(2 * time.Minute)
	if _, err := f.service.VerifyAssertion(a2); err == nil {
		t.Error("expired assertion accepted")
	}
	f.now = t0
	// Subject mismatch: cyoun's session cannot vouch for marpierce.
	a3 := cs.NewAssertion(0)
	a3.Subject = "marpierce"
	if _, err := f.service.VerifyAssertion(a3); err == nil {
		t.Error("subject substitution accepted")
	}
	// Forged signature (different session's key).
	cs2 := f.login(t, "marpierce", "gateway")
	a4 := cs2.NewAssertion(0)
	a4.SessionID = cs.SessionID
	a4.Subject = "cyoun"
	if _, err := f.service.VerifyAssertion(a4); err == nil {
		t.Error("cross-session forgery accepted")
	}
}

func TestCloseSession(t *testing.T) {
	f := newFixture(t)
	cs := f.login(t, "cyoun", "hunter2")
	if err := f.service.CloseSession(cs.SessionID); err != nil {
		t.Fatal(err)
	}
	if err := f.service.CloseSession(cs.SessionID); err == nil {
		t.Error("double close accepted")
	}
	if _, err := f.service.VerifyAssertion(cs.NewAssertion(0)); err == nil {
		t.Error("assertion verified against closed session")
	}
}

func echoContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "Echo",
		TargetNS: "urn:test:echo",
		Operations: []wsdl.Operation{{
			Name:   "whoami",
			Output: []wsdl.Param{{Name: "principal", Type: "string"}},
		}},
	}
}

func protectedSPP(v Verifier) *core.Provider {
	p := core.NewProvider("spp", "loopback://spp")
	p.Use(RequireAssertion(v))
	svc := core.NewService(echoContract()).
		Handle("whoami", func(ctx *core.Context, _ soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.Str("principal", ctx.Principal)}, nil
		})
	p.MustRegister(svc)
	return p
}

// TestAtomicStepLocalVerifier runs the whole Figure 2 atomic step with the
// SPP verifying through an in-process Authentication Service.
func TestAtomicStepLocalVerifier(t *testing.T) {
	f := newFixture(t)
	cs := f.login(t, "cyoun", "hunter2")
	spp := protectedSPP(&LocalVerifier{Service: f.service})
	client := core.NewClient(&soap.LoopbackTransport{Handler: spp.Dispatch}, "x", echoContract())
	client.Use(cs.Interceptor())
	got, err := client.CallText("whoami")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cyoun" {
		t.Errorf("principal = %q", got)
	}
}

// TestAtomicStepSOAPVerifier is the distributed variant: the SPP forwards
// assertions to the Authentication Service over SOAP, exactly as the paper
// describes ("The SPP does not check the signature of the request directly
// but instead forwards to the Authentication Service").
func TestAtomicStepSOAPVerifier(t *testing.T) {
	f := newFixture(t)
	cs := f.login(t, "cyoun", "hunter2")
	// Authentication Service SSP.
	authSSP := core.NewProvider("auth-ssp", "loopback://auth")
	authSSP.MustRegister(NewSOAPService(f.service))
	authClient := NewClient(&soap.LoopbackTransport{Handler: authSSP.Dispatch}, "loopback://auth/AuthenticationService")
	// Protected SPP using the SOAP verifier.
	spp := protectedSPP(authClient)
	client := core.NewClient(&soap.LoopbackTransport{Handler: spp.Dispatch}, "x", echoContract())
	client.Use(cs.Interceptor())
	got, err := client.CallText("whoami")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cyoun" {
		t.Errorf("principal = %q", got)
	}
}

func TestSPPRejectsMissingAndBadAssertions(t *testing.T) {
	f := newFixture(t)
	spp := protectedSPP(&LocalVerifier{Service: f.service})
	client := core.NewClient(&soap.LoopbackTransport{Handler: spp.Dispatch}, "x", echoContract())
	// No assertion at all.
	_, err := client.CallText("whoami")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeAuthFailed {
		t.Errorf("missing assertion err = %v", err)
	}
	// Unsigned assertion.
	client2 := core.NewClient(&soap.LoopbackTransport{Handler: spp.Dispatch}, "x", echoContract())
	client2.Use(func(_ *soap.Call, env *soap.Envelope) error {
		a := saml.New("rogue", "cyoun", saml.MethodKerberos, "authsess-1", f.now, time.Minute)
		saml.Attach(env, a)
		return nil
	})
	_, err = client2.CallText("whoami")
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeAuthFailed {
		t.Errorf("unsigned assertion err = %v", err)
	}
}

func TestSOAPServiceSessionLifecycle(t *testing.T) {
	f := newFixture(t)
	authSSP := core.NewProvider("auth-ssp", "loopback://auth")
	authSSP.MustRegister(NewSOAPService(f.service))
	cl := NewClient(&soap.LoopbackTransport{Handler: authSSP.Dispatch}, "loopback://auth/AuthenticationService")

	cs, err := Login(f.kdc, "cyoun", "hunter2", "authsvc/grids.iu.edu",
		cl.EstablishSession, func() time.Time { return f.now })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cs.SessionID, "authsess-") {
		t.Errorf("session id = %q", cs.SessionID)
	}
	principal, err := cl.Verify(cs.NewAssertion(0))
	if err != nil || principal != "cyoun" {
		t.Errorf("verify over SOAP = %q, %v", principal, err)
	}
	if err := cl.CloseSession(cs.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Verify(cs.NewAssertion(0)); err == nil {
		t.Error("verify after close succeeded")
	}
	if err := cl.CloseSession(cs.SessionID); err == nil {
		t.Error("double close over SOAP accepted")
	}
	// Bad context token.
	if _, err := cl.EstablishSession("garbage"); err == nil {
		t.Error("garbage token accepted")
	}
}
