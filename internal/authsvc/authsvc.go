// Package authsvc implements the assertion-based Authentication Service of
// Figure 2. The flow it realises, quoting the paper's atomic step:
//
//  1. A user logs in through a web browser and gets a Kerberos ticket on
//     the User Interface (UI) server.
//  2. The UI server creates a client session object that contacts the
//     Authentication Service, which launches a server session object; the
//     two establish a GSS context. "Each of these objects possesses one
//     half of the symmetric key set for a particular user."
//  3. Subsequent user interaction generates SOAP requests that include a
//     SAML assertion signed by the client object on the UI server.
//  4. The SOAP Service Provider (SPP) "does not check the signature of the
//     request directly but instead forwards to the Authentication Service,
//     which verifies the signature" and answers positively or negatively.
//
// Keeping the keytab on one well-secured server is the design motivation
// the paper gives; here only the Service holds the keytab, the UI server
// holds only tickets and session keys, and SPPs hold nothing but the
// Service's endpoint.
package authsvc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gss"
	"repro/internal/rpc"
	"repro/internal/saml"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

// DefaultAssertionValidity bounds how long a signed assertion is accepted.
const DefaultAssertionValidity = 5 * time.Minute

// ServiceNS is the SOAP namespace of the Authentication Service.
const ServiceNS = "urn:gce:authsvc"

// soapDef is the declarative operation table exposing a Service over
// SOAP. Contract derivation and service deployment both read it.
func soapDef(s *Service) *rpc.Def {
	fail := func(code, format string, a ...interface{}) error {
		return soap.NewPortalError("AuthenticationService", code, format, a...)
	}
	return &rpc.Def{
		Name: "AuthenticationService",
		NS:   ServiceNS,
		Doc:  "SAML assertion issuing and verification backed by Kerberos/GSS.",
		Ops: []rpc.Op{
			{
				Name: "establishSession",
				Doc:  "Accepts a GSS context token and creates a server session object.",
				In:   []wsdl.Param{rpc.Str("contextToken")},
				Out:  []wsdl.Param{rpc.Str("sessionID")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					id, err := s.EstablishSession(in.Str("contextToken"))
					if err != nil {
						return nil, fail(soap.ErrCodeAuthFailed, "%v", err)
					}
					return rpc.Ret(id), nil
				},
			},
			{
				Name:       "verifyAssertion",
				Idempotent: true,
				Doc:        "Verifies a signed SAML assertion against the named session.",
				In:         []wsdl.Param{rpc.XML("assertion")},
				Out:        []wsdl.Param{rpc.Bool("valid"), rpc.Str("principal")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					el := in.XML("assertion")
					if el == nil {
						return nil, fail(soap.ErrCodeBadRequest, "missing assertion")
					}
					a, err := saml.FromElement(el)
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					principal, err := s.VerifyAssertion(a)
					if err != nil {
						// A negative verification is a normal response, not a
						// fault: the SPP decides what to do with it.
						return rpc.Ret(false, ""), nil
					}
					return rpc.Ret(true, principal), nil
				},
			},
			{
				Name: "closeSession",
				In:   []wsdl.Param{rpc.Str("sessionID")},
				Out:  []wsdl.Param{rpc.Bool("closed")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					if err := s.CloseSession(in.Str("sessionID")); err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
		},
	}
}

// Contract returns the Authentication Service WSDL interface.
func Contract() *wsdl.Interface {
	return soapDef(nil).Interface()
}

// Service is the Authentication Service: the sole holder of the service
// keytab, managing server-side session objects.
type Service struct {
	keytab gss.Keytab
	now    func() time.Time

	mu       sync.RWMutex
	sessions map[string]*serverSession
	seq      int
}

// serverSession is the Authentication Service's half of one user's keys.
type serverSession struct {
	principal string
	ctx       *gss.Context
	created   time.Time
}

// NewService creates the Authentication Service around a keytab.
func NewService(keytab gss.Keytab) *Service {
	return &Service{keytab: keytab, now: time.Now, sessions: map[string]*serverSession{}}
}

// SetTimeSource overrides the clock.
func (s *Service) SetTimeSource(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// EstablishSession accepts a GSS context token (from a UI server's client
// session object) and creates the matching server session object.
func (s *Service) EstablishSession(contextToken string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, err := gss.AcceptContext(s.keytab, contextToken, s.now())
	if err != nil {
		return "", err
	}
	s.seq++
	id := fmt.Sprintf("authsess-%d", s.seq)
	s.sessions[id] = &serverSession{principal: ctx.Peer, ctx: ctx, created: s.now()}
	return id, nil
}

// VerifyAssertion checks an assertion's conditions and signature against
// the session named inside it, returning the authenticated principal.
func (s *Service) VerifyAssertion(a *saml.Assertion) (string, error) {
	s.mu.RLock()
	sess, ok := s.sessions[a.SessionID]
	now := s.now()
	s.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("authsvc: unknown session %q", a.SessionID)
	}
	if err := a.CheckConditions(now); err != nil {
		return "", err
	}
	if a.Subject != sess.principal {
		return "", fmt.Errorf("authsvc: assertion subject %q does not match session principal %q",
			a.Subject, sess.principal)
	}
	if err := a.VerifySignature(sess.ctx); err != nil {
		return "", err
	}
	return sess.principal, nil
}

// CloseSession discards a server session object.
func (s *Service) CloseSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("authsvc: unknown session %q", id)
	}
	delete(s.sessions, id)
	return nil
}

// SessionCount reports live sessions (monitoring).
func (s *Service) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// NewSOAPService exposes the Service as a deployable core.Service built
// from the declarative operation table.
func NewSOAPService(s *Service) *core.Service {
	return soapDef(s).MustBuild()
}

// --- UI-server side ----------------------------------------------------------

// ClientSession is the UI server's client session object: the user's half
// of the key set plus the session handle at the Authentication Service.
type ClientSession struct {
	// Principal is the logged-in user.
	Principal string
	// SessionID is the Authentication Service session handle.
	SessionID string

	ctx *gss.Context
	now func() time.Time
}

// Login performs the full Figure 2 login: Kerberos AS exchange at the KDC,
// GSS context initiation, and session establishment at the Authentication
// Service (reached through authClient, which may be local or a SOAP proxy).
func Login(kdc *gss.KDC, user, password, servicePrincipal string,
	establish func(contextToken string) (string, error), now func() time.Time) (*ClientSession, error) {
	if now == nil {
		now = time.Now
	}
	creds, err := kdc.Login(user, password, servicePrincipal)
	if err != nil {
		return nil, err
	}
	token, ctx, err := gss.InitContext(creds, now())
	if err != nil {
		return nil, err
	}
	sessionID, err := establish(token)
	if err != nil {
		return nil, err
	}
	return &ClientSession{Principal: user, SessionID: sessionID, ctx: ctx, now: now}, nil
}

// NewAssertion issues and signs a fresh assertion for the session's user.
func (cs *ClientSession) NewAssertion(validity time.Duration) *saml.Assertion {
	if validity <= 0 {
		validity = DefaultAssertionValidity
	}
	a := saml.New("ui-server", cs.Principal, saml.MethodKerberos, cs.SessionID, cs.now(), validity)
	a.Sign(cs.ctx)
	return a
}

// Interceptor returns a client interceptor that attaches a freshly signed
// assertion to every outgoing SOAP request.
func (cs *ClientSession) Interceptor() core.ClientInterceptor {
	return func(_ *soap.Call, env *soap.Envelope) error {
		saml.Attach(env, cs.NewAssertion(0))
		return nil
	}
}

// --- SPP side ----------------------------------------------------------------

// Verifier abstracts how an SPP reaches the Authentication Service: in-
// process for co-located deployment, or via SOAP with Client below.
type Verifier interface {
	// Verify returns the authenticated principal, or an error.
	Verify(a *saml.Assertion) (string, error)
}

// LocalVerifier verifies directly against an in-process Service.
type LocalVerifier struct {
	// Service is the co-located Authentication Service.
	Service *Service
}

// Verify implements Verifier.
func (v *LocalVerifier) Verify(a *saml.Assertion) (string, error) {
	return v.Service.VerifyAssertion(a)
}

// Client is a SOAP proxy to a remote Authentication Service.
type Client struct {
	c *core.Client
}

// NewClient binds to the Authentication Service endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// EstablishSession forwards a GSS context token.
func (cl *Client) EstablishSession(contextToken string) (string, error) {
	return cl.c.CallText("establishSession", soap.Str("contextToken", contextToken))
}

// Verify implements Verifier over SOAP — the forwarding step of Figure 2.
func (cl *Client) Verify(a *saml.Assertion) (string, error) {
	resp, err := cl.c.Call("verifyAssertion", soap.XMLDoc("assertion", a.Element()))
	if err != nil {
		return "", err
	}
	if resp.ReturnText("valid") != "true" {
		return "", fmt.Errorf("authsvc: verification rejected")
	}
	return resp.ReturnText("principal"), nil
}

// CloseSession closes a session over SOAP.
func (cl *Client) CloseSession(id string) error {
	_, err := cl.c.Call("closeSession", soap.Str("sessionID", id))
	return err
}

// RequireAssertion returns a provider middleware enforcing the Figure 2
// protocol on an SPP: every request must carry a SAML assertion that the
// Authentication Service accepts; the verified principal lands in the
// request context. It is the kernel's rpc.RequireAssertion specialised to
// this package's Verifier.
func RequireAssertion(v Verifier) core.Middleware {
	return rpc.RequireAssertion(v)
}
