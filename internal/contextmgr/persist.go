package contextmgr

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/persist"
)

// WAL record ops. Mutation records carry the timestamps the live operation
// used (At), so replay reproduces creation and archival times exactly by
// briefly overriding the store's time source. Snapshot dumps use opUser /
// opArchived / opSeq to re-emit whole subtrees.
const (
	opCreate      = "ctx.create"
	opRemove      = "ctx.remove"
	opRename      = "ctx.rename"
	opCopy        = "ctx.copy"
	opSetProp     = "ctx.setprop"
	opRmProp      = "ctx.rmprop"
	opClearProps  = "ctx.clearprops"
	opPlaceholder = "ctx.placeholder"
	opArchive     = "ctx.archive"
	opRestore     = "ctx.restore"
	opRmArchive   = "ctx.rmarchive"
	opImportDir   = "ctx.importdir"
	opUser        = "ctx.user"
	opArchived    = "ctx.archived"
	opSeqRec      = "ctx.seq"
)

// record is the union WAL record for store mutations and snapshot dumps.
type record struct {
	Path    []string  `json:"path,omitempty"`
	Name    string    `json:"name,omitempty"`
	Value   string    `json:"value,omitempty"`
	User    string    `json:"user,omitempty"`
	Problem string    `json:"problem,omitempty"`
	Session string    `json:"session,omitempty"`
	ID      string    `json:"id,omitempty"`
	Seq     int64     `json:"seq,omitempty"`
	At      time.Time `json:"at,omitempty"`
	Data    string    `json:"data,omitempty"`
	Tree    *treeNode `json:"tree,omitempty"`
}

// treeNode is the JSON shape of a context subtree (node has unexported
// fields by design; this codec is the only thing that serializes it).
type treeNode struct {
	Name     string               `json:"name"`
	Props    map[string]string    `json:"props,omitempty"`
	Children map[string]*treeNode `json:"children,omitempty"`
	Created  time.Time            `json:"created"`
}

func treeFromNode(n *node) *treeNode {
	t := &treeNode{Name: n.name, Created: n.created}
	if len(n.props) > 0 {
		t.Props = make(map[string]string, len(n.props))
		for k, v := range n.props {
			t.Props[k] = v
		}
	}
	if len(n.children) > 0 {
		t.Children = make(map[string]*treeNode, len(n.children))
		for k, c := range n.children {
			t.Children[k] = treeFromNode(c)
		}
	}
	return t
}

func nodeFromTree(t *treeNode) *node {
	n := newNode(t.Name, t.Created)
	for k, v := range t.Props {
		n.props[k] = v
	}
	for k, c := range t.Children {
		n.children[k] = nodeFromTree(c)
	}
	return n
}

// Persist replays st into the store (which should be empty) and installs it
// as the store's durability log: from here on every mutation is
// acknowledged only after its record is fsynced. Call once, before the
// store starts serving.
func (s *Store) Persist(st persist.Store) error {
	if err := st.Replay(s.apply); err != nil {
		return err
	}
	s.persist = persist.Bind(st, s.dump)
	return nil
}

// ClosePersist flushes and closes the attached store, if any. The store
// must have stopped serving writes.
func (s *Store) ClosePersist() error {
	return s.persist.Close()
}

// CompactPersist forces one synchronous compaction (tests, operator hooks).
// Routine compaction is automatic and needs no calls.
func (s *Store) CompactPersist() error {
	return s.persist.Compact()
}

// replayAt runs fn with the store clock pinned to the record's timestamp,
// so replayed mutations mint the same creation/archival times the live
// operation did. Replay is single-threaded, so the swap is safe.
func (s *Store) replayAt(at time.Time, fn func()) {
	if at.IsZero() {
		fn()
		return
	}
	prev := s.now.Load().(func() time.Time)
	s.now.Store(func() time.Time { return at })
	defer s.now.Store(prev)
	fn()
}

// apply is the replay function. Mutations reuse the public mutators (the
// binding is not installed yet, so nothing is re-logged) and ignore their
// errors: only successful mutations are ever logged, so an error here is a
// benign snapshot-overlap duplicate — e.g. a "create" already folded into
// the snapshot, whose existence check then refuses the reapply, which is
// exactly the idempotency the replay contract asks for.
func (s *Store) apply(op string, data []byte) error {
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("contextmgr: replay %s: %w", op, err)
	}
	if rec.Seq > s.seq.Load() {
		s.seq.Store(rec.Seq)
	}
	switch op {
	case opCreate:
		s.replayAt(rec.At, func() { _ = s.Create(rec.Path) })
	case opRemove:
		_ = s.Remove(rec.Path)
	case opRename:
		_ = s.Rename(rec.Path, rec.Name)
	case opCopy:
		_ = s.Copy(rec.Path, rec.Name)
	case opSetProp:
		_ = s.SetProp(rec.Path, rec.Name, rec.Value)
	case opRmProp:
		_ = s.RemoveProp(rec.Path, rec.Name)
	case opClearProps:
		_ = s.ClearProps(rec.Path)
	case opPlaceholder:
		s.replayAt(rec.At, func() { _ = s.CreatePlaceholder(rec.User, rec.Problem, rec.Session) })
	case opArchive:
		// A snapshot's opArchived record for the same ID carries the exact
		// archived tree and replays first; re-archiving here would capture
		// a later tree state, so the snapshot version wins.
		if _, ok := s.archives.Load(rec.ID); ok {
			break
		}
		s.replayAt(rec.At, func() { _ = s.archiveAs(rec.User, rec.Problem, rec.Session, rec.ID) })
	case opRestore:
		_ = s.RestoreSession(rec.ID)
	case opRmArchive:
		_ = s.RemoveArchive(rec.ID)
	case opImportDir:
		s.replayAt(rec.At, func() { _ = s.ImportDirectory(rec.Data) })
	case opUser:
		if rec.Tree != nil {
			s.users.Store(rec.Name, nodeFromTree(rec.Tree))
		}
	case opArchived:
		if rec.Tree != nil {
			s.archives.Store(rec.ID, &Archive{
				ID: rec.ID, User: rec.User, Problem: rec.Problem, Session: rec.Session,
				When: rec.At, snapshot: nodeFromTree(rec.Tree),
			})
		}
	case opSeqRec:
		// Sequence handled above.
	default:
		// Unknown op from a newer writer: skip rather than refuse to boot.
	}
	return nil
}

// dump re-emits current state for a compacting snapshot: the archive-ID
// sequence, one record per user subtree, one per archive. Each Range visits
// shards one at a time under their read locks; mutations racing the dump
// land in the post-rotation segment and replay over the snapshot.
func (s *Store) dump(add func(op string, data []byte) error) error {
	if err := persist.AddJSON(add, opSeqRec, record{Seq: s.seq.Load()}); err != nil {
		return err
	}
	var err error
	s.users.Range(func(name string, n *node) bool {
		err = persist.AddJSON(add, opUser, record{Name: name, Tree: treeFromNode(n)})
		return err == nil
	})
	if err != nil {
		return err
	}
	s.archives.Range(func(id string, a *Archive) bool {
		err = persist.AddJSON(add, opArchived, record{
			ID: a.ID, User: a.User, Problem: a.Problem, Session: a.Session,
			At: a.When, Tree: treeFromNode(a.snapshot),
		})
		return err == nil
	})
	return err
}
