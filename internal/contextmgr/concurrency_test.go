package contextmgr

import (
	"fmt"
	"sync"
	"testing"
)

// TestStoreConcurrentMixedWorkload exercises the sharded context tree and
// archive map from many goroutines: each worker owns a user subtree
// (create/props/archive/restore/rename) while cross-user sweeps (List,
// CountContexts, ExportDirectory) run concurrently. Run under -race this
// pins the per-shard locking including the ordered two-shard rename; the
// functional assertions are that each worker's subtree survives intact
// and the archive counters balance.
func TestStoreConcurrentMixedWorkload(t *testing.T) {
	s := NewStore()
	const workers = 8
	const iters = 80
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", g)
			if err := s.Create([]string{user}); err != nil {
				errs <- err
				return
			}
			if err := s.Create([]string{user, "p"}); err != nil {
				errs <- err
				return
			}
			archived := 0
			for i := 0; i < iters; i++ {
				sess := []string{user, "p", fmt.Sprintf("s%d", i%8)}
				switch i % 5 {
				case 0:
					if !s.Exists(sess) {
						if err := s.Create(sess); err != nil {
							errs <- err
							return
						}
					}
					if err := s.SetProp(sess, "input", fmt.Sprintf("deck-%d", i)); err != nil {
						errs <- err
						return
					}
				case 1:
					if s.Exists(sess) {
						id, err := s.ArchiveSession(user, "p", sess[2])
						if err != nil {
							errs <- err
							return
						}
						archived++
						if err := s.RestoreSession(id); err != nil {
							errs <- err
							return
						}
					}
				case 2:
					// Cross-user sweeps race the writers; they must not
					// error or tear.
					if _, err := s.List(nil); err != nil {
						errs <- err
						return
					}
					s.CountContexts()
				case 3:
					// Rename the user subtree away and back: exercises the
					// two-shard lock-pair path under contention.
					tmp := user + "-tmp"
					if err := s.Rename([]string{user}, tmp); err != nil {
						errs <- err
						return
					}
					if err := s.Rename([]string{tmp}, user); err != nil {
						errs <- err
						return
					}
				default:
					_ = s.ExportDirectory()
				}
			}
			if got := len(s.ListArchives(user)); got != archived {
				errs <- fmt.Errorf("%s: %d archives listed, want %d", user, got, archived)
				return
			}
			// The subtree must have survived every rename round-trip.
			if !s.Exists([]string{user, "p"}) {
				errs <- fmt.Errorf("%s: problem context lost", user)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	users, err := s.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != workers {
		t.Fatalf("users = %v, want %d entries", users, workers)
	}
}
