package contextmgr

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
)

func TestStoreHierarchy(t *testing.T) {
	s := NewStore()
	if err := s.Create([]string{"cyoun"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create([]string{"cyoun", "cfd"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create([]string{"cyoun", "cfd", "run1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create([]string{"cyoun", "cfd", "run1", "solver"}); err != nil {
		t.Fatal(err)
	}
	// Ancestors required.
	if err := s.Create([]string{"ghost", "p", "s"}); err == nil {
		t.Error("orphan creation accepted")
	}
	// Depth cap at module level.
	if err := s.Create([]string{"cyoun", "cfd", "run1", "solver", "deeper"}); err == nil {
		t.Error("over-deep path accepted")
	}
	// Duplicates rejected.
	if err := s.Create([]string{"cyoun"}); err == nil {
		t.Error("duplicate accepted")
	}
	if !s.Exists([]string{"cyoun", "cfd"}) || s.Exists([]string{"nope"}) {
		t.Error("Exists wrong")
	}
	kids, err := s.List([]string{"cyoun"})
	if err != nil || len(kids) != 1 || kids[0] != "cfd" {
		t.Errorf("List = %v, %v", kids, err)
	}
	if n := s.CountContexts(); n != 4 {
		t.Errorf("CountContexts = %d", n)
	}
}

func TestStoreProperties(t *testing.T) {
	s := NewStore()
	_ = s.Create([]string{"u"})
	if err := s.SetProp([]string{"u"}, "email", "cyoun@indiana.edu"); err != nil {
		t.Fatal(err)
	}
	v, err := s.GetProp([]string{"u"}, "email")
	if err != nil || v != "cyoun@indiana.edu" {
		t.Errorf("GetProp = %q, %v", v, err)
	}
	if _, err := s.GetProp([]string{"u"}, "missing"); err == nil {
		t.Error("missing property returned")
	}
	_ = s.SetProp([]string{"u"}, "aaa", "1")
	names, _ := s.ListProps([]string{"u"})
	if len(names) != 2 || names[0] != "aaa" {
		t.Errorf("ListProps = %v", names)
	}
	if err := s.RemoveProp([]string{"u"}, "aaa"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveProp([]string{"u"}, "aaa"); err == nil {
		t.Error("double remove accepted")
	}
	if err := s.ClearProps([]string{"u"}); err != nil {
		t.Fatal(err)
	}
	if names, _ := s.ListProps([]string{"u"}); len(names) != 0 {
		t.Errorf("after clear = %v", names)
	}
}

func TestRenameAndCopy(t *testing.T) {
	s := NewStore()
	_ = s.Create([]string{"u"})
	_ = s.Create([]string{"u", "p"})
	_ = s.Create([]string{"u", "p", "s1"})
	_ = s.SetProp([]string{"u", "p", "s1"}, "solver", "implicit")

	if err := s.Copy([]string{"u", "p", "s1"}, "s2"); err != nil {
		t.Fatal(err)
	}
	v, err := s.GetProp([]string{"u", "p", "s2"}, "solver")
	if err != nil || v != "implicit" {
		t.Errorf("copied prop = %q, %v", v, err)
	}
	// Copies are independent.
	_ = s.SetProp([]string{"u", "p", "s2"}, "solver", "explicit")
	v, _ = s.GetProp([]string{"u", "p", "s1"}, "solver")
	if v != "implicit" {
		t.Error("copy aliased original")
	}
	if err := s.Rename([]string{"u", "p", "s1"}, "base"); err != nil {
		t.Fatal(err)
	}
	if s.Exists([]string{"u", "p", "s1"}) || !s.Exists([]string{"u", "p", "base"}) {
		t.Error("rename failed")
	}
	if err := s.Rename([]string{"u", "p", "base"}, "s2"); err == nil {
		t.Error("rename onto existing accepted")
	}
	if err := s.Copy([]string{"u", "p", "base"}, "s2"); err == nil {
		t.Error("copy onto existing accepted")
	}
	if err := s.Copy([]string{"u", "p", "ghost"}, "x"); err == nil {
		t.Error("copy of missing accepted")
	}
}

func TestArchiveRestore(t *testing.T) {
	s := NewStore()
	fixed := time.Date(2002, 6, 10, 10, 0, 0, 0, time.UTC)
	s.SetTimeSource(func() time.Time { return fixed })
	_ = s.Create([]string{"u"})
	_ = s.Create([]string{"u", "p"})
	_ = s.Create([]string{"u", "p", "sess"})
	_ = s.SetProp([]string{"u", "p", "sess"}, "input", "deck-v1")

	id, err := s.ArchiveSession("u", "p", "sess")
	if err != nil {
		t.Fatal(err)
	}
	// Mutate, then restore: the old state comes back.
	_ = s.SetProp([]string{"u", "p", "sess"}, "input", "deck-v2")
	if err := s.RestoreSession(id); err != nil {
		t.Fatal(err)
	}
	v, _ := s.GetProp([]string{"u", "p", "sess"}, "input")
	if v != "deck-v1" {
		t.Errorf("restored = %q", v)
	}
	// Archive list.
	archives := s.ListArchives("u")
	if len(archives) != 1 || archives[0].ID != id || !archives[0].When.Equal(fixed) {
		t.Errorf("archives = %+v", archives)
	}
	if len(s.ListArchives("other")) != 0 {
		t.Error("archives leaked across users")
	}
	// Restore after deleting the session recreates it.
	_ = s.Remove([]string{"u", "p", "sess"})
	if err := s.RestoreSession(id); err != nil {
		t.Fatal(err)
	}
	if !s.Exists([]string{"u", "p", "sess"}) {
		t.Error("restore did not recreate session")
	}
	if err := s.RemoveArchive(id); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreSession(id); err == nil {
		t.Error("restore of removed archive accepted")
	}
	if _, err := s.ArchiveSession("u", "p", "ghost"); err == nil {
		t.Error("archive of missing session accepted")
	}
}

func TestPlaceholder(t *testing.T) {
	s := NewStore()
	if err := s.CreatePlaceholder("hotpage-user", "generic", "tmp-1"); err != nil {
		t.Fatal(err)
	}
	if !s.Exists([]string{"hotpage-user", "generic", "tmp-1"}) {
		t.Error("placeholder chain missing")
	}
	v, err := s.GetProp([]string{"hotpage-user"}, "placeholder")
	if err != nil || v != "true" {
		t.Errorf("placeholder mark = %q, %v", v, err)
	}
	// Idempotent reuse of existing segments.
	if err := s.CreatePlaceholder("hotpage-user", "generic", "tmp-2"); err != nil {
		t.Fatal(err)
	}
	kids, _ := s.List([]string{"hotpage-user", "generic"})
	if len(kids) != 2 {
		t.Errorf("sessions = %v", kids)
	}
	if err := s.CreatePlaceholder("", "p", "s"); err == nil {
		t.Error("empty segment accepted")
	}
}

func TestExportImportDirectory(t *testing.T) {
	s := NewStore()
	_ = s.Create([]string{"u"})
	_ = s.Create([]string{"u", "p"})
	_ = s.Create([]string{"u", "p", "s"})
	_ = s.SetProp([]string{"u", "p", "s"}, "code", "gaussian")
	_ = s.SetProp([]string{"u"}, "email", "x@y")

	dir := s.ExportDirectory()
	if !strings.Contains(dir, "/u/p/s") || !strings.Contains(dir, "/u/p/s:code=gaussian") {
		t.Fatalf("export:\n%s", dir)
	}
	s2 := NewStore()
	if err := s2.ImportDirectory(dir); err != nil {
		t.Fatal(err)
	}
	if s2.ExportDirectory() != dir {
		t.Errorf("import/export not idempotent:\n%s\nvs\n%s", s2.ExportDirectory(), dir)
	}
	if err := s2.ImportDirectory("/a/b:broken"); err == nil {
		t.Error("bad property line accepted")
	}
	if err := s2.ImportDirectory("/a//b"); err == nil {
		t.Error("bad path accepted")
	}
}

// TestMonolithMethodCount pins the paper's headline observation: the
// Context Manager interface "contained over 60 methods".
func TestMonolithMethodCount(t *testing.T) {
	n := MethodCount(MonolithContract())
	if n <= 60 {
		t.Errorf("monolith has %d methods, paper says over 60", n)
	}
	// And the decomposition is an order of magnitude leaner.
	if cs := MethodCount(ContextStoreContract()); cs > 10 {
		t.Errorf("ContextStore has %d methods, want <= 10", cs)
	}
	if sa := MethodCount(SessionArchiveContract()); sa > 10 {
		t.Errorf("SessionArchive has %d methods, want <= 10", sa)
	}
}

func monolithFixture(t *testing.T) *core.Client {
	t.Helper()
	s := NewStore()
	p := core.NewProvider("ctx-ssp", "loopback://ctx")
	p.MustRegister(NewMonolithService(s))
	return core.NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "x", MonolithContract())
}

func TestMonolithServiceRoundTrip(t *testing.T) {
	cl := monolithFixture(t)
	call := func(op string, params ...soap.Value) *soap.Response {
		t.Helper()
		resp, err := cl.Call(op, params...)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return resp
	}
	call("createUserContext", soap.Str("user", "cyoun"))
	call("createProblemContext", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"))
	call("createSessionContext", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"), soap.Str("session", "run1"))
	call("createModuleContext", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"),
		soap.Str("session", "run1"), soap.Str("module", "solver"))
	call("setSessionProperty", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"),
		soap.Str("session", "run1"), soap.Str("name", "nodes"), soap.Str("value", "16"))
	resp := call("getSessionProperty", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"),
		soap.Str("session", "run1"), soap.Str("name", "nodes"))
	if resp.ReturnText("value") != "16" {
		t.Errorf("value = %q", resp.ReturnText("value"))
	}
	resp = call("listProblemContexts", soap.Str("user", "cyoun"))
	v, _ := resp.Return("names")
	if len(v.Items) != 1 || v.Items[0].Text != "cfd" {
		t.Errorf("problems = %+v", v.Items)
	}
	resp = call("existsModuleContext", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"),
		soap.Str("session", "run1"), soap.Str("module", "solver"))
	if resp.ReturnText("exists") != "true" {
		t.Error("module should exist")
	}
	resp = call("countUserChildren", soap.Str("user", "cyoun"))
	if resp.ReturnText("count") != "1" {
		t.Errorf("children = %q", resp.ReturnText("count"))
	}
	// Archive over SOAP.
	resp = call("archiveSession", soap.Str("user", "cyoun"), soap.Str("problem", "cfd"), soap.Str("session", "run1"))
	id := resp.ReturnText("archiveID")
	if id == "" {
		t.Fatal("no archive ID")
	}
	call("restoreSession", soap.Str("archiveID", id))
	doc, err := cl.CallXML("listArchives", soap.Str("user", "cyoun"))
	if err != nil || len(doc.ChildrenNamed("archive")) != 1 {
		t.Errorf("archives = %v, %v", doc, err)
	}
	info, err := cl.CallXML("getArchiveInfo", soap.Str("archiveID", id))
	if err != nil || info.ChildText("session") != "run1" {
		t.Errorf("info = %v, %v", info, err)
	}
	// Export/import over SOAP.
	dir, err := cl.CallText("exportContexts")
	if err != nil || !strings.Contains(dir, "/cyoun/cfd/run1/solver") {
		t.Errorf("export = %q, %v", dir, err)
	}
	call("importContexts", soap.Str("directory", dir))
	resp = call("countContexts")
	if resp.ReturnText("count") != "4" {
		t.Errorf("count after reimport = %q", resp.ReturnText("count"))
	}
	// Errors carry portal codes.
	_, err = cl.Call("getUserProperty", soap.Str("user", "ghost"), soap.Str("name", "x"))
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeNoSuchResource {
		t.Errorf("err = %v", err)
	}
	_, err = cl.Call("createUserContext", soap.Str("user", "cyoun"))
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeBadRequest {
		t.Errorf("dup err = %v", err)
	}
	_, err = cl.Call("getArchiveInfo", soap.Str("archiveID", "arch-999"))
	if soap.AsPortalError(err) == nil {
		t.Errorf("ghost archive err = %v", err)
	}
}

func TestDecomposedServices(t *testing.T) {
	s := NewStore()
	p := core.NewProvider("ctx-ssp", "loopback://ctx")
	p.MustRegister(NewContextStoreService(s))
	p.MustRegister(NewSessionArchiveService(s))
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	store := core.NewClient(tr, "x", ContextStoreContract())
	arch := core.NewClient(tr, "x", SessionArchiveContract())

	if _, err := arch.Call("placeholder", soap.Str("user", "mock"), soap.Str("problem", "generic"), soap.Str("session", "s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Call("setProperty", soap.StrArray("path", []string{"mock", "generic", "s1"}),
		soap.Str("name", "scheduler"), soap.Str("value", "LSF")); err != nil {
		t.Fatal(err)
	}
	resp, err := store.Call("getProperty", soap.StrArray("path", []string{"mock", "generic", "s1"}), soap.Str("name", "scheduler"))
	if err != nil || resp.ReturnText("value") != "LSF" {
		t.Errorf("value = %q, %v", resp.ReturnText("value"), err)
	}
	r2, err := arch.Call("archive", soap.Str("user", "mock"), soap.Str("problem", "generic"), soap.Str("session", "s1"))
	if err != nil || r2.ReturnText("archiveID") == "" {
		t.Errorf("archive = %v, %v", r2, err)
	}
	if _, err := arch.Call("remove", soap.Str("archiveID", "arch-99")); soap.AsPortalError(err) == nil {
		t.Errorf("ghost remove err = %v", err)
	}
	resp, err = store.Call("exists", soap.StrArray("path", []string{"mock", "generic", "s1"}))
	if err != nil || resp.ReturnText("exists") != "true" {
		t.Errorf("exists = %v, %v", resp, err)
	}
	if _, err := store.Call("list", soap.StrArray("path", []string{"mock"})); err != nil {
		t.Error(err)
	}
	if _, err := store.Call("remove", soap.StrArray("path", []string{"mock", "generic", "s1"})); err != nil {
		t.Error(err)
	}
}

func TestValidatePathRejections(t *testing.T) {
	s := NewStore()
	if err := s.Create(nil); err == nil {
		t.Error("empty path accepted")
	}
	if err := s.Create([]string{"a/b"}); err == nil {
		t.Error("slash in name accepted")
	}
	if err := s.Create([]string{""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Create([]string{"a", "b", "c", "d", "e"}); err == nil {
		t.Error("five-level path accepted")
	}
}

func TestLevelDepth(t *testing.T) {
	if LevelUser.Depth() != 1 || LevelModule.Depth() != 4 {
		t.Error("depths wrong")
	}
	if Level("Bogus").Depth() != 0 {
		t.Error("unknown level depth should be 0")
	}
}
