package contextmgr

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// MonolithNS is the namespace of the faithful 60+-method interface.
const MonolithNS = "urn:gce:contextmanager"

// levelParams maps each level to its path parameter names.
var levelParams = map[Level][]string{
	LevelUser:    {"user"},
	LevelProblem: {"user", "problem"},
	LevelSession: {"user", "problem", "session"},
	LevelModule:  {"user", "problem", "session", "module"},
}

func strParams(names ...string) []wsdl.Param {
	out := make([]wsdl.Param, 0, len(names))
	for _, n := range names {
		out = append(out, wsdl.Param{Name: n, Type: "string"})
	}
	return out
}

// MonolithContract builds the Context Manager interface exactly as the
// paper criticises it: thirteen operations for each of the four context
// levels plus ten service-wide operations — "over 60 methods". The
// TestMonolithMethodCount test pins the count.
func MonolithContract() *wsdl.Interface {
	iface := &wsdl.Interface{
		Name:     "ContextManager",
		TargetNS: MonolithNS,
		Doc:      "Gateway's monolithic context management service (the paper's 60+ method example).",
	}
	for _, level := range Levels {
		l := string(level)
		path := levelParams[level]
		parent := path[:len(path)-1]
		iface.Operations = append(iface.Operations,
			wsdl.Operation{Name: "create" + l + "Context", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "exists" + l + "Context", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "exists", Type: "boolean"}}},
			wsdl.Operation{Name: "remove" + l + "Context", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "list" + l + "Contexts", Input: strParams(parent...),
				Output: []wsdl.Param{{Name: "names", Type: "stringArray"}}},
			wsdl.Operation{Name: "rename" + l + "Context", Input: strParams(append(append([]string{}, path...), "newName")...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "copy" + l + "Context", Input: strParams(append(append([]string{}, path...), "copyName")...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "set" + l + "Property", Input: strParams(append(append([]string{}, path...), "name", "value")...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "get" + l + "Property", Input: strParams(append(append([]string{}, path...), "name")...),
				Output: []wsdl.Param{{Name: "value", Type: "string"}}},
			wsdl.Operation{Name: "remove" + l + "Property", Input: strParams(append(append([]string{}, path...), "name")...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "list" + l + "Properties", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "names", Type: "stringArray"}}},
			wsdl.Operation{Name: "clear" + l + "Properties", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			wsdl.Operation{Name: "count" + l + "Children", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "count", Type: "int"}}},
			wsdl.Operation{Name: "get" + l + "CreationTime", Input: strParams(path...),
				Output: []wsdl.Param{{Name: "time", Type: "string"}}},
		)
	}
	iface.Operations = append(iface.Operations,
		wsdl.Operation{Name: "archiveSession", Input: strParams("user", "problem", "session"),
			Output: []wsdl.Param{{Name: "archiveID", Type: "string"}}},
		wsdl.Operation{Name: "restoreSession", Input: strParams("archiveID"),
			Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
		wsdl.Operation{Name: "listArchives", Input: strParams("user"),
			Output: []wsdl.Param{{Name: "archives", Type: "xml"}}},
		wsdl.Operation{Name: "removeArchive", Input: strParams("archiveID"),
			Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
		wsdl.Operation{Name: "getArchiveInfo", Input: strParams("archiveID"),
			Output: []wsdl.Param{{Name: "archive", Type: "xml"}}},
		wsdl.Operation{Name: "createPlaceholderContext", Input: strParams("user", "problem", "session"),
			Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
		wsdl.Operation{Name: "touchSession", Input: strParams("user", "problem", "session"),
			Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
		wsdl.Operation{Name: "countContexts",
			Output: []wsdl.Param{{Name: "count", Type: "int"}}},
		wsdl.Operation{Name: "exportContexts",
			Output: []wsdl.Param{{Name: "directory", Type: "string"}}},
		wsdl.Operation{Name: "importContexts", Input: strParams("directory"),
			Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
	)
	return iface
}

func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), "already exists") {
		return soap.NewPortalError("ContextManager", soap.ErrCodeBadRequest, "%v", err)
	}
	return soap.NewPortalError("ContextManager", soap.ErrCodeNoSuchResource, "%v", err)
}

func okValue(err error) ([]soap.Value, error) {
	if err != nil {
		return nil, wrapErr(err)
	}
	return []soap.Value{soap.Bool("ok", true)}, nil
}

func archiveElement(a Archive) *xmlutil.Element {
	el := xmlutil.New("archive").SetAttr("id", a.ID)
	el.AddText("user", a.User)
	el.AddText("problem", a.Problem)
	el.AddText("session", a.Session)
	el.AddText("when", a.When.UTC().Format(time.RFC3339))
	return el
}

// NewMonolithService deploys the full 60+-method interface over a Store.
func NewMonolithService(s *Store) *core.Service {
	svc := core.NewService(MonolithContract())
	pathOf := func(args soap.Args, names []string) []string {
		out := make([]string, 0, len(names))
		for _, n := range names {
			out = append(out, args.String(n))
		}
		return out
	}
	for _, level := range Levels {
		l := string(level)
		names := levelParams[level]
		parentNames := names[:len(names)-1]
		svc.Handle("create"+l+"Context", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.Create(pathOf(args, names)))
		})
		svc.Handle("exists"+l+"Context", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return []soap.Value{soap.Bool("exists", s.Exists(pathOf(args, names)))}, nil
		})
		svc.Handle("remove"+l+"Context", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.Remove(pathOf(args, names)))
		})
		svc.Handle("list"+l+"Contexts", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			kids, err := s.List(pathOf(args, parentNames))
			if err != nil {
				return nil, wrapErr(err)
			}
			return []soap.Value{soap.StrArray("names", kids)}, nil
		})
		svc.Handle("rename"+l+"Context", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.Rename(pathOf(args, names), args.String("newName")))
		})
		svc.Handle("copy"+l+"Context", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.Copy(pathOf(args, names), args.String("copyName")))
		})
		svc.Handle("set"+l+"Property", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.SetProp(pathOf(args, names), args.String("name"), args.String("value")))
		})
		svc.Handle("get"+l+"Property", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			v, err := s.GetProp(pathOf(args, names), args.String("name"))
			if err != nil {
				return nil, wrapErr(err)
			}
			return []soap.Value{soap.Str("value", v)}, nil
		})
		svc.Handle("remove"+l+"Property", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.RemoveProp(pathOf(args, names), args.String("name")))
		})
		svc.Handle("list"+l+"Properties", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			props, err := s.ListProps(pathOf(args, names))
			if err != nil {
				return nil, wrapErr(err)
			}
			return []soap.Value{soap.StrArray("names", props)}, nil
		})
		svc.Handle("clear"+l+"Properties", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			return okValue(s.ClearProps(pathOf(args, names)))
		})
		svc.Handle("count"+l+"Children", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			n, err := s.CountChildren(pathOf(args, names))
			if err != nil {
				return nil, wrapErr(err)
			}
			return []soap.Value{soap.Int("count", n)}, nil
		})
		svc.Handle("get"+l+"CreationTime", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
			ts, err := s.Created(pathOf(args, names))
			if err != nil {
				return nil, wrapErr(err)
			}
			return []soap.Value{soap.Str("time", ts.UTC().Format(time.RFC3339))}, nil
		})
	}
	svc.Handle("archiveSession", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		id, err := s.ArchiveSession(args.String("user"), args.String("problem"), args.String("session"))
		if err != nil {
			return nil, wrapErr(err)
		}
		return []soap.Value{soap.Str("archiveID", id)}, nil
	})
	svc.Handle("restoreSession", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.RestoreSession(args.String("archiveID")))
	})
	svc.Handle("listArchives", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		list := xmlutil.New("archives")
		for _, a := range s.ListArchives(args.String("user")) {
			list.Add(archiveElement(a))
		}
		return []soap.Value{soap.XMLDoc("archives", list)}, nil
	})
	svc.Handle("removeArchive", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.RemoveArchive(args.String("archiveID")))
	})
	svc.Handle("getArchiveInfo", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		for _, a := range s.allArchives() {
			if a.ID == args.String("archiveID") {
				return []soap.Value{soap.XMLDoc("archive", archiveElement(a))}, nil
			}
		}
		return nil, soap.NewPortalError("ContextManager", soap.ErrCodeNoSuchResource,
			"no archive %q", args.String("archiveID"))
	})
	svc.Handle("createPlaceholderContext", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.CreatePlaceholder(args.String("user"), args.String("problem"), args.String("session")))
	})
	svc.Handle("touchSession", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		path := []string{args.String("user"), args.String("problem"), args.String("session")}
		return okValue(s.SetProp(path, "lastAccess", s.nowString()))
	})
	svc.Handle("countContexts", func(_ *core.Context, _ soap.Args) ([]soap.Value, error) {
		return []soap.Value{soap.Int("count", s.CountContexts())}, nil
	})
	svc.Handle("exportContexts", func(_ *core.Context, _ soap.Args) ([]soap.Value, error) {
		return []soap.Value{soap.Str("directory", s.ExportDirectory())}, nil
	})
	svc.Handle("importContexts", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.ImportDirectory(args.String("directory")))
	})
	return svc
}

// allArchives snapshots all archives (for getArchiveInfo).
func (s *Store) allArchives() []Archive {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Archive
	for _, a := range s.archives {
		cp := *a
		cp.snapshot = nil
		out = append(out, cp)
	}
	return out
}

func (s *Store) nowString() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now().UTC().Format(time.RFC3339)
}

// --- Decomposed services ------------------------------------------------------

// ContextStoreNS is the namespace of the decomposed store service.
const ContextStoreNS = "urn:gce:contextstore"

// ContextStoreContract is the "reasonable scope" replacement: eight
// path-oriented operations instead of thirteen per level.
func ContextStoreContract() *wsdl.Interface {
	path := wsdl.Param{Name: "path", Type: "stringArray"}
	return &wsdl.Interface{
		Name:     "ContextStore",
		TargetNS: ContextStoreNS,
		Doc:      "Decomposed context storage: generic hierarchical CRUD over context paths.",
		Operations: []wsdl.Operation{
			{Name: "create", Input: []wsdl.Param{path}, Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "exists", Input: []wsdl.Param{path}, Output: []wsdl.Param{{Name: "exists", Type: "boolean"}}},
			{Name: "remove", Input: []wsdl.Param{path}, Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "list", Input: []wsdl.Param{path}, Output: []wsdl.Param{{Name: "names", Type: "stringArray"}}},
			{Name: "setProperty", Input: []wsdl.Param{path, {Name: "name", Type: "string"}, {Name: "value", Type: "string"}},
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "getProperty", Input: []wsdl.Param{path, {Name: "name", Type: "string"}},
				Output: []wsdl.Param{{Name: "value", Type: "string"}}},
			{Name: "removeProperty", Input: []wsdl.Param{path, {Name: "name", Type: "string"}},
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "listProperties", Input: []wsdl.Param{path},
				Output: []wsdl.Param{{Name: "names", Type: "stringArray"}}},
		},
	}
}

// NewContextStoreService deploys the decomposed store service.
func NewContextStoreService(s *Store) *core.Service {
	svc := core.NewService(ContextStoreContract())
	svc.Handle("create", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.Create(args.Strings("path")))
	})
	svc.Handle("exists", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return []soap.Value{soap.Bool("exists", s.Exists(args.Strings("path")))}, nil
	})
	svc.Handle("remove", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.Remove(args.Strings("path")))
	})
	svc.Handle("list", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		kids, err := s.List(args.Strings("path"))
		if err != nil {
			return nil, wrapErr(err)
		}
		return []soap.Value{soap.StrArray("names", kids)}, nil
	})
	svc.Handle("setProperty", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.SetProp(args.Strings("path"), args.String("name"), args.String("value")))
	})
	svc.Handle("getProperty", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		v, err := s.GetProp(args.Strings("path"), args.String("name"))
		if err != nil {
			return nil, wrapErr(err)
		}
		return []soap.Value{soap.Str("value", v)}, nil
	})
	svc.Handle("removeProperty", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.RemoveProp(args.Strings("path"), args.String("name")))
	})
	svc.Handle("listProperties", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		props, err := s.ListProps(args.Strings("path"))
		if err != nil {
			return nil, wrapErr(err)
		}
		return []soap.Value{soap.StrArray("names", props)}, nil
	})
	return svc
}

// SessionArchiveNS is the namespace of the decomposed archive service.
const SessionArchiveNS = "urn:gce:sessionarchive"

// SessionArchiveContract is the archival half of the decomposition.
func SessionArchiveContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "SessionArchive",
		TargetNS: SessionArchiveNS,
		Doc:      "Decomposed session archival: snapshot, restore, and list session contexts.",
		Operations: []wsdl.Operation{
			{Name: "archive", Input: strParams("user", "problem", "session"),
				Output: []wsdl.Param{{Name: "archiveID", Type: "string"}}},
			{Name: "restore", Input: strParams("archiveID"),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "list", Input: strParams("user"),
				Output: []wsdl.Param{{Name: "archives", Type: "xml"}}},
			{Name: "remove", Input: strParams("archiveID"),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
			{Name: "placeholder", Input: strParams("user", "problem", "session"),
				Output: []wsdl.Param{{Name: "ok", Type: "boolean"}}},
		},
	}
}

// NewSessionArchiveService deploys the decomposed archive service.
func NewSessionArchiveService(s *Store) *core.Service {
	svc := core.NewService(SessionArchiveContract())
	svc.Handle("archive", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		id, err := s.ArchiveSession(args.String("user"), args.String("problem"), args.String("session"))
		if err != nil {
			return nil, wrapErr(err)
		}
		return []soap.Value{soap.Str("archiveID", id)}, nil
	})
	svc.Handle("restore", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.RestoreSession(args.String("archiveID")))
	})
	svc.Handle("list", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		list := xmlutil.New("archives")
		for _, a := range s.ListArchives(args.String("user")) {
			list.Add(archiveElement(a))
		}
		return []soap.Value{soap.XMLDoc("archives", list)}, nil
	})
	svc.Handle("remove", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.RemoveArchive(args.String("archiveID")))
	})
	svc.Handle("placeholder", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		return okValue(s.CreatePlaceholder(args.String("user"), args.String("problem"), args.String("session")))
	})
	return svc
}

// MethodCount reports the operation count of an interface — the metric the
// paper uses to argue the monolith is unusable by other portals.
func MethodCount(i *wsdl.Interface) int {
	return len(i.Operations)
}

var _ = strconv.Itoa // reserved for future formatting helpers
