package contextmgr

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// MonolithNS is the namespace of the faithful 60+-method interface.
const MonolithNS = "urn:gce:contextmanager"

// levelParams maps each level to its path parameter names.
var levelParams = map[Level][]string{
	LevelUser:    {"user"},
	LevelProblem: {"user", "problem"},
	LevelSession: {"user", "problem", "session"},
	LevelModule:  {"user", "problem", "session", "module"},
}

func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), "already exists") {
		return soap.NewPortalError("ContextManager", soap.ErrCodeBadRequest, "%v", err)
	}
	return soap.NewPortalError("ContextManager", soap.ErrCodeNoSuchResource, "%v", err)
}

func okRet(err error) ([]interface{}, error) {
	if err != nil {
		return nil, wrapErr(err)
	}
	return rpc.Ret(true), nil
}

func archiveElement(a Archive) *xmlutil.Element {
	el := xmlutil.New("archive").SetAttr("id", a.ID)
	el.AddText("user", a.User)
	el.AddText("problem", a.Problem)
	el.AddText("session", a.Session)
	el.AddText("when", a.When.UTC().Format(time.RFC3339))
	return el
}

// pathOf collects the named string parameters into a context path.
func pathOf(in rpc.Args, names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, in.Str(n))
	}
	return out
}

// monolithDef builds the Context Manager descriptor table exactly as the
// paper criticises it: thirteen operations for each of the four context
// levels plus ten service-wide operations — "over 60 methods". What the
// seed expressed twice (a contract loop and a parallel handler loop) is
// now one data-driven loop emitting descriptor entries; the
// TestMonolithMethodCount test pins the count.
func monolithDef(s *Store) *rpc.Def {
	d := &rpc.Def{
		Name: "ContextManager",
		NS:   MonolithNS,
		Doc:  "Gateway's monolithic context management service (the paper's 60+ method example).",
	}
	bools := []wsdl.Param{rpc.Bool("ok")}
	for _, level := range Levels {
		l := string(level)
		names := levelParams[level]
		parentNames := names[:len(names)-1]
		path := rpc.StrParams(names...)
		parent := rpc.StrParams(parentNames...)
		withExtra := func(extra ...wsdl.Param) []wsdl.Param {
			return append(append([]wsdl.Param{}, path...), extra...)
		}
		d.Ops = append(d.Ops,
			rpc.Op{Name: "create" + l + "Context", In: path, Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Create(pathOf(in, names)))
				}},
			rpc.Op{Name: "exists" + l + "Context", In: path, Out: []wsdl.Param{rpc.Bool("exists")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(s.Exists(pathOf(in, names))), nil
				}},
			rpc.Op{Name: "remove" + l + "Context", In: path, Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Remove(pathOf(in, names)))
				}},
			rpc.Op{Name: "list" + l + "Contexts", In: parent, Out: []wsdl.Param{rpc.Strs("names")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					kids, err := s.List(pathOf(in, parentNames))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(kids), nil
				}},
			rpc.Op{Name: "rename" + l + "Context", In: withExtra(rpc.Str("newName")), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Rename(pathOf(in, names), in.Str("newName")))
				}},
			rpc.Op{Name: "copy" + l + "Context", In: withExtra(rpc.Str("copyName")), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Copy(pathOf(in, names), in.Str("copyName")))
				}},
			rpc.Op{Name: "set" + l + "Property", In: withExtra(rpc.Str("name"), rpc.Str("value")), Out: bools, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.SetProp(pathOf(in, names), in.Str("name"), in.Str("value")))
				}},
			rpc.Op{Name: "get" + l + "Property", In: withExtra(rpc.Str("name")), Out: []wsdl.Param{rpc.Str("value")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					v, err := s.GetProp(pathOf(in, names), in.Str("name"))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(v), nil
				}},
			rpc.Op{Name: "remove" + l + "Property", In: withExtra(rpc.Str("name")), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.RemoveProp(pathOf(in, names), in.Str("name")))
				}},
			rpc.Op{Name: "list" + l + "Properties", In: path, Out: []wsdl.Param{rpc.Strs("names")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					props, err := s.ListProps(pathOf(in, names))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(props), nil
				}},
			rpc.Op{Name: "clear" + l + "Properties", In: path, Out: bools, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.ClearProps(pathOf(in, names)))
				}},
			rpc.Op{Name: "count" + l + "Children", In: path, Out: []wsdl.Param{rpc.Int("count")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					n, err := s.CountChildren(pathOf(in, names))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(n), nil
				}},
			rpc.Op{Name: "get" + l + "CreationTime", In: path, Out: []wsdl.Param{rpc.Str("time")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					ts, err := s.Created(pathOf(in, names))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(ts.UTC().Format(time.RFC3339)), nil
				}},
		)
	}
	d.Ops = append(d.Ops,
		rpc.Op{Name: "archiveSession", In: rpc.StrParams("user", "problem", "session"),
			Out: []wsdl.Param{rpc.Str("archiveID")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				id, err := s.ArchiveSession(in.Str("user"), in.Str("problem"), in.Str("session"))
				if err != nil {
					return nil, wrapErr(err)
				}
				return rpc.Ret(id), nil
			}},
		rpc.Op{Name: "restoreSession", In: rpc.StrParams("archiveID"), Out: bools,
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				return okRet(s.RestoreSession(in.Str("archiveID")))
			}},
		rpc.Op{Name: "listArchives", In: rpc.StrParams("user"), Out: []wsdl.Param{rpc.XML("archives")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				list := xmlutil.New("archives")
				for _, a := range s.ListArchives(in.Str("user")) {
					list.Add(archiveElement(a))
				}
				return rpc.Ret(list), nil
			}},
		rpc.Op{Name: "removeArchive", In: rpc.StrParams("archiveID"), Out: bools,
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				return okRet(s.RemoveArchive(in.Str("archiveID")))
			}},
		rpc.Op{Name: "getArchiveInfo", In: rpc.StrParams("archiveID"), Out: []wsdl.Param{rpc.XML("archive")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				for _, a := range s.allArchives() {
					if a.ID == in.Str("archiveID") {
						return rpc.Ret(archiveElement(a)), nil
					}
				}
				return nil, soap.NewPortalError("ContextManager", soap.ErrCodeNoSuchResource,
					"no archive %q", in.Str("archiveID"))
			}},
		rpc.Op{Name: "createPlaceholderContext", In: rpc.StrParams("user", "problem", "session"), Out: bools,
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				return okRet(s.CreatePlaceholder(in.Str("user"), in.Str("problem"), in.Str("session")))
			}},
		rpc.Op{Name: "touchSession", In: rpc.StrParams("user", "problem", "session"), Out: bools,
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				path := []string{in.Str("user"), in.Str("problem"), in.Str("session")}
				return okRet(s.SetProp(path, "lastAccess", s.nowString()))
			}},
		rpc.Op{Name: "countContexts", Out: []wsdl.Param{rpc.Int("count")},
			Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
				return rpc.Ret(s.CountContexts()), nil
			}},
		rpc.Op{Name: "exportContexts", Out: []wsdl.Param{rpc.Str("directory")},
			Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
				return rpc.Ret(s.ExportDirectory()), nil
			}},
		rpc.Op{Name: "importContexts", In: rpc.StrParams("directory"), Out: bools,
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				return okRet(s.ImportDirectory(in.Str("directory")))
			}},
	)
	return d
}

// MonolithContract builds the Context Manager interface exactly as the
// paper criticises it ("over 60 methods"), derived from the descriptor
// table.
func MonolithContract() *wsdl.Interface {
	return monolithDef(nil).Interface()
}

// NewMonolithService deploys the full 60+-method interface over a Store.
func NewMonolithService(s *Store) *core.Service {
	return monolithDef(s).MustBuild()
}

// allArchives snapshots all archives (for getArchiveInfo).
func (s *Store) allArchives() []Archive {
	var out []Archive
	s.archives.Range(func(_ string, a *Archive) bool {
		cp := *a
		cp.snapshot = nil
		out = append(out, cp)
		return true
	})
	return out
}

func (s *Store) nowString() string {
	return s.clock().UTC().Format(time.RFC3339)
}

// --- Decomposed services ------------------------------------------------------

// ContextStoreNS is the namespace of the decomposed store service.
const ContextStoreNS = "urn:gce:contextstore"

// contextStoreDef is the "reasonable scope" replacement: eight
// path-oriented operations instead of thirteen per level.
func contextStoreDef(s *Store) *rpc.Def {
	path := rpc.Strs("path")
	bools := []wsdl.Param{rpc.Bool("ok")}
	return &rpc.Def{
		Name: "ContextStore",
		NS:   ContextStoreNS,
		Doc:  "Decomposed context storage: generic hierarchical CRUD over context paths.",
		Ops: []rpc.Op{
			{Name: "create", In: []wsdl.Param{path}, Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Create(in.Strings("path")))
				}},
			{Name: "exists", In: []wsdl.Param{path}, Out: []wsdl.Param{rpc.Bool("exists")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(s.Exists(in.Strings("path"))), nil
				}},
			{Name: "remove", In: []wsdl.Param{path}, Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.Remove(in.Strings("path")))
				}},
			{Name: "list", In: []wsdl.Param{path}, Out: []wsdl.Param{rpc.Strs("names")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					kids, err := s.List(in.Strings("path"))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(kids), nil
				}},
			{Name: "setProperty", In: []wsdl.Param{path, rpc.Str("name"), rpc.Str("value")}, Out: bools, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.SetProp(in.Strings("path"), in.Str("name"), in.Str("value")))
				}},
			{Name: "getProperty", In: []wsdl.Param{path, rpc.Str("name")}, Out: []wsdl.Param{rpc.Str("value")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					v, err := s.GetProp(in.Strings("path"), in.Str("name"))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(v), nil
				}},
			{Name: "removeProperty", In: []wsdl.Param{path, rpc.Str("name")}, Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.RemoveProp(in.Strings("path"), in.Str("name")))
				}},
			{Name: "listProperties", In: []wsdl.Param{path}, Out: []wsdl.Param{rpc.Strs("names")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					props, err := s.ListProps(in.Strings("path"))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(props), nil
				}},
		},
	}
}

// ContextStoreContract returns the decomposed store interface.
func ContextStoreContract() *wsdl.Interface {
	return contextStoreDef(nil).Interface()
}

// NewContextStoreService deploys the decomposed store service.
func NewContextStoreService(s *Store) *core.Service {
	return contextStoreDef(s).MustBuild()
}

// SessionArchiveNS is the namespace of the decomposed archive service.
const SessionArchiveNS = "urn:gce:sessionarchive"

// sessionArchiveDef is the archival half of the decomposition.
func sessionArchiveDef(s *Store) *rpc.Def {
	bools := []wsdl.Param{rpc.Bool("ok")}
	return &rpc.Def{
		Name: "SessionArchive",
		NS:   SessionArchiveNS,
		Doc:  "Decomposed session archival: snapshot, restore, and list session contexts.",
		Ops: []rpc.Op{
			{Name: "archive", In: rpc.StrParams("user", "problem", "session"),
				Out: []wsdl.Param{rpc.Str("archiveID")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					id, err := s.ArchiveSession(in.Str("user"), in.Str("problem"), in.Str("session"))
					if err != nil {
						return nil, wrapErr(err)
					}
					return rpc.Ret(id), nil
				}},
			{Name: "restore", In: rpc.StrParams("archiveID"), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.RestoreSession(in.Str("archiveID")))
				}},
			{Name: "list", In: rpc.StrParams("user"), Out: []wsdl.Param{rpc.XML("archives")}, Idempotent: true,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					list := xmlutil.New("archives")
					for _, a := range s.ListArchives(in.Str("user")) {
						list.Add(archiveElement(a))
					}
					return rpc.Ret(list), nil
				}},
			{Name: "remove", In: rpc.StrParams("archiveID"), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.RemoveArchive(in.Str("archiveID")))
				}},
			{Name: "placeholder", In: rpc.StrParams("user", "problem", "session"), Out: bools,
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return okRet(s.CreatePlaceholder(in.Str("user"), in.Str("problem"), in.Str("session")))
				}},
		},
	}
}

// SessionArchiveContract returns the decomposed archive interface.
func SessionArchiveContract() *wsdl.Interface {
	return sessionArchiveDef(nil).Interface()
}

// NewSessionArchiveService deploys the decomposed archive service.
func NewSessionArchiveService(s *Store) *core.Service {
	return sessionArchiveDef(s).MustBuild()
}

// MethodCount reports the operation count of an interface — the metric the
// paper uses to argue the monolith is unusable by other portals.
func MethodCount(i *wsdl.Interface) int {
	return len(i.Operations)
}
