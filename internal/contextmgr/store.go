// Package contextmgr implements Gateway's Context Manager (Section 3.3):
// a service "for capturing and organizing the user's session (or context)
// for archival purposes", organised as a container structure "that can be
// mapped to a directory structure such as the Unix file system". Contexts
// nest: user contexts contain problem contexts, which contain session
// contexts; Gateway modules also live in contexts.
//
// The paper's critique is reproduced faithfully and then answered:
//
//   - MonolithContract is the "over 60 methods" interface the paper says
//     "HotPage and other teams will have no use for"; a test pins the
//     method count.
//   - ContextStoreContract and SessionArchiveContract are the "more
//     reasonable parts" the service should be broken into.
//   - Placeholder contexts — the artificial sessions the Gateway group had
//     to create for stateless HotPage users when the batch script
//     generator was decoupled — are CreatePlaceholder; the S3.3 benchmark
//     measures their overhead.
package contextmgr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level names the four context tiers.
type Level string

// The context hierarchy tiers.
const (
	LevelUser    Level = "User"
	LevelProblem Level = "Problem"
	LevelSession Level = "Session"
	LevelModule  Level = "Module"
)

// Levels lists the tiers in nesting order.
var Levels = []Level{LevelUser, LevelProblem, LevelSession, LevelModule}

// Depth returns the 1-based path length of a level (User=1 ... Module=4).
func (l Level) Depth() int {
	for i, lv := range Levels {
		if lv == l {
			return i + 1
		}
	}
	return 0
}

// node is one context in the tree.
type node struct {
	name     string
	props    map[string]string
	children map[string]*node
	created  time.Time
}

func newNode(name string, now time.Time) *node {
	return &node{name: name, props: map[string]string{}, children: map[string]*node{}, created: now}
}

func (n *node) clone() *node {
	cp := &node{name: n.name, props: map[string]string{}, children: map[string]*node{}, created: n.created}
	for k, v := range n.props {
		cp.props[k] = v
	}
	for k, c := range n.children {
		cp.children[k] = c.clone()
	}
	return cp
}

// Archive is one archived session snapshot.
type Archive struct {
	// ID is the archive identifier.
	ID string
	// User, Problem, Session locate the archived context.
	User    string
	Problem string
	Session string
	// When is the archival time.
	When time.Time

	snapshot *node
}

// Store is the context tree with archival, safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	root     *node
	archives map[string]*Archive
	seq      int
	now      func() time.Time
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		root:     newNode("", time.Time{}),
		archives: map[string]*Archive{},
		now:      time.Now,
	}
}

// SetTimeSource overrides the clock.
func (s *Store) SetTimeSource(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

func validatePath(path []string) error {
	if len(path) == 0 || len(path) > len(Levels) {
		return fmt.Errorf("contextmgr: path depth %d out of range 1..%d", len(path), len(Levels))
	}
	for _, seg := range path {
		if seg == "" || strings.ContainsAny(seg, "/\n") {
			return fmt.Errorf("contextmgr: invalid context name %q", seg)
		}
	}
	return nil
}

func (s *Store) lookup(path []string) (*node, error) {
	cur := s.root
	for i, seg := range path {
		next, ok := cur.children[seg]
		if !ok {
			return nil, fmt.Errorf("contextmgr: no %s context at %q",
				strings.ToLower(string(Levels[i])), strings.Join(path[:i+1], "/"))
		}
		cur = next
	}
	return cur, nil
}

// Create makes a context at path; all ancestors must already exist.
func (s *Store) Create(path []string) error {
	if err := validatePath(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookup(path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	if _, exists := parent.children[leaf]; exists {
		return fmt.Errorf("contextmgr: context %q already exists", strings.Join(path, "/"))
	}
	parent.children[leaf] = newNode(leaf, s.now())
	return nil
}

// Exists reports whether a context exists.
func (s *Store) Exists(path []string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := s.lookup(path)
	return err == nil
}

// Remove deletes a context and its subtree.
func (s *Store) Remove(path []string) error {
	if err := validatePath(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookup(path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	if _, exists := parent.children[leaf]; !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	delete(parent.children, leaf)
	return nil
}

// List returns the sorted child names under path ([] lists users).
func (s *Store) List(path []string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Rename changes a context's leaf name.
func (s *Store) Rename(path []string, newName string) error {
	if err := validatePath(append(path[:len(path)-1:len(path)-1], newName)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookup(path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	n, exists := parent.children[leaf]
	if !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	if _, dup := parent.children[newName]; dup {
		return fmt.Errorf("contextmgr: context %q already exists", newName)
	}
	delete(parent.children, leaf)
	n.name = newName
	parent.children[newName] = n
	return nil
}

// Copy duplicates a context subtree under the same parent.
func (s *Store) Copy(path []string, copyName string) error {
	if err := validatePath(append(path[:len(path)-1:len(path)-1], copyName)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookup(path[:len(path)-1])
	if err != nil {
		return err
	}
	n, exists := parent.children[path[len(path)-1]]
	if !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	if _, dup := parent.children[copyName]; dup {
		return fmt.Errorf("contextmgr: context %q already exists", copyName)
	}
	cp := n.clone()
	cp.name = copyName
	parent.children[copyName] = cp
	return nil
}

// SetProp sets a property on a context.
func (s *Store) SetProp(path []string, name, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	n.props[name] = value
	return nil
}

// GetProp reads a property.
func (s *Store) GetProp(path []string, name string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(path)
	if err != nil {
		return "", err
	}
	v, ok := n.props[name]
	if !ok {
		return "", fmt.Errorf("contextmgr: context %q has no property %q", strings.Join(path, "/"), name)
	}
	return v, nil
}

// RemoveProp deletes a property.
func (s *Store) RemoveProp(path []string, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	if _, ok := n.props[name]; !ok {
		return fmt.Errorf("contextmgr: context %q has no property %q", strings.Join(path, "/"), name)
	}
	delete(n.props, name)
	return nil
}

// ListProps returns the sorted property names of a context.
func (s *Store) ListProps(path []string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.props))
	for name := range n.props {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ClearProps removes every property of a context.
func (s *Store) ClearProps(path []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	n.props = map[string]string{}
	return nil
}

// CountChildren returns the number of direct children.
func (s *Store) CountChildren(path []string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(path)
	if err != nil {
		return 0, err
	}
	return len(n.children), nil
}

// CountContexts returns the total number of contexts in the store.
func (s *Store) CountContexts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		count += len(n.children)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.root)
	return count
}

// Created returns a context's creation time.
func (s *Store) Created(path []string) (time.Time, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(path)
	if err != nil {
		return time.Time{}, err
	}
	return n.created, nil
}

// CreatePlaceholder makes an artificial user/problem/session chain for a
// stateless caller — the workaround the paper describes: "we were forced
// to create placeholder contexts in our SOAP wrappers ... Making this into
// an independent service introduced unnecessary overhead because we needed
// to create artificial contexts (sessions) for HotPage users." Existing
// segments are reused.
func (s *Store) CreatePlaceholder(user, problem, session string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.root
	for _, seg := range []string{user, problem, session} {
		if seg == "" || strings.ContainsAny(seg, "/\n") {
			return fmt.Errorf("contextmgr: invalid placeholder segment %q", seg)
		}
		next, ok := cur.children[seg]
		if !ok {
			next = newNode(seg, s.now())
			next.props["placeholder"] = "true"
			cur.children[seg] = next
		}
		cur = next
	}
	return nil
}

// ArchiveSession snapshots a session context into the archive and returns
// the archive ID.
func (s *Store) ArchiveSession(user, problem, session string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup([]string{user, problem, session})
	if err != nil {
		return "", err
	}
	s.seq++
	id := fmt.Sprintf("arch-%d", s.seq)
	s.archives[id] = &Archive{
		ID: id, User: user, Problem: problem, Session: session,
		When: s.now(), snapshot: n.clone(),
	}
	return id, nil
}

// RestoreSession replaces (or recreates) a session context from an archive
// — "the user can recover and edit old sessions later".
func (s *Store) RestoreSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.archives[id]
	if !ok {
		return fmt.Errorf("contextmgr: no archive %q", id)
	}
	problemNode, err := s.lookup([]string{a.User, a.Problem})
	if err != nil {
		return err
	}
	problemNode.children[a.Session] = a.snapshot.clone()
	return nil
}

// ListArchives returns archives for a user sorted by ID.
func (s *Store) ListArchives(user string) []Archive {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Archive
	for _, a := range s.archives {
		if a.User == user {
			cp := *a
			cp.snapshot = nil
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoveArchive deletes an archive.
func (s *Store) RemoveArchive(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.archives[id]; !ok {
		return fmt.Errorf("contextmgr: no archive %q", id)
	}
	delete(s.archives, id)
	return nil
}

// ExportDirectory renders the tree as the directory-structure mapping the
// paper describes: one line per context path, properties as path:name=value
// lines, sorted.
func (s *Store) ExportDirectory() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var lines []string
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		var names []string
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			p := prefix + "/" + name
			lines = append(lines, p)
			var props []string
			for k := range c.props {
				props = append(props, k)
			}
			sort.Strings(props)
			for _, k := range props {
				lines = append(lines, p+":"+k+"="+c.props[k])
			}
			walk(c, p)
		}
	}
	walk(s.root, "")
	return strings.Join(lines, "\n")
}

// ImportDirectory rebuilds a tree from ExportDirectory output.
func (s *Store) ImportDirectory(data string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root := newNode("", s.now())
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		pathPart := line
		propName, propValue := "", ""
		if i := strings.Index(line, ":"); i >= 0 {
			pathPart = line[:i]
			kv := line[i+1:]
			j := strings.Index(kv, "=")
			if j < 0 {
				return fmt.Errorf("contextmgr: bad property line %q", line)
			}
			propName, propValue = kv[:j], kv[j+1:]
		}
		segs := strings.Split(strings.TrimPrefix(pathPart, "/"), "/")
		if len(segs) > len(Levels) {
			return fmt.Errorf("contextmgr: path %q too deep", pathPart)
		}
		cur := root
		for _, seg := range segs {
			if seg == "" {
				return fmt.Errorf("contextmgr: bad path %q", pathPart)
			}
			next, ok := cur.children[seg]
			if !ok {
				next = newNode(seg, s.now())
				cur.children[seg] = next
			}
			cur = next
		}
		if propName != "" {
			cur.props[propName] = propValue
		}
	}
	s.root = root
	return nil
}
