// Package contextmgr implements Gateway's Context Manager (Section 3.3):
// a service "for capturing and organizing the user's session (or context)
// for archival purposes", organised as a container structure "that can be
// mapped to a directory structure such as the Unix file system". Contexts
// nest: user contexts contain problem contexts, which contain session
// contexts; Gateway modules also live in contexts.
//
// The paper's critique is reproduced faithfully and then answered:
//
//   - MonolithContract is the "over 60 methods" interface the paper says
//     "HotPage and other teams will have no use for"; a test pins the
//     method count.
//   - ContextStoreContract and SessionArchiveContract are the "more
//     reasonable parts" the service should be broken into.
//   - Placeholder contexts — the artificial sessions the Gateway group had
//     to create for stateless HotPage users when the batch script
//     generator was decoupled — are CreatePlaceholder; the S3.3 benchmark
//     measures their overhead.
package contextmgr

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/shardmap"
)

// Level names the four context tiers.
type Level string

// The context hierarchy tiers.
const (
	LevelUser    Level = "User"
	LevelProblem Level = "Problem"
	LevelSession Level = "Session"
	LevelModule  Level = "Module"
)

// Levels lists the tiers in nesting order.
var Levels = []Level{LevelUser, LevelProblem, LevelSession, LevelModule}

// Depth returns the 1-based path length of a level (User=1 ... Module=4).
func (l Level) Depth() int {
	for i, lv := range Levels {
		if lv == l {
			return i + 1
		}
	}
	return 0
}

// node is one context in the tree.
type node struct {
	name     string
	props    map[string]string
	children map[string]*node
	created  time.Time
}

func newNode(name string, now time.Time) *node {
	return &node{name: name, props: map[string]string{}, children: map[string]*node{}, created: now}
}

func (n *node) clone() *node {
	cp := &node{name: n.name, props: map[string]string{}, children: map[string]*node{}, created: n.created}
	for k, v := range n.props {
		cp.props[k] = v
	}
	for k, c := range n.children {
		cp.children[k] = c.clone()
	}
	return cp
}

// Archive is one archived session snapshot.
type Archive struct {
	// ID is the archive identifier.
	ID string
	// User, Problem, Session locate the archived context.
	User    string
	Problem string
	Session string
	// When is the archival time.
	When time.Time

	snapshot *node
}

// Store is the context tree with archival, safe for concurrent use.
//
// The tree is partitioned by user: each user's whole subtree lives in the
// shard owning the user name and every path operation locks only that
// shard, so sessions of different users never contend. Archives live in
// their own sharded map keyed by archive ID. Cross-user operations (List
// of users, CountContexts, ExportDirectory) visit shards one at a time and
// are weakly consistent under concurrent writers: each user subtree is
// internally consistent, but subtrees mutated mid-walk may reflect
// different instants.
// With Persist attached, each tree mutation's record is appended inside the
// same shard-lock critical section as the mutation itself, so per-user log
// order matches apply order and a compaction dump (which takes shard read
// locks) never observes a mutation whose record it might lose. Records
// carry their timestamps, so replay reproduces creation and archival times
// exactly. Reads never touch the log.
type Store struct {
	users    *shardmap.Map[*node]
	archives *shardmap.Map[*Archive]
	seq      atomic.Int64
	now      atomic.Value // func() time.Time
	persist  *persist.Binding
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		users:    shardmap.New[*node](0),
		archives: shardmap.New[*Archive](0),
	}
	s.now.Store(time.Now)
	return s
}

// SetTimeSource overrides the clock.
func (s *Store) SetTimeSource(now func() time.Time) {
	s.now.Store(now)
}

func (s *Store) clock() time.Time {
	return s.now.Load().(func() time.Time)()
}

func validatePath(path []string) error {
	if len(path) == 0 || len(path) > len(Levels) {
		return fmt.Errorf("contextmgr: path depth %d out of range 1..%d", len(path), len(Levels))
	}
	for _, seg := range path {
		if seg == "" || strings.ContainsAny(seg, "/\n") {
			return fmt.Errorf("contextmgr: invalid context name %q", seg)
		}
	}
	return nil
}

func noContextErr(path []string, depth int) error {
	level := "context"
	if depth-1 < len(Levels) {
		level = strings.ToLower(string(Levels[depth-1]))
	}
	return fmt.Errorf("contextmgr: no %s context at %q", level, strings.Join(path[:depth], "/"))
}

// lookupLocked resolves a non-empty path inside its user's shard. The
// caller holds the shard's lock (read or write).
func lookupLocked(sh *shardmap.Shard[*node], path []string) (*node, error) {
	cur, ok := sh.Get(path[0])
	if !ok {
		return nil, noContextErr(path, 1)
	}
	for i, seg := range path[1:] {
		next, ok := cur.children[seg]
		if !ok {
			return nil, noContextErr(path, i+2)
		}
		cur = next
	}
	return cur, nil
}

// Create makes a context at path; all ancestors must already exist.
func (s *Store) Create(path []string) error {
	if err := validatePath(path); err != nil {
		return err
	}
	now := s.clock()
	sh := s.users.ShardFor(path[0])
	sh.Lock()
	defer sh.Unlock()
	if len(path) == 1 {
		if _, exists := sh.Get(path[0]); exists {
			return fmt.Errorf("contextmgr: context %q already exists", path[0])
		}
		sh.Put(path[0], newNode(path[0], now))
		return s.persist.Log(opCreate, record{Path: path, At: now})
	}
	parent, err := lookupLocked(sh, path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	if _, exists := parent.children[leaf]; exists {
		return fmt.Errorf("contextmgr: context %q already exists", strings.Join(path, "/"))
	}
	parent.children[leaf] = newNode(leaf, now)
	return s.persist.Log(opCreate, record{Path: path, At: now})
}

// Exists reports whether a context exists.
func (s *Store) Exists(path []string) bool {
	if len(path) == 0 {
		return true
	}
	sh := s.users.ShardFor(path[0])
	sh.RLock()
	defer sh.RUnlock()
	_, err := lookupLocked(sh, path)
	return err == nil
}

// Remove deletes a context and its subtree.
func (s *Store) Remove(path []string) error {
	if err := validatePath(path); err != nil {
		return err
	}
	sh := s.users.ShardFor(path[0])
	sh.Lock()
	defer sh.Unlock()
	if len(path) == 1 {
		if !sh.Delete(path[0]) {
			return fmt.Errorf("contextmgr: no context at %q", path[0])
		}
		return s.persist.Log(opRemove, record{Path: path})
	}
	parent, err := lookupLocked(sh, path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	if _, exists := parent.children[leaf]; !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	delete(parent.children, leaf)
	return s.persist.Log(opRemove, record{Path: path})
}

// List returns the sorted child names under path ([] lists users).
func (s *Store) List(path []string) ([]string, error) {
	if len(path) == 0 {
		var out []string
		s.users.Range(func(name string, _ *node) bool {
			out = append(out, name)
			return true
		})
		sort.Strings(out)
		return out, nil
	}
	sh := s.users.ShardFor(path[0])
	sh.RLock()
	defer sh.RUnlock()
	n, err := lookupLocked(sh, path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Rename changes a context's leaf name. Renaming a user context moves the
// subtree between top-level keys, which may live in different shards; both
// are locked in index order.
func (s *Store) Rename(path []string, newName string) error {
	if err := validatePath(append(path[:len(path)-1:len(path)-1], newName)); err != nil {
		return err
	}
	if len(path) == 1 {
		src, dst, unlock := s.users.LockPair(path[0], newName)
		defer unlock()
		n, exists := src.Get(path[0])
		if !exists {
			return fmt.Errorf("contextmgr: no context at %q", path[0])
		}
		if _, dup := dst.Get(newName); dup {
			return fmt.Errorf("contextmgr: context %q already exists", newName)
		}
		src.Delete(path[0])
		n.name = newName
		dst.Put(newName, n)
		return s.persist.Log(opRename, record{Path: path, Name: newName})
	}
	sh := s.users.ShardFor(path[0])
	sh.Lock()
	defer sh.Unlock()
	parent, err := lookupLocked(sh, path[:len(path)-1])
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	n, exists := parent.children[leaf]
	if !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	if _, dup := parent.children[newName]; dup {
		return fmt.Errorf("contextmgr: context %q already exists", newName)
	}
	delete(parent.children, leaf)
	n.name = newName
	parent.children[newName] = n
	return s.persist.Log(opRename, record{Path: path, Name: newName})
}

// Copy duplicates a context subtree under the same parent. Copying a user
// context clones between top-level keys, locking both shards in index
// order.
func (s *Store) Copy(path []string, copyName string) error {
	if err := validatePath(append(path[:len(path)-1:len(path)-1], copyName)); err != nil {
		return err
	}
	if len(path) == 1 {
		src, dst, unlock := s.users.LockPair(path[0], copyName)
		defer unlock()
		n, exists := src.Get(path[0])
		if !exists {
			return fmt.Errorf("contextmgr: no context at %q", path[0])
		}
		if _, dup := dst.Get(copyName); dup {
			return fmt.Errorf("contextmgr: context %q already exists", copyName)
		}
		cp := n.clone()
		cp.name = copyName
		dst.Put(copyName, cp)
		return s.persist.Log(opCopy, record{Path: path, Name: copyName})
	}
	sh := s.users.ShardFor(path[0])
	sh.Lock()
	defer sh.Unlock()
	parent, err := lookupLocked(sh, path[:len(path)-1])
	if err != nil {
		return err
	}
	n, exists := parent.children[path[len(path)-1]]
	if !exists {
		return fmt.Errorf("contextmgr: no context at %q", strings.Join(path, "/"))
	}
	if _, dup := parent.children[copyName]; dup {
		return fmt.Errorf("contextmgr: context %q already exists", copyName)
	}
	cp := n.clone()
	cp.name = copyName
	parent.children[copyName] = cp
	return s.persist.Log(opCopy, record{Path: path, Name: copyName})
}

// withNode runs fn on the context at path under its shard's write lock.
func (s *Store) withNode(path []string, fn func(n *node) error) error {
	if len(path) == 0 {
		return fmt.Errorf("contextmgr: path depth 0 out of range 1..%d", len(Levels))
	}
	sh := s.users.ShardFor(path[0])
	sh.Lock()
	defer sh.Unlock()
	n, err := lookupLocked(sh, path)
	if err != nil {
		return err
	}
	return fn(n)
}

// readNode runs fn on the context at path under its shard's read lock.
func (s *Store) readNode(path []string, fn func(n *node) error) error {
	if len(path) == 0 {
		return fmt.Errorf("contextmgr: path depth 0 out of range 1..%d", len(Levels))
	}
	sh := s.users.ShardFor(path[0])
	sh.RLock()
	defer sh.RUnlock()
	n, err := lookupLocked(sh, path)
	if err != nil {
		return err
	}
	return fn(n)
}

// SetProp sets a property on a context.
func (s *Store) SetProp(path []string, name, value string) error {
	return s.withNode(path, func(n *node) error {
		n.props[name] = value
		return s.persist.Log(opSetProp, record{Path: path, Name: name, Value: value})
	})
}

// GetProp reads a property.
func (s *Store) GetProp(path []string, name string) (string, error) {
	var v string
	err := s.readNode(path, func(n *node) error {
		val, ok := n.props[name]
		if !ok {
			return fmt.Errorf("contextmgr: context %q has no property %q", strings.Join(path, "/"), name)
		}
		v = val
		return nil
	})
	return v, err
}

// RemoveProp deletes a property.
func (s *Store) RemoveProp(path []string, name string) error {
	return s.withNode(path, func(n *node) error {
		if _, ok := n.props[name]; !ok {
			return fmt.Errorf("contextmgr: context %q has no property %q", strings.Join(path, "/"), name)
		}
		delete(n.props, name)
		return s.persist.Log(opRmProp, record{Path: path, Name: name})
	})
}

// ListProps returns the sorted property names of a context.
func (s *Store) ListProps(path []string) ([]string, error) {
	var out []string
	err := s.readNode(path, func(n *node) error {
		out = make([]string, 0, len(n.props))
		for name := range n.props {
			out = append(out, name)
		}
		sort.Strings(out)
		return nil
	})
	return out, err
}

// ClearProps removes every property of a context.
func (s *Store) ClearProps(path []string) error {
	return s.withNode(path, func(n *node) error {
		n.props = map[string]string{}
		return s.persist.Log(opClearProps, record{Path: path})
	})
}

// CountChildren returns the number of direct children.
func (s *Store) CountChildren(path []string) (int, error) {
	if len(path) == 0 {
		return s.users.Len(), nil
	}
	count := 0
	err := s.readNode(path, func(n *node) error {
		count = len(n.children)
		return nil
	})
	return count, err
}

// CountContexts returns the total number of contexts in the store
// (weakly consistent: shards are counted one at a time).
func (s *Store) CountContexts() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		count += len(n.children)
		for _, c := range n.children {
			walk(c)
		}
	}
	s.users.Range(func(_ string, n *node) bool {
		count++
		walk(n)
		return true
	})
	return count
}

// Created returns a context's creation time.
func (s *Store) Created(path []string) (time.Time, error) {
	var t time.Time
	err := s.readNode(path, func(n *node) error {
		t = n.created
		return nil
	})
	return t, err
}

// CreatePlaceholder makes an artificial user/problem/session chain for a
// stateless caller — the workaround the paper describes: "we were forced
// to create placeholder contexts in our SOAP wrappers ... Making this into
// an independent service introduced unnecessary overhead because we needed
// to create artificial contexts (sessions) for HotPage users." Existing
// segments are reused.
func (s *Store) CreatePlaceholder(user, problem, session string) error {
	for _, seg := range []string{user, problem, session} {
		if seg == "" || strings.ContainsAny(seg, "/\n") {
			return fmt.Errorf("contextmgr: invalid placeholder segment %q", seg)
		}
	}
	now := s.clock()
	sh := s.users.ShardFor(user)
	sh.Lock()
	defer sh.Unlock()
	cur, ok := sh.Get(user)
	if !ok {
		cur = newNode(user, now)
		cur.props["placeholder"] = "true"
		sh.Put(user, cur)
	}
	for _, seg := range []string{problem, session} {
		next, ok := cur.children[seg]
		if !ok {
			next = newNode(seg, now)
			next.props["placeholder"] = "true"
			cur.children[seg] = next
		}
		cur = next
	}
	return s.persist.Log(opPlaceholder, record{User: user, Problem: problem, Session: session, At: now})
}

// ArchiveSession snapshots a session context into the archive and returns
// the archive ID.
func (s *Store) ArchiveSession(user, problem, session string) (string, error) {
	id := fmt.Sprintf("arch-%d", s.seq.Add(1))
	if err := s.archiveAs(user, problem, session, id); err != nil {
		return "", err
	}
	return id, nil
}

// archiveAs snapshots the session under the given archive ID. The clone and
// the durability record happen under the user tree's read lock, so the
// record's log position matches the tree state it captured; the archive-map
// store and the record share the archive shard's write lock, so a
// compaction dump can never miss a stored archive whose record predates the
// log rotation. Lock order is tree shard (R) then archive shard (W);
// nothing acquires them in the other order.
func (s *Store) archiveAs(user, problem, session, id string) error {
	sh := s.users.ShardFor(user)
	sh.RLock()
	defer sh.RUnlock()
	n, err := lookupLocked(sh, []string{user, problem, session})
	if err != nil {
		return err
	}
	a := &Archive{
		ID: id, User: user, Problem: problem, Session: session,
		When: s.clock(), snapshot: n.clone(),
	}
	ash := s.archives.ShardFor(id)
	ash.Lock()
	defer ash.Unlock()
	if err := s.persist.Log(opArchive, record{
		User: user, Problem: problem, Session: session, ID: id, At: a.When, Seq: s.seq.Load(),
	}); err != nil {
		return err
	}
	ash.Put(id, a)
	return nil
}

// RestoreSession replaces (or recreates) a session context from an archive
// — "the user can recover and edit old sessions later".
func (s *Store) RestoreSession(id string) error {
	a, ok := s.archives.Load(id)
	if !ok {
		return fmt.Errorf("contextmgr: no archive %q", id)
	}
	sh := s.users.ShardFor(a.User)
	sh.Lock()
	defer sh.Unlock()
	problemNode, err := lookupLocked(sh, []string{a.User, a.Problem})
	if err != nil {
		return err
	}
	problemNode.children[a.Session] = a.snapshot.clone()
	return s.persist.Log(opRestore, record{ID: id})
}

// ListArchives returns archives for a user sorted by ID.
func (s *Store) ListArchives(user string) []Archive {
	var out []Archive
	s.archives.Range(func(_ string, a *Archive) bool {
		if a.User == user {
			cp := *a
			cp.snapshot = nil
			out = append(out, cp)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoveArchive deletes an archive.
func (s *Store) RemoveArchive(id string) error {
	ash := s.archives.ShardFor(id)
	ash.Lock()
	defer ash.Unlock()
	if !ash.Delete(id) {
		return fmt.Errorf("contextmgr: no archive %q", id)
	}
	return s.persist.Log(opRmArchive, record{ID: id})
}

// ExportDirectory renders the tree as the directory-structure mapping the
// paper describes: one line per context path, properties as path:name=value
// lines, sorted. User subtrees are rendered one shard lock at a time, so
// the export is weakly consistent under concurrent writes.
func (s *Store) ExportDirectory() string {
	var users []string
	s.users.Range(func(name string, _ *node) bool {
		users = append(users, name)
		return true
	})
	sort.Strings(users)
	var lines []string
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		var props []string
		for k := range n.props {
			props = append(props, k)
		}
		sort.Strings(props)
		for _, k := range props {
			lines = append(lines, prefix+":"+k+"="+n.props[k])
		}
		var names []string
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := prefix + "/" + name
			lines = append(lines, p)
			walk(n.children[name], p)
		}
	}
	for _, user := range users {
		sh := s.users.ShardFor(user)
		sh.RLock()
		if n, ok := sh.Get(user); ok {
			p := "/" + user
			lines = append(lines, p)
			walk(n, p)
		}
		sh.RUnlock()
	}
	return strings.Join(lines, "\n")
}

// ImportDirectory rebuilds a tree from ExportDirectory output. The swap is
// per-user, not globally atomic: a reader racing an Import may see a mix
// of old and new user subtrees, and the durability record of an Import
// racing per-user writers is likewise weakly ordered (the record is
// appended after the swap, with no global lock held).
func (s *Store) ImportDirectory(data string) error {
	now := s.clock()
	root := newNode("", now)
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		pathPart := line
		propName, propValue := "", ""
		if i := strings.Index(line, ":"); i >= 0 {
			pathPart = line[:i]
			kv := line[i+1:]
			j := strings.Index(kv, "=")
			if j < 0 {
				return fmt.Errorf("contextmgr: bad property line %q", line)
			}
			propName, propValue = kv[:j], kv[j+1:]
		}
		segs := strings.Split(strings.TrimPrefix(pathPart, "/"), "/")
		if len(segs) > len(Levels) {
			return fmt.Errorf("contextmgr: path %q too deep", pathPart)
		}
		cur := root
		for _, seg := range segs {
			if seg == "" {
				return fmt.Errorf("contextmgr: bad path %q", pathPart)
			}
			next, ok := cur.children[seg]
			if !ok {
				next = newNode(seg, now)
				cur.children[seg] = next
			}
			cur = next
		}
		if propName != "" {
			cur.props[propName] = propValue
		}
	}
	s.users.Clear()
	for name, n := range root.children {
		s.users.Store(name, n)
	}
	return s.persist.Log(opImportDir, record{Data: data, At: now})
}
