package contextmgr

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestStoreRoundTrip restarts the context store across the full mutation
// surface — placeholder creation, properties, subtree create/copy, archive,
// archive removal, a compacting snapshot, and post-snapshot tail writes —
// and asserts the recovered store matches, including exact creation and
// archival timestamps (replay pins the clock to each record's time).
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2002, 11, 16, 12, 0, 0, 0, time.UTC)
	var tick int64
	clock := func() time.Time {
		return base.Add(time.Duration(atomic.AddInt64(&tick, 1)) * time.Second)
	}

	open := func() *Store {
		t.Helper()
		l, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		s := NewStore()
		if err := s.Persist(l); err != nil {
			t.Fatalf("Persist: %v", err)
		}
		return s
	}

	s1 := open()
	s1.SetTimeSource(clock)
	session := []string{"alice", "chem", "run1"}
	if err := s1.CreatePlaceholder("alice", "chem", "run1"); err != nil {
		t.Fatal(err)
	}
	if err := s1.SetProp(session, "status", "submitted"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Create(append(session[:len(session):len(session)], "outputs")); err != nil {
		t.Fatal(err)
	}
	archID, err := s1.ArchiveSession("alice", "chem", "run1")
	if err != nil {
		t.Fatal(err)
	}
	// Mutations after the archive: the archive must keep the old state.
	if err := s1.SetProp(session, "status", "done"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Copy(session, "run1-copy"); err != nil {
		t.Fatal(err)
	}
	// A second archive, removed again: removal must survive the restart too.
	gone, err := s1.ArchiveSession("alice", "chem", "run1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.RemoveArchive(gone); err != nil {
		t.Fatal(err)
	}
	if err := s1.CompactPersist(); err != nil {
		t.Fatal(err)
	}
	// Tail writes after the snapshot: only in the log.
	if err := s1.CreatePlaceholder("bob", "phys", "exp1"); err != nil {
		t.Fatal(err)
	}
	wantCreated, err := s1.Created(session)
	if err != nil {
		t.Fatal(err)
	}
	wantArchives := s1.ListArchives("alice")
	if err := s1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.ClosePersist()
	got, err := s2.Created(session)
	if err != nil {
		t.Fatalf("session lost: %v", err)
	}
	if !got.Equal(wantCreated) {
		t.Fatalf("created time drifted across restart: %v, want %v", got, wantCreated)
	}
	if v, err := s2.GetProp(session, "status"); err != nil || v != "done" {
		t.Fatalf("status = %q, %v; want done", v, err)
	}
	if v, err := s2.GetProp([]string{"alice", "chem", "run1-copy"}, "status"); err != nil || v != "done" {
		t.Fatalf("copied session status = %q, %v; want done", v, err)
	}
	if !s2.Exists(append(session[:len(session):len(session)], "outputs")) {
		t.Fatal("outputs subtree lost")
	}
	if !s2.Exists([]string{"bob", "phys", "exp1"}) {
		t.Fatal("post-snapshot placeholder lost")
	}
	archives := s2.ListArchives("alice")
	if len(archives) != 1 || len(wantArchives) != 1 {
		t.Fatalf("recovered %d archives, want 1 (pre-restart view had %d)", len(archives), len(wantArchives))
	}
	if archives[0].ID != archID || !archives[0].When.Equal(wantArchives[0].When) {
		t.Fatalf("archive %s@%v, want %s@%v", archives[0].ID, archives[0].When, archID, wantArchives[0].When)
	}
	// Restoring the archive must resurrect the pre-archive state: status as
	// it was when archived, not as it was at shutdown.
	if err := s2.RestoreSession(archID); err != nil {
		t.Fatal(err)
	}
	if v, err := s2.GetProp(session, "status"); err != nil || v != "submitted" {
		t.Fatalf("restored status = %q, %v; want submitted", v, err)
	}
	// The archive-ID sequence recovered: new archives never reuse an ID.
	s2.SetTimeSource(clock)
	fresh, err := s2.ArchiveSession("alice", "chem", "run1")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == archID || fresh == gone {
		t.Fatalf("restarted store reused archive ID %s", fresh)
	}
}

// TestRestoreSurvivesRestart pins the replay ordering of restore records: a
// restore logged before shutdown must still be in effect after recovery.
func TestRestoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStore()
	if err := s1.Persist(l); err != nil {
		t.Fatal(err)
	}
	session := []string{"alice", "chem", "run1"}
	if err := s1.CreatePlaceholder("alice", "chem", "run1"); err != nil {
		t.Fatal(err)
	}
	if err := s1.SetProp(session, "phase", "one"); err != nil {
		t.Fatal(err)
	}
	id, err := s1.ArchiveSession("alice", "chem", "run1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SetProp(session, "phase", "two"); err != nil {
		t.Fatal(err)
	}
	if err := s1.RestoreSession(id); err != nil {
		t.Fatal(err)
	}
	if err := s1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Persist(l2); err != nil {
		t.Fatal(err)
	}
	defer s2.ClosePersist()
	if v, err := s2.GetProp(session, "phase"); err != nil || v != "one" {
		t.Fatalf("phase = %q, %v after recovery; want the restored value one", v, err)
	}
}
