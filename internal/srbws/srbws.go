// Package srbws implements the SRB Web Services of Section 3.2: a SOAP
// facade over the Storage Resource Broker exposing exactly the methods the
// paper's Python trial exposed — ls, cat, get, put, and xml_call. The get
// and put methods "transfer a file between an SRB collection and the client
// by simply streaming the file as a string. This transfer mechanism does
// not scale well, and was only used as a proof of concept" — the S3.2
// benchmark quantifies that; the chunked stat/getChunk/putChunk extension
// is the ablation showing what bounded-memory framing buys.
//
// The xml_call method "allows the client to create a single request string
// consisting of multiple SRB commands expressed in XML and sent to the Web
// Service using a single connection"; commands execute sequentially with
// per-command status, like the paper's service.
package srbws

import (
	"errors"
	"fmt"
	"strconv"

	"strings"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// ServiceNS is the SRB service namespace.
const ServiceNS = "urn:gce:srb"

// def is the declarative operation table of the SRB facade bound to one
// broker. defaultUser is the principal for unauthenticated calls ("" to
// require authentication).
func def(b *srb.Broker, defaultUser string) *rpc.Def {
	userOf := func(ctx *core.Context) (string, error) {
		if ctx.Principal != "" {
			return ctx.Principal, nil
		}
		if defaultUser == "" {
			return "", soap.NewPortalError("SRBService", soap.ErrCodeAuthFailed,
				"GSI authentication required")
		}
		return defaultUser, nil
	}
	return &rpc.Def{
		Name: "SRBService",
		NS:   ServiceNS,
		Doc:  "SOAP interface to the Storage Resource Broker (GSI authenticated).",
		Ops: []rpc.Op{
			{
				Name:       "ls",
				Idempotent: true,
				Doc:        "Returns the directory listing of an SRB collection.",
				In:         []wsdl.Param{rpc.Str("collection")},
				Out:        []wsdl.Param{rpc.XML("entries")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					entries, err := b.Sls(user, in.Str("collection"))
					if err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(EntriesElement(entries)), nil
				},
			},
			{
				Name:       "cat",
				Idempotent: true,
				Doc:        "Returns the contents of a file in the SRB collection.",
				In:         []wsdl.Param{rpc.Str("path")},
				Out:        []wsdl.Param{rpc.Str("contents")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					data, err := b.Scat(user, in.Str("path"))
					if err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(data), nil
				},
			},
			{
				Name:       "get",
				Idempotent: true,
				Doc:        "Transfers a file to the client by streaming it as one string (proof of concept).",
				In:         []wsdl.Param{rpc.Str("path")},
				Out:        []wsdl.Param{rpc.Str("data")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					data, err := b.Sget(user, in.Str("path"))
					if err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(data), nil
				},
			},
			{
				Name: "put",
				Doc:  "Transfers a file from the client by streaming it as one string (proof of concept).",
				In:   []wsdl.Param{rpc.Str("path"), rpc.Str("data"), rpc.Str("resource")},
				Out:  []wsdl.Param{rpc.Bool("stored")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					if err := b.Sput(user, in.Str("path"), in.Str("data"), in.Str("resource")); err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name: "xmlCall",
				Doc:  "Executes multiple SRB commands from one XML request over a single connection.",
				In:   []wsdl.Param{rpc.XML("request")},
				Out:  []wsdl.Param{rpc.XML("results")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					req := in.XML("request")
					if req == nil || req.Name != "srbRequest" {
						return nil, soap.NewPortalError("SRBService", soap.ErrCodeBadRequest, "missing srbRequest document")
					}
					results := xmlutil.New("srbResults")
					for i, cmd := range req.ChildrenNamed("command") {
						results.Add(execCommand(b, user, i, cmd))
					}
					return rpc.Ret(results), nil
				},
			},
			{
				Name:       "stat",
				Idempotent: true,
				Doc:        "Returns a file's size, enabling chunked transfer (scalability extension).",
				In:         []wsdl.Param{rpc.Str("path")},
				Out:        []wsdl.Param{rpc.Int("size")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					size, err := b.Size(user, in.Str("path"))
					if err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(size), nil
				},
			},
			{
				Name:       "getChunk",
				Idempotent: true,
				Doc:        "Reads one bounded chunk of a file (scalability extension).",
				In:         []wsdl.Param{rpc.Str("path"), rpc.Int("offset"), rpc.Int("size")},
				Out:        []wsdl.Param{rpc.Str("data")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					data, err := b.SgetRange(user, in.Str("path"), in.Int("offset"), in.Int("size"))
					if err != nil {
						if strings.Contains(err.Error(), "bad range") {
							return nil, soap.NewPortalError("SRBService", soap.ErrCodeBadRequest, "%v", err)
						}
						return nil, mapError(err)
					}
					return rpc.Ret(data), nil
				},
			},
			{
				Name: "putChunk",
				Doc:  "Appends one bounded chunk to a file (scalability extension).",
				In:   []wsdl.Param{rpc.Str("path"), rpc.Int("offset"), rpc.Str("data"), rpc.Str("resource")},
				Out:  []wsdl.Param{rpc.Bool("stored")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					user, err := userOf(ctx)
					if err != nil {
						return nil, err
					}
					path, off := in.Str("path"), in.Int("offset")
					existing := ""
					if off > 0 {
						var err error
						existing, err = b.Sget(user, path)
						if err != nil {
							return nil, mapError(err)
						}
						if off != len(existing) {
							return nil, soap.NewPortalError("SRBService", soap.ErrCodeBadRequest,
								"chunk offset %d does not match current size %d", off, len(existing))
						}
					}
					if err := b.Sput(user, path, existing+in.Str("data"), in.Str("resource")); err != nil {
						return nil, mapError(err)
					}
					return rpc.Ret(true), nil
				},
			},
		},
	}
}

// Contract returns the SRB Web Services WSDL interface.
func Contract() *wsdl.Interface {
	return def(nil, "").Interface()
}

// mapError converts broker errors to portal errors with the standard codes
// (AccessDenied, NoSuchResource, ResourceFull).
func mapError(err error) *soap.PortalError {
	var ae *srb.AccessError
	switch {
	case errors.As(err, &ae):
		return soap.NewPortalError("SRBService", soap.ErrCodeAccessDenied, "%v", err)
	case err != nil && containsFull(err.Error()):
		return soap.NewPortalError("SRBService", soap.ErrCodeResourceFull, "%v", err)
	default:
		return soap.NewPortalError("SRBService", soap.ErrCodeNoSuchResource, "%v", err)
	}
}

func containsFull(msg string) bool {
	for i := 0; i+4 <= len(msg); i++ {
		if msg[i:i+4] == "full" {
			return true
		}
	}
	return false
}

// EntriesElement renders a listing for the wire.
func EntriesElement(entries []srb.Entry) *xmlutil.Element {
	root := xmlutil.New("entries")
	for _, e := range entries {
		el := xmlutil.New("entry").
			SetAttr("name", e.Name).
			SetAttr("size", strconv.Itoa(e.Size)).
			SetAttr("owner", e.Owner)
		if e.IsCollection {
			el.SetAttr("type", "collection")
		} else {
			el.SetAttr("type", "dataObject").SetAttr("resource", e.Resource)
		}
		root.Add(el)
	}
	return root
}

// EntriesFromElement parses a wire listing.
func EntriesFromElement(root *xmlutil.Element) []srb.Entry {
	var out []srb.Entry
	for _, el := range root.ChildrenNamed("entry") {
		e := srb.Entry{
			Name:     el.AttrDefault("name", ""),
			Owner:    el.AttrDefault("owner", ""),
			Resource: el.AttrDefault("resource", ""),
		}
		e.Size, _ = strconv.Atoi(el.AttrDefault("size", "0"))
		e.IsCollection = el.AttrDefault("type", "") == "collection"
		out = append(out, e)
	}
	return out
}

// NewService builds the deployable SRB service from the declarative
// operation table. defaultUser is the principal for unauthenticated calls
// ("" to require authentication).
func NewService(b *srb.Broker, defaultUser string) *core.Service {
	return def(b, defaultUser).MustBuild()
}

// execCommand runs one xml_call command, reporting status in-band.
func execCommand(b *srb.Broker, user string, index int, cmd *xmlutil.Element) *xmlutil.Element {
	name := cmd.AttrDefault("name", "")
	var cmdArgs []string
	for _, a := range cmd.ChildrenNamed("arg") {
		cmdArgs = append(cmdArgs, a.Text)
	}
	result := xmlutil.New("result").
		SetAttr("index", strconv.Itoa(index)).
		SetAttr("command", name)
	fail := func(err error) *xmlutil.Element {
		result.SetAttr("status", "error")
		result.AddText("error", err.Error())
		return result
	}
	need := func(n int) bool { return len(cmdArgs) >= n }
	switch name {
	case "ls":
		if !need(1) {
			return fail(fmt.Errorf("ls requires a collection argument"))
		}
		entries, err := b.Sls(user, cmdArgs[0])
		if err != nil {
			return fail(err)
		}
		result.SetAttr("status", "ok")
		result.Add(EntriesElement(entries))
	case "cat", "get":
		if !need(1) {
			return fail(fmt.Errorf("%s requires a path argument", name))
		}
		data, err := b.Sget(user, cmdArgs[0])
		if err != nil {
			return fail(err)
		}
		result.SetAttr("status", "ok")
		result.AddText("data", data)
	case "put":
		if !need(2) {
			return fail(fmt.Errorf("put requires path and data arguments"))
		}
		resource := ""
		if len(cmdArgs) > 2 {
			resource = cmdArgs[2]
		}
		if err := b.Sput(user, cmdArgs[0], cmdArgs[1], resource); err != nil {
			return fail(err)
		}
		result.SetAttr("status", "ok")
	case "mkdir":
		if !need(1) {
			return fail(fmt.Errorf("mkdir requires a path argument"))
		}
		if err := b.Mkdir(user, cmdArgs[0]); err != nil {
			return fail(err)
		}
		result.SetAttr("status", "ok")
	case "rm":
		if !need(1) {
			return fail(fmt.Errorf("rm requires a path argument"))
		}
		if err := b.Srm(user, cmdArgs[0]); err != nil {
			return fail(err)
		}
		result.SetAttr("status", "ok")
	default:
		return fail(fmt.Errorf("unknown SRB command %q", name))
	}
	return result
}

// Command is one xml_call command for request building.
type Command struct {
	// Name is the command: ls, cat, get, put, mkdir, rm.
	Name string
	// Args are the positional arguments.
	Args []string
}

// BuildRequest renders commands into an srbRequest document.
func BuildRequest(cmds []Command) *xmlutil.Element {
	root := xmlutil.New("srbRequest")
	for _, c := range cmds {
		el := xmlutil.New("command").SetAttr("name", c.Name)
		for _, a := range c.Args {
			el.AddText("arg", a)
		}
		root.Add(el)
	}
	return root
}

// CommandResult is one decoded xml_call result.
type CommandResult struct {
	// Index is the command position.
	Index int
	// Command is the command name.
	Command string
	// OK reports success.
	OK bool
	// Error holds the failure message when !OK.
	Error string
	// Data holds cat/get output.
	Data string
	// Entries holds ls output.
	Entries []srb.Entry
}

// ParseResults decodes an srbResults document.
func ParseResults(root *xmlutil.Element) ([]CommandResult, error) {
	if root.Name != "srbResults" {
		return nil, fmt.Errorf("srbws: root element %q is not srbResults", root.Name)
	}
	var out []CommandResult
	for _, el := range root.ChildrenNamed("result") {
		r := CommandResult{
			Command: el.AttrDefault("command", ""),
			OK:      el.AttrDefault("status", "") == "ok",
			Error:   el.ChildText("error"),
			Data:    el.ChildText("data"),
		}
		r.Index, _ = strconv.Atoi(el.AttrDefault("index", "0"))
		if entries := el.Child("entries"); entries != nil {
			r.Entries = EntriesFromElement(entries)
		}
		out = append(out, r)
	}
	return out, nil
}

// Client is a typed proxy to the SRB service.
type Client struct {
	c *core.Client
}

// NewClient binds to an SRB service endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// Use adds a client interceptor (e.g. SAML session).
func (cl *Client) Use(i core.ClientInterceptor) *Client {
	cl.c.Use(i)
	return cl
}

// Ls lists a collection.
func (cl *Client) Ls(collection string) ([]srb.Entry, error) {
	doc, err := cl.c.CallXMLCopy("ls", soap.Str("collection", collection))
	if err != nil {
		return nil, err
	}
	return EntriesFromElement(doc), nil
}

// Cat returns a file's contents.
func (cl *Client) Cat(path string) (string, error) {
	return cl.c.CallText("cat", soap.Str("path", path))
}

// Get transfers a file as one string (the non-scaling PoC transfer).
func (cl *Client) Get(path string) (string, error) {
	return cl.c.CallText("get", soap.Str("path", path))
}

// Put transfers a file as one string (the non-scaling PoC transfer).
func (cl *Client) Put(path, data, resource string) error {
	_, err := cl.c.Call("put",
		soap.Str("path", path), soap.Str("data", data), soap.Str("resource", resource))
	return err
}

// XMLCall executes multiple commands in one connection.
func (cl *Client) XMLCall(cmds []Command) ([]CommandResult, error) {
	doc, err := cl.c.CallXMLCopy("xmlCall", soap.XMLDoc("request", BuildRequest(cmds)))
	if err != nil {
		return nil, err
	}
	return ParseResults(doc)
}

// Stat returns a file's size.
func (cl *Client) Stat(path string) (int, error) {
	resp, err := cl.c.Call("stat", soap.Str("path", path))
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(resp.ReturnText("size"))
}

// GetChunked transfers a file in bounded chunks — the scalability ablation.
func (cl *Client) GetChunked(path string, chunkSize int) (string, error) {
	if chunkSize <= 0 {
		return "", fmt.Errorf("srbws: chunk size must be positive")
	}
	size, err := cl.Stat(path)
	if err != nil {
		return "", err
	}
	var out []byte
	for off := 0; off < size; off += chunkSize {
		resp, err := cl.c.Call("getChunk",
			soap.Str("path", path), soap.Int("offset", off), soap.Int("size", chunkSize))
		if err != nil {
			return "", err
		}
		out = append(out, resp.ReturnText("data")...)
	}
	return string(out), nil
}

// PutChunked uploads a file in bounded chunks.
func (cl *Client) PutChunked(path, data, resource string, chunkSize int) error {
	if chunkSize <= 0 {
		return fmt.Errorf("srbws: chunk size must be positive")
	}
	if data == "" {
		return cl.Put(path, "", resource)
	}
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		_, err := cl.c.Call("putChunk",
			soap.Str("path", path), soap.Int("offset", off),
			soap.Str("data", data[off:end]), soap.Str("resource", resource))
		if err != nil {
			return err
		}
	}
	return nil
}
