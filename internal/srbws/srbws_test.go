package srbws

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/srb"
)

func newFixture(t *testing.T) (*srb.Broker, *Client, string) {
	t.Helper()
	b := srb.NewBroker("sdsc")
	home := b.CreateUser("mock")
	p := core.NewProvider("srb-ssp", "loopback://srb")
	p.MustRegister(NewService(b, "mock"))
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://srb/SRBService")
	return b, cl, home
}

func TestPutGetLsCat(t *testing.T) {
	_, cl, home := newFixture(t)
	content := "line one\nline two\n  indented with trailing space \n"
	if err := cl.Put(home+"/data.txt", content, ""); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(home + "/data.txt")
	if err != nil || got != content {
		t.Errorf("Get = %q, %v (whitespace must survive the wire)", got, err)
	}
	got, err = cl.Cat(home + "/data.txt")
	if err != nil || got != content {
		t.Errorf("Cat = %q, %v", got, err)
	}
	entries, err := cl.Ls(home)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "data.txt" || entries[0].Size != len(content) {
		t.Errorf("entries = %+v", entries)
	}
	if entries[0].IsCollection || entries[0].Resource != "default-disk" || entries[0].Owner != "mock" {
		t.Errorf("entry meta = %+v", entries[0])
	}
}

func TestErrorMapping(t *testing.T) {
	b, cl, home := newFixture(t)
	// NoSuchResource.
	_, err := cl.Get(home + "/missing")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeNoSuchResource {
		t.Errorf("missing file err = %v", err)
	}
	// AccessDenied: another user's object read through the service.
	b.CreateUser("kurt")
	other := srb.NewBroker("x") // silence unused warning pattern
	_ = other
	if err := b.Sput("kurt", "/sdsc/home/kurt/private", "secret", ""); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Get("/sdsc/home/kurt/private")
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeAccessDenied {
		t.Errorf("denied err = %v", err)
	}
	// ResourceFull — the paper's canonical implementation error, relayed
	// through the portal-standard error detail.
	b.AddResource(srb.Resource{Name: "tiny", Capacity: 4})
	err = cl.Put(home+"/big", "123456789", "tiny")
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeResourceFull {
		t.Errorf("full err = %v", err)
	}
}

func TestAuthRequired(t *testing.T) {
	b := srb.NewBroker("sdsc")
	b.CreateUser("mock")
	p := core.NewProvider("srb-ssp", "loopback://srb")
	p.MustRegister(NewService(b, "")) // authentication required
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://srb/SRBService")
	_, err := cl.Ls("/sdsc/home/mock")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeAuthFailed {
		t.Errorf("err = %v", err)
	}
}

func TestXMLCall(t *testing.T) {
	_, cl, home := newFixture(t)
	results, err := cl.XMLCall([]Command{
		{Name: "mkdir", Args: []string{home + "/runs"}},
		{Name: "put", Args: []string{home + "/runs/a.out", "output data"}},
		{Name: "ls", Args: []string{home + "/runs"}},
		{Name: "cat", Args: []string{home + "/runs/a.out"}},
		{Name: "get", Args: []string{home + "/runs/missing"}}, // fails in-band
		{Name: "rm", Args: []string{home + "/runs/a.out"}},
		{Name: "bogus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d", len(results))
	}
	for i, wantOK := range []bool{true, true, true, true, false, true, false} {
		if results[i].OK != wantOK {
			t.Errorf("result %d (%s): ok=%v err=%q", i, results[i].Command, results[i].OK, results[i].Error)
		}
	}
	if len(results[2].Entries) != 1 || results[2].Entries[0].Name != "a.out" {
		t.Errorf("ls entries = %+v", results[2].Entries)
	}
	if results[3].Data != "output data" {
		t.Errorf("cat data = %q", results[3].Data)
	}
	if !strings.Contains(results[6].Error, "unknown SRB command") {
		t.Errorf("bogus error = %q", results[6].Error)
	}
}

func TestXMLCallValidation(t *testing.T) {
	_, cl, _ := newFixture(t)
	// Missing args fail per-command, not as a fault.
	results, err := cl.XMLCall([]Command{{Name: "ls"}, {Name: "put", Args: []string{"onlypath"}}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OK || results[1].OK {
		t.Errorf("underspecified commands succeeded: %+v", results)
	}
}

func TestChunkedTransfer(t *testing.T) {
	_, cl, home := newFixture(t)
	data := strings.Repeat("0123456789abcdef", 1000) // 16 KB
	if err := cl.PutChunked(home+"/chunked.bin", data, "", 1024); err != nil {
		t.Fatal(err)
	}
	size, err := cl.Stat(home + "/chunked.bin")
	if err != nil || size != len(data) {
		t.Errorf("stat = %d, %v", size, err)
	}
	got, err := cl.GetChunked(home+"/chunked.bin", 1024)
	if err != nil || got != data {
		t.Errorf("chunked round trip mismatch: %d bytes vs %d, %v", len(got), len(data), err)
	}
	// Chunked and string-streamed transfers are interchangeable.
	whole, err := cl.Get(home + "/chunked.bin")
	if err != nil || whole != data {
		t.Errorf("whole get after chunked put: %d bytes, %v", len(whole), err)
	}
	// Odd chunk size not dividing the length.
	got, err = cl.GetChunked(home+"/chunked.bin", 999)
	if err != nil || got != data {
		t.Errorf("odd chunk size mismatch: %v", err)
	}
}

func TestChunkedEdgeCases(t *testing.T) {
	_, cl, home := newFixture(t)
	if err := cl.PutChunked(home+"/empty", "", "", 64); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetChunked(home+"/empty", 64)
	if err != nil || got != "" {
		t.Errorf("empty file = %q, %v", got, err)
	}
	if _, err := cl.GetChunked(home+"/empty", 0); err == nil {
		t.Error("zero chunk size accepted")
	}
	if err := cl.PutChunked(home+"/x", "data", "", -1); err == nil {
		t.Error("negative chunk size accepted")
	}
	// Out-of-range chunk read.
	_ = cl.Put(home+"/f", "12345", "")
	_, err = cl.c.Call("getChunk", soap.Str("path", home+"/f"), soap.Int("offset", 99), soap.Int("size", 10))
	if soap.AsPortalError(err) == nil {
		t.Errorf("bad range err = %v", err)
	}
	// putChunk with mismatched offset.
	_, err = cl.c.Call("putChunk", soap.Str("path", home+"/f"), soap.Int("offset", 3),
		soap.Str("data", "xx"), soap.Str("resource", ""))
	if soap.AsPortalError(err) == nil {
		t.Errorf("offset mismatch err = %v", err)
	}
}

func TestAuthenticatedPrincipalUsed(t *testing.T) {
	// When the SPP sets a verified principal, the service acts as that
	// user, not the default.
	b := srb.NewBroker("sdsc")
	b.CreateUser("mock")
	b.CreateUser("kurt")
	_ = b.Sput("kurt", "/sdsc/home/kurt/own.txt", "kurt data", "")
	p := core.NewProvider("srb-ssp", "loopback://srb")
	p.Use(func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			ctx.Principal = "kurt"
			return next(ctx, args)
		}
	})
	p.MustRegister(NewService(b, "mock"))
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://srb/SRBService")
	got, err := cl.Get("/sdsc/home/kurt/own.txt")
	if err != nil || got != "kurt data" {
		t.Errorf("as kurt = %q, %v", got, err)
	}
	// And mock's home is now off-limits.
	if _, err := cl.Ls("/sdsc/home/mock"); soap.AsPortalError(err) == nil {
		t.Errorf("err = %v", err)
	}
}
