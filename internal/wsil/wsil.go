// Package wsil implements the Web Services Inspection Language (WSIL), the
// lightweight decentralized discovery alternative the paper lists alongside
// UDDI in Section 2. A WSIL document is published at a well-known location
// on a provider and enumerates its services with links to their WSDL
// descriptions; aggregated inspection documents link to other inspection
// documents, forming the decentralized web UDDI centralises.
package wsil

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/xmlutil"
)

// Namespace URIs used by WS-Inspection documents.
const (
	InspectionNS = "http://schemas.xmlsoap.org/ws/2001/10/inspection/"
	WSDLRefNS    = "http://schemas.xmlsoap.org/ws/2001/10/inspection/wsdl/"
)

// WellKnownPath is the conventional location of a provider's inspection
// document.
const WellKnownPath = "/inspection.wsil"

// ServiceEntry describes one service in an inspection document.
type ServiceEntry struct {
	// Name is the human-readable service name.
	Name string
	// Abstract is a short description.
	Abstract string
	// WSDLLocation points at the service's WSDL document.
	WSDLLocation string
}

// Link points at another inspection document (aggregation).
type Link struct {
	// Location is the URL of the linked inspection document.
	Location string
	// Abstract describes the linked provider.
	Abstract string
}

// Document is a WS-Inspection document.
type Document struct {
	// Services listed by this provider.
	Services []ServiceEntry
	// Links to other inspection documents.
	Links []Link
}

// Element renders the inspection document.
func (d *Document) Element() *xmlutil.Element {
	root := xmlutil.NewNS(InspectionNS, "inspection")
	for _, s := range d.Services {
		svc := xmlutil.NewNS(InspectionNS, "service")
		if s.Name != "" {
			svc.AddTextNS(InspectionNS, "name", s.Name)
		}
		if s.Abstract != "" {
			svc.AddTextNS(InspectionNS, "abstract", s.Abstract)
		}
		desc := xmlutil.NewNS(InspectionNS, "description").
			SetAttr("referencedNamespace", WSDLRefNS).
			SetAttr("location", s.WSDLLocation)
		svc.Add(desc)
		root.Add(svc)
	}
	for _, l := range d.Links {
		link := xmlutil.NewNS(InspectionNS, "link").
			SetAttr("referencedNamespace", InspectionNS).
			SetAttr("location", l.Location)
		if l.Abstract != "" {
			link.AddTextNS(InspectionNS, "abstract", l.Abstract)
		}
		root.Add(link)
	}
	return root
}

// AppendTo streams the inspection document (XML declaration included)
// into b without materialising an element tree, byte-identical to
// rendering Element().
func (d *Document) AppendTo(b *bytes.Buffer) {
	w := xmlutil.AcquireWriter(b)
	defer w.Release()
	w.Raw(`<?xml version="1.0"?>` + "\n")
	w.Start(InspectionNS, "inspection")
	for _, s := range d.Services {
		w.Start(InspectionNS, "service")
		if s.Name != "" {
			w.Start(InspectionNS, "name")
			w.Text(s.Name)
			w.End()
		}
		if s.Abstract != "" {
			w.Start(InspectionNS, "abstract")
			w.Text(s.Abstract)
			w.End()
		}
		w.Start(InspectionNS, "description")
		w.Attr("", "referencedNamespace", WSDLRefNS)
		w.Attr("", "location", s.WSDLLocation)
		w.End()
		w.End()
	}
	for _, l := range d.Links {
		w.Start(InspectionNS, "link")
		w.Attr("", "referencedNamespace", InspectionNS)
		w.Attr("", "location", l.Location)
		if l.Abstract != "" {
			w.Start(InspectionNS, "abstract")
			w.Text(l.Abstract)
			w.End()
		}
		w.End()
	}
	w.End()
}

// Render serialises the document with an XML declaration, streamed
// through the direct-to-buffer writer.
func (d *Document) Render() string {
	b := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(b)
	d.AppendTo(b)
	return b.String()
}

// Parse reads an inspection document.
func Parse(doc string) (*Document, error) {
	root, err := xmlutil.ParseString(doc)
	if err != nil {
		return nil, fmt.Errorf("wsil: %w", err)
	}
	if root.Name != "inspection" {
		return nil, fmt.Errorf("wsil: root element %q is not inspection", root.Name)
	}
	out := &Document{}
	for _, svc := range root.ChildrenNamed("service") {
		entry := ServiceEntry{
			Name:     svc.ChildText("name"),
			Abstract: svc.ChildText("abstract"),
		}
		if desc := svc.Child("description"); desc != nil {
			entry.WSDLLocation = desc.AttrDefault("location", "")
		}
		out.Services = append(out.Services, entry)
	}
	for _, link := range root.ChildrenNamed("link") {
		out.Links = append(out.Links, Link{
			Location: link.AttrDefault("location", ""),
			Abstract: link.ChildText("abstract"),
		})
	}
	return out, nil
}

// Publisher serves a provider's inspection document over HTTP and lets
// services register dynamically as they deploy.
type Publisher struct {
	mu  sync.RWMutex
	doc Document
}

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher {
	return &Publisher{}
}

// AddService registers a service entry.
func (p *Publisher) AddService(e ServiceEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doc.Services = append(p.doc.Services, e)
}

// AddLink registers a link to another provider's inspection document.
func (p *Publisher) AddLink(l Link) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doc.Links = append(p.doc.Links, l)
}

// Document returns a snapshot of the current inspection document.
func (p *Publisher) Document() *Document {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp := Document{
		Services: append([]ServiceEntry(nil), p.doc.Services...),
		Links:    append([]Link(nil), p.doc.Links...),
	}
	return &cp
}

// ServeHTTP serves the inspection document.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, p.Document().Render())
}

// Crawl fetches an inspection document from startURL and follows links
// transitively (up to maxDepth), returning every service entry found. The
// fetch function abstracts HTTP so tests can crawl in-process; pass
// FetchHTTP for real use.
func Crawl(startURL string, maxDepth int, fetch func(url string) (string, error)) ([]ServiceEntry, error) {
	seen := map[string]bool{}
	var out []ServiceEntry
	var walk func(url string, depth int) error
	walk = func(url string, depth int) error {
		if seen[url] || depth > maxDepth {
			return nil
		}
		seen[url] = true
		body, err := fetch(url)
		if err != nil {
			return fmt.Errorf("wsil: crawl %s: %w", url, err)
		}
		doc, err := Parse(body)
		if err != nil {
			return fmt.Errorf("wsil: crawl %s: %w", url, err)
		}
		out = append(out, doc.Services...)
		for _, l := range doc.Links {
			if err := walk(l.Location, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(startURL, 0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FetchHTTP is the production fetch function for Crawl.
func FetchHTTP(hc *http.Client) func(url string) (string, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	return func(url string) (string, error) {
		resp, err := hc.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		return string(body), err
	}
}
