package wsil

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestDocumentRoundTrip(t *testing.T) {
	d := &Document{
		Services: []ServiceEntry{
			{Name: "Batch Script Generator", Abstract: "Generates queue scripts", WSDLLocation: "http://x/bsg?wsdl"},
			{Name: "Globusrun", WSDLLocation: "http://x/globusrun?wsdl"},
		},
		Links: []Link{{Location: "http://y/inspection.wsil", Abstract: "SDSC services"}},
	}
	parsed, err := Parse(d.Render())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Services) != 2 {
		t.Fatalf("services = %d", len(parsed.Services))
	}
	if parsed.Services[0].Name != "Batch Script Generator" || parsed.Services[0].WSDLLocation != "http://x/bsg?wsdl" {
		t.Errorf("service[0] = %+v", parsed.Services[0])
	}
	if parsed.Services[0].Abstract != "Generates queue scripts" {
		t.Errorf("abstract = %q", parsed.Services[0].Abstract)
	}
	if len(parsed.Links) != 1 || parsed.Links[0].Location != "http://y/inspection.wsil" {
		t.Errorf("links = %+v", parsed.Links)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("<wrongroot/>"); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := Parse("garbage <"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPublisherHTTP(t *testing.T) {
	p := NewPublisher()
	p.AddService(ServiceEntry{Name: "SRB", WSDLLocation: "http://s/srb?wsdl"})
	srv := httptest.NewServer(p)
	defer srv.Close()
	body, err := FetchHTTP(srv.Client())(srv.URL + WellKnownPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 1 || doc.Services[0].Name != "SRB" {
		t.Errorf("doc = %+v", doc)
	}
}

func TestCrawlAggregation(t *testing.T) {
	// Three providers: A links to B and C; B links back to A (cycle).
	docs := map[string]*Document{
		"a": {
			Services: []ServiceEntry{{Name: "A1", WSDLLocation: "http://a/1?wsdl"}},
			Links:    []Link{{Location: "b"}, {Location: "c"}},
		},
		"b": {
			Services: []ServiceEntry{{Name: "B1", WSDLLocation: "http://b/1?wsdl"}},
			Links:    []Link{{Location: "a"}},
		},
		"c": {
			Services: []ServiceEntry{{Name: "C1", WSDLLocation: "http://c/1?wsdl"}, {Name: "C2", WSDLLocation: "http://c/2?wsdl"}},
		},
	}
	fetch := func(url string) (string, error) {
		d, ok := docs[url]
		if !ok {
			return "", fmt.Errorf("no doc %q", url)
		}
		return d.Render(), nil
	}
	entries, err := Crawl("a", 5, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4 (cycle must not duplicate)", len(entries))
	}
	if entries[0].Name != "A1" || entries[3].Name != "C2" {
		t.Errorf("entries = %+v", entries)
	}
}

func TestCrawlDepthLimit(t *testing.T) {
	docs := map[string]*Document{
		"root": {Links: []Link{{Location: "deep"}}},
		"deep": {Services: []ServiceEntry{{Name: "D"}}},
	}
	fetch := func(url string) (string, error) { return docs[url].Render(), nil }
	entries, err := Crawl("root", 0, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("depth 0 crawl returned %d entries", len(entries))
	}
}

func TestCrawlFetchError(t *testing.T) {
	fetch := func(url string) (string, error) { return "", fmt.Errorf("unreachable") }
	if _, err := Crawl("x", 2, fetch); err == nil {
		t.Error("fetch error swallowed")
	}
}

// TestAppendToMatchesElement pins the streamed WSIL writer to the
// element-tree renderer: byte-identical output on empty, service-only,
// link-only, and mixed documents.
func TestAppendToMatchesElement(t *testing.T) {
	docs := map[string]*Document{
		"empty": {},
		"services": {Services: []ServiceEntry{
			{Name: "Batch & Script", Abstract: "scripts <fast>", WSDLLocation: "http://x/bsg?wsdl"},
			{WSDLLocation: "http://x/anon?wsdl"},
		}},
		"links": {Links: []Link{{Location: "http://other/inspection.wsil", Abstract: "peer"}}},
		"mixed": {
			Services: []ServiceEntry{{Name: "S", WSDLLocation: "http://s?wsdl"}},
			Links:    []Link{{Location: "http://l"}},
		},
	}
	for name, d := range docs {
		var streamed bytes.Buffer
		d.AppendTo(&streamed)
		tree := `<?xml version="1.0"?>` + "\n" + d.Element().Render()
		if streamed.String() != tree {
			t.Errorf("%s: streamed WSIL differs from tree render\nstream: %s\ntree:   %s",
				name, streamed.String(), tree)
		}
		if _, err := Parse(streamed.String()); err != nil {
			t.Errorf("%s: streamed WSIL does not parse: %v", name, err)
		}
	}
}
