// Package gss simulates the Kerberos + GSS-API security substrate of
// Section 4: a KDC with principals and keytabs, ticket-granting and service
// tickets, GSS security-context establishment between an initiator and an
// acceptor, and the wrap/unwrap (encrypt+sign) and MIC (sign-only)
// operations the paper's SAML signing is built on ("we are also developing
// signing methods based on the GSS API wrap and unwrap methods").
//
// Cryptography is real (stdlib AES-CTR and HMAC-SHA256) but the protocol is
// a didactic reduction of RFC 4120/2743: enough structure to reproduce the
// trust relationships in Figure 2 — the keytab that "must be kept secure
// and usually is readable only by privileged users", the per-user session
// objects each holding "one half of the symmetric key set", and signature
// verification that only the Authentication Service can perform.
package gss

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// DefaultTicketLifetime bounds ticket validity.
const DefaultTicketLifetime = 8 * time.Hour

// Errors returned by the security layer.
var (
	ErrUnknownPrincipal = errors.New("gss: unknown principal")
	ErrBadPassword      = errors.New("gss: preauthentication failed")
	ErrExpired          = errors.New("gss: ticket expired")
	ErrIntegrity        = errors.New("gss: integrity check failed")
)

// deriveKey turns a password into a long-term key bound to the principal,
// mimicking Kerberos string-to-key.
func deriveKey(password, principal, realm string) []byte {
	sum := sha256.Sum256([]byte("krb-s2k|" + password + "|" + principal + "|" + realm))
	return sum[:]
}

// randomKey returns a fresh 256-bit session key.
func randomKey() []byte {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		panic("gss: entropy unavailable: " + err.Error())
	}
	return k
}

// seal encrypts and authenticates plaintext under key: AES-CTR with a
// random IV, then HMAC-SHA256 over IV||ciphertext (encrypt-then-MAC with
// derived subkeys).
func seal(key, plaintext []byte) []byte {
	encKey := sha256.Sum256(append([]byte("enc|"), key...))
	macKey := sha256.Sum256(append([]byte("mac|"), key...))
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		panic("gss: " + err.Error())
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := rand.Read(iv); err != nil {
		panic("gss: entropy unavailable: " + err.Error())
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(iv)
	mac.Write(ct)
	out := append([]byte{}, iv...)
	out = append(out, ct...)
	return mac.Sum(out)
}

// open verifies and decrypts a sealed blob.
func open(key, sealed []byte) ([]byte, error) {
	if len(sealed) < aes.BlockSize+sha256.Size {
		return nil, ErrIntegrity
	}
	encKey := sha256.Sum256(append([]byte("enc|"), key...))
	macKey := sha256.Sum256(append([]byte("mac|"), key...))
	body := sealed[:len(sealed)-sha256.Size]
	tag := sealed[len(sealed)-sha256.Size:]
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrIntegrity
	}
	iv := body[:aes.BlockSize]
	ct := body[aes.BlockSize:]
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// ticketBody is the plaintext of a ticket, sealed to the target service's
// long-term key.
type ticketBody struct {
	Client     string    `json:"client"`
	Service    string    `json:"service"`
	SessionKey []byte    `json:"sessionKey"`
	Expiry     time.Time `json:"expiry"`
}

// Ticket is an opaque sealed ticket.
type Ticket struct {
	// Service is the target principal (cleartext routing hint).
	Service string
	// Blob is the sealed ticket body.
	Blob []byte
}

// Keytab holds a service principal's long-term key — the file the paper
// says should live only on a single well-secured server.
type Keytab struct {
	// Principal is the service identity.
	Principal string
	// Realm is the Kerberos realm.
	Realm string
	// key is the long-term secret.
	key []byte
}

// Credentials is what a client holds after obtaining a ticket: the ticket
// plus its session key half.
type Credentials struct {
	// Client is the authenticated principal.
	Client string
	// Service is the ticket's target.
	Service string
	// SessionKey is the client's half of the shared key.
	SessionKey []byte
	// Ticket is the sealed ticket to present.
	Ticket Ticket
	// Expiry is the validity bound.
	Expiry time.Time
}

// KDC is the key distribution center for one realm.
type KDC struct {
	// Realm is the Kerberos realm, e.g. "GRID.IU.EDU".
	Realm string

	mu         sync.RWMutex
	principals map[string][]byte
	lifetime   time.Duration
	now        func() time.Time
}

// NewKDC creates a KDC for a realm.
func NewKDC(realm string) *KDC {
	return &KDC{
		Realm:      realm,
		principals: map[string][]byte{},
		lifetime:   DefaultTicketLifetime,
		now:        time.Now,
	}
}

// SetTimeSource overrides the clock (expiry tests, virtual time).
func (k *KDC) SetTimeSource(now func() time.Time) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.now = now
}

// SetTicketLifetime overrides the ticket validity window.
func (k *KDC) SetTicketLifetime(d time.Duration) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.lifetime = d
}

// AddPrincipal registers a user or service principal with a password.
func (k *KDC) AddPrincipal(name, password string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.principals[name] = deriveKey(password, name, k.Realm)
}

// Keytab exports a service principal's keytab.
func (k *KDC) Keytab(principal string) (Keytab, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.principals[principal]
	if !ok {
		return Keytab{}, fmt.Errorf("%w: %s", ErrUnknownPrincipal, principal)
	}
	return Keytab{Principal: principal, Realm: k.Realm, key: append([]byte(nil), key...)}, nil
}

// Login performs the AS exchange: password authentication yielding
// credentials for a target service principal. (The simulation folds the
// TGT+TGS exchanges into one step; the trust structure — client never sees
// the service's key, service never sees the password — is preserved.)
func (k *KDC) Login(client, password, service string) (*Credentials, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	clientKey, ok := k.principals[client]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, client)
	}
	if !hmac.Equal(clientKey, deriveKey(password, client, k.Realm)) {
		return nil, ErrBadPassword
	}
	serviceKey, ok := k.principals[service]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, service)
	}
	sessionKey := randomKey()
	expiry := k.now().Add(k.lifetime)
	body, err := json.Marshal(ticketBody{
		Client: client, Service: service, SessionKey: sessionKey, Expiry: expiry,
	})
	if err != nil {
		return nil, err
	}
	return &Credentials{
		Client:     client,
		Service:    service,
		SessionKey: sessionKey,
		Ticket:     Ticket{Service: service, Blob: seal(serviceKey, body)},
		Expiry:     expiry,
	}, nil
}

// --- GSS context establishment ---------------------------------------------

// contextToken is the initiator's first (and only) token: the ticket plus
// an authenticator sealed under the session key.
type contextToken struct {
	Service       string `json:"service"`
	TicketBlob    []byte `json:"ticket"`
	Authenticator []byte `json:"authenticator"`
}

type authenticatorBody struct {
	Client string    `json:"client"`
	Time   time.Time `json:"time"`
}

// Context is an established GSS security context: a shared session key and
// per-direction sequence counters. Each peer's Context is its "half" of the
// symmetric key set in the paper's description.
type Context struct {
	// Peer is the authenticated remote principal.
	Peer string
	// Local is this side's principal.
	Local string

	key    []byte
	mu     sync.Mutex
	sendSq uint64
	recvSq uint64
}

// InitContext builds the initiator's context token and local context from
// credentials.
func InitContext(creds *Credentials, now time.Time) (string, *Context, error) {
	if now.After(creds.Expiry) {
		return "", nil, ErrExpired
	}
	auth, err := json.Marshal(authenticatorBody{Client: creds.Client, Time: now})
	if err != nil {
		return "", nil, err
	}
	tok, err := json.Marshal(contextToken{
		Service:       creds.Service,
		TicketBlob:    creds.Ticket.Blob,
		Authenticator: seal(creds.SessionKey, auth),
	})
	if err != nil {
		return "", nil, err
	}
	ctx := &Context{Peer: creds.Service, Local: creds.Client, key: append([]byte(nil), creds.SessionKey...)}
	return base64.StdEncoding.EncodeToString(tok), ctx, nil
}

// AcceptContext validates an initiator token against the service keytab and
// returns the acceptor's context half.
func AcceptContext(kt Keytab, token string, now time.Time) (*Context, error) {
	raw, err := base64.StdEncoding.DecodeString(token)
	if err != nil {
		return nil, fmt.Errorf("gss: bad token encoding: %w", err)
	}
	var tok contextToken
	if err := json.Unmarshal(raw, &tok); err != nil {
		return nil, fmt.Errorf("gss: bad token: %w", err)
	}
	body, err := open(kt.key, tok.TicketBlob)
	if err != nil {
		return nil, err
	}
	var tb ticketBody
	if err := json.Unmarshal(body, &tb); err != nil {
		return nil, fmt.Errorf("gss: bad ticket body: %w", err)
	}
	if tb.Service != kt.Principal {
		return nil, fmt.Errorf("gss: ticket for %q presented to %q", tb.Service, kt.Principal)
	}
	if now.After(tb.Expiry) {
		return nil, ErrExpired
	}
	authRaw, err := open(tb.SessionKey, tok.Authenticator)
	if err != nil {
		return nil, err
	}
	var auth authenticatorBody
	if err := json.Unmarshal(authRaw, &auth); err != nil {
		return nil, fmt.Errorf("gss: bad authenticator: %w", err)
	}
	if auth.Client != tb.Client {
		return nil, fmt.Errorf("gss: authenticator client %q != ticket client %q", auth.Client, tb.Client)
	}
	return &Context{Peer: tb.Client, Local: kt.Principal, key: append([]byte(nil), tb.SessionKey...)}, nil
}

// Wrap seals a message (confidentiality + integrity + replay counter).
func (c *Context) Wrap(data []byte) string {
	c.mu.Lock()
	sq := c.sendSq
	c.sendSq++
	c.mu.Unlock()
	framed := append([]byte(fmt.Sprintf("%016x|", sq)), data...)
	return base64.StdEncoding.EncodeToString(seal(c.key, framed))
}

// Unwrap opens a wrapped message, enforcing in-order sequence numbers.
func (c *Context) Unwrap(token string) ([]byte, error) {
	raw, err := base64.StdEncoding.DecodeString(token)
	if err != nil {
		return nil, fmt.Errorf("gss: bad wrap encoding: %w", err)
	}
	framed, err := open(c.key, raw)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(string(framed), "|", 2)
	if len(parts) != 2 {
		return nil, ErrIntegrity
	}
	var sq uint64
	if _, err := fmt.Sscanf(parts[0], "%016x", &sq); err != nil {
		return nil, ErrIntegrity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sq < c.recvSq {
		return nil, fmt.Errorf("gss: replayed sequence %d (expect >= %d)", sq, c.recvSq)
	}
	c.recvSq = sq + 1
	return []byte(parts[1]), nil
}

// GetMIC computes a detached signature over data — the primitive the SAML
// layer uses to sign assertions.
func (c *Context) GetMIC(data []byte) string {
	mac := hmac.New(sha256.New, c.key)
	mac.Write([]byte("mic|"))
	mac.Write(data)
	return base64.StdEncoding.EncodeToString(mac.Sum(nil))
}

// VerifyMIC checks a detached signature.
func (c *Context) VerifyMIC(data []byte, mic string) error {
	want, err := base64.StdEncoding.DecodeString(mic)
	if err != nil {
		return fmt.Errorf("gss: bad MIC encoding: %w", err)
	}
	mac := hmac.New(sha256.New, c.key)
	mac.Write([]byte("mic|"))
	mac.Write(data)
	if !hmac.Equal(mac.Sum(nil), want) {
		return ErrIntegrity
	}
	return nil
}
