package gss

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testKDC(t *testing.T) *KDC {
	t.Helper()
	k := NewKDC("GRID.IU.EDU")
	k.AddPrincipal("cyoun", "hunter2")
	k.AddPrincipal("authsvc/grids.iu.edu", "service-secret")
	return k
}

func TestLoginSuccess(t *testing.T) {
	k := testKDC(t)
	creds, err := k.Login("cyoun", "hunter2", "authsvc/grids.iu.edu")
	if err != nil {
		t.Fatal(err)
	}
	if creds.Client != "cyoun" || creds.Service != "authsvc/grids.iu.edu" {
		t.Errorf("creds = %+v", creds)
	}
	if len(creds.SessionKey) != 32 {
		t.Errorf("session key length = %d", len(creds.SessionKey))
	}
	if creds.Expiry.Before(time.Now()) {
		t.Error("ticket already expired")
	}
}

func TestLoginFailures(t *testing.T) {
	k := testKDC(t)
	if _, err := k.Login("ghost", "x", "authsvc/grids.iu.edu"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown client err = %v", err)
	}
	if _, err := k.Login("cyoun", "wrong", "authsvc/grids.iu.edu"); !errors.Is(err, ErrBadPassword) {
		t.Errorf("bad password err = %v", err)
	}
	if _, err := k.Login("cyoun", "hunter2", "ghost/svc"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown service err = %v", err)
	}
}

func TestKeytab(t *testing.T) {
	k := testKDC(t)
	if _, err := k.Keytab("ghost"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("keytab err = %v", err)
	}
	kt, err := k.Keytab("authsvc/grids.iu.edu")
	if err != nil || kt.Realm != "GRID.IU.EDU" {
		t.Errorf("keytab = %+v, %v", kt, err)
	}
}

func establishPair(t *testing.T, k *KDC) (*Context, *Context) {
	t.Helper()
	creds, err := k.Login("cyoun", "hunter2", "authsvc/grids.iu.edu")
	if err != nil {
		t.Fatal(err)
	}
	token, initiator, err := InitContext(creds, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	kt, _ := k.Keytab("authsvc/grids.iu.edu")
	acceptor, err := AcceptContext(kt, token, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return initiator, acceptor
}

func TestContextEstablishment(t *testing.T) {
	k := testKDC(t)
	initiator, acceptor := establishPair(t, k)
	if acceptor.Peer != "cyoun" || initiator.Peer != "authsvc/grids.iu.edu" {
		t.Errorf("peers = %q / %q", acceptor.Peer, initiator.Peer)
	}
}

func TestWrapUnwrap(t *testing.T) {
	k := testKDC(t)
	initiator, acceptor := establishPair(t, k)
	msg := []byte("SOAP body bytes")
	wrapped := initiator.Wrap(msg)
	if strings.Contains(wrapped, "SOAP body") {
		t.Error("wrap leaked plaintext")
	}
	got, err := acceptor.Unwrap(wrapped)
	if err != nil || string(got) != string(msg) {
		t.Errorf("unwrap = %q, %v", got, err)
	}
	// Reverse direction has its own counters.
	back := acceptor.Wrap([]byte("reply"))
	got, err = initiator.Unwrap(back)
	if err != nil || string(got) != "reply" {
		t.Errorf("reverse unwrap = %q, %v", got, err)
	}
}

func TestUnwrapReplayRejected(t *testing.T) {
	k := testKDC(t)
	initiator, acceptor := establishPair(t, k)
	w1 := initiator.Wrap([]byte("one"))
	w2 := initiator.Wrap([]byte("two"))
	if _, err := acceptor.Unwrap(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := acceptor.Unwrap(w2); err != nil {
		t.Fatal(err)
	}
	if _, err := acceptor.Unwrap(w1); err == nil {
		t.Error("replay accepted")
	}
}

func TestUnwrapTamperRejected(t *testing.T) {
	k := testKDC(t)
	initiator, acceptor := establishPair(t, k)
	w := initiator.Wrap([]byte("payload"))
	tampered := "AAAA" + w[4:]
	if _, err := acceptor.Unwrap(tampered); err == nil {
		t.Error("tampered wrap accepted")
	}
	if _, err := acceptor.Unwrap("!!! not base64"); err == nil {
		t.Error("garbage wrap accepted")
	}
}

func TestMIC(t *testing.T) {
	k := testKDC(t)
	initiator, acceptor := establishPair(t, k)
	doc := []byte("<Assertion>...</Assertion>")
	mic := initiator.GetMIC(doc)
	if err := acceptor.VerifyMIC(doc, mic); err != nil {
		t.Errorf("valid MIC rejected: %v", err)
	}
	if err := acceptor.VerifyMIC([]byte("<Assertion>tampered</Assertion>"), mic); err == nil {
		t.Error("MIC over tampered doc accepted")
	}
	if err := acceptor.VerifyMIC(doc, "!!!"); err == nil {
		t.Error("garbage MIC accepted")
	}
	// A context from a different login has a different key.
	other, _ := establishPair(t, k)
	if err := other.VerifyMIC(doc, mic); err == nil {
		t.Error("cross-context MIC accepted")
	}
}

func TestTicketExpiry(t *testing.T) {
	k := testKDC(t)
	base := time.Date(2002, 6, 1, 9, 0, 0, 0, time.UTC)
	now := base
	k.SetTimeSource(func() time.Time { return now })
	k.SetTicketLifetime(time.Hour)
	creds, err := k.Login("cyoun", "hunter2", "authsvc/grids.iu.edu")
	if err != nil {
		t.Fatal(err)
	}
	kt, _ := k.Keytab("authsvc/grids.iu.edu")
	// Within validity.
	token, _, err := InitContext(creds, base.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcceptContext(kt, token, base.Add(45*time.Minute)); err != nil {
		t.Errorf("valid ticket rejected: %v", err)
	}
	// Initiator refuses expired creds.
	if _, _, err := InitContext(creds, base.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired init err = %v", err)
	}
	// Acceptor refuses expired ticket.
	token2, _, _ := InitContext(creds, base.Add(59*time.Minute))
	if _, err := AcceptContext(kt, token2, base.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired accept err = %v", err)
	}
}

func TestAcceptContextWrongService(t *testing.T) {
	k := testKDC(t)
	k.AddPrincipal("other/svc", "pw")
	creds, _ := k.Login("cyoun", "hunter2", "authsvc/grids.iu.edu")
	token, _, _ := InitContext(creds, time.Now())
	otherKT, _ := k.Keytab("other/svc")
	if _, err := AcceptContext(otherKT, token, time.Now()); err == nil {
		t.Error("ticket accepted by wrong service keytab")
	}
}

func TestAcceptContextGarbage(t *testing.T) {
	k := testKDC(t)
	kt, _ := k.Keytab("authsvc/grids.iu.edu")
	for _, tok := range []string{"", "!!!", "aGVsbG8="} {
		if _, err := AcceptContext(kt, tok, time.Now()); err == nil {
			t.Errorf("garbage token %q accepted", tok)
		}
	}
}

func TestSealOpenProperty(t *testing.T) {
	key := randomKey()
	for _, msg := range []string{"", "a", strings.Repeat("xyz", 1000)} {
		sealed := seal(key, []byte(msg))
		got, err := open(key, sealed)
		if err != nil || string(got) != msg {
			t.Errorf("seal/open(%d bytes) = %q, %v", len(msg), got, err)
		}
		// Wrong key fails.
		if _, err := open(randomKey(), sealed); err == nil {
			t.Error("open with wrong key succeeded")
		}
	}
	if _, err := open(key, []byte("short")); err == nil {
		t.Error("short blob accepted")
	}
}

func TestPasswordsNotStoredDirectly(t *testing.T) {
	// Keys are derived; two principals with equal passwords get distinct
	// keys (salted by principal name).
	k := NewKDC("R")
	k.AddPrincipal("a", "same")
	k.AddPrincipal("b", "same")
	k.AddPrincipal("svc", "s")
	ca, _ := k.Login("a", "same", "svc")
	cb, _ := k.Login("b", "same", "svc")
	if ca == nil || cb == nil {
		t.Fatal("logins failed")
	}
	ka := deriveKey("same", "a", "R")
	kb := deriveKey("same", "b", "R")
	if string(ka) == string(kb) {
		t.Error("derived keys not salted by principal")
	}
}
