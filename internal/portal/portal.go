// Package portal is the top of Figure 4: the User Interface server that
// fronts the whole service-based architecture. It realises the paper's
// closing image of the portal as "a distributed operating system: user
// interactions are through a finite list of basic commands that operate in
// a 'shell' or execution environment. These commands encapsulate 'system'
// level calls to actually interact with computing resources" — and "one
// may envision a scripting environment ... that provides the syntax for
// linking the various core services (redirecting output through pipes, for
// example)".
//
// Shell is that scripting environment: a command table where each command
// wraps a core portal Web Service (script generation, job submission, SRB
// data management, context storage), and a pipeline executor that feeds
// one command's output into the next. The user never touches the system
// level (gatekeepers, schedulers, brokers) directly — only the tool chest
// of core services, which in turn speak to the system-level interfaces.
package portal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/srbws"
)

// CommandFunc executes one shell command: args are the command arguments,
// stdin is the piped input (empty for the first stage).
type CommandFunc func(args []string, stdin string) (string, error)

// Command couples a name with its implementation and usage line.
type Command struct {
	// Name invokes the command.
	Name string
	// Usage is the help line.
	Usage string
	// Run executes the command.
	Run CommandFunc
}

// Shell is the portal shell: a registered command table plus the pipeline
// executor.
type Shell struct {
	commands map[string]Command
}

// NewShell returns a shell with only the built-in help command.
func NewShell() *Shell {
	sh := &Shell{commands: map[string]Command{}}
	sh.Register(Command{
		Name:  "help",
		Usage: "help — list available portal commands",
		Run: func(args []string, stdin string) (string, error) {
			var names []string
			for n := range sh.commands {
				names = append(names, n)
			}
			sort.Strings(names)
			var b strings.Builder
			for _, n := range names {
				b.WriteString(sh.commands[n].Usage + "\n")
			}
			return b.String(), nil
		},
	})
	sh.Register(Command{
		Name:  "echo",
		Usage: "echo [words...] — emit arguments",
		Run: func(args []string, stdin string) (string, error) {
			return strings.Join(args, " ") + "\n", nil
		},
	})
	return sh
}

// Register adds a command to the shell's tool chest.
func (sh *Shell) Register(c Command) {
	sh.commands[c.Name] = c
}

// Commands returns the sorted command names.
func (sh *Shell) Commands() []string {
	out := make([]string, 0, len(sh.commands))
	for n := range sh.commands {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// tokenize splits a command line into fields, honouring double quotes.
func tokenize(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			if inQuote {
				out = append(out, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				inQuote = true
			}
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("portal: unterminated quote in %q", line)
	}
	flush()
	return out, nil
}

// Run executes a pipeline: stages separated by '|', each stage's output
// becoming the next stage's stdin.
func (sh *Shell) Run(line string) (string, error) {
	stages := strings.Split(line, "|")
	stdin := ""
	for _, stage := range stages {
		fields, err := tokenize(strings.TrimSpace(stage))
		if err != nil {
			return "", err
		}
		if len(fields) == 0 {
			return "", fmt.Errorf("portal: empty pipeline stage in %q", line)
		}
		cmd, ok := sh.commands[fields[0]]
		if !ok {
			return "", fmt.Errorf("portal: unknown command %q (try help)", fields[0])
		}
		stdin, err = cmd.Run(fields[1:], stdin)
		if err != nil {
			return "", fmt.Errorf("portal: %s: %w", fields[0], err)
		}
	}
	return stdin, nil
}

// Services groups the core-service clients a portal shell binds to. Any
// nil client simply leaves its commands unregistered.
type Services struct {
	// Script generates batch scripts.
	Script *batchscript.Client
	// Globusrun executes grid jobs.
	Globusrun *jobsub.GlobusrunClient
	// SRB manages data.
	SRB *srbws.Client
	// Context stores session state (used directly; the decomposed store
	// client shape is a string-array path API).
	Context *contextmgr.Store
}

// NewStandardShell builds the paper's tool chest: script generation, job
// submission, data management, and context commands, each encapsulating a
// core portal Web Service.
func NewStandardShell(s Services) *Shell {
	sh := NewShell()
	if s.Script != nil {
		sh.Register(Command{
			Name:  "genscript",
			Usage: "genscript <scheduler> <queue> <nodes> <wallMinutes> <executable> [args...] — generate a batch script",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) < 5 {
					return "", fmt.Errorf("usage: genscript <scheduler> <queue> <nodes> <wallMinutes> <executable> [args...]")
				}
				nodes, err := strconv.Atoi(args[2])
				if err != nil {
					return "", fmt.Errorf("bad node count %q", args[2])
				}
				mins, err := strconv.Atoi(args[3])
				if err != nil {
					return "", fmt.Errorf("bad walltime %q", args[3])
				}
				return s.Script.GenerateScript(batchscript.Request{
					Scheduler:  grid.SchedulerKind(strings.ToUpper(args[0])),
					Queue:      args[1],
					Nodes:      nodes,
					WallTime:   time.Duration(mins) * time.Minute,
					JobName:    "shell",
					Executable: args[4],
					Arguments:  args[5:],
				})
			},
		})
		sh.Register(Command{
			Name:  "schedulers",
			Usage: "schedulers — list queuing systems the bound script service supports",
			Run: func(args []string, stdin string) (string, error) {
				names, err := s.Script.ListSchedulers()
				if err != nil {
					return "", err
				}
				return strings.Join(names, "\n") + "\n", nil
			},
		})
	}
	if s.Globusrun != nil {
		sh.Register(Command{
			Name:  "run",
			Usage: "run <host> <rsl> — run a grid job synchronously (RSL may come from stdin)",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) < 1 {
					return "", fmt.Errorf("usage: run <host> [rsl]")
				}
				rsl := strings.TrimSpace(strings.Join(args[1:], " "))
				if rsl == "" {
					rsl = strings.TrimSpace(stdin)
				}
				if rsl == "" {
					return "", fmt.Errorf("no RSL given")
				}
				return s.Globusrun.Run(args[0], rsl)
			},
		})
		sh.Register(Command{
			Name:  "submitscript",
			Usage: "submitscript <host> <scheduler> — parse a batch script from stdin and run it on the host",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 2 {
					return "", fmt.Errorf("usage: submitscript <host> <scheduler>")
				}
				spec, err := grid.ParseScript(grid.SchedulerKind(strings.ToUpper(args[1])), stdin)
				if err != nil {
					return "", err
				}
				return s.Globusrun.Run(args[0], grid.FormatRSL(spec))
			},
		})
	}
	if s.SRB != nil {
		sh.Register(Command{
			Name:  "srbls",
			Usage: "srbls <collection> — list an SRB collection",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 1 {
					return "", fmt.Errorf("usage: srbls <collection>")
				}
				entries, err := s.SRB.Ls(args[0])
				if err != nil {
					return "", err
				}
				var b strings.Builder
				for _, e := range entries {
					kind := "-"
					if e.IsCollection {
						kind = "C"
					}
					fmt.Fprintf(&b, "%s %8d %-10s %s\n", kind, e.Size, e.Owner, e.Name)
				}
				return b.String(), nil
			},
		})
		sh.Register(Command{
			Name:  "srbget",
			Usage: "srbget <path> — fetch a file from SRB",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 1 {
					return "", fmt.Errorf("usage: srbget <path>")
				}
				return s.SRB.Get(args[0])
			},
		})
		sh.Register(Command{
			Name:  "srbput",
			Usage: "srbput <path> — store stdin into SRB (pipes output into storage)",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 1 {
					return "", fmt.Errorf("usage: srbput <path>")
				}
				if err := s.SRB.Put(args[0], stdin, ""); err != nil {
					return "", err
				}
				return fmt.Sprintf("stored %d bytes at %s\n", len(stdin), args[0]), nil
			},
		})
	}
	if s.Context != nil {
		sh.Register(Command{
			Name:  "ctxset",
			Usage: "ctxset <user/problem/session> <name> — store stdin as a context property",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 2 {
					return "", fmt.Errorf("usage: ctxset <user/problem/session> <name>")
				}
				path := strings.Split(args[0], "/")
				if err := s.Context.SetProp(path, args[1], stdin); err != nil {
					return "", err
				}
				return fmt.Sprintf("set %s on %s\n", args[1], args[0]), nil
			},
		})
		sh.Register(Command{
			Name:  "ctxget",
			Usage: "ctxget <user/problem/session> <name> — read a context property",
			Run: func(args []string, stdin string) (string, error) {
				if len(args) != 2 {
					return "", fmt.Errorf("usage: ctxget <user/problem/session> <name>")
				}
				return s.Context.GetProp(strings.Split(args[0], "/"), args[1])
			},
		})
	}
	return sh
}
