package portal

import (
	"strings"
	"testing"

	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
)

// fullShell wires the complete Figure 4 stack in-process: simulated grid +
// SRB behind SOAP services, all bound into one shell.
func fullShell(t *testing.T) (*Shell, *contextmgr.Store) {
	t.Helper()
	g := grid.NewTestbed()
	g.Authorize("cyoun@IU.EDU")
	broker := srb.NewBroker("sdsc")
	broker.CreateUser("cyoun")
	store := contextmgr.NewStore()
	_ = store.CreatePlaceholder("cyoun", "demo", "s1")

	ssp := core.NewProvider("portal-ssp", "loopback://ssp")
	ssp.MustRegister(jobsub.NewGlobusrunService(g, "cyoun@IU.EDU"))
	ssp.MustRegister(srbws.NewService(broker, "cyoun"))
	ssp.MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	tr := &soap.LoopbackTransport{Handler: ssp.Dispatch}

	sh := NewStandardShell(Services{
		Script:    batchscript.NewClient(tr, "loopback://ssp/BatchScriptGenerator"),
		Globusrun: jobsub.NewGlobusrunClient(tr, "loopback://ssp/Globusrun"),
		SRB:       srbws.NewClient(tr, "loopback://ssp/SRBService"),
		Context:   store,
	})
	return sh, store
}

func TestTokenize(t *testing.T) {
	got, err := tokenize(`run host "&(executable=/bin/echo)(arguments=a b)" tail`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[2] != "&(executable=/bin/echo)(arguments=a b)" {
		t.Errorf("tokens = %q", got)
	}
	if _, err := tokenize(`broken "quote`); err == nil {
		t.Error("unterminated quote accepted")
	}
	got, _ = tokenize("  spaced   out  ")
	if len(got) != 2 {
		t.Errorf("tokens = %q", got)
	}
}

func TestHelpAndEcho(t *testing.T) {
	sh, _ := fullShell(t)
	out, err := sh.Run("help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"genscript", "run", "srbput", "ctxset", "echo"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q:\n%s", want, out)
		}
	}
	out, err = sh.Run("echo hello portal")
	if err != nil || out != "hello portal\n" {
		t.Errorf("echo = %q, %v", out, err)
	}
	if len(sh.Commands()) < 8 {
		t.Errorf("commands = %v", sh.Commands())
	}
}

func TestRunErrors(t *testing.T) {
	sh, _ := fullShell(t)
	if _, err := sh.Run("nosuchcommand"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("err = %v", err)
	}
	if _, err := sh.Run("echo a | | echo b"); err == nil {
		t.Error("empty stage accepted")
	}
	if _, err := sh.Run(`echo "unterminated`); err == nil {
		t.Error("bad quoting accepted")
	}
	if _, err := sh.Run("genscript PBS"); err == nil {
		t.Error("underspecified genscript accepted")
	}
	if _, err := sh.Run("run"); err == nil {
		t.Error("run without host accepted")
	}
	if _, err := sh.Run("run modi4.ncsa.uiuc.edu"); err == nil {
		t.Error("run without RSL accepted")
	}
	if _, err := sh.Run("genscript PBS batch NaN 10 /bin/date"); err == nil {
		t.Error("bad nodes accepted")
	}
}

// TestFigure4Pipeline is the architecture's signature flow: generate a
// script with the script service, submit it through the Globusrun service,
// and pipe the job output into SRB storage — three core services linked by
// pipes, none of them touched at the "system" level by the user.
func TestFigure4Pipeline(t *testing.T) {
	sh, _ := fullShell(t)
	out, err := sh.Run(
		`genscript PBS batch 2 10 /bin/echo computed on the grid` +
			` | submitscript modi4.ncsa.uiuc.edu PBS` +
			` | srbput /sdsc/home/cyoun/result.out`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored") {
		t.Errorf("pipeline out = %q", out)
	}
	// The job's stdout landed in SRB.
	got, err := sh.Run("srbget /sdsc/home/cyoun/result.out")
	if err != nil || got != "computed on the grid\n" {
		t.Errorf("stored data = %q, %v", got, err)
	}
	// And an ls shows it.
	ls, err := sh.Run("srbls /sdsc/home/cyoun")
	if err != nil || !strings.Contains(ls, "result.out") {
		t.Errorf("ls = %q, %v", ls, err)
	}
}

func TestContextCommandsInPipeline(t *testing.T) {
	sh, store := fullShell(t)
	// Store grid output as session state, then read it back.
	_, err := sh.Run(`run modi4.ncsa.uiuc.edu "&(executable=/bin/hostname)" | ctxset cyoun/demo/s1 lastOutput`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := store.GetProp([]string{"cyoun", "demo", "s1"}, "lastOutput")
	if err != nil || v != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("stored = %q, %v", v, err)
	}
	out, err := sh.Run("ctxget cyoun/demo/s1 lastOutput")
	if err != nil || out != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("ctxget = %q, %v", out, err)
	}
	if _, err := sh.Run("ctxget cyoun/demo/s1 missing"); err == nil {
		t.Error("missing property accepted")
	}
	if _, err := sh.Run("ctxset onlyuser"); err == nil {
		t.Error("underspecified ctxset accepted")
	}
}

func TestSchedulersCommand(t *testing.T) {
	sh, _ := fullShell(t)
	out, err := sh.Run("schedulers")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PBS") || !strings.Contains(out, "GRD") {
		t.Errorf("schedulers = %q", out)
	}
}

func TestServiceErrorsPropagate(t *testing.T) {
	sh, _ := fullShell(t)
	// The IU generator does not support LSF: the portal error surfaces
	// through the shell with the command name prefixed.
	_, err := sh.Run("genscript LSF normal 1 10 /bin/date")
	if err == nil || !strings.Contains(err.Error(), "genscript") {
		t.Errorf("err = %v", err)
	}
	_, err = sh.Run(`run ghost.example.edu "&(executable=/bin/date)"`)
	if err == nil {
		t.Error("unknown host accepted")
	}
	_, err = sh.Run("srbget /sdsc/home/cyoun/nothing")
	if err == nil {
		t.Error("missing SRB object accepted")
	}
}

func TestPartialShell(t *testing.T) {
	// A shell with no bound services only offers the builtins.
	sh := NewStandardShell(Services{})
	cmds := sh.Commands()
	if len(cmds) != 2 || cmds[0] != "echo" || cmds[1] != "help" {
		t.Errorf("commands = %v", cmds)
	}
}
