package xmlutil

// A streaming direct-to-buffer XML encoder. Writer is the hot-path
// counterpart of Element.RenderTo: instead of materialising an *Element
// tree and walking it, callers emit Start/Attr/Text/End events and the
// serialised form lands in the buffer immediately. The output is
// byte-identical to rendering the equivalent element tree — namespace
// prefixes are assigned in first-use order (ns0, ns1, ...), every
// declaration is emitted on the element where the namespace first appears
// and forgotten when that element closes, attribute order is preserved,
// and escaping matches EscapeText/EscapeAttr exactly. The equivalence is
// enforced differentially by FuzzWriterVsRender against the tree renderer
// as oracle, and at the wire level by the golden conformance suite in
// internal/rpc.
//
// Event discipline (mirroring the tree shape Render assumes): attributes
// must be written before any content of their element, and text before
// child elements. Violations are programming errors and panic.

import (
	"bytes"
	"strconv"
	"sync"
)

// Writer streams XML into a bytes.Buffer without building an element tree.
// Acquire one with NewWriter (caller-owned) or AcquireWriter (pooled; must
// be Released). A Writer must not be used concurrently.
type Writer struct {
	buf *bytes.Buffer

	// scope is the stack of in-scope namespace bindings in declaration
	// order. Documents on these wire dialects carry a handful of
	// namespaces, so a linear scan beats a map on the hot path; frames
	// record marks into the stack and End truncates to them, which is
	// exactly XML's lexical scoping.
	scope []writerBinding
	// pendingMark delimits the bindings declared on the currently open
	// start tag (scope[pendingMark:]); they are flushed as xmlns
	// attributes when the tag closes.
	pendingMark int
	// next numbers prefix assignment; monotone for the Writer's lifetime,
	// exactly like the tree renderer's state.
	next   int
	frames []writerFrame
}

// writerBinding is one in-scope namespace declaration.
type writerBinding struct {
	space  string
	prefix string
}

// writerFrame is one open element.
type writerFrame struct {
	name string
	// suffix is the second half of a two-part local name (StartSuffix);
	// empty for ordinary elements.
	suffix    string
	prefix    string
	scopeMark int
	// open is true while the start tag has not been closed with '>'.
	open bool
}

// prefixNames caches the first prefix names so hot-path encodes never
// build them; matches the "ns" + strconv.Itoa scheme of the tree renderer.
var prefixNames = [...]string{
	"ns0", "ns1", "ns2", "ns3", "ns4", "ns5", "ns6", "ns7",
	"ns8", "ns9", "ns10", "ns11", "ns12", "ns13", "ns14", "ns15",
}

func prefixName(n int) string {
	if n < len(prefixNames) {
		return prefixNames[n]
	}
	return "ns" + strconv.Itoa(n)
}

// NewWriter returns a Writer emitting into b.
func NewWriter(b *bytes.Buffer) *Writer {
	return &Writer{buf: b}
}

// writerPool recycles Writers (and their scope/frame stacks) across
// hot-path encodes.
var writerPool = sync.Pool{New: func() interface{} {
	return NewWriter(nil)
}}

// AcquireWriter returns a pooled Writer emitting into b. The caller must
// Release it (after which neither the Writer nor anything derived from it
// may be touched); the buffer itself stays with the caller.
func AcquireWriter(b *bytes.Buffer) *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset(b)
	return w
}

// Release returns a pooled Writer to the pool.
func (w *Writer) Release() {
	w.Reset(nil)
	writerPool.Put(w)
}

// Reset rebinds the Writer to a new buffer and clears all namespace and
// element state.
func (w *Writer) Reset(b *bytes.Buffer) {
	w.buf = b
	w.next = 0
	w.scope = w.scope[:0]
	w.pendingMark = 0
	w.frames = w.frames[:0]
}

// Raw writes s verbatim (XML declarations, pre-rendered fragments). Only
// valid outside an open start tag or before the first element.
func (w *Writer) Raw(s string) {
	w.closeOpenTag()
	w.buf.WriteString(s)
}

// need returns the prefix for a namespace URI, assigning and scheduling a
// declaration when the URI is not in scope. The empty URI has no prefix.
func (w *Writer) need(space string) string {
	if space == "" {
		return ""
	}
	for i := range w.scope {
		if w.scope[i].space == space {
			return w.scope[i].prefix
		}
	}
	p := prefixName(w.next)
	w.next++
	w.scope = append(w.scope, writerBinding{space: space, prefix: p})
	return p
}

// closeOpenTag finishes the currently open start tag, emitting any pending
// namespace declarations, exactly where the tree renderer emits them:
// after the attributes.
func (w *Writer) closeOpenTag() {
	n := len(w.frames)
	if n == 0 || !w.frames[n-1].open {
		return
	}
	w.flushPending()
	w.buf.WriteByte('>')
	w.frames[n-1].open = false
}

func (w *Writer) flushPending() {
	for _, b := range w.scope[w.pendingMark:] {
		w.buf.WriteString(` xmlns:`)
		w.buf.WriteString(b.prefix)
		w.buf.WriteString(`="`)
		escapeAttrTo(w.buf, b.space)
		w.buf.WriteByte('"')
	}
	w.pendingMark = len(w.scope)
}

// Start opens an element with the given namespace URI and local name.
func (w *Writer) Start(space, name string) {
	w.StartSuffix(space, name, "")
}

// StartSuffix opens an element whose local name is the concatenation
// name+suffix, without materialising the joined string — the hot-path
// form for derived wire names like <method>Response.
func (w *Writer) StartSuffix(space, name, suffix string) {
	w.closeOpenTag()
	w.pendingMark = len(w.scope)
	f := writerFrame{name: name, suffix: suffix, scopeMark: len(w.scope), open: true}
	f.prefix = w.need(space)
	w.buf.WriteByte('<')
	if f.prefix != "" {
		w.buf.WriteString(f.prefix)
		w.buf.WriteByte(':')
	}
	w.buf.WriteString(name)
	w.buf.WriteString(suffix)
	w.frames = append(w.frames, f)
}

// Attr writes one attribute on the currently open start tag. It panics if
// no start tag is open (attributes after content would be malformed XML).
func (w *Writer) Attr(space, name, value string) {
	n := len(w.frames)
	if n == 0 || !w.frames[n-1].open {
		panic("xmlutil: Writer.Attr outside an open start tag")
	}
	p := w.need(space)
	w.buf.WriteByte(' ')
	if p != "" {
		w.buf.WriteString(p)
		w.buf.WriteByte(':')
	}
	w.buf.WriteString(name)
	w.buf.WriteString(`="`)
	escapeAttrTo(w.buf, value)
	w.buf.WriteByte('"')
}

// Text writes escaped character data inside the current element. Writing
// the empty string is a no-op, matching the tree renderer (an element with
// neither text nor children self-closes).
func (w *Writer) Text(s string) {
	if s == "" {
		return
	}
	if len(w.frames) == 0 {
		panic("xmlutil: Writer.Text outside an element")
	}
	w.closeOpenTag()
	escapeTextTo(w.buf, s)
}

// End closes the current element: "/>" when it had no content, a full end
// tag otherwise. Namespaces declared on the element go out of scope.
func (w *Writer) End() {
	n := len(w.frames)
	if n == 0 {
		panic("xmlutil: Writer.End without Start")
	}
	f := &w.frames[n-1]
	if f.open {
		w.flushPending()
		w.buf.WriteString("/>")
	} else {
		w.buf.WriteString("</")
		if f.prefix != "" {
			w.buf.WriteString(f.prefix)
			w.buf.WriteByte(':')
		}
		w.buf.WriteString(f.name)
		w.buf.WriteString(f.suffix)
		w.buf.WriteByte('>')
	}
	w.scope = w.scope[:f.scopeMark]
	w.pendingMark = len(w.scope)
	w.frames = w.frames[:n-1]
}

// Element streams an existing tree through the Writer — the bridge for
// payloads that are still built as trees (literal XML parameters, SOAP
// header entries). Output is byte-identical to el.RenderTo in the same
// namespace scope.
func (w *Writer) Element(el *Element) {
	w.Start(el.Space, el.Name)
	for _, a := range el.Attrs {
		w.Attr(a.Space, a.Name, a.Value)
	}
	if el.Text != "" {
		w.Text(el.Text)
	}
	for _, c := range el.Children {
		w.Element(c)
	}
	w.End()
}

// Depth returns the number of currently open elements.
func (w *Writer) Depth() int { return len(w.frames) }

// escTextByte and escAttrByte mark the bytes whose presence forces the
// slow escaping path in element content and attribute values respectively.
var escTextByte, escAttrByte = func() (text, attr [256]bool) {
	text['&'], text['<'], text['>'] = true, true, true
	attr['&'], attr['<'], attr['"'] = true, true, true
	attr['\n'], attr['\t'], attr['\r'] = true, true, true
	return
}()

// escapeTextTo writes s escaped for element content. It mirrors EscapeText
// byte for byte: the clean fast path copies s unchanged, the slow path
// re-encodes rune by rune.
func escapeTextTo(b *bytes.Buffer, s string) {
	i := 0
	for i < len(s) && !escTextByte[s[i]] {
		i++
	}
	if i == len(s) {
		b.WriteString(s)
		return
	}
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
}

// escapeAttrTo writes s escaped for a double-quoted attribute value,
// mirroring EscapeAttr byte for byte.
func escapeAttrTo(b *bytes.Buffer, s string) {
	i := 0
	for i < len(s) && !escAttrByte[s[i]] {
		i++
	}
	if i == len(s) {
		b.WriteString(s)
		return
	}
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		case '\r':
			b.WriteString("&#13;")
		default:
			b.WriteRune(r)
		}
	}
}
