package xmlutil

import (
	"bytes"
	"encoding/xml"
	"errors"
	"io"
	"strings"
	"testing"
)

// referenceParse is the previous xmlutil.Parse implementation, verbatim: a
// tree builder over encoding/xml tokens. It is kept here as the oracle the
// hand-rolled scanner is differentially fuzzed against.
func referenceParse(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Space: t.Name.Space, Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				el.Attrs = append(el.Attrs, Attr{Space: a.Name.Space, Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("unbalanced end element")
			}
			top := stack[len(stack)-1]
			if len(top.Children) > 0 {
				top.Text = strings.TrimSpace(top.Text)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, errors.New("empty document")
	}
	if len(stack) != 0 {
		return nil, errors.New("unterminated document")
	}
	return root, nil
}

// toleratedDivergence reports whether data exercises a construct on which
// the scanner intentionally differs from encoding/xml:
//
//   - "<!"  — DTDs/directives are rejected by the scanner but silently
//     skipped by encoding/xml (comments and CDATA also start with "<!",
//     but on those the two agree, so tolerance only matters on actual
//     disagreement);
//   - "<?"  — the scanner skips every processing instruction, while
//     encoding/xml enforces declaration placement/encoding rules;
//   - non-ASCII bytes — exotic Unicode name characters use encoding/xml's
//     frozen Unicode tables, which the scanner approximates.
func toleratedDivergence(data []byte) bool {
	if bytes.Contains(data, []byte("<!")) || bytes.Contains(data, []byte("<?")) {
		return true
	}
	for _, b := range data {
		if b >= 0x80 {
			return true
		}
	}
	return false
}

// renderableNames reports whether every element and attribute name in the
// tree would survive Render -> Parse unchanged: ASCII names must start with
// a letter or '_' and contain no colon (Render would reinterpret one as a
// namespace prefix).
func renderableNames(el *Element) bool {
	ok := true
	el.Walk(func(e *Element) bool {
		names := make([]string, 0, 1+len(e.Attrs))
		names = append(names, e.Name)
		for _, a := range e.Attrs {
			names = append(names, a.Name)
		}
		for _, n := range names {
			if n == "" || strings.Contains(n, ":") {
				ok = false
				return false
			}
			if c := n[0]; c < 0x80 && !(c == '_' || 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z') {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// FuzzParseRoundTrip differentially fuzzes the hand-rolled scanner against
// the encoding/xml reference decoder: on input both accept, the trees must
// be identical; on input only one accepts, the divergence must be one of the
// documented subset differences. Inputs are capped below the size needed to
// reach the scanner's depth limit (which the reference does not have).
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<?xml version="1.0" encoding="UTF-8"?><a b="c">text</a>`,
		"\xef\xbb\xbf<?xml version=\"1.0\"?>\n<doc/>",
		`<ns0:Envelope xmlns:ns0="http://schemas.xmlsoap.org/soap/envelope/"><ns0:Body><ns1:op xmlns:ns1="urn:bench" ns0:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"><a xsi:type="xsd:string" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">hello</a><b xsi:type="xsd:int" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">42</b></ns1:op></ns0:Body></ns0:Envelope>`,
		`<host name="modi4"><ip>141.142.30.72</ip><queue system="PBS"><maxWallTime>3600</maxWallTime></queue></host>`,
		`<d><![CDATA[a < b && c]]></d>`,
		`<d><!-- comment -->x<!-- more --></d>`,
		"<d a=\"x&#xA;y\">A&#65;&amp;&lt;&gt;&quot;&apos;</d>",
		`<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/><q:c/></p:a>`,
		`<a xmlns="urn:default"><b/></a>`,
		"<d>line1\r\nline2\rline3</d>",
		`<doc väl="ü"><名前>日本語</名前></doc>`,
		`<a><b></a>`,
		`<a>&unknown;</a>`,
		`<a b="<"/>`,
		`<a>x]]>y</a>`,
		`<a/><b/>`,
		`not xml at all <`,
		``,
		`<a  b = "c"  d='e' />`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return // stay below the scanner's depth limit
		}
		got, gotErr := ParseBytes(data)
		want, wantErr := referenceParse(bytes.NewReader(data))

		switch {
		case gotErr == nil && wantErr == nil:
			if !got.Equal(want) {
				t.Fatalf("tree mismatch on %q:\nscanner:\n%s\nreference:\n%s",
					data, got.RenderIndent(), want.RenderIndent())
			}
		case gotErr == nil && wantErr != nil:
			if !toleratedDivergence(data) {
				t.Fatalf("scanner accepted %q but reference rejected it: %v", data, wantErr)
			}
		case gotErr != nil && wantErr == nil:
			if !toleratedDivergence(data) {
				t.Fatalf("reference accepted %q but scanner rejected it: %v", data, gotErr)
			}
		}

		// Whatever parsed must render back into something the scanner
		// accepts and reproduces: the round-trip invariant every wire
		// dialect in the repository depends on. Degenerate names (digit-led
		// locals freed by a prefix, colons inside local names) parse but
		// were never renderable — Render has always assumed sane names — so
		// they are excluded.
		if gotErr == nil && renderableNames(got) {
			again, err := ParseString(got.Render())
			if err != nil {
				t.Fatalf("re-parse of rendered tree failed on %q: %v", data, err)
			}
			if !got.Equal(again) {
				t.Fatalf("render round trip mismatch on %q", data)
			}
		}

		// The pooled path must agree with the retained path bit for bit.
		doc, perr := ParseBytesPooled(data)
		if (perr == nil) != (gotErr == nil) {
			t.Fatalf("pooled/retained disagreement on %q: %v vs %v", data, perr, gotErr)
		}
		if perr == nil {
			if !doc.Root.Equal(got) {
				t.Fatalf("pooled tree differs on %q", data)
			}
			doc.Release()
		}
	})
}
