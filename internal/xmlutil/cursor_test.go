package xmlutil

import (
	"strings"
	"testing"
)

// walkCursor drains a cursor into a flat token trace, comparing every
// element and text against the tree parse of the same document — the
// cursor's correctness contract is token-for-tree parity on everything it
// accepts.
func walkCursor(t *testing.T, doc string) []string {
	t.Helper()
	c := AcquireCursor([]byte(doc))
	defer c.Release()
	var trace []string
	for {
		tok, err := c.Next()
		if err != nil {
			t.Fatalf("Next: %v (trace so far %v)", err, trace)
		}
		switch tok {
		case TokStart:
			trace = append(trace, "<"+c.Space()+"|"+c.Name())
		case TokEnd:
			trace = append(trace, ">")
		case TokText:
			s, err := c.Text()
			if err != nil {
				t.Fatalf("Text: %v", err)
			}
			trace = append(trace, "t:"+s)
		case TokEOF:
			return trace
		}
	}
}

func TestCursorTokenWalk(t *testing.T) {
	doc := `<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
		`<a:root xmlns:a="urn:a"><a:kid attr="v">text &amp; more</a:kid><plain/></a:root>`
	got := strings.Join(walkCursor(t, doc), " ")
	// The newline after the XML declaration surfaces as a text token;
	// stream consumers discard character data outside the root.
	want := "t:\n <urn:a|root <urn:a|kid t:text & more > <|plain > >"
	if got != want {
		t.Errorf("trace = %q, want %q", got, want)
	}
}

// TestCursorTreeParity re-parses documents with the tree parser and checks
// the cursor reports the same element names, namespaces, attribute values,
// and leaf text.
func TestCursorTreeParity(t *testing.T) {
	docs := []string{
		`<r><v t="xsd:string">hi</v><v t="xsd:string">hi</v></r>`, // memo reuse across identical tags
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
			`<m:op xmlns:m="urn:svc"><p x:type="xsd:int" xmlns:x="urn:x">41</p></m:op></e:Body></e:Envelope>`,
		`<r a="1" b="two &quot;quoted&quot;" c="">mixed <i>in</i> tail</r>`,
		`<r xmlns="urn:default"><child attr="&#65;BC"/></r>`,
	}
	for _, doc := range docs {
		root, err := ParseString(doc)
		if err != nil {
			t.Fatalf("tree parse %q: %v", doc, err)
		}
		c := AcquireCursor([]byte(doc))
		var check func(el *Element)
		check = func(el *Element) {
			for {
				tok, err := c.Next()
				if err != nil {
					t.Fatalf("cursor error inside %q: %v", doc, err)
				}
				if tok == TokText {
					continue // trimming rules for mixed content live in the tree parser
				}
				if tok != TokStart {
					t.Fatalf("expected start of <%s> in %q, got token %d", el.Name, doc, tok)
				}
				break
			}
			if c.Space() != el.Space || c.Name() != el.Name {
				t.Errorf("%q: cursor at %s|%s, tree at %s|%s", doc, c.Space(), c.Name(), el.Space, el.Name)
			}
			for _, a := range el.Attrs {
				got, ok := c.Attr(a.Name)
				if !ok || got != a.Value {
					t.Errorf("%q: attr %s = %q/%v, tree has %q", doc, a.Name, got, ok, a.Value)
				}
			}
			for _, kid := range el.Children {
				check(kid)
			}
			for {
				tok, err := c.Next()
				if err != nil {
					t.Fatalf("cursor error closing %s in %q: %v", el.Name, doc, err)
				}
				if tok == TokText {
					continue
				}
				if tok != TokEnd {
					t.Fatalf("expected end of %s in %q, got token %d", el.Name, doc, tok)
				}
				break
			}
		}
		check(root)
		c.Release()
	}
}

func TestCursorRejectsMalformed(t *testing.T) {
	bad := []string{
		`<a>`,
		`<a></b>`,
		`<a attr=oops></a>`,
		`<a>]]></a>`,
		`<a>&bogus;</a>`, // entity validation is deferred to Text()
		`<a><b></a></b>`,
		"<a>\x01</a>",
	}
	for _, doc := range bad {
		c := AcquireCursor([]byte(doc))
		ok := true
		for ok {
			tok, err := c.Next()
			if err != nil {
				ok = false
			}
			if err == nil && tok == TokText {
				if _, terr := c.Text(); terr != nil {
					ok = false
				}
			}
			if ok && tok == TokEOF {
				t.Errorf("cursor accepted malformed %q", doc)
				break
			}
		}
		c.Release()
	}
}

// TestCursorUnsupportedConstructs verifies subset boundaries report an
// error (so stream callers fall back) rather than misparse.
func TestCursorUnsupportedConstructs(t *testing.T) {
	for _, doc := range []string{
		`<a><!-- comment --></a>`,
		`<a><![CDATA[x]]></a>`,
		`<!DOCTYPE a><a/>`,
	} {
		c := AcquireCursor([]byte(doc))
		var err error
		for err == nil {
			var tok Tok
			tok, err = c.Next()
			if err == nil && tok == TokEOF {
				t.Errorf("cursor accepted unsupported construct %q", doc)
				break
			}
		}
		c.Release()
	}
}

// TestSkipPrologue pins the memcmp fast path: a seed-matching document
// resumes mid-stream with bindings and open elements installed, and a
// non-matching one is untouched for the general scan.
func TestSkipPrologue(t *testing.T) {
	seed := PrologueSeed{
		Text:       []byte(`<a:r xmlns:a="urn:a"><a:b>`),
		Prefixes:   [][]byte{[]byte("a")},
		URIs:       []string{"urn:a"},
		OpenSpaces: []string{"urn:a", "urn:a"},
		OpenNames:  []string{"r", "b"},
	}
	c := AcquireCursor([]byte(`<a:r xmlns:a="urn:a"><a:b><a:leaf>x</a:leaf></a:b></a:r>`))
	if !c.SkipPrologue(&seed) {
		t.Fatal("SkipPrologue did not match its own prologue")
	}
	if c.Depth() != 2 {
		t.Fatalf("depth after skip = %d, want 2", c.Depth())
	}
	tok, err := c.Next()
	if err != nil || tok != TokStart || c.Space() != "urn:a" || c.Name() != "leaf" {
		t.Fatalf("after skip: tok=%d err=%v %s|%s", tok, err, c.Space(), c.Name())
	}
	// The installed bindings must satisfy end-tag matching all the way out.
	for {
		tok, err = c.Next()
		if err != nil {
			t.Fatalf("walking remainder: %v", err)
		}
		if tok == TokEOF {
			break
		}
	}
	c.Release()

	c = AcquireCursor([]byte(`<other/>`))
	if c.SkipPrologue(&seed) {
		t.Fatal("SkipPrologue matched a foreign document")
	}
	if tok, err := c.Next(); err != nil || tok != TokStart || c.Name() != "other" {
		t.Fatalf("general scan after failed skip: tok=%d err=%v name=%s", tok, err, c.Name())
	}
	c.Release()
}

// TestCursorAttrValueMemo drives the raw-span attribute fast path: the
// same attribute value repeated across elements must come back correct,
// and an entity-escaped value must never be confused with a clean memo
// entry that happens to share its raw bytes' unescaped form.
func TestCursorAttrValueMemo(t *testing.T) {
	doc := `<r><p t="urn:long-enough-to-memo">1</p><p t="urn:long-enough-to-memo">2</p>` +
		`<p t="urn:long-enough-to&#45;memo">3</p></r>`
	c := AcquireCursor([]byte(doc))
	defer c.Release()
	want := []string{"urn:long-enough-to-memo", "urn:long-enough-to-memo", "urn:long-enough-to-memo"}
	i := 0
	for {
		tok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok == TokEOF {
			break
		}
		if tok == TokStart && c.Name() == "p" {
			got, ok := c.Attr("t")
			if !ok || got != want[i] {
				t.Errorf("p[%d] attr = %q/%v, want %q", i, got, ok, want[i])
			}
			i++
		}
	}
	if i != len(want) {
		t.Errorf("saw %d p elements, want %d", i, len(want))
	}
}

// TestCursorPoolReuse exercises acquire/release cycles: state from one
// document must never bleed into the next, including the memo staying
// value-correct (it may hit, but hits are full-compare guarded).
func TestCursorPoolReuse(t *testing.T) {
	for i := 0; i < 8; i++ {
		doc := `<r a="v"><kid>text</kid></r>`
		if i%2 == 1 {
			doc = `<other b="w"/>`
		}
		c := AcquireCursor([]byte(doc))
		for {
			tok, err := c.Next()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if tok == TokStart && c.Name() == "r" {
				if v, ok := c.Attr("a"); !ok || v != "v" {
					t.Fatalf("cycle %d: attr a = %q/%v", i, v, ok)
				}
			}
			if tok == TokEOF {
				break
			}
		}
		c.Release()
	}
}
