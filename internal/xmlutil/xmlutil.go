// Package xmlutil provides a lightweight, order-preserving XML element tree
// used as the foundation for every hand-rolled XML dialect in this repository
// (SOAP envelopes, WSDL documents, UDDI structures, SAML assertions,
// application descriptors, and the container-hierarchy registry).
//
// The Go standard library's encoding/xml maps XML onto static structs, which
// is a poor fit for the open, recursive document shapes computational-portal
// services exchange. Element is a dynamic tree: every node carries a name,
// optional namespace, attributes, character data, and ordered children. The
// package supplies parsing (a hand-rolled pooled byte scanner — see
// scanner.go), deterministic canonical rendering (needed for signature
// computation in the SAML layer), and path-based navigation helpers.
package xmlutil

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// bufPool recycles render buffers across the XML-heavy hot paths (SOAP
// envelopes, WSDL documents). Buffers above maxPooledBuffer are dropped so
// one multi-megabyte file transfer does not pin memory forever.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

const maxPooledBuffer = 1 << 20

// GetBuffer returns an empty buffer from the shared render pool.
func GetBuffer() *bytes.Buffer {
	return bufPool.Get().(*bytes.Buffer)
}

// PutBuffer returns a buffer to the shared render pool. The caller must
// not touch the buffer (or any byte slice derived from it) afterwards.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// Attr is a single XML attribute. Space is the namespace URI (not the
// prefix); Name is the local name.
type Attr struct {
	Space string
	Name  string
	Value string
}

// Element is one node of the XML tree. Text holds the concatenated character
// data that appears directly inside the element (children and text are not
// interleaved; portal dialects never rely on mixed content). Children are
// kept in document order.
type Element struct {
	// Space is the namespace URI of the element, empty for unqualified names.
	Space string
	// Name is the local element name.
	Name string
	// Attrs lists the attributes in document order.
	Attrs []Attr
	// Text is the character data directly contained in the element.
	Text string
	// Children are the child elements in document order.
	Children []*Element
}

// New returns a new element with the given local name.
func New(name string) *Element {
	return &Element{Name: name}
}

// NewNS returns a new element with the given namespace URI and local name.
func NewNS(space, name string) *Element {
	return &Element{Space: space, Name: name}
}

// NewText returns a new element with the given local name and text content.
func NewText(name, text string) *Element {
	return &Element{Name: name, Text: text}
}

// SetAttr sets (or replaces) an unqualified attribute and returns the
// element for chaining.
func (e *Element) SetAttr(name, value string) *Element {
	return e.SetAttrNS("", name, value)
}

// SetAttrNS sets (or replaces) a namespaced attribute and returns the
// element for chaining.
func (e *Element) SetAttrNS(space, name, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name && e.Attrs[i].Space == space {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Space: space, Name: name, Value: value})
	return e
}

// Attr returns the value of the named unqualified attribute and whether it
// was present.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name && a.Space == "" {
			return a.Value, true
		}
	}
	// Fall back to a namespaced attribute with the same local name: portal
	// dialects frequently move attributes in and out of the default
	// namespace, and lookups by local name are what the callers mean.
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the value of the named attribute or def when absent.
func (e *Element) AttrDefault(name, def string) string {
	if v, ok := e.Attr(name); ok {
		return v
	}
	return def
}

// Add appends children and returns the element for chaining.
func (e *Element) Add(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// AddText appends a child with the given name and text and returns the
// parent for chaining.
func (e *Element) AddText(name, text string) *Element {
	return e.Add(NewText(name, text))
}

// AddTextNS appends a namespaced child with text content and returns the
// parent for chaining.
func (e *Element) AddTextNS(space, name, text string) *Element {
	c := NewNS(space, name)
	c.Text = text
	return e.Add(c)
}

// Child returns the first child with the given local name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildNS returns the first child with the given namespace URI and local
// name, or nil.
func (e *Element) ChildNS(space, name string) *Element {
	for _, c := range e.Children {
		if c.Name == name && c.Space == space {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first child with the given local name,
// or the empty string when the child is absent.
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenNamed returns all direct children with the given local name.
func (e *Element) ChildrenNamed(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Find walks a slash-separated path of local names from the element and
// returns the first match, or nil. An empty path returns the element itself.
// Example: env.Find("Body/submitJob/rsl").
func (e *Element) Find(path string) *Element {
	if path == "" {
		return e
	}
	cur := e
	for _, seg := range strings.Split(path, "/") {
		if cur == nil {
			return nil
		}
		cur = cur.Child(seg)
	}
	return cur
}

// FindAll returns every element reachable by the slash-separated path. At
// each level all children matching the segment are expanded.
func (e *Element) FindAll(path string) []*Element {
	frontier := []*Element{e}
	if path == "" {
		return frontier
	}
	for _, seg := range strings.Split(path, "/") {
		var next []*Element
		for _, el := range frontier {
			next = append(next, el.ChildrenNamed(seg)...)
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// FindText returns the text at a slash-separated path, or "".
func (e *Element) FindText(path string) string {
	if el := e.Find(path); el != nil {
		return el.Text
	}
	return ""
}

// Walk visits the element and every descendant in document order. Returning
// false from fn prunes the subtree below the current node.
func (e *Element) Walk(fn func(*Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	cp := &Element{Space: e.Space, Name: e.Name, Text: e.Text}
	cp.Attrs = append([]Attr(nil), e.Attrs...)
	for _, c := range e.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

// Equal reports deep equality of two trees, including attribute order.
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Space != o.Space || e.Name != o.Name || e.Text != o.Text {
		return false
	}
	if len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	for i := range e.Attrs {
		if e.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of elements in the subtree, including the
// receiver.
func (e *Element) CountNodes() int {
	n := 0
	e.Walk(func(*Element) bool { n++; return true })
	return n
}

// Int returns the element text parsed as an int.
func (e *Element) Int() (int, error) {
	return strconv.Atoi(strings.TrimSpace(e.Text))
}

// Bool returns the element text parsed as a bool.
func (e *Element) Bool() (bool, error) {
	return strconv.ParseBool(strings.TrimSpace(e.Text))
}

// Parse reads a complete XML document from r and returns the root element.
// Processing instructions, comments, and the XML declaration are skipped;
// a UTF-8 byte-order mark and leading whitespace are tolerated. Parsing is
// done by the pooled byte scanner in scanner.go.
func Parse(r io.Reader) (*Element, error) {
	b := GetBuffer()
	defer PutBuffer(b)
	if _, err := io.Copy(b, r); err != nil {
		return nil, fmt.Errorf("xmlutil: parse: %w", err)
	}
	return ParseBytes(b.Bytes())
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Element, error) {
	return ParseBytes([]byte(s))
}

// ParseBytes parses an XML document held in a byte slice. The returned tree
// does not alias data and is owned by the caller forever; request-scoped
// decoders should prefer ParseBytesPooled, which recycles the element
// storage.
func ParseBytes(data []byte) (*Element, error) {
	return parseRetained(data)
}

// renderState tracks prefix assignment during rendering.
type renderState struct {
	prefixes map[string]string // namespace URI -> prefix
	next     int
}

var statePool = sync.Pool{New: func() interface{} {
	return &renderState{prefixes: map[string]string{}}
}}

func getState() *renderState { return statePool.Get().(*renderState) }

func putState(rs *renderState) {
	for k := range rs.prefixes {
		delete(rs.prefixes, k)
	}
	rs.next = 0
	statePool.Put(rs)
}

func (rs *renderState) prefixFor(space string) string {
	if space == "" {
		return ""
	}
	if p, ok := rs.prefixes[space]; ok {
		return p
	}
	p := "ns" + strconv.Itoa(rs.next)
	rs.next++
	rs.prefixes[space] = p
	return p
}

// Render serialises the tree to XML. Namespace prefixes are assigned
// deterministically in first-use order (ns0, ns1, ...), and every namespace
// declaration is emitted on the element where the namespace first appears.
// Attribute order is preserved. The output carries no XML declaration.
func (e *Element) Render() string {
	b := GetBuffer()
	e.RenderTo(b)
	s := b.String()
	PutBuffer(b)
	return s
}

// RenderTo serialises the tree into b without intermediate allocations,
// for callers that manage their own (typically pooled) buffers.
func (e *Element) RenderTo(b *bytes.Buffer) {
	rs := getState()
	e.render(b, rs, false)
	putState(rs)
}

// RenderIndent serialises the tree with two-space indentation, for human
// inspection and documentation output.
func (e *Element) RenderIndent() string {
	var b bytes.Buffer
	rs := getState()
	e.renderIndent(&b, rs, 0)
	putState(rs)
	return b.String()
}

// Canonical returns a canonical form of the tree suitable as a signature
// input: attributes sorted by (space, name), text whitespace trimmed, and
// namespace prefixes assigned in a pre-order traversal. Two trees that are
// Equal up to attribute order produce identical canonical strings.
func (e *Element) Canonical() string {
	c := e.Clone()
	c.Walk(func(el *Element) bool {
		sort.Slice(el.Attrs, func(i, j int) bool {
			if el.Attrs[i].Space != el.Attrs[j].Space {
				return el.Attrs[i].Space < el.Attrs[j].Space
			}
			return el.Attrs[i].Name < el.Attrs[j].Name
		})
		el.Text = strings.TrimSpace(el.Text)
		return true
	})
	return c.Render()
}

func (e *Element) render(b *bytes.Buffer, rs *renderState, indent bool) {
	declared := e.openTag(b, rs)
	if len(e.Children) == 0 && e.Text == "" {
		b.WriteString("/>")
		e.forget(rs, declared)
		return
	}
	b.WriteByte('>')
	if e.Text != "" {
		b.WriteString(EscapeText(e.Text))
	}
	for _, c := range e.Children {
		c.render(b, rs, indent)
	}
	e.closeTag(b, rs)
	e.forget(rs, declared)
}

func (e *Element) renderIndent(b *bytes.Buffer, rs *renderState, depth int) {
	pad := strings.Repeat("  ", depth)
	b.WriteString(pad)
	declared := e.openTag(b, rs)
	switch {
	case len(e.Children) == 0 && e.Text == "":
		b.WriteString("/>\n")
	case len(e.Children) == 0:
		b.WriteByte('>')
		b.WriteString(EscapeText(e.Text))
		e.closeTag(b, rs)
		b.WriteByte('\n')
	default:
		b.WriteString(">\n")
		if e.Text != "" {
			b.WriteString(pad + "  " + EscapeText(e.Text) + "\n")
		}
		for _, c := range e.Children {
			c.renderIndent(b, rs, depth+1)
		}
		b.WriteString(pad)
		e.closeTag(b, rs)
		b.WriteByte('\n')
	}
	e.forget(rs, declared)
}

// openTag writes "<prefix:name attrs" (no closing '>') and returns the list
// of namespace URIs newly declared on this element so the caller can remove
// them from scope afterwards.
func (e *Element) openTag(b *bytes.Buffer, rs *renderState) []string {
	var declared []string
	need := func(space string) string {
		if space == "" {
			return ""
		}
		if _, ok := rs.prefixes[space]; !ok {
			declared = append(declared, space)
		}
		return rs.prefixFor(space)
	}
	p := need(e.Space)
	b.WriteByte('<')
	if p != "" {
		b.WriteString(p)
		b.WriteByte(':')
	}
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		ap := need(a.Space)
		b.WriteByte(' ')
		if ap != "" {
			b.WriteString(ap)
			b.WriteByte(':')
		}
		b.WriteString(a.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeAttr(a.Value))
		b.WriteByte('"')
	}
	for _, space := range declared {
		b.WriteString(` xmlns:`)
		b.WriteString(rs.prefixes[space])
		b.WriteString(`="`)
		b.WriteString(EscapeAttr(space))
		b.WriteByte('"')
	}
	return declared
}

func (e *Element) closeTag(b *bytes.Buffer, rs *renderState) {
	b.WriteString("</")
	if e.Space != "" {
		if p, ok := rs.prefixes[e.Space]; ok && p != "" {
			b.WriteString(p)
			b.WriteByte(':')
		}
	}
	b.WriteString(e.Name)
	b.WriteByte('>')
}

// forget removes namespaces declared on this element from scope once the
// element closes, mirroring XML lexical scoping.
func (e *Element) forget(rs *renderState, declared []string) {
	for _, space := range declared {
		delete(rs.prefixes, space)
	}
}

// EscapeText escapes character data for inclusion in element content.
// Strings with nothing to escape (the overwhelmingly common case on the
// SOAP hot path) are returned unchanged without allocating.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// EscapeAttr escapes a string for inclusion in a double-quoted attribute.
// Clean strings are returned unchanged without allocating.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<\"\n\t\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		case '\r':
			b.WriteString("&#13;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
