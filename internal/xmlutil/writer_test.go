package xmlutil

import (
	"bytes"
	"strings"
	"testing"
)

// writerTrees are representative shapes of every dialect the repository
// serialises: namespace reuse and shadowing, attribute namespaces,
// escaping, self-closing elements, deep nesting.
func writerTrees() map[string]*Element {
	soapish := NewNS("urn:env", "Envelope")
	body := NewNS("urn:env", "Body")
	op := NewNS("urn:svc", "opResponse")
	op.SetAttrNS("urn:env", "encodingStyle", "urn:enc")
	ret := New("result")
	ret.SetAttrNS("urn:xsi", "type", "xsd:string")
	ret.Text = "hello & <world>"
	ret2 := New("count")
	ret2.SetAttrNS("urn:xsi", "type", "xsd:int")
	ret2.Text = "42"
	op.Add(ret, ret2)
	body.Add(op)
	soapish.Add(body)

	deep := New("d0")
	cur := deep
	for i := 0; i < 40; i++ {
		next := NewNS("urn:deep", "d")
		cur.Add(next)
		cur = next
	}
	cur.Text = "bottom"

	attrs := New("a")
	attrs.SetAttr("plain", `quote " tab	end`)
	attrs.SetAttr("nl", "line1\nline2\rline3")
	attrs.SetAttrNS("urn:one", "x", "1")
	attrs.SetAttrNS("urn:two", "y", "2")
	attrs.AddText("empty", "")

	resue := New("root")
	resue.Add(NewNS("urn:a", "first"))
	resue.Add(NewNS("urn:a", "second")) // same URI re-declared: new prefix number
	inner := NewNS("urn:b", "outer")
	inner.Add(NewNS("urn:b", "inner")) // same URI still in scope: no re-declaration
	resue.Add(inner)

	return map[string]*Element{
		"soapish":     soapish,
		"deep":        deep,
		"attrs":       attrs,
		"nsreuse":     resue,
		"lone":        New("lone"),
		"textonly":    NewText("t", "a]]>b"),
		"unicodetext": NewText("u", "日本語 & ü"),
	}
}

func TestWriterElementMatchesRenderTo(t *testing.T) {
	for name, tree := range writerTrees() {
		var want, got bytes.Buffer
		tree.RenderTo(&want)
		w := NewWriter(&got)
		w.Element(tree)
		if w.Depth() != 0 {
			t.Fatalf("%s: writer left %d open elements", name, w.Depth())
		}
		if got.String() != want.String() {
			t.Errorf("%s: writer output differs\nwriter: %s\nrender: %s", name, got.String(), want.String())
		}
	}
}

func TestWriterStreamedEvents(t *testing.T) {
	var b bytes.Buffer
	w := AcquireWriter(&b)
	w.Raw("<?xml version=\"1.0\"?>\n")
	w.Start("urn:env", "Envelope")
	w.Start("urn:env", "Body")
	w.Start("urn:svc", "op")
	w.Attr("urn:env", "encodingStyle", "urn:enc")
	w.Start("", "arg")
	w.Attr("urn:xsi", "type", "xsd:string")
	w.Text("v<1>")
	w.End()
	w.Start("", "none")
	w.End()
	w.End()
	w.End()
	w.End()
	w.Release()
	want := `<?xml version="1.0"?>` + "\n" +
		`<ns0:Envelope xmlns:ns0="urn:env"><ns0:Body>` +
		`<ns1:op ns0:encodingStyle="urn:enc" xmlns:ns1="urn:svc">` +
		`<arg ns2:type="xsd:string" xmlns:ns2="urn:xsi">v&lt;1&gt;</arg>` +
		`<none/>` +
		`</ns1:op></ns0:Body></ns0:Envelope>`
	if b.String() != want {
		t.Fatalf("streamed output:\n got %s\nwant %s", b.String(), want)
	}
}

// TestWriterMatchesEnvelopeShape pins the prefix-numbering behaviour the
// wire format depends on: a namespace declared, forgotten, and needed
// again gets a fresh number (the counter never rewinds), exactly like the
// tree renderer.
func TestWriterPrefixNumbering(t *testing.T) {
	root := New("r")
	a := New("a")
	a.SetAttrNS("urn:x", "t", "1")
	b := New("b")
	b.SetAttrNS("urn:x", "t", "2")
	root.Add(a, b)
	want := root.Render()
	if !strings.Contains(want, "ns0:t") || !strings.Contains(want, "ns1:t") {
		t.Fatalf("oracle renderer changed numbering: %s", want)
	}
	var got bytes.Buffer
	w := NewWriter(&got)
	w.Element(root)
	if got.String() != want {
		t.Fatalf("prefix numbering diverged:\nwriter: %s\nrender: %s", got.String(), want)
	}
}

func TestWriterReuseAfterReset(t *testing.T) {
	var b1, b2 bytes.Buffer
	w := NewWriter(&b1)
	w.Start("urn:x", "a")
	w.End()
	w.Reset(&b2)
	w.Start("urn:y", "b")
	w.End()
	if b2.String() != `<ns0:b xmlns:ns0="urn:y"/>` {
		t.Fatalf("reset did not clear prefix state: %s", b2.String())
	}
}

func TestWriterPanicsOnMisuse(t *testing.T) {
	for name, fn := range map[string]func(w *Writer){
		"attr-after-content": func(w *Writer) {
			w.Start("", "a")
			w.Text("x")
			w.Attr("", "b", "c")
		},
		"end-without-start": func(w *Writer) { w.End() },
		"text-outside":      func(w *Writer) { w.Text("x") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			var b bytes.Buffer
			fn(NewWriter(&b))
		})
	}
}

func BenchmarkWriterVsRender(b *testing.B) {
	tree := writerTrees()["soapish"]
	b.Run("render-tree", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			tree.RenderTo(&buf)
		}
	})
	b.Run("writer-stream", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := AcquireWriter(&buf)
			w.Element(tree)
			w.Release()
		}
	})
}
