package xmlutil

import (
	"bytes"
	"testing"
)

// FuzzWriterVsRender differentially fuzzes the streaming Writer against
// the tree renderer as oracle: any document the scanner accepts is
// rebuilt as a tree, then serialised both ways — Element.RenderTo and
// Writer.Element — and the two byte streams must be identical. Because
// FuzzParseRoundTrip already proves Render output re-parses into an equal
// tree, byte equality here extends the same trust chain to the Writer:
// everything the wire dialects emit through it is pinned to the tree
// renderer's format. The seeds cover the constructs the SOAP/WSDL/WSIL
// hot paths exercise: namespace declaration, shadowing and re-declaration,
// CDATA, predefined and numeric entities, attribute escaping, and deep
// nesting.
func FuzzWriterVsRender(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<ns0:Envelope xmlns:ns0="http://schemas.xmlsoap.org/soap/envelope/"><ns0:Body><ns1:opResponse xmlns:ns1="urn:bench"><a ns2:type="xsd:string" xmlns:ns2="http://www.w3.org/2001/XMLSchema-instance">hello</a></ns1:opResponse></ns0:Body></ns0:Envelope>`,
		`<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/><q:c/></p:a>`,
		`<a xmlns="urn:default"><b/><c xmlns="urn:other"/></a>`,
		`<d><![CDATA[a < b && c]]></d>`,
		"<d a=\"x&#xA;y\">A&#65;&amp;&lt;&gt;&quot;&apos;</d>",
		`<d attr="quote &quot; tab &#9; nl &#10; cr &#13;">t</d>`,
		`<a><b><c><d><e><f><g><h>deep</h></g></f></e></d></c></b></a>`,
		`<doc väl="ü"><名前>日本語</名前></doc>`,
		`<m><x t="1"/><y t="2"/><x t="3"/></m>`,
		`<entries><entry name="a" size="12" owner="u"/><entry name="b" size="0" owner="u"/></entries>`,
		`<a>x]]&gt;y</a>`,
		`<empty></empty>`,
		"<d>line1\r\nline2\rline3</d>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		tree, err := ParseBytes(data)
		if err != nil {
			return // not a parseable document: nothing to serialise
		}

		var want bytes.Buffer
		tree.RenderTo(&want)

		var got bytes.Buffer
		w := AcquireWriter(&got)
		w.Element(tree)
		depth := w.Depth()
		w.Release()
		if depth != 0 {
			t.Fatalf("writer left %d open elements on %q", depth, data)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("writer diverges from tree renderer on %q:\nwriter: %s\nrender: %s",
				data, got.Bytes(), want.Bytes())
		}

		// The streamed form must also re-parse into the same tree whenever
		// the rendered form does (renderable names), closing the loop with
		// FuzzParseRoundTrip's round-trip invariant.
		if renderableNames(tree) {
			again, err := ParseBytes(got.Bytes())
			if err != nil {
				t.Fatalf("re-parse of writer output failed on %q: %v", data, err)
			}
			if !again.Equal(tree) {
				t.Fatalf("writer round trip mismatch on %q", data)
			}
		}
	})
}
