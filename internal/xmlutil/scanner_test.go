package xmlutil

import (
	"strings"
	"testing"
)

func TestCDATASection(t *testing.T) {
	root, err := ParseString(`<doc><![CDATA[a < b && c > d <notatag/>]]></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Text; got != "a < b && c > d <notatag/>" {
		t.Errorf("CDATA text = %q", got)
	}
	// CDATA does not expand entities.
	root, err = ParseString(`<doc><![CDATA[&amp;]]></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "&amp;" {
		t.Errorf("CDATA entity text = %q, want literal &amp;", root.Text)
	}
	// CDATA concatenates with surrounding character data.
	root, err = ParseString(`<doc>pre<![CDATA[mid]]>post</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "premidpost" {
		t.Errorf("mixed CDATA text = %q", root.Text)
	}
	if _, err := ParseString(`<doc><![CDATA[never closed</doc>`); err == nil {
		t.Error("unterminated CDATA accepted")
	}
}

func TestCommentsInsideElements(t *testing.T) {
	root, err := ParseString(`<doc><!-- a comment --><child><!-- inner -->x</child><!-- t --></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 1 || root.ChildText("child") != "x" {
		t.Errorf("tree after comments = %s", root.RenderIndent())
	}
	// Comment splitting a text run still concatenates the text.
	root, err = ParseString(`<doc>ab<!--c-->cd</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "abcd" {
		t.Errorf("text across comment = %q", root.Text)
	}
	if _, err := ParseString(`<doc><!-- a -- b --></doc>`); err == nil {
		t.Error(`"--" inside comment accepted`)
	}
	if _, err := ParseString(`<doc><!-- never closed</doc>`); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestNumericCharacterReferences(t *testing.T) {
	root, err := ParseString("<doc a=\"x&#xA;y\">A&#65;&#x42;&#x1F600;&#9;</doc>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "AAB\U0001F600\t" {
		t.Errorf("text = %q", root.Text)
	}
	if v, _ := root.Attr("a"); v != "x\ny" {
		t.Errorf("attr = %q", v)
	}
	for _, bad := range []string{
		"<d>&#0;</d>",       // NUL is not an XML char
		"<d>&#xD800;</d>",   // surrogate
		"<d>&#xFFFF;</d>",   // noncharacter
		"<d>&#x110000;</d>", // above Unicode
		"<d>&#;</d>",        // empty
		"<d>&#x;</d>",       // empty hex
		"<d>&#12a;</d>",     // junk digit
		"<d>&unknown;</d>",  // undefined entity
		"<d>&amp</d>",       // no semicolon
		"<d>a & b</d>",      // bare ampersand
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestAttributeValueEdgeCases(t *testing.T) {
	// Literal '>' inside an attribute value is legal XML.
	root, err := ParseString(`<doc expr="a > b" q='single "quoted"'/>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Attr("expr"); v != "a > b" {
		t.Errorf("expr = %q", v)
	}
	if v, _ := root.Attr("q"); v != `single "quoted"` {
		t.Errorf("q = %q", v)
	}
	// Entities and line endings normalise inside values.
	root, err = ParseString("<doc a=\"x&quot;y\" b=\"u\r\nv\r w\"/>")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Attr("a"); v != `x"y` {
		t.Errorf("a = %q", v)
	}
	if v, _ := root.Attr("b"); v != "u\nv\n w" {
		t.Errorf("b = %q", v)
	}
	for _, bad := range []string{
		`<d a="<"/>`,   // raw '<' in value
		`<d a=bare/>`,  // unquoted
		`<d a/>`,       // no value
		`<d a="open/>`, // unterminated
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestDeepNestingLimit(t *testing.T) {
	deep := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("<a>")
		}
		b.WriteString("x")
		for i := 0; i < n; i++ {
			b.WriteString("</a>")
		}
		return b.String()
	}
	root, err := ParseString(deep(maxDepth - 1))
	if err != nil {
		t.Fatalf("depth %d rejected: %v", maxDepth-1, err)
	}
	n := 0
	for el := root; el != nil; el = el.Child("a") {
		n++
	}
	if n != maxDepth-1 {
		t.Errorf("parsed depth = %d", n)
	}
	if _, err := ParseString(deep(maxDepth + 10)); err == nil {
		t.Errorf("depth %d accepted, want depth-limit error", maxDepth+10)
	}
}

func TestUTF8MultibyteContent(t *testing.T) {
	const doc = `<doc väl="ü"><名前>日本語テキスト</名前><emoji>🎉🚀</emoji></doc>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.ChildText("名前"); got != "日本語テキスト" {
		t.Errorf("multibyte text = %q", got)
	}
	if got := root.ChildText("emoji"); got != "🎉🚀" {
		t.Errorf("emoji text = %q", got)
	}
	if v, _ := root.Attr("väl"); v != "ü" {
		t.Errorf("multibyte attr = %q", v)
	}
	// Round trip.
	again, err := ParseString(root.Render())
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equal(again) {
		t.Error("multibyte round trip mismatch")
	}
	// Truncated and overlong sequences are rejected.
	for _, bad := range []string{"<d>\xe6\x97</d>", "<d>\xff</d>", "<d a=\"\xc0\xaf\"/>"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want invalid-UTF-8 error", bad)
		}
	}
}

func TestBOMAndLeadingWhitespace(t *testing.T) {
	for _, doc := range []string{
		"\xef\xbb\xbf<a>x</a>",
		"\xef\xbb\xbf<?xml version=\"1.0\"?><a>x</a>",
		"  \r\n\t<?xml version=\"1.0\"?>\n<a>x</a>",
		"\xef\xbb\xbf \n<?xml version=\"1.0\" encoding=\"UTF-8\"?><a>x</a>",
	} {
		root, err := ParseString(doc)
		if err != nil {
			t.Errorf("ParseString(%q): %v", doc, err)
			continue
		}
		if root.Name != "a" || root.Text != "x" {
			t.Errorf("ParseString(%q) = %s", doc, root.Render())
		}
	}
	// A BOM inside content is an ordinary character, not a BOM.
	root, err := ParseString("<a>\ufeffx</a>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "\ufeffx" {
		t.Errorf("interior U+FEFF text = %q", root.Text)
	}
}

func TestTagSyntaxErrors(t *testing.T) {
	for _, bad := range []string{
		"<a></b>",                // mismatched end tag
		"<a:b:c xmlns:a=\"u\"/>", // two colons in a name
		"< a/>",                  // space before name
		"<1a/>",                  // digit-leading name
		"<a/ >",                  // junk between / and >
		"<a></a junk>",           // junk in end tag
		"<a>x]]>y</a>",           // CDATA terminator in text
		"<!DOCTYPE a><a/>",       // DTDs are outside the subset
		"<a>\x0b</a>",            // vertical tab is not an XML char
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
	// Processing instructions are skipped, not errors.
	root, err := ParseString(`<a><?php echo "x"; ?>text</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "text" {
		t.Errorf("text after PI = %q", root.Text)
	}
}

func TestNamespaceResolutionParity(t *testing.T) {
	// Late declaration on the same tag, shadowing, and unbound prefixes
	// behave exactly as encoding/xml resolved them.
	root, err := ParseString(`<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/><p:c/><q:d/><e xml:lang="en"/></p:a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Space != "urn:1" {
		t.Errorf("root space = %q", root.Space)
	}
	if got := root.Children[0].Space; got != "urn:2" {
		t.Errorf("shadowed child space = %q", got)
	}
	if got := root.Children[1].Space; got != "urn:1" {
		t.Errorf("unshadowed sibling space = %q", got)
	}
	if got := root.Children[2].Space; got != "q" {
		t.Errorf("unbound prefix space = %q (must fall back to the prefix)", got)
	}
	if a := root.Children[3].Attrs[0]; a.Space != xmlNamespace || a.Name != "lang" {
		t.Errorf("xml:lang attr = %+v", a)
	}
	// Same-URI prefixes may close each other.
	if _, err := ParseString(`<p:a xmlns:p="u" xmlns:q="u"></q:a>`); err != nil {
		t.Errorf("same-URI close rejected: %v", err)
	}
	// Degenerate colon names are whole local names, not namespace splits.
	root, err = ParseString(`<b: :c="v"></b:>`)
	if err != nil {
		t.Fatalf("degenerate colon name rejected: %v", err)
	}
	if root.Name != "b:" || root.Space != "" {
		t.Errorf("degenerate name = %q space %q", root.Name, root.Space)
	}
	if v, _ := root.Attr(":c"); v != "v" {
		t.Errorf("degenerate attr lookup = %q", v)
	}
}

func TestPooledParseReuse(t *testing.T) {
	// Stress the arena across documents of different shapes and prove no
	// state bleeds between parses.
	docs := []string{
		`<a x="1"><b>one</b><b>two</b></a>`,
		`<root xmlns="urn:d"><only/></root>`,
		`<m><n o="p"/>text<q/></m>`,
	}
	for round := 0; round < 100; round++ {
		src := docs[round%len(docs)]
		want, err := ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := ParseBytesPooled([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		if !doc.Root.Equal(want) {
			t.Fatalf("round %d: pooled tree differs:\n%s\nvs\n%s",
				round, doc.Root.RenderIndent(), want.RenderIndent())
		}
		doc.Release()
	}
}

func TestPooledParseErrorRecovery(t *testing.T) {
	// A failed pooled parse must recycle cleanly and not poison later ones.
	for i := 0; i < 20; i++ {
		if _, err := ParseBytesPooled([]byte("<a><unclosed>")); err == nil {
			t.Fatal("malformed document accepted")
		}
		doc, err := ParseBytesPooled([]byte("<ok>fine</ok>"))
		if err != nil {
			t.Fatal(err)
		}
		if doc.Root.Text != "fine" {
			t.Fatalf("text = %q", doc.Root.Text)
		}
		doc.Release()
	}
}

func TestMixedTextTrimming(t *testing.T) {
	// Elements with children trim surrounding whitespace; leaves keep it.
	root, err := ParseString("<a>\n  <b>  padded  </b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "" {
		t.Errorf("parent text = %q, want empty", root.Text)
	}
	if got := root.ChildText("b"); got != "  padded  " {
		t.Errorf("leaf text = %q, want verbatim padding", got)
	}
	root, err = ParseString("<a> x <b/> y </a>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "x  y" {
		t.Errorf("mixed text = %q", root.Text)
	}
}
