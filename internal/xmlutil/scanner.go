// scanner.go implements the hand-rolled XML token scanner behind Parse,
// ParseBytes, ParseString, and the pooled-arena decode path (ParseBytesPooled).
//
// The scanner lexes directly over []byte for the XML subset the portal wire
// formats actually use: elements, attributes, namespaces, character data,
// CDATA sections, comments, and entity references (the five predefined names
// plus decimal/hex character references). Processing instructions — including
// the XML declaration — are skipped wherever they appear; DTDs and other
// <!...> directives are rejected. A UTF-8 byte-order mark and leading
// whitespace before the document are tolerated.
//
// Performance model:
//
//   - Names and namespace URIs are resolved by slicing the input without
//     copying, then materialised through a bounded global intern table, so
//     after warm-up the recurring vocabulary of a dialect (SOAP envelope
//     names, xsi:type values, namespace URIs) costs zero allocations.
//   - Element nodes are carved out of slabs. Plain ParseBytes hands the
//     slabs to the caller inside the returned tree (forever-owned); the
//     pooled path (ParseBytesPooled) recycles slabs, attribute storage, and
//     parser state through a sync.Pool once the caller Releases the Doc.
//   - Character data and attribute values take a fast path that allocates
//     only the final string: unescaping runs only when an entity reference
//     or a carriage return (which XML requires to be normalised) is present.
//
// Compatibility: the scanner matches the strictness of the previous
// encoding/xml-token implementation for every construct it supports — XML
// character validity, "]]>" rejected in character data, "--" rejected inside
// comments, entity syntax, "\r\n"/"\r" to "\n" normalisation in text, CDATA
// and attribute values, at most one colon per name, namespace scoping with
// unbound prefixes resolving to the prefix itself — so the element trees it
// produces are identical. FuzzParseRoundTrip enforces the equivalence
// differentially against an encoding/xml reference decoder.
package xmlutil

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

const (
	// xmlNamespace is the URI the reserved "xml" prefix resolves to.
	xmlNamespace = "http://www.w3.org/XML/1998/namespace"
	// maxDepth bounds element nesting so a hostile document cannot wind the
	// stack (and the render recursion of whoever consumes the tree) out of
	// control.
	maxDepth = 1000
	// maxEntityLen bounds the distance scanned for the ';' of an entity.
	maxEntityLen = 64
)

// Pool trim thresholds: a pooled parser that handled one huge document must
// not pin that memory forever.
const (
	maxPooledElems   = 8192
	maxPooledAttrs   = 2048
	maxPooledScratch = 64 << 10
)

// --- name/value interning --------------------------------------------------

// The intern table maps the recurring vocabulary of the wire dialects
// (element and attribute names, namespace URIs, short attribute values such
// as "xsd:string") to shared string instances. It is append-only and capped:
// once full, lookups still hit for the warm vocabulary and misses simply
// allocate per parse, so an attacker streaming unique names cannot grow it
// without bound.
//
// The table is read-mostly to an extreme degree — after the first few
// requests every parse is all hits — so it is published as a copy-on-write
// snapshot behind an atomic pointer: steady-state lookups take no lock at
// all (and every parse on every core proceeds without touching a shared
// cache line). A miss copies the current snapshot, adds the entry, and
// publishes the copy under a mutex that serialises writers only. Total
// copying work is bounded by the entry cap and paid once during warm-up.
const (
	maxInternLen     = 64
	maxInternEntries = 8192
)

var (
	internTab atomic.Pointer[map[string]string]
	internWMu sync.Mutex
)

func init() {
	tab := make(map[string]string)
	internTab.Store(&tab)
}

func intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternLen {
		return string(b)
	}
	tab := *internTab.Load()
	if s, ok := tab[string(b)]; ok { // no alloc: compiler-recognised map lookup
		return s
	}
	s := string(b)
	internWMu.Lock()
	cur := *internTab.Load()
	if dup, ok := cur[s]; ok {
		// Another writer published it while we waited.
		internWMu.Unlock()
		return dup
	}
	if len(cur) < maxInternEntries {
		next := make(map[string]string, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		next[s] = s
		internTab.Store(&next)
	}
	internWMu.Unlock()
	return s
}

// --- parser state ----------------------------------------------------------

// nsBinding is one in-scope namespace declaration. prefix slices the input
// (valid only during the parse); nil prefix is the default namespace.
type nsBinding struct {
	prefix []byte
	uri    string
}

// frame is one open element on the parse stack.
type frame struct {
	el *Element
	// rawName is the tag name exactly as written, for error messages.
	rawName []byte
	// raw holds a pending clean text span (no entity, no '\r') aliasing the
	// input; it is materialised lazily so whitespace-only formatting between
	// child elements never allocates.
	raw []byte
	// mat records that Text has been materialised through the slow path.
	mat bool
	// nsMark is the namespace stack depth when the element opened.
	nsMark int
}

// pendingAttr is one lexed attribute awaiting namespace resolution: decls on
// the same tag may appear after the attributes that use them, so attributes
// materialise only once the whole tag has been scanned.
type pendingAttr struct {
	prefix []byte
	local  []byte
	value  string
}

// parser is the pooled scanner state. Retained-mode parsers (Parse,
// ParseBytes, ParseString) detach their element slabs into the returned tree
// and recycle only the lexer state; arena-mode parsers (ParseBytesPooled)
// keep the slabs and recycle everything when the Doc is released.
type parser struct {
	data []byte
	pos  int
	root *Element

	stack []frame
	ns    []nsBinding
	pend  []pendingAttr

	// Element arena: nodes are handed out of slabs in order.
	slabs    [][]Element
	slabI    int
	elemI    int
	nextSlab int

	// attrs is the carving slab for Attr slices: each element's attributes
	// are contiguous, so one backing array serves the whole document.
	attrs []Attr

	// scratch backs entity unescaping and line-ending normalisation.
	scratch []byte
}

var (
	retainedPool = sync.Pool{New: func() interface{} { return new(parser) }}
	arenaPool    = sync.Pool{New: func() interface{} { return new(parser) }}
)

var bomPrefix = []byte{0xEF, 0xBB, 0xBF}

func (p *parser) reset(data []byte) {
	p.data = data
	p.pos = 0
	p.root = nil
	p.stack = p.stack[:0]
	p.ns = p.ns[:0]
	p.pend = p.pend[:0]
	p.slabI = 0
	p.elemI = 0
	p.attrs = p.attrs[:0]
	if len(p.slabs) == 0 {
		// Seed the slab size from the density of '<' so typical documents
		// fit in one allocation.
		est := bytes.Count(data, []byte{'<'})/2 + 2
		if est > 2048 {
			est = 2048
		}
		if est < 8 {
			est = 8
		}
		p.nextSlab = est
	}
}

// newElement hands out the next node from the arena, growing it on demand.
func (p *parser) newElement() *Element {
	for {
		for p.slabI < len(p.slabs) {
			slab := p.slabs[p.slabI]
			if p.elemI < len(slab) {
				el := &slab[p.elemI]
				p.elemI++
				el.Space, el.Name, el.Text = "", "", ""
				el.Attrs = nil
				el.Children = el.Children[:0]
				return el
			}
			p.slabI++
			p.elemI = 0
		}
		size := p.nextSlab
		if size < 16 {
			size = 16
		}
		p.slabs = append(p.slabs, make([]Element, size))
		p.nextSlab = size * 2
		if p.nextSlab > 4096 {
			p.nextSlab = 4096
		}
	}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("xmlutil: parse at byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// --- character classes -----------------------------------------------------

// validXMLChar reports whether r is in the XML 1.0 Char production, the same
// range encoding/xml enforces.
func validXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(0x20 <= r && r <= 0xD7FF) ||
		(0xE000 <= r && r <= 0xFFFD) ||
		(0x10000 <= r && r <= 0x10FFFF)
}

func isNameStartByte(c byte) bool {
	return 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':'
}

func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || '0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-'
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) && isSpaceByte(p.data[p.pos]) {
		p.pos++
	}
}

// --- main loop -------------------------------------------------------------

func (p *parser) run() (*Element, error) {
	if bytes.HasPrefix(p.data, bomPrefix) {
		p.pos = 3
	}
	for p.pos < len(p.data) {
		if p.data[p.pos] != '<' {
			if err := p.text(); err != nil {
				return nil, err
			}
			continue
		}
		p.pos++
		if p.pos >= len(p.data) {
			return nil, p.errf("unexpected EOF")
		}
		switch p.data[p.pos] {
		case '?':
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case '!':
			if err := p.bang(); err != nil {
				return nil, err
			}
		case '/':
			p.pos++
			if err := p.endTag(); err != nil {
				return nil, err
			}
		default:
			if err := p.startTag(); err != nil {
				return nil, err
			}
		}
	}
	if len(p.stack) != 0 {
		return nil, errors.New("xmlutil: parse: unterminated document")
	}
	if p.root == nil {
		return nil, errors.New("xmlutil: parse: empty document")
	}
	return p.root, nil
}

// --- character data --------------------------------------------------------

// text scans one run of character data up to the next '<' (or EOF),
// validating characters as it goes. The span is recorded zero-copy when it
// needs no unescaping.
func (p *parser) text() error {
	data := p.data
	start := p.pos
	i := p.pos
	clean := true
	for i < len(data) {
		c := data[i]
		if c == '<' {
			break
		}
		switch {
		case c == '&' || c == '\r':
			clean = false
			i++
		case c == ']':
			if i+2 < len(data) && data[i+1] == ']' && data[i+2] == '>' {
				p.pos = i
				return p.errf("unescaped ]]> not in CDATA section")
			}
			i++
		case c < 0x20:
			if c != '\t' && c != '\n' {
				p.pos = i
				return p.errf("illegal character code %U", rune(c))
			}
			i++
		case c < 0x80:
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				p.pos = i
				return p.errf("invalid UTF-8")
			}
			if !validXMLChar(r) {
				p.pos = i
				return p.errf("illegal character code %U", r)
			}
			i += size
		}
	}
	span := data[start:i]
	p.pos = i
	return p.addText(span, clean, true)
}

// addText accumulates one text span onto the open element. Clean spans stay
// as zero-copy slices until the element closes; anything else falls back to
// string concatenation exactly as the old token loop did, because mixed
// content is vanishingly rare on the wire.
func (p *parser) addText(span []byte, clean, entities bool) error {
	if len(p.stack) == 0 {
		// Character data outside the root is discarded (the old decoder
		// ignored it too) but must still be validated so malformed entities
		// are rejected wherever they appear.
		if !clean {
			_, err := p.unescape(span, entities)
			return err
		}
		return nil
	}
	f := &p.stack[len(p.stack)-1]
	if clean && !f.mat && f.raw == nil {
		f.raw = span
		return nil
	}
	if f.raw != nil {
		f.el.Text = string(f.raw)
		f.raw = nil
	}
	s := ""
	if clean {
		s = string(span)
	} else {
		us, err := p.unescape(span, entities)
		if err != nil {
			return err
		}
		s = us
	}
	f.el.Text += s
	f.mat = true
	return nil
}

// unescape expands entity references (when entities is true) and normalises
// "\r\n" and "\r" to "\n", returning a freshly copied string.
func (p *parser) unescape(span []byte, entities bool) (string, error) {
	buf := p.scratch[:0]
	i := 0
	for i < len(span) {
		c := span[i]
		switch {
		case c == '\r':
			buf = append(buf, '\n')
			i++
			if i < len(span) && span[i] == '\n' {
				i++
			}
		case c == '&' && entities:
			var n int
			var err error
			buf, n, err = p.entity(buf, span[i:])
			if err != nil {
				return "", err
			}
			i += n
		default:
			buf = append(buf, c)
			i++
		}
	}
	p.scratch = buf
	return string(buf), nil
}

// entity decodes one entity reference at the start of b, appending the
// expansion to buf. It accepts the five predefined names plus decimal and
// hexadecimal character references, matching encoding/xml.
func (p *parser) entity(buf []byte, b []byte) ([]byte, int, error) {
	limit := maxEntityLen + 2
	if limit > len(b) {
		limit = len(b)
	}
	semi := -1
	for j := 1; j < limit; j++ {
		if b[j] == ';' {
			semi = j
			break
		}
	}
	if semi < 1 {
		return nil, 0, p.errf("invalid character entity (no semicolon)")
	}
	name := b[1:semi]
	if len(name) == 0 {
		return nil, 0, p.errf("invalid character entity &;")
	}
	if name[0] == '#' {
		digits := name[1:]
		base := 10
		if len(digits) > 0 && digits[0] == 'x' {
			base = 16
			digits = digits[1:]
		}
		if len(digits) == 0 {
			return nil, 0, p.errf("invalid character entity &%s;", name)
		}
		var r rune
		for _, d := range digits {
			var v rune
			switch {
			case '0' <= d && d <= '9':
				v = rune(d - '0')
			case base == 16 && 'a' <= d && d <= 'f':
				v = rune(d-'a') + 10
			case base == 16 && 'A' <= d && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return nil, 0, p.errf("invalid character entity &%s;", name)
			}
			r = r*rune(base) + v
			if r > 0x10FFFF {
				return nil, 0, p.errf("illegal character code in entity &%s;", name)
			}
		}
		if !utf8.ValidRune(r) || !validXMLChar(r) {
			return nil, 0, p.errf("illegal character code %U", r)
		}
		return utf8.AppendRune(buf, r), semi + 1, nil
	}
	var exp byte
	switch string(name) {
	case "amp":
		exp = '&'
	case "lt":
		exp = '<'
	case "gt":
		exp = '>'
	case "apos":
		exp = '\''
	case "quot":
		exp = '"'
	default:
		return nil, 0, p.errf("invalid character entity &%s;", name)
	}
	return append(buf, exp), semi + 1, nil
}

// --- comments, CDATA, PIs, directives --------------------------------------

// bang dispatches "<!" constructs: comments and CDATA are part of the
// supported subset; DTDs and other directives are rejected outright (the
// portal dialects never use them, and refusing them closes the classic
// entity-expansion attack surface).
func (p *parser) bang() error {
	rest := p.data[p.pos+1:]
	switch {
	case bytes.HasPrefix(rest, []byte("--")):
		p.pos += 3
		return p.comment()
	case bytes.HasPrefix(rest, []byte("[CDATA[")):
		p.pos += 8
		return p.cdata()
	default:
		return p.errf("directives (<!...>) are not supported")
	}
}

func (p *parser) comment() error {
	data := p.data
	i := p.pos
	for i < len(data) {
		c := data[i]
		switch {
		case c == '-' && i+1 < len(data) && data[i+1] == '-':
			if i+2 < len(data) && data[i+2] == '>' {
				p.pos = i + 3
				return nil
			}
			p.pos = i
			return p.errf("invalid sequence \"--\" not allowed in comments")
		case c < 0x20 && c != '\t' && c != '\n' && c != '\r':
			p.pos = i
			return p.errf("illegal character code %U", rune(c))
		case c < 0x80:
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
				p.pos = i
				return p.errf("illegal character in comment")
			}
			i += size
		}
	}
	p.pos = i
	return p.errf("unterminated comment")
}

func (p *parser) cdata() error {
	data := p.data
	start := p.pos
	i := p.pos
	clean := true
	for i < len(data) {
		c := data[i]
		switch {
		case c == ']' && i+2 < len(data) && data[i+1] == ']' && data[i+2] == '>':
			span := data[start:i]
			p.pos = i + 3
			// CDATA content is literal: no entity expansion, but line
			// endings are still normalised.
			return p.addText(span, clean, false)
		case c == '\r':
			clean = false
			i++
		case c < 0x20 && c != '\t' && c != '\n':
			p.pos = i
			return p.errf("illegal character code %U", rune(c))
		case c < 0x80:
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
				p.pos = i
				return p.errf("illegal character in CDATA section")
			}
			i += size
		}
	}
	p.pos = i
	return p.errf("unterminated CDATA section")
}

// skipPI skips a processing instruction (including the XML declaration,
// wherever it appears) without interpreting it.
func (p *parser) skipPI() error {
	data := p.data
	i := p.pos + 1
	for i < len(data) {
		if data[i] == '?' && i+1 < len(data) && data[i+1] == '>' {
			p.pos = i + 2
			return nil
		}
		i++
	}
	p.pos = i
	return p.errf("unterminated processing instruction")
}

// --- names and namespaces --------------------------------------------------

// qname reads one XML name, enforcing the single-colon prefix rule, and
// returns the raw bytes plus the prefix/local split (prefix nil when
// unprefixed). Only slices of the input are returned.
func (p *parser) qname() (raw, prefix, local []byte, err error) {
	data := p.data
	start := p.pos
	i := p.pos
	if i >= len(data) {
		return nil, nil, nil, p.errf("expected name")
	}
	colon := -1
	c := data[i]
	switch {
	case c < 0x80:
		if !isNameStartByte(c) {
			return nil, nil, nil, p.errf("expected name, found %q", rune(c))
		}
		if c == ':' {
			colon = 0
		}
		i++
	default:
		r, size := utf8.DecodeRune(data[i:])
		if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
			return nil, nil, nil, p.errf("invalid rune in name")
		}
		i += size
	}
	for i < len(data) {
		c := data[i]
		if c < 0x80 {
			if !isNameByte(c) {
				break
			}
			if c == ':' {
				if colon >= 0 {
					p.pos = i
					return nil, nil, nil, p.errf("name with more than one colon")
				}
				colon = i - start
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(data[i:])
		if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
			p.pos = i
			return nil, nil, nil, p.errf("invalid rune in name")
		}
		i += size
	}
	raw = data[start:i]
	p.pos = i
	// A name with an empty prefix or local part (":", "b:", ":b") is not
	// treated as namespaced: encoding/xml keeps it whole as the local name.
	if colon > 0 && colon < len(raw)-1 {
		return raw, raw[:colon], raw[colon+1:], nil
	}
	return raw, nil, raw, nil
}

// resolve maps a prefix to its namespace URI under the current bindings,
// mirroring encoding/xml: the default namespace applies only to elements,
// "xml" and "xmlns" are reserved, and an unbound prefix resolves to the
// prefix itself.
func (p *parser) resolve(prefix []byte, element bool) string {
	if prefix == nil {
		if element {
			for i := len(p.ns) - 1; i >= 0; i-- {
				if p.ns[i].prefix == nil {
					return p.ns[i].uri
				}
			}
		}
		return ""
	}
	if string(prefix) == "xml" {
		return xmlNamespace
	}
	if string(prefix) == "xmlns" {
		return "xmlns"
	}
	for i := len(p.ns) - 1; i >= 0; i-- {
		if p.ns[i].prefix != nil && bytes.Equal(p.ns[i].prefix, prefix) {
			return p.ns[i].uri
		}
	}
	return intern(prefix)
}

// --- tags ------------------------------------------------------------------

func (p *parser) startTag() error {
	nsMark := len(p.ns)
	rawName, prefix, local, err := p.qname()
	if err != nil {
		return err
	}
	p.pend = p.pend[:0]
	selfClose := false
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return p.errf("unexpected EOF in element <%s>", rawName)
		}
		c := p.data[p.pos]
		if c == '>' {
			p.pos++
			break
		}
		if c == '/' {
			p.pos++
			if p.pos >= len(p.data) || p.data[p.pos] != '>' {
				return p.errf("expected /> in element <%s>", rawName)
			}
			p.pos++
			selfClose = true
			break
		}
		_, aprefix, alocal, err := p.qname()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return p.errf("attribute name without = in element <%s>", rawName)
		}
		p.pos++
		p.skipSpace()
		val, err := p.attrValue()
		if err != nil {
			return err
		}
		switch {
		case aprefix == nil && string(alocal) == "xmlns":
			p.ns = append(p.ns, nsBinding{prefix: nil, uri: val})
		case string(aprefix) == "xmlns":
			p.ns = append(p.ns, nsBinding{prefix: alocal, uri: val})
		default:
			p.pend = append(p.pend, pendingAttr{prefix: aprefix, local: alocal, value: val})
		}
	}
	el := p.newElement()
	el.Space = p.resolve(prefix, true)
	el.Name = intern(local)
	if len(p.pend) > 0 {
		start := len(p.attrs)
		for _, pa := range p.pend {
			space := ""
			if pa.prefix != nil {
				space = p.resolve(pa.prefix, false)
			}
			p.attrs = append(p.attrs, Attr{Space: space, Name: intern(pa.local), Value: pa.value})
		}
		el.Attrs = p.attrs[start:len(p.attrs):len(p.attrs)]
	}
	if len(p.stack) == 0 {
		if p.root != nil {
			return errors.New("xmlutil: parse: multiple root elements")
		}
		p.root = el
	} else {
		parent := p.stack[len(p.stack)-1].el
		parent.Children = append(parent.Children, el)
	}
	if selfClose {
		p.ns = p.ns[:nsMark]
		return nil
	}
	if len(p.stack) >= maxDepth {
		return p.errf("element depth exceeds %d", maxDepth)
	}
	p.stack = append(p.stack, frame{el: el, rawName: rawName, nsMark: nsMark})
	return nil
}

// attrValue lexes one quoted attribute value, unescaping only when needed.
// Short clean values are interned: type tags like "xsd:string" repeat on
// every message.
func (p *parser) attrValue() (string, error) {
	data := p.data
	if p.pos >= len(data) || (data[p.pos] != '"' && data[p.pos] != '\'') {
		return "", p.errf("unquoted or missing attribute value in element")
	}
	q := data[p.pos]
	p.pos++
	start := p.pos
	i := p.pos
	clean := true
	for {
		if i >= len(data) {
			p.pos = i
			return "", p.errf("unterminated quoted string")
		}
		c := data[i]
		if c == q {
			break
		}
		switch {
		case c == '<':
			p.pos = i
			return "", p.errf("unescaped < inside quoted string")
		case c == '&' || c == '\r':
			clean = false
			i++
		case c < 0x20:
			if c != '\t' && c != '\n' {
				p.pos = i
				return "", p.errf("illegal character code %U", rune(c))
			}
			i++
		case c < 0x80:
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				p.pos = i
				return "", p.errf("invalid UTF-8")
			}
			if !validXMLChar(r) {
				p.pos = i
				return "", p.errf("illegal character code %U", r)
			}
			i += size
		}
	}
	span := data[start:i]
	p.pos = i + 1
	if clean {
		return intern(span), nil
	}
	return p.unescape(span, true)
}

func (p *parser) endTag() error {
	raw, prefix, local, err := p.qname()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '>' {
		return p.errf("invalid characters between </%s and >", raw)
	}
	p.pos++
	if len(p.stack) == 0 {
		return errors.New("xmlutil: parse: unbalanced end element")
	}
	f := &p.stack[len(p.stack)-1]
	// Compare the resolved name (namespace + local), not the raw bytes:
	// <p:a xmlns:p="u" xmlns:q="u"></q:a> is well formed.
	if f.el.Name != string(local) || f.el.Space != p.resolve(prefix, true) {
		return p.errf("element <%s> closed by </%s>", f.rawName, raw)
	}
	el := f.el
	if f.raw != nil {
		rawText := f.raw
		if len(el.Children) > 0 {
			// Whitespace between child elements is formatting, not content;
			// leaf text is preserved verbatim because portal payloads (job
			// output, file contents) carry significant whitespace.
			rawText = bytes.TrimSpace(rawText)
		}
		if len(rawText) > 0 {
			el.Text = string(rawText)
		}
	} else if f.mat && len(el.Children) > 0 {
		el.Text = strings.TrimSpace(el.Text)
	}
	p.ns = p.ns[:f.nsMark]
	p.stack = p.stack[:len(p.stack)-1]
	return nil
}

// --- entry points ----------------------------------------------------------

// parseRetained runs the scanner in ownership-transfer mode: the element
// slabs leave with the returned tree and the lexer state goes back to the
// pool.
func parseRetained(data []byte) (*Element, error) {
	p := retainedPool.Get().(*parser)
	p.reset(data)
	root, err := p.run()
	p.data = nil
	p.root = nil
	p.slabs = nil // owned by the returned tree now
	p.nextSlab = 0
	p.attrs = nil
	if cap(p.scratch) > maxPooledScratch {
		p.scratch = nil
	}
	retainedPool.Put(p)
	return root, err
}

// Doc is a document parsed into a pooled element arena by ParseBytesPooled.
// The tree under Root is fully owned by the arena: Release recycles every
// Element (and their attribute storage) for the next parse, so neither Root
// nor any node or slice reached from it may be used after Release. Strings
// taken out of the tree (names, text, attribute values) are ordinary Go
// strings and remain valid forever.
type Doc struct {
	// Root is the document root; nil after Release.
	Root *Element

	p *parser
}

// ParseBytesPooled parses an XML document into a pooled element arena. It is
// the allocation-free steady-state decode path for request-scoped documents:
// the caller must Release the Doc when done with the tree and must not
// retain any *Element past that point. Use ParseBytes when the tree outlives
// the call site.
func ParseBytesPooled(data []byte) (*Doc, error) {
	p := arenaPool.Get().(*parser)
	p.reset(data)
	root, err := p.run()
	p.data = nil
	if err != nil {
		p.root = nil
		arenaPool.Put(p)
		return nil, err
	}
	// The Doc is heap-allocated per parse (never pooled): once Release has
	// detached it, its p stays nil forever, so a late or duplicate Release
	// through a stale pointer can never free an arena that a subsequent
	// parse is using.
	return &Doc{Root: root, p: p}, nil
}

// Release returns the document's element arena to the pool. Calling it twice
// is a no-op; using the tree after Release corrupts later parses.
func (d *Doc) Release() {
	p := d.p
	if p == nil {
		return
	}
	d.Root = nil
	d.p = nil
	p.root = nil
	total := 0
	for _, s := range p.slabs {
		total += len(s)
	}
	if total > maxPooledElems {
		p.slabs = nil
		p.nextSlab = 0
	}
	if cap(p.attrs) > maxPooledAttrs {
		p.attrs = nil
	}
	if cap(p.scratch) > maxPooledScratch {
		p.scratch = nil
	}
	arenaPool.Put(p)
}
