// cursor.go implements a pull-token reader over the same XML subset the
// tree parser in scanner.go accepts — minus the constructs the streaming
// consumers deliberately refuse (comments, CDATA sections, DTDs). It is the
// foundation of the treeless decode fast path: the soap package walks
// tokens straight off the wire bytes and hands scalar parameter text to
// per-operation codecs without ever materialising an *Element tree.
//
// Contract with the tree parser: the cursor must never accept input the
// tree parser rejects, and must decode identical strings for everything it
// does accept (names interned through the same table, entity expansion and
// "\r" normalisation identical, character validity identical). It may
// reject MORE than the parser does — any error simply routes the document
// to the tree path, which remains the semantic authority. That one-sided
// guarantee is what lets the fast path fall back on surprise instead of
// replicating every edge case.
package xmlutil

import (
	"bytes"
	"errors"
	"sync"
	"unicode/utf8"
)

// Tok is the kind of token Cursor.Next produced.
type Tok uint8

const (
	// TokStart is an element start tag; Space/Name/Attr describe it. A
	// self-closing tag yields TokStart followed immediately by TokEnd.
	TokStart Tok = iota
	// TokEnd is an element end tag.
	TokEnd
	// TokText is one run of character data; Text/TextIsSpace read it.
	TokText
	// TokEOF is the end of the document with all elements closed.
	TokEOF
)

// ErrCursorUnsupported marks a well-formed-so-far construct outside the
// cursor's streaming subset (comments, CDATA, DTDs). Callers treat it the
// same as a parse error — fall back to the tree parser — but the distinct
// value keeps diagnostics honest: the input was not necessarily malformed.
var ErrCursorUnsupported = errors.New("xmlutil: cursor: construct outside the streaming subset")

var errCursorMalformed = errors.New("xmlutil: cursor: malformed XML")

// openElem is one open element: its resolved identity for end-tag matching
// plus the namespace-stack depth to restore when it closes.
type openElem struct {
	space, name string
	nsMark      int
}

// Cursor is a pooled pull-token reader. Acquire with AcquireCursor, walk
// with Next, and Release when done (whether or not parsing succeeded).
// Strings returned by Name, Space, Attr lookups, and Text never alias the
// input and stay valid after Release.
type Cursor struct {
	data []byte
	pos  int

	ns   []nsBinding
	open []openElem
	// pend holds the current start tag's non-xmlns attributes. Lookups are
	// lazy: Attr resolves against these raw spans on demand, so tags whose
	// attributes nobody reads never pay for name interning or namespace
	// resolution.
	pend []pendingAttr

	// Current TokStart state.
	space, name string
	selfClose   bool

	// Current TokText state: the raw span (aliasing data) and whether it
	// needs unescaping.
	textSpan  []byte
	textClean bool

	scratch []byte

	// memo is a small direct-mapped cache over recently seen clean byte
	// spans (names, attribute values, short leaf text), surviving pool
	// cycles. RPC traffic re-sends the same vocabulary every request —
	// "xsd:string", the xsi namespace URI, parameter names, scheduler
	// names — and the cache turns those into collision-checked string
	// reuse without touching the locked global intern table.
	memo [32]string
}

// memoSpan returns a string equal to the clean span, reusing a cached
// instance when the same bytes were seen recently. A full comparison
// guards every hit, so collisions only cost the miss path: one string
// allocation and a cache overwrite.
//
// Only bounded vocabulary — element names and namespace prefixes — may
// feed the global intern table through here. High-cardinality spans
// (leaf text and attribute values: registry keys, user data) must go
// through memoLocal instead, or the append-only intern table fills with
// one-shot strings — evicting nothing, wasting the cap, and paying a
// full-table copy per insert until full.
func (c *Cursor) memoSpan(span []byte) string {
	if len(span) == 0 {
		return ""
	}
	if len(span) > maxInternLen {
		return string(span)
	}
	h := (uint(len(span))*131 + uint(span[0])*31 + uint(span[len(span)-1])) % uint(len(c.memo))
	if s := c.memo[h]; s == string(span) { // no alloc: compiler-recognised compare
		return s
	}
	s := intern(span) // shared instance even when slots collide
	c.memo[h] = s
	return s
}

// memoLocal is memoSpan without the global intern table: a miss
// allocates and caches per-cursor only. For spans whose value space is
// unbounded, the recurring ones ("xsd:string", redeclared namespace
// URIs) still turn into reuse via the memo — cursors are pooled, so the
// memo warms once per cursor instance — while unique ones (freshly
// minted uuid keys in publish responses) cost exactly their own
// allocation instead of a global table insert.
func (c *Cursor) memoLocal(span []byte) string {
	if len(span) == 0 {
		return ""
	}
	if len(span) > maxInternLen {
		return string(span)
	}
	h := (uint(len(span))*131 + uint(span[0])*31 + uint(span[len(span)-1])) % uint(len(c.memo))
	if s := c.memo[h]; s == string(span) {
		return s
	}
	s := string(span)
	c.memo[h] = s
	return s
}

// memoHit probes the memo with a raw, not-yet-validated span and reports
// whether it holds a byte-equal string. Every memo entrant was
// content-validated by its producer (qname, a clean attribute value,
// clean character data), so a hit proves the span clean and valid without
// rescanning it — the basis of the attribute-value fast path.
func (c *Cursor) memoHit(span []byte) (string, bool) {
	n := len(span)
	if n == 0 || n > maxInternLen {
		return "", false
	}
	h := (uint(n)*131 + uint(span[0])*31 + uint(span[n-1])) % uint(len(c.memo))
	if s := c.memo[h]; s == string(span) {
		return s, true
	}
	return "", false
}

// plainTextByte and plainAttrByte classify bytes that character-data and
// attribute-value scanning can accept without further checks: printable
// ASCII plus tab and newline, minus the structurally significant bytes
// each scanner inspects ('<', '&', '\r' and the CDATA-end ']' for text;
// '<', '&', '\r' for attribute values, whose closing quote is compared
// before the table). One table load replaces the per-byte switch on the
// hot scanning loops.
var plainTextByte, plainAttrByte = func() (text, attr [256]bool) {
	for i := 0x20; i < 0x80; i++ {
		text[i], attr[i] = true, true
	}
	text['\t'], text['\n'] = true, true
	attr['\t'], attr['\n'] = true, true
	text['<'], text['&'], text[']'] = false, false, false
	attr['<'], attr['&'] = false, false
	return
}()

var cursorPool = sync.Pool{New: func() interface{} { return new(Cursor) }}

// AcquireCursor returns a pooled cursor positioned at the start of data. A
// UTF-8 byte-order mark is tolerated, as in the tree parser.
func AcquireCursor(data []byte) *Cursor {
	c := cursorPool.Get().(*Cursor)
	c.data = data
	c.pos = 0
	if bytes.HasPrefix(data, bomPrefix) {
		c.pos = 3
	}
	c.ns = c.ns[:0]
	c.open = c.open[:0]
	c.selfClose = false
	c.textSpan = nil
	return c
}

// Release returns the cursor to the pool. The cursor must not be used
// afterwards.
func (c *Cursor) Release() {
	c.data = nil
	c.textSpan = nil
	// pend and ns hold byte slices aliasing the document; zero them so a
	// pooled cursor does not pin a released request buffer.
	for i := range c.pend {
		c.pend[i] = pendingAttr{}
	}
	c.pend = c.pend[:0]
	for i := range c.ns {
		c.ns[i] = nsBinding{}
	}
	c.ns = c.ns[:0]
	c.space, c.name = "", ""
	if cap(c.scratch) > maxPooledScratch {
		c.scratch = nil
	}
	cursorPool.Put(c)
}

// PrologueSeed describes a fixed byte-literal document prologue whose
// parse outcome is known ahead of time: the namespace bindings it declares
// and the elements it leaves open. Callers that emit a canonical prologue
// themselves (the SOAP encoder always writes the same envelope opening)
// verify the prefix with one memcmp and adopt the outcome, skipping
// tokenisation of the hottest, most redundant part of every message.
type PrologueSeed struct {
	// Text is the exact prologue byte sequence.
	Text []byte
	// Prefixes and URIs are the namespace bindings the prologue declares,
	// in order; they are treated as declared on the outermost open element.
	Prefixes [][]byte
	URIs     []string
	// OpenSpaces and OpenNames are the elements left open by the prologue,
	// outermost first, with resolved namespaces.
	OpenSpaces []string
	OpenNames  []string
}

// SkipPrologue consumes seed.Text when the document starts with it,
// adopting the declared bindings and open-element stack. Valid only before
// the first Next call; reports whether the prologue matched.
func (c *Cursor) SkipPrologue(seed *PrologueSeed) bool {
	if len(c.open) != 0 || len(c.ns) != 0 || c.selfClose {
		return false
	}
	if !bytes.HasPrefix(c.data[c.pos:], seed.Text) {
		return false
	}
	for i := range seed.Prefixes {
		c.ns = append(c.ns, nsBinding{prefix: seed.Prefixes[i], uri: seed.URIs[i]})
	}
	for i := range seed.OpenNames {
		mark := 0
		if i > 0 {
			mark = len(c.ns)
		}
		c.open = append(c.open, openElem{space: seed.OpenSpaces[i], name: seed.OpenNames[i], nsMark: mark})
	}
	c.pos += len(seed.Text)
	return true
}

// Depth is the number of currently open elements.
func (c *Cursor) Depth() int { return len(c.open) }

// Space and Name identify the current TokStart element; the namespace is
// resolved exactly as the tree parser resolves it (default namespace for
// elements, unbound prefixes resolving to the prefix itself).
func (c *Cursor) Space() string { return c.space }

// Name returns the current TokStart element's local name.
func (c *Cursor) Name() string { return c.name }

// Attr looks up an attribute of the current TokStart element by local
// name with Element.Attr semantics: an unqualified attribute wins, then
// the first prefixed one. xmlns declarations are never visible here. The
// lookup works on the raw attribute spans, so elements whose attributes
// are never queried pay nothing beyond value scanning.
func (c *Cursor) Attr(name string) (string, bool) {
	for i := range c.pend {
		pa := &c.pend[i]
		if pa.prefix == nil && string(pa.local) == name {
			return pa.value, true
		}
	}
	for i := range c.pend {
		pa := &c.pend[i]
		if string(pa.local) == name {
			return pa.value, true
		}
	}
	return "", false
}

// TextIsSpace reports whether the current TokText raw span is entirely XML
// whitespace. Entity-encoded whitespace reads as non-space, which is the
// conservative direction: callers treat non-space where they expected
// formatting as a fallback trigger, never the reverse.
func (c *Cursor) TextIsSpace() bool {
	for _, b := range c.textSpan {
		if !isSpaceByte(b) {
			return false
		}
	}
	return true
}

// Text materialises the current TokText token: entities expanded and line
// endings normalised, identical to the tree parser's text handling.
func (c *Cursor) Text() (string, error) {
	if c.textClean {
		return c.memoLocal(c.textSpan), nil
	}
	buf, err := cursorUnescape(c.scratch[:0], c.textSpan)
	if err != nil {
		return "", err
	}
	c.scratch = buf
	return string(buf), nil
}

// Next advances to the next token. Any error — malformed XML or a
// construct outside the streaming subset — leaves the cursor unusable
// except for Release.
func (c *Cursor) Next() (Tok, error) {
	if c.selfClose {
		c.selfClose = false
		return c.popElem()
	}
	for {
		if c.pos >= len(c.data) {
			if len(c.open) != 0 {
				return TokEOF, errCursorMalformed
			}
			return TokEOF, nil
		}
		if c.data[c.pos] != '<' {
			return c.scanText()
		}
		c.pos++
		if c.pos >= len(c.data) {
			return TokEOF, errCursorMalformed
		}
		switch c.data[c.pos] {
		case '?':
			// Processing instructions (the XML declaration included) are
			// skipped wherever they appear, as in the tree parser.
			if !c.skipPI() {
				return TokEOF, errCursorMalformed
			}
		case '!':
			// Comments and CDATA are tree-parser territory; DTDs are
			// rejected there too, so either way the fast path stops here.
			return TokEOF, ErrCursorUnsupported
		case '/':
			c.pos++
			return c.endTag()
		default:
			return c.startTag()
		}
	}
}

// Skip consumes tokens until the element whose TokStart was just returned
// closes, discarding everything inside it.
func (c *Cursor) Skip() error {
	depth := 1
	for depth > 0 {
		tok, err := c.Next()
		if err != nil {
			return err
		}
		switch tok {
		case TokStart:
			depth++
		case TokEnd:
			depth--
		case TokEOF:
			return errCursorMalformed
		}
	}
	return nil
}

func (c *Cursor) popElem() (Tok, error) {
	f := c.open[len(c.open)-1]
	c.ns = c.ns[:f.nsMark]
	c.open = c.open[:len(c.open)-1]
	return TokEnd, nil
}

// scanText scans one run of character data up to the next '<', with the
// same validation as parser.text.
func (c *Cursor) scanText() (Tok, error) {
	data := c.data
	start := c.pos
	i := c.pos
	clean := true
	for i < len(data) {
		ch := data[i]
		if plainTextByte[ch] {
			i++
			continue
		}
		if ch == '<' {
			break
		}
		switch {
		case ch == '&' || ch == '\r':
			clean = false
			i++
		case ch == ']':
			if i+2 < len(data) && data[i+1] == ']' && data[i+2] == '>' {
				return TokEOF, errCursorMalformed
			}
			i++
		case ch < 0x80: // a control character outside tab/newline
			return TokEOF, errCursorMalformed
		default:
			r, size := utf8.DecodeRune(data[i:])
			if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
				return TokEOF, errCursorMalformed
			}
			i += size
		}
	}
	c.textSpan = data[start:i]
	c.textClean = clean
	c.pos = i
	return TokText, nil
}

func (c *Cursor) skipPI() bool {
	data := c.data
	i := c.pos + 1
	for i < len(data) {
		if data[i] == '?' && i+1 < len(data) && data[i+1] == '>' {
			c.pos = i + 2
			return true
		}
		i++
	}
	return false
}

// qname reads one XML name with the single-colon rule, returning prefix
// (nil when unprefixed) and local slices of the input.
func (c *Cursor) qname() (prefix, local []byte, ok bool) {
	data := c.data
	start := c.pos
	i := c.pos
	if i >= len(data) {
		return nil, nil, false
	}
	colon := -1
	ch := data[i]
	switch {
	case ch < 0x80:
		if !isNameStartByte(ch) {
			return nil, nil, false
		}
		if ch == ':' {
			colon = 0
		}
		i++
	default:
		r, size := utf8.DecodeRune(data[i:])
		if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
			return nil, nil, false
		}
		i += size
	}
	for i < len(data) {
		ch := data[i]
		if ch < 0x80 {
			if !isNameByte(ch) {
				break
			}
			if ch == ':' {
				if colon >= 0 {
					return nil, nil, false
				}
				colon = i - start
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(data[i:])
		if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
			return nil, nil, false
		}
		i += size
	}
	raw := data[start:i]
	c.pos = i
	// ":", "b:", ":b" are kept whole as the local name, as in the parser.
	if colon > 0 && colon < len(raw)-1 {
		return raw[:colon], raw[colon+1:], true
	}
	return nil, raw, true
}

// resolve mirrors parser.resolve over the cursor's binding stack.
func (c *Cursor) resolve(prefix []byte, element bool) string {
	if prefix == nil {
		if element {
			for i := len(c.ns) - 1; i >= 0; i-- {
				if c.ns[i].prefix == nil {
					return c.ns[i].uri
				}
			}
		}
		return ""
	}
	if string(prefix) == "xml" {
		return xmlNamespace
	}
	if string(prefix) == "xmlns" {
		return "xmlns"
	}
	for i := len(c.ns) - 1; i >= 0; i-- {
		if c.ns[i].prefix != nil && bytes.Equal(c.ns[i].prefix, prefix) {
			return c.ns[i].uri
		}
	}
	return c.memoSpan(prefix)
}

func (c *Cursor) skipSpace() {
	for c.pos < len(c.data) && isSpaceByte(c.data[c.pos]) {
		c.pos++
	}
}

func (c *Cursor) startTag() (Tok, error) {
	nsMark := len(c.ns)
	prefix, local, ok := c.qname()
	if !ok {
		return TokEOF, errCursorMalformed
	}
	c.pend = c.pend[:0]
	c.selfClose = false
	for {
		c.skipSpace()
		if c.pos >= len(c.data) {
			return TokEOF, errCursorMalformed
		}
		ch := c.data[c.pos]
		if ch == '>' {
			c.pos++
			break
		}
		if ch == '/' {
			c.pos++
			if c.pos >= len(c.data) || c.data[c.pos] != '>' {
				return TokEOF, errCursorMalformed
			}
			c.pos++
			c.selfClose = true
			break
		}
		aprefix, alocal, ok := c.qname()
		if !ok {
			return TokEOF, errCursorMalformed
		}
		c.skipSpace()
		if c.pos >= len(c.data) || c.data[c.pos] != '=' {
			return TokEOF, errCursorMalformed
		}
		c.pos++
		c.skipSpace()
		val, err := c.attrValue()
		if err != nil {
			return TokEOF, err
		}
		switch {
		case aprefix == nil && string(alocal) == "xmlns":
			c.ns = append(c.ns, nsBinding{prefix: nil, uri: val})
		case string(aprefix) == "xmlns":
			c.ns = append(c.ns, nsBinding{prefix: alocal, uri: val})
		default:
			c.pend = append(c.pend, pendingAttr{prefix: aprefix, local: alocal, value: val})
		}
	}
	c.space = c.resolve(prefix, true)
	c.name = c.memoSpan(local)
	if len(c.open) >= maxDepth {
		return TokEOF, errCursorMalformed
	}
	c.open = append(c.open, openElem{space: c.space, name: c.name, nsMark: nsMark})
	return TokStart, nil
}

func (c *Cursor) attrValue() (string, error) {
	data := c.data
	if c.pos >= len(data) || (data[c.pos] != '"' && data[c.pos] != '\'') {
		return "", errCursorMalformed
	}
	q := data[c.pos]
	c.pos++
	start := c.pos
	// Fast path: find the closing quote with IndexByte and probe the memo
	// with the raw span. A clean value contains neither entities nor its
	// own quote character, so a byte-equal memo hit is exactly the
	// already-validated value — namespace URIs and xsi type attributes,
	// re-declared on every RPC parameter, land here after the first one.
	if rel := bytes.IndexByte(data[start:], q); rel > 0 {
		if s, ok := c.memoHit(data[start : start+rel]); ok {
			c.pos = start + rel + 1
			return s, nil
		}
	}
	i := c.pos
	clean := true
	for {
		if i >= len(data) {
			return "", errCursorMalformed
		}
		ch := data[i]
		if ch == q {
			break
		}
		if plainAttrByte[ch] {
			i++
			continue
		}
		switch {
		case ch == '&' || ch == '\r':
			clean = false
			i++
		case ch < 0x80: // '<' or a control character outside tab/newline
			return "", errCursorMalformed
		default:
			r, size := utf8.DecodeRune(data[i:])
			if (r == utf8.RuneError && size == 1) || !validXMLChar(r) {
				return "", errCursorMalformed
			}
			i += size
		}
	}
	span := data[start:i]
	c.pos = i + 1
	if clean {
		return c.memoLocal(span), nil
	}
	buf, err := cursorUnescape(c.scratch[:0], span)
	if err != nil {
		return "", err
	}
	c.scratch = buf
	return string(buf), nil
}

func (c *Cursor) endTag() (Tok, error) {
	prefix, local, ok := c.qname()
	if !ok {
		return TokEOF, errCursorMalformed
	}
	c.skipSpace()
	if c.pos >= len(c.data) || c.data[c.pos] != '>' {
		return TokEOF, errCursorMalformed
	}
	c.pos++
	if len(c.open) == 0 {
		return TokEOF, errCursorMalformed
	}
	f := c.open[len(c.open)-1]
	// Compare the resolved name, as parser.endTag does.
	if f.name != string(local) || f.space != c.resolve(prefix, true) {
		return TokEOF, errCursorMalformed
	}
	return c.popElem()
}

// cursorUnescape expands entities and normalises line endings into buf,
// mirroring parser.unescape byte for byte.
func cursorUnescape(buf, span []byte) ([]byte, error) {
	i := 0
	for i < len(span) {
		ch := span[i]
		switch {
		case ch == '\r':
			buf = append(buf, '\n')
			i++
			if i < len(span) && span[i] == '\n' {
				i++
			}
		case ch == '&':
			var n int
			var err error
			buf, n, err = cursorEntity(buf, span[i:])
			if err != nil {
				return buf, err
			}
			i += n
		default:
			buf = append(buf, ch)
			i++
		}
	}
	return buf, nil
}

// cursorEntity decodes one entity reference at the start of b, mirroring
// parser.entity: the five predefined names plus character references.
func cursorEntity(buf, b []byte) ([]byte, int, error) {
	limit := maxEntityLen + 2
	if limit > len(b) {
		limit = len(b)
	}
	semi := -1
	for j := 1; j < limit; j++ {
		if b[j] == ';' {
			semi = j
			break
		}
	}
	if semi < 1 {
		return buf, 0, errCursorMalformed
	}
	name := b[1:semi]
	if len(name) == 0 {
		return buf, 0, errCursorMalformed
	}
	if name[0] == '#' {
		digits := name[1:]
		base := 10
		if len(digits) > 0 && digits[0] == 'x' {
			base = 16
			digits = digits[1:]
		}
		if len(digits) == 0 {
			return buf, 0, errCursorMalformed
		}
		var r rune
		for _, d := range digits {
			var v rune
			switch {
			case '0' <= d && d <= '9':
				v = rune(d - '0')
			case base == 16 && 'a' <= d && d <= 'f':
				v = rune(d-'a') + 10
			case base == 16 && 'A' <= d && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return buf, 0, errCursorMalformed
			}
			r = r*rune(base) + v
			if r > 0x10FFFF {
				return buf, 0, errCursorMalformed
			}
		}
		if !utf8.ValidRune(r) || !validXMLChar(r) {
			return buf, 0, errCursorMalformed
		}
		return utf8.AppendRune(buf, r), semi + 1, nil
	}
	var exp byte
	switch string(name) {
	case "amp":
		exp = '&'
	case "lt":
		exp = '<'
	case "gt":
		exp = '>'
	case "apos":
		exp = '\''
	case "quot":
		exp = '"'
	default:
		return buf, 0, errCursorMalformed
	}
	return append(buf, exp), semi + 1, nil
}
