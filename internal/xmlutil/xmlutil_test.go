package xmlutil

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndChaining(t *testing.T) {
	e := New("application").
		SetAttr("name", "gaussian").
		AddText("version", "98").
		Add(NewText("flag", "-direct"))
	if e.Name != "application" {
		t.Fatalf("name = %q", e.Name)
	}
	if got := e.ChildText("version"); got != "98" {
		t.Errorf("version = %q, want 98", got)
	}
	if got := e.AttrDefault("name", ""); got != "gaussian" {
		t.Errorf("attr name = %q", got)
	}
	if got := e.AttrDefault("missing", "dflt"); got != "dflt" {
		t.Errorf("default = %q", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := New("x").SetAttr("a", "1").SetAttr("a", "2")
	if len(e.Attrs) != 1 {
		t.Fatalf("attrs = %d, want 1", len(e.Attrs))
	}
	if v, _ := e.Attr("a"); v != "2" {
		t.Errorf("a = %q, want 2", v)
	}
}

func TestAttrNamespacedFallback(t *testing.T) {
	e := New("x").SetAttrNS("urn:ns", "type", "demo")
	if v, ok := e.Attr("type"); !ok || v != "demo" {
		t.Errorf("fallback lookup got %q ok=%v", v, ok)
	}
}

func TestParseRoundTrip(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<host name="modi4.ncsa.uiuc.edu">
  <ip>141.142.30.72</ip>
  <queue system="PBS"><maxWallTime>3600</maxWallTime></queue>
  <queue system="GRD"><maxWallTime>7200</maxWallTime></queue>
</host>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "host" {
		t.Fatalf("root = %q", root.Name)
	}
	if got := root.FindText("ip"); got != "141.142.30.72" {
		t.Errorf("ip = %q", got)
	}
	queues := root.ChildrenNamed("queue")
	if len(queues) != 2 {
		t.Fatalf("queues = %d, want 2", len(queues))
	}
	if sys, _ := queues[1].Attr("system"); sys != "GRD" {
		t.Errorf("second queue system = %q", sys)
	}
	// Render and parse again; trees must be equal.
	again, err := ParseString(root.Render())
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equal(again) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", root.RenderIndent(), again.RenderIndent())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"unterminated", "<a><b></b>"},
		{"garbage", "not xml at all <"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.doc); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.doc)
			}
		})
	}
}

func TestNamespaceRendering(t *testing.T) {
	env := NewNS("http://schemas.xmlsoap.org/soap/envelope/", "Envelope")
	body := NewNS("http://schemas.xmlsoap.org/soap/envelope/", "Body")
	call := NewNS("urn:batchscript", "generateScript")
	call.AddText("scheduler", "PBS")
	env.Add(body.Add(call))
	out := env.Render()
	if !strings.Contains(out, `xmlns:ns0="http://schemas.xmlsoap.org/soap/envelope/"`) {
		t.Errorf("missing envelope ns decl: %s", out)
	}
	if !strings.Contains(out, `xmlns:ns1="urn:batchscript"`) {
		t.Errorf("missing service ns decl: %s", out)
	}
	parsed, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	got := parsed.ChildNS("http://schemas.xmlsoap.org/soap/envelope/", "Body")
	if got == nil {
		t.Fatal("Body not found by namespace after round trip")
	}
	if got.Children[0].Space != "urn:batchscript" {
		t.Errorf("call space = %q", got.Children[0].Space)
	}
}

func TestNamespaceScopeReuse(t *testing.T) {
	// Two siblings in the same foreign namespace: after the first sibling
	// closes its declaration goes out of scope, so the second must redeclare.
	root := New("root")
	root.Add(NewNS("urn:a", "x"), NewNS("urn:a", "y"))
	out := root.Render()
	if strings.Count(out, `xmlns:`) != 2 {
		t.Errorf("expected 2 declarations, got: %s", out)
	}
	parsed, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ChildNS("urn:a", "y") == nil {
		t.Errorf("sibling namespace lost: %s", out)
	}
}

func TestEscaping(t *testing.T) {
	e := NewText("msg", `a<b & "c">d`)
	e.SetAttr("q", `x"y<z&`)
	out := e.Render()
	parsed, err := ParseString(out)
	if err != nil {
		t.Fatalf("parse escaped: %v (%s)", err, out)
	}
	if parsed.Text != `a<b & "c">d` {
		t.Errorf("text = %q", parsed.Text)
	}
	if v, _ := parsed.Attr("q"); v != `x"y<z&` {
		t.Errorf("attr = %q", v)
	}
}

func TestFindAndFindAll(t *testing.T) {
	doc := New("apps")
	for i := 0; i < 3; i++ {
		app := New("application")
		app.AddText("name", "code")
		doc.Add(app)
	}
	if got := len(doc.FindAll("application/name")); got != 3 {
		t.Errorf("FindAll = %d, want 3", got)
	}
	if doc.Find("application/name") == nil {
		t.Error("Find returned nil")
	}
	if doc.Find("missing/path") != nil {
		t.Error("Find on absent path returned non-nil")
	}
	if doc.FindText("application/name") != "code" {
		t.Error("FindText mismatch")
	}
	if doc.Find("") != doc {
		t.Error("empty path should return receiver")
	}
}

func TestWalkPrune(t *testing.T) {
	root := New("a").Add(New("b").Add(New("c")), New("d"))
	var visited []string
	root.Walk(func(e *Element) bool {
		visited = append(visited, e.Name)
		return e.Name != "b" // prune below b
	})
	want := []string{"a", "b", "d"}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visited = %v, want %v", visited, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := New("ctx").SetAttr("user", "marpierce").AddText("problem", "cfd")
	cp := orig.Clone()
	cp.Children[0].Text = "changed"
	cp.SetAttr("user", "other")
	if orig.ChildText("problem") != "cfd" {
		t.Error("clone mutated original child")
	}
	if v, _ := orig.Attr("user"); v != "marpierce" {
		t.Error("clone mutated original attr")
	}
	if !orig.Clone().Equal(orig) {
		t.Error("clone not equal to original")
	}
}

func TestCanonicalSortsAttrs(t *testing.T) {
	a := New("x").SetAttr("b", "2").SetAttr("a", "1")
	b := New("x").SetAttr("a", "1").SetAttr("b", "2")
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", a.Canonical(), b.Canonical())
	}
	if a.Render() == b.Render() {
		t.Log("note: plain render coincidentally equal")
	}
}

func TestIntBool(t *testing.T) {
	if v, err := NewText("n", " 42 ").Int(); err != nil || v != 42 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := NewText("b", "true").Bool(); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if _, err := NewText("n", "x").Int(); err == nil {
		t.Error("Int on garbage should fail")
	}
}

func TestCountNodes(t *testing.T) {
	root := New("a").Add(New("b"), New("c").Add(New("d")))
	if got := root.CountNodes(); got != 4 {
		t.Errorf("CountNodes = %d, want 4", got)
	}
}

// randomTree builds a random element tree for property testing.
func randomTree(r *rand.Rand, depth int) *Element {
	names := []string{"application", "host", "queue", "param", "service", "context"}
	e := New(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		e.Space = []string{"urn:a", "urn:b", "http://example.org/s"}[r.Intn(3)]
	}
	nattrs := r.Intn(3)
	for i := 0; i < nattrs; i++ {
		e.SetAttr("a"+string(rune('a'+i)), randomText(r))
	}
	if depth > 0 {
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			e.Add(randomTree(r, depth-1))
		}
	}
	if len(e.Children) == 0 {
		e.Text = randomText(r)
	}
	return e
}

func randomText(r *rand.Rand) string {
	chars := []rune(`abc XYZ<>&"0129 -_.`)
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = chars[r.Intn(len(chars))]
	}
	return strings.TrimSpace(string(out))
}

// TestPropertyRoundTrip: for random trees, Render followed by Parse
// reproduces an Equal tree. This is the core invariant every XML dialect in
// the repository relies on.
func TestPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		parsed, err := ParseString(tree.Render())
		if err != nil {
			t.Logf("seed %d: parse error %v", seed, err)
			return false
		}
		if !tree.Equal(parsed) {
			t.Logf("seed %d mismatch:\n%s\nvs\n%s", seed, tree.RenderIndent(), parsed.RenderIndent())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyCanonicalStable: canonicalisation is idempotent and invariant
// under attribute permutation.
func TestPropertyCanonicalStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		c1 := tree.Canonical()
		shuffled := tree.Clone()
		shuffled.Walk(func(e *Element) bool {
			r.Shuffle(len(e.Attrs), func(i, j int) { e.Attrs[i], e.Attrs[j] = e.Attrs[j], e.Attrs[i] })
			return true
		})
		return c1 == shuffled.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 3)
		return tree.Clone().Equal(tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
