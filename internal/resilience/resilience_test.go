package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		d1, d2 := b.Delay(i, r1), b.Delay(i, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", i, d1, d2)
		}
		nominal := b.Delay(i, nil)
		if d1 < nominal/2 || d1 > nominal {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", i, d1, nominal/2, nominal)
		}
	}
}

func TestSleepHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx = %v, want Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep = %v", err)
	}
}

func TestTimeoutBudget(t *testing.T) {
	if got := Timeout(context.Background(), 3*time.Second); got != 3*time.Second {
		t.Fatalf("no-deadline budget = %v", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got := Timeout(ctx, time.Minute); got > time.Second || got <= 0 {
		t.Fatalf("capped budget = %v, want (0, 1s]", got)
	}
	if got := Timeout(ctx, 0); got > time.Second || got <= 0 {
		t.Fatalf("uncapped budget with deadline = %v, want (0, 1s]", got)
	}
}

func TestRetryPolicyAttemptsNilSafe(t *testing.T) {
	var p *RetryPolicy
	if p.Attempts() != 1 {
		t.Fatalf("nil policy attempts = %d", p.Attempts())
	}
	if p.Retries() != 0 {
		t.Fatalf("nil policy retries = %d", p.Retries())
	}
	p = &RetryPolicy{MaxAttempts: 4}
	if p.Attempts() != 4 {
		t.Fatalf("attempts = %d", p.Attempts())
	}
}

func TestRetryWaitCountsAndCancels(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 3, Backoff: Backoff{Base: time.Millisecond, Jitter: 0}, Seed: 1}
	if err := p.Wait(context.Background(), 0); err != nil {
		t.Fatalf("wait: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Wait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait = %v", err)
	}
	if p.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", p.Retries())
	}
}

// fakeClock drives breaker windows deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker("ep", BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, HalfOpenProbes: 1})
	b.now = clk.now

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(true)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after 2 fails = %v", b.State())
	}
	// Third consecutive failure opens.
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow: %v", err)
	}
	b.Record(true)
	if b.State() != StateOpen {
		t.Fatalf("state after threshold = %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open Allow = %v, want ErrOpen", err)
	}

	// Window elapses: exactly one probe is admitted.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted")
	}
	// Probe failure re-opens immediately.
	b.Record(true)
	if b.State() != StateOpen {
		t.Fatalf("state after failed probe = %v", b.State())
	}

	// Next window: probe success closes.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(false)
	if b.State() != StateClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	snap := b.Snapshot()
	if snap.Opens != 2 || snap.Rejected == 0 || snap.Name != "ep" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestBreakerConcurrentStress hammers one breaker from many goroutines
// under -race: every admitted attempt records exactly once, and the
// breaker's bookkeeping must stay internally consistent (probes never go
// negative, state is always one of the three).
func TestBreakerConcurrentStress(t *testing.T) {
	b := NewBreaker("stress", BreakerConfig{FailureThreshold: 4, OpenFor: time.Millisecond, HalfOpenProbes: 2})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				if err := b.Allow(); err != nil {
					if !errors.Is(err, ErrOpen) {
						t.Errorf("unexpected Allow error: %v", err)
						return
					}
					continue
				}
				b.Record(rng.Intn(3) == 0)
				if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
					t.Errorf("invalid state %d", s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.mu.Lock()
	if b.probes < 0 {
		t.Errorf("probe count went negative: %d", b.probes)
	}
	b.mu.Unlock()
}

func TestBreakerSetPerEndpoint(t *testing.T) {
	s := &BreakerSet{Config: BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour}}
	a, b := s.For("http://a"), s.For("http://b")
	if a == b {
		t.Fatal("distinct endpoints share a breaker")
	}
	if s.For("http://a") != a {
		t.Fatal("same endpoint returned a new breaker")
	}
	if err := a.Allow(); err != nil {
		t.Fatalf("allow: %v", err)
	}
	a.Record(true) // opens a
	if err := a.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("a should be open")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("b must be unaffected: %v", err)
	}
	b.Record(false)
	snaps := s.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "http://a" || snaps[1].Name != "http://b" {
		t.Fatalf("snapshot = %+v", snaps)
	}
	if snaps[0].State != "open" || snaps[1].State != "closed" {
		t.Fatalf("states = %s, %s", snaps[0].State, snaps[1].State)
	}
	var nilSet *BreakerSet
	if nilSet.Snapshot() != nil {
		t.Fatal("nil set snapshot should be nil")
	}
}
