// Package resilience provides the failure-handling primitives shared by
// the portal stack: exponential backoff with jitter, retry budgets, and
// per-endpoint circuit breakers. The paper's portal federates long-running
// grid services across organisations where partial failure is the norm;
// these primitives let clients fail fast against dead backends and retry
// transient rejections without hammering a struggling server.
//
// The package is deliberately stdlib-only so every layer (soap transports,
// core clients, rpc middleware, the webflow ORB) can depend on it without
// cycles.
package resilience

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff describes an exponential backoff schedule with proportional
// jitter. The zero value is usable and means 50ms base, 2s cap, factor 2,
// 50% jitter.
type Backoff struct {
	// Base is the nominal first delay.
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Factor is the per-attempt growth multiplier.
	Factor float64
	// Jitter is the fraction of the delay that is randomised: the actual
	// delay is uniform in [d*(1-Jitter), d]. 0 disables jitter, values
	// above 1 are clamped.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	} else if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// Delay returns the delay before retry number attempt (0-based), jittered
// by rng when non-nil. Deterministic for a given (schedule, rng state).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 - b.Jitter + b.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// Sleep waits for d, returning early with ctx.Err() if the context is
// cancelled first. A non-positive d only polls the context.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Timeout returns the time budget for one call under ctx: the remaining
// time until ctx's deadline, capped at fallback when fallback is positive.
// Without a deadline it returns fallback; 0 therefore means "unbounded".
func Timeout(ctx context.Context, fallback time.Duration) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem < 0 {
			rem = 0
		}
		if fallback <= 0 || rem < fallback {
			return rem
		}
	}
	return fallback
}

// RetryPolicy is a reusable retry budget: how many total attempts a call
// may make and how long to back off between them. One policy may serve
// many concurrent calls; the jitter source is seeded once (deterministic
// when Seed is non-zero, for reproducible chaos runs) and guarded by a
// mutex.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 2 disable retries.
	MaxAttempts int
	// Backoff is the delay schedule between attempts.
	Backoff Backoff
	// Seed seeds the jitter source; 0 seeds from the clock.
	Seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Uint64
}

// Attempts returns the attempt budget (at least 1); nil-safe.
func (p *RetryPolicy) Attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Wait records one retry and sleeps the backoff delay for the given
// 0-based retry index, honouring ctx.
func (p *RetryPolicy) Wait(ctx context.Context, attempt int) error {
	p.retries.Add(1)
	p.mu.Lock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	d := p.Backoff.Delay(attempt, p.rng)
	p.mu.Unlock()
	return Sleep(ctx, d)
}

// Retries reports how many retries (attempts beyond the first) this
// policy has granted; nil-safe.
func (p *RetryPolicy) Retries() uint64 {
	if p == nil {
		return 0
	}
	return p.retries.Load()
}

// ErrOpen is returned by Breaker.Allow when the circuit is open and the
// call should fail fast without touching the endpoint.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState enumerates the classic circuit states.
type BreakerState int32

const (
	// StateClosed: requests flow normally.
	StateClosed BreakerState = iota
	// StateOpen: requests fail fast until the open window elapses.
	StateOpen
	// StateHalfOpen: a bounded number of probes test the endpoint.
	StateHalfOpen
)

// String names the state for logs and the health document.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. The zero value means 5
// consecutive failures to open, a 5s open window, and 1 half-open probe.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the circuit.
	FailureThreshold int
	// OpenFor is how long the circuit stays open before probing.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a closed→open→half-open circuit breaker. Callers bracket
// each attempt with Allow (admission) and Record (outcome); consecutive
// failures open the circuit, the open window rejects instantly, and after
// it elapses a bounded number of probes decide between closing (success)
// and re-opening (failure).
type Breaker struct {
	name string
	cfg  BreakerConfig
	now  func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probes   int
	opens    uint64
	rejected uint64
}

// NewBreaker creates a breaker named for its endpoint.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	return &Breaker{name: name, cfg: cfg.withDefaults(), now: time.Now}
}

// Allow admits or rejects one attempt. A rejection (ErrOpen) must not be
// Recorded; an admission must be followed by exactly one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			b.rejected++
			return ErrOpen
		}
		b.state = StateHalfOpen
		b.probes = 0
	}
	if b.state == StateHalfOpen {
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejected++
			return ErrOpen
		}
		b.probes++
	}
	return nil
}

// Record reports the outcome of an admitted attempt. A half-open probe
// failure re-opens immediately; a probe success closes the circuit.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
	if failure {
		b.fails++
		if b.state == StateHalfOpen || (b.state == StateClosed && b.fails >= b.cfg.FailureThreshold) {
			b.state = StateOpen
			b.openedAt = b.now()
			b.opens++
		}
		return
	}
	b.fails = 0
	if b.state == StateHalfOpen {
		b.state = StateClosed
	}
}

// State reports the current circuit state (open circuits past their
// window still report open until the next Allow probes them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is one breaker's counters as surfaced at /healthz.
type BreakerStats struct {
	Name string `json:"name"`
	// State is the current circuit state name.
	State string `json:"state"`
	// Opens counts closed/half-open → open transitions.
	Opens uint64 `json:"opens"`
	// Rejected counts attempts refused while open.
	Rejected uint64 `json:"rejected"`
	// ConsecutiveFails is the current failure streak.
	ConsecutiveFails int `json:"consecutiveFails"`
}

// Snapshot returns the breaker's counters (weakly consistent).
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Name:             b.name,
		State:            b.state.String(),
		Opens:            b.opens,
		Rejected:         b.rejected,
		ConsecutiveFails: b.fails,
	}
}

// BreakerSet lazily maintains one breaker per endpoint, so a client
// calling several backends isolates their health from each other.
type BreakerSet struct {
	// Config is applied to breakers as they are created.
	Config BreakerConfig

	m sync.Map // endpoint -> *Breaker
}

// For returns the breaker for endpoint, creating it on first use.
func (s *BreakerSet) For(endpoint string) *Breaker {
	if v, ok := s.m.Load(endpoint); ok {
		return v.(*Breaker)
	}
	v, _ := s.m.LoadOrStore(endpoint, NewBreaker(endpoint, s.Config))
	return v.(*Breaker)
}

// Snapshot reports every breaker in the set, ordered by endpoint;
// nil-safe (a nil set reports nothing).
func (s *BreakerSet) Snapshot() []BreakerStats {
	if s == nil {
		return nil
	}
	var out []BreakerStats
	s.m.Range(func(_, v any) bool {
		out = append(out, v.(*Breaker).Snapshot())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
