package batchscript

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/wsdl"
)

func TestGeneratorsSupportDisjointDialects(t *testing.T) {
	iu, sdsc := NewIUGenerator(), NewSDSCGenerator()
	if !iu.Supports(grid.PBS) || !iu.Supports(grid.GRD) || iu.Supports(grid.LSF) {
		t.Errorf("IU supports %v", iu.Supported)
	}
	if !sdsc.Supports(grid.LSF) || !sdsc.Supports(grid.NQS) || sdsc.Supports(grid.PBS) {
		t.Errorf("SDSC supports %v", sdsc.Supported)
	}
	// Together they cover all four systems.
	covered := map[grid.SchedulerKind]bool{}
	for _, k := range append(iu.Supported, sdsc.Supported...) {
		covered[k] = true
	}
	for _, k := range grid.AllSchedulerKinds {
		if !covered[k] {
			t.Errorf("scheduler %s uncovered", k)
		}
	}
}

func TestGenerateUnsupported(t *testing.T) {
	iu := NewIUGenerator()
	_, err := iu.Generate(Request{Scheduler: grid.LSF, Executable: "/bin/date"})
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Errorf("err = %v", err)
	}
	if _, err := iu.Generate(Request{Scheduler: grid.PBS}); err == nil {
		t.Error("missing executable accepted")
	}
	if _, err := (&Generator{Group: "X", Supported: []grid.SchedulerKind{"FAKE"}}).
		Generate(Request{Scheduler: "FAKE", Executable: "/bin/date"}); err == nil {
		t.Error("unknown dialect accepted")
	}
}

// TestScriptRoundTripAllDialects is the generator↔scheduler contract: every
// generated script parses back (via the grid package's dialect parsers) to
// the job specification it encodes.
func TestScriptRoundTripAllDialects(t *testing.T) {
	gens := map[grid.SchedulerKind]*Generator{
		grid.PBS: NewIUGenerator(),
		grid.GRD: NewIUGenerator(),
		grid.LSF: NewSDSCGenerator(),
		grid.NQS: NewSDSCGenerator(),
	}
	for kind, g := range gens {
		req := Request{
			Scheduler:  kind,
			JobName:    "run42",
			Executable: "/usr/local/bin/matmul",
			Arguments:  []string{"512"},
			Stdin:      "input.dat",
			Queue:      "batch",
			Nodes:      8,
			WallTime:   90 * time.Minute,
		}
		script, err := g.Generate(req)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		spec, err := grid.ParseScript(kind, script)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", kind, err, script)
		}
		if spec.Name != "run42" || spec.Queue != "batch" || spec.Nodes != 8 {
			t.Errorf("%s: spec = %+v", kind, spec)
		}
		if spec.WallTime != 90*time.Minute {
			t.Errorf("%s: walltime = %s", kind, spec.WallTime)
		}
		if spec.Executable != "/usr/local/bin/matmul" || len(spec.Args) != 1 || spec.Args[0] != "512" {
			t.Errorf("%s: cmd = %q %q", kind, spec.Executable, spec.Args)
		}
		if spec.Stdin != "input.dat" {
			t.Errorf("%s: stdin = %q", kind, spec.Stdin)
		}
	}
}

// TestPropertyScriptRoundTrip fuzz-checks the same round trip.
func TestPropertyScriptRoundTrip(t *testing.T) {
	gen := &Generator{Group: "test", Supported: grid.AllSchedulerKinds}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		kind := grid.AllSchedulerKinds[r.Intn(len(grid.AllSchedulerKinds))]
		req := Request{
			Scheduler:  kind,
			JobName:    []string{"j1", "run-2", "x"}[r.Intn(3)],
			Executable: []string{"/bin/date", "/usr/local/bin/gaussian"}[r.Intn(2)],
			Queue:      []string{"", "batch", "all.q"}[r.Intn(3)],
			Nodes:      1 + r.Intn(64),
			// Minute granularity: LSF's -W directive is minutes.
			WallTime: time.Duration(1+r.Intn(600)) * time.Minute,
		}
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			req.Arguments = append(req.Arguments, []string{"a", "128", "-v"}[r.Intn(3)])
		}
		script, err := gen.Generate(req)
		if err != nil {
			return false
		}
		spec, err := grid.ParseScript(kind, script)
		if err != nil {
			t.Logf("seed %d (%s): %v", seed, kind, err)
			return false
		}
		if spec.Name != req.JobName || spec.Queue != req.Queue ||
			spec.Executable != req.Executable || spec.WallTime != req.WallTime {
			t.Logf("seed %d (%s): spec %+v vs req %+v", seed, kind, spec, req)
			return false
		}
		// GRD omits -pe for single-node jobs; parser defaults to 1.
		if spec.Nodes != req.Nodes {
			t.Logf("seed %d (%s): nodes %d vs %d", seed, kind, spec.Nodes, req.Nodes)
			return false
		}
		if len(req.Arguments) == 0 {
			return len(spec.Args) == 0
		}
		return reflect.DeepEqual(spec.Args, req.Arguments)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestImplementationsCompatibleWithAgreedContract(t *testing.T) {
	// Both deployed services expose interfaces compatible with the agreed
	// one (they share the contract object here, but the check is what a
	// client would run against fetched WSDL).
	agreed := Contract()
	for _, g := range []*Generator{NewIUGenerator(), NewSDSCGenerator()} {
		svc := NewService(g)
		if err := svc.Validate(); err != nil {
			t.Errorf("%s: %v", g.Group, err)
		}
		if !wsdl.Compatible(agreed, svc.Contract) {
			t.Errorf("%s service incompatible with agreed contract", g.Group)
		}
	}
}

// TestCrossGroupInterop reproduces the paper's exercise end to end: both
// groups publish to UDDI; a client searches by queuing system, binds to
// whichever provider supports it, and generates a script through either
// service.
func TestCrossGroupInterop(t *testing.T) {
	reg := uddi.NewRegistry()
	iuBiz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "IU Community Grids Lab"})
	sdscBiz, _ := reg.SaveBusiness(uddi.BusinessEntity{Name: "SDSC"})

	// Two SSPs, one per group.
	iuSSP := core.NewProvider("iu-ssp", "loopback://iu")
	iuSSP.MustRegister(NewService(NewIUGenerator()))
	sdscSSP := core.NewProvider("sdsc-ssp", "loopback://sdsc")
	sdscSSP.MustRegister(NewService(NewSDSCGenerator()))
	tr := &soap.LoopbackTransport{Endpoints: map[string]soap.EnvelopeHandler{
		"loopback://iu/BatchScriptGenerator":   iuSSP.Dispatch,
		"loopback://sdsc/BatchScriptGenerator": sdscSSP.Dispatch,
	}}

	if _, err := PublishUDDI(reg, iuBiz.Key, "IU Batch Script Generator",
		"loopback://iu/BatchScriptGenerator", NewIUGenerator()); err != nil {
		t.Fatal(err)
	}
	if _, err := PublishUDDI(reg, sdscBiz.Key, "SDSC Batch Script Generator",
		"loopback://sdsc/BatchScriptGenerator", NewSDSCGenerator()); err != nil {
		t.Fatal(err)
	}

	// Both registered under one tModel.
	tm, ok := reg.TModelByName(TModelName)
	if !ok {
		t.Fatal("tModel missing")
	}
	all := reg.FindServiceByTModel(tm.Key)
	if len(all) != 2 {
		t.Fatalf("implementations = %d", len(all))
	}

	// Search for NQS support: only SDSC.
	nqs := reg.FindByParsedConvention("NQS")
	if len(nqs) != 1 || !strings.HasPrefix(nqs[0].Name, "SDSC") {
		t.Fatalf("NQS providers = %v", nqs)
	}
	// Bind to it and create a script (the cross-group flow).
	cl := NewClient(tr, nqs[0].Bindings[0].AccessPoint)
	script, err := cl.GenerateScript(Request{
		Scheduler: grid.NQS, JobName: "interop", Executable: "/bin/date", Nodes: 2, WallTime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "#QSUB -r interop") {
		t.Errorf("script:\n%s", script)
	}
	// The same client code works against the IU provider for PBS.
	pbs := reg.FindByParsedConvention("PBS")
	cl2 := NewClient(tr, pbs[0].Bindings[0].AccessPoint)
	script, err = cl2.GenerateScript(Request{
		Scheduler: grid.PBS, JobName: "interop", Executable: "/bin/date", Nodes: 2, WallTime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "#PBS -N interop") {
		t.Errorf("script:\n%s", script)
	}
	// Asking IU for LSF fails with a portal error naming the supported set.
	_, err = cl2.GenerateScript(Request{Scheduler: grid.LSF, Executable: "/bin/date"})
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeBadRequest || !strings.Contains(pe.Message, "GRD") {
		t.Errorf("err = %v", err)
	}
}

func TestServiceListAndSupports(t *testing.T) {
	p := core.NewProvider("ssp", "loopback://x")
	p.MustRegister(NewService(NewSDSCGenerator()))
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "x")
	scheds, err := cl.ListSchedulers()
	if err != nil || len(scheds) != 2 || scheds[0] != "LSF" || scheds[1] != "NQS" {
		t.Errorf("schedulers = %v, %v", scheds, err)
	}
	ok, err := cl.SupportsScheduler("lsf") // case-insensitive
	if err != nil || !ok {
		t.Errorf("supports lsf = %v, %v", ok, err)
	}
	ok, err = cl.SupportsScheduler("PBS")
	if err != nil || ok {
		t.Errorf("supports PBS = %v, %v", ok, err)
	}
}

func TestBindWSDLCompatibilityGate(t *testing.T) {
	p := core.NewProvider("ssp", "http://provider.example.edu")
	svc := NewService(NewIUGenerator())
	p.MustRegister(svc)
	good := p.WSDLFor(svc)
	if _, err := BindWSDL(nil, good); err != nil {
		t.Errorf("compatible WSDL rejected: %v", err)
	}
	// A drifted provider (renamed parameter) is rejected at bind time.
	drifted := strings.Replace(good, `name="scheduler"`, `name="queueSystem"`, 1)
	if _, err := BindWSDL(nil, drifted); err == nil || !strings.Contains(err.Error(), "not compatible") {
		t.Errorf("drifted WSDL err = %v", err)
	}
	if _, err := BindWSDL(nil, "garbage"); err == nil {
		t.Error("garbage WSDL accepted")
	}
}

func TestCoupledServiceRequiresContext(t *testing.T) {
	store := contextmgr.NewStore()
	p := core.NewProvider("ssp", "loopback://x")
	p.MustRegister(NewCoupledService(NewIUGenerator(), store))
	cl := core.NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "x", CoupledContract())

	args := []soap.Value{
		soap.Str("user", "hotpage-user"), soap.Str("problem", "generic"), soap.Str("session", "tmp1"),
		soap.Str("scheduler", "PBS"), soap.Str("jobName", "j"), soap.Str("executable", "/bin/date"),
		soap.StrArray("arguments", nil), soap.Str("stdin", ""), soap.Str("queue", ""),
		soap.Int("nodes", 1), soap.Int("wallTimeSeconds", 60),
	}
	// Without a context: rejected (the HotPage-user problem).
	_, err := cl.Call("generateScript", args...)
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeNoSuchResource || !strings.Contains(pe.Message, "placeholder") {
		t.Fatalf("err = %v", err)
	}
	// After creating the placeholder chain, generation succeeds and the
	// script is archived in the session.
	if err := store.CreatePlaceholder("hotpage-user", "generic", "tmp1"); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Call("generateScript", args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.ReturnText("script"), "#PBS") {
		t.Errorf("script = %q", resp.ReturnText("script"))
	}
	props, err := store.ListProps([]string{"hotpage-user", "generic", "tmp1"})
	if err != nil || len(props) == 0 {
		t.Errorf("session props = %v, %v (script not recorded)", props, err)
	}
}

func TestGeneratedScriptRunsOnTestbed(t *testing.T) {
	// Full stack: generate a script with the SDSC service, parse it with
	// the LSF dialect, submit to the simulated bluehorizon, and collect
	// output.
	g := grid.NewTestbed()
	script, err := NewSDSCGenerator().Generate(Request{
		Scheduler: grid.LSF, JobName: "e2e", Executable: "/bin/echo",
		Arguments: []string{"end", "to", "end"}, Queue: "normal", Nodes: 2, WallTime: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := grid.ParseScript(grid.LSF, script)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := g.Host("bluehorizon.sdsc.edu")
	id, err := h.Scheduler.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	h.Scheduler.Drain()
	job, _ := h.Scheduler.Status(id)
	if job.State != grid.StateCompleted || job.Result.Stdout != "end to end\n" {
		t.Errorf("job = %+v", job)
	}
}
