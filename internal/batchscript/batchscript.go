// Package batchscript implements the interoperable Batch Script Generation
// service of Section 3.4 — "the crucial test of Web Services for portals".
// Exactly as the paper describes, the two groups "agreed to a common
// service interface, implemented it separately with support for different
// queuing systems, entered information into a UDDI repository and developed
// clients that could list services supported by each group and search for
// services that support particular queuing systems. Scripts could then be
// created through either service."
//
// Contract() is the agreed WSDL interface. NewIUGenerator (PBS and GRD) and
// NewSDSCGenerator (LSF and NQS) are the two independent implementations.
// Generated scripts round-trip through the grid package's scheduler dialect
// parsers, which is the property test tying the generator to the substrate.
package batchscript

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/wsdl"
)

// ServiceNS is the agreed service namespace. Both implementations use it;
// diverging from it is an interoperability break CheckCompatible catches.
const ServiceNS = "urn:gce:batchscript"

// TModelName is the UDDI tModel under which implementations register.
const TModelName = "gce:BatchScriptGenerator"

// Request carries the parameters of one script generation.
type Request struct {
	// Scheduler is the queuing system dialect.
	Scheduler grid.SchedulerKind
	// JobName names the job.
	JobName string
	// Executable is the program path.
	Executable string
	// Arguments are the program arguments.
	Arguments []string
	// Stdin optionally redirects input from a file.
	Stdin string
	// Queue optionally names the target queue.
	Queue string
	// Nodes is the processor count.
	Nodes int
	// WallTime is the requested wallclock limit.
	WallTime time.Duration
}

// generateParams is the agreed parameter list of generateScript, shared
// by the standalone and context-coupled descriptor tables.
func generateParams() []wsdl.Param {
	return []wsdl.Param{
		rpc.Str("scheduler"), rpc.Str("jobName"), rpc.Str("executable"),
		rpc.Strs("arguments"), rpc.Str("stdin"), rpc.Str("queue"),
		rpc.Int("nodes"), rpc.Int("wallTimeSeconds"),
	}
}

// def is the declarative operation table of the agreed interface bound to
// one group's generator.
func def(g *Generator) *rpc.Def {
	return &rpc.Def{
		Name: "BatchScriptGenerator",
		NS:   ServiceNS,
		Doc:  "Generates batch queuing-system scripts (the GCE common interface).",
		Ops: []rpc.Op{
			{
				Name:       "listSchedulers",
				Idempotent: true,
				Doc:        "Lists the queuing systems this implementation supports.",
				Out:        []wsdl.Param{rpc.Strs("schedulers")},
				Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
					return rpc.Ret(g.SchedulerNames()), nil
				},
			},
			{
				Name:       "supportsScheduler",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("scheduler")},
				Out:        []wsdl.Param{rpc.Bool("supported")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(g.Supports(grid.SchedulerKind(strings.ToUpper(in.Str("scheduler"))))), nil
				},
			},
			{
				Name:       "generateScript",
				Idempotent: true,
				Doc:        "Generates a batch script for the given scheduler.",
				In:         generateParams(),
				Out:        []wsdl.Param{rpc.Str("script")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					script, err := g.Generate(requestFromArgs(in))
					if err != nil {
						return nil, soap.NewPortalError("BatchScriptGenerator", soap.ErrCodeBadRequest, "%v", err)
					}
					return rpc.Ret(script), nil
				},
			},
		},
	}
}

// Contract returns the agreed batch script generation interface.
func Contract() *wsdl.Interface {
	return def(nil).Interface()
}

// Generator is one group's implementation: a set of supported dialects and
// a house style for the emitted script header.
type Generator struct {
	// Group names the implementing organisation (appears in the script
	// comment header).
	Group string
	// Supported lists the queuing systems this generator handles.
	Supported []grid.SchedulerKind
}

// NewIUGenerator returns the IU implementation supporting PBS and GRD.
func NewIUGenerator() *Generator {
	return &Generator{Group: "IU Gateway", Supported: []grid.SchedulerKind{grid.PBS, grid.GRD}}
}

// NewSDSCGenerator returns the SDSC implementation supporting LSF and NQS.
func NewSDSCGenerator() *Generator {
	return &Generator{Group: "SDSC HotPage", Supported: []grid.SchedulerKind{grid.LSF, grid.NQS}}
}

// Supports reports whether the generator handles a dialect.
func (g *Generator) Supports(kind grid.SchedulerKind) bool {
	for _, k := range g.Supported {
		if k == kind {
			return true
		}
	}
	return false
}

// SchedulerNames returns the supported dialect names, sorted.
func (g *Generator) SchedulerNames() []string {
	out := make([]string, 0, len(g.Supported))
	for _, k := range g.Supported {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// Generate produces a batch script for the request.
func (g *Generator) Generate(req Request) (string, error) {
	if !g.Supports(req.Scheduler) {
		return "", fmt.Errorf("batchscript: %s does not support scheduler %s (supported: %s)",
			g.Group, req.Scheduler, strings.Join(g.SchedulerNames(), ", "))
	}
	if req.Executable == "" {
		return "", fmt.Errorf("batchscript: request has no executable")
	}
	if req.Nodes <= 0 {
		req.Nodes = 1
	}
	if req.JobName == "" {
		req.JobName = "portaljob"
	}
	var b strings.Builder
	b.WriteString("#!/bin/sh\n")
	fmt.Fprintf(&b, "# Generated by the %s batch script service\n", g.Group)
	switch req.Scheduler {
	case grid.PBS:
		fmt.Fprintf(&b, "#PBS -N %s\n", req.JobName)
		if req.Queue != "" {
			fmt.Fprintf(&b, "#PBS -q %s\n", req.Queue)
		}
		directives := []string{fmt.Sprintf("nodes=%d", req.Nodes)}
		if req.WallTime > 0 {
			directives = append(directives, "walltime="+grid.FormatHMS(req.WallTime))
		}
		fmt.Fprintf(&b, "#PBS -l %s\n", strings.Join(directives, ","))
	case grid.LSF:
		fmt.Fprintf(&b, "#BSUB -J %s\n", req.JobName)
		if req.Queue != "" {
			fmt.Fprintf(&b, "#BSUB -q %s\n", req.Queue)
		}
		fmt.Fprintf(&b, "#BSUB -n %d\n", req.Nodes)
		if req.WallTime > 0 {
			fmt.Fprintf(&b, "#BSUB -W %d\n", int(req.WallTime/time.Minute))
		}
	case grid.NQS:
		fmt.Fprintf(&b, "#QSUB -r %s\n", req.JobName)
		if req.Queue != "" {
			fmt.Fprintf(&b, "#QSUB -q %s\n", req.Queue)
		}
		fmt.Fprintf(&b, "#QSUB -lP %d\n", req.Nodes)
		if req.WallTime > 0 {
			fmt.Fprintf(&b, "#QSUB -lT %d\n", int(req.WallTime/time.Second))
		}
	case grid.GRD:
		fmt.Fprintf(&b, "#$ -N %s\n", req.JobName)
		if req.Queue != "" {
			fmt.Fprintf(&b, "#$ -q %s\n", req.Queue)
		}
		if req.Nodes > 1 {
			fmt.Fprintf(&b, "#$ -pe mpi %d\n", req.Nodes)
		}
		if req.WallTime > 0 {
			fmt.Fprintf(&b, "#$ -l h_rt=%d\n", int(req.WallTime/time.Second))
		}
	default:
		return "", fmt.Errorf("batchscript: unknown scheduler %q", req.Scheduler)
	}
	b.WriteString(req.Executable)
	for _, a := range req.Arguments {
		b.WriteByte(' ')
		b.WriteString(a)
	}
	if req.Stdin != "" {
		b.WriteString(" < " + req.Stdin)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// NewService deploys a generator behind the agreed contract, built from
// the declarative operation table.
func NewService(g *Generator) *core.Service {
	return def(g).MustBuild()
}

func requestFromArgs(in rpc.Args) Request {
	return Request{
		Scheduler:  grid.SchedulerKind(strings.ToUpper(in.Str("scheduler"))),
		JobName:    in.Str("jobName"),
		Executable: in.Str("executable"),
		Arguments:  in.Strings("arguments"),
		Stdin:      in.Str("stdin"),
		Queue:      in.Str("queue"),
		Nodes:      in.Int("nodes"),
		WallTime:   time.Duration(in.Int("wallTimeSeconds")) * time.Second,
	}
}

// Client is a typed proxy to any implementation of the agreed contract.
type Client struct {
	c *core.Client
}

// NewClient binds to a batch script service endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// Use adds a client interceptor (e.g. a SAML-attaching session).
func (cl *Client) Use(i core.ClientInterceptor) *Client {
	cl.c.Use(i)
	return cl
}

// BindWSDL binds by parsing a provider's WSDL document, verifying it is
// compatible with the agreed contract first — the discipline that made the
// IU and SDSC implementations interchangeable.
func BindWSDL(t soap.Transport, wsdlDoc string) (*Client, error) {
	svc, err := wsdl.Parse(wsdlDoc)
	if err != nil {
		return nil, err
	}
	if problems := wsdl.CheckCompatible(Contract(), svc.Interface); len(problems) > 0 {
		return nil, fmt.Errorf("batchscript: %s is not compatible with the agreed interface: %s",
			svc.Name, problems[0])
	}
	return &Client{c: core.NewClient(t, svc.Endpoint, Contract())}, nil
}

// ListSchedulers lists the provider's supported queuing systems.
func (cl *Client) ListSchedulers() ([]string, error) {
	return cl.c.CallStrings("listSchedulers")
}

// SupportsScheduler asks the provider about one queuing system.
func (cl *Client) SupportsScheduler(name string) (bool, error) {
	resp, err := cl.c.Call("supportsScheduler", soap.Str("scheduler", name))
	if err != nil {
		return false, err
	}
	return resp.ReturnText("supported") == "true", nil
}

// GenerateScript requests a script.
func (cl *Client) GenerateScript(req Request) (string, error) {
	return cl.c.CallText("generateScript",
		soap.Str("scheduler", string(req.Scheduler)),
		soap.Str("jobName", req.JobName),
		soap.Str("executable", req.Executable),
		soap.StrArray("arguments", req.Arguments),
		soap.Str("stdin", req.Stdin),
		soap.Str("queue", req.Queue),
		soap.Int("nodes", req.Nodes),
		soap.Int("wallTimeSeconds", int(req.WallTime/time.Second)))
}

// PublishUDDI registers an implementation in a UDDI registry with the
// string-convention capability description, returning the service key. The
// tModel named TModelName is created if absent.
func PublishUDDI(reg *uddi.Registry, businessKey, serviceName, endpoint string, g *Generator) (string, error) {
	tm, ok := reg.TModelByName(TModelName)
	if !ok {
		var err error
		tm, err = reg.SaveTModel(uddi.TModel{
			Name:        TModelName,
			Description: "Common batch script generation interface agreed through the GCE",
			OverviewURL: endpoint + "?wsdl",
		})
		if err != nil {
			return "", err
		}
	}
	svc, err := reg.SaveService(uddi.BusinessService{
		BusinessKey: businessKey,
		Name:        serviceName,
		Description: uddi.DescribeCapabilities(g.Group+" batch script generation.", g.SchedulerNames()),
		Bindings: []uddi.BindingTemplate{{
			AccessPoint: endpoint,
			TModelKeys:  []string{tm.Key},
		}},
	})
	if err != nil {
		return "", err
	}
	return svc.Key, nil
}

// --- Context-coupled variant (the S3.3 overhead subject) ----------------------

// CoupledNS is the namespace of the context-coupled service variant.
const CoupledNS = "urn:gce:batchscript-coupled"

// CoupledContract is the generator as Gateway originally built it:
// "initially tightly integrated with the context manager and job
// submission services" — every call must name a user/problem/session
// context, and the generated script is recorded there. Stateless callers
// (HotPage users) must create placeholder contexts first, which is the
// "unnecessary overhead" the S3.3 benchmark measures.
func CoupledContract() *wsdl.Interface {
	return coupledDef(nil, nil).Interface()
}

// coupledDef is the context-coupled descriptor table: the agreed
// generateScript operation prefixed with the mandatory context path.
func coupledDef(g *Generator, store *contextmgr.Store) *rpc.Def {
	return &rpc.Def{
		Name: "ContextCoupledScriptGenerator",
		NS:   CoupledNS,
		Doc:  "Batch script generation tightly integrated with the context manager (legacy Gateway design).",
		Ops: []rpc.Op{{
			Name: "generateScript",
			Doc:  "Generates a batch script for the given scheduler.",
			In:   append(rpc.StrParams("user", "problem", "session"), generateParams()...),
			Out:  []wsdl.Param{rpc.Str("script")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				path := []string{in.Str("user"), in.Str("problem"), in.Str("session")}
				if !store.Exists(path) {
					return nil, soap.NewPortalError("ContextCoupledScriptGenerator", soap.ErrCodeNoSuchResource,
						"no session context %s: stateless callers must create a placeholder context first",
						strings.Join(path, "/"))
				}
				script, err := g.Generate(requestFromArgs(in))
				if err != nil {
					return nil, soap.NewPortalError("ContextCoupledScriptGenerator", soap.ErrCodeBadRequest, "%v", err)
				}
				key := "script-" + strconv.Itoa(int(time.Now().UnixNano()%1e9))
				if err := store.SetProp(path, key, script); err != nil {
					return nil, soap.NewPortalError("ContextCoupledScriptGenerator", soap.ErrCodeInternal, "%v", err)
				}
				return rpc.Ret(script), nil
			},
		}},
	}
}

// NewCoupledService deploys the context-coupled generator: the script is
// stored as a session property, and the session context must exist.
func NewCoupledService(g *Generator, store *contextmgr.Store) *core.Service {
	return coupledDef(g, store).MustBuild()
}
