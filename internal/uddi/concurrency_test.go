package uddi

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentMixedWorkload hammers one registry with
// publishers, inquirers, and deleters at once. Run under -race (the CI
// race job does) this pins the sharded locking; the functional assertions
// are that every datum read is internally consistent and the final counts
// balance what the writers did.
func TestRegistryConcurrentMixedWorkload(t *testing.T) {
	r := NewRegistry()
	biz, _ := r.SaveBusiness(BusinessEntity{Name: "Shared Host"})
	tm, _ := r.SaveTModel(TModel{Name: "gce:BatchScriptGenerator"})

	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mine []string // service keys this worker published and kept
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1:
					s, err := r.SaveService(BusinessService{
						BusinessKey: biz.Key,
						Name:        fmt.Sprintf("svc-g%d-i%d", g, i),
						Bindings:    []BindingTemplate{{AccessPoint: "http://x", TModelKeys: []string{tm.Key}}},
					})
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, s.Key)
				case 2:
					// Inquiries against a moving target: results must be
					// well-formed, not any particular size.
					for _, s := range r.FindServiceByTModel(tm.Key) {
						if s.Key == "" || len(s.Bindings) == 0 {
							errs <- fmt.Errorf("torn service read: %+v", s)
							return
						}
					}
					if _, err := r.GetBusiness(biz.Key); err != nil {
						errs <- err
						return
					}
				default:
					if len(mine) > 0 {
						k := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						if err := r.DeleteService(k); err != nil {
							errs <- err
							return
						}
					}
				}
			}
			// Everything this worker kept must be retrievable and intact.
			for _, k := range mine {
				s, err := r.GetServiceDetail(k)
				if err != nil {
					errs <- err
					return
				}
				if s.BusinessKey != biz.Key {
					errs <- fmt.Errorf("service %s lost its business key", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Counts balance: per worker, ceil(iters/2) publishes happen at i%4 in
	// {0,1}; deletes pop one kept key at i%4 in {2,3}... the exact survivor
	// count is deterministic per worker, so recompute it.
	perWorker := 0
	kept := 0
	for i := 0; i < iters; i++ {
		switch i % 4 {
		case 0, 1:
			perWorker++
			kept++
		case 3:
			if kept > 0 {
				perWorker--
				kept--
			}
		}
	}
	_, services, _ := r.Counts()
	if want := perWorker * workers; services != want {
		t.Fatalf("services = %d, want %d", services, want)
	}
}
