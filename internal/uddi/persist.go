package uddi

import (
	"encoding/json"
	"fmt"

	"repro/internal/persist"
)

// WAL record ops. Mutation records carry the key-allocation sequence at the
// time they were logged so recovery restores it (the key-reuse bugfix: a
// rebooted registry must never mint a key an earlier incarnation already
// handed out). Snapshot dumps reuse the same ops, plus opSeq so an
// entity-free registry still recovers its sequence.
const (
	opBusiness   = "uddi.business"
	opTModel     = "uddi.tmodel"
	opService    = "uddi.service"
	opDelService = "uddi.delservice"
	opSeq        = "uddi.seq"
)

// record is the union WAL record for every registry mutation. Exactly one
// entity field is set per mutation op; Seq rides along on all of them.
type record struct {
	Seq      int64            `json:"seq,omitempty"`
	Business *BusinessEntity  `json:"business,omitempty"`
	TModel   *TModel          `json:"tModel,omitempty"`
	Service  *BusinessService `json:"service,omitempty"`
	Key      string           `json:"key,omitempty"`
}

// Persist replays st into the registry (which should be empty) and installs
// it as the registry's durability log: from here on every Save/Delete is
// acknowledged only after its record is fsynced. Call once, before the
// registry starts serving.
func (r *Registry) Persist(st persist.Store) error {
	if err := st.Replay(r.apply); err != nil {
		return err
	}
	r.persist = persist.Bind(st, r.dump)
	return nil
}

// ClosePersist flushes and closes the attached store, if any. The registry
// must have stopped serving writes.
func (r *Registry) ClosePersist() error {
	return r.persist.Close()
}

// CompactPersist forces one synchronous compaction (tests, operator hooks).
// Routine compaction is automatic and needs no calls.
func (r *Registry) CompactPersist() error {
	return r.persist.Compact()
}

// apply is the replay function: stored entities are upserted by key, so
// replaying a record that is also reflected in a snapshot is harmless, and
// the recovered sequence is the max over every record seen.
func (r *Registry) apply(op string, data []byte) error {
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("uddi: replay %s: %w", op, err)
	}
	if rec.Seq > r.seq.Load() {
		r.seq.Store(rec.Seq)
	}
	switch op {
	case opBusiness:
		if rec.Business != nil {
			r.businesses.Store(rec.Business.Key, rec.Business)
		}
	case opTModel:
		if rec.TModel != nil {
			r.tmodels.Store(rec.TModel.Key, rec.TModel)
		}
	case opService:
		if rec.Service != nil {
			r.services.Store(rec.Service.Key, rec.Service)
		}
	case opDelService:
		r.services.Delete(rec.Key)
	case opSeq:
		// Sequence handled above.
	default:
		// Unknown op from a newer writer: skip rather than refuse to boot.
	}
	return nil
}

// dump re-emits current state for a compacting snapshot. The sequence goes
// first, captured before the entity walk: an entity published concurrently
// may carry a higher Seq in its own record, and replay takes the max.
func (r *Registry) dump(add func(op string, data []byte) error) error {
	if err := persist.AddJSON(add, opSeq, record{Seq: r.seq.Load()}); err != nil {
		return err
	}
	var err error
	r.businesses.Range(func(_ string, b *BusinessEntity) bool {
		err = persist.AddJSON(add, opBusiness, record{Business: b})
		return err == nil
	})
	if err != nil {
		return err
	}
	r.tmodels.Range(func(_ string, t *TModel) bool {
		err = persist.AddJSON(add, opTModel, record{TModel: t})
		return err == nil
	})
	if err != nil {
		return err
	}
	r.services.Range(func(_ string, s *BusinessService) bool {
		err = persist.AddJSON(add, opService, record{Service: s})
		return err == nil
	})
	return err
}
