package uddi

import (
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// ServiceNS is the namespace of the UDDI registry's own SOAP interface.
const ServiceNS = "urn:gce:uddi"

// def is the declarative operation table of the registry service: a
// compact publish + inquiry API shaped like UDDI v2's save_xxx/find_xxx
// messages.
func def(r *Registry) *rpc.Def {
	fail := func(code, format string, a ...interface{}) error {
		return soap.NewPortalError("UDDIRegistry", code, format, a...)
	}
	return &rpc.Def{
		Name: "UDDIRegistry",
		NS:   ServiceNS,
		Doc:  "UDDI-style publish and inquiry API for portal services.",
		Ops: []rpc.Op{
			{
				Name: "saveBusiness",
				Doc:  "Publishes a business entity; returns its key.",
				In:   []wsdl.Param{rpc.Str("name"), rpc.Str("description")},
				Out:  []wsdl.Param{rpc.Str("businessKey")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					b, err := r.SaveBusiness(BusinessEntity{Name: in.Str("name"), Description: in.Str("description")})
					if err != nil {
						return nil, fail(soap.ErrCodeInternal, "%v", err)
					}
					return rpc.Ret(b.Key), nil
				},
			},
			{
				Name: "saveTModel",
				Doc:  "Publishes a tModel pointing at a WSDL interface document.",
				In:   []wsdl.Param{rpc.Str("name"), rpc.Str("description"), rpc.Str("overviewURL")},
				Out:  []wsdl.Param{rpc.Str("tModelKey")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					t, err := r.SaveTModel(TModel{
						Name:        in.Str("name"),
						Description: in.Str("description"),
						OverviewURL: in.Str("overviewURL"),
					})
					if err != nil {
						return nil, fail(soap.ErrCodeInternal, "%v", err)
					}
					return rpc.Ret(t.Key), nil
				},
			},
			{
				Name: "saveService",
				Doc:  "Publishes a service with one binding template.",
				In: []wsdl.Param{rpc.Str("businessKey"), rpc.Str("name"), rpc.Str("description"),
					rpc.Str("accessPoint"), rpc.Strs("tModelKeys")},
				Out: []wsdl.Param{rpc.Str("serviceKey")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					s, err := r.SaveService(BusinessService{
						BusinessKey: in.Str("businessKey"),
						Name:        in.Str("name"),
						Description: in.Str("description"),
						Bindings: []BindingTemplate{{
							AccessPoint: in.Str("accessPoint"),
							TModelKeys:  in.Strings("tModelKeys"),
						}},
					})
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					return rpc.Ret(s.Key), nil
				},
			},
			{
				Name: "deleteService",
				In:   []wsdl.Param{rpc.Str("serviceKey")},
				Out:  []wsdl.Param{rpc.Bool("deleted")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					if err := r.DeleteService(in.Str("serviceKey")); err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name:       "findBusiness",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("name")},
				Out:        []wsdl.Param{rpc.XML("businessList")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					list := xmlutil.New("businessList")
					for _, b := range r.FindBusiness(in.Str("name")) {
						be := xmlutil.New("businessEntity").SetAttr("businessKey", b.Key)
						be.AddText("name", b.Name)
						be.AddText("description", b.Description)
						list.Add(be)
					}
					return rpc.Ret(list), nil
				},
			},
			{
				Name:       "findService",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("businessKey"), rpc.Str("name")},
				Out:        []wsdl.Param{rpc.XML("serviceList")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(serviceList(r.FindService(in.Str("businessKey"), in.Str("name")))), nil
				},
			},
			{
				Name:       "findServiceByTModel",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("tModelKey")},
				Out:        []wsdl.Param{rpc.XML("serviceList")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(serviceList(r.FindServiceByTModel(in.Str("tModelKey")))), nil
				},
			},
			{
				Name:       "findByDescription",
				Idempotent: true,
				Doc:        "Substring search over service descriptions: the string-convention capability lookup.",
				In:         []wsdl.Param{rpc.Str("pattern")},
				Out:        []wsdl.Param{rpc.XML("serviceList")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					return rpc.Ret(serviceList(r.FindByConvention(in.Str("pattern")))), nil
				},
			},
			{
				Name:       "getServiceDetail",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("serviceKey")},
				Out:        []wsdl.Param{rpc.XML("service")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					s, err := r.GetServiceDetail(in.Str("serviceKey"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(serviceElement(s)), nil
				},
			},
			{
				Name:       "getTModel",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("tModelKey")},
				Out:        []wsdl.Param{rpc.XML("tModel")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					t, err := r.GetTModel(in.Str("tModelKey"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					el := xmlutil.New("tModel").SetAttr("tModelKey", t.Key)
					el.AddText("name", t.Name)
					el.AddText("description", t.Description)
					el.AddText("overviewURL", t.OverviewURL)
					return rpc.Ret(el), nil
				},
			},
		},
	}
}

// Contract returns the WSDL interface of the registry service.
func Contract() *wsdl.Interface {
	return def(nil).Interface()
}

// serviceElement renders a BusinessService for the wire.
func serviceElement(s *BusinessService) *xmlutil.Element {
	el := xmlutil.New("businessService").
		SetAttr("serviceKey", s.Key).
		SetAttr("businessKey", s.BusinessKey)
	el.AddText("name", s.Name)
	el.AddText("description", s.Description)
	for _, b := range s.Bindings {
		bt := xmlutil.New("bindingTemplate").SetAttr("bindingKey", b.Key)
		bt.AddText("accessPoint", b.AccessPoint)
		if b.Description != "" {
			bt.AddText("description", b.Description)
		}
		for _, tk := range b.TModelKeys {
			bt.AddText("tModelKey", tk)
		}
		el.Add(bt)
	}
	return el
}

// ServiceFromElement parses a wire businessService element.
func ServiceFromElement(el *xmlutil.Element) *BusinessService {
	s := &BusinessService{
		Key:         el.AttrDefault("serviceKey", ""),
		BusinessKey: el.AttrDefault("businessKey", ""),
		Name:        el.ChildText("name"),
		Description: el.ChildText("description"),
	}
	for _, bt := range el.ChildrenNamed("bindingTemplate") {
		b := BindingTemplate{
			Key:         bt.AttrDefault("bindingKey", ""),
			AccessPoint: bt.ChildText("accessPoint"),
			Description: bt.ChildText("description"),
		}
		for _, tk := range bt.ChildrenNamed("tModelKey") {
			b.TModelKeys = append(b.TModelKeys, tk.Text)
		}
		s.Bindings = append(s.Bindings, b)
	}
	return s
}

func serviceList(services []*BusinessService) *xmlutil.Element {
	list := xmlutil.New("serviceList")
	for _, s := range services {
		list.Add(serviceElement(s))
	}
	return list
}

// ServicesFromList parses a wire serviceList element.
func ServicesFromList(el *xmlutil.Element) []*BusinessService {
	var out []*BusinessService
	for _, c := range el.ChildrenNamed("businessService") {
		out = append(out, ServiceFromElement(c))
	}
	return out
}

// NewService wraps a Registry as a deployable core.Service built from the
// declarative operation table.
func NewService(r *Registry) *core.Service {
	return def(r).MustBuild()
}

// Client is a typed proxy to a remote UDDI registry service.
type Client struct {
	c *core.Client
}

// NewClient binds a UDDI client to the registry endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// SaveBusiness publishes a business entity and returns its key.
func (cl *Client) SaveBusiness(name, description string) (string, error) {
	return cl.c.CallText("saveBusiness", soap.Str("name", name), soap.Str("description", description))
}

// SaveTModel publishes an interface tModel and returns its key.
func (cl *Client) SaveTModel(name, description, overviewURL string) (string, error) {
	return cl.c.CallText("saveTModel",
		soap.Str("name", name), soap.Str("description", description), soap.Str("overviewURL", overviewURL))
}

// SaveService publishes a service with one binding and returns its key.
func (cl *Client) SaveService(businessKey, name, description, accessPoint string, tModelKeys []string) (string, error) {
	return cl.c.CallText("saveService",
		soap.Str("businessKey", businessKey),
		soap.Str("name", name),
		soap.Str("description", description),
		soap.Str("accessPoint", accessPoint),
		soap.StrArray("tModelKeys", tModelKeys))
}

// DeleteService removes a published service.
func (cl *Client) DeleteService(serviceKey string) error {
	_, err := cl.c.Call("deleteService", soap.Str("serviceKey", serviceKey))
	return err
}

// FindService lists services by business and name pattern.
func (cl *Client) FindService(businessKey, name string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXMLCopy("findService", soap.Str("businessKey", businessKey), soap.Str("name", name))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// FindServiceByTModel lists services implementing an interface tModel.
func (cl *Client) FindServiceByTModel(tModelKey string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXMLCopy("findServiceByTModel", soap.Str("tModelKey", tModelKey))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// FindByDescription performs the string-convention capability search.
func (cl *Client) FindByDescription(pattern string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXMLCopy("findByDescription", soap.Str("pattern", pattern))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// GetServiceDetail fetches one service by key.
func (cl *Client) GetServiceDetail(serviceKey string) (*BusinessService, error) {
	doc, err := cl.c.CallXMLCopy("getServiceDetail", soap.Str("serviceKey", serviceKey))
	if err != nil {
		return nil, err
	}
	return ServiceFromElement(doc), nil
}

// GetTModel fetches one tModel by key.
func (cl *Client) GetTModel(tModelKey string) (*TModel, error) {
	doc, err := cl.c.CallXMLCopy("getTModel", soap.Str("tModelKey", tModelKey))
	if err != nil {
		return nil, err
	}
	return &TModel{
		Key:         doc.AttrDefault("tModelKey", ""),
		Name:        doc.ChildText("name"),
		Description: doc.ChildText("description"),
		OverviewURL: doc.ChildText("overviewURL"),
	}, nil
}
