package uddi

import (
	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// ServiceNS is the namespace of the UDDI registry's own SOAP interface.
const ServiceNS = "urn:gce:uddi"

// Contract returns the WSDL interface of the registry service: a compact
// publish + inquiry API shaped like UDDI v2's save_xxx/find_xxx messages.
func Contract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "UDDIRegistry",
		TargetNS: ServiceNS,
		Doc:      "UDDI-style publish and inquiry API for portal services.",
		Operations: []wsdl.Operation{
			{
				Name:   "saveBusiness",
				Doc:    "Publishes a business entity; returns its key.",
				Input:  []wsdl.Param{{Name: "name", Type: "string"}, {Name: "description", Type: "string"}},
				Output: []wsdl.Param{{Name: "businessKey", Type: "string"}},
			},
			{
				Name: "saveTModel",
				Doc:  "Publishes a tModel pointing at a WSDL interface document.",
				Input: []wsdl.Param{
					{Name: "name", Type: "string"},
					{Name: "description", Type: "string"},
					{Name: "overviewURL", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "tModelKey", Type: "string"}},
			},
			{
				Name: "saveService",
				Doc:  "Publishes a service with one binding template.",
				Input: []wsdl.Param{
					{Name: "businessKey", Type: "string"},
					{Name: "name", Type: "string"},
					{Name: "description", Type: "string"},
					{Name: "accessPoint", Type: "string"},
					{Name: "tModelKeys", Type: "stringArray"},
				},
				Output: []wsdl.Param{{Name: "serviceKey", Type: "string"}},
			},
			{
				Name:   "deleteService",
				Input:  []wsdl.Param{{Name: "serviceKey", Type: "string"}},
				Output: []wsdl.Param{{Name: "deleted", Type: "boolean"}},
			},
			{
				Name:   "findBusiness",
				Input:  []wsdl.Param{{Name: "name", Type: "string"}},
				Output: []wsdl.Param{{Name: "businessList", Type: "xml"}},
			},
			{
				Name: "findService",
				Input: []wsdl.Param{
					{Name: "businessKey", Type: "string"},
					{Name: "name", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "serviceList", Type: "xml"}},
			},
			{
				Name:   "findServiceByTModel",
				Input:  []wsdl.Param{{Name: "tModelKey", Type: "string"}},
				Output: []wsdl.Param{{Name: "serviceList", Type: "xml"}},
			},
			{
				Name:   "findByDescription",
				Doc:    "Substring search over service descriptions: the string-convention capability lookup.",
				Input:  []wsdl.Param{{Name: "pattern", Type: "string"}},
				Output: []wsdl.Param{{Name: "serviceList", Type: "xml"}},
			},
			{
				Name:   "getServiceDetail",
				Input:  []wsdl.Param{{Name: "serviceKey", Type: "string"}},
				Output: []wsdl.Param{{Name: "service", Type: "xml"}},
			},
			{
				Name:   "getTModel",
				Input:  []wsdl.Param{{Name: "tModelKey", Type: "string"}},
				Output: []wsdl.Param{{Name: "tModel", Type: "xml"}},
			},
		},
	}
}

// serviceElement renders a BusinessService for the wire.
func serviceElement(s *BusinessService) *xmlutil.Element {
	el := xmlutil.New("businessService").
		SetAttr("serviceKey", s.Key).
		SetAttr("businessKey", s.BusinessKey)
	el.AddText("name", s.Name)
	el.AddText("description", s.Description)
	for _, b := range s.Bindings {
		bt := xmlutil.New("bindingTemplate").SetAttr("bindingKey", b.Key)
		bt.AddText("accessPoint", b.AccessPoint)
		if b.Description != "" {
			bt.AddText("description", b.Description)
		}
		for _, tk := range b.TModelKeys {
			bt.AddText("tModelKey", tk)
		}
		el.Add(bt)
	}
	return el
}

// ServiceFromElement parses a wire businessService element.
func ServiceFromElement(el *xmlutil.Element) *BusinessService {
	s := &BusinessService{
		Key:         el.AttrDefault("serviceKey", ""),
		BusinessKey: el.AttrDefault("businessKey", ""),
		Name:        el.ChildText("name"),
		Description: el.ChildText("description"),
	}
	for _, bt := range el.ChildrenNamed("bindingTemplate") {
		b := BindingTemplate{
			Key:         bt.AttrDefault("bindingKey", ""),
			AccessPoint: bt.ChildText("accessPoint"),
			Description: bt.ChildText("description"),
		}
		for _, tk := range bt.ChildrenNamed("tModelKey") {
			b.TModelKeys = append(b.TModelKeys, tk.Text)
		}
		s.Bindings = append(s.Bindings, b)
	}
	return s
}

func serviceList(services []*BusinessService) *xmlutil.Element {
	list := xmlutil.New("serviceList")
	for _, s := range services {
		list.Add(serviceElement(s))
	}
	return list
}

// ServicesFromList parses a wire serviceList element.
func ServicesFromList(el *xmlutil.Element) []*BusinessService {
	var out []*BusinessService
	for _, c := range el.ChildrenNamed("businessService") {
		out = append(out, ServiceFromElement(c))
	}
	return out
}

// NewService wraps a Registry as a deployable core.Service.
func NewService(r *Registry) *core.Service {
	svc := core.NewService(Contract())
	svc.Handle("saveBusiness", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		b := r.SaveBusiness(BusinessEntity{Name: args.String("name"), Description: args.String("description")})
		return []soap.Value{soap.Str("businessKey", b.Key)}, nil
	})
	svc.Handle("saveTModel", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		t := r.SaveTModel(TModel{
			Name:        args.String("name"),
			Description: args.String("description"),
			OverviewURL: args.String("overviewURL"),
		})
		return []soap.Value{soap.Str("tModelKey", t.Key)}, nil
	})
	svc.Handle("saveService", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		s, err := r.SaveService(BusinessService{
			BusinessKey: args.String("businessKey"),
			Name:        args.String("name"),
			Description: args.String("description"),
			Bindings: []BindingTemplate{{
				AccessPoint: args.String("accessPoint"),
				TModelKeys:  args.Strings("tModelKeys"),
			}},
		})
		if err != nil {
			return nil, soap.NewPortalError("UDDIRegistry", soap.ErrCodeBadRequest, "%v", err)
		}
		return []soap.Value{soap.Str("serviceKey", s.Key)}, nil
	})
	svc.Handle("deleteService", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		if err := r.DeleteService(args.String("serviceKey")); err != nil {
			return nil, soap.NewPortalError("UDDIRegistry", soap.ErrCodeNoSuchResource, "%v", err)
		}
		return []soap.Value{soap.Bool("deleted", true)}, nil
	})
	svc.Handle("findBusiness", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		list := xmlutil.New("businessList")
		for _, b := range r.FindBusiness(args.String("name")) {
			be := xmlutil.New("businessEntity").SetAttr("businessKey", b.Key)
			be.AddText("name", b.Name)
			be.AddText("description", b.Description)
			list.Add(be)
		}
		return []soap.Value{soap.XMLDoc("businessList", list)}, nil
	})
	svc.Handle("findService", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		services := r.FindService(args.String("businessKey"), args.String("name"))
		return []soap.Value{soap.XMLDoc("serviceList", serviceList(services))}, nil
	})
	svc.Handle("findServiceByTModel", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		services := r.FindServiceByTModel(args.String("tModelKey"))
		return []soap.Value{soap.XMLDoc("serviceList", serviceList(services))}, nil
	})
	svc.Handle("findByDescription", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		services := r.FindByConvention(args.String("pattern"))
		return []soap.Value{soap.XMLDoc("serviceList", serviceList(services))}, nil
	})
	svc.Handle("getServiceDetail", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		s, err := r.GetServiceDetail(args.String("serviceKey"))
		if err != nil {
			return nil, soap.NewPortalError("UDDIRegistry", soap.ErrCodeNoSuchResource, "%v", err)
		}
		return []soap.Value{soap.XMLDoc("service", serviceElement(s))}, nil
	})
	svc.Handle("getTModel", func(_ *core.Context, args soap.Args) ([]soap.Value, error) {
		t, err := r.GetTModel(args.String("tModelKey"))
		if err != nil {
			return nil, soap.NewPortalError("UDDIRegistry", soap.ErrCodeNoSuchResource, "%v", err)
		}
		el := xmlutil.New("tModel").SetAttr("tModelKey", t.Key)
		el.AddText("name", t.Name)
		el.AddText("description", t.Description)
		el.AddText("overviewURL", t.OverviewURL)
		return []soap.Value{soap.XMLDoc("tModel", el)}, nil
	})
	return svc
}

// Client is a typed proxy to a remote UDDI registry service.
type Client struct {
	c *core.Client
}

// NewClient binds a UDDI client to the registry endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// SaveBusiness publishes a business entity and returns its key.
func (cl *Client) SaveBusiness(name, description string) (string, error) {
	return cl.c.CallText("saveBusiness", soap.Str("name", name), soap.Str("description", description))
}

// SaveTModel publishes an interface tModel and returns its key.
func (cl *Client) SaveTModel(name, description, overviewURL string) (string, error) {
	return cl.c.CallText("saveTModel",
		soap.Str("name", name), soap.Str("description", description), soap.Str("overviewURL", overviewURL))
}

// SaveService publishes a service with one binding and returns its key.
func (cl *Client) SaveService(businessKey, name, description, accessPoint string, tModelKeys []string) (string, error) {
	return cl.c.CallText("saveService",
		soap.Str("businessKey", businessKey),
		soap.Str("name", name),
		soap.Str("description", description),
		soap.Str("accessPoint", accessPoint),
		soap.StrArray("tModelKeys", tModelKeys))
}

// DeleteService removes a published service.
func (cl *Client) DeleteService(serviceKey string) error {
	_, err := cl.c.Call("deleteService", soap.Str("serviceKey", serviceKey))
	return err
}

// FindService lists services by business and name pattern.
func (cl *Client) FindService(businessKey, name string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXML("findService", soap.Str("businessKey", businessKey), soap.Str("name", name))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// FindServiceByTModel lists services implementing an interface tModel.
func (cl *Client) FindServiceByTModel(tModelKey string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXML("findServiceByTModel", soap.Str("tModelKey", tModelKey))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// FindByDescription performs the string-convention capability search.
func (cl *Client) FindByDescription(pattern string) ([]*BusinessService, error) {
	doc, err := cl.c.CallXML("findByDescription", soap.Str("pattern", pattern))
	if err != nil {
		return nil, err
	}
	return ServicesFromList(doc), nil
}

// GetServiceDetail fetches one service by key.
func (cl *Client) GetServiceDetail(serviceKey string) (*BusinessService, error) {
	doc, err := cl.c.CallXML("getServiceDetail", soap.Str("serviceKey", serviceKey))
	if err != nil {
		return nil, err
	}
	return ServiceFromElement(doc), nil
}

// GetTModel fetches one tModel by key.
func (cl *Client) GetTModel(tModelKey string) (*TModel, error) {
	doc, err := cl.c.CallXML("getTModel", soap.Str("tModelKey", tModelKey))
	if err != nil {
		return nil, err
	}
	return &TModel{
		Key:         doc.AttrDefault("tModelKey", ""),
		Name:        doc.ChildText("name"),
		Description: doc.ChildText("description"),
		OverviewURL: doc.ChildText("overviewURL"),
	}, nil
}
