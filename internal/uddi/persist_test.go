package uddi_test

import (
	"fmt"
	"testing"

	"repro/internal/uddi"
	"repro/internal/wal"
)

func openRegistry(t *testing.T, dir string) *uddi.Registry {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	r := uddi.NewRegistry()
	if err := r.Persist(l); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	return r
}

// TestNoKeyReuseAcrossRestart is the regression test for the key-allocation
// bug: the sequence used to restart from zero on reboot, so a recovered
// registry would re-mint keys already handed out — silently overwriting
// earlier entities. Recovery must restore the sequence high-water mark.
func TestNoKeyReuseAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	r1 := openRegistry(t, dir)
	issued := map[string]string{} // key -> name
	for i := 0; i < 20; i++ {
		b, err := r1.SaveBusiness(uddi.BusinessEntity{Name: fmt.Sprintf("gen1-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		issued[b.Key] = b.Name
	}
	if err := r1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	r2 := openRegistry(t, dir)
	defer r2.ClosePersist()
	if b, _, _ := r2.Counts(); b != 20 {
		t.Fatalf("recovered %d businesses, want 20", b)
	}
	for i := 0; i < 20; i++ {
		b, err := r2.SaveBusiness(uddi.BusinessEntity{Name: fmt.Sprintf("gen2-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if prior, clash := issued[b.Key]; clash {
			t.Fatalf("restarted registry reused key %s (gen1 entity %q)", b.Key, prior)
		}
		issued[b.Key] = b.Name
	}
	// Nothing was overwritten: every gen1 entity is still intact.
	for key, name := range issued {
		b, err := r2.GetBusiness(key)
		if err != nil {
			t.Fatalf("entity %s (%s) missing: %v", key, name, err)
		}
		if b.Name != name {
			t.Fatalf("entity %s has name %q, want %q", key, b.Name, name)
		}
	}
}

// TestRegistryRoundTrip covers every mutation op across a restart: saved
// businesses/tModels/services come back verbatim, deleted services stay
// deleted, and the round-trip survives an intervening compaction.
func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := openRegistry(t, dir)
	biz, err := r1.SaveBusiness(uddi.BusinessEntity{Name: "IU Community Grids Lab", Description: "portal group"})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := r1.SaveTModel(uddi.TModel{Name: "gce:Globusrun", OverviewURL: "http://iu/wsdl"})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := r1.SaveService(uddi.BusinessService{
		BusinessKey: biz.Key, Name: "Globusrun", Description: "job submission",
		Bindings: []uddi.BindingTemplate{{AccessPoint: "http://iu/Globusrun", TModelKeys: []string{tm.Key}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gone, err := r1.SaveService(uddi.BusinessService{BusinessKey: biz.Key, Name: "Doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.DeleteService(gone.Key); err != nil {
		t.Fatal(err)
	}
	if err := r1.CompactPersist(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: this service lives only in the log.
	tail, err := r1.SaveService(uddi.BusinessService{BusinessKey: biz.Key, Name: "TailSvc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	r2 := openRegistry(t, dir)
	defer r2.ClosePersist()
	if got, err := r2.GetBusiness(biz.Key); err != nil || got.Name != biz.Name || got.Description != biz.Description {
		t.Fatalf("business round-trip: %+v, %v", got, err)
	}
	if got, err := r2.GetTModel(tm.Key); err != nil || got.OverviewURL != tm.OverviewURL {
		t.Fatalf("tModel round-trip: %+v, %v", got, err)
	}
	got, err := r2.GetServiceDetail(keep.Key)
	if err != nil {
		t.Fatalf("service round-trip: %v", err)
	}
	if len(got.Bindings) != 1 || got.Bindings[0].AccessPoint != "http://iu/Globusrun" ||
		len(got.Bindings[0].TModelKeys) != 1 || got.Bindings[0].TModelKeys[0] != tm.Key {
		t.Fatalf("service bindings mangled: %+v", got.Bindings)
	}
	if _, err := r2.GetServiceDetail(gone.Key); err == nil {
		t.Fatal("deleted service resurrected by recovery")
	}
	if _, err := r2.GetServiceDetail(tail.Key); err != nil {
		t.Fatalf("post-snapshot service lost: %v", err)
	}
	if b, s, tms := r2.Counts(); b != 1 || s != 2 || tms != 1 {
		t.Fatalf("recovered counts = %d/%d/%d, want 1 business, 2 services, 1 tModel", b, s, tms)
	}
}
