// Package uddi implements a UDDI v2-style registry: businessEntity,
// businessService, bindingTemplate, and tModel structures, with publish and
// inquiry APIs. The registry is itself exposed as a SOAP web service
// ("UDDI is a specialized Web Service", Section 3.4).
//
// The paper's groups mapped portal teams to businessEntities and portal
// services to businessServices, pointed bindingTemplates at service
// endpoints and tModels at WSDL files, and — because "UDDI lacked flexible
// descriptions that could be used to distinguish between something as
// simple as one script generator service that supports PBS and GRD and
// another that supports LSF and NQS" — encoded capabilities in free-text
// description strings by convention. This package implements both the
// registry and that convention (see Capability and FindByConvention), so
// the discovery-precision experiment can reproduce the shortcoming the
// paper reports.
package uddi

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/persist"
	"repro/internal/shardmap"
)

// TModel is a technical model: in portal usage, a pointer to the WSDL
// document that defines a common service interface.
type TModel struct {
	// Key is the registry-assigned tModel key (uuid:...).
	Key string
	// Name is the interface name, e.g. "gce:BatchScriptGenerator".
	Name string
	// Description is free text.
	Description string
	// OverviewURL points at the WSDL document.
	OverviewURL string
}

// BindingTemplate binds a service to an access point (endpoint URL) and the
// tModels describing its interface.
type BindingTemplate struct {
	// Key is the registry-assigned binding key.
	Key string
	// AccessPoint is the service endpoint URL.
	AccessPoint string
	// Description is free text.
	Description string
	// TModelKeys lists the interfaces the endpoint implements.
	TModelKeys []string
}

// BusinessService is one published portal service.
type BusinessService struct {
	// Key is the registry-assigned service key.
	Key string
	// BusinessKey identifies the owning businessEntity.
	BusinessKey string
	// Name is the service name.
	Name string
	// Description is free text. Capability conventions live here.
	Description string
	// Bindings are the service's binding templates.
	Bindings []BindingTemplate
}

// BusinessEntity is one publishing organisation (a portal group: "IU
// Community Grids Lab", "SDSC").
type BusinessEntity struct {
	// Key is the registry-assigned business key.
	Key string
	// Name is the organisation name.
	Name string
	// Description is free text.
	Description string
}

// Registry is an in-memory UDDI registry safe for concurrent use. Each
// entity kind lives in its own sharded map, so publishes and inquiries
// touching different keys never contend on a common lock; published records
// are immutable once stored (Save* stores a fresh copy, readers copy out),
// which is what makes the per-key locking sufficient. Find* iterate the
// shards one at a time and therefore observe a weakly consistent view: a
// concurrently published service may or may not appear, but no result is
// ever torn.
//
// With Persist attached, every mutation is appended to the write-ahead log
// and the shard-lock critical section covers both the append and the map
// update, so per-key log order matches apply order and a compaction dump
// (which takes each shard's read lock) can never observe a mutation whose
// record it might lose. Reads never touch the log.
type Registry struct {
	businesses *shardmap.Map[*BusinessEntity]
	services   *shardmap.Map[*BusinessService]
	tmodels    *shardmap.Map[*TModel]
	seq        atomic.Int64
	persist    *persist.Binding // nil = in-memory only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		businesses: shardmap.New[*BusinessEntity](0),
		services:   shardmap.New[*BusinessService](0),
		tmodels:    shardmap.New[*TModel](0),
	}
}

// newKey derives a deterministic uuid-like key from a sequence number and
// name; deterministic keys keep tests and recorded experiments stable (for
// concurrent publishers the interleaving, and hence the keys, are of course
// scheduling-dependent).
func (r *Registry) newKey(kind, name string) string {
	seq := r.seq.Add(1)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s/%d/%s", kind, seq, name)))
	h := hex.EncodeToString(sum[:16])
	return fmt.Sprintf("uuid:%s-%s-%s-%s-%s", h[0:8], h[8:12], h[12:16], h[16:20], h[20:32])
}

// SaveBusiness publishes a business entity, assigning its key. With
// persistence attached the entity is durable when SaveBusiness returns; an
// error means nothing was stored.
func (r *Registry) SaveBusiness(b BusinessEntity) (*BusinessEntity, error) {
	b.Key = r.newKey("business", b.Name)
	stored := b
	sh := r.businesses.ShardFor(b.Key)
	sh.Lock()
	defer sh.Unlock()
	if err := r.persist.Log(opBusiness, record{Seq: r.seq.Load(), Business: &stored}); err != nil {
		return nil, err
	}
	sh.Put(b.Key, &stored)
	return &stored, nil
}

// SaveTModel publishes a tModel, assigning its key. Durability as for
// SaveBusiness.
func (r *Registry) SaveTModel(t TModel) (*TModel, error) {
	t.Key = r.newKey("tmodel", t.Name)
	stored := t
	sh := r.tmodels.ShardFor(t.Key)
	sh.Lock()
	defer sh.Unlock()
	if err := r.persist.Log(opTModel, record{Seq: r.seq.Load(), TModel: &stored}); err != nil {
		return nil, err
	}
	sh.Put(t.Key, &stored)
	return &stored, nil
}

// SaveService publishes a service under an existing business, assigning the
// service and binding keys. The referenced business and tModels are
// validated against the current registry state; businesses are never
// deleted, so the check cannot be invalidated concurrently.
func (r *Registry) SaveService(s BusinessService) (*BusinessService, error) {
	if !r.businesses.Contains(s.BusinessKey) {
		return nil, fmt.Errorf("uddi: unknown businessKey %q", s.BusinessKey)
	}
	for _, b := range s.Bindings {
		for _, tk := range b.TModelKeys {
			if !r.tmodels.Contains(tk) {
				return nil, fmt.Errorf("uddi: binding references unknown tModel %q", tk)
			}
		}
	}
	s.Key = r.newKey("service", s.Name)
	s.Bindings = append([]BindingTemplate(nil), s.Bindings...)
	for i := range s.Bindings {
		s.Bindings[i].Key = r.newKey("binding", s.Name+"/"+s.Bindings[i].AccessPoint)
	}
	stored := s
	sh := r.services.ShardFor(s.Key)
	sh.Lock()
	defer sh.Unlock()
	if err := r.persist.Log(opService, record{Seq: r.seq.Load(), Service: &stored}); err != nil {
		return nil, err
	}
	sh.Put(s.Key, &stored)
	return &stored, nil
}

// DeleteService removes a published service.
func (r *Registry) DeleteService(key string) error {
	sh := r.services.ShardFor(key)
	sh.Lock()
	defer sh.Unlock()
	if _, ok := sh.Get(key); !ok {
		return fmt.Errorf("uddi: unknown serviceKey %q", key)
	}
	if err := r.persist.Log(opDelService, record{Key: key}); err != nil {
		return err
	}
	sh.Delete(key)
	return nil
}

// GetBusiness returns a business entity by key.
func (r *Registry) GetBusiness(key string) (*BusinessEntity, error) {
	b, ok := r.businesses.Load(key)
	if !ok {
		return nil, fmt.Errorf("uddi: unknown businessKey %q", key)
	}
	cp := *b
	return &cp, nil
}

// GetServiceDetail returns a service by key.
func (r *Registry) GetServiceDetail(key string) (*BusinessService, error) {
	s, ok := r.services.Load(key)
	if !ok {
		return nil, fmt.Errorf("uddi: unknown serviceKey %q", key)
	}
	return copyService(s), nil
}

// GetTModel returns a tModel by key.
func (r *Registry) GetTModel(key string) (*TModel, error) {
	t, ok := r.tmodels.Load(key)
	if !ok {
		return nil, fmt.Errorf("uddi: unknown tModelKey %q", key)
	}
	cp := *t
	return &cp, nil
}

// copyService detaches a stored record for a caller: stored services are
// immutable, so a shallow copy plus a fresh bindings slice is a full
// defensive copy.
func copyService(s *BusinessService) *BusinessService {
	cp := *s
	cp.Bindings = append([]BindingTemplate(nil), s.Bindings...)
	return &cp
}

// FindBusiness returns businesses whose names contain the pattern
// (case-insensitive), sorted by name. A UDDI find_business analog.
func (r *Registry) FindBusiness(namePattern string) []*BusinessEntity {
	var out []*BusinessEntity
	r.businesses.Range(func(_ string, b *BusinessEntity) bool {
		if containsFold(b.Name, namePattern) {
			cp := *b
			out = append(out, &cp)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindService returns services matching the name pattern (substring,
// case-insensitive; empty matches all), optionally restricted to one
// business. A UDDI find_service analog.
func (r *Registry) FindService(businessKey, namePattern string) []*BusinessService {
	var out []*BusinessService
	r.services.Range(func(_ string, s *BusinessService) bool {
		if businessKey != "" && s.BusinessKey != businessKey {
			return true
		}
		if namePattern != "" && !containsFold(s.Name, namePattern) {
			return true
		}
		out = append(out, copyService(s))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindServiceByTModel returns services with a binding implementing the
// given tModel (interface) key — how a portal client finds every provider
// of the agreed BatchScriptGenerator interface.
func (r *Registry) FindServiceByTModel(tModelKey string) []*BusinessService {
	var out []*BusinessService
	r.services.Range(func(_ string, s *BusinessService) bool {
		for _, b := range s.Bindings {
			if containsKey(b.TModelKeys, tModelKey) {
				out = append(out, copyService(s))
				break
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TModelByName finds a tModel by exact name.
func (r *Registry) TModelByName(name string) (*TModel, bool) {
	var found *TModel
	r.tmodels.Range(func(_ string, t *TModel) bool {
		if t.Name == name {
			cp := *t
			found = &cp
			return false
		}
		return true
	})
	return found, found != nil
}

// Counts returns the number of published businesses, services, and tModels.
func (r *Registry) Counts() (businesses, services, tmodels int) {
	return r.businesses.Len(), r.services.Len(), r.tmodels.Len()
}

func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}

func containsKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// --- The string-description capability convention (Section 3.4) ----------

// CapabilityPrefix introduces the convention the groups adopted: a service
// description line of the form "schedulers: PBS,GRD". UDDI's Identifier and
// Category taxonomies were "obviously inappropriate" for queuing systems,
// so capabilities ride in free text "only by convention".
const CapabilityPrefix = "schedulers:"

// DescribeCapabilities renders a capability list into the conventional
// description string, appended to any human-readable text.
func DescribeCapabilities(humanText string, schedulers []string) string {
	conv := CapabilityPrefix + " " + strings.Join(schedulers, ",")
	if humanText == "" {
		return conv
	}
	return humanText + " " + conv
}

// ParseCapabilities extracts the conventional capability list from a
// description, or nil when the convention is absent.
func ParseCapabilities(description string) []string {
	idx := strings.Index(strings.ToLower(description), CapabilityPrefix)
	if idx < 0 {
		return nil
	}
	rest := description[idx+len(CapabilityPrefix):]
	// The convention gives no delimiter; take the remainder of the line or
	// string, which is exactly the fragility the paper complains about.
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[:nl]
	}
	var out []string
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// FindByConvention searches services by naive description substring — what
// a UDDI client could actually do in 2002. The result includes any service
// whose description merely mentions the scheduler name, making false
// positives (e.g. "NQS" matching a description that says "migrating away
// from NQS") an inherent risk the discovery experiment quantifies.
func (r *Registry) FindByConvention(scheduler string) []*BusinessService {
	var out []*BusinessService
	r.services.Range(func(_ string, s *BusinessService) bool {
		if containsFold(s.Description, scheduler) {
			out = append(out, copyService(s))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindByParsedConvention searches by parsing the capability convention and
// matching tokens exactly — the best a disciplined client can do with the
// string convention. It fails when publishers deviate from the convention,
// which FindByConvention tolerates; the two together bracket the UDDI
// approach in the discovery experiment.
func (r *Registry) FindByParsedConvention(scheduler string) []*BusinessService {
	var out []*BusinessService
	r.services.Range(func(_ string, s *BusinessService) bool {
		for _, cap := range ParseCapabilities(s.Description) {
			if strings.EqualFold(cap, scheduler) {
				out = append(out, copyService(s))
				break
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
