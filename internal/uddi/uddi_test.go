package uddi

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/soap"
)

func seedRegistry(t *testing.T) (*Registry, string, string) {
	t.Helper()
	r := NewRegistry()
	iu, _ := r.SaveBusiness(BusinessEntity{Name: "IU Community Grids Lab", Description: "Gateway portal group"})
	sdsc, _ := r.SaveBusiness(BusinessEntity{Name: "SDSC", Description: "HotPage portal group"})
	tm, _ := r.SaveTModel(TModel{Name: "gce:BatchScriptGenerator", OverviewURL: "http://iu/bsg.wsdl"})
	_, err := r.SaveService(BusinessService{
		BusinessKey: iu.Key,
		Name:        "IU Batch Script Generator",
		Description: DescribeCapabilities("Gateway script service.", []string{"PBS", "GRD"}),
		Bindings:    []BindingTemplate{{AccessPoint: "http://gateway.iu.edu/soap/bsg", TModelKeys: []string{tm.Key}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.SaveService(BusinessService{
		BusinessKey: sdsc.Key,
		Name:        "SDSC Batch Script Generator",
		Description: DescribeCapabilities("HotPage script service.", []string{"LSF", "NQS"}),
		Bindings:    []BindingTemplate{{AccessPoint: "http://hotpage.sdsc.edu/soap/bsg", TModelKeys: []string{tm.Key}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, iu.Key, tm.Key
}

func TestPublishAndFind(t *testing.T) {
	r, iuKey, tmKey := seedRegistry(t)
	if b, s, tm := func() (int, int, int) { return countsOf(r) }(); b != 2 || s != 2 || tm != 1 {
		t.Errorf("counts = %d %d %d", b, s, tm)
	}
	businesses := r.FindBusiness("sdsc")
	if len(businesses) != 1 || businesses[0].Name != "SDSC" {
		t.Errorf("FindBusiness = %v", businesses)
	}
	all := r.FindService("", "")
	if len(all) != 2 {
		t.Fatalf("all services = %d", len(all))
	}
	iuOnly := r.FindService(iuKey, "")
	if len(iuOnly) != 1 || !strings.HasPrefix(iuOnly[0].Name, "IU") {
		t.Errorf("iu services = %v", iuOnly)
	}
	byTM := r.FindServiceByTModel(tmKey)
	if len(byTM) != 2 {
		t.Errorf("by tModel = %d", len(byTM))
	}
	byName := r.FindService("", "batch script")
	if len(byName) != 2 {
		t.Errorf("by name = %d", len(byName))
	}
}

func countsOf(r *Registry) (int, int, int) { return r.Counts() }

func TestKeysDeterministicAndUnique(t *testing.T) {
	r1, _, _ := seedRegistry(t)
	r2, _, _ := seedRegistry(t)
	s1 := r1.FindService("", "")
	s2 := r2.FindService("", "")
	if s1[0].Key != s2[0].Key {
		t.Error("keys not deterministic across identical publish sequences")
	}
	if s1[0].Key == s1[1].Key {
		t.Error("distinct services share a key")
	}
	if !strings.HasPrefix(s1[0].Key, "uuid:") {
		t.Errorf("key format = %q", s1[0].Key)
	}
}

func TestSaveServiceValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.SaveService(BusinessService{BusinessKey: "uuid:none", Name: "x"}); err == nil {
		t.Error("unknown businessKey accepted")
	}
	b, _ := r.SaveBusiness(BusinessEntity{Name: "IU"})
	if _, err := r.SaveService(BusinessService{
		BusinessKey: b.Key, Name: "x",
		Bindings: []BindingTemplate{{AccessPoint: "http://x", TModelKeys: []string{"uuid:ghost"}}},
	}); err == nil {
		t.Error("unknown tModel accepted")
	}
}

func TestDeleteService(t *testing.T) {
	r, _, _ := seedRegistry(t)
	all := r.FindService("", "")
	if err := r.DeleteService(all[0].Key); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteService(all[0].Key); err == nil {
		t.Error("double delete accepted")
	}
	if left := r.FindService("", ""); len(left) != 1 {
		t.Errorf("services after delete = %d", len(left))
	}
}

func TestGetters(t *testing.T) {
	r, iuKey, tmKey := seedRegistry(t)
	if _, err := r.GetBusiness(iuKey); err != nil {
		t.Error(err)
	}
	if _, err := r.GetBusiness("uuid:none"); err == nil {
		t.Error("unknown business accepted")
	}
	if _, err := r.GetTModel(tmKey); err != nil {
		t.Error(err)
	}
	if _, err := r.GetTModel("uuid:none"); err == nil {
		t.Error("unknown tModel accepted")
	}
	svc := r.FindService("", "")[0]
	got, err := r.GetServiceDetail(svc.Key)
	if err != nil || got.Name != svc.Name {
		t.Errorf("detail = %v, %v", got, err)
	}
	if _, err := r.GetServiceDetail("uuid:none"); err == nil {
		t.Error("unknown service accepted")
	}
	if _, ok := r.TModelByName("gce:BatchScriptGenerator"); !ok {
		t.Error("TModelByName missed")
	}
	if _, ok := r.TModelByName("nope"); ok {
		t.Error("TModelByName false positive")
	}
}

func TestCapabilityConvention(t *testing.T) {
	desc := DescribeCapabilities("Gateway script service.", []string{"PBS", "GRD"})
	caps := ParseCapabilities(desc)
	if len(caps) != 2 || caps[0] != "PBS" || caps[1] != "GRD" {
		t.Errorf("caps = %v", caps)
	}
	if ParseCapabilities("no convention here") != nil {
		t.Error("phantom capabilities")
	}
	if got := DescribeCapabilities("", []string{"LSF"}); got != "schedulers: LSF" {
		t.Errorf("bare convention = %q", got)
	}
	multi := "line one\nschedulers: NQS, LSF\nline three"
	caps = ParseCapabilities(multi)
	if len(caps) != 2 || caps[0] != "NQS" {
		t.Errorf("multiline caps = %v", caps)
	}
}

// TestConventionFalsePositive reproduces the paper's UDDI weakness: naive
// description search returns services that merely mention a scheduler.
func TestConventionFalsePositive(t *testing.T) {
	r, iuKey, _ := seedRegistry(t)
	_, err := r.SaveService(BusinessService{
		BusinessKey: iuKey,
		Name:        "Legacy Notes Service",
		Description: "Documentation for users migrating away from PBS to other systems.",
	})
	if err != nil {
		t.Fatal(err)
	}
	naive := r.FindByConvention("PBS")
	if len(naive) != 2 {
		t.Errorf("naive search found %d services, expected 2 (one false positive)", len(naive))
	}
	parsed := r.FindByParsedConvention("PBS")
	if len(parsed) != 1 || !strings.HasPrefix(parsed[0].Name, "IU") {
		t.Errorf("parsed search = %v", parsed)
	}
	// And the parsed search misses services that deviate from the
	// convention entirely.
	_, err = r.SaveService(BusinessService{
		BusinessKey: iuKey,
		Name:        "Nonconforming Script Service",
		Description: "Supports the PBS queuing system.",
	})
	if err != nil {
		t.Fatal(err)
	}
	parsed = r.FindByParsedConvention("PBS")
	if len(parsed) != 1 {
		t.Errorf("parsed search should miss nonconforming publisher, got %d", len(parsed))
	}
}

func TestConcurrentPublishAndQuery(t *testing.T) {
	r := NewRegistry()
	b, _ := r.SaveBusiness(BusinessEntity{Name: "IU"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = r.SaveService(BusinessService{BusinessKey: b.Key, Name: "svc"})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.FindService("", "svc")
			}
		}()
	}
	wg.Wait()
	if _, s, _ := r.Counts(); s != 400 {
		t.Errorf("services = %d, want 400", s)
	}
}

func TestSOAPServiceRoundTrip(t *testing.T) {
	r := NewRegistry()
	p := core.NewProvider("registry-ssp", "loopback://uddi")
	p.MustRegister(NewService(r))
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}
	cl := NewClient(tr, "loopback://uddi/UDDIRegistry")

	bk, err := cl.SaveBusiness("SDSC", "HotPage group")
	if err != nil {
		t.Fatal(err)
	}
	tmk, err := cl.SaveTModel("gce:BatchScriptGenerator", "common interface", "http://x/bsg.wsdl")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := cl.SaveService(bk, "SDSC BSG",
		DescribeCapabilities("", []string{"LSF", "NQS"}), "http://sdsc/soap/bsg", []string{tmk})
	if err != nil {
		t.Fatal(err)
	}

	found, err := cl.FindServiceByTModel(tmk)
	if err != nil || len(found) != 1 {
		t.Fatalf("by tModel = %v, %v", found, err)
	}
	if found[0].Bindings[0].AccessPoint != "http://sdsc/soap/bsg" {
		t.Errorf("accessPoint = %q", found[0].Bindings[0].AccessPoint)
	}
	if caps := ParseCapabilities(found[0].Description); len(caps) != 2 {
		t.Errorf("caps over the wire = %v", caps)
	}

	byDesc, err := cl.FindByDescription("NQS")
	if err != nil || len(byDesc) != 1 {
		t.Errorf("by description = %v, %v", byDesc, err)
	}

	detail, err := cl.GetServiceDetail(sk)
	if err != nil || detail.Name != "SDSC BSG" {
		t.Errorf("detail = %v, %v", detail, err)
	}

	tm, err := cl.GetTModel(tmk)
	if err != nil || tm.OverviewURL != "http://x/bsg.wsdl" {
		t.Errorf("tModel = %v, %v", tm, err)
	}

	byName, err := cl.FindService("", "BSG")
	if err != nil || len(byName) != 1 {
		t.Errorf("find by name = %v, %v", byName, err)
	}

	if err := cl.DeleteService(sk); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteService(sk); err == nil {
		t.Error("double delete over SOAP accepted")
	}
	if _, err := cl.GetServiceDetail(sk); err == nil {
		t.Error("deleted service still retrievable")
	}
}

func TestSOAPServiceErrors(t *testing.T) {
	r := NewRegistry()
	p := core.NewProvider("registry-ssp", "loopback://uddi")
	p.MustRegister(NewService(r))
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://uddi/UDDIRegistry")
	_, err := cl.SaveService("uuid:ghost", "x", "", "http://x", nil)
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeBadRequest {
		t.Errorf("err = %v", err)
	}
	if _, err := cl.GetTModel("uuid:ghost"); soap.AsPortalError(err) == nil {
		t.Errorf("err = %v", err)
	}
}
