package shardmap

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[int](0)
	if m.NumShards() != DefaultShards {
		t.Fatalf("shards = %d, want %d", m.NumShards(), DefaultShards)
	}
	if _, ok := m.Load("a"); ok {
		t.Fatal("empty map loaded a value")
	}
	m.Store("a", 1)
	m.Store("b", 2)
	if v, ok := m.Load("a"); !ok || v != 1 {
		t.Fatalf("Load(a) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, loaded := m.LoadOrStore("a", 9); !loaded || v != 1 {
		t.Fatalf("LoadOrStore(a) = %d, %v", v, loaded)
	}
	if v, loaded := m.LoadOrStore("c", 3); loaded || v != 3 {
		t.Fatalf("LoadOrStore(c) = %d, %v", v, loaded)
	}
	if !m.Delete("b") || m.Delete("b") {
		t.Fatal("Delete(b) should succeed exactly once")
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap["a"] != 1 || snap["c"] != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, DefaultShards}, {0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := New[int](tc.in).NumShards(); got != tc.want {
			t.Errorf("New(%d).NumShards = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	m := New[int](16)
	used := map[*Shard[int]]bool{}
	for i := 0; i < 256; i++ {
		used[m.ShardFor(fmt.Sprintf("key-%d", i))] = true
	}
	// FNV-1a over distinct short keys must not collapse onto a few shards.
	if len(used) < 12 {
		t.Fatalf("256 keys hit only %d/16 shards", len(used))
	}
}

func TestShardForStable(t *testing.T) {
	m := New[int](8)
	for _, k := range []string{"", "a", "user/problem/session", "uuid:0123"} {
		if m.ShardFor(k) != m.ShardFor(k) {
			t.Fatalf("ShardFor(%q) unstable", k)
		}
	}
}

func TestCallerLockedShardAccess(t *testing.T) {
	m := New[[]string](4)
	s := m.ShardFor("list")
	s.Lock()
	v, _ := s.Get("list")
	s.Put("list", append(v, "x"))
	s.Unlock()
	got, ok := m.Load("list")
	if !ok || len(got) != 1 || got[0] != "x" {
		t.Fatalf("Load(list) = %v, %v", got, ok)
	}
}

func TestLockPair(t *testing.T) {
	m := New[int](8)
	m.Store("from", 7)
	// Move an entry between keys under both locks, for every combination of
	// same-shard and cross-shard key pairs we can find.
	sa, sb, unlock := m.LockPair("from", "to")
	v, _ := sa.Get("from")
	sa.Delete("from")
	sb.Put("to", v)
	unlock()
	if _, ok := m.Load("from"); ok {
		t.Fatal("from survived the move")
	}
	if v, ok := m.Load("to"); !ok || v != 7 {
		t.Fatalf("to = %d, %v", v, ok)
	}
	// Same-key pair locks once and must not deadlock.
	_, _, unlock = m.LockPair("to", "to")
	unlock()
}

func TestRangeEarlyStop(t *testing.T) {
	m := New[int](4)
	for i := 0; i < 64; i++ {
		m.Store(fmt.Sprintf("k%d", i), i)
	}
	seen := 0
	m.Range(func(string, int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("Range visited %d entries after early stop, want 10", seen)
	}
}

// TestConcurrentMixedWorkload hammers one map with writers, readers,
// deleters, and snapshotters. Run under -race this pins the locking; the
// functional assertion is that the surviving count balances what the
// writers and deleters did.
func TestConcurrentMixedWorkload(t *testing.T) {
	m := New[int](8)
	const workers = 8
	const keys = 64
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("w%d-k%d", g, i%keys)
				switch i % 4 {
				case 0, 1:
					m.Store(k, i)
				case 2:
					m.Load(k)
					m.Len()
				default:
					if i%16 == 3 {
						m.Delete(k)
					} else {
						m.Range(func(string, int) bool { return true })
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Each worker owns its key space: the final count is exactly the keys it
	// stored minus those it deleted (deletes only ever follow stores of the
	// same key within a worker's own sequence).
	perWorker := map[int]int{}
	m.Range(func(k string, _ int) bool {
		var g, i int
		fmt.Sscanf(k, "w%d-k%d", &g, &i)
		perWorker[g]++
		return true
	})
	for g := 0; g < workers; g++ {
		stored := map[string]bool{}
		del := map[string]bool{}
		for i := 0; i < iters; i++ {
			k := fmt.Sprintf("w%d-k%d", g, i%keys)
			switch {
			case i%4 <= 1:
				stored[k] = true
				delete(del, k)
			case i%4 == 3 && i%16 == 3:
				if stored[k] {
					del[k] = true
					delete(stored, k)
				}
			}
		}
		if perWorker[g] != len(stored) {
			t.Errorf("worker %d: %d surviving keys, want %d", g, perWorker[g], len(stored))
		}
	}
}
