// Package shardmap provides the hash-partitioned, per-shard-locked map that
// backs every cross-request store in the serving stack (the UDDI registry,
// the XML container registry, the context store, and — with its own LRU
// machinery on top — the rpc response cache).
//
// A Map[V] splits its key space over a power-of-two number of shards, each
// guarded by its own sync.RWMutex. Requests touching different shards never
// contend, so on an N-core box the aggregate throughput of a read-mostly
// store scales with cores instead of flatlining behind one global lock.
//
// Two access levels are offered:
//
//   - Map-level operations (Load, Store, Delete, Len, Range, Snapshot)
//     lock and unlock the owning shard internally — the right level for
//     flat keyed stores such as the UDDI registry maps.
//   - Shard-level access (ShardFor + the Shard's caller-locked accessors)
//     lets a store hold one shard's lock across a compound operation — the
//     right level for the tree stores, where everything under one top-level
//     key (one user's context subtree, one top-level container) lives in
//     that key's shard and a path operation must lookup-then-mutate
//     atomically.
//
// Cross-shard operations (Range, Snapshot, Len) lock one shard at a time,
// so they observe a weakly consistent view: every entry that existed before
// the call and still exists after it is seen exactly once, but entries
// mutated concurrently may or may not appear. Every store built on this
// package documents that consistency contract on its own snapshot surface.
package shardmap

import "sync"

// DefaultShards is the shard count used by New. 32 comfortably exceeds the
// core counts this stack targets while keeping per-map overhead trivial.
const DefaultShards = 32

// Hash is the string hash used for shard selection: FNV-1a 64. Exported so
// sibling packages partitioning by the same keys (the response cache) pick
// shards consistently with the stores they sit in front of.
func Hash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Shard is one lock-plus-map partition. The embedded RWMutex is taken by
// the Map-level operations; callers using ShardFor for compound operations
// lock it themselves and then use the caller-locked accessors below.
type Shard[V any] struct {
	sync.RWMutex
	items map[string]V
}

// Get returns the value for key. Caller must hold the shard lock (read or
// write).
func (s *Shard[V]) Get(key string) (V, bool) {
	v, ok := s.items[key]
	return v, ok
}

// Put stores the value for key. Caller must hold the shard write lock.
func (s *Shard[V]) Put(key string, v V) {
	s.items[key] = v
}

// Delete removes key, reporting whether it was present. Caller must hold
// the shard write lock.
func (s *Shard[V]) Delete(key string) bool {
	_, ok := s.items[key]
	if ok {
		delete(s.items, key)
	}
	return ok
}

// Len returns the entry count. Caller must hold the shard lock.
func (s *Shard[V]) Len() int { return len(s.items) }

// Range calls fn for every entry until fn returns false, reporting whether
// the iteration ran to completion. Caller must hold the shard lock; fn must
// not touch the shard's map through other accessors.
func (s *Shard[V]) Range(fn func(key string, v V) bool) bool {
	for k, v := range s.items {
		if !fn(k, v) {
			return false
		}
	}
	return true
}

// Clear drops every entry. Caller must hold the shard write lock.
func (s *Shard[V]) Clear() {
	clear(s.items)
}

// Map is a sharded string-keyed map safe for concurrent use.
type Map[V any] struct {
	shards []Shard[V]
	mask   uint64
}

// New creates a map with n shards, rounded up to a power of two; n <= 0
// uses DefaultShards.
func New[V any](n int) *Map[V] {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	m := &Map[V]{shards: make([]Shard[V], size), mask: uint64(size - 1)}
	for i := range m.shards {
		m.shards[i].items = make(map[string]V)
	}
	return m
}

// NumShards returns the shard count.
func (m *Map[V]) NumShards() int { return len(m.shards) }

// ShardFor returns the shard owning key, unlocked.
func (m *Map[V]) ShardFor(key string) *Shard[V] {
	return &m.shards[Hash(key)&m.mask]
}

// Shards returns the shard slice for whole-map iteration. Callers lock each
// shard as they visit it.
func (m *Map[V]) Shards() []Shard[V] { return m.shards }

// LockPair write-locks the shards owning both keys in index order — the
// deadlock-free way to move an entry between keys (rename, copy) that may
// live in different shards. When both keys share a shard it is locked once
// and sa == sb. The returned unlock releases whatever was taken.
func (m *Map[V]) LockPair(a, b string) (sa, sb *Shard[V], unlock func()) {
	ia := Hash(a) & m.mask
	ib := Hash(b) & m.mask
	sa, sb = &m.shards[ia], &m.shards[ib]
	if ia == ib {
		sa.Lock()
		return sa, sb, sa.Unlock
	}
	lo, hi := sa, sb
	if ib < ia {
		lo, hi = sb, sa
	}
	lo.Lock()
	hi.Lock()
	return sa, sb, func() { hi.Unlock(); lo.Unlock() }
}

// Load returns the value stored for key.
func (m *Map[V]) Load(key string) (V, bool) {
	s := m.ShardFor(key)
	s.RLock()
	v, ok := s.items[key]
	s.RUnlock()
	return v, ok
}

// Contains reports whether key is present.
func (m *Map[V]) Contains(key string) bool {
	_, ok := m.Load(key)
	return ok
}

// Store sets the value for key.
func (m *Map[V]) Store(key string, v V) {
	s := m.ShardFor(key)
	s.Lock()
	s.items[key] = v
	s.Unlock()
}

// LoadOrStore returns the existing value for key if present; otherwise it
// stores and returns v. loaded is true when the value was already present.
func (m *Map[V]) LoadOrStore(key string, v V) (actual V, loaded bool) {
	s := m.ShardFor(key)
	s.Lock()
	if cur, ok := s.items[key]; ok {
		s.Unlock()
		return cur, true
	}
	s.items[key] = v
	s.Unlock()
	return v, false
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key string) bool {
	s := m.ShardFor(key)
	s.Lock()
	ok := s.Delete(key)
	s.Unlock()
	return ok
}

// Len returns the total entry count, summed shard by shard (weakly
// consistent under concurrent mutation).
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.RLock()
		n += len(s.items)
		s.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false, locking one shard
// at a time (weakly consistent; see the package comment). fn must not call
// back into the map.
func (m *Map[V]) Range(fn func(key string, v V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.RLock()
		done := !s.Range(fn)
		s.RUnlock()
		if done {
			return
		}
	}
}

// Snapshot copies the whole map, shard by shard (weakly consistent).
func (m *Map[V]) Snapshot() map[string]V {
	out := make(map[string]V, m.Len())
	m.Range(func(k string, v V) bool {
		out[k] = v
		return true
	})
	return out
}

// Clear drops every entry, shard by shard.
func (m *Map[V]) Clear() {
	for i := range m.shards {
		s := &m.shards[i]
		s.Lock()
		s.Clear()
		s.Unlock()
	}
}
