package webflow

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// UserException is raised by a servant and propagated to the client as a
// distinct error type (CORBA user exceptions vs system exceptions).
type UserException struct {
	// Message describes the application-level failure.
	Message string
}

// Error implements the error interface.
func (e *UserException) Error() string { return "webflow: user exception: " + e.Message }

// Servant is a WebFlow server object: named operations over string-sequence
// arguments (the WebFlow module granularity the paper's wrapper exposes).
type Servant interface {
	// Invoke performs an operation. Returning a *UserException reports an
	// application error; any other error becomes a system exception.
	Invoke(operation string, args []string) ([]string, error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(operation string, args []string) ([]string, error)

// Invoke implements Servant.
func (f ServantFunc) Invoke(operation string, args []string) ([]string, error) {
	return f(operation, args)
}

// Server is the WebFlow ORB server: it listens on TCP and dispatches
// requests to registered servants by object key.
type Server struct {
	// IOTimeout bounds each read of a request frame and write of a reply
	// frame on a connection; zero means DefaultIOTimeout. Set before
	// Listen.
	IOTimeout time.Duration

	mu       sync.RWMutex
	servants map[string]Servant
	ln       net.Listener
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// Default timeouts applied when the corresponding Server/ORB fields are
// left zero.
const (
	DefaultIOTimeout   = 30 * time.Second
	DefaultDialTimeout = 5 * time.Second
	DefaultCallTimeout = 30 * time.Second
)

// NewServer creates a server with no servants.
func NewServer() *Server {
	return &Server{servants: map[string]Servant{}}
}

// RegisterServant binds an object key to a servant.
func (s *Server) RegisterServant(objectKey string, sv Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[objectKey] = sv
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("webflow: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for connection handlers.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.wg.Wait()
}

// IOR returns the stringified object reference for an object key at this
// server — the WebFlow analog of a CORBA IOR.
func (s *Server) IOR(objectKey string) string {
	return fmt.Sprintf("wflo://%s/%s", s.ln.Addr().String(), objectKey)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	io := s.IOTimeout
	if io <= 0 {
		io = DefaultIOTimeout
	}
	for {
		if s.closed.Load() {
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(io))
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.msgType != msgRequest {
			return
		}
		req, err := decodeRequest(f.body)
		if err != nil {
			return
		}
		rep := s.dispatch(req)
		_ = conn.SetWriteDeadline(time.Now().Add(io))
		if err := writeFrame(conn, frame{msgType: msgReply, body: encodeReply(rep)}); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) reply {
	s.mu.RLock()
	sv, ok := s.servants[req.objectKey]
	s.mu.RUnlock()
	if !ok {
		return reply{id: req.id, status: statusSystemException,
			results: []string{fmt.Sprintf("OBJECT_NOT_EXIST: %q", req.objectKey)}}
	}
	results, err := sv.Invoke(req.operation, req.args)
	if err != nil {
		var ue *UserException
		if errors.As(err, &ue) {
			return reply{id: req.id, status: statusUserException, results: []string{ue.Message}}
		}
		return reply{id: req.id, status: statusSystemException, results: []string{err.Error()}}
	}
	return reply{id: req.id, status: statusOK, results: results}
}

// --- Client side -------------------------------------------------------------

// ORB is the client-side object request broker. Creating and configuring
// one is the "initializing the client ORB" utility work the paper
// describes; connections are pooled per server address.
type ORB struct {
	// DialTimeout bounds connection establishment; zero means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// CallTimeout bounds one request/reply exchange; zero means
	// DefaultCallTimeout. A tighter deadline on the InvokeCtx context
	// always wins.
	CallTimeout time.Duration
	// Retry, when set, governs re-dial attempts after connection
	// establishment fails. Only dialing is retried: once a request frame
	// may have reached the wire its effects are unknown, so send and
	// receive failures are surfaced to the caller.
	Retry *resilience.RetryPolicy

	mu    sync.Mutex
	conns map[string]net.Conn
	seq   uint32
}

// InitORB constructs a client ORB with default timeouts.
func InitORB() *ORB {
	return &ORB{
		DialTimeout: DefaultDialTimeout,
		CallTimeout: DefaultCallTimeout,
		conns:       map[string]net.Conn{},
	}
}

// ObjectRef is a resolved remote object.
type ObjectRef struct {
	orb       *ORB
	addr      string
	objectKey string
}

// Addr returns the server address of the reference.
func (o *ObjectRef) Addr() string { return o.addr }

// Key returns the object key of the reference.
func (o *ObjectRef) Key() string { return o.objectKey }

// Resolve parses a stringified IOR into an object reference.
func (orb *ORB) Resolve(ior string) (*ObjectRef, error) {
	rest, ok := strings.CutPrefix(ior, "wflo://")
	if !ok {
		return nil, fmt.Errorf("webflow: bad IOR %q", ior)
	}
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 || slash == len(rest)-1 {
		return nil, fmt.Errorf("webflow: bad IOR %q", ior)
	}
	return &ObjectRef{orb: orb, addr: rest[:slash], objectKey: rest[slash+1:]}, nil
}

// Shutdown closes pooled connections.
func (orb *ORB) Shutdown() {
	orb.mu.Lock()
	defer orb.mu.Unlock()
	for _, c := range orb.conns {
		_ = c.Close()
	}
	orb.conns = map[string]net.Conn{}
}

// Invoke performs a synchronous request on the referenced object.
func (o *ObjectRef) Invoke(operation string, args ...string) ([]string, error) {
	return o.InvokeCtx(context.Background(), operation, args...)
}

// InvokeCtx performs a synchronous request bounded by ctx: the exchange
// deadline is the tighter of the context deadline and the ORB's
// CallTimeout, and when the ORB carries a retry policy, failed dials are
// retried with backoff until the context expires.
func (o *ObjectRef) InvokeCtx(ctx context.Context, operation string, args ...string) ([]string, error) {
	orb := o.orb
	attempts := orb.Retry.Attempts()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results, redialable, err := o.invokeOnce(ctx, operation, args)
		if err == nil || !redialable || attempt+1 >= attempts {
			return results, err
		}
		if werr := orb.Retry.Wait(ctx, attempt); werr != nil {
			return nil, err
		}
	}
}

// invokeOnce runs one exchange over the pooled connection. redialable
// reports whether the failure happened before any bytes could reach the
// server (a dial failure), making a retry safe for any operation.
func (o *ObjectRef) invokeOnce(ctx context.Context, operation string, args []string) (_ []string, redialable bool, _ error) {
	orb := o.orb
	orb.mu.Lock()
	defer orb.mu.Unlock()
	conn, ok := orb.conns[o.addr]
	if !ok {
		var err error
		conn, err = net.DialTimeout("tcp", o.addr, resilience.Timeout(ctx, orb.dialTimeout()))
		if err != nil {
			return nil, true, fmt.Errorf("webflow: dial %s: %w", o.addr, err)
		}
		orb.conns[o.addr] = conn
	}
	orb.seq++
	req := request{id: orb.seq, objectKey: o.objectKey, operation: operation, args: args}
	deadline := time.Now().Add(resilience.Timeout(ctx, orb.callTimeout()))
	_ = conn.SetDeadline(deadline)
	if err := writeFrame(conn, frame{msgType: msgRequest, body: encodeRequest(req)}); err != nil {
		delete(orb.conns, o.addr)
		_ = conn.Close()
		return nil, false, fmt.Errorf("webflow: send: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		delete(orb.conns, o.addr)
		_ = conn.Close()
		return nil, false, fmt.Errorf("webflow: receive: %w", err)
	}
	rep, err := decodeReply(f.body)
	if err != nil {
		return nil, false, err
	}
	if rep.id != req.id {
		return nil, false, fmt.Errorf("webflow: reply id %d for request %d", rep.id, req.id)
	}
	switch rep.status {
	case statusOK:
		return rep.results, false, nil
	case statusUserException:
		msg := "unknown"
		if len(rep.results) > 0 {
			msg = rep.results[0]
		}
		return nil, false, &UserException{Message: msg}
	default:
		msg := "unknown"
		if len(rep.results) > 0 {
			msg = rep.results[0]
		}
		return nil, false, fmt.Errorf("webflow: system exception: %s", msg)
	}
}

func (orb *ORB) dialTimeout() time.Duration {
	if orb.DialTimeout > 0 {
		return orb.DialTimeout
	}
	return DefaultDialTimeout
}

func (orb *ORB) callTimeout() time.Duration {
	if orb.CallTimeout > 0 {
		return orb.CallTimeout
	}
	return DefaultCallTimeout
}
