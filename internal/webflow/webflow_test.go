package webflow

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestCDRRoundTrip(t *testing.T) {
	req := request{id: 42, objectKey: "WebFlow/JobSubmission", operation: "runJob",
		args: []string{"cyoun", "modi4", "&(executable=/bin/date)"}}
	got, err := decodeRequest(encodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.id != 42 || got.objectKey != req.objectKey || got.operation != req.operation {
		t.Errorf("got = %+v", got)
	}
	if len(got.args) != 3 || got.args[2] != req.args[2] {
		t.Errorf("args = %q", got.args)
	}
	rep := reply{id: 42, status: statusOK, results: []string{"COMPLETED", "out", ""}}
	gotRep, err := decodeReply(encodeReply(rep))
	if err != nil {
		t.Fatal(err)
	}
	if gotRep.status != statusOK || len(gotRep.results) != 3 {
		t.Errorf("rep = %+v", gotRep)
	}
}

func TestCDRTruncation(t *testing.T) {
	enc := encodeRequest(request{id: 1, objectKey: "k", operation: "op", args: []string{"a"}})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeRequest(enc[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestPropertyCDRRequests(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := request{
			id:        r.Uint32(),
			objectKey: randStr(r),
			operation: randStr(r),
		}
		n := r.Intn(5)
		for i := 0; i < n; i++ {
			req.args = append(req.args, randStr(r))
		}
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			return false
		}
		if got.id != req.id || got.objectKey != req.objectKey || got.operation != req.operation {
			return false
		}
		if len(got.args) != len(req.args) {
			return false
		}
		for i := range req.args {
			if got.args[i] != req.args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randStr(r *rand.Rand) string {
	n := r.Intn(40)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return string(b)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("payload")
	if err := writeFrame(&buf, frame{msgType: msgRequest, body: body}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.msgType != msgRequest || string(f.body) != "payload" {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := readFrame(strings.NewReader("BAD!......")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{'W', 'F', 'L', 'O', 9, 0, 0, 0, 0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := readFrame(strings.NewReader("WF")); err == nil {
		t.Error("short header accepted")
	}
}

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	srv.RegisterServant("Echo", ServantFunc(func(op string, args []string) ([]string, error) {
		switch op {
		case "echo":
			return args, nil
		case "fail":
			return nil, &UserException{Message: "requested failure"}
		case "crash":
			return nil, errors.New("internal meltdown")
		default:
			return nil, errors.New("BAD_OPERATION")
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestInvokeOverTCP(t *testing.T) {
	srv, _ := startEcho(t)
	orb := InitORB()
	defer orb.Shutdown()
	ref, err := orb.Resolve(srv.IOR("Echo"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ref.Invoke("echo", "hello", "orb")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "orb" {
		t.Errorf("results = %q", got)
	}
	// Multiple calls reuse the pooled connection.
	for i := 0; i < 10; i++ {
		if _, err := ref.Invoke("echo", "again"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestUserAndSystemExceptions(t *testing.T) {
	srv, _ := startEcho(t)
	orb := InitORB()
	defer orb.Shutdown()
	ref, _ := orb.Resolve(srv.IOR("Echo"))
	_, err := ref.Invoke("fail")
	var ue *UserException
	if !errors.As(err, &ue) || ue.Message != "requested failure" {
		t.Errorf("user exception = %v", err)
	}
	_, err = ref.Invoke("crash")
	if err == nil || errors.As(err, &ue) {
		t.Errorf("system exception = %v", err)
	}
	// Unknown object key is a system exception.
	badRef, _ := orb.Resolve(strings.Replace(srv.IOR("Echo"), "Echo", "Ghost", 1))
	_, err = badRef.Invoke("echo")
	if err == nil || !strings.Contains(err.Error(), "OBJECT_NOT_EXIST") {
		t.Errorf("missing object = %v", err)
	}
}

func TestResolveErrors(t *testing.T) {
	orb := InitORB()
	defer orb.Shutdown()
	for _, bad := range []string{"", "http://x/y", "wflo://hostonly", "wflo://host:1/"} {
		if _, err := orb.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) succeeded", bad)
		}
	}
}

func TestDialFailure(t *testing.T) {
	orb := InitORB()
	defer orb.Shutdown()
	ref, _ := orb.Resolve("wflo://127.0.0.1:1/Echo")
	if _, err := ref.Invoke("echo"); err == nil {
		t.Error("invoke on dead address succeeded")
	}
}

func TestJobSubmissionModule(t *testing.T) {
	g := grid.NewTestbed()
	g.Authorize("cyoun@IU.EDU")
	srv := NewServer()
	srv.RegisterServant(JobSubmissionKey, &JobSubmissionModule{Grid: g})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_ = addr
	orb := InitORB()
	defer orb.Shutdown()
	ref, _ := orb.Resolve(srv.IOR(JobSubmissionKey))

	// Synchronous run.
	res, err := ref.Invoke("runJob", "cyoun@IU.EDU", "modi4.ncsa.uiuc.edu", "&(executable=/bin/hostname)")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "COMPLETED" || res[1] != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("runJob = %q", res)
	}
	// Submit + status.
	res, err = ref.Invoke("submitJob", "cyoun@IU.EDU", "modi4.ncsa.uiuc.edu", "&(executable=/bin/date)")
	if err != nil {
		t.Fatal(err)
	}
	contact := res[0]
	h, _ := g.Host("modi4.ncsa.uiuc.edu")
	h.Scheduler.Drain()
	res, err = ref.Invoke("jobStatus", "modi4.ncsa.uiuc.edu", contact)
	if err != nil || res[0] != "COMPLETED" {
		t.Errorf("jobStatus = %q, %v", res, err)
	}
	// Errors surface as user exceptions.
	var ue *UserException
	_, err = ref.Invoke("runJob", "stranger", "modi4.ncsa.uiuc.edu", "&(executable=/bin/date)")
	if !errors.As(err, &ue) {
		t.Errorf("unauthorized = %v", err)
	}
	_, err = ref.Invoke("runJob", "cyoun@IU.EDU", "ghost.host", "&(executable=/bin/date)")
	if !errors.As(err, &ue) {
		t.Errorf("unknown host = %v", err)
	}
	_, err = ref.Invoke("runJob", "too", "few")
	if !errors.As(err, &ue) {
		t.Errorf("arity = %v", err)
	}
	_, err = ref.Invoke("unknownOp")
	if err == nil || errors.As(err, &ue) {
		t.Errorf("unknown op should be system exception: %v", err)
	}
}
