package webflow

import (
	"fmt"

	"repro/internal/grid"
)

// JobSubmissionKey is the object key of the WebFlow job submission module.
const JobSubmissionKey = "WebFlow/JobSubmission"

// JobSubmissionModule is the legacy WebFlow server module for job
// submission: the Gateway system's CORBA object that submitted jobs
// "by direct submittal to queuing systems" (Section 1). Its string-based
// operation signatures are what the IU SOAP wrapper bridges.
type JobSubmissionModule struct {
	// Grid is the computational grid the module submits into.
	Grid *grid.Grid
}

// Invoke implements Servant with the module's three operations:
//
//	runJob(principal, host, rsl)    -> [state, stdout, stderr]
//	submitJob(principal, host, rsl) -> [contact]
//	jobStatus(host, contact)        -> [state]
func (m *JobSubmissionModule) Invoke(operation string, args []string) ([]string, error) {
	switch operation {
	case "runJob":
		if len(args) != 3 {
			return nil, &UserException{Message: "runJob requires (principal, host, rsl)"}
		}
		gk, err := m.Grid.Gatekeeper(args[1])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		job, err := gk.Run(args[0], args[2])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		return []string{string(job.State), job.Result.Stdout, job.Result.Stderr}, nil
	case "submitJob":
		if len(args) != 3 {
			return nil, &UserException{Message: "submitJob requires (principal, host, rsl)"}
		}
		gk, err := m.Grid.Gatekeeper(args[1])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		contact, err := gk.Submit(args[0], args[2])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		return []string{contact}, nil
	case "jobStatus":
		if len(args) != 2 {
			return nil, &UserException{Message: "jobStatus requires (host, contact)"}
		}
		gk, err := m.Grid.Gatekeeper(args[0])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		job, err := gk.Status(args[1])
		if err != nil {
			return nil, &UserException{Message: err.Error()}
		}
		return []string{string(job.State)}, nil
	default:
		return nil, fmt.Errorf("BAD_OPERATION: %q", operation)
	}
}
