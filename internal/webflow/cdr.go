// Package webflow simulates the "legacy" CORBA-based WebFlow system that
// the IU group's SOAP job submission service wraps (Section 3.1): a
// miniature ORB with GIOP-style message framing and CDR-style marshalling
// over TCP, object references, server-side servants, and the client ORB
// initialisation utilities the paper mentions building ("a set of utility
// methods for initializing the client ORB, which we used to bridge between
// SOAP and IIOP").
//
// The protocol is a faithful reduction of GIOP 1.0: a magic header, a
// message type, a length-prefixed big-endian body; Request carries a
// request id, object key, operation, and string-sequence arguments; Reply
// carries the request id, a status, and either results or an exception
// message.
package webflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// CDR marshalling errors.
var (
	ErrTruncated = errors.New("webflow: cdr: truncated buffer")
	ErrTooLong   = errors.New("webflow: cdr: element too long")
)

// maxStringLen bounds decoded strings and sequences defensively.
const maxStringLen = 16 << 20

// encoder builds a CDR buffer (big-endian, length-prefixed strings).
type encoder struct {
	buf []byte
}

func (e *encoder) putU32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) putString(s string) {
	e.putU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) putStringSeq(ss []string) {
	e.putU32(uint32(len(ss)))
	for _, s := range ss {
		e.putString(s)
	}
}

// decoder reads a CDR buffer.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", ErrTooLong
	}
	if d.pos+int(n) > len(d.buf) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) stringSeq() ([]string, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > maxStringLen {
		return nil, ErrTooLong
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Message types in the framing layer.
const (
	msgRequest byte = 0
	msgReply   byte = 1
)

// Reply status codes.
const (
	statusOK              uint32 = 0
	statusUserException   uint32 = 1
	statusSystemException uint32 = 2
)

// magic identifies WebFlow ORB frames (GIOP's "GIOP").
var magic = [4]byte{'W', 'F', 'L', 'O'}

// frame is one wire message.
type frame struct {
	msgType byte
	body    []byte
}

// writeFrame emits magic | version | type | length | body.
func writeFrame(w io.Writer, f frame) error {
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, magic[:]...)
	hdr = append(hdr, 1, f.msgType)
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(f.body)))
	hdr = append(hdr, lb[:]...)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.body)
	return err
}

// readFrame parses one wire message.
func readFrame(r io.Reader) (frame, error) {
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frame{}, err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return frame{}, fmt.Errorf("webflow: bad magic %q", hdr[:4])
	}
	if hdr[4] != 1 {
		return frame{}, fmt.Errorf("webflow: unsupported version %d", hdr[4])
	}
	n := binary.BigEndian.Uint32(hdr[6:])
	if n > maxStringLen {
		return frame{}, ErrTooLong
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	return frame{msgType: hdr[5], body: body}, nil
}

// request is a decoded Request message.
type request struct {
	id        uint32
	objectKey string
	operation string
	args      []string
}

func encodeRequest(r request) []byte {
	var e encoder
	e.putU32(r.id)
	e.putString(r.objectKey)
	e.putString(r.operation)
	e.putStringSeq(r.args)
	return e.buf
}

func decodeRequest(body []byte) (request, error) {
	d := decoder{buf: body}
	var r request
	var err error
	if r.id, err = d.u32(); err != nil {
		return r, err
	}
	if r.objectKey, err = d.str(); err != nil {
		return r, err
	}
	if r.operation, err = d.str(); err != nil {
		return r, err
	}
	if r.args, err = d.stringSeq(); err != nil {
		return r, err
	}
	return r, nil
}

// reply is a decoded Reply message.
type reply struct {
	id      uint32
	status  uint32
	results []string // results when OK, [message] when exception
}

func encodeReply(r reply) []byte {
	var e encoder
	e.putU32(r.id)
	e.putU32(r.status)
	e.putStringSeq(r.results)
	return e.buf
}

func decodeReply(body []byte) (reply, error) {
	d := decoder{buf: body}
	var r reply
	var err error
	if r.id, err = d.u32(); err != nil {
		return r, err
	}
	if r.status, err = d.u32(); err != nil {
		return r, err
	}
	if r.results, err = d.stringSeq(); err != nil {
		return r, err
	}
	return r, nil
}
