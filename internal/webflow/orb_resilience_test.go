package webflow

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestInvokeCtxDeadline: a server that accepts but never answers must not
// hold the caller past its context deadline, even with a long CallTimeout.
func TestInvokeCtxDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never reply
		}
	}()

	orb := InitORB()
	orb.CallTimeout = 10 * time.Second
	defer orb.Shutdown()
	ref, err := orb.Resolve("wflo://" + ln.Addr().String() + "/obj")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := ref.InvokeCtx(ctx, "ping"); err == nil {
		t.Fatal("invoke against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("caller deadline ignored: returned after %v", elapsed)
	}
}

// TestInvokeCtxDialRetry: dial failures — the one failure mode that cannot
// have executed — are retried under the ORB's policy before surfacing.
func TestInvokeCtxDialRetry(t *testing.T) {
	// Reserve a port and close it so dials are refused deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	retry := &resilience.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Seed:        1,
	}
	orb := InitORB()
	orb.DialTimeout = 50 * time.Millisecond
	orb.Retry = retry
	defer orb.Shutdown()
	ref, err := orb.Resolve("wflo://" + addr + "/obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InvokeCtx(context.Background(), "ping"); err == nil {
		t.Fatal("invoke against a closed port succeeded")
	}
	if got := retry.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", got)
	}
}

// TestServerConfigurableIOTimeout: the server frame deadlines follow the
// configured IOTimeout and normal exchanges still work.
func TestServerConfigurableIOTimeout(t *testing.T) {
	srv := NewServer()
	srv.IOTimeout = 2 * time.Second
	srv.RegisterServant("echo", ServantFunc(func(op string, args []string) ([]string, error) {
		return append([]string{op}, args...), nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	orb := InitORB()
	defer orb.Shutdown()
	ref, err := orb.Resolve("wflo://" + addr + "/echo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.InvokeCtx(context.Background(), "greet", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != "greet" || out[1] != "hi" {
		t.Fatalf("echo = %v", out)
	}
}
