// Package schemawizard implements the schema wizard of Section 5.3 and
// Figure 3: automatic user-interface generation from XML schemas. The
// pipeline mirrors the paper's architecture —
//
//	XML Schema -> SchemaParser -> SOM -> data-bound objects
//	                      \-> widget templates -> HTML forms
//
// A SchemaParser is "initialized with a URL for the desired schema and a
// package name"; it validates the schema, builds the Schema Object Model
// (databind.Schema), detects the four templated constituent types (single
// simple, enumerated simple, unbounded simple, complex), instantiates the
// matching widget template for each, assembles the form page, and deploys
// the result as a web application on the server. Submitted forms rebuild
// data objects that marshal back to XML instances of the schema; saved
// instances can be reloaded to prefill the form ("Old instances can be
// read in and unmarshaled to fill out the form elements").
package schemawizard

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"repro/internal/databind"
	"repro/internal/xmlutil"
)

// WidgetKind names the visual widget a schema constituent maps to.
type WidgetKind string

// The widget vocabulary: one per templated schema constituent type.
const (
	WidgetText     WidgetKind = "text"     // single simple type
	WidgetSelect   WidgetKind = "select"   // enumerated simple type
	WidgetMulti    WidgetKind = "multi"    // unbounded simple type
	WidgetFieldset WidgetKind = "fieldset" // complex type
)

// Widget is one resolved form control.
type Widget struct {
	// Kind selects the template.
	Kind WidgetKind
	// Path is the dotted field path from the root element, used as the
	// HTML control name (e.g. "application.execution.host").
	Path string
	// Label is the element name.
	Label string
	// Doc is the schema documentation string, rendered as help text.
	Doc string
	// Type is the builtin type for validation hints.
	Type string
	// Options are the permitted values for WidgetSelect.
	Options []string
	// Default prefills the control.
	Default string
	// Required marks minOccurs=1 simple fields.
	Required bool
	// Depth is the nesting level (for fieldset indentation).
	Depth int
}

// Widgets flattens a declaration into its widget list, in schema order —
// the wizard's "transverse the schema to detect if the element corresponds
// to one of the templated types" step.
func Widgets(decl *databind.ElementDecl) []Widget {
	var out []Widget
	var walk func(d *databind.ElementDecl, prefix string, depth int)
	walk = func(d *databind.ElementDecl, prefix string, depth int) {
		path := d.Name
		if prefix != "" {
			path = prefix + "." + d.Name
		}
		w := Widget{
			Path: path, Label: d.Name, Doc: d.Doc, Type: d.Type,
			Default: d.Default, Required: d.MinOccurs > 0, Depth: depth,
		}
		switch d.Kind {
		case databind.KindSimple:
			w.Kind = WidgetText
			out = append(out, w)
		case databind.KindEnumerated:
			w.Kind = WidgetSelect
			w.Options = append([]string(nil), d.Enum...)
			out = append(out, w)
		case databind.KindUnbounded:
			w.Kind = WidgetMulti
			out = append(out, w)
		case databind.KindComplex:
			w.Kind = WidgetFieldset
			out = append(out, w)
			for _, c := range d.Children {
				walk(c, path, depth+1)
			}
		}
	}
	walk(decl, "", 0)
	return out
}

// RenderForm builds the HTML form page for a declaration, prefilled from
// obj when non-nil. Each widget is rendered by its template "nugget" and
// the nuggets are concatenated into the final page, mirroring the JSP
// include assembly.
func RenderForm(action string, decl *databind.ElementDecl, obj *databind.DataObject) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", html.EscapeString(decl.Name))
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(decl.Name))
	fmt.Fprintf(&b, `<form method="POST" action="%s">`+"\n", html.EscapeString(action))
	openFieldsets := 0
	for _, w := range Widgets(decl) {
		value := widgetValue(decl, obj, w)
		switch w.Kind {
		case WidgetFieldset:
			// Close deeper fieldsets before opening a sibling.
			for openFieldsets >= w.Depth+1 {
				b.WriteString("</fieldset>\n")
				openFieldsets--
			}
			fmt.Fprintf(&b, "<fieldset><legend>%s</legend>\n", html.EscapeString(w.Label))
			openFieldsets++
		case WidgetText:
			writeLabel(&b, w)
			fmt.Fprintf(&b, `<input type="text" name="%s" value="%s"/><br/>`+"\n",
				html.EscapeString(w.Path), html.EscapeString(value))
		case WidgetSelect:
			writeLabel(&b, w)
			fmt.Fprintf(&b, `<select name="%s">`+"\n", html.EscapeString(w.Path))
			for _, opt := range w.Options {
				sel := ""
				if opt == value {
					sel = ` selected="selected"`
				}
				fmt.Fprintf(&b, `<option value="%s"%s>%s</option>`+"\n",
					html.EscapeString(opt), sel, html.EscapeString(opt))
			}
			b.WriteString("</select><br/>\n")
		case WidgetMulti:
			writeLabel(&b, w)
			fmt.Fprintf(&b, `<textarea name="%s" rows="4">%s</textarea><br/>`+"\n",
				html.EscapeString(w.Path), html.EscapeString(value))
		}
	}
	for openFieldsets > 0 {
		b.WriteString("</fieldset>\n")
		openFieldsets--
	}
	b.WriteString(`<input type="submit" value="Create Instance"/>` + "\n</form></body></html>\n")
	return b.String()
}

func writeLabel(b *strings.Builder, w Widget) {
	req := ""
	if w.Required {
		req = " *"
	}
	fmt.Fprintf(b, `<label for="%s">%s%s</label> `, html.EscapeString(w.Path), html.EscapeString(w.Label), req)
	if w.Doc != "" {
		fmt.Fprintf(b, `<small>%s</small> `, html.EscapeString(w.Doc))
	}
}

// widgetValue resolves the current value of a widget from a data object.
func widgetValue(root *databind.ElementDecl, obj *databind.DataObject, w Widget) string {
	if obj == nil {
		return w.Default
	}
	segs := strings.Split(w.Path, ".")
	cur := obj
	for _, seg := range segs[1:] { // segs[0] is the root itself
		next, err := cur.Field(seg)
		if err != nil {
			return w.Default
		}
		cur = next
	}
	switch w.Kind {
	case WidgetMulti:
		return strings.Join(cur.Values(), "\n")
	case WidgetFieldset:
		return ""
	default:
		if v := cur.Get(); v != "" {
			return v
		}
		return w.Default
	}
}

// ParseForm rebuilds a data object from submitted form values. Multi
// widgets take one value per line; empty optional fields are skipped;
// empty required fields with defaults fall back to the default.
func ParseForm(decl *databind.ElementDecl, values url.Values) (*databind.DataObject, error) {
	obj := databind.NewDataObject(decl)
	for _, w := range Widgets(decl) {
		if w.Kind == WidgetFieldset {
			continue
		}
		raw := values.Get(w.Path)
		segs := strings.Split(w.Path, ".")
		cur := obj
		for _, seg := range segs[1 : len(segs)-1] {
			next, err := cur.Field(seg)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		leaf := segs[len(segs)-1]
		if w.Kind == WidgetMulti {
			for _, line := range strings.Split(raw, "\n") {
				line = strings.TrimSpace(line)
				if line == "" {
					continue
				}
				if err := cur.AddFieldValue(leaf, line); err != nil {
					return nil, err
				}
			}
			continue
		}
		if raw == "" {
			if w.Required && w.Default == "" {
				return nil, fmt.Errorf("schemawizard: required field %s is empty", w.Path)
			}
			continue
		}
		if err := cur.SetField(leaf, raw); err != nil {
			return nil, err
		}
	}
	return obj, nil
}

// WebApp is one deployed wizard application: a parsed schema, its root
// declaration, and the saved instances (the session-archive backbone).
type WebApp struct {
	// Name is the deployment ("project") name, from the parser's package
	// name argument.
	Name string
	// Schema is the SOM.
	Schema *databind.Schema
	// Root is the element the form edits.
	Root *databind.ElementDecl

	mu        sync.RWMutex
	instances map[string]string
}

// SaveInstance stores a marshalled instance under a name.
func (a *WebApp) SaveInstance(name string, obj *databind.DataObject) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.instances[name] = obj.Marshal().Render()
}

// LoadInstance reloads a saved instance as a data object.
func (a *WebApp) LoadInstance(name string) (*databind.DataObject, error) {
	a.mu.RLock()
	doc, ok := a.instances[name]
	a.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("schemawizard: no instance %q", name)
	}
	el, err := xmlutil.ParseString(doc)
	if err != nil {
		return nil, err
	}
	return databind.Unmarshal(a.Root, el)
}

// InstanceNames lists saved instances sorted by name.
func (a *WebApp) InstanceNames() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.instances))
	for n := range a.instances {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InstanceXML returns the raw stored instance document.
func (a *WebApp) InstanceXML(name string) (string, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	doc, ok := a.instances[name]
	if !ok {
		return "", fmt.Errorf("schemawizard: no instance %q", name)
	}
	return doc, nil
}

// SchemaParser drives the Figure 3 pipeline. Fetch abstracts retrieval of
// the schema document from its URL (HTTP in production, in-memory in
// tests).
type SchemaParser struct {
	// Fetch retrieves a schema document by URL.
	Fetch func(url string) (string, error)
}

// Parse fetches, validates, and binds a schema, returning the web
// application for its first root element (or the named root when rootName
// is non-empty).
func (p *SchemaParser) Parse(schemaURL, packageName, rootName string) (*WebApp, error) {
	doc, err := p.Fetch(schemaURL)
	if err != nil {
		return nil, fmt.Errorf("schemawizard: fetch %s: %w", schemaURL, err)
	}
	schema, err := databind.ParseSchema(doc)
	if err != nil {
		return nil, err
	}
	root := schema.Roots[0]
	if rootName != "" {
		root = schema.Root(rootName)
		if root == nil {
			return nil, fmt.Errorf("schemawizard: schema has no root element %q", rootName)
		}
	}
	return &WebApp{
		Name:      packageName,
		Schema:    schema,
		Root:      root,
		instances: map[string]string{},
	}, nil
}

// Deploy mounts the web application on a mux under /<name>/: GET serves
// the (optionally prefilled) form, POST creates an instance, and
// /<name>/instances lists saved instances — the wizard's automatic
// deployment step.
func (a *WebApp) Deploy(mux *http.ServeMux) {
	base := "/" + a.Name
	mux.HandleFunc(base+"/", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			var obj *databind.DataObject
			if inst := r.URL.Query().Get("instance"); inst != "" {
				loaded, err := a.LoadInstance(inst)
				if err != nil {
					http.Error(w, err.Error(), http.StatusNotFound)
					return
				}
				obj = loaded
			}
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(RenderForm(base+"/", a.Root, obj)))
		case http.MethodPost:
			if err := r.ParseForm(); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			obj, err := ParseForm(a.Root, r.PostForm)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			name := r.PostForm.Get("_instanceName")
			if name == "" {
				name = fmt.Sprintf("instance-%d", len(a.InstanceNames())+1)
			}
			a.SaveInstance(name, obj)
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			doc, _ := a.InstanceXML(name)
			_, _ = w.Write([]byte(doc))
		default:
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc(base+"/instances", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(strings.Join(a.InstanceNames(), "\n")))
	})
}
