package schemawizard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/databind"
)

const testSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:gce:app">
  <xs:element name="application">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string">
          <xs:annotation><xs:documentation>Code name</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="nodes" type="xs:int" default="1"/>
        <xs:element name="method">
          <xs:simpleType>
            <xs:restriction base="xs:string">
              <xs:enumeration value="HF"/>
              <xs:enumeration value="B3LYP"/>
            </xs:restriction>
          </xs:simpleType>
        </xs:element>
        <xs:element name="flag" type="xs:string" maxOccurs="unbounded" minOccurs="0"/>
        <xs:element name="execution">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="host" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func parseApp(t *testing.T) *WebApp {
	t.Helper()
	p := &SchemaParser{Fetch: func(u string) (string, error) {
		if u != "http://schemas.example.org/app.xsd" {
			return "", fmt.Errorf("no schema at %q", u)
		}
		return testSchema, nil
	}}
	app, err := p.Parse("http://schemas.example.org/app.xsd", "gaussianportal", "application")
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestWidgetDetection(t *testing.T) {
	app := parseApp(t)
	widgets := Widgets(app.Root)
	kinds := map[string]WidgetKind{}
	for _, w := range widgets {
		kinds[w.Path] = w.Kind
	}
	want := map[string]WidgetKind{
		"application":                WidgetFieldset,
		"application.name":           WidgetText,
		"application.nodes":          WidgetText,
		"application.method":         WidgetSelect,
		"application.flag":           WidgetMulti,
		"application.execution":      WidgetFieldset,
		"application.execution.host": WidgetText,
	}
	for path, kind := range want {
		if kinds[path] != kind {
			t.Errorf("%s = %s, want %s", path, kinds[path], kind)
		}
	}
	if len(widgets) != len(want) {
		t.Errorf("widget count = %d, want %d", len(widgets), len(want))
	}
	// Select options and docs survive.
	for _, w := range widgets {
		if w.Path == "application.method" && (len(w.Options) != 2 || w.Options[1] != "B3LYP") {
			t.Errorf("options = %v", w.Options)
		}
		if w.Path == "application.name" && w.Doc != "Code name" {
			t.Errorf("doc = %q", w.Doc)
		}
		if w.Path == "application.nodes" && w.Default != "1" {
			t.Errorf("default = %q", w.Default)
		}
	}
}

func TestRenderFormStructure(t *testing.T) {
	app := parseApp(t)
	page := RenderForm("/gaussianportal/", app.Root, nil)
	for _, want := range []string{
		`<form method="POST" action="/gaussianportal/">`,
		`<input type="text" name="application.name"`,
		`<select name="application.method">`,
		`<option value="B3LYP">B3LYP</option>`,
		`<textarea name="application.flag"`,
		`<fieldset><legend>execution</legend>`,
		`value="1"`, // nodes default prefilled
		`<small>Code name</small>`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
	// Balanced fieldsets.
	if strings.Count(page, "<fieldset>") != strings.Count(page, "</fieldset>") {
		t.Error("unbalanced fieldsets")
	}
}

func TestParseFormRoundTrip(t *testing.T) {
	app := parseApp(t)
	values := url.Values{
		"application.name":           {"gaussian"},
		"application.nodes":          {"16"},
		"application.method":         {"B3LYP"},
		"application.flag":           {"-direct\n-nosym\n"},
		"application.execution.host": {"modi4.ncsa.uiuc.edu"},
	}
	obj, err := ParseForm(app.Root, values)
	if err != nil {
		t.Fatal(err)
	}
	if obj.GetField("name") != "gaussian" || obj.GetField("nodes") != "16" {
		t.Error("scalar fields wrong")
	}
	if got := obj.FieldValues("flag"); len(got) != 2 || got[1] != "-nosym" {
		t.Errorf("flags = %v", got)
	}
	exec, _ := obj.Field("execution")
	if exec.GetField("host") != "modi4.ncsa.uiuc.edu" {
		t.Error("nested field wrong")
	}
	// Prefill: rendering with the object shows current values.
	page := RenderForm("/x", app.Root, obj)
	if !strings.Contains(page, `value="gaussian"`) ||
		!strings.Contains(page, `<option value="B3LYP" selected="selected">`) ||
		!strings.Contains(page, "-direct\n-nosym</textarea>") {
		t.Errorf("prefill missing:\n%s", page)
	}
}

func TestParseFormValidation(t *testing.T) {
	app := parseApp(t)
	// Missing required field.
	_, err := ParseForm(app.Root, url.Values{
		"application.method": {"HF"}, "application.execution.host": {"h"},
	})
	if err == nil || !strings.Contains(err.Error(), "application.name") {
		t.Errorf("err = %v", err)
	}
	// Bad int.
	_, err = ParseForm(app.Root, url.Values{
		"application.name": {"x"}, "application.nodes": {"NaN"},
		"application.method": {"HF"}, "application.execution.host": {"h"},
	})
	if err == nil {
		t.Error("bad int accepted")
	}
	// Bad enum.
	_, err = ParseForm(app.Root, url.Values{
		"application.name": {"x"}, "application.method": {"CCSD"},
		"application.execution.host": {"h"},
	})
	if err == nil {
		t.Error("bad enum accepted")
	}
	// Defaulted required field may be empty.
	obj, err := ParseForm(app.Root, url.Values{
		"application.name": {"x"}, "application.method": {"HF"},
		"application.execution.host": {"h"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if obj.GetField("nodes") != "1" {
		t.Errorf("defaulted nodes = %q", obj.GetField("nodes"))
	}
}

func TestInstanceSaveLoad(t *testing.T) {
	app := parseApp(t)
	obj, _ := ParseForm(app.Root, url.Values{
		"application.name": {"run-a"}, "application.method": {"HF"},
		"application.execution.host": {"h1"},
	})
	app.SaveInstance("run-a", obj)
	names := app.InstanceNames()
	if len(names) != 1 || names[0] != "run-a" {
		t.Errorf("instances = %v", names)
	}
	loaded, err := app.LoadInstance("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GetField("name") != "run-a" {
		t.Error("loaded instance wrong")
	}
	if _, err := app.LoadInstance("ghost"); err == nil {
		t.Error("missing instance loaded")
	}
	xml, err := app.InstanceXML("run-a")
	if err != nil || !strings.Contains(xml, "<name>run-a</name>") {
		t.Errorf("xml = %q, %v", xml, err)
	}
	if _, err := app.InstanceXML("ghost"); err == nil {
		t.Error("missing instance xml returned")
	}
}

func TestParserErrors(t *testing.T) {
	p := &SchemaParser{Fetch: func(string) (string, error) { return "", fmt.Errorf("404") }}
	if _, err := p.Parse("http://x", "p", ""); err == nil {
		t.Error("fetch failure swallowed")
	}
	p = &SchemaParser{Fetch: func(string) (string, error) { return "not a schema", nil }}
	if _, err := p.Parse("http://x", "p", ""); err == nil {
		t.Error("bad schema accepted")
	}
	p = &SchemaParser{Fetch: func(string) (string, error) { return testSchema, nil }}
	if _, err := p.Parse("http://x", "p", "nonexistent"); err == nil {
		t.Error("missing root accepted")
	}
}

// TestDeployedWebApp drives the full deployment over HTTP: GET the form,
// POST an instance, list instances, reload prefilled.
func TestDeployedWebApp(t *testing.T) {
	app := parseApp(t)
	mux := http.NewServeMux()
	app.Deploy(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// GET the generated form.
	resp, err := srv.Client().Get(srv.URL + "/gaussianportal/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `name="application.method"`) {
		t.Fatalf("form page:\n%s", body)
	}

	// POST an instance.
	form := url.Values{
		"_instanceName":              {"water-hf"},
		"application.name":           {"gaussian"},
		"application.nodes":          {"4"},
		"application.method":         {"HF"},
		"application.flag":           {"-direct"},
		"application.execution.host": {"bluehorizon.sdsc.edu"},
	}
	resp, err = srv.Client().PostForm(srv.URL+"/gaussianportal/", form)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<host>bluehorizon.sdsc.edu</host>") {
		t.Fatalf("POST result %d:\n%s", resp.StatusCode, body)
	}

	// Instance list.
	resp, _ = srv.Client().Get(srv.URL + "/gaussianportal/instances")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "water-hf" {
		t.Errorf("instances = %q", body)
	}

	// Reload prefilled form.
	resp, _ = srv.Client().Get(srv.URL + "/gaussianportal/?instance=water-hf")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `value="gaussian"`) {
		t.Error("prefill from saved instance missing")
	}

	// Missing instance 404s; invalid POST 400s.
	resp, _ = srv.Client().Get(srv.URL + "/gaussianportal/?instance=ghost")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("ghost instance status = %d", resp.StatusCode)
	}
	resp, _ = srv.Client().PostForm(srv.URL+"/gaussianportal/", url.Values{"application.nodes": {"NaN"}})
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("invalid POST status = %d", resp.StatusCode)
	}
}

func TestWidgetValueOnNestedDefaults(t *testing.T) {
	app := parseApp(t)
	obj := databind.NewDataObject(app.Root)
	page := RenderForm("/x", app.Root, obj)
	if !strings.Contains(page, `value="1"`) {
		t.Error("default not rendered from fresh object")
	}
}
