// Package persist defines the pluggable persistence seam between the
// portal's stateful services (uddi, xmlregistry, contextmgr) and a durable
// backend (internal/wal). Services write every mutation through a Store as
// an (op, record) pair, replay the store into an empty in-memory state on
// boot, and periodically compact the log into a snapshot of current state.
// A nil *Binding is a valid no-op store, so a service wired for persistence
// but started without a data directory keeps today's purely in-memory
// behavior with no extra branches at call sites.
package persist

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
)

// Store is the persistence backend contract. internal/wal provides the
// durable implementation; tests may substitute in-memory fakes.
//
// The contract services rely on:
//   - Append returns only after the record is durable (the acknowledgement
//     recovery preserves), and preserves call order for calls that do not
//     overlap in time.
//   - Replay streams snapshot records first, then log records in append
//     order. Records may be replayed that are also reflected in the
//     snapshot, so apply functions must be idempotent (upsert semantics).
//   - Compact asks the service to re-emit its current state via dump; the
//     resulting snapshot supersedes all earlier records. Appends may run
//     concurrently with the dump.
type Store interface {
	Append(op string, data []byte) error
	Replay(apply func(op string, data []byte) error) error
	Compact(dump func(add func(op string, data []byte) error) error) error
	Size() int64
	Close() error
}

// DefaultCompactAfter is the active-log size at which a Binding schedules a
// compaction.
const DefaultCompactAfter = 4 << 20

// Binding couples one service to its Store: it JSON-encodes mutation
// records, paces compaction off the log size, and runs compactions on a
// background goroutine so a mutation that happens to trip the threshold
// never dumps state from under its own locks (the dump takes the service's
// shard read locks, which the logging call path may hold for writing).
//
// All methods are nil-safe: a nil *Binding logs nothing and recovers
// nothing.
type Binding struct {
	store Store
	dump  func(add func(op string, data []byte) error) error

	// CompactAfter overrides DefaultCompactAfter when set before use.
	CompactAfter int64

	compacting atomic.Bool
	wg         sync.WaitGroup
}

// Bind wraps a store and the service's state-dump function. The caller has
// already replayed the store; from here on every mutation must go through
// Log.
func Bind(store Store, dump func(add func(op string, data []byte) error) error) *Binding {
	return &Binding{store: store, dump: dump, CompactAfter: DefaultCompactAfter}
}

// Log durably appends one JSON-encoded mutation record. It returns only
// after the record is fsynced (or immediately, on a nil Binding); a non-nil
// error means the mutation must not be acknowledged as durable.
func (b *Binding) Log(op string, v interface{}) error {
	if b == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("persist: encode %s: %w", op, err)
	}
	if err := b.store.Append(op, data); err != nil {
		return fmt.Errorf("persist: append %s: %w", op, err)
	}
	b.maybeCompact()
	return nil
}

// maybeCompact schedules a background compaction when the active log has
// outgrown the threshold and none is already running.
func (b *Binding) maybeCompact() {
	if b.store.Size() < b.CompactAfter || !b.compacting.CompareAndSwap(false, true) {
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer b.compacting.Store(false)
		if err := b.store.Compact(b.dump); err != nil {
			// The old generation is intact and the log keeps growing;
			// the next threshold crossing retries.
			log.Printf("persist: compaction failed: %v", err)
		}
	}()
}

// Compact runs one compaction synchronously (tests, shutdown hooks).
func (b *Binding) Compact() error {
	if b == nil {
		return nil
	}
	return b.store.Compact(b.dump)
}

// Close waits for any background compaction, then closes the store. The
// service must have stopped logging before calling Close.
func (b *Binding) Close() error {
	if b == nil {
		return nil
	}
	b.wg.Wait()
	return b.store.Close()
}

// AddJSON JSON-encodes one record into a Compact dump's add sink; dump
// implementations use it so their records round-trip through the same
// encoding Log uses.
func AddJSON(add func(op string, data []byte) error, op string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("persist: encode %s: %w", op, err)
	}
	return add(op, data)
}
