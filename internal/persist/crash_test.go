package persist_test

// Crash-recovery chaos test for the persistence tier: a child copy of this
// test binary opens a WAL-backed UDDI registry, hammers it with concurrent
// publishes, and prints an ACK line after each durable save; the parent
// SIGKILLs it mid-stream and then verifies that a fresh registry recovered
// from the same directory holds every acknowledged write exactly once and
// never re-mints a key the dead incarnation already handed out.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"

	"repro/internal/uddi"
	"repro/internal/wal"
)

const (
	crashHelperEnv = "PERSIST_CRASH_HELPER"
	crashDirEnv    = "PERSIST_CRASH_DIR"
	crashWriters   = 8
)

// TestHelperCrashWriter is the child process body, not a real test: it only
// runs when re-exec'd by TestCrashRecoveryKill9 with the env vars set. It
// never exits on its own — the parent kills it.
func TestHelperCrashWriter(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("crash-writer helper; driven by TestCrashRecoveryKill9")
	}
	l, err := wal.Open(os.Getenv(crashDirEnv), wal.Options{})
	if err != nil {
		fmt.Printf("ERR open: %v\n", err)
		os.Exit(1)
	}
	reg := uddi.NewRegistry()
	if err := reg.Persist(l); err != nil {
		fmt.Printf("ERR persist: %v\n", err)
		os.Exit(1)
	}
	var mu sync.Mutex // one ACK line at a time on stdout
	var wg sync.WaitGroup
	for w := 0; w < crashWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				b, err := reg.SaveBusiness(uddi.BusinessEntity{
					Name:        fmt.Sprintf("crash-biz-w%d-n%d", w, i),
					Description: "published under fire",
				})
				if err != nil {
					fmt.Printf("ERR save: %v\n", err)
					return
				}
				// The save returned, so the record is fsynced: this ACK is a
				// durability promise recovery must honor.
				mu.Lock()
				fmt.Printf("ACK %s %s\n", b.Key, b.Name)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func TestCrashRecoveryKill9(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperCrashWriter$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Collect ACKs; kill -9 mid-stream once enough writes are in flight, then
	// drain to EOF. The final line may be torn by the kill — a torn ACK is a
	// write whose durability was never observed, so it is discarded, exactly
	// like the WAL discards its own torn final frame.
	acked := map[string]string{} // key -> name
	killed := false
	r := bufio.NewReader(stdout)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "ACK" {
			t.Fatalf("helper said: %s", strings.TrimSpace(line))
		}
		if _, dup := acked[f[1]]; dup {
			t.Fatalf("helper acked key %s twice", f[1])
		}
		acked[f[1]] = f[2]
		if len(acked) >= 25 && !killed {
			killed = true
			if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
				t.Fatal(err)
			}
		}
	}
	cmd.Wait() // expected to report the kill; the pipe EOF is the real signal
	if !killed {
		t.Fatalf("helper exited on its own after %d acks", len(acked))
	}
	if len(acked) < 25 {
		t.Fatalf("only %d acks collected", len(acked))
	}

	// Recover. Every acknowledged write must be present and correct.
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	reg := uddi.NewRegistry()
	if err := reg.Persist(l); err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	defer reg.ClosePersist()
	for key, name := range acked {
		b, err := reg.GetBusiness(key)
		if err != nil {
			t.Errorf("acked business %s (%s) lost: %v", key, name, err)
			continue
		}
		if b.Name != name {
			t.Errorf("business %s recovered with name %q, want %q", key, b.Name, name)
		}
	}
	// No duplicates: each acked name maps to exactly one entity (FindBusiness
	// matches substrings, so count exact-name hits).
	for _, name := range acked {
		n := 0
		for _, b := range reg.FindBusiness(name) {
			if b.Name == name {
				n++
			}
		}
		if n != 1 {
			t.Errorf("name %q appears %d times after recovery, want exactly 1", name, n)
		}
	}
	// The key-allocation sequence must have recovered past everything the
	// dead incarnation handed out: fresh saves may never collide with acked
	// keys (the restart-from-zero key-reuse bug).
	for i := 0; i < 100; i++ {
		b, err := reg.SaveBusiness(uddi.BusinessEntity{Name: fmt.Sprintf("post-crash-%d", i)})
		if err != nil {
			t.Fatalf("post-crash save: %v", err)
		}
		if prior, clash := acked[b.Key]; clash {
			t.Fatalf("post-crash save reused key %s (previously %s)", b.Key, prior)
		}
	}
}
