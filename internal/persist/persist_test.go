package persist_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/wal"
)

// TestNilBindingIsNoOp pins the seam's central convenience: services wired
// for persistence but started without -data hold a nil *Binding, and every
// call must be a cheap no-op rather than a panic.
func TestNilBindingIsNoOp(t *testing.T) {
	var b *persist.Binding
	if err := b.Log("op", map[string]int{"x": 1}); err != nil {
		t.Fatalf("nil Log: %v", err)
	}
	if err := b.Compact(); err != nil {
		t.Fatalf("nil Compact: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestLogEncodeErrorNotAppended(t *testing.T) {
	l, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := persist.Bind(l, func(add func(string, []byte) error) error { return nil })
	if err := b.Log("bad", func() {}); err == nil { // funcs don't JSON-encode
		t.Fatal("unencodable value accepted")
	}
	if got := l.Size(); got != 0 {
		t.Fatalf("failed Log grew the store by %d bytes", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompaction drives Log past a tiny CompactAfter threshold and waits
// for the background compaction to shrink the active log, then verifies the
// snapshot round-trips through Replay with nothing lost.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	state := map[string]string{} // written only under Log call order (single goroutine)
	b := persist.Bind(l, func(add func(string, []byte) error) error {
		for k, v := range state {
			if err := persist.AddJSON(add, "kv", map[string]string{"k": k, "v": v}); err != nil {
				return err
			}
		}
		return nil
	})
	b.CompactAfter = 256
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%02d", i)
		state[k] = "value"
		if err := b.Log("kv", map[string]string{"k": k, "v": "value"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Size() >= 2*b.CompactAfter {
		if time.Now().After(deadline) {
			t.Fatalf("active log never compacted; size %d", l.Size())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := map[string]string{}
	if err := l2.Replay(func(op string, data []byte) error {
		var kv map[string]string
		if err := json.Unmarshal(data, &kv); err != nil {
			return err
		}
		got[kv["k"]] = kv["v"]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(state) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(state))
	}
	for k, v := range state {
		if got[k] != v {
			t.Fatalf("key %s = %q after recovery, want %q", k, got[k], v)
		}
	}
}
