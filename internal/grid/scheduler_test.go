package grid

import (
	"strings"
	"testing"
	"time"
)

func testHost(t *testing.T, kind SchedulerKind) (*Host, *Clock) {
	t.Helper()
	clock := NewClock()
	h := NewHost(HostConfig{Name: "test.example.edu", IP: "10.0.0.1", CPUs: 8, Scheduler: kind}, clock)
	return h, clock
}

func TestSubmitAndDrain(t *testing.T) {
	h, _ := testHost(t, PBS)
	id, err := h.Scheduler.Submit(JobSpec{Executable: "/bin/hostname", Queue: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(id, ".test") {
		t.Errorf("id = %q", id)
	}
	h.Scheduler.Drain()
	job, err := h.Scheduler.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCompleted {
		t.Fatalf("state = %s (%s)", job.State, job.Reason)
	}
	if job.Result.Stdout != "test.example.edu\n" {
		t.Errorf("stdout = %q", job.Result.Stdout)
	}
	if !job.EndTime.After(job.StartTime) && job.Result.CPUTime > 0 {
		t.Errorf("times: start=%v end=%v", job.StartTime, job.EndTime)
	}
}

func TestSubmitValidation(t *testing.T) {
	h, _ := testHost(t, LSF)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no executable", JobSpec{Queue: "batch"}},
		{"unknown queue", JobSpec{Executable: "/bin/date", Queue: "nope"}},
		{"too many nodes for queue", JobSpec{Executable: "/bin/date", Queue: "debug", Nodes: 6}},
		{"too many nodes for host", JobSpec{Executable: "/bin/date", Queue: "batch", Nodes: 100}},
		{"walltime over queue limit", JobSpec{Executable: "/bin/date", Queue: "debug", WallTime: 2 * time.Hour}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := h.Scheduler.Submit(tc.spec); err == nil {
				t.Errorf("Submit(%+v) succeeded", tc.spec)
			}
		})
	}
}

func TestQueueDefaulting(t *testing.T) {
	h, _ := testHost(t, PBS)
	id, err := h.Scheduler.Submit(JobSpec{Executable: "/bin/date"})
	if err != nil {
		t.Fatal(err)
	}
	job, _ := h.Scheduler.Status(id)
	if job.Spec.Queue != "batch" {
		t.Errorf("defaulted queue = %q", job.Spec.Queue)
	}
	if job.Spec.WallTime != 12*time.Hour {
		t.Errorf("defaulted walltime = %s", job.Spec.WallTime)
	}
	if job.Spec.Name != "STDIN" {
		t.Errorf("defaulted name = %q", job.Spec.Name)
	}
}

func TestWalltimeKill(t *testing.T) {
	h, _ := testHost(t, PBS)
	// debug queue: 30 minute cap; sleep 3600s > 30m when explicit walltime
	// of 1 minute is given.
	id, err := h.Scheduler.Submit(JobSpec{
		Executable: "/bin/sleep", Args: []string{"3600"}, Queue: "debug", WallTime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Scheduler.Drain()
	job, _ := h.Scheduler.Status(id)
	if job.State != StateFailed {
		t.Fatalf("state = %s", job.State)
	}
	if !strings.Contains(job.Reason, "walltime") {
		t.Errorf("reason = %q", job.Reason)
	}
	if !strings.Contains(job.Result.Stderr, "killed") {
		t.Errorf("stderr = %q", job.Result.Stderr)
	}
	if got := job.EndTime.Sub(job.StartTime); got != time.Minute {
		t.Errorf("ran for %s, want 1m", got)
	}
}

func TestFailedExitCode(t *testing.T) {
	h, _ := testHost(t, GRD)
	id, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/false"})
	h.Scheduler.Drain()
	job, _ := h.Scheduler.Status(id)
	if job.State != StateFailed || !strings.Contains(job.Reason, "exit code 1") {
		t.Errorf("job = %s %q", job.State, job.Reason)
	}
}

func TestCommandNotFound(t *testing.T) {
	h, _ := testHost(t, NQS)
	id, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/missing"})
	h.Scheduler.Drain()
	job, _ := h.Scheduler.Status(id)
	if job.State != StateFailed || job.Result.ExitCode != 127 {
		t.Errorf("job = %s exit=%d", job.State, job.Result.ExitCode)
	}
}

func TestCapacityQueueing(t *testing.T) {
	h, clock := testHost(t, PBS) // 8 CPUs
	// Two 6-node jobs cannot run together.
	id1, err := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"100"}, Nodes: 6, Queue: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"100"}, Nodes: 6, Queue: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := h.Scheduler.Status(id1)
	j2, _ := h.Scheduler.Status(id2)
	if j1.State != StateRunning || j2.State != StateQueued {
		t.Fatalf("states = %s, %s", j1.State, j2.State)
	}
	// After the first completes, the second starts.
	clock.Advance(100 * time.Second)
	h.Scheduler.Tick()
	j2, _ = h.Scheduler.Status(id2)
	if j2.State != StateRunning {
		t.Fatalf("second job = %s", j2.State)
	}
	if !j2.StartTime.Equal(j1.EndTime) {
		t.Errorf("second start %v != first end %v", j2.StartTime, j1.EndTime)
	}
	h.Scheduler.Drain()
	j2, _ = h.Scheduler.Status(id2)
	if j2.State != StateCompleted {
		t.Errorf("final state = %s", j2.State)
	}
}

func TestPriorityOrdering(t *testing.T) {
	h, _ := testHost(t, PBS)
	// Fill the machine so later submissions queue.
	blocker, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"50"}, Nodes: 8, Queue: "batch"})
	low, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"10"}, Nodes: 4, Queue: "batch"})
	high, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"10"}, Nodes: 4, Queue: "debug", WallTime: 10 * time.Minute})
	h.Scheduler.Drain()
	jb, _ := h.Scheduler.Status(blocker)
	jl, _ := h.Scheduler.Status(low)
	jh, _ := h.Scheduler.Status(high)
	if jh.StartTime.After(jl.StartTime) {
		t.Errorf("debug (priority 2) started %v after batch %v", jh.StartTime, jl.StartTime)
	}
	if jb.State != StateCompleted || jl.State != StateCompleted || jh.State != StateCompleted {
		t.Error("not all jobs completed")
	}
}

func TestCancel(t *testing.T) {
	h, _ := testHost(t, LSF)
	// Running job.
	id1, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"1000"}, Nodes: 8})
	// Queued job behind it.
	id2, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"1000"}, Nodes: 8})
	if err := h.Scheduler.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	j2, _ := h.Scheduler.Status(id2)
	if j2.State != StateCancelled {
		t.Errorf("queued cancel = %s", j2.State)
	}
	if err := h.Scheduler.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	if err := h.Scheduler.Cancel(id1); err == nil {
		t.Error("double cancel accepted")
	}
	if err := h.Scheduler.Cancel("bogus.id"); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	if !h.Scheduler.Idle() {
		t.Error("scheduler not idle after cancels")
	}
}

func TestStatusUnknown(t *testing.T) {
	h, _ := testHost(t, PBS)
	if _, err := h.Scheduler.Status("1.nowhere"); err == nil {
		t.Error("unknown job status returned")
	}
}

func TestSnapshot(t *testing.T) {
	h, _ := testHost(t, PBS)
	_, _ = h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"100"}, Nodes: 8, Queue: "batch"})
	_, _ = h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"100"}, Nodes: 8, Queue: "batch"})
	snap := h.Scheduler.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("queues = %d", len(snap))
	}
	var batch QueueInfo
	for _, qi := range snap {
		if qi.Queue.Name == "batch" {
			batch = qi
		}
	}
	if batch.Running != 1 || batch.Queued != 1 {
		t.Errorf("batch load = %+v", batch)
	}
}

func TestQueuesSorted(t *testing.T) {
	h, _ := testHost(t, PBS)
	qs := h.Scheduler.Queues()
	if len(qs) != 2 || qs[0].Name != "debug" {
		t.Errorf("queues = %+v (want debug first: priority 2)", qs)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	run := func() []time.Time {
		h, _ := testHost(t, PBS)
		var ids []string
		for i := 0; i < 5; i++ {
			id, _ := h.Scheduler.Submit(JobSpec{Executable: "/bin/sleep", Args: []string{"60"}, Nodes: 4})
			ids = append(ids, id)
		}
		h.Scheduler.Drain()
		var ends []time.Time
		for _, id := range ids {
			j, _ := h.Scheduler.Status(id)
			ends = append(ends, j.EndTime)
		}
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("run %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// --- Script dialect tests ---------------------------------------------------

func TestParseScriptPBS(t *testing.T) {
	script := `#!/bin/bash
#PBS -N myrun
#PBS -q batch
#PBS -l nodes=4,walltime=01:30:00
# a plain comment
/usr/local/bin/matmul 512 < input.dat`
	spec, err := ParseScript(PBS, script)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "myrun" || spec.Queue != "batch" || spec.Nodes != 4 {
		t.Errorf("spec = %+v", spec)
	}
	if spec.WallTime != 90*time.Minute {
		t.Errorf("walltime = %s", spec.WallTime)
	}
	if spec.Executable != "/usr/local/bin/matmul" || len(spec.Args) != 1 || spec.Args[0] != "512" {
		t.Errorf("cmd = %q %q", spec.Executable, spec.Args)
	}
	if spec.Stdin != "input.dat" {
		t.Errorf("stdin = %q", spec.Stdin)
	}
}

func TestParseScriptLSF(t *testing.T) {
	script := `#!/bin/sh
#BSUB -J lsfjob
#BSUB -q normal
#BSUB -n 16
#BSUB -W 45
/bin/hostname`
	spec, err := ParseScript(LSF, script)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "lsfjob" || spec.Nodes != 16 || spec.WallTime != 45*time.Minute {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseScriptNQS(t *testing.T) {
	script := `#QSUB -r nqsjob
#QSUB -q prod
#QSUB -lP 8
#QSUB -lT 600
/bin/date`
	spec, err := ParseScript(NQS, script)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "nqsjob" || spec.Nodes != 8 || spec.WallTime != 10*time.Minute {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseScriptGRD(t *testing.T) {
	script := `#!/bin/sh
#$ -N grdjob
#$ -q all.q
#$ -pe mpi 12
#$ -l h_rt=7200
/bin/echo done`
	spec, err := ParseScript(GRD, script)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "grdjob" || spec.Nodes != 12 || spec.WallTime != 2*time.Hour {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.Args) != 1 || spec.Args[0] != "done" {
		t.Errorf("args = %q", spec.Args)
	}
}

func TestParseScriptErrors(t *testing.T) {
	if _, err := ParseScript(PBS, "#PBS -N x\n"); err == nil {
		t.Error("script without command accepted")
	}
	if _, err := ParseScript(PBS, "#PBS -l walltime=bogus\n/bin/date"); err == nil {
		t.Error("bad walltime accepted")
	}
	if _, err := ParseScript(LSF, "#BSUB -n NaN\n/bin/date"); err == nil {
		t.Error("bad -n accepted")
	}
	if _, err := ParseScript(GRD, "#$ -l h_rt=NaN\n/bin/date"); err == nil {
		t.Error("bad h_rt accepted")
	}
	if _, err := ParseScript(NQS, "#QSUB -lT NaN\n/bin/date"); err == nil {
		t.Error("bad -lT accepted")
	}
}

func TestFormatHMS(t *testing.T) {
	if got := FormatHMS(90*time.Minute + 5*time.Second); got != "01:30:05" {
		t.Errorf("FormatHMS = %q", got)
	}
	d, err := parseHMS("01:30:05")
	if err != nil || d != 90*time.Minute+5*time.Second {
		t.Errorf("parseHMS = %v, %v", d, err)
	}
	if _, err := parseHMS("90m"); err == nil {
		t.Error("bad HMS accepted")
	}
}
