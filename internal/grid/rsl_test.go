package grid

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseRSLBasic(t *testing.T) {
	rsl, err := ParseRSL(`&(executable=/bin/hostname)(count=4)(queue=batch)(maxWallTime=60)`)
	if err != nil {
		t.Fatal(err)
	}
	if rsl.Get("executable") != "/bin/hostname" {
		t.Errorf("executable = %q", rsl.Get("executable"))
	}
	if rsl.GetInt("count", 1) != 4 {
		t.Errorf("count = %d", rsl.GetInt("count", 1))
	}
	spec := rsl.JobSpec()
	if spec.Nodes != 4 || spec.Queue != "batch" || spec.WallTime != time.Hour {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Name != "STDIN" {
		t.Errorf("default name = %q", spec.Name)
	}
}

func TestParseRSLArgumentsAndQuotes(t *testing.T) {
	rsl, err := ParseRSL(`&(executable=/bin/echo)(arguments=hello "grid world" "with ""quotes""")`)
	if err != nil {
		t.Fatal(err)
	}
	args := rsl.GetAll("arguments")
	want := []string{"hello", "grid world", `with "quotes"`}
	if !reflect.DeepEqual(args, want) {
		t.Errorf("args = %q, want %q", args, want)
	}
}

func TestParseRSLCaseInsensitiveAttrs(t *testing.T) {
	rsl, err := ParseRSL(`&(Executable=/bin/date)(MAXWALLTIME=5)`)
	if err != nil {
		t.Fatal(err)
	}
	if rsl.Get("executable") != "/bin/date" || rsl.GetInt("maxwalltime", 0) != 5 {
		t.Errorf("case-insensitive lookup failed: %+v", rsl.Attributes)
	}
}

func TestParseRSLErrors(t *testing.T) {
	bad := []string{
		"",
		"(executable=/bin/date)",        // missing &
		"&",                             // no relations
		"&(executable)",                 // no =
		"&(executable=/bin/date",        // unterminated
		`&(executable="/bin/date)`,      // unterminated quote
		"&(executable=/bin/date)extra)", // trailing garbage
	}
	for _, in := range bad {
		if _, err := ParseRSL(in); err == nil {
			t.Errorf("ParseRSL(%q) succeeded", in)
		}
	}
}

func TestParseMultiRSL(t *testing.T) {
	multi := `+(&(executable=/bin/date))(&(executable=/bin/hostname)(count=2))`
	reqs, err := ParseMultiRSL(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("reqs = %d", len(reqs))
	}
	if reqs[1].GetInt("count", 0) != 2 {
		t.Errorf("second count = %d", reqs[1].GetInt("count", 0))
	}
	// A single request also parses.
	one, err := ParseMultiRSL(`&(executable=/bin/date)`)
	if err != nil || len(one) != 1 {
		t.Errorf("single = %v, %v", one, err)
	}
	if _, err := ParseMultiRSL("+"); err == nil {
		t.Error("empty multi accepted")
	}
	if _, err := ParseMultiRSL("+(executable=x)"); err == nil {
		t.Error("multi without & accepted")
	}
}

func TestFormatRSLRoundTrip(t *testing.T) {
	spec := JobSpec{
		Name:       "run42",
		Executable: "/usr/local/bin/matmul",
		Args:       []string{"512", "two words"},
		Stdin:      "input.deck",
		Queue:      "batch",
		Nodes:      8,
		WallTime:   90 * time.Minute,
	}
	rsl, err := ParseRSL(FormatRSL(spec))
	if err != nil {
		t.Fatal(err)
	}
	got := rsl.JobSpec()
	got.Owner = spec.Owner
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, spec)
	}
}

// Property: FormatRSL∘ParseRSL∘JobSpec is identity on well-formed specs.
func TestPropertyRSLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := JobSpec{
			Name:       pick(r, []string{"", "job1", "run-42", "STDIN"}),
			Executable: pick(r, []string{"/bin/date", "/bin/echo", "/usr/local/bin/matmul"}),
			Queue:      pick(r, []string{"", "batch", "debug", "all.q"}),
			Nodes:      1 + r.Intn(16),
			WallTime:   time.Duration(r.Intn(120)) * time.Minute,
		}
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			spec.Args = append(spec.Args, pick(r, []string{"a", "with space", `qu"oted`, "128"}))
		}
		parsed, err := ParseRSL(FormatRSL(spec))
		if err != nil {
			t.Logf("seed %d: %v (rsl=%s)", seed, err, FormatRSL(spec))
			return false
		}
		got := parsed.JobSpec()
		// Name defaulting: empty name formats to nothing, parses to STDIN.
		wantName := spec.Name
		if wantName == "" {
			wantName = "STDIN"
		}
		if got.Name != wantName || got.Executable != spec.Executable ||
			got.Queue != spec.Queue || got.Nodes != spec.Nodes || got.WallTime != spec.WallTime {
			t.Logf("seed %d: got %+v want %+v", seed, got, spec)
			return false
		}
		if !reflect.DeepEqual(got.Args, spec.Args) {
			t.Logf("seed %d: args %q want %q", seed, got.Args, spec.Args)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func pick(r *rand.Rand, choices []string) string {
	return choices[r.Intn(len(choices))]
}

func TestFormatRSLQuoting(t *testing.T) {
	out := FormatRSL(JobSpec{Executable: "/bin/echo", Args: []string{"has space"}})
	if !strings.Contains(out, `"has space"`) {
		t.Errorf("quoting missing: %s", out)
	}
}
