package grid

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// RSL is a parsed Globus Resource Specification Language request: a
// conjunction of attribute/value relations, e.g.
//
//	&(executable=/bin/hostname)(count=4)(queue=batch)(maxWallTime=60)
//
// Values with spaces are double-quoted; the arguments attribute takes a
// whitespace-separated list. Multi-request RSL (+ operator) is handled by
// ParseMultiRSL.
type RSL struct {
	// Attributes maps lower-cased attribute names to their value lists.
	Attributes map[string][]string
}

// Get returns the first value of an attribute, or "".
func (r *RSL) Get(name string) string {
	vs := r.Attributes[strings.ToLower(name)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// GetAll returns every value of an attribute.
func (r *RSL) GetAll(name string) []string {
	return r.Attributes[strings.ToLower(name)]
}

// GetInt returns an attribute as an int, or def when absent/invalid.
func (r *RSL) GetInt(name string, def int) int {
	v := r.Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// JobSpec converts the RSL request into a scheduler job specification.
// Globus conventions: executable, arguments, count (processes), queue,
// maxWallTime (minutes), jobType, stdin, environment.
func (r *RSL) JobSpec() JobSpec {
	spec := JobSpec{
		Name:       r.Get("jobName"),
		Executable: r.Get("executable"),
		Args:       r.GetAll("arguments"),
		Stdin:      r.Get("stdin"),
		Queue:      r.Get("queue"),
		Nodes:      r.GetInt("count", 1),
		WallTime:   time.Duration(r.GetInt("maxWallTime", 0)) * time.Minute,
	}
	if spec.Name == "" {
		spec.Name = "STDIN"
	}
	return spec
}

// ParseRSL parses a single conjunctive RSL request.
func ParseRSL(input string) (*RSL, error) {
	p := &rslParser{input: input}
	p.skipSpace()
	if !p.consume('&') {
		return nil, p.errf("expected '&' at start of RSL request")
	}
	rsl, err := p.parseRelations()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.done() {
		return nil, p.errf("trailing input after RSL request")
	}
	return rsl, nil
}

// ParseMultiRSL parses a multi-request: +(&(...))(&(...)) — the form the
// Globusrun Web Service's XML job DTD maps onto. A single conjunctive
// request is also accepted and yields one element.
func ParseMultiRSL(input string) ([]*RSL, error) {
	p := &rslParser{input: input}
	p.skipSpace()
	if !p.consume('+') {
		one, err := ParseRSL(input)
		if err != nil {
			return nil, err
		}
		return []*RSL{one}, nil
	}
	var out []*RSL
	for {
		p.skipSpace()
		if p.done() {
			break
		}
		if !p.consume('(') {
			return nil, p.errf("expected '(' opening sub-request")
		}
		p.skipSpace()
		if !p.consume('&') {
			return nil, p.errf("expected '&' in sub-request")
		}
		rsl, err := p.parseRelations()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(')') {
			return nil, p.errf("expected ')' closing sub-request")
		}
		out = append(out, rsl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid: rsl: empty multi-request")
	}
	return out, nil
}

type rslParser struct {
	input string
	pos   int
}

func (p *rslParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("grid: rsl at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *rslParser) done() bool { return p.pos >= len(p.input) }

func (p *rslParser) peek() byte {
	if p.done() {
		return 0
	}
	return p.input[p.pos]
}

func (p *rslParser) consume(c byte) bool {
	if !p.done() && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *rslParser) skipSpace() {
	for !p.done() && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
}

// parseRelations parses a sequence of (name=value...) relations following
// an '&'.
func (p *rslParser) parseRelations() (*RSL, error) {
	rsl := &RSL{Attributes: map[string][]string{}}
	for {
		p.skipSpace()
		if p.done() || p.peek() == ')' {
			break
		}
		if !p.consume('(') {
			return nil, p.errf("expected '(' opening relation")
		}
		p.skipSpace()
		name := p.readName()
		if name == "" {
			return nil, p.errf("expected attribute name")
		}
		p.skipSpace()
		if !p.consume('=') {
			return nil, p.errf("expected '=' after attribute %q", name)
		}
		var values []string
		for {
			p.skipSpace()
			if p.done() {
				return nil, p.errf("unterminated relation for %q", name)
			}
			if p.peek() == ')' {
				p.pos++
				break
			}
			v, err := p.readValue()
			if err != nil {
				return nil, err
			}
			values = append(values, v)
		}
		key := strings.ToLower(name)
		rsl.Attributes[key] = append(rsl.Attributes[key], values...)
	}
	if len(rsl.Attributes) == 0 {
		return nil, p.errf("request has no relations")
	}
	return rsl, nil
}

func (p *rslParser) readName() string {
	start := p.pos
	for !p.done() {
		c := p.input[p.pos]
		if c == '=' || c == ' ' || c == '\t' || c == '(' || c == ')' {
			break
		}
		p.pos++
	}
	return p.input[start:p.pos]
}

func (p *rslParser) readValue() (string, error) {
	if p.peek() == '"' {
		p.pos++
		var b strings.Builder
		for {
			if p.done() {
				return "", p.errf("unterminated quoted value")
			}
			c := p.input[p.pos]
			if c == '"' {
				// RSL escapes a quote by doubling it.
				if p.pos+1 < len(p.input) && p.input[p.pos+1] == '"' {
					b.WriteByte('"')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), nil
			}
			b.WriteByte(c)
			p.pos++
		}
	}
	start := p.pos
	for !p.done() {
		c := p.input[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == ')' || c == '(' {
			break
		}
		p.pos++
	}
	if start == p.pos {
		return "", p.errf("empty value")
	}
	return p.input[start:p.pos], nil
}

// FormatRSL renders a JobSpec as a conjunctive RSL request, the inverse of
// ParseRSL followed by JobSpec.
func FormatRSL(spec JobSpec) string {
	var b strings.Builder
	b.WriteByte('&')
	rel := func(name, value string) {
		if value == "" {
			return
		}
		b.WriteByte('(')
		b.WriteString(name)
		b.WriteByte('=')
		if strings.ContainsAny(value, " \t()") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(value, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(value)
		}
		b.WriteByte(')')
	}
	if spec.Name != "" && spec.Name != "STDIN" {
		rel("jobName", spec.Name)
	}
	rel("executable", spec.Executable)
	if len(spec.Args) > 0 {
		b.WriteString("(arguments=")
		for i, a := range spec.Args {
			if i > 0 {
				b.WriteByte(' ')
			}
			if strings.ContainsAny(a, " \t()") || a == "" {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(a, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(a)
			}
		}
		b.WriteByte(')')
	}
	rel("stdin", spec.Stdin)
	rel("queue", spec.Queue)
	if spec.Nodes > 1 {
		rel("count", strconv.Itoa(spec.Nodes))
	}
	if spec.WallTime > 0 {
		rel("maxWallTime", strconv.Itoa(int(spec.WallTime/time.Minute)))
	}
	return b.String()
}
