package grid

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Host is one simulated HPC machine: identity, processor count, installed
// programs, a small workspace filesystem, and one batch scheduler.
type Host struct {
	// Name is the DNS name, e.g. "modi4.ncsa.uiuc.edu".
	Name string
	// IP is the dotted-quad address (descriptor metadata).
	IP string
	// CPUs is the processor count.
	CPUs int
	// WorkDir is the scratch directory path advertised to descriptors.
	WorkDir string
	// Scheduler is the host's batch system.
	Scheduler *Scheduler

	clock    *Clock
	mu       sync.RWMutex
	programs map[string]Program
	files    map[string]string
}

// HostConfig describes a host to create.
type HostConfig struct {
	Name      string
	IP        string
	CPUs      int
	WorkDir   string
	Scheduler SchedulerKind
	Queues    []Queue
}

// NewHost builds a host with the standard program set and the configured
// scheduler.
func NewHost(cfg HostConfig, clock *Clock) *Host {
	h := &Host{
		Name:     cfg.Name,
		IP:       cfg.IP,
		CPUs:     cfg.CPUs,
		WorkDir:  cfg.WorkDir,
		clock:    clock,
		programs: standardPrograms(),
		files:    map[string]string{},
	}
	if h.WorkDir == "" {
		h.WorkDir = "/scratch"
	}
	queues := cfg.Queues
	if len(queues) == 0 {
		queues = []Queue{
			{Name: "batch", MaxWallTime: 12 * time.Hour, MaxNodes: cfg.CPUs, Priority: 1},
			{Name: "debug", MaxWallTime: 30 * time.Minute, MaxNodes: 4, Priority: 2},
		}
	}
	h.Scheduler = NewScheduler(cfg.Scheduler, shortName(cfg.Name), cfg.CPUs, clock, queues, h.execute)
	return h
}

func shortName(dns string) string {
	if i := strings.IndexByte(dns, '.'); i > 0 {
		return dns[:i]
	}
	return dns
}

// InstallProgram registers an executable on the host.
func (h *Host) InstallProgram(path string, p Program) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.programs[path] = p
}

// WriteFile stores a workspace file (descriptor staging, SRB get/put
// targets).
func (h *Host) WriteFile(path, content string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.files[path] = content
}

// ReadFile reads a workspace file.
func (h *Host) ReadFile(path string) (string, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	content, ok := h.files[path]
	if !ok {
		return "", fmt.Errorf("grid: host %s: no such file %q", h.Name, path)
	}
	return content, nil
}

// ListFiles returns the sorted workspace file paths.
func (h *Host) ListFiles() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.files))
	for p := range h.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// execute runs a program for the scheduler. Stdin values that name a
// workspace file are resolved from the host filesystem.
func (h *Host) execute(spec JobSpec, nodes int, now time.Time) ExecResult {
	h.mu.RLock()
	prog, ok := h.programs[spec.Executable]
	stdin := spec.Stdin
	if content, exists := h.files[stdin]; exists {
		stdin = content
	}
	h.mu.RUnlock()
	if !ok {
		return ExecResult{
			ExitCode: 127,
			Stderr:   fmt.Sprintf("%s: command not found\n", spec.Executable),
			CPUTime:  time.Millisecond,
		}
	}
	return prog(ProgramContext{Host: h, Args: spec.Args, Stdin: stdin, Nodes: nodes, Now: now})
}

// Run executes a program immediately (a GRAM "fork" job), bypassing the
// batch system; the virtual clock advances by the consumed CPU time.
func (h *Host) Run(spec JobSpec) ExecResult {
	now := h.clock.Now()
	res := h.execute(spec, maxInt(spec.Nodes, 1), now)
	h.clock.Advance(res.CPUTime)
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Gatekeeper -------------------------------------------------------------

// Gatekeeper is the GRAM-style entry point on a host: it authenticates the
// caller against the grid-map, parses RSL, and routes to the batch system
// or to immediate (fork) execution. The paper's Globusrun Web Service is a
// SOAP facade over exactly this interface.
type Gatekeeper struct {
	// Host is the machine the gatekeeper fronts.
	Host *Host

	mu      sync.RWMutex
	gridmap map[string]bool
}

// NewGatekeeper creates a gatekeeper with an empty grid-map.
func NewGatekeeper(h *Host) *Gatekeeper {
	return &Gatekeeper{Host: h, gridmap: map[string]bool{}}
}

// Authorize adds a principal to the grid-map.
func (g *Gatekeeper) Authorize(principal string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gridmap[principal] = true
}

// Authorized reports whether a principal is in the grid-map.
func (g *Gatekeeper) Authorized(principal string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.gridmap[principal]
}

// Submit authenticates, parses the RSL request, and submits it to the
// host's batch system, returning the job contact string.
func (g *Gatekeeper) Submit(principal, rsl string) (string, error) {
	if !g.Authorized(principal) {
		return "", fmt.Errorf("gram: %s: principal %q not in grid-map", g.Host.Name, principal)
	}
	req, err := ParseRSL(rsl)
	if err != nil {
		return "", err
	}
	spec := req.JobSpec()
	spec.Owner = principal
	id, err := g.Host.Scheduler.Submit(spec)
	if err != nil {
		return "", fmt.Errorf("gram: %s: %w", g.Host.Name, err)
	}
	return fmt.Sprintf("https://%s:2119/%s", g.Host.Name, id), nil
}

// jobIDFromContact extracts the scheduler job ID from a contact string.
func jobIDFromContact(contact string) string {
	if i := strings.LastIndex(contact, "/"); i >= 0 {
		return contact[i+1:]
	}
	return contact
}

// Status polls a submitted job by its contact string.
func (g *Gatekeeper) Status(contact string) (Job, error) {
	return g.Host.Scheduler.Status(jobIDFromContact(contact))
}

// Cancel cancels a submitted job.
func (g *Gatekeeper) Cancel(contact string) error {
	return g.Host.Scheduler.Cancel(jobIDFromContact(contact))
}

// Run authenticates and executes the RSL request synchronously: batch
// requests are submitted and drained; fork requests run immediately. This
// mirrors the blocking behaviour of the globusrun command-line tool the
// SDSC service wrapped.
func (g *Gatekeeper) Run(principal, rsl string) (Job, error) {
	if !g.Authorized(principal) {
		return Job{}, fmt.Errorf("gram: %s: principal %q not in grid-map", g.Host.Name, principal)
	}
	req, err := ParseRSL(rsl)
	if err != nil {
		return Job{}, err
	}
	spec := req.JobSpec()
	spec.Owner = principal
	if strings.EqualFold(req.Get("jobType"), "fork") {
		now := g.Host.clock.Now()
		res := g.Host.Run(spec)
		state := StateCompleted
		reason := ""
		if res.ExitCode != 0 {
			state = StateFailed
			reason = fmt.Sprintf("exit code %d", res.ExitCode)
		}
		return Job{
			ID: "fork." + shortName(g.Host.Name), Spec: spec, State: state,
			SubmitTime: now, StartTime: now, EndTime: g.Host.clock.Now(),
			Result: res, Reason: reason,
		}, nil
	}
	id, err := g.Host.Scheduler.Submit(spec)
	if err != nil {
		return Job{}, fmt.Errorf("gram: %s: %w", g.Host.Name, err)
	}
	g.Host.Scheduler.Drain()
	return g.Host.Scheduler.Status(id)
}

// --- Grid (testbed) ---------------------------------------------------------

// Grid is a collection of hosts sharing one virtual clock — the simulated
// testbed.
type Grid struct {
	// Clock is the shared virtual clock.
	Clock *Clock

	mu          sync.RWMutex
	hosts       map[string]*Host
	gatekeepers map[string]*Gatekeeper
}

// NewGrid returns an empty grid with a fresh clock.
func NewGrid() *Grid {
	return &Grid{
		Clock:       NewClock(),
		hosts:       map[string]*Host{},
		gatekeepers: map[string]*Gatekeeper{},
	}
}

// AddHost creates a host from config and attaches a gatekeeper.
func (g *Grid) AddHost(cfg HostConfig) *Host {
	h := NewHost(cfg, g.Clock)
	gk := NewGatekeeper(h)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hosts[cfg.Name] = h
	g.gatekeepers[cfg.Name] = gk
	return h
}

// Host returns a host by DNS name.
func (g *Grid) Host(name string) (*Host, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	h, ok := g.hosts[name]
	if !ok {
		return nil, fmt.Errorf("grid: unknown host %q", name)
	}
	return h, nil
}

// Gatekeeper returns the gatekeeper for a host.
func (g *Grid) Gatekeeper(name string) (*Gatekeeper, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	gk, ok := g.gatekeepers[name]
	if !ok {
		return nil, fmt.Errorf("grid: no gatekeeper on %q", name)
	}
	return gk, nil
}

// HostNames returns the sorted host names.
func (g *Grid) HostNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.hosts))
	for n := range g.hosts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Authorize adds a principal to every host's grid-map.
func (g *Grid) Authorize(principal string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, gk := range g.gatekeepers {
		gk.Authorize(principal)
	}
}

// NewTestbed builds the canonical four-host testbed used by examples,
// tests, and benchmarks: one host per queuing system the paper's script
// generators support, with 2002-flavoured names.
func NewTestbed() *Grid {
	g := NewGrid()
	g.AddHost(HostConfig{
		Name: "modi4.ncsa.uiuc.edu", IP: "141.142.30.72", CPUs: 48, Scheduler: PBS,
		Queues: []Queue{
			{Name: "batch", MaxWallTime: 12 * time.Hour, MaxNodes: 48, Priority: 1},
			{Name: "debug", MaxWallTime: 30 * time.Minute, MaxNodes: 4, Priority: 2},
		},
	})
	g.AddHost(HostConfig{
		Name: "bluehorizon.sdsc.edu", IP: "198.202.96.41", CPUs: 128, Scheduler: LSF,
		Queues: []Queue{
			{Name: "normal", MaxWallTime: 18 * time.Hour, MaxNodes: 128, Priority: 1},
			{Name: "express", MaxWallTime: 2 * time.Hour, MaxNodes: 8, Priority: 3},
		},
	})
	g.AddHost(HostConfig{
		Name: "tcsini.psc.edu", IP: "128.182.99.12", CPUs: 64, Scheduler: NQS,
		Queues: []Queue{
			{Name: "prod", MaxWallTime: 24 * time.Hour, MaxNodes: 64, Priority: 1},
		},
	})
	g.AddHost(HostConfig{
		Name: "hpc-sge.iu.edu", IP: "129.79.240.10", CPUs: 32, Scheduler: GRD,
		Queues: []Queue{
			{Name: "all.q", MaxWallTime: 8 * time.Hour, MaxNodes: 32, Priority: 1},
		},
	})
	return g
}
