package grid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ExecResult is the outcome of running a program on a host.
type ExecResult struct {
	// Stdout and Stderr are the captured streams.
	Stdout string
	Stderr string
	// ExitCode is the program's exit status.
	ExitCode int
	// CPUTime is the simulated compute time the run consumed; the
	// scheduler charges this against walltime limits.
	CPUTime time.Duration
}

// ProgramContext is what a synthetic program sees when it runs.
type ProgramContext struct {
	// Host is the machine the program runs on.
	Host *Host
	// Args are the command arguments (not including the program path).
	Args []string
	// Stdin is the standard input contents.
	Stdin string
	// Nodes is the processor count granted to the job.
	Nodes int
	// Now is the virtual time at program start.
	Now time.Time
}

// Program is a synthetic executable: deterministic, side-effect-free except
// through its result.
type Program func(ctx ProgramContext) ExecResult

// standardPrograms returns the executables installed on every testbed host,
// mirroring the binaries the paper's examples submit (hostname, date, echo)
// plus synthetic science codes for the application-service experiments.
func standardPrograms() map[string]Program {
	return map[string]Program{
		"/bin/hostname": func(ctx ProgramContext) ExecResult {
			return ExecResult{Stdout: ctx.Host.Name + "\n", CPUTime: 10 * time.Millisecond}
		},
		"/bin/date": func(ctx ProgramContext) ExecResult {
			return ExecResult{Stdout: ctx.Now.Format(time.UnixDate) + "\n", CPUTime: 10 * time.Millisecond}
		},
		"/bin/echo": func(ctx ProgramContext) ExecResult {
			return ExecResult{Stdout: strings.Join(ctx.Args, " ") + "\n", CPUTime: 10 * time.Millisecond}
		},
		"/bin/cat": func(ctx ProgramContext) ExecResult {
			return ExecResult{Stdout: ctx.Stdin, CPUTime: 10 * time.Millisecond}
		},
		"/bin/false": func(ctx ProgramContext) ExecResult {
			return ExecResult{ExitCode: 1, Stderr: "false: exit 1\n", CPUTime: time.Millisecond}
		},
		// sleep consumes the requested seconds of walltime.
		"/bin/sleep": func(ctx ProgramContext) ExecResult {
			secs := 1
			if len(ctx.Args) > 0 {
				if n, err := strconv.Atoi(ctx.Args[0]); err == nil {
					secs = n
				}
			}
			return ExecResult{CPUTime: time.Duration(secs) * time.Second}
		},
		// matmul simulates an O(n^3) dense matrix multiply; runtime scales
		// with n^3 / nodes. Used by the application-service examples.
		"/usr/local/bin/matmul": func(ctx ProgramContext) ExecResult {
			n := 256
			if len(ctx.Args) > 0 {
				if v, err := strconv.Atoi(ctx.Args[0]); err == nil && v > 0 {
					n = v
				}
			}
			nodes := ctx.Nodes
			if nodes < 1 {
				nodes = 1
			}
			// 1e9 multiply-adds per virtual second per node.
			flops := float64(n) * float64(n) * float64(n) * 2
			secs := flops / (1e9 * float64(nodes))
			cpu := time.Duration(secs * float64(time.Second))
			if cpu < time.Millisecond {
				cpu = time.Millisecond
			}
			checksum := (uint64(n)*2654435761 + uint64(nodes)) % 1000003
			return ExecResult{
				Stdout:  fmt.Sprintf("matmul n=%d nodes=%d checksum=%d\n", n, nodes, checksum),
				CPUTime: cpu,
			}
		},
		// gaussian simulates the quantum-chemistry code the paper names as
		// the canonical Application Web Service target. Input is a "route
		// card" on stdin; runtime scales with basis-set size.
		"/usr/local/bin/gaussian": func(ctx ProgramContext) ExecResult {
			basis := 6
			method := "HF"
			for _, line := range strings.Split(ctx.Stdin, "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "#") {
					fields := strings.Fields(strings.TrimPrefix(line, "#"))
					if len(fields) > 0 {
						method = fields[0]
					}
				}
				if strings.HasPrefix(line, "basis=") {
					if v, err := strconv.Atoi(strings.TrimPrefix(line, "basis=")); err == nil {
						basis = v
					}
				}
			}
			if strings.TrimSpace(ctx.Stdin) == "" {
				return ExecResult{ExitCode: 2, Stderr: "gaussian: no input deck\n", CPUTime: time.Millisecond}
			}
			secs := float64(basis*basis) / 10.0
			energy := -76.0 - float64(basis)*0.01
			return ExecResult{
				Stdout: fmt.Sprintf("Entering Gaussian System\nMethod: %s basis=%d\nSCF Done: E = %.6f\nNormal termination.\n",
					method, basis, energy),
				CPUTime: time.Duration(secs * float64(time.Second)),
			}
		},
	}
}

// ProgramNames returns the sorted installed program paths of a host.
func (h *Host) ProgramNames() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.programs))
	for n := range h.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
