// Package grid simulates the computational-grid substrate the paper's job
// submission services ran on: Globus-style gatekeepers driven by RSL
// (Resource Specification Language) requests, batch schedulers in the four
// dialects the paper names (PBS, LSF, NQS, and GRD/SGE), hosts with
// synthetic executables, and a virtual clock that makes every run
// deterministic. The paper's services submitted real jobs to real queues at
// NCSA and SDSC; this package preserves the semantics those services depend
// on — submit, queue, run, poll, collect output, hit walltime limits — on a
// laptop.
package grid

import (
	"sync"
	"time"
)

// Epoch is the virtual time origin: the paper's submission year.
var Epoch = time.Date(2002, time.June, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock shared by every component of one grid. Time only
// moves when Advance is called, which makes scheduler behaviour (queue
// waits, walltime kills, job ordering) reproducible in tests and
// benchmarks.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock set to the Epoch.
func NewClock() *Clock {
	return &Clock{now: Epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored) and returns
// the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}
