package grid

import (
	"strings"
	"testing"
	"time"
)

func TestHostFilesAndPrograms(t *testing.T) {
	g := NewTestbed()
	h, err := g.Host("modi4.ncsa.uiuc.edu")
	if err != nil {
		t.Fatal(err)
	}
	h.WriteFile("/scratch/input.dat", "data")
	got, err := h.ReadFile("/scratch/input.dat")
	if err != nil || got != "data" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
	if _, err := h.ReadFile("/nope"); err == nil {
		t.Error("missing file read succeeded")
	}
	files := h.ListFiles()
	if len(files) != 1 || files[0] != "/scratch/input.dat" {
		t.Errorf("files = %v", files)
	}
	progs := h.ProgramNames()
	if len(progs) < 5 {
		t.Errorf("programs = %v", progs)
	}
}

func TestHostRunFork(t *testing.T) {
	g := NewTestbed()
	h, _ := g.Host("modi4.ncsa.uiuc.edu")
	before := g.Clock.Now()
	res := h.Run(JobSpec{Executable: "/bin/echo", Args: []string{"hi"}})
	if res.Stdout != "hi\n" || res.ExitCode != 0 {
		t.Errorf("res = %+v", res)
	}
	if !g.Clock.Now().After(before) {
		t.Error("fork run did not advance clock")
	}
}

func TestStdinFileResolution(t *testing.T) {
	g := NewTestbed()
	h, _ := g.Host("modi4.ncsa.uiuc.edu")
	h.WriteFile("/scratch/deck", "file contents")
	res := h.Run(JobSpec{Executable: "/bin/cat", Stdin: "/scratch/deck"})
	if res.Stdout != "file contents" {
		t.Errorf("stdin resolution failed: %q", res.Stdout)
	}
	// Literal stdin still works when no file matches.
	res = h.Run(JobSpec{Executable: "/bin/cat", Stdin: "literal"})
	if res.Stdout != "literal" {
		t.Errorf("literal stdin = %q", res.Stdout)
	}
}

func TestGatekeeperAuthz(t *testing.T) {
	g := NewTestbed()
	gk, err := g.Gatekeeper("bluehorizon.sdsc.edu")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gk.Submit("mock@SDSC.EDU", "&(executable=/bin/date)"); err == nil {
		t.Error("unauthorized submit accepted")
	}
	gk.Authorize("mock@SDSC.EDU")
	if !gk.Authorized("mock@SDSC.EDU") {
		t.Error("Authorize did not take")
	}
	contact, err := gk.Submit("mock@SDSC.EDU", "&(executable=/bin/date)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(contact, "https://bluehorizon.sdsc.edu:2119/") {
		t.Errorf("contact = %q", contact)
	}
	gk.Host.Scheduler.Drain()
	job, err := gk.Status(contact)
	if err != nil || job.State != StateCompleted {
		t.Errorf("job = %+v, %v", job, err)
	}
}

func TestGatekeeperRunSynchronous(t *testing.T) {
	g := NewTestbed()
	g.Authorize("cyoun@IU.EDU")
	gk, _ := g.Gatekeeper("modi4.ncsa.uiuc.edu")
	job, err := gk.Run("cyoun@IU.EDU", "&(executable=/bin/hostname)(queue=debug)(maxWallTime=5)")
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCompleted || job.Result.Stdout != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("job = %+v", job)
	}
	if job.Spec.Owner != "cyoun@IU.EDU" {
		t.Errorf("owner = %q", job.Spec.Owner)
	}
}

func TestGatekeeperRunFork(t *testing.T) {
	g := NewTestbed()
	g.Authorize("u@X")
	gk, _ := g.Gatekeeper("hpc-sge.iu.edu")
	job, err := gk.Run("u@X", "&(executable=/bin/echo)(arguments=fork mode)(jobType=fork)")
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCompleted || job.Result.Stdout != "fork mode\n" {
		t.Errorf("job = %+v", job)
	}
	if !strings.HasPrefix(job.ID, "fork.") {
		t.Errorf("id = %q", job.ID)
	}
	// Fork failure propagates state.
	job, err = gk.Run("u@X", "&(executable=/bin/false)(jobType=fork)")
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateFailed {
		t.Errorf("state = %s", job.State)
	}
}

func TestGatekeeperRunErrors(t *testing.T) {
	g := NewTestbed()
	gk, _ := g.Gatekeeper("modi4.ncsa.uiuc.edu")
	if _, err := gk.Run("nobody", "&(executable=/bin/date)"); err == nil {
		t.Error("unauthorized run accepted")
	}
	g.Authorize("u@X")
	if _, err := gk.Run("u@X", "not rsl"); err == nil {
		t.Error("bad RSL accepted")
	}
	if _, err := gk.Run("u@X", "&(executable=/bin/date)(queue=nope)"); err == nil {
		t.Error("bad queue accepted")
	}
	if _, err := gk.Submit("u@X", "garbage"); err == nil {
		t.Error("bad RSL submit accepted")
	}
}

func TestGatekeeperCancel(t *testing.T) {
	g := NewTestbed()
	g.Authorize("u@X")
	gk, _ := g.Gatekeeper("tcsini.psc.edu")
	contact, err := gk.Submit("u@X", "&(executable=/bin/sleep)(arguments=5000)")
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Cancel(contact); err != nil {
		t.Fatal(err)
	}
	job, _ := gk.Status(contact)
	if job.State != StateCancelled {
		t.Errorf("state = %s", job.State)
	}
}

func TestTestbedTopology(t *testing.T) {
	g := NewTestbed()
	names := g.HostNames()
	if len(names) != 4 {
		t.Fatalf("hosts = %v", names)
	}
	kinds := map[SchedulerKind]bool{}
	for _, n := range names {
		h, _ := g.Host(n)
		kinds[h.Scheduler.Kind] = true
	}
	for _, k := range AllSchedulerKinds {
		if !kinds[k] {
			t.Errorf("testbed missing scheduler %s", k)
		}
	}
	if _, err := g.Host("missing.example.org"); err == nil {
		t.Error("unknown host returned")
	}
	if _, err := g.Gatekeeper("missing.example.org"); err == nil {
		t.Error("unknown gatekeeper returned")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if !c.Now().Equal(Epoch) {
		t.Errorf("epoch = %v", c.Now())
	}
	c.Advance(time.Hour)
	if got := c.Now().Sub(Epoch); got != time.Hour {
		t.Errorf("advanced = %s", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now().Sub(Epoch); got != time.Hour {
		t.Errorf("negative advance changed clock: %s", got)
	}
	c.AdvanceTo(Epoch) // earlier: ignored
	if got := c.Now().Sub(Epoch); got != time.Hour {
		t.Errorf("backwards AdvanceTo changed clock: %s", got)
	}
}

func TestGaussianProgram(t *testing.T) {
	g := NewTestbed()
	h, _ := g.Host("bluehorizon.sdsc.edu")
	res := h.Run(JobSpec{
		Executable: "/usr/local/bin/gaussian",
		Stdin:      "# B3LYP opt\nbasis=10\n\nwater molecule\n0 1\nO\nH 1 0.96\nH 1 0.96 2 104.5\n",
	})
	if res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Stdout, "Method: B3LYP") || !strings.Contains(res.Stdout, "SCF Done") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.CPUTime != 10*time.Second {
		t.Errorf("cputime = %s (basis=10 should give 10s)", res.CPUTime)
	}
	// Empty deck fails.
	res = h.Run(JobSpec{Executable: "/usr/local/bin/gaussian", Stdin: "  "})
	if res.ExitCode == 0 {
		t.Error("empty deck accepted")
	}
}

func TestMatmulScaling(t *testing.T) {
	g := NewTestbed()
	h, _ := g.Host("bluehorizon.sdsc.edu")
	r1 := h.execute(JobSpec{Executable: "/usr/local/bin/matmul", Args: []string{"512"}}, 1, g.Clock.Now())
	r4 := h.execute(JobSpec{Executable: "/usr/local/bin/matmul", Args: []string{"512"}}, 4, g.Clock.Now())
	if r4.CPUTime >= r1.CPUTime {
		t.Errorf("4 nodes (%s) not faster than 1 (%s)", r4.CPUTime, r1.CPUTime)
	}
	ratio := float64(r1.CPUTime) / float64(r4.CPUTime)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("speedup = %.2f, want ~4", ratio)
	}
}
