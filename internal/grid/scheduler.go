package grid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SchedulerKind names the four queuing systems the paper's batch script
// services support (Section 3.4): PBS and GRD at IU, LSF and NQS at SDSC.
type SchedulerKind string

// The supported queuing systems.
const (
	PBS SchedulerKind = "PBS" // Portable Batch System
	LSF SchedulerKind = "LSF" // Load Sharing Facility
	NQS SchedulerKind = "NQS" // Network Queueing System
	GRD SchedulerKind = "GRD" // Global Resource Director (SGE lineage)
)

// AllSchedulerKinds lists every supported queuing system.
var AllSchedulerKinds = []SchedulerKind{PBS, LSF, NQS, GRD}

// JobState is the lifecycle state of a batch job.
type JobState string

// Job lifecycle states.
const (
	StateQueued    JobState = "QUEUED"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
	StateCancelled JobState = "CANCELLED"
)

// JobSpec describes a job to submit.
type JobSpec struct {
	// Name is the job name (schedulers default it to STDIN).
	Name string
	// Owner is the submitting principal.
	Owner string
	// Executable is the program path on the host.
	Executable string
	// Args are the program arguments.
	Args []string
	// Stdin is the program's standard input.
	Stdin string
	// Queue names the target queue; empty selects the default queue.
	Queue string
	// Nodes is the processor count requested (>= 1).
	Nodes int
	// WallTime is the requested wallclock limit; zero uses the queue
	// default.
	WallTime time.Duration
}

// Job is a submitted job and its progress.
type Job struct {
	// ID is the scheduler-assigned identifier (e.g. "1042.modi4").
	ID string
	// Spec is the submitted specification after queue defaulting.
	Spec JobSpec
	// State is the current lifecycle state.
	State JobState
	// SubmitTime, StartTime, EndTime are virtual timestamps; Start/End are
	// zero until reached.
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
	// Result holds the program outcome once the job completes.
	Result ExecResult
	// Reason explains failure or cancellation.
	Reason string
}

// Queue describes one scheduler queue.
type Queue struct {
	// Name of the queue.
	Name string
	// MaxWallTime is the longest run the queue admits.
	MaxWallTime time.Duration
	// MaxNodes is the widest job the queue admits.
	MaxNodes int
	// Priority orders queues when picking the next job (higher first).
	Priority int
}

// Scheduler simulates one batch queuing system on a host: FIFO within
// priority, node-count capacity, walltime enforcement against the virtual
// clock.
type Scheduler struct {
	// Kind is the queuing-system dialect.
	Kind SchedulerKind
	// HostName tags job IDs.
	HostName string
	// TotalNodes is the host's processor count.
	TotalNodes int

	clock *Clock

	mu        sync.Mutex
	queues    map[string]*Queue
	defQueue  string
	pending   []*Job
	running   []*Job
	jobs      map[string]*Job
	seq       int
	freeNodes int
	exec      func(spec JobSpec, nodes int, now time.Time) ExecResult
}

// NewScheduler creates a scheduler with the given queues; the first queue
// is the default. exec runs a job's program (supplied by the host).
func NewScheduler(kind SchedulerKind, hostName string, totalNodes int, clock *Clock,
	queues []Queue, exec func(JobSpec, int, time.Time) ExecResult) *Scheduler {
	s := &Scheduler{
		Kind:       kind,
		HostName:   hostName,
		TotalNodes: totalNodes,
		clock:      clock,
		queues:     map[string]*Queue{},
		jobs:       map[string]*Job{},
		freeNodes:  totalNodes,
		exec:       exec,
	}
	for i := range queues {
		q := queues[i]
		s.queues[q.Name] = &q
		if i == 0 {
			s.defQueue = q.Name
		}
	}
	return s
}

// Queues returns the queue definitions sorted by descending priority then
// name.
func (s *Scheduler) Queues() []Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Queue, 0, len(s.queues))
	for _, q := range s.queues {
		out = append(out, *q)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Submit validates and enqueues a job, returning its ID.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.Executable == "" {
		return "", fmt.Errorf("%s: job has no executable", s.Kind)
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.Queue == "" {
		spec.Queue = s.defQueue
	}
	q, ok := s.queues[spec.Queue]
	if !ok {
		return "", fmt.Errorf("%s: unknown queue %q", s.Kind, spec.Queue)
	}
	if q.MaxNodes > 0 && spec.Nodes > q.MaxNodes {
		return "", fmt.Errorf("%s: queue %s admits at most %d nodes, requested %d", s.Kind, q.Name, q.MaxNodes, spec.Nodes)
	}
	if spec.Nodes > s.TotalNodes {
		return "", fmt.Errorf("%s: host has %d nodes, requested %d", s.Kind, s.TotalNodes, spec.Nodes)
	}
	if spec.WallTime == 0 {
		spec.WallTime = q.MaxWallTime
	}
	if q.MaxWallTime > 0 && spec.WallTime > q.MaxWallTime {
		return "", fmt.Errorf("%s: queue %s walltime limit %s exceeded by request %s", s.Kind, q.Name, q.MaxWallTime, spec.WallTime)
	}
	if spec.Name == "" {
		spec.Name = "STDIN"
	}
	s.seq++
	job := &Job{
		ID:         fmt.Sprintf("%d.%s", s.seq, s.HostName),
		Spec:       spec,
		State:      StateQueued,
		SubmitTime: s.clock.Now(),
	}
	s.pending = append(s.pending, job)
	s.jobs[job.ID] = job
	s.tickLocked()
	return job.ID, nil
}

// Status returns a snapshot of a job.
func (s *Scheduler) Status(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tickLocked()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%s: unknown job %q", s.Kind, id)
	}
	return *j, nil
}

// Cancel removes a queued job or kills a running one.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%s: unknown job %q", s.Kind, id)
	}
	switch j.State {
	case StateQueued:
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
	case StateRunning:
		for i, rj := range s.running {
			if rj == j {
				s.running = append(s.running[:i], s.running[i+1:]...)
				s.freeNodes += j.Spec.Nodes
				break
			}
		}
	default:
		return fmt.Errorf("%s: job %q already %s", s.Kind, id, j.State)
	}
	j.State = StateCancelled
	j.EndTime = s.clock.Now()
	j.Reason = "cancelled by user"
	s.tickLocked()
	return nil
}

// Tick processes completions due at the current virtual time and starts
// queued jobs that fit.
func (s *Scheduler) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tickLocked()
}

func (s *Scheduler) tickLocked() {
	now := s.clock.Now()
	// Complete running jobs whose end time has passed.
	var stillRunning []*Job
	for _, j := range s.running {
		if !j.EndTime.After(now) {
			s.freeNodes += j.Spec.Nodes
			if j.Reason == "walltime" {
				j.State = StateFailed
				j.Reason = fmt.Sprintf("job exceeded walltime limit %s", j.Spec.WallTime)
				j.Result.Stderr += fmt.Sprintf("=>> %s: job killed: walltime %s exceeded\n", s.Kind, j.Spec.WallTime)
			} else if j.Result.ExitCode != 0 {
				j.State = StateFailed
				j.Reason = fmt.Sprintf("exit code %d", j.Result.ExitCode)
			} else {
				j.State = StateCompleted
			}
		} else {
			stillRunning = append(stillRunning, j)
		}
	}
	s.running = stillRunning
	// Start pending jobs in priority order, FIFO within a priority level.
	sort.SliceStable(s.pending, func(i, j int) bool {
		pi := s.queues[s.pending[i].Spec.Queue].Priority
		pj := s.queues[s.pending[j].Spec.Queue].Priority
		return pi > pj
	})
	var stillPending []*Job
	for _, j := range s.pending {
		if j.Spec.Nodes <= s.freeNodes {
			s.startLocked(j, now)
		} else {
			stillPending = append(stillPending, j)
		}
	}
	s.pending = stillPending
}

func (s *Scheduler) startLocked(j *Job, now time.Time) {
	j.State = StateRunning
	j.StartTime = now
	s.freeNodes -= j.Spec.Nodes
	// Run the program eagerly to learn its duration; the job "finishes" in
	// virtual time at StartTime + CPUTime (or at the walltime limit).
	res := s.exec(j.Spec, j.Spec.Nodes, now)
	dur := res.CPUTime
	if dur <= 0 {
		dur = time.Millisecond
	}
	if j.Spec.WallTime > 0 && dur > j.Spec.WallTime {
		j.Reason = "walltime" // resolved at completion in tickLocked
		dur = j.Spec.WallTime
		res.Stdout = "" // output lost when the scheduler kills the job
	}
	j.Result = res
	j.EndTime = now.Add(dur)
	s.running = append(s.running, j)
}

// NextEvent returns the earliest virtual time at which a running job ends,
// and whether any job is running.
func (s *Scheduler) NextEvent() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var earliest time.Time
	found := false
	for _, j := range s.running {
		if !found || j.EndTime.Before(earliest) {
			earliest = j.EndTime
			found = true
		}
	}
	return earliest, found
}

// Idle reports whether the scheduler has no queued or running work.
func (s *Scheduler) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) == 0 && len(s.running) == 0
}

// Drain advances the virtual clock through every event until the scheduler
// is idle, then returns. Jobs submitted concurrently with Drain may also be
// processed.
func (s *Scheduler) Drain() {
	for {
		s.Tick()
		next, ok := s.NextEvent()
		if !ok {
			if s.Idle() {
				return
			}
			// Pending but nothing running: capacity freed by next tick.
			s.Tick()
			if s.Idle() {
				return
			}
			continue
		}
		s.clock.AdvanceTo(next)
	}
}

// QueueInfo is a point-in-time snapshot used by status displays (the
// HotPage-style machine status pages).
type QueueInfo struct {
	// Queue is the queue definition.
	Queue Queue
	// Queued and Running are job counts.
	Queued  int
	Running int
}

// Snapshot returns per-queue load.
func (s *Scheduler) Snapshot() []QueueInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := map[string]*QueueInfo{}
	for name, q := range s.queues {
		infos[name] = &QueueInfo{Queue: *q}
	}
	for _, j := range s.pending {
		infos[j.Spec.Queue].Queued++
	}
	for _, j := range s.running {
		infos[j.Spec.Queue].Running++
	}
	out := make([]QueueInfo, 0, len(infos))
	for _, qi := range infos {
		out = append(out, *qi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Queue.Name < out[j].Queue.Name })
	return out
}

// --- Batch script dialects -------------------------------------------------

// ParseScript parses a batch script in the scheduler's dialect into a
// JobSpec. It understands the directive forms the batch script generation
// services emit, and is the consuming half of the generator/scheduler
// round-trip property test.
func ParseScript(kind SchedulerKind, script string) (JobSpec, error) {
	spec := JobSpec{Nodes: 1}
	var cmd []string
	for _, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || line == "#!/bin/sh" || line == "#!/bin/bash" || line == "#!/bin/csh":
			continue
		case isDirective(kind, line):
			if err := parseDirective(kind, line, &spec); err != nil {
				return JobSpec{}, err
			}
		case strings.HasPrefix(line, "#"):
			continue // plain comment
		default:
			cmd = append(cmd, line)
		}
	}
	if len(cmd) == 0 {
		return JobSpec{}, fmt.Errorf("%s: script has no command", kind)
	}
	// First command word is the executable; the rest are arguments. Input
	// redirection "< file" is captured as stdin reference.
	fields := strings.Fields(cmd[len(cmd)-1])
	spec.Executable = fields[0]
	for i := 1; i < len(fields); i++ {
		if fields[i] == "<" && i+1 < len(fields) {
			spec.Stdin = fields[i+1]
			i++
			continue
		}
		spec.Args = append(spec.Args, fields[i])
	}
	return spec, nil
}

func isDirective(kind SchedulerKind, line string) bool {
	return strings.HasPrefix(line, directivePrefix(kind)+" ")
}

func directivePrefix(kind SchedulerKind) string {
	switch kind {
	case PBS:
		return "#PBS"
	case LSF:
		return "#BSUB"
	case NQS:
		return "#QSUB"
	case GRD:
		return "#$"
	default:
		return "#???"
	}
}

func parseDirective(kind SchedulerKind, line string, spec *JobSpec) error {
	fields := strings.Fields(strings.TrimPrefix(line, directivePrefix(kind)))
	if len(fields) == 0 {
		return nil
	}
	flag := fields[0]
	arg := ""
	if len(fields) > 1 {
		arg = strings.Join(fields[1:], " ")
	}
	switch kind {
	case PBS:
		switch flag {
		case "-N":
			spec.Name = arg
		case "-q":
			spec.Queue = arg
		case "-l":
			return parsePBSResource(arg, spec)
		}
	case LSF:
		switch flag {
		case "-J":
			spec.Name = arg
		case "-q":
			spec.Queue = arg
		case "-n":
			n, err := strconv.Atoi(arg)
			if err != nil {
				return fmt.Errorf("LSF: bad -n %q", arg)
			}
			spec.Nodes = n
		case "-W":
			mins, err := strconv.Atoi(arg)
			if err != nil {
				return fmt.Errorf("LSF: bad -W %q", arg)
			}
			spec.WallTime = time.Duration(mins) * time.Minute
		}
	case NQS:
		switch flag {
		case "-r":
			spec.Name = arg
		case "-q":
			spec.Queue = arg
		case "-lP":
			n, err := strconv.Atoi(arg)
			if err != nil {
				return fmt.Errorf("NQS: bad -lP %q", arg)
			}
			spec.Nodes = n
		case "-lT":
			secs, err := strconv.Atoi(arg)
			if err != nil {
				return fmt.Errorf("NQS: bad -lT %q", arg)
			}
			spec.WallTime = time.Duration(secs) * time.Second
		}
	case GRD:
		switch flag {
		case "-N":
			spec.Name = arg
		case "-q":
			spec.Queue = arg
		case "-pe":
			parts := strings.Fields(arg)
			if len(parts) == 2 {
				n, err := strconv.Atoi(parts[1])
				if err != nil {
					return fmt.Errorf("GRD: bad -pe %q", arg)
				}
				spec.Nodes = n
			}
		case "-l":
			if strings.HasPrefix(arg, "h_rt=") {
				secs, err := strconv.Atoi(strings.TrimPrefix(arg, "h_rt="))
				if err != nil {
					return fmt.Errorf("GRD: bad h_rt %q", arg)
				}
				spec.WallTime = time.Duration(secs) * time.Second
			}
		}
	}
	return nil
}

func parsePBSResource(arg string, spec *JobSpec) error {
	for _, item := range strings.Split(arg, ",") {
		kv := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "nodes":
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return fmt.Errorf("PBS: bad nodes %q", kv[1])
			}
			spec.Nodes = n
		case "walltime":
			d, err := parseHMS(kv[1])
			if err != nil {
				return fmt.Errorf("PBS: bad walltime %q", kv[1])
			}
			spec.WallTime = d
		}
	}
	return nil
}

func parseHMS(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("want HH:MM:SS, got %q", s)
	}
	h, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	sec, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("want HH:MM:SS, got %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(sec)*time.Second, nil
}

// FormatHMS renders a duration as HH:MM:SS for PBS walltime directives.
func FormatHMS(d time.Duration) string {
	h := int(d / time.Hour)
	m := int(d/time.Minute) % 60
	s := int(d/time.Second) % 60
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}
