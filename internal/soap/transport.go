package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/xmlutil"
)

// ContentType is the media type of SOAP 1.1 messages.
const ContentType = "text/xml; charset=utf-8"

// maxMessageBytes bounds how much of a request or response body is read.
// A variable only so boundary tests can exercise the limit without
// allocating 64 MiB bodies; production code treats it as a constant.
var maxMessageBytes int64 = 64 << 20

// MaxMessageBytes reports the message size limit both transport directions
// enforce.
func MaxMessageBytes() int64 { return maxMessageBytes }

// ErrMessageTooLarge marks a message rejected for exceeding the transport
// message limit. Oversize bodies are detected, never silently clipped: a
// truncated envelope would otherwise surface as a misleading XML parse
// error deep in the decoder.
var ErrMessageTooLarge = errors.New("soap: message too large")

// ReadMessage appends r's bytes to dst, enforcing the message limit by
// reading limit+1 bytes and reporting ErrMessageTooLarge when the extra
// byte arrives. A body of exactly the limit is accepted.
func ReadMessage(dst *bytes.Buffer, r io.Reader) error {
	n, err := io.Copy(dst, io.LimitReader(r, maxMessageBytes+1))
	if err != nil {
		return err
	}
	if n > maxMessageBytes {
		return ErrMessageTooLarge
	}
	return nil
}

// OversizeFault is the typed fault oversize requests are rejected with —
// a Client-code fault carrying a BadRequest portal error whose text is
// deterministic in the limit. The wire binding sends it with HTTP 413.
func OversizeFault() *Fault {
	pe := NewPortalError("soap", ErrCodeBadRequest,
		"request exceeds %d-byte message limit", maxMessageBytes)
	return &Fault{Code: FaultClient, String: pe.Message, Detail: []*xmlutil.Element{pe.Element()}}
}

// Transport posts a request envelope to an endpoint and returns the
// response envelope. Implementations include the HTTP transport below and
// the in-process loopback used by tests and benchmarks to isolate encoding
// cost from network cost.
type Transport interface {
	RoundTrip(endpoint string, action string, req *Envelope) (*Envelope, error)
}

// RawTransport is implemented by transports that can hand back the raw
// response envelope bytes, letting the caller choose the parse mode. The
// pooled client path (core.Client.CallPooled) uses it to parse responses
// into a recyclable element arena instead of a retained tree; resp is
// appended to and owned by the caller.
type RawTransport interface {
	Transport
	RoundTripRaw(endpoint string, action string, req *Envelope, resp *bytes.Buffer) error
}

// ContextTransport is implemented by transports that can scope one round
// trip to a context: cancelling it abandons the call. RoundTrip is
// equivalent to RoundTripCtx with context.Background().
type ContextTransport interface {
	Transport
	RoundTripCtx(ctx context.Context, endpoint, action string, req *Envelope) (*Envelope, error)
}

// ContextRawTransport is the raw-bytes variant of ContextTransport.
type ContextRawTransport interface {
	RawTransport
	RoundTripRawCtx(ctx context.Context, endpoint, action string, req *Envelope, resp *bytes.Buffer) error
}

// RoundTripContext performs one round trip under ctx when the transport
// supports it, falling back to the plain method (which ignores ctx beyond
// an up-front cancellation check) otherwise.
func RoundTripContext(ctx context.Context, t Transport, endpoint, action string, req *Envelope) (*Envelope, error) {
	if ct, ok := t.(ContextTransport); ok {
		return ct.RoundTripCtx(ctx, endpoint, action, req)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.RoundTrip(endpoint, action, req)
}

// RoundTripRawContext is RoundTripContext for the raw-bytes path.
func RoundTripRawContext(ctx context.Context, t RawTransport, endpoint, action string, req *Envelope, resp *bytes.Buffer) error {
	if ct, ok := t.(ContextRawTransport); ok {
		return ct.RoundTripRawCtx(ctx, endpoint, action, req, resp)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return t.RoundTripRaw(endpoint, action, req, resp)
}

var (
	defaultClientMu      sync.Mutex
	defaultClient        *http.Client
	defaultClientTimeout = 30 * time.Second
)

// DefaultClient returns the shared HTTP client used when an HTTPTransport
// has none configured. It is constructed once (per timeout setting) so TCP
// connections are pooled and reused across calls instead of being
// re-dialled per request.
func DefaultClient() *http.Client {
	defaultClientMu.Lock()
	defer defaultClientMu.Unlock()
	if defaultClient == nil {
		defaultClient = &http.Client{Timeout: defaultClientTimeout}
	}
	return defaultClient
}

// SetDefaultClientTimeout changes the whole-call timeout of the shared
// default HTTP client (30s initially; 0 disables it, leaving deadlines to
// request contexts). Transports that need a different budget per call
// should set HTTPTransport.Timeout or pass a request context instead.
func SetDefaultClientTimeout(d time.Duration) {
	defaultClientMu.Lock()
	defer defaultClientMu.Unlock()
	if d == defaultClientTimeout && defaultClient != nil {
		return
	}
	defaultClientTimeout = d
	defaultClient = &http.Client{Timeout: d}
}

// HTTPTransport sends SOAP messages over HTTP POST with a SOAPAction
// header, as the paper's Apache SOAP and Python SOAP services did.
type HTTPTransport struct {
	// Client is the underlying HTTP client; DefaultClient() when nil.
	Client *http.Client
	// Timeout, when positive and Client is nil, gives this transport its
	// own pooled client with that whole-call timeout instead of the shared
	// default's. Request contexts still apply: whichever expires first
	// cancels the call.
	Timeout time.Duration

	mu       sync.Mutex
	owned    *http.Client
	ownedFor time.Duration
}

// client resolves the HTTP client for one call.
func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	if t.Timeout > 0 {
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.owned == nil || t.ownedFor != t.Timeout {
			t.owned = &http.Client{Timeout: t.Timeout}
			t.ownedFor = t.Timeout
		}
		return t.owned
	}
	return DefaultClient()
}

// RoundTrip implements Transport over HTTP.
func (t *HTTPTransport) RoundTrip(endpoint, action string, req *Envelope) (*Envelope, error) {
	return t.RoundTripCtx(context.Background(), endpoint, action, req)
}

// RoundTripCtx implements ContextTransport over HTTP.
func (t *HTTPTransport) RoundTripCtx(ctx context.Context, endpoint, action string, req *Envelope) (*Envelope, error) {
	respBuf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(respBuf)
	if err := t.RoundTripRawCtx(ctx, endpoint, action, req, respBuf); err != nil {
		return nil, err
	}
	return ParseEnvelopeBytes(respBuf.Bytes())
}

// RoundTripRaw implements RawTransport over HTTP: the raw response
// envelope bytes are appended to respBuf without being parsed. On error
// respBuf is restored to its pre-call length, so callers may reuse one
// buffer across attempts.
func (t *HTTPTransport) RoundTripRaw(endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	return t.RoundTripRawCtx(context.Background(), endpoint, action, req, respBuf)
}

// RoundTripRawCtx implements ContextRawTransport over HTTP: the request is
// scoped to ctx, so a caller deadline cancels the post mid-flight.
func (t *HTTPTransport) RoundTripRawCtx(ctx context.Context, endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	mark := respBuf.Len()
	hc := t.client()
	reqBuf := xmlutil.GetBuffer()
	req.AppendTo(reqBuf)
	// Detach the bytes before handing them to net/http: Do can return
	// while the transport's write loop is still streaming the body, so the
	// pooled buffer must not be recycled under an aliasing reader.
	body := bytes.Clone(reqBuf.Bytes())
	xmlutil.PutBuffer(reqBuf)
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", ContentType)
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	resp, err := hc.Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: post %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	if err := ReadMessage(respBuf, resp.Body); err != nil {
		respBuf.Truncate(mark)
		if errors.Is(err, ErrMessageTooLarge) {
			return fmt.Errorf("soap: response from %s exceeds %d-byte message limit: %w",
				endpoint, maxMessageBytes, ErrMessageTooLarge)
		}
		return fmt.Errorf("soap: read response: %w", err)
	}
	// SOAP 1.1 uses HTTP 500 for faults; the envelope still parses.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
		respBuf.Truncate(mark)
		return fmt.Errorf("soap: endpoint %s returned HTTP %d", endpoint, resp.StatusCode)
	}
	return nil
}

// EnvelopeHandler processes one request envelope and produces a response
// envelope. ctx is the request's lifetime (the HTTP request context on the
// wire path, the caller's context in-process); handlers should stop work
// when it is cancelled. Returning an error that is (or wraps) a *Fault
// sends that fault; any other error becomes a generic Server fault.
type EnvelopeHandler func(ctx context.Context, req *Envelope, httpReq *http.Request) (*Envelope, error)

// RawEnvelopeHandler processes a request straight from its serialised
// bytes — the streaming decode fast path (core.Provider.DispatchRaw).
// handled=false means the request is outside the streaming subset and the
// caller must re-dispatch through the tree-parsing EnvelopeHandler; once
// handled is true the request has been executed (side effects included)
// and the envelope/error pair is final, with errors converted to fault
// envelopes exactly as for an EnvelopeHandler. The handler must not
// retain body past the call.
type RawEnvelopeHandler func(ctx context.Context, body []byte, httpReq *http.Request) (resp *Envelope, handled bool, err error)

// Handler adapts an EnvelopeHandler into an http.Handler implementing the
// SOAP 1.1 HTTP binding (faults are sent with status 500).
func Handler(h EnvelopeHandler) http.Handler {
	return HandlerWithRaw(h, nil)
}

// HandlerWithRaw is Handler with an optional streaming fast path: when raw
// is non-nil every request body is offered to it first, and only requests
// it does not handle are parsed into the pooled element tree for h.
func HandlerWithRaw(h EnvelopeHandler, raw RawEnvelopeHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "soap endpoint: POST required", http.StatusMethodNotAllowed)
			return
		}
		if r.ContentLength > maxMessageBytes {
			WriteFault(w, OversizeFault(), http.StatusRequestEntityTooLarge)
			return
		}
		body := xmlutil.GetBuffer()
		defer xmlutil.PutBuffer(body)
		if err := ReadMessage(body, r.Body); err != nil {
			if errors.Is(err, ErrMessageTooLarge) {
				WriteFault(w, OversizeFault(), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "soap endpoint: read error", http.StatusBadRequest)
			return
		}
		if raw != nil {
			if respEnv, handled, herr := raw(r.Context(), body.Bytes(), r); handled {
				if herr != nil {
					setRetryAfter(w, herr)
					respEnv = faultEnvelope(herr, FaultServer)
				}
				writeEnvelope(w, respEnv)
				return
			}
		}
		// The request envelope lives in a pooled element arena: it is only
		// needed until the response has been rendered, after which the whole
		// tree is recycled. Handlers must not retain request elements.
		env, doc, err := ParseEnvelopeBytesPooled(body.Bytes())
		var respEnv *Envelope
		var herr error
		if err != nil {
			respEnv = faultEnvelope(err, FaultClient)
		} else {
			var out *Envelope
			out, herr = h(r.Context(), env, r)
			if herr != nil {
				setRetryAfter(w, herr)
				respEnv = faultEnvelope(herr, FaultServer)
			} else {
				respEnv = out
			}
		}
		status := http.StatusOK
		if isFaultEnvelope(respEnv) {
			status = http.StatusInternalServerError
		}
		out := xmlutil.GetBuffer()
		defer xmlutil.PutBuffer(out)
		respEnv.AppendTo(out)
		// Response rendered: the request tree is no longer needed — unless
		// the handler was abandoned on deadline (Held), in which case a
		// detached goroutine may still read it and the arena must leak to
		// the garbage collector instead of being recycled underneath it.
		if doc != nil && !Held(herr) {
			doc.Release()
		}
		w.Header().Set("Content-Type", ContentType)
		w.WriteHeader(status)
		_, _ = w.Write(out.Bytes())
	})
}

// setRetryAfter relays a fault's retry advice (load shedding, drain) as
// the standard HTTP header.
func setRetryAfter(w http.ResponseWriter, err error) {
	if f := AsFault(err); f != nil && f.RetryAfter > 0 {
		secs := int((f.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
}

// writeEnvelope serialises one response envelope with the SOAP 1.1 HTTP
// status convention.
func writeEnvelope(w http.ResponseWriter, respEnv *Envelope) {
	status := http.StatusOK
	if isFaultEnvelope(respEnv) {
		status = http.StatusInternalServerError
	}
	out := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(out)
	respEnv.AppendTo(out)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(out.Bytes())
}

// WriteFault serialises f as a fault envelope onto w with the given HTTP
// status (0 selects the SOAP 1.1 default, 500), relaying any Retry-After
// advice the fault carries. Endpoints that reject requests outside the
// normal dispatch path — oversize bodies, the gateway with no healthy
// backend — use it to stay on the typed-fault contract instead of falling
// back to plain-text http.Error pages.
func WriteFault(w http.ResponseWriter, f *Fault, status int) {
	if status == 0 {
		status = http.StatusInternalServerError
	}
	setRetryAfter(w, f)
	out := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(out)
	(&Response{Fault: f}).WireEnvelope().AppendTo(out)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(out.Bytes())
}

// faultEnvelope converts any error into a fault response envelope with a
// streamed (tree-free) body. Portal errors are relayed in the detail entry
// so clients can decode them.
func faultEnvelope(err error, defaultCode string) *Envelope {
	f := AsFault(err)
	if f == nil {
		if pe := AsPortalError(err); pe != nil {
			f = pe.Fault()
		} else {
			f = &Fault{Code: defaultCode, String: err.Error()}
		}
	}
	return (&Response{Fault: f}).WireEnvelope()
}

func isFaultEnvelope(env *Envelope) bool {
	if env == nil {
		return false
	}
	if env.streamFault {
		return true
	}
	return len(env.Body) > 0 && env.Body[0].Name == "Fault" && env.Body[0].Space == EnvelopeNS
}

// LoopbackTransport invokes an EnvelopeHandler in-process, serialising and
// reparsing the envelopes so the encoding path is identical to the wire
// path. Benchmarks use it to separate XML processing cost from TCP cost.
type LoopbackTransport struct {
	// Handler receives every request regardless of endpoint.
	Handler EnvelopeHandler
	// Raw, when non-nil, is offered the serialised request bytes before
	// Handler, mirroring the HTTP handler's streaming fast path; requests
	// it does not handle fall through to the tree-parsing Handler.
	Raw RawEnvelopeHandler
	// Endpoints optionally routes per-endpoint when Handler is nil.
	Endpoints map[string]EnvelopeHandler
}

// RoundTrip implements Transport in-process.
func (t *LoopbackTransport) RoundTrip(endpoint, action string, req *Envelope) (*Envelope, error) {
	return t.RoundTripCtx(context.Background(), endpoint, action, req)
}

// RoundTripCtx implements ContextTransport in-process.
func (t *LoopbackTransport) RoundTripCtx(ctx context.Context, endpoint, action string, req *Envelope) (*Envelope, error) {
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	if err := t.RoundTripRawCtx(ctx, endpoint, action, req, buf); err != nil {
		return nil, err
	}
	return ParseEnvelopeBytes(buf.Bytes())
}

// RoundTripRaw implements RawTransport in-process: the serialised response
// envelope is appended to respBuf without being parsed.
func (t *LoopbackTransport) RoundTripRaw(endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	return t.RoundTripRawCtx(context.Background(), endpoint, action, req, respBuf)
}

// RoundTripRawCtx implements ContextRawTransport in-process, handing ctx
// straight to the handler chain (there is no wire to cancel).
func (t *LoopbackTransport) RoundTripRawCtx(ctx context.Context, endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	h := t.Handler
	if h == nil {
		var ok bool
		h, ok = t.Endpoints[endpoint]
		if !ok {
			return fmt.Errorf("soap: loopback: no handler for endpoint %q", endpoint)
		}
	}
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	// Serialise and reparse to keep byte-level fidelity with HTTP. The
	// request-side tree is arena-pooled exactly as in the HTTP handler.
	req.AppendTo(buf)
	// Handlers receive a nil *http.Request in-process: Context.HTTPRequest
	// is documented as HTTP-only, and synthesising one per call (URL parse,
	// header map) would dominate the loopback overhead the benchmarks are
	// built to isolate.
	if t.Raw != nil && t.Handler != nil {
		if out, handled, herr := t.Raw(ctx, buf.Bytes(), nil); handled {
			if herr != nil {
				out = faultEnvelope(herr, FaultServer)
			}
			out.AppendTo(respBuf)
			return nil
		}
	}
	wire, doc, err := ParseEnvelopeBytesPooled(buf.Bytes())
	if err != nil {
		return err
	}
	out, herr := h(ctx, wire, nil)
	if herr != nil {
		out = faultEnvelope(herr, FaultServer)
	}
	out.AppendTo(respBuf)
	// As on the HTTP path: an abandoned handler (Held error) may still be
	// reading the pooled request tree, so it must not be recycled.
	if !Held(herr) {
		doc.Release()
	}
	return nil
}

// ClientPool hands out one pooled HTTP client per backend, so a caller
// fanning out across many providers keeps a separate connection pool per
// site: one slow or dead backend cannot monopolise the idle-connection
// budget the others depend on. The federated gateway keys the pool by
// backend base URL.
type ClientPool struct {
	// Timeout is the whole-call timeout applied to every pooled client
	// (0 leaves deadlines to request contexts).
	Timeout time.Duration

	mu      sync.Mutex
	clients map[string]*http.Client
}

// For returns the pooled client for one backend, creating it on first use.
func (p *ClientPool) For(backend string) *http.Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[backend]; ok {
		return c
	}
	if p.clients == nil {
		p.clients = make(map[string]*http.Client)
	}
	c := &http.Client{
		Timeout: p.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	p.clients[backend] = c
	return c
}

// CloseIdle drops every pooled client's idle connections.
func (p *ClientPool) CloseIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.CloseIdleConnections()
	}
}

// Invoke performs a full RPC round trip: encode the call, send it through
// the transport, decode the response. A fault response is returned as the
// error (of type *Fault).
func Invoke(t Transport, endpoint string, call *Call) (*Response, error) {
	return InvokeCtx(context.Background(), t, endpoint, call)
}

// InvokeCtx is Invoke scoped to a context.
func InvokeCtx(ctx context.Context, t Transport, endpoint string, call *Call) (*Response, error) {
	env := call.WireEnvelope()
	respEnv, err := RoundTripContext(ctx, t, endpoint, call.ServiceNS+"#"+call.Method, env)
	if err != nil {
		return nil, err
	}
	return ParseResponse(respEnv)
}
