package soap

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/xmlutil"
)

// ContentType is the media type of SOAP 1.1 messages.
const ContentType = "text/xml; charset=utf-8"

// maxMessageBytes bounds how much of a request or response body is read.
const maxMessageBytes = 64 << 20

// Transport posts a request envelope to an endpoint and returns the
// response envelope. Implementations include the HTTP transport below and
// the in-process loopback used by tests and benchmarks to isolate encoding
// cost from network cost.
type Transport interface {
	RoundTrip(endpoint string, action string, req *Envelope) (*Envelope, error)
}

// RawTransport is implemented by transports that can hand back the raw
// response envelope bytes, letting the caller choose the parse mode. The
// pooled client path (core.Client.CallPooled) uses it to parse responses
// into a recyclable element arena instead of a retained tree; resp is
// appended to and owned by the caller.
type RawTransport interface {
	Transport
	RoundTripRaw(endpoint string, action string, req *Envelope, resp *bytes.Buffer) error
}

var (
	defaultClientOnce sync.Once
	defaultClient     *http.Client
)

// DefaultClient returns the shared HTTP client used when an HTTPTransport
// has none configured. It is constructed once so TCP connections are
// pooled and reused across calls instead of being re-dialled per request.
func DefaultClient() *http.Client {
	defaultClientOnce.Do(func() {
		defaultClient = &http.Client{Timeout: 30 * time.Second}
	})
	return defaultClient
}

// HTTPTransport sends SOAP messages over HTTP POST with a SOAPAction
// header, as the paper's Apache SOAP and Python SOAP services did.
type HTTPTransport struct {
	// Client is the underlying HTTP client; DefaultClient() when nil.
	Client *http.Client
}

// RoundTrip implements Transport over HTTP.
func (t *HTTPTransport) RoundTrip(endpoint, action string, req *Envelope) (*Envelope, error) {
	respBuf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(respBuf)
	if err := t.RoundTripRaw(endpoint, action, req, respBuf); err != nil {
		return nil, err
	}
	return ParseEnvelopeBytes(respBuf.Bytes())
}

// RoundTripRaw implements RawTransport over HTTP: the raw response
// envelope bytes are appended to respBuf without being parsed. On error
// respBuf is restored to its pre-call length, so callers may reuse one
// buffer across attempts.
func (t *HTTPTransport) RoundTripRaw(endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	mark := respBuf.Len()
	hc := t.Client
	if hc == nil {
		hc = DefaultClient()
	}
	reqBuf := xmlutil.GetBuffer()
	req.AppendTo(reqBuf)
	// Detach the bytes before handing them to net/http: Do can return
	// while the transport's write loop is still streaming the body, so the
	// pooled buffer must not be recycled under an aliasing reader.
	body := bytes.Clone(reqBuf.Bytes())
	xmlutil.PutBuffer(reqBuf)
	httpReq, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", ContentType)
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	resp, err := hc.Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: post %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(respBuf, io.LimitReader(resp.Body, maxMessageBytes)); err != nil {
		respBuf.Truncate(mark)
		return fmt.Errorf("soap: read response: %w", err)
	}
	// SOAP 1.1 uses HTTP 500 for faults; the envelope still parses.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
		respBuf.Truncate(mark)
		return fmt.Errorf("soap: endpoint %s returned HTTP %d", endpoint, resp.StatusCode)
	}
	return nil
}

// EnvelopeHandler processes one request envelope and produces a response
// envelope. Returning an error that is (or wraps) a *Fault sends that
// fault; any other error becomes a generic Server fault.
type EnvelopeHandler func(req *Envelope, httpReq *http.Request) (*Envelope, error)

// RawEnvelopeHandler processes a request straight from its serialised
// bytes — the streaming decode fast path (core.Provider.DispatchRaw).
// handled=false means the request is outside the streaming subset and the
// caller must re-dispatch through the tree-parsing EnvelopeHandler; once
// handled is true the request has been executed (side effects included)
// and the envelope/error pair is final, with errors converted to fault
// envelopes exactly as for an EnvelopeHandler. The handler must not
// retain body past the call.
type RawEnvelopeHandler func(body []byte, httpReq *http.Request) (resp *Envelope, handled bool, err error)

// Handler adapts an EnvelopeHandler into an http.Handler implementing the
// SOAP 1.1 HTTP binding (faults are sent with status 500).
func Handler(h EnvelopeHandler) http.Handler {
	return HandlerWithRaw(h, nil)
}

// HandlerWithRaw is Handler with an optional streaming fast path: when raw
// is non-nil every request body is offered to it first, and only requests
// it does not handle are parsed into the pooled element tree for h.
func HandlerWithRaw(h EnvelopeHandler, raw RawEnvelopeHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "soap endpoint: POST required", http.StatusMethodNotAllowed)
			return
		}
		body := xmlutil.GetBuffer()
		defer xmlutil.PutBuffer(body)
		if _, err := io.Copy(body, io.LimitReader(r.Body, maxMessageBytes)); err != nil {
			http.Error(w, "soap endpoint: read error", http.StatusBadRequest)
			return
		}
		if raw != nil {
			if respEnv, handled, herr := raw(body.Bytes(), r); handled {
				if herr != nil {
					respEnv = faultEnvelope(herr, FaultServer)
				}
				writeEnvelope(w, respEnv)
				return
			}
		}
		// The request envelope lives in a pooled element arena: it is only
		// needed until the response has been rendered, after which the whole
		// tree is recycled. Handlers must not retain request elements.
		env, doc, err := ParseEnvelopeBytesPooled(body.Bytes())
		var respEnv *Envelope
		if err != nil {
			respEnv = faultEnvelope(err, FaultClient)
		} else {
			out, herr := h(env, r)
			if herr != nil {
				respEnv = faultEnvelope(herr, FaultServer)
			} else {
				respEnv = out
			}
		}
		status := http.StatusOK
		if isFaultEnvelope(respEnv) {
			status = http.StatusInternalServerError
		}
		out := xmlutil.GetBuffer()
		defer xmlutil.PutBuffer(out)
		respEnv.AppendTo(out)
		if doc != nil {
			doc.Release() // response rendered: request tree no longer needed
		}
		w.Header().Set("Content-Type", ContentType)
		w.WriteHeader(status)
		_, _ = w.Write(out.Bytes())
	})
}

// writeEnvelope serialises one response envelope with the SOAP 1.1 HTTP
// status convention.
func writeEnvelope(w http.ResponseWriter, respEnv *Envelope) {
	status := http.StatusOK
	if isFaultEnvelope(respEnv) {
		status = http.StatusInternalServerError
	}
	out := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(out)
	respEnv.AppendTo(out)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(out.Bytes())
}

// faultEnvelope converts any error into a fault response envelope with a
// streamed (tree-free) body. Portal errors are relayed in the detail entry
// so clients can decode them.
func faultEnvelope(err error, defaultCode string) *Envelope {
	f, ok := err.(*Fault)
	if !ok {
		if pe := AsPortalError(err); pe != nil {
			f = pe.Fault()
		} else {
			f = &Fault{Code: defaultCode, String: err.Error()}
		}
	}
	return (&Response{Fault: f}).WireEnvelope()
}

func isFaultEnvelope(env *Envelope) bool {
	if env == nil {
		return false
	}
	if env.streamFault {
		return true
	}
	return len(env.Body) > 0 && env.Body[0].Name == "Fault" && env.Body[0].Space == EnvelopeNS
}

// LoopbackTransport invokes an EnvelopeHandler in-process, serialising and
// reparsing the envelopes so the encoding path is identical to the wire
// path. Benchmarks use it to separate XML processing cost from TCP cost.
type LoopbackTransport struct {
	// Handler receives every request regardless of endpoint.
	Handler EnvelopeHandler
	// Raw, when non-nil, is offered the serialised request bytes before
	// Handler, mirroring the HTTP handler's streaming fast path; requests
	// it does not handle fall through to the tree-parsing Handler.
	Raw RawEnvelopeHandler
	// Endpoints optionally routes per-endpoint when Handler is nil.
	Endpoints map[string]EnvelopeHandler
}

// RoundTrip implements Transport in-process.
func (t *LoopbackTransport) RoundTrip(endpoint, action string, req *Envelope) (*Envelope, error) {
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	if err := t.RoundTripRaw(endpoint, action, req, buf); err != nil {
		return nil, err
	}
	return ParseEnvelopeBytes(buf.Bytes())
}

// RoundTripRaw implements RawTransport in-process: the serialised response
// envelope is appended to respBuf without being parsed.
func (t *LoopbackTransport) RoundTripRaw(endpoint, action string, req *Envelope, respBuf *bytes.Buffer) error {
	h := t.Handler
	if h == nil {
		var ok bool
		h, ok = t.Endpoints[endpoint]
		if !ok {
			return fmt.Errorf("soap: loopback: no handler for endpoint %q", endpoint)
		}
	}
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	// Serialise and reparse to keep byte-level fidelity with HTTP. The
	// request-side tree is arena-pooled exactly as in the HTTP handler.
	req.AppendTo(buf)
	// Handlers receive a nil *http.Request in-process: Context.HTTPRequest
	// is documented as HTTP-only, and synthesising one per call (URL parse,
	// header map) would dominate the loopback overhead the benchmarks are
	// built to isolate.
	if t.Raw != nil && t.Handler != nil {
		if out, handled, herr := t.Raw(buf.Bytes(), nil); handled {
			if herr != nil {
				out = faultEnvelope(herr, FaultServer)
			}
			out.AppendTo(respBuf)
			return nil
		}
	}
	wire, doc, err := ParseEnvelopeBytesPooled(buf.Bytes())
	if err != nil {
		return err
	}
	out, herr := h(wire, nil)
	if herr != nil {
		out = faultEnvelope(herr, FaultServer)
	}
	out.AppendTo(respBuf)
	doc.Release() // response rendered: request tree no longer needed
	return nil
}

// Invoke performs a full RPC round trip: encode the call, send it through
// the transport, decode the response. A fault response is returned as the
// error (of type *Fault).
func Invoke(t Transport, endpoint string, call *Call) (*Response, error) {
	env := call.WireEnvelope()
	respEnv, err := t.RoundTrip(endpoint, call.ServiceNS+"#"+call.Method, env)
	if err != nil {
		return nil, err
	}
	return ParseResponse(respEnv)
}
