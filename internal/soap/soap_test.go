package soap

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmlutil"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	call := &Call{
		ServiceNS: "urn:globusrun",
		Method:    "submitJob",
		Params: []Value{
			Str("host", "modi4.ncsa.uiuc.edu"),
			Str("executable", "/bin/hostname"),
			Int("count", 4),
			Bool("batch", true),
			StrArray("args", []string{"-a", "-b"}),
		},
	}
	env := call.Envelope()
	parsed, err := ParseEnvelope(env.Render())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCall(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "submitJob" || got.ServiceNS != "urn:globusrun" {
		t.Fatalf("call = %q %q", got.ServiceNS, got.Method)
	}
	args := Args(got.Params)
	if args.String("host") != "modi4.ncsa.uiuc.edu" {
		t.Errorf("host = %q", args.String("host"))
	}
	if args.Int("count") != 4 {
		t.Errorf("count = %d", args.Int("count"))
	}
	if !args.Bool("batch") {
		t.Error("batch = false")
	}
	if got := args.Strings("args"); len(got) != 2 || got[0] != "-a" || got[1] != "-b" {
		t.Errorf("args = %v", got)
	}
}

func TestXMLParameter(t *testing.T) {
	jobs := xmlutil.New("jobs")
	jobs.Add(xmlutil.New("job").AddText("executable", "/bin/date"))
	call := &Call{ServiceNS: "urn:globusrun", Method: "submitXML", Params: []Value{XMLDoc("request", jobs)}}
	parsed, err := ParseEnvelope(call.Envelope().Render())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCall(parsed)
	if err != nil {
		t.Fatal(err)
	}
	doc := Args(got.Params).XML("request")
	if doc == nil {
		t.Fatal("XML param lost")
	}
	if doc.FindText("job/executable") != "/bin/date" {
		t.Errorf("job executable = %q", doc.FindText("job/executable"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{ServiceNS: "urn:srb", Method: "ls", Returns: []Value{StrArray("entries", []string{"a.dat", "b.dat"})}}
	parsed, err := ParseEnvelope(r.Envelope().Render())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResponse(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "ls" {
		t.Errorf("method = %q", got.Method)
	}
	v, ok := got.Return("entries")
	if !ok || len(v.Items) != 2 {
		t.Fatalf("entries = %+v ok=%v", v, ok)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	pe := NewPortalError("SRBService", ErrCodeResourceFull, "disk full on resource %s", "sdsc-disk1")
	env := NewEnvelope().AddBody(pe.Fault().Element())
	parsed, err := ParseEnvelope(env.Render())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(parsed)
	if err == nil {
		t.Fatal("fault response should return error")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is %T, want *Fault", err)
	}
	if f.Code != FaultServer {
		t.Errorf("code = %q", f.Code)
	}
	got := resp.Fault.PortalError()
	if got == nil {
		t.Fatal("portal error lost in relay")
	}
	if got.Code != ErrCodeResourceFull || got.Service != "SRBService" {
		t.Errorf("portal error = %+v", got)
	}
	if !strings.Contains(got.Message, "sdsc-disk1") {
		t.Errorf("message = %q", got.Message)
	}
}

func TestAsPortalError(t *testing.T) {
	pe := NewPortalError("X", ErrCodeAccessDenied, "no")
	if AsPortalError(pe) == nil {
		t.Error("direct PortalError not unwrapped")
	}
	if AsPortalError(pe.Fault()) == nil {
		t.Error("fault-wrapped PortalError not unwrapped")
	}
	if AsPortalError(errors.New("plain")) != nil {
		t.Error("plain error should yield nil")
	}
}

func TestVersionMismatch(t *testing.T) {
	_, err := ParseEnvelope(`<Envelope xmlns="urn:not-soap"><Body/></Envelope>`)
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultVersionMismatch {
		t.Errorf("err = %v, want VersionMismatch fault", err)
	}
}

func TestParseEnvelopeErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<notsoap/>",
		`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Header/></Envelope>`,
	} {
		if _, err := ParseEnvelope(bad); err == nil {
			t.Errorf("ParseEnvelope(%q) succeeded", bad)
		}
	}
}

func TestHeaderEntries(t *testing.T) {
	env := NewEnvelope()
	assertion := xmlutil.NewNS("urn:saml", "Assertion").SetAttr("issuer", "authsvc")
	env.AddHeader(assertion)
	env.AddBody(xmlutil.New("op"))
	parsed, err := ParseEnvelope(env.Render())
	if err != nil {
		t.Fatal(err)
	}
	h := parsed.HeaderNamed("Assertion")
	if h == nil {
		t.Fatal("header lost")
	}
	if v, _ := h.Attr("issuer"); v != "authsvc" {
		t.Errorf("issuer = %q", v)
	}
	if parsed.HeaderNamed("Missing") != nil {
		t.Error("HeaderNamed on absent name should be nil")
	}
}

func echoHandler(_ context.Context, req *Envelope, _ *http.Request) (*Envelope, error) {
	call, err := ParseCall(req)
	if err != nil {
		return nil, err
	}
	if call.Method == "fail" {
		return nil, NewPortalError("echo", ErrCodeJobFailed, "requested failure")
	}
	resp := &Response{ServiceNS: call.ServiceNS, Method: call.Method,
		Returns: []Value{Str("echo", Args(call.Params).String("msg"))}}
	return resp.Envelope(), nil
}

func TestHTTPTransport(t *testing.T) {
	srv := httptest.NewServer(Handler(echoHandler))
	defer srv.Close()
	tr := &HTTPTransport{Client: srv.Client()}
	resp, err := Invoke(tr, srv.URL, &Call{ServiceNS: "urn:echo", Method: "say", Params: []Value{Str("msg", "hello grid")}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReturnText("echo") != "hello grid" {
		t.Errorf("echo = %q", resp.ReturnText("echo"))
	}
}

func TestHTTPTransportFault(t *testing.T) {
	srv := httptest.NewServer(Handler(echoHandler))
	defer srv.Close()
	tr := &HTTPTransport{Client: srv.Client()}
	_, err := Invoke(tr, srv.URL, &Call{ServiceNS: "urn:echo", Method: "fail"})
	pe := AsPortalError(err)
	if pe == nil || pe.Code != ErrCodeJobFailed {
		t.Fatalf("err = %v, want portal JobFailed", err)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(echoHandler))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestLoopbackTransport(t *testing.T) {
	tr := &LoopbackTransport{Handler: echoHandler}
	resp, err := Invoke(tr, "loopback://echo", &Call{ServiceNS: "urn:echo", Method: "say", Params: []Value{Str("msg", "x")}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReturnText("echo") != "x" {
		t.Errorf("echo = %q", resp.ReturnText("echo"))
	}
}

func TestLoopbackEndpointRouting(t *testing.T) {
	tr := &LoopbackTransport{Endpoints: map[string]EnvelopeHandler{"a": echoHandler}}
	if _, err := Invoke(tr, "b", &Call{ServiceNS: "urn:echo", Method: "say"}); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if _, err := Invoke(tr, "a", &Call{ServiceNS: "urn:echo", Method: "say", Params: []Value{Str("msg", "m")}}); err != nil {
		t.Errorf("routed endpoint failed: %v", err)
	}
}

func TestArgsDefaults(t *testing.T) {
	var a Args
	if a.String("x") != "" || a.Int("x") != 0 || a.Bool("x") || a.Strings("x") != nil || a.XML("x") != nil {
		t.Error("zero Args should yield zero values")
	}
	a = Args{Value{Name: "n", Type: "int", Text: "bogus"}}
	if a.Int("n") != 0 {
		t.Error("unparseable int should yield 0")
	}
}

// Property: any call with random scalar params survives the wire format.
func TestPropertyCallRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		call := &Call{ServiceNS: "urn:prop", Method: "m"}
		n := r.Intn(6)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			switch r.Intn(3) {
			case 0:
				call.Params = append(call.Params, Str(name, randomString(r)))
			case 1:
				call.Params = append(call.Params, Int(name, r.Intn(10000)-5000))
			default:
				call.Params = append(call.Params, Bool(name, r.Intn(2) == 0))
			}
		}
		env, err := ParseEnvelope(call.Envelope().Render())
		if err != nil {
			return false
		}
		got, err := ParseCall(env)
		if err != nil || len(got.Params) != len(call.Params) {
			return false
		}
		for i := range call.Params {
			if got.Params[i].Name != call.Params[i].Name || got.Params[i].Text != call.Params[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomString(r *rand.Rand) string {
	chars := []rune(`abcdef <>&"XYZ/\-_.:;`)
	n := r.Intn(20)
	out := make([]rune, n)
	for i := range out {
		out[i] = chars[r.Intn(len(chars))]
	}
	return strings.TrimSpace(string(out))
}

// TestEnvelopeBOMAndLeadingWhitespace: peer SOAP stacks (notably on Windows)
// prefix envelopes with a UTF-8 byte-order mark or whitespace before the XML
// declaration; decoding must tolerate both.
func TestEnvelopeBOMAndLeadingWhitespace(t *testing.T) {
	call := &Call{ServiceNS: "urn:bench", Method: "op", Params: []Value{Str("a", "v")}}
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	call.Envelope().AppendTo(buf) // includes the XML declaration
	wire := buf.String()
	for _, tc := range []struct {
		name, prefix string
	}{
		{"bom", "\xef\xbb\xbf"},
		{"whitespace", "  \r\n\t"},
		{"bom+whitespace", "\xef\xbb\xbf \n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, err := ParseEnvelope(tc.prefix + wire)
			if err != nil {
				t.Fatalf("ParseEnvelope with %s prefix: %v", tc.name, err)
			}
			got, err := ParseCall(env)
			if err != nil || got.Method != "op" || len(got.Params) != 1 {
				t.Fatalf("ParseCall = %+v, %v", got, err)
			}
			envp, doc, err := ParseEnvelopeBytesPooled([]byte(tc.prefix + wire))
			if err != nil {
				t.Fatalf("pooled parse with %s prefix: %v", tc.name, err)
			}
			if len(envp.Body) != 1 {
				t.Fatalf("pooled body entries = %d", len(envp.Body))
			}
			doc.Release()
		})
	}
}

// TestPooledEnvelopeRelease: the arena behind ParseEnvelopeBytesPooled is
// recycled across parses without leaking state between documents.
func TestPooledEnvelopeRelease(t *testing.T) {
	mk := func(text string) string {
		c := &Call{ServiceNS: "urn:x", Method: "m", Params: []Value{Str("p", text)}}
		return c.Envelope().Render()
	}
	for i := 0; i < 50; i++ {
		wire := mk(strings.Repeat("x", i+1))
		env, doc, err := ParseEnvelopeBytesPooled([]byte(wire))
		if err != nil {
			t.Fatal(err)
		}
		call, err := ParseCall(env)
		if err != nil {
			t.Fatal(err)
		}
		if got := call.Params[0].Text; got != strings.Repeat("x", i+1) {
			t.Fatalf("iteration %d: param = %q", i, got)
		}
		doc.Release()
		doc.Release() // double release must be a no-op
	}
}
