// Package soap implements the SOAP 1.1 messaging layer the portal services
// communicate with: envelope construction and parsing, header entries, RPC
// style call encoding, SOAP faults, and the portal-standard implementation
// error relay described in Section 3 of the paper ("the standard set of
// portal services that we are building must define and relay a common set of
// error messages" for failures that are not SOAP faults, such as a file
// transfer failing because the disk was full).
//
// The Go ecosystem has no SOAP tooling, so envelopes are hand-rolled on top
// of the xmlutil element tree, exactly as the paper's Python services
// hand-assembled their payloads.
package soap

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/xmlutil"
)

// Namespace URIs for SOAP 1.1 messaging.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	EncodingNS = "http://schemas.xmlsoap.org/soap/encoding/"
	XSINS      = "http://www.w3.org/2001/XMLSchema-instance"
	XSDNS      = "http://www.w3.org/2001/XMLSchema"
)

// Fault codes defined by SOAP 1.1.
const (
	FaultVersionMismatch = "VersionMismatch"
	FaultMustUnderstand  = "MustUnderstand"
	FaultClient          = "Client"
	FaultServer          = "Server"
)

// PortalErrorNS is the namespace of the portal-standard error detail entry
// that relays implementation errors (as opposed to messaging faults).
const PortalErrorNS = "urn:gce:portal-error"

// Portal-standard implementation error codes, the "common set of error
// messages" Section 3 calls for. These cover the failure classes the basic
// portal services share.
const (
	ErrCodeNone           = ""
	ErrCodeAuthFailed     = "AuthenticationFailed"
	ErrCodeAccessDenied   = "AccessDenied"
	ErrCodeNoSuchResource = "NoSuchResource"
	ErrCodeNoSuchMethod   = "NoSuchMethod"
	ErrCodeBadRequest     = "BadRequest"
	ErrCodeResourceFull   = "ResourceFull"
	ErrCodeJobFailed      = "JobFailed"
	ErrCodeTimeout        = "Timeout"
	ErrCodeInternal       = "InternalError"
	ErrCodeUnavailable    = "ServiceUnavailable"
	ErrCodeServerBusy     = "ServerBusy"
)

// Envelope is a parsed or under-construction SOAP 1.1 envelope.
type Envelope struct {
	// Header entries, may be empty.
	Header []*xmlutil.Element
	// Body entries. For an RPC request the first entry is the call element;
	// for a response it is the <methodName>Response element; for a fault it
	// is the Fault element.
	Body []*xmlutil.Element

	// stream, when non-nil, emits the primary body entry directly through
	// a streaming Writer instead of from a Body tree — the tree-free hot
	// path Call.WireEnvelope and Response.WireEnvelope produce. Body
	// starts nil on such envelopes (entries appended later with AddBody
	// are serialised after the streamed entry); consumers that need the
	// full tree re-parse the serialised form, as every transport already
	// does for wire fidelity. An interface rather than a closure so
	// assigning the Call/Response itself costs nothing.
	stream bodyStreamer
	// streamFault marks a streamed envelope whose body is a Fault, since
	// the usual Body[0] inspection is unavailable.
	streamFault bool

	// raw, when non-nil, is an already-serialised envelope relayed
	// verbatim by AppendTo (no XML declaration is prepended — the bytes
	// carry their own). The gateway's forwarding path uses it to push
	// request bytes through a transport without a parse/re-render round
	// trip. Such an envelope is opaque: Header/Body/stream are ignored.
	raw []byte
}

// RawEnvelope wraps already-serialised envelope bytes so they can be
// re-sent through any transport byte-identically. The caller must keep
// data unmodified until the round trip completes.
func RawEnvelope(data []byte) *Envelope {
	return &Envelope{raw: data}
}

// bodyStreamer emits the primary body entry of a streamed envelope
// through the Writer. *Call and *Response implement it, so WireEnvelope
// stores the message itself instead of allocating a closure over it.
type bodyStreamer interface {
	streamBody(w *xmlutil.Writer)
}

// NewEnvelope returns an empty envelope.
func NewEnvelope() *Envelope {
	return &Envelope{}
}

// AddHeader appends a header entry.
func (e *Envelope) AddHeader(h *xmlutil.Element) *Envelope {
	e.Header = append(e.Header, h)
	return e
}

// AddBody appends a body entry.
func (e *Envelope) AddBody(b *xmlutil.Element) *Envelope {
	e.Body = append(e.Body, b)
	return e
}

// HeaderNamed returns the first header entry with the given local name, or
// nil.
func (e *Envelope) HeaderNamed(name string) *xmlutil.Element {
	for _, h := range e.Header {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Element builds the full envelope element tree.
func (e *Envelope) Element() *xmlutil.Element {
	env := xmlutil.NewNS(EnvelopeNS, "Envelope")
	if len(e.Header) > 0 {
		hdr := xmlutil.NewNS(EnvelopeNS, "Header")
		hdr.Add(e.Header...)
		env.Add(hdr)
	}
	body := xmlutil.NewNS(EnvelopeNS, "Body")
	body.Add(e.Body...)
	env.Add(body)
	return env
}

// xmlDecl is the declaration prefixed to every serialised envelope.
const xmlDecl = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// Render serialises the envelope with an XML declaration, ready to be sent
// as an HTTP request or response body.
func (e *Envelope) Render() string {
	b := xmlutil.GetBuffer()
	e.AppendTo(b)
	s := b.String()
	xmlutil.PutBuffer(b)
	return s
}

// AppendTo serialises the envelope (XML declaration included) into b. The
// transport hot paths use this with pooled buffers to avoid the string
// round trip Render pays. Envelopes built by Call.WireEnvelope or
// Response.WireEnvelope are emitted through the streaming Writer without
// materialising an element tree; the output is byte-identical to the tree
// path either way.
func (e *Envelope) AppendTo(b *bytes.Buffer) {
	if e.raw != nil {
		b.Write(e.raw)
		return
	}
	b.WriteString(xmlDecl)
	if e.stream == nil {
		e.Element().RenderTo(b)
		return
	}
	w := xmlutil.AcquireWriter(b)
	defer w.Release()
	w.Start(EnvelopeNS, "Envelope")
	if len(e.Header) > 0 {
		w.Start(EnvelopeNS, "Header")
		for _, h := range e.Header {
			w.Element(h)
		}
		w.End()
	}
	w.Start(EnvelopeNS, "Body")
	e.stream.streamBody(w)
	// Entries added with AddBody after WireEnvelope construction (e.g. by
	// a client interceptor) ride along after the streamed entry, so the
	// mutation contract of interceptors keeps holding on the hot path.
	for _, be := range e.Body {
		w.Element(be)
	}
	w.End()
	w.End()
}

// ParseEnvelope parses a SOAP 1.1 envelope from its serialised form.
func ParseEnvelope(data string) (*Envelope, error) {
	root, err := xmlutil.ParseString(data)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return envelopeFromRoot(root)
}

// ParseEnvelopeBytes parses a serialised envelope directly from bytes,
// avoiding the string conversion of ParseEnvelope. The returned envelope
// does not alias data.
func ParseEnvelopeBytes(data []byte) (*Envelope, error) {
	root, err := xmlutil.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return envelopeFromRoot(root)
}

// ParseEnvelopeBytesPooled parses a serialised envelope into a pooled
// element arena — the fully pooled decode path the server-side transports
// use for request envelopes. The returned Doc owns every element of the
// envelope: the caller must Release it once the request has been fully
// processed (response rendered included), and nothing downstream may retain
// an *xmlutil.Element from the envelope past that point. Strings extracted
// from the tree remain valid forever.
func ParseEnvelopeBytesPooled(data []byte) (*Envelope, *xmlutil.Doc, error) {
	doc, err := xmlutil.ParseBytesPooled(data)
	if err != nil {
		return nil, nil, fmt.Errorf("soap: %w", err)
	}
	env, err := envelopeFromRoot(doc.Root)
	if err != nil {
		doc.Release()
		return nil, nil, err
	}
	return env, doc, nil
}

func envelopeFromRoot(root *xmlutil.Element) (*Envelope, error) {
	if root.Name != "Envelope" {
		return nil, fmt.Errorf("soap: root element %q is not Envelope", root.Name)
	}
	if root.Space != EnvelopeNS {
		return nil, &Fault{Code: FaultVersionMismatch, String: fmt.Sprintf("soap: unsupported envelope namespace %q", root.Space)}
	}
	env := NewEnvelope()
	if hdr := root.ChildNS(EnvelopeNS, "Header"); hdr != nil {
		env.Header = hdr.Children
	}
	body := root.ChildNS(EnvelopeNS, "Body")
	if body == nil {
		return nil, errors.New("soap: envelope has no Body")
	}
	env.Body = body.Children
	return env, nil
}

// Fault is a SOAP 1.1 Fault. It doubles as a Go error so transport and
// dispatch layers can return it directly.
type Fault struct {
	// Code is the fault code local part (Client, Server, ...).
	Code string
	// String is the human-readable fault string.
	String string
	// Actor optionally identifies the node that faulted.
	Actor string
	// Detail carries application detail entries. The portal error relay
	// lives here as a PortalErrorNS entry.
	Detail []*xmlutil.Element
	// RetryAfter, when positive, advises the caller how long to wait
	// before retrying (load shedding and drain rejections set it). It is
	// transport metadata, not part of the fault's wire body: the HTTP
	// binding relays it as a Retry-After header.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// AsFault unwraps err into a *Fault if it is one or wraps one; otherwise
// nil. Dispatch layers use it instead of a direct type assertion so
// wrapped faults (e.g. ones held against pooled-storage reuse) still
// render as proper fault envelopes.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

// heldError marks a handler error whose request storage must NOT be
// recycled: the handler was abandoned (deadline expired) and a detached
// goroutine may still be reading the pooled request tree. See Hold.
type heldError struct{ err error }

func (h *heldError) Error() string { return h.err.Error() }
func (h *heldError) Unwrap() error { return h.err }

// Hold wraps err to signal that pooled request-side storage (the arena
// document behind the request envelope) is still referenced by an
// abandoned handler goroutine and must leak to the garbage collector
// instead of being released back to its pool. Release sites check Held
// before recycling. Idempotent; nil-safe.
func Hold(err error) error {
	if err == nil || Held(err) {
		return err
	}
	return &heldError{err: err}
}

// Held reports whether err (or anything it wraps) was marked by Hold.
func Held(err error) bool {
	var h *heldError
	return errors.As(err, &h)
}

// PortalError extracts the portal-standard implementation error from the
// fault detail, or nil when the fault carries none.
func (f *Fault) PortalError() *PortalError {
	for _, d := range f.Detail {
		if d.Space == PortalErrorNS && d.Name == "PortalError" {
			return &PortalError{
				Code:    d.ChildText("code"),
				Message: d.ChildText("message"),
				Service: d.ChildText("service"),
			}
		}
	}
	return nil
}

// Element renders the fault as a Body entry.
func (f *Fault) Element() *xmlutil.Element {
	fe := xmlutil.NewNS(EnvelopeNS, "Fault")
	fe.AddText("faultcode", "soap:"+f.Code)
	fe.AddText("faultstring", f.String)
	if f.Actor != "" {
		fe.AddText("faultactor", f.Actor)
	}
	if len(f.Detail) > 0 {
		det := xmlutil.New("detail")
		det.Add(f.Detail...)
		fe.Add(det)
	}
	return fe
}

// write streams the fault as a Body entry, byte-identical to rendering
// Element().
func (f *Fault) write(w *xmlutil.Writer) {
	w.Start(EnvelopeNS, "Fault")
	w.Start("", "faultcode")
	w.Text("soap:" + f.Code)
	w.End()
	w.Start("", "faultstring")
	w.Text(f.String)
	w.End()
	if f.Actor != "" {
		w.Start("", "faultactor")
		w.Text(f.Actor)
		w.End()
	}
	if len(f.Detail) > 0 {
		w.Start("", "detail")
		for _, d := range f.Detail {
			w.Element(d)
		}
		w.End()
	}
	w.End()
}

// ParseFault converts a Fault body entry back into a Fault value.
func ParseFault(el *xmlutil.Element) *Fault {
	f := &Fault{
		Code:   localPart(el.ChildText("faultcode")),
		String: el.ChildText("faultstring"),
		Actor:  el.ChildText("faultactor"),
	}
	if det := el.Child("detail"); det != nil {
		f.Detail = det.Children
	}
	return f
}

func localPart(qname string) string {
	if i := strings.LastIndex(qname, ":"); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// PortalError is the portal-standard implementation error: a failure in the
// service implementation rather than in SOAP messaging (Section 3's example:
// "the file didn't get transferred because the disk was full"). It is
// relayed inside the Fault detail so every portal client can decode every
// portal service's failures uniformly.
type PortalError struct {
	// Code is one of the ErrCode constants.
	Code string
	// Message is the human-readable explanation.
	Message string
	// Service names the service that raised the error.
	Service string
}

// Error implements the error interface.
func (p *PortalError) Error() string {
	if p.Service != "" {
		return fmt.Sprintf("%s: %s: %s", p.Service, p.Code, p.Message)
	}
	return fmt.Sprintf("%s: %s", p.Code, p.Message)
}

// Element renders the portal error as a fault detail entry.
func (p *PortalError) Element() *xmlutil.Element {
	el := xmlutil.NewNS(PortalErrorNS, "PortalError")
	el.AddText("code", p.Code)
	el.AddText("message", p.Message)
	if p.Service != "" {
		el.AddText("service", p.Service)
	}
	return el
}

// Fault wraps the portal error into a Server fault carrying it as detail.
func (p *PortalError) Fault() *Fault {
	return &Fault{Code: FaultServer, String: p.Message, Detail: []*xmlutil.Element{p.Element()}}
}

// NewPortalError constructs a PortalError.
func NewPortalError(service, code, format string, args ...interface{}) *PortalError {
	return &PortalError{Code: code, Service: service, Message: fmt.Sprintf(format, args...)}
}

// AsPortalError unwraps err into a *PortalError if it is one or carries one
// (directly or inside a Fault); otherwise it returns nil.
func AsPortalError(err error) *PortalError {
	var pe *PortalError
	if errors.As(err, &pe) {
		return pe
	}
	var f *Fault
	if errors.As(err, &f) {
		return f.PortalError()
	}
	return nil
}

// --- RPC encoding ---------------------------------------------------------

// Value is a SOAP RPC parameter or return value: a name, an XSD type tag,
// and either scalar text, an array of values, or a literal XML subtree.
type Value struct {
	// Name is the accessor (parameter) name.
	Name string
	// Type is the xsd type local name: "string", "int", "boolean", "double",
	// "Array" for arrays, or "" for untyped literal XML payloads.
	Type string
	// Text is the scalar value when Type is a scalar type.
	Text string
	// Items holds array members when Type is "Array".
	Items []Value
	// XML holds a literal child tree when the parameter carries an XML
	// document (the paper's services pass XML job descriptions and multi-
	// command requests as single parameters).
	XML *xmlutil.Element
}

// Str builds a string-typed value.
func Str(name, v string) Value { return Value{Name: name, Type: "string", Text: v} }

// Int builds an int-typed value.
func Int(name string, v int) Value { return Value{Name: name, Type: "int", Text: strconv.Itoa(v)} }

// Bool builds a boolean-typed value.
func Bool(name string, v bool) Value {
	return Value{Name: name, Type: "boolean", Text: strconv.FormatBool(v)}
}

// StrArray builds a string array value.
func StrArray(name string, items []string) Value {
	v := Value{Name: name, Type: "Array"}
	for _, s := range items {
		v.Items = append(v.Items, Value{Name: "item", Type: "string", Text: s})
	}
	return v
}

// XMLDoc builds a value carrying a literal XML subtree.
func XMLDoc(name string, doc *xmlutil.Element) Value {
	return Value{Name: name, XML: doc}
}

// Element renders the value as an RPC parameter element.
func (v Value) Element() *xmlutil.Element {
	el := xmlutil.New(v.Name)
	switch {
	case v.XML != nil:
		el.Add(v.XML)
	case v.Type == "Array":
		el.SetAttrNS(XSINS, "type", "soapenc:Array")
		for _, item := range v.Items {
			el.Add(item.Element())
		}
	default:
		if v.Type != "" {
			el.SetAttrNS(XSINS, "type", "xsd:"+v.Type)
		}
		el.Text = v.Text
	}
	return el
}

// write streams the value as an RPC parameter element, byte-identical to
// rendering Element(). Scalar and array values never touch the element
// tree; literal XML payloads bridge through Writer.Element.
func (v Value) write(w *xmlutil.Writer) {
	w.Start("", v.Name)
	switch {
	case v.XML != nil:
		w.Element(v.XML)
	case v.Type == "Array":
		w.Attr(XSINS, "type", "soapenc:Array")
		for _, item := range v.Items {
			item.write(w)
		}
	default:
		if v.Type != "" {
			w.Attr(XSINS, "type", "xsd:"+v.Type)
		}
		w.Text(v.Text)
	}
	w.End()
}

// ParseValue reads an RPC parameter element back into a Value.
func ParseValue(el *xmlutil.Element) Value {
	v := Value{Name: el.Name}
	typeAttr, _ := el.Attr("type")
	switch {
	case typeAttr == "soapenc:Array" || len(el.ChildrenNamed("item")) > 0 && typeAttr == "":
		v.Type = "Array"
		for _, c := range el.Children {
			v.Items = append(v.Items, ParseValue(c))
		}
	case len(el.Children) > 0 && typeAttr == "":
		v.XML = el.Children[0]
	default:
		v.Type = strings.TrimPrefix(typeAttr, "xsd:")
		if v.Type == "" {
			v.Type = "string"
		}
		v.Text = el.Text
	}
	return v
}

// Call is an RPC-style SOAP request: a method in a service namespace with
// ordered parameters.
type Call struct {
	// ServiceNS is the namespace URI identifying the service interface.
	ServiceNS string
	// Method is the operation name.
	Method string
	// Params are the in parameters, in order.
	Params []Value
}

// Envelope builds the request envelope for the call.
func (c *Call) Envelope() *Envelope {
	op := xmlutil.NewNS(c.ServiceNS, c.Method)
	op.SetAttrNS(EnvelopeNS, "encodingStyle", EncodingNS)
	for _, p := range c.Params {
		op.Add(p.Element())
	}
	return NewEnvelope().AddBody(op)
}

// WireEnvelope builds the request envelope with a streamed body: when
// serialised it writes the call element and parameters directly to the
// buffer instead of materialising an element tree. Byte-identical to
// Envelope(); this is the client-side encode hot path. Parameter values
// are read at serialisation time, so interceptors that run before the
// transport see (and may still amend) the call.
func (c *Call) WireEnvelope() *Envelope {
	return &Envelope{stream: c}
}

// WireEnvelopeInto is WireEnvelope initialising a caller-provided
// Envelope in place — the allocation-free form for clients that embed
// the call and its envelope in one request-scoped allocation.
func (c *Call) WireEnvelopeInto(env *Envelope) {
	*env = Envelope{stream: c}
}

// streamBody emits the call element and parameters; it reads the Call at
// serialisation time, implementing bodyStreamer for WireEnvelope.
func (c *Call) streamBody(w *xmlutil.Writer) {
	w.Start(c.ServiceNS, c.Method)
	w.Attr(EnvelopeNS, "encodingStyle", EncodingNS)
	for _, p := range c.Params {
		p.write(w)
	}
	w.End()
}

// ParseCall extracts the RPC call from a request envelope.
func ParseCall(env *Envelope) (*Call, error) {
	if len(env.Body) == 0 {
		return nil, &Fault{Code: FaultClient, String: "empty request body"}
	}
	op := env.Body[0]
	c := &Call{ServiceNS: op.Space, Method: op.Name}
	for _, p := range op.Children {
		c.Params = append(c.Params, ParseValue(p))
	}
	return c, nil
}

// Response is an RPC-style SOAP response: either return values or a fault.
type Response struct {
	// Method is the operation the response answers.
	Method string
	// ServiceNS is the service interface namespace.
	ServiceNS string
	// Returns are the out parameters, in order.
	Returns []Value
	// Fault is non-nil when the call failed.
	Fault *Fault
}

// Envelope builds the response envelope.
func (r *Response) Envelope() *Envelope {
	env := NewEnvelope()
	if r.Fault != nil {
		return env.AddBody(r.Fault.Element())
	}
	op := xmlutil.NewNS(r.ServiceNS, r.Method+"Response")
	for _, v := range r.Returns {
		op.Add(v.Element())
	}
	return env.AddBody(op)
}

// WireEnvelope builds the response envelope with a streamed body: the
// operation response element, return values, or fault are written directly
// to the output buffer at serialisation time, with no element tree in
// between. Byte-identical to Envelope(); this is the server-side encode
// hot path the rpc kernel responds through.
func (r *Response) WireEnvelope() *Envelope {
	env := &Envelope{}
	r.WireEnvelopeInto(env)
	return env
}

// WireEnvelopeInto is WireEnvelope initialising a caller-provided
// Envelope in place — the allocation-free form for dispatch paths that
// embed the response and its envelope in one request-scoped allocation.
func (r *Response) WireEnvelopeInto(env *Envelope) {
	*env = Envelope{stream: r, streamFault: r.Fault != nil}
}

// streamBody emits the response wrapper and return values (or the fault),
// implementing bodyStreamer for WireEnvelope.
func (r *Response) streamBody(w *xmlutil.Writer) {
	if r.Fault != nil {
		r.Fault.write(w)
		return
	}
	w.StartSuffix(r.ServiceNS, r.Method, "Response")
	for _, v := range r.Returns {
		v.write(w)
	}
	w.End()
}

// ParseResponse extracts an RPC response from an envelope. A Fault body
// yields a Response with Fault set (and is also returned as the error).
func ParseResponse(env *Envelope) (*Response, error) {
	if len(env.Body) == 0 {
		return nil, errors.New("soap: empty response body")
	}
	first := env.Body[0]
	if first.Name == "Fault" && first.Space == EnvelopeNS {
		f := ParseFault(first)
		return &Response{Fault: f}, f
	}
	r := &Response{ServiceNS: first.Space, Method: strings.TrimSuffix(first.Name, "Response")}
	for _, c := range first.Children {
		r.Returns = append(r.Returns, ParseValue(c))
	}
	return r, nil
}

// Return returns the named out parameter, or the first one when name is
// empty, along with whether it was found.
func (r *Response) Return(name string) (Value, bool) {
	if name == "" && len(r.Returns) > 0 {
		return r.Returns[0], true
	}
	for _, v := range r.Returns {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

// ReturnText returns the text of the named (or first, when name == "") out
// parameter, or "".
func (r *Response) ReturnText(name string) string {
	v, _ := r.Return(name)
	return v.Text
}

// Args is a convenience view over call parameters by name.
type Args []Value

// Get returns the named parameter and whether it exists.
func (a Args) Get(name string) (Value, bool) {
	for _, v := range a {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

// String returns the named string parameter or "".
func (a Args) String(name string) string {
	v, _ := a.Get(name)
	return v.Text
}

// Int returns the named int parameter or 0.
func (a Args) Int(name string) int {
	v, ok := a.Get(name)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(v.Text))
	if err != nil {
		return 0
	}
	return n
}

// Bool returns the named boolean parameter or false.
func (a Args) Bool(name string) bool {
	v, ok := a.Get(name)
	if !ok {
		return false
	}
	b, _ := strconv.ParseBool(strings.TrimSpace(v.Text))
	return b
}

// Strings returns the named string-array parameter as a slice.
func (a Args) Strings(name string) []string {
	v, ok := a.Get(name)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(v.Items))
	for _, item := range v.Items {
		out = append(out, item.Text)
	}
	return out
}

// XML returns the literal XML subtree of the named parameter, or nil.
func (a Args) XML(name string) *xmlutil.Element {
	v, ok := a.Get(name)
	if !ok {
		return nil
	}
	return v.XML
}
