// streamread.go is the decode half of the streaming hot path: a reader
// that walks envelope tokens straight off the wire bytes — Envelope, Body,
// the operation element, and each RPC parameter — without constructing an
// element tree, feeding per-operation codecs (rpc kernel) on the server
// and the pooled client's response parse.
//
// The reader is deliberately narrower than the tree parser. It handles
// exactly the shapes the portal dialects put on the wire: a headerless
// envelope whose first Body entry is the operation element, parameters
// that are typed scalars or flat arrays of scalar items. Anything else —
// Header entries middleware may inspect, literal-XML parameters, Fault
// bodies, comments/CDATA, foreign envelope layouts, or malformed input —
// makes it report "not handled", and the caller re-runs the request
// through the pooled tree path, which stays the semantic authority
// (including exact fault texts). For everything the reader does handle it
// must produce byte-identical Values to ParseValue over the parsed tree;
// FuzzStreamVsTreeDispatch in the rpc package enforces that differentially.
package soap

import (
	"strings"
	"sync"

	"repro/internal/xmlutil"
)

// BodyReader streams the primary body entry of a serialised envelope. The
// usage protocol is Begin, then ReadValue until done, then Finish; any
// step reporting !ok means the document is outside the streaming subset
// and the caller must fall back to the tree path. Release must always be
// called, exactly once.
type BodyReader struct {
	cur *xmlutil.Cursor
}

var bodyReaderPool = sync.Pool{New: func() interface{} { return new(BodyReader) }}

// AcquireBodyReader returns a pooled reader over the serialised envelope
// bytes. The reader aliases data until Release; strings it returns do not.
func AcquireBodyReader(data []byte) *BodyReader {
	r := bodyReaderPool.Get().(*BodyReader)
	r.cur = xmlutil.AcquireCursor(data)
	return r
}

// Release recycles the reader and its cursor.
func (r *BodyReader) Release() {
	r.cur.Release()
	r.cur = nil
	bodyReaderPool.Put(r)
}

// envelopePrologue is the byte-exact envelope opening our own encoder
// emits for every headerless message (Envelope.AppendTo assigns ns0 to the
// envelope namespace first). Messages from this portal's own clients —
// the overwhelmingly common case in portal-to-portal composition — match
// it with one memcmp, letting Begin skip tokenising the opening tags.
// Foreign peers that serialise differently just take the general scan.
var envelopePrologue = xmlutil.PrologueSeed{
	Text:       []byte(xmlDecl + `<ns0:Envelope xmlns:ns0="` + EnvelopeNS + `"><ns0:Body>`),
	Prefixes:   [][]byte{[]byte("ns0")},
	URIs:       []string{EnvelopeNS},
	OpenSpaces: []string{EnvelopeNS, EnvelopeNS},
	OpenNames:  []string{"Envelope", "Body"},
}

// Begin matches the envelope prolog — Envelope, then Body as its first
// child element, then the first body entry — and returns that entry's
// resolved namespace and local name, leaving the reader positioned on its
// content. Headers, foreign roots, and empty bodies all report !ok.
func (r *BodyReader) Begin() (space, name string, ok bool) {
	if r.cur.SkipPrologue(&envelopePrologue) {
		if !r.nextElem(2) {
			return "", "", false
		}
		return r.cur.Space(), r.cur.Name(), true
	}
	// Prolog: whitespace, the XML declaration (skipped inside the cursor),
	// and stray character data outside the root, which the tree parser
	// validates and discards.
	if !r.nextElem(0) {
		return "", "", false
	}
	if r.cur.Space() != EnvelopeNS || r.cur.Name() != "Envelope" {
		return "", "", false
	}
	// First child element must be Body: a Header (or any foreign entry)
	// routes to the tree path, which middleware-visible headers require.
	if !r.nextElem(1) {
		return "", "", false
	}
	if r.cur.Space() != EnvelopeNS || r.cur.Name() != "Body" {
		return "", "", false
	}
	// The primary body entry (operation element on requests, wrapper
	// element on responses). An empty Body is the tree path's fault.
	if !r.nextElem(2) {
		return "", "", false
	}
	return r.cur.Space(), r.cur.Name(), true
}

// nextElem advances to the next element start at the given depth,
// discarding character data exactly as the tree path does for container
// elements (ParseCall and envelopeFromRoot never read it). Anything else
// — the container closing, EOF, an error — reports false.
func (r *BodyReader) nextElem(depth int) bool {
	for {
		tok, err := r.cur.Next()
		if err != nil {
			return false
		}
		switch tok {
		case xmlutil.TokStart:
			return r.cur.Depth() == depth+1
		case xmlutil.TokText:
			// Validated and ignored: text in Envelope/Body/outside the
			// root never reaches tree-path consumers either.
			continue
		default:
			return false
		}
	}
}

// ReadValue reads the next parameter element of the primary body entry,
// reproducing ParseValue's result for the streaming subset: typed scalars,
// soapenc:Array containers of scalar items, and untyped text values. done
// reports the entry's end tag; !ok means fall back (literal-XML payloads,
// nested arrays, mixed content, malformed input).
func (r *BodyReader) ReadValue() (v Value, done, ok bool) {
	done, ok = r.ReadValueInto(&v)
	return v, done, ok
}

// ReadValueInto is ReadValue filling a caller-provided Value in place —
// the form the rpc codecs use to decode straight into their pre-sized raw
// slice without copying the (pointer-heavy) Value through two returns. On
// done or !ok, *v is meaningless.
func (r *BodyReader) ReadValueInto(v *Value) (done, ok bool) {
	cur := r.cur
	for {
		tok, err := cur.Next()
		if err != nil {
			return false, false
		}
		switch tok {
		case xmlutil.TokEnd:
			return true, true
		case xmlutil.TokText:
			// Text between parameters lands in the operation element's
			// Text field on the tree path and is never read; discard.
			continue
		case xmlutil.TokStart:
			return r.readParam(v)
		default:
			return false, false
		}
	}
}

// readParam consumes one parameter element (the cursor is on its start
// tag) and fills its Value.
func (r *BodyReader) readParam(v *Value) (done, ok bool) {
	cur := r.cur
	v.Name = cur.Name()
	typeAttr, _ := cur.Attr("type")
	if typeAttr == "soapenc:Array" {
		v.Type = "Array"
		items, ok := r.readItems()
		if !ok {
			return false, false
		}
		v.Items = items
		v.Text = ""
		return false, true
	}
	// Scalar: at most one text token, then the end tag. A child element
	// here is either a literal-XML payload (untyped) or a shape ParseValue
	// would flatten oddly (typed with children) — tree path either way.
	text, ok := r.readScalarContent()
	if !ok {
		return false, false
	}
	v.Type = strings.TrimPrefix(typeAttr, "xsd:")
	if v.Type == "" {
		v.Type = "string"
	}
	v.Text = text
	v.Items = nil
	return false, true
}

// readScalarContent consumes the content of a scalar element up to its end
// tag. Leaf text is preserved verbatim (no trimming), matching the tree
// parser's leaf-text rule.
func (r *BodyReader) readScalarContent() (string, bool) {
	cur := r.cur
	text := ""
	sawText := false
	for {
		tok, err := cur.Next()
		if err != nil {
			return "", false
		}
		switch tok {
		case xmlutil.TokEnd:
			return text, true
		case xmlutil.TokText:
			if sawText {
				// Two text runs with nothing between them cannot happen
				// without a construct the cursor already rejects; be safe.
				return "", false
			}
			s, terr := cur.Text()
			if terr != nil {
				return "", false
			}
			text = s
			sawText = true
		default:
			return "", false
		}
	}
}

// readItems consumes the items of a soapenc:Array container. The tree
// path ignores container text entirely for arrays, but only after
// trimming proves it whitespace; non-space text falls back rather than
// replicating that edge. Nested containers (items with children) fall
// back too.
func (r *BodyReader) readItems() ([]Value, bool) {
	cur := r.cur
	var items []Value
	for {
		tok, err := cur.Next()
		if err != nil {
			return nil, false
		}
		switch tok {
		case xmlutil.TokEnd:
			return items, true
		case xmlutil.TokText:
			if !cur.TextIsSpace() {
				return nil, false
			}
		case xmlutil.TokStart:
			name := cur.Name()
			typeAttr, _ := cur.Attr("type")
			if typeAttr == "soapenc:Array" {
				return nil, false
			}
			text, ok := r.readScalarContent()
			if !ok {
				return nil, false
			}
			it := Value{Name: name, Type: strings.TrimPrefix(typeAttr, "xsd:"), Text: text}
			if it.Type == "" {
				it.Type = "string"
			}
			items = append(items, it)
		default:
			return nil, false
		}
	}
}

// Finish verifies the envelope tail after the primary body entry closed:
// Body and Envelope must close with no further entries (a trailing Header
// or extra body entry routes to the tree path, which knows what to do
// with them), then only discardable character data until EOF.
func (r *BodyReader) Finish() bool {
	for {
		tok, err := r.cur.Next()
		if err != nil {
			return false
		}
		switch tok {
		case xmlutil.TokEOF:
			return true
		case xmlutil.TokEnd, xmlutil.TokText:
			continue
		default:
			return false
		}
	}
}

// ParseResponseStream decodes an RPC response envelope through the
// streaming reader: no element tree, no arena. It handles the common
// shape — headerless envelope, scalar/array return values — and reports
// !ok for everything else (faults included, so error relay always flows
// through the tree path's exact semantics). The result is identical to
// ParseResponse over the parsed envelope.
func ParseResponseStream(data []byte) (*Response, bool) {
	r := AcquireBodyReader(data)
	defer r.Release()
	space, name, ok := r.Begin()
	if !ok {
		return nil, false
	}
	if space == EnvelopeNS && name == "Fault" {
		return nil, false
	}
	resp := &Response{ServiceNS: space, Method: strings.TrimSuffix(name, "Response")}
	resp.Returns = make([]Value, 0, 4)
	for {
		if len(resp.Returns) == cap(resp.Returns) {
			resp.Returns = append(resp.Returns, Value{})
		} else {
			resp.Returns = resp.Returns[:len(resp.Returns)+1]
		}
		done, ok := r.ReadValueInto(&resp.Returns[len(resp.Returns)-1])
		if !ok {
			return nil, false
		}
		if done {
			resp.Returns = resp.Returns[:len(resp.Returns)-1]
			break
		}
	}
	if !r.Finish() {
		return nil, false
	}
	return resp, true
}

// SniffBody reports the namespace and local name of the primary body entry
// of serialised envelope bytes without building an element tree, falling
// back to a full parse for envelopes outside the streaming subset (ones
// carrying headers, say). Unparseable bytes yield ok=false. The gateway
// uses it to identify the operation a request targets — and whether a
// relayed response is a fault — from raw bytes alone.
func SniffBody(data []byte) (space, name string, ok bool) {
	r := AcquireBodyReader(data)
	space, name, ok = r.Begin()
	r.Release()
	if ok {
		return space, name, true
	}
	env, err := ParseEnvelopeBytes(data)
	if err != nil || len(env.Body) == 0 {
		return "", "", false
	}
	return env.Body[0].Space, env.Body[0].Name, true
}

// IsFaultBytes reports whether serialised envelope bytes carry a Fault as
// their primary body entry — the raw-bytes counterpart of the SOAP 1.1
// rule that maps fault responses onto HTTP 500.
func IsFaultBytes(data []byte) bool {
	space, name, ok := SniffBody(data)
	return ok && space == EnvelopeNS && name == "Fault"
}
