package soap

import (
	"reflect"
	"testing"
)

// drainBody walks a BodyReader over a serialised envelope and returns the
// values it produced, or ok=false on any fallback signal — the same
// protocol the rpc codecs follow.
func drainBody(data []byte) (space, name string, vals []Value, ok bool) {
	r := AcquireBodyReader(data)
	defer r.Release()
	space, name, ok = r.Begin()
	if !ok {
		return "", "", nil, false
	}
	for {
		v, done, vok := r.ReadValue()
		if !vok {
			return "", "", nil, false
		}
		if done {
			break
		}
		vals = append(vals, v)
	}
	if !r.Finish() {
		return "", "", nil, false
	}
	return space, name, vals, true
}

// TestBodyReaderMatchesTreeParse pins the streaming decode to ParseCall
// over the tree parse for in-subset envelopes — including one built by our
// own encoder (the prologue-seed fast path) and a foreign serialisation of
// the same infoset (the general scan).
func TestBodyReaderMatchesTreeParse(t *testing.T) {
	call := &Call{ServiceNS: "urn:svc", Method: "submit", Params: []Value{
		Str("host", "grid.example"),
		Int("count", 3),
		Bool("fast", true),
		StrArray("args", []string{"-l", "walltime=2h"}),
		Str("empty", ""),
	}}
	ours := []byte(call.WireEnvelope().Render())
	foreign := []byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
		"\n  <soap:Body>\n    " +
		`<m:submit xmlns:m="urn:svc" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">` +
		`<host xsi:type="xsd:string">grid.example</host>` +
		`<count xsi:type="xsd:int">3</count>` +
		`<fast xsi:type="xsd:boolean">true</fast>` +
		`<args xsi:type="soapenc:Array"><item xsi:type="xsd:string">-l</item><item xsi:type="xsd:string">walltime=2h</item></args>` +
		`<empty xsi:type="xsd:string"/>` +
		`</m:submit></soap:Body></soap:Envelope>`)
	for label, wire := range map[string][]byte{"own-encoder": ours, "foreign": foreign} {
		env, err := ParseEnvelopeBytes(wire)
		if err != nil {
			t.Fatalf("%s: tree parse: %v", label, err)
		}
		want, err := ParseCall(env)
		if err != nil {
			t.Fatalf("%s: ParseCall: %v", label, err)
		}
		space, name, vals, ok := drainBody(wire)
		if !ok {
			t.Fatalf("%s: streaming reader fell back on an in-subset envelope", label)
		}
		if space != want.ServiceNS || name != want.Method {
			t.Errorf("%s: op = %s|%s, want %s|%s", label, space, name, want.ServiceNS, want.Method)
		}
		if !reflect.DeepEqual(vals, want.Params) {
			t.Errorf("%s: params diverge\n got: %+v\nwant: %+v", label, vals, want.Params)
		}
	}
}

// TestBodyReaderFallsBack enumerates the shapes the reader must refuse so
// the tree path keeps its authority over them.
func TestBodyReaderFallsBack(t *testing.T) {
	envelope := func(body string) string {
		return `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
			body + `</e:Body></e:Envelope>`
	}
	cases := map[string]string{
		"header": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<e:Header><tok>x</tok></e:Header><e:Body><m:op xmlns:m="urn:s"/></e:Body></e:Envelope>`,
		"empty body":   `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/></e:Envelope>`,
		"foreign root": `<r/>`,
		"literal xml param": envelope(
			`<m:op xmlns:m="urn:s"><doc><inner>payload</inner></doc></m:op>`),
		"nested array": envelope(`<m:op xmlns:m="urn:s" xmlns:x="http://www.w3.org/2001/XMLSchema-instance">` +
			`<a x:type="soapenc:Array"><item x:type="soapenc:Array"/></a></m:op>`),
		"array with stray text": envelope(`<m:op xmlns:m="urn:s" xmlns:x="http://www.w3.org/2001/XMLSchema-instance">` +
			`<a x:type="soapenc:Array">stray<item>v</item></a></m:op>`),
		"trailing body entry": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
			`<m:op xmlns:m="urn:s"/><m:extra xmlns:m="urn:s"/></e:Body></e:Envelope>`,
		"comment":   envelope(`<m:op xmlns:m="urn:s"><!-- c --></m:op>`),
		"truncated": `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body><m:op xmlns:m="urn:s">`,
	}
	for label, doc := range cases {
		if _, _, _, ok := drainBody([]byte(doc)); ok {
			t.Errorf("%s: reader accepted an out-of-subset envelope", label)
		}
	}
}

// TestParseResponseStreamParity checks the streamed response parse against
// ParseResponse, and that faults always fall back.
func TestParseResponseStreamParity(t *testing.T) {
	resp := &Response{ServiceNS: "urn:svc", Method: "submit", Returns: []Value{
		Str("jobID", "pbs.1234"),
		StrArray("nodes", []string{"n0", "n1"}),
	}}
	wire := []byte(resp.WireEnvelope().Render())
	env, err := ParseEnvelopeBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseResponse(env)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseResponseStream(wire)
	if !ok {
		t.Fatal("ParseResponseStream fell back on an in-subset response")
	}
	if got.ServiceNS != want.ServiceNS || got.Method != want.Method {
		t.Errorf("identity = %s.%s, want %s.%s", got.ServiceNS, got.Method, want.ServiceNS, want.Method)
	}
	if !reflect.DeepEqual(got.Returns, want.Returns) {
		t.Errorf("returns diverge\n got: %+v\nwant: %+v", got.Returns, want.Returns)
	}

	fault := &Response{ServiceNS: "urn:svc", Method: "submit",
		Fault: &Fault{Code: FaultServer, String: "scheduler down"}}
	if _, ok := ParseResponseStream([]byte(fault.WireEnvelope().Render())); ok {
		t.Error("ParseResponseStream accepted a fault envelope; faults must relay through the tree path")
	}
}

// TestBodyReaderPoolReuse runs acquire/decode/release cycles over
// different envelopes to prove no state survives recycling.
func TestBodyReaderPoolReuse(t *testing.T) {
	a := []byte((&Call{ServiceNS: "urn:a", Method: "one", Params: []Value{Str("p", "x")}}).WireEnvelope().Render())
	b := []byte((&Call{ServiceNS: "urn:b", Method: "two", Params: []Value{Int("q", 9)}}).WireEnvelope().Render())
	for i := 0; i < 6; i++ {
		wire, wantNS, wantOp := a, "urn:a", "one"
		if i%2 == 1 {
			wire, wantNS, wantOp = b, "urn:b", "two"
		}
		space, name, vals, ok := drainBody(wire)
		if !ok || space != wantNS || name != wantOp || len(vals) != 1 {
			t.Fatalf("cycle %d: %s|%s vals=%d ok=%v", i, space, name, len(vals), ok)
		}
	}
}
