package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmlutil"
)

// ErrInjected marks transport failures manufactured by a ChaosTransport,
// so chaos tests can tell injected faults from real ones.
var ErrInjected = errors.New("soap: injected transport fault")

// ChaosTransport wraps a transport with deterministic, seeded fault
// injection: added latency, pre-send errors (the backend was never
// reached), dropped responses (the request executed but its response was
// lost), and truncated responses (torn bytes on the wire). It drives the
// chaos suite that proves the resilience layer's invariants — in
// particular that dropped responses, which may have executed server-side,
// are never blindly retried for non-idempotent operations.
type ChaosTransport struct {
	// Inner is the transport actually carrying surviving requests.
	Inner RawTransport
	// Seed makes the fault schedule reproducible; 0 seeds from the clock.
	Seed int64
	// LatencyRate is the probability of injecting a delay, uniform in
	// (0, MaxLatency], before the request is sent.
	LatencyRate float64
	// MaxLatency bounds injected delays; default 10ms when a delay fires.
	MaxLatency time.Duration
	// ErrorRate is the probability the request fails before being sent.
	ErrorRate float64
	// DropRate is the probability the response is discarded after the
	// request was delivered and executed.
	DropRate float64
	// TruncateRate is the probability the response bytes are cut short.
	TruncateRate float64

	mu  sync.Mutex
	rng *rand.Rand

	injectedDelays      atomic.Uint64
	injectedErrors      atomic.Uint64
	injectedDrops       atomic.Uint64
	injectedTruncations atomic.Uint64
}

// chaosPlan is one round trip's pre-drawn fate; drawing all randomness up
// front under one lock keeps the schedule deterministic per seed even
// under concurrency (the interleaving of draws, not of requests, decides
// each call's fate).
type chaosPlan struct {
	delay    time.Duration
	preErr   bool
	drop     bool
	truncate bool
	truncAt  float64
}

func (c *ChaosTransport) plan() chaosPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		seed := c.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	var p chaosPlan
	if c.LatencyRate > 0 && c.rng.Float64() < c.LatencyRate {
		max := c.MaxLatency
		if max <= 0 {
			max = 10 * time.Millisecond
		}
		p.delay = time.Duration(c.rng.Int63n(int64(max))) + 1
	}
	p.preErr = c.ErrorRate > 0 && c.rng.Float64() < c.ErrorRate
	p.drop = c.DropRate > 0 && c.rng.Float64() < c.DropRate
	p.truncate = c.TruncateRate > 0 && c.rng.Float64() < c.TruncateRate
	p.truncAt = c.rng.Float64()
	return p
}

// Injected reports how many faults of each kind were injected:
// delays, pre-send errors, dropped responses, truncations.
func (c *ChaosTransport) Injected() (delays, errors, drops, truncations uint64) {
	return c.injectedDelays.Load(), c.injectedErrors.Load(), c.injectedDrops.Load(), c.injectedTruncations.Load()
}

// RoundTrip implements Transport.
func (c *ChaosTransport) RoundTrip(endpoint, action string, req *Envelope) (*Envelope, error) {
	return c.RoundTripCtx(context.Background(), endpoint, action, req)
}

// RoundTripCtx implements ContextTransport.
func (c *ChaosTransport) RoundTripCtx(ctx context.Context, endpoint, action string, req *Envelope) (*Envelope, error) {
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	if err := c.RoundTripRawCtx(ctx, endpoint, action, req, buf); err != nil {
		return nil, err
	}
	return ParseEnvelopeBytes(buf.Bytes())
}

// RoundTripRaw implements RawTransport.
func (c *ChaosTransport) RoundTripRaw(endpoint, action string, req *Envelope, resp *bytes.Buffer) error {
	return c.RoundTripRawCtx(context.Background(), endpoint, action, req, resp)
}

// RoundTripRawCtx implements ContextRawTransport, injecting this call's
// pre-drawn faults around the inner transport. On any injected failure
// resp is restored to its pre-call length, matching the HTTP transport's
// error contract.
func (c *ChaosTransport) RoundTripRawCtx(ctx context.Context, endpoint, action string, req *Envelope, resp *bytes.Buffer) error {
	p := c.plan()
	mark := resp.Len()
	if p.delay > 0 {
		c.injectedDelays.Add(1)
		t := time.NewTimer(p.delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if p.preErr {
		c.injectedErrors.Add(1)
		return fmt.Errorf("soap: post %s: connection refused: %w", endpoint, ErrInjected)
	}
	if err := RoundTripRawContext(ctx, c.Inner, endpoint, action, req, resp); err != nil {
		return err
	}
	if p.drop {
		c.injectedDrops.Add(1)
		resp.Truncate(mark)
		return fmt.Errorf("soap: read response from %s: connection reset: %w", endpoint, ErrInjected)
	}
	if p.truncate {
		c.injectedTruncations.Add(1)
		n := resp.Len() - mark
		resp.Truncate(mark + int(p.truncAt*float64(n)))
	}
	return nil
}
