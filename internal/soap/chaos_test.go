package soap

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// chaosEcho is a loopback inner transport answering every request with a
// fixed, parseable envelope.
func chaosEcho() *LoopbackTransport {
	return &LoopbackTransport{Handler: func(_ context.Context, req *Envelope, _ *http.Request) (*Envelope, error) {
		resp := &Response{Method: "echo", ServiceNS: "urn:test:chaos",
			Returns: []Value{Str("s", "ok")}}
		return resp.WireEnvelope(), nil
	}}
}

// TestChaosTransportDeterminism: two transports with the same seed must
// draw the same per-call fate sequence — the reproducibility every chaos
// run depends on.
func TestChaosTransportDeterminism(t *testing.T) {
	mk := func() *ChaosTransport {
		return &ChaosTransport{
			Inner:        chaosEcho(),
			Seed:         99,
			ErrorRate:    0.3,
			DropRate:     0.2,
			TruncateRate: 0.2,
		}
	}
	a, b := mk(), mk()
	call := &Call{ServiceNS: "urn:test:chaos", Method: "echo", Params: []Value{Str("s", "x")}}
	for i := 0; i < 300; i++ {
		var ra, rb bytes.Buffer
		ea := a.RoundTripRaw("loop://a", "urn:test:chaos#echo", call.WireEnvelope(), &ra)
		eb := b.RoundTripRaw("loop://b", "urn:test:chaos#echo", call.WireEnvelope(), &rb)
		if (ea == nil) != (eb == nil) || !bytes.Equal(ra.Bytes(), rb.Bytes()) {
			t.Fatalf("call %d diverged: err %v vs %v, %d vs %d bytes", i, ea, eb, ra.Len(), rb.Len())
		}
	}
	da, ea2, dra, ta := a.Injected()
	db, eb2, drb, tb := b.Injected()
	if da != db || ea2 != eb2 || dra != drb || ta != tb {
		t.Fatalf("injection counters diverged: (%d %d %d %d) vs (%d %d %d %d)",
			da, ea2, dra, ta, db, eb2, drb, tb)
	}
	if ea2 == 0 || dra == 0 || ta == 0 {
		t.Fatalf("rates did not fire over 300 calls: errors=%d drops=%d truncations=%d", ea2, dra, ta)
	}
}

// TestChaosTransportErrorShapes: injected failures are marked ErrInjected,
// dropped responses leave the buffer at its pre-call length, truncations
// shorten but keep a non-nil error-free result.
func TestChaosTransportErrorShapes(t *testing.T) {
	call := &Call{ServiceNS: "urn:test:chaos", Method: "echo", Params: []Value{Str("s", "x")}}

	pre := &ChaosTransport{Inner: chaosEcho(), Seed: 1, ErrorRate: 1}
	var buf bytes.Buffer
	buf.WriteString("sentinel")
	err := pre.RoundTripRaw("loop://x", "a#b", call.WireEnvelope(), &buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("pre-send error = %v, want ErrInjected", err)
	}
	if buf.String() != "sentinel" {
		t.Fatalf("pre-send error disturbed the response buffer: %q", buf.String())
	}

	drop := &ChaosTransport{Inner: chaosEcho(), Seed: 1, DropRate: 1}
	buf.Reset()
	buf.WriteString("sentinel")
	err = drop.RoundTripRaw("loop://x", "a#b", call.WireEnvelope(), &buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("drop error = %v, want ErrInjected", err)
	}
	if buf.String() != "sentinel" {
		t.Fatalf("dropped response left bytes behind: %q", buf.String())
	}

	trunc := &ChaosTransport{Inner: chaosEcho(), Seed: 1, TruncateRate: 1}
	var whole, torn bytes.Buffer
	if err := chaosEcho().RoundTripRaw("loop://x", "a#b", call.WireEnvelope(), &whole); err != nil {
		t.Fatal(err)
	}
	if err := trunc.RoundTripRaw("loop://x", "a#b", call.WireEnvelope(), &torn); err != nil {
		t.Fatalf("truncation must not itself error: %v", err)
	}
	if torn.Len() >= whole.Len() {
		t.Fatalf("truncated response not shorter: %d vs %d bytes", torn.Len(), whole.Len())
	}
}

// TestChaosTransportLatencyHonoursContext: an injected delay is abandoned
// when the caller's context expires first.
func TestChaosTransportLatencyHonoursContext(t *testing.T) {
	slow := &ChaosTransport{Inner: chaosEcho(), Seed: 1, LatencyRate: 1, MaxLatency: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	call := &Call{ServiceNS: "urn:test:chaos", Method: "echo", Params: []Value{Str("s", "x")}}
	var buf bytes.Buffer
	start := time.Now()
	err := slow.RoundTripRawCtx(ctx, "loop://x", "a#b", call.WireEnvelope(), &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("delay not abandoned on context expiry (%v)", time.Since(start))
	}
}
