package soap

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/xmlutil"
)

// streamCases enumerate the envelope shapes the portal wire carries; each
// must serialise byte-identically through the streamed (tree-free) path
// and the element-tree path.
func streamCases() map[string]struct{ tree, stream *Envelope } {
	call := &Call{ServiceNS: "urn:bench", Method: "op", Params: []Value{
		Str("a", "hello & <world>"),
		Int("b", 42),
		Bool("c", true),
		StrArray("items", []string{"x", "y", `"quoted"`}),
		XMLDoc("doc", xmlutil.New("payload").SetAttr("k", "v").AddText("leaf", "text")),
		{Name: "untyped", Text: "plain"},
	}}

	resp := &Response{ServiceNS: "urn:bench", Method: "op", Returns: []Value{
		Str("result", "done"),
		StrArray("names", []string{"a", "b"}),
		XMLDoc("tree", xmlutil.NewNS("urn:payload", "root").AddTextNS("urn:payload", "item", "1")),
	}}

	fault := &Response{Fault: &Fault{Code: FaultServer, String: "boom & <bust>", Actor: "urn:actor"}}

	portal := &Response{Fault: NewPortalError("SRBService", ErrCodeResourceFull, "disk full").Fault()}

	withHeader := &Call{ServiceNS: "urn:svc", Method: "secure", Params: []Value{Str("p", "v")}}
	hdrTree := withHeader.Envelope()
	hdrTree.AddHeader(xmlutil.NewNS("urn:saml", "Assertion").SetAttr("id", "a-1"))
	hdrStream := withHeader.WireEnvelope()
	hdrStream.AddHeader(xmlutil.NewNS("urn:saml", "Assertion").SetAttr("id", "a-1"))

	empty := &Response{ServiceNS: "urn:bench", Method: "void"}

	// An interceptor-style AddBody after envelope construction must ship
	// on the wire from both paths.
	addBody := &Call{ServiceNS: "urn:svc", Method: "op", Params: []Value{Str("p", "v")}}
	abTree := addBody.Envelope()
	abTree.AddBody(xmlutil.New("extraEntry").AddText("k", "v"))
	abStream := addBody.WireEnvelope()
	abStream.AddBody(xmlutil.New("extraEntry").AddText("k", "v"))

	return map[string]struct{ tree, stream *Envelope }{
		"call":         {call.Envelope(), call.WireEnvelope()},
		"response":     {resp.Envelope(), resp.WireEnvelope()},
		"fault":        {fault.Envelope(), fault.WireEnvelope()},
		"portal-fault": {portal.Envelope(), portal.WireEnvelope()},
		"with-header":  {hdrTree, hdrStream},
		"empty-return": {empty.Envelope(), empty.WireEnvelope()},
		"added-body":   {abTree, abStream},
	}
}

func TestWireEnvelopeMatchesTreePath(t *testing.T) {
	for name, c := range streamCases() {
		var tree, stream bytes.Buffer
		c.tree.AppendTo(&tree)
		c.stream.AppendTo(&stream)
		if tree.String() != stream.String() {
			t.Errorf("%s: streamed envelope differs from tree path\nstream: %s\ntree:   %s",
				name, stream.String(), tree.String())
		}
		// Whatever was streamed must parse back as a well-formed envelope.
		if _, err := ParseEnvelopeBytes(stream.Bytes()); err != nil {
			t.Errorf("%s: streamed envelope does not re-parse: %v", name, err)
		}
	}
}

func TestStreamedFaultDetection(t *testing.T) {
	f := (&Response{Fault: &Fault{Code: FaultClient, String: "bad"}}).WireEnvelope()
	if !isFaultEnvelope(f) {
		t.Fatal("streamed fault envelope not detected as fault")
	}
	ok := (&Response{ServiceNS: "urn:x", Method: "m"}).WireEnvelope()
	if isFaultEnvelope(ok) {
		t.Fatal("streamed success envelope misdetected as fault")
	}
	if !isFaultEnvelope(faultEnvelope(errors.New("kaput"), FaultServer)) {
		t.Fatal("faultEnvelope result not detected as fault")
	}
}

// TestFaultEnvelopeRelay pins that the streamed fault conversion keeps the
// three historic behaviours: direct *Fault passthrough, portal-error
// relay in the detail, and generic wrapping.
func TestFaultEnvelopeRelay(t *testing.T) {
	direct := faultEnvelope(&Fault{Code: FaultClient, String: "direct"}, FaultServer)
	var b bytes.Buffer
	direct.AppendTo(&b)
	if !strings.Contains(b.String(), "soap:Client") {
		t.Fatalf("direct fault lost its code: %s", b.String())
	}

	pe := NewPortalError("Globusrun", ErrCodeJobFailed, "job died")
	relayed := faultEnvelope(error(pe), FaultServer)
	b.Reset()
	relayed.AppendTo(&b)
	env, err := ParseEnvelopeBytes(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ParseResponse(env)
	var f *Fault
	if !errors.As(rerr, &f) {
		t.Fatalf("expected fault error, got %v", rerr)
	}
	got := f.PortalError()
	if got == nil || got.Code != ErrCodeJobFailed || got.Service != "Globusrun" {
		t.Fatalf("portal error not relayed: %+v", got)
	}

	generic := faultEnvelope(errors.New("kaput"), FaultServer)
	b.Reset()
	generic.AppendTo(&b)
	if !strings.Contains(b.String(), "soap:Server") || !strings.Contains(b.String(), "kaput") {
		t.Fatalf("generic fault wrong: %s", b.String())
	}
}

func TestRawTransportLoopback(t *testing.T) {
	lb := &LoopbackTransport{Handler: func(_ context.Context, req *Envelope, _ *http.Request) (*Envelope, error) {
		call, err := ParseCall(req)
		if err != nil {
			return nil, err
		}
		return (&Response{ServiceNS: call.ServiceNS, Method: call.Method,
			Returns: []Value{Str("echo", Args(call.Params).String("msg"))}}).WireEnvelope(), nil
	}}
	call := &Call{ServiceNS: "urn:raw", Method: "say", Params: []Value{Str("msg", "hi")}}

	// Raw and parsed round trips must agree on the wire bytes.
	var raw bytes.Buffer
	if err := lb.RoundTripRaw("x", "urn:raw#say", call.WireEnvelope(), &raw); err != nil {
		t.Fatal(err)
	}
	env, err := lb.RoundTrip("x", "urn:raw#say", call.WireEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	var reRendered bytes.Buffer
	env.AppendTo(&reRendered)
	if raw.String() != reRendered.String() {
		t.Fatalf("raw bytes differ from reparsed envelope:\nraw: %s\nre:  %s", raw.String(), reRendered.String())
	}
	resp, err := ParseResponse(env)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReturnText("echo") != "hi" {
		t.Fatalf("echo = %q", resp.ReturnText("echo"))
	}
}
