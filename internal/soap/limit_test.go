package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// withMessageLimit shrinks the transport message limit for one test so the
// boundary cases don't need to allocate 64 MiB bodies. Tests using it must
// not run in parallel.
func withMessageLimit(t *testing.T, limit int64) {
	t.Helper()
	old := maxMessageBytes
	maxMessageBytes = limit
	t.Cleanup(func() { maxMessageBytes = old })
}

func TestReadMessageBoundary(t *testing.T) {
	withMessageLimit(t, 1024)
	var buf bytes.Buffer
	if err := ReadMessage(&buf, strings.NewReader(strings.Repeat("a", 1024))); err != nil {
		t.Fatalf("exact-limit read: %v", err)
	}
	if buf.Len() != 1024 {
		t.Fatalf("exact-limit read kept %d bytes, want 1024", buf.Len())
	}
	buf.Reset()
	if err := ReadMessage(&buf, strings.NewReader(strings.Repeat("a", 1025))); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("limit+1 read: got %v, want ErrMessageTooLarge", err)
	}
}

// TestOversizeResponseClientPath pins the client-side boundary: a response
// of exactly the limit is delivered whole, one byte more is rejected with
// the deterministic oversize error — not silently truncated into a body
// that would later fail to parse.
func TestOversizeResponseClientPath(t *testing.T) {
	withMessageLimit(t, 4096)
	var size int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(bytes.Repeat([]byte{'a'}, int(size)))
	}))
	defer ts.Close()

	tr := &HTTPTransport{}
	call := &Call{ServiceNS: "urn:x", Method: "ping"}
	var resp bytes.Buffer
	size = 4096
	if err := tr.RoundTripRaw(ts.URL, "urn:x#ping", call.WireEnvelope(), &resp); err != nil {
		t.Fatalf("exact-limit response: %v", err)
	}
	if resp.Len() != 4096 {
		t.Fatalf("exact-limit response kept %d bytes, want 4096", resp.Len())
	}

	resp.Reset()
	resp.WriteString("prior")
	size = 4097
	err := tr.RoundTripRaw(ts.URL, "urn:x#ping", call.WireEnvelope(), &resp)
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("limit+1 response: got %v, want ErrMessageTooLarge", err)
	}
	want := fmt.Sprintf("soap: response from %s exceeds 4096-byte message limit: %s", ts.URL, ErrMessageTooLarge)
	if err.Error() != want {
		t.Fatalf("oversize error text:\n got %q\nwant %q", err.Error(), want)
	}
	if resp.String() != "prior" {
		t.Fatalf("buffer not restored on oversize failure: %q", resp.String())
	}
}

// TestOversizeRequestServerPath pins the server-side boundary: a request
// of exactly the limit dispatches normally, one byte more is answered with
// HTTP 413 carrying a typed BadRequest fault — on both the declared
// Content-Length fast path and the chunked read path.
func TestOversizeRequestServerPath(t *testing.T) {
	withMessageLimit(t, 4096)
	h := Handler(func(ctx context.Context, req *Envelope, r *http.Request) (*Envelope, error) {
		return (&Response{ServiceNS: "urn:x", Method: "ping"}).WireEnvelope(), nil
	})

	// Build a valid request envelope padded to exactly the limit.
	build := func(pad int) []byte {
		call := &Call{ServiceNS: "urn:x", Method: "ping",
			Params: []Value{Str("pad", strings.Repeat("a", pad))}}
		var buf bytes.Buffer
		call.WireEnvelope().AppendTo(&buf)
		return buf.Bytes()
	}
	base := len(build(1)) - 1 // a non-empty pad: empty params render self-closing
	exact := build(int(maxMessageBytes) - base)
	if int64(len(exact)) != maxMessageBytes {
		t.Fatalf("padding math: built %d bytes, want %d", len(exact), maxMessageBytes)
	}

	post := func(body []byte, chunked bool) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/svc", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentType)
		if chunked {
			req.ContentLength = -1
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := post(exact, false); rec.Code != http.StatusOK {
		t.Fatalf("exact-limit request: HTTP %d: %s", rec.Code, rec.Body)
	}

	over := append(append([]byte(nil), exact...), ' ')
	for _, chunked := range []bool{false, true} {
		rec := post(over, chunked)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("limit+1 request (chunked=%v): HTTP %d: %s", chunked, rec.Code, rec.Body)
		}
		env, err := ParseEnvelopeBytes(rec.Body.Bytes())
		if err != nil {
			t.Fatalf("oversize fault response does not parse (chunked=%v): %v", chunked, err)
		}
		_, ferr := ParseResponse(env)
		f := AsFault(ferr)
		if f == nil {
			t.Fatalf("oversize response is not a fault (chunked=%v): %v", chunked, ferr)
		}
		if f.Code != FaultClient {
			t.Fatalf("oversize fault code = %q, want %q", f.Code, FaultClient)
		}
		pe := f.PortalError()
		if pe == nil || pe.Code != ErrCodeBadRequest {
			t.Fatalf("oversize fault portal error = %+v, want code %s", pe, ErrCodeBadRequest)
		}
		if want := "request exceeds 4096-byte message limit"; pe.Message != want {
			t.Fatalf("oversize fault message = %q, want %q", pe.Message, want)
		}
	}
}
