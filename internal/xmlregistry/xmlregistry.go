// Package xmlregistry implements the discovery system the paper proposes to
// replace UDDI: "a recursive, self-describing XML container hierarchy into
// which metadata about services may be flexibly mapped" (Section 3.4). The
// paper suggests LDAP or an XML database as possible realisations; this
// package provides the XML-database flavour.
//
// The registry stores a tree of containers. Each container is self-
// describing: it carries a type name, arbitrary typed properties, and child
// containers. Service capabilities (such as the queuing systems a batch
// script generator supports) are first-class property values rather than
// free-text conventions, so queries like "every service whose
// supportedScheduler property equals NQS" are exact — the query precision
// that UDDI's string descriptions cannot deliver, which the discovery
// experiment (S3.4) measures.
package xmlregistry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/rpc"
	"repro/internal/shardmap"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// Property is one typed name/value pair on a container. Multi-valued
// properties are expressed by repeating the name.
type Property struct {
	// Name of the property, e.g. "supportedScheduler".
	Name string
	// Value as text.
	Value string
}

// Container is one node of the self-describing hierarchy.
type Container struct {
	// Name is the node's name within its parent, unique among siblings.
	Name string
	// Type is the self-description, e.g. "serviceGroup", "service",
	// "capability".
	Type string
	// Properties are the node's typed metadata.
	Properties []Property
	// children by name.
	children map[string]*Container
	// order preserves insertion order of children.
	order []string
}

// newContainer constructs an empty container.
func newContainer(name, typ string) *Container {
	return &Container{Name: name, Type: typ, children: map[string]*Container{}}
}

// Child returns the named child, or nil.
func (c *Container) Child(name string) *Container {
	return c.children[name]
}

// Children returns the child containers in insertion order.
func (c *Container) Children() []*Container {
	out := make([]*Container, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.children[n])
	}
	return out
}

// Prop returns the first value of the named property and whether it exists.
func (c *Container) Prop(name string) (string, bool) {
	for _, p := range c.Properties {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// PropAll returns every value of the named property.
func (c *Container) PropAll(name string) []string {
	var out []string
	for _, p := range c.Properties {
		if p.Name == name {
			out = append(out, p.Value)
		}
	}
	return out
}

// SetProp appends a property value.
func (c *Container) SetProp(name, value string) *Container {
	c.Properties = append(c.Properties, Property{Name: name, Value: value})
	return c
}

// Element renders the container subtree as self-describing XML.
func (c *Container) Element() *xmlutil.Element {
	el := xmlutil.New("container").SetAttr("name", c.Name).SetAttr("type", c.Type)
	for _, p := range c.Properties {
		el.Add(xmlutil.NewText("property", p.Value).SetAttr("name", p.Name))
	}
	for _, child := range c.Children() {
		el.Add(child.Element())
	}
	return el
}

// containerFromElement parses a rendered container subtree.
func containerFromElement(el *xmlutil.Element) (*Container, error) {
	if el.Name != "container" {
		return nil, fmt.Errorf("xmlregistry: element %q is not container", el.Name)
	}
	c := newContainer(el.AttrDefault("name", ""), el.AttrDefault("type", ""))
	for _, p := range el.ChildrenNamed("property") {
		c.SetProp(p.AttrDefault("name", ""), p.Text)
	}
	for _, childEl := range el.ChildrenNamed("container") {
		child, err := containerFromElement(childEl)
		if err != nil {
			return nil, err
		}
		c.children[child.Name] = child
		c.order = append(c.order, child.Name)
	}
	return c, nil
}

// Registry is the container hierarchy with concurrency-safe access.
//
// The hierarchy is partitioned by top-level container name: everything
// under one top-level container lives in that name's shard and every path
// operation runs under that single shard's lock, so requests against
// different top-level containers (different service groups, different
// deployments) proceed in parallel. The insertion order of top-level
// containers — which only Export renders — is kept separately under a
// small mutex touched only on top-level create/delete/import.
// With Persist attached, each mutation's record is appended inside the same
// shard-lock critical section as the mutation itself, so per-container log
// order matches apply order and a compaction dump (which takes shard read
// locks) never observes a mutation whose record it might lose. Reads never
// touch the log.
type Registry struct {
	top *shardmap.Map[*Container]

	ordMu sync.Mutex
	order []string

	persist *persist.Binding // nil = in-memory only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{top: shardmap.New[*Container](0)}
}

// addOrder records a newly created top-level name. Idempotent, so an
// Import racing a Create cannot leave a duplicate behind.
func (r *Registry) addOrder(name string) {
	r.ordMu.Lock()
	defer r.ordMu.Unlock()
	for _, n := range r.order {
		if n == name {
			return
		}
	}
	r.order = append(r.order, name)
}

func (r *Registry) removeOrder(name string) {
	r.ordMu.Lock()
	defer r.ordMu.Unlock()
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

func (r *Registry) topOrder() []string {
	r.ordMu.Lock()
	defer r.ordMu.Unlock()
	return append([]string(nil), r.order...)
}

// createLocked makes (or finds) the container at segs, creating
// intermediates of type "container" and the leaf with typ. The caller
// holds the write lock of the shard owning segs[0].
func (r *Registry) createLocked(s *shardmap.Shard[*Container], segs []string, typ string) (*Container, error) {
	leafIdx := len(segs) - 1
	cur, ok := s.Get(segs[0])
	if !ok {
		t := "container"
		if leafIdx == 0 {
			t = typ
		}
		cur = newContainer(segs[0], t)
		s.Put(segs[0], cur)
		r.addOrder(segs[0])
	} else if leafIdx == 0 && cur.Type != typ {
		return nil, fmt.Errorf("xmlregistry: %s exists with type %q, requested %q", segs[0], cur.Type, typ)
	}
	for i := 1; i < len(segs); i++ {
		seg := segs[i]
		next := cur.children[seg]
		if next == nil {
			t := "container"
			if i == leafIdx {
				t = typ
			}
			next = newContainer(seg, t)
			cur.children[seg] = next
			cur.order = append(cur.order, seg)
		} else if i == leafIdx && next.Type != typ {
			return nil, fmt.Errorf("xmlregistry: %s exists with type %q, requested %q", strings.Join(segs, "/"), next.Type, typ)
		}
		cur = next
	}
	return cur, nil
}

// Create makes (or returns a deep copy of) the container at the
// slash-separated path, setting its type. Intermediate containers are
// created with type "container". Returns an error when the path exists
// with a conflicting type.
func (r *Registry) Create(path, typ string) (*Container, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s := r.top.ShardFor(segs[0])
	s.Lock()
	defer s.Unlock()
	c, err := r.createLocked(s, segs, typ)
	if err != nil {
		return nil, err
	}
	if err := r.persist.Log(opCreate, record{Path: path, Type: typ}); err != nil {
		return nil, err
	}
	return copyContainer(c), nil
}

// Put replaces the properties of the container at path, creating it (with
// the given type) if needed. Create-and-set runs under one shard lock, so
// a concurrent Get sees either the old properties or the new, never a
// half-written container.
func (r *Registry) Put(path, typ string, props []Property) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	s := r.top.ShardFor(segs[0])
	s.Lock()
	defer s.Unlock()
	c, err := r.createLocked(s, segs, typ)
	if err != nil {
		return err
	}
	c.Properties = append([]Property(nil), props...)
	return r.persist.Log(opPut, record{Path: path, Type: typ, Props: props})
}

// Get returns a deep copy of the container at path.
func (r *Registry) Get(path string) (*Container, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s := r.top.ShardFor(segs[0])
	s.RLock()
	defer s.RUnlock()
	c, err := lookupLocked(s, segs, path)
	if err != nil {
		return nil, err
	}
	return copyContainer(c), nil
}

// Delete removes the container at path and its subtree.
func (r *Registry) Delete(path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	s := r.top.ShardFor(segs[0])
	s.Lock()
	defer s.Unlock()
	if len(segs) == 1 {
		if !s.Delete(segs[0]) {
			return fmt.Errorf("xmlregistry: no container at %q", path)
		}
		r.removeOrder(segs[0])
		return r.persist.Log(opDelete, record{Path: path})
	}
	parent, err := lookupLocked(s, segs[:len(segs)-1], path)
	if err != nil {
		return err
	}
	leaf := segs[len(segs)-1]
	if _, ok := parent.children[leaf]; !ok {
		return fmt.Errorf("xmlregistry: no container at %q", path)
	}
	delete(parent.children, leaf)
	for i, n := range parent.order {
		if n == leaf {
			parent.order = append(parent.order[:i], parent.order[i+1:]...)
			break
		}
	}
	return r.persist.Log(opDelete, record{Path: path})
}

// lookupLocked resolves segs within the shard. The caller holds the
// shard's lock (read or write); path is the original request path for
// error messages.
func lookupLocked(s *shardmap.Shard[*Container], segs []string, path string) (*Container, error) {
	cur, ok := s.Get(segs[0])
	if !ok {
		return nil, fmt.Errorf("xmlregistry: no container at %q", path)
	}
	for _, seg := range segs[1:] {
		cur = cur.children[seg]
		if cur == nil {
			return nil, fmt.Errorf("xmlregistry: no container at %q", path)
		}
	}
	return cur, nil
}

func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, fmt.Errorf("xmlregistry: empty path")
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("xmlregistry: empty path segment in %q", path)
		}
	}
	return segs, nil
}

func copyContainer(c *Container) *Container {
	cp := newContainer(c.Name, c.Type)
	cp.Properties = append([]Property(nil), c.Properties...)
	for _, name := range c.order {
		child := copyContainer(c.children[name])
		cp.children[name] = child
		cp.order = append(cp.order, name)
	}
	return cp
}

// Query describes a structured search over the hierarchy. All specified
// constraints must hold; an empty query matches every container.
type Query struct {
	// Type restricts matches to containers of this type.
	Type string
	// HasProp requires a property with this name (any value).
	HasProp string
	// PropEquals requires property name=value pairs to match exactly
	// (value among the container's values for that property).
	PropEquals []Property
	// Under restricts the search to the subtree at this path.
	Under string
}

// Match is one query result: the container and its path.
type Match struct {
	// Path is the slash-separated path of the matched container.
	Path string
	// Container is a deep copy of the match.
	Container *Container
}

// Find runs a structured query and returns matches sorted by path. A
// query restricted by Under runs entirely under that subtree's shard
// lock; an unrestricted query visits the top-level shards one at a time
// and is therefore weakly consistent with concurrent writers — each
// subtree is internally consistent, but subtrees mutated mid-query may
// reflect different instants.
func (r *Registry) Find(q Query) ([]Match, error) {
	var out []Match
	var walk func(c *Container, path string)
	walk = func(c *Container, path string) {
		if matches(c, q) {
			out = append(out, Match{Path: path, Container: copyContainer(c)})
		}
		for _, name := range c.order {
			child := c.children[name]
			childPath := name
			if path != "" {
				childPath = path + "/" + name
			}
			walk(child, childPath)
		}
	}
	if q.Under != "" {
		segs, err := splitPath(q.Under)
		if err != nil {
			return nil, err
		}
		s := r.top.ShardFor(segs[0])
		s.RLock()
		start, err := lookupLocked(s, segs, q.Under)
		if err != nil {
			s.RUnlock()
			return nil, err
		}
		walk(start, strings.Trim(q.Under, "/"))
		s.RUnlock()
	} else {
		r.top.Range(func(name string, c *Container) bool {
			walk(c, name)
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func matches(c *Container, q Query) bool {
	if q.Type != "" && c.Type != q.Type {
		return false
	}
	if q.HasProp != "" {
		if _, ok := c.Prop(q.HasProp); !ok {
			return false
		}
	}
	for _, want := range q.PropEquals {
		found := false
		for _, v := range c.PropAll(want.Name) {
			if v == want.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Export renders the whole hierarchy as one self-describing XML document.
// Top-level subtrees are rendered one shard lock at a time, in insertion
// order, so the document is weakly consistent under concurrent writes: the
// ordered top-level list and the sharded map are guarded separately, and a
// container deleted between the list walk and the map load is simply
// skipped (never rendered empty, never a panic). Each rendered subtree is
// internally consistent, but two subtrees may reflect different instants.
func (r *Registry) Export() string {
	el := xmlutil.New("container").SetAttr("name", "").SetAttr("type", "root")
	for _, name := range r.topOrder() {
		s := r.top.ShardFor(name)
		s.RLock()
		if c, ok := s.Get(name); ok {
			el.Add(c.Element())
		}
		s.RUnlock()
	}
	return el.Render()
}

// Import replaces the hierarchy from an exported document. The swap is
// per-top-level-container, not globally atomic: a reader racing an Import
// may see a mix of old and new subtrees, and the durability record of an
// Import racing per-container writers is likewise weakly ordered (the
// record is appended after the swap, with no global lock held).
func (r *Registry) Import(doc string) error {
	el, err := xmlutil.ParseString(doc)
	if err != nil {
		return fmt.Errorf("xmlregistry: %w", err)
	}
	root, err := containerFromElement(el)
	if err != nil {
		return err
	}
	r.top.Clear()
	r.ordMu.Lock()
	r.order = nil
	r.ordMu.Unlock()
	for _, name := range root.order {
		r.top.Store(name, root.children[name])
		r.addOrder(name)
	}
	return r.persist.Log(opImport, record{Doc: doc})
}

// --- SOAP service wrapper -------------------------------------------------

// ServiceNS is the namespace of the registry's SOAP interface.
const ServiceNS = "urn:gce:xmlregistry"

// def is the declarative operation table of the registry service.
func def(r *Registry) *rpc.Def {
	fail := func(code, format string, a ...interface{}) error {
		return soap.NewPortalError("XMLRegistry", code, format, a...)
	}
	return &rpc.Def{
		Name: "XMLRegistry",
		NS:   ServiceNS,
		Doc:  "Recursive self-describing XML container hierarchy for service metadata.",
		Ops: []rpc.Op{
			{
				Name: "put",
				In:   []wsdl.Param{rpc.Str("path"), rpc.Str("type"), rpc.XML("properties")},
				Out:  []wsdl.Param{rpc.Bool("ok")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					err := r.Put(in.Str("path"), in.Str("type"), propsFromElement(in.XML("properties")))
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name:       "get",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("path")},
				Out:        []wsdl.Param{rpc.XML("container")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					c, err := r.Get(in.Str("path"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(c.Element()), nil
				},
			},
			{
				Name: "delete",
				In:   []wsdl.Param{rpc.Str("path")},
				Out:  []wsdl.Param{rpc.Bool("ok")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					if err := r.Delete(in.Str("path")); err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name:       "find",
				Idempotent: true,
				In:         []wsdl.Param{rpc.XML("query")},
				Out:        []wsdl.Param{rpc.XML("matches")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					qEl := in.XML("query")
					if qEl == nil {
						return nil, fail(soap.ErrCodeBadRequest, "missing query")
					}
					matches, err := r.Find(queryFromElement(qEl))
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					list := xmlutil.New("matches")
					for _, m := range matches {
						item := xmlutil.New("match").SetAttr("path", m.Path)
						item.Add(m.Container.Element())
						list.Add(item)
					}
					return rpc.Ret(list), nil
				},
			},
		},
	}
}

// Contract returns the WSDL interface of the registry service.
func Contract() *wsdl.Interface {
	return def(nil).Interface()
}

// propsElement renders properties for the wire.
func propsElement(props []Property) *xmlutil.Element {
	el := xmlutil.New("properties")
	for _, p := range props {
		el.Add(xmlutil.NewText("property", p.Value).SetAttr("name", p.Name))
	}
	return el
}

func propsFromElement(el *xmlutil.Element) []Property {
	if el == nil {
		return nil
	}
	var out []Property
	for _, p := range el.ChildrenNamed("property") {
		out = append(out, Property{Name: p.AttrDefault("name", ""), Value: p.Text})
	}
	return out
}

// queryElement renders a Query for the wire.
func queryElement(q Query) *xmlutil.Element {
	el := xmlutil.New("query")
	if q.Type != "" {
		el.AddText("type", q.Type)
	}
	if q.HasProp != "" {
		el.AddText("hasProp", q.HasProp)
	}
	if q.Under != "" {
		el.AddText("under", q.Under)
	}
	for _, p := range q.PropEquals {
		el.Add(xmlutil.NewText("propEquals", p.Value).SetAttr("name", p.Name))
	}
	return el
}

func queryFromElement(el *xmlutil.Element) Query {
	q := Query{
		Type:    el.ChildText("type"),
		HasProp: el.ChildText("hasProp"),
		Under:   el.ChildText("under"),
	}
	for _, p := range el.ChildrenNamed("propEquals") {
		q.PropEquals = append(q.PropEquals, Property{Name: p.AttrDefault("name", ""), Value: p.Text})
	}
	return q
}

// NewService wraps a Registry as a deployable core.Service built from
// the declarative operation table.
func NewService(r *Registry) *core.Service {
	return def(r).MustBuild()
}

// Client is a typed proxy to a remote XMLRegistry service.
type Client struct {
	c *core.Client
}

// NewClient binds a client to the registry endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// Put creates or updates a container.
func (cl *Client) Put(path, typ string, props []Property) error {
	_, err := cl.c.Call("put",
		soap.Str("path", path), soap.Str("type", typ), soap.XMLDoc("properties", propsElement(props)))
	return err
}

// Get fetches a container subtree.
func (cl *Client) Get(path string) (*Container, error) {
	doc, err := cl.c.CallXMLCopy("get", soap.Str("path", path))
	if err != nil {
		return nil, err
	}
	return containerFromElement(doc)
}

// Delete removes a container subtree.
func (cl *Client) Delete(path string) error {
	_, err := cl.c.Call("delete", soap.Str("path", path))
	return err
}

// Find runs a structured query remotely.
func (cl *Client) Find(q Query) ([]Match, error) {
	doc, err := cl.c.CallXMLCopy("find", soap.XMLDoc("query", queryElement(q)))
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, m := range doc.ChildrenNamed("match") {
		if len(m.Children) == 0 {
			continue
		}
		c, err := containerFromElement(m.Child("container"))
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Path: m.AttrDefault("path", ""), Container: c})
	}
	return out, nil
}
