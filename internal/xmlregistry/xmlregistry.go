// Package xmlregistry implements the discovery system the paper proposes to
// replace UDDI: "a recursive, self-describing XML container hierarchy into
// which metadata about services may be flexibly mapped" (Section 3.4). The
// paper suggests LDAP or an XML database as possible realisations; this
// package provides the XML-database flavour.
//
// The registry stores a tree of containers. Each container is self-
// describing: it carries a type name, arbitrary typed properties, and child
// containers. Service capabilities (such as the queuing systems a batch
// script generator supports) are first-class property values rather than
// free-text conventions, so queries like "every service whose
// supportedScheduler property equals NQS" are exact — the query precision
// that UDDI's string descriptions cannot deliver, which the discovery
// experiment (S3.4) measures.
package xmlregistry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// Property is one typed name/value pair on a container. Multi-valued
// properties are expressed by repeating the name.
type Property struct {
	// Name of the property, e.g. "supportedScheduler".
	Name string
	// Value as text.
	Value string
}

// Container is one node of the self-describing hierarchy.
type Container struct {
	// Name is the node's name within its parent, unique among siblings.
	Name string
	// Type is the self-description, e.g. "serviceGroup", "service",
	// "capability".
	Type string
	// Properties are the node's typed metadata.
	Properties []Property
	// children by name.
	children map[string]*Container
	// order preserves insertion order of children.
	order []string
}

// newContainer constructs an empty container.
func newContainer(name, typ string) *Container {
	return &Container{Name: name, Type: typ, children: map[string]*Container{}}
}

// Child returns the named child, or nil.
func (c *Container) Child(name string) *Container {
	return c.children[name]
}

// Children returns the child containers in insertion order.
func (c *Container) Children() []*Container {
	out := make([]*Container, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.children[n])
	}
	return out
}

// Prop returns the first value of the named property and whether it exists.
func (c *Container) Prop(name string) (string, bool) {
	for _, p := range c.Properties {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// PropAll returns every value of the named property.
func (c *Container) PropAll(name string) []string {
	var out []string
	for _, p := range c.Properties {
		if p.Name == name {
			out = append(out, p.Value)
		}
	}
	return out
}

// SetProp appends a property value.
func (c *Container) SetProp(name, value string) *Container {
	c.Properties = append(c.Properties, Property{Name: name, Value: value})
	return c
}

// Element renders the container subtree as self-describing XML.
func (c *Container) Element() *xmlutil.Element {
	el := xmlutil.New("container").SetAttr("name", c.Name).SetAttr("type", c.Type)
	for _, p := range c.Properties {
		el.Add(xmlutil.NewText("property", p.Value).SetAttr("name", p.Name))
	}
	for _, child := range c.Children() {
		el.Add(child.Element())
	}
	return el
}

// containerFromElement parses a rendered container subtree.
func containerFromElement(el *xmlutil.Element) (*Container, error) {
	if el.Name != "container" {
		return nil, fmt.Errorf("xmlregistry: element %q is not container", el.Name)
	}
	c := newContainer(el.AttrDefault("name", ""), el.AttrDefault("type", ""))
	for _, p := range el.ChildrenNamed("property") {
		c.SetProp(p.AttrDefault("name", ""), p.Text)
	}
	for _, childEl := range el.ChildrenNamed("container") {
		child, err := containerFromElement(childEl)
		if err != nil {
			return nil, err
		}
		c.children[child.Name] = child
		c.order = append(c.order, child.Name)
	}
	return c, nil
}

// Registry is the container hierarchy with concurrency-safe access.
type Registry struct {
	mu   sync.RWMutex
	root *Container
}

// NewRegistry returns a registry with an empty root container.
func NewRegistry() *Registry {
	return &Registry{root: newContainer("", "root")}
}

// Create makes (or returns) the container at the slash-separated path,
// setting its type. Intermediate containers are created with type
// "container". Returns an error when the path exists with a conflicting
// type.
func (r *Registry) Create(path, typ string) (*Container, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := r.root
	for i, seg := range segs {
		next := cur.children[seg]
		if next == nil {
			t := "container"
			if i == len(segs)-1 {
				t = typ
			}
			next = newContainer(seg, t)
			cur.children[seg] = next
			cur.order = append(cur.order, seg)
		} else if i == len(segs)-1 && next.Type != typ {
			return nil, fmt.Errorf("xmlregistry: %s exists with type %q, requested %q", path, next.Type, typ)
		}
		cur = next
	}
	return cur, nil
}

// Put replaces the properties of the container at path, creating it (with
// the given type) if needed.
func (r *Registry) Put(path, typ string, props []Property) error {
	c, err := r.Create(path, typ)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Properties = append([]Property(nil), props...)
	return nil
}

// Get returns a deep copy of the container at path.
func (r *Registry) Get(path string) (*Container, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, err := r.lookup(path)
	if err != nil {
		return nil, err
	}
	return copyContainer(c), nil
}

// Delete removes the container at path and its subtree.
func (r *Registry) Delete(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	parentSegs, leaf := segs[:len(segs)-1], segs[len(segs)-1]
	cur := r.root
	for _, seg := range parentSegs {
		cur = cur.children[seg]
		if cur == nil {
			return fmt.Errorf("xmlregistry: no container at %q", path)
		}
	}
	if _, ok := cur.children[leaf]; !ok {
		return fmt.Errorf("xmlregistry: no container at %q", path)
	}
	delete(cur.children, leaf)
	for i, n := range cur.order {
		if n == leaf {
			cur.order = append(cur.order[:i], cur.order[i+1:]...)
			break
		}
	}
	return nil
}

func (r *Registry) lookup(path string) (*Container, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := r.root
	for _, seg := range segs {
		cur = cur.children[seg]
		if cur == nil {
			return nil, fmt.Errorf("xmlregistry: no container at %q", path)
		}
	}
	return cur, nil
}

func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, fmt.Errorf("xmlregistry: empty path")
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("xmlregistry: empty path segment in %q", path)
		}
	}
	return segs, nil
}

func copyContainer(c *Container) *Container {
	cp := newContainer(c.Name, c.Type)
	cp.Properties = append([]Property(nil), c.Properties...)
	for _, name := range c.order {
		child := copyContainer(c.children[name])
		cp.children[name] = child
		cp.order = append(cp.order, name)
	}
	return cp
}

// Query describes a structured search over the hierarchy. All specified
// constraints must hold; an empty query matches every container.
type Query struct {
	// Type restricts matches to containers of this type.
	Type string
	// HasProp requires a property with this name (any value).
	HasProp string
	// PropEquals requires property name=value pairs to match exactly
	// (value among the container's values for that property).
	PropEquals []Property
	// Under restricts the search to the subtree at this path.
	Under string
}

// Match is one query result: the container and its path.
type Match struct {
	// Path is the slash-separated path of the matched container.
	Path string
	// Container is a deep copy of the match.
	Container *Container
}

// Find runs a structured query and returns matches sorted by path.
func (r *Registry) Find(q Query) ([]Match, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	start := r.root
	prefix := ""
	if q.Under != "" {
		c, err := r.lookup(q.Under)
		if err != nil {
			return nil, err
		}
		start = c
		prefix = strings.Trim(q.Under, "/")
	}
	var out []Match
	var walk func(c *Container, path string)
	walk = func(c *Container, path string) {
		if matches(c, q) && c != r.root {
			out = append(out, Match{Path: path, Container: copyContainer(c)})
		}
		for _, name := range c.order {
			child := c.children[name]
			childPath := name
			if path != "" {
				childPath = path + "/" + name
			}
			walk(child, childPath)
		}
	}
	walk(start, prefix)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func matches(c *Container, q Query) bool {
	if q.Type != "" && c.Type != q.Type {
		return false
	}
	if q.HasProp != "" {
		if _, ok := c.Prop(q.HasProp); !ok {
			return false
		}
	}
	for _, want := range q.PropEquals {
		found := false
		for _, v := range c.PropAll(want.Name) {
			if v == want.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Export renders the whole hierarchy as one self-describing XML document.
func (r *Registry) Export() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.root.Element().Render()
}

// Import replaces the hierarchy from an exported document.
func (r *Registry) Import(doc string) error {
	el, err := xmlutil.ParseString(doc)
	if err != nil {
		return fmt.Errorf("xmlregistry: %w", err)
	}
	root, err := containerFromElement(el)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.root = root
	return nil
}

// --- SOAP service wrapper -------------------------------------------------

// ServiceNS is the namespace of the registry's SOAP interface.
const ServiceNS = "urn:gce:xmlregistry"

// def is the declarative operation table of the registry service.
func def(r *Registry) *rpc.Def {
	fail := func(code, format string, a ...interface{}) error {
		return soap.NewPortalError("XMLRegistry", code, format, a...)
	}
	return &rpc.Def{
		Name: "XMLRegistry",
		NS:   ServiceNS,
		Doc:  "Recursive self-describing XML container hierarchy for service metadata.",
		Ops: []rpc.Op{
			{
				Name: "put",
				In:   []wsdl.Param{rpc.Str("path"), rpc.Str("type"), rpc.XML("properties")},
				Out:  []wsdl.Param{rpc.Bool("ok")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					err := r.Put(in.Str("path"), in.Str("type"), propsFromElement(in.XML("properties")))
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name: "get",
				In:   []wsdl.Param{rpc.Str("path")},
				Out:  []wsdl.Param{rpc.XML("container")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					c, err := r.Get(in.Str("path"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(c.Element()), nil
				},
			},
			{
				Name: "delete",
				In:   []wsdl.Param{rpc.Str("path")},
				Out:  []wsdl.Param{rpc.Bool("ok")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					if err := r.Delete(in.Str("path")); err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(true), nil
				},
			},
			{
				Name: "find",
				In:   []wsdl.Param{rpc.XML("query")},
				Out:  []wsdl.Param{rpc.XML("matches")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					qEl := in.XML("query")
					if qEl == nil {
						return nil, fail(soap.ErrCodeBadRequest, "missing query")
					}
					matches, err := r.Find(queryFromElement(qEl))
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					list := xmlutil.New("matches")
					for _, m := range matches {
						item := xmlutil.New("match").SetAttr("path", m.Path)
						item.Add(m.Container.Element())
						list.Add(item)
					}
					return rpc.Ret(list), nil
				},
			},
		},
	}
}

// Contract returns the WSDL interface of the registry service.
func Contract() *wsdl.Interface {
	return def(nil).Interface()
}

// propsElement renders properties for the wire.
func propsElement(props []Property) *xmlutil.Element {
	el := xmlutil.New("properties")
	for _, p := range props {
		el.Add(xmlutil.NewText("property", p.Value).SetAttr("name", p.Name))
	}
	return el
}

func propsFromElement(el *xmlutil.Element) []Property {
	if el == nil {
		return nil
	}
	var out []Property
	for _, p := range el.ChildrenNamed("property") {
		out = append(out, Property{Name: p.AttrDefault("name", ""), Value: p.Text})
	}
	return out
}

// queryElement renders a Query for the wire.
func queryElement(q Query) *xmlutil.Element {
	el := xmlutil.New("query")
	if q.Type != "" {
		el.AddText("type", q.Type)
	}
	if q.HasProp != "" {
		el.AddText("hasProp", q.HasProp)
	}
	if q.Under != "" {
		el.AddText("under", q.Under)
	}
	for _, p := range q.PropEquals {
		el.Add(xmlutil.NewText("propEquals", p.Value).SetAttr("name", p.Name))
	}
	return el
}

func queryFromElement(el *xmlutil.Element) Query {
	q := Query{
		Type:    el.ChildText("type"),
		HasProp: el.ChildText("hasProp"),
		Under:   el.ChildText("under"),
	}
	for _, p := range el.ChildrenNamed("propEquals") {
		q.PropEquals = append(q.PropEquals, Property{Name: p.AttrDefault("name", ""), Value: p.Text})
	}
	return q
}

// NewService wraps a Registry as a deployable core.Service built from
// the declarative operation table.
func NewService(r *Registry) *core.Service {
	return def(r).MustBuild()
}

// Client is a typed proxy to a remote XMLRegistry service.
type Client struct {
	c *core.Client
}

// NewClient binds a client to the registry endpoint.
func NewClient(t soap.Transport, endpoint string) *Client {
	return &Client{c: core.NewClient(t, endpoint, Contract())}
}

// Put creates or updates a container.
func (cl *Client) Put(path, typ string, props []Property) error {
	_, err := cl.c.Call("put",
		soap.Str("path", path), soap.Str("type", typ), soap.XMLDoc("properties", propsElement(props)))
	return err
}

// Get fetches a container subtree.
func (cl *Client) Get(path string) (*Container, error) {
	doc, err := cl.c.CallXMLCopy("get", soap.Str("path", path))
	if err != nil {
		return nil, err
	}
	return containerFromElement(doc)
}

// Delete removes a container subtree.
func (cl *Client) Delete(path string) error {
	_, err := cl.c.Call("delete", soap.Str("path", path))
	return err
}

// Find runs a structured query remotely.
func (cl *Client) Find(q Query) ([]Match, error) {
	doc, err := cl.c.CallXMLCopy("find", soap.XMLDoc("query", queryElement(q)))
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, m := range doc.ChildrenNamed("match") {
		if len(m.Children) == 0 {
			continue
		}
		c, err := containerFromElement(m.Child("container"))
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Path: m.AttrDefault("path", ""), Container: c})
	}
	return out, nil
}
