package xmlregistry

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/soap"
)

func seed(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Put("portals/iu/bsg", "service", []Property{
		{Name: "interface", Value: "gce:BatchScriptGenerator"},
		{Name: "endpoint", Value: "http://gateway.iu.edu/soap/bsg"},
		{Name: "supportedScheduler", Value: "PBS"},
		{Name: "supportedScheduler", Value: "GRD"},
	}))
	must(r.Put("portals/sdsc/bsg", "service", []Property{
		{Name: "interface", Value: "gce:BatchScriptGenerator"},
		{Name: "endpoint", Value: "http://hotpage.sdsc.edu/soap/bsg"},
		{Name: "supportedScheduler", Value: "LSF"},
		{Name: "supportedScheduler", Value: "NQS"},
	}))
	must(r.Put("portals/iu/notes", "document", []Property{
		{Name: "text", Value: "users migrating away from PBS"},
	}))
	return r
}

func TestCreateAndGet(t *testing.T) {
	r := seed(t)
	c, err := r.Get("portals/iu/bsg")
	if err != nil {
		t.Fatal(err)
	}
	if c.Type != "service" {
		t.Errorf("type = %q", c.Type)
	}
	if v, _ := c.Prop("endpoint"); v != "http://gateway.iu.edu/soap/bsg" {
		t.Errorf("endpoint = %q", v)
	}
	if scheds := c.PropAll("supportedScheduler"); len(scheds) != 2 || scheds[1] != "GRD" {
		t.Errorf("schedulers = %v", scheds)
	}
	// Intermediate containers exist with generic type.
	mid, err := r.Get("portals/iu")
	if err != nil {
		t.Fatal(err)
	}
	if mid.Type != "container" {
		t.Errorf("intermediate type = %q", mid.Type)
	}
	if len(mid.Children()) != 2 {
		t.Errorf("iu children = %d", len(mid.Children()))
	}
}

func TestPathErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("", "x"); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := r.Create("a//b", "x"); err == nil {
		t.Error("empty segment accepted")
	}
	if _, err := r.Get("missing/path"); err == nil {
		t.Error("missing path returned")
	}
	if err := r.Delete("missing"); err == nil {
		t.Error("delete of missing path accepted")
	}
}

func TestTypeConflict(t *testing.T) {
	r := seed(t)
	if _, err := r.Create("portals/iu/bsg", "document"); err == nil {
		t.Error("type conflict accepted")
	}
	if _, err := r.Create("portals/iu/bsg", "service"); err != nil {
		t.Errorf("same-type create should be idempotent: %v", err)
	}
}

func TestDeleteSubtree(t *testing.T) {
	r := seed(t)
	if err := r.Delete("portals/iu"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("portals/iu/bsg"); err == nil {
		t.Error("subtree survived delete")
	}
	matches, err := r.Find(Query{Type: "service"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Path != "portals/sdsc/bsg" {
		t.Errorf("matches after delete = %v", matches)
	}
}

// TestTypedQueryPrecision is the core of the S3.4 discovery experiment: a
// typed query for NQS support returns exactly the SDSC service and is not
// fooled by the notes document that merely mentions PBS.
func TestTypedQueryPrecision(t *testing.T) {
	r := seed(t)
	matches, err := r.Find(Query{
		Type:       "service",
		PropEquals: []Property{{Name: "supportedScheduler", Value: "NQS"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Path != "portals/sdsc/bsg" {
		t.Fatalf("NQS matches = %v", matches)
	}
	// PBS: typed query excludes the mention-only document.
	matches, err = r.Find(Query{
		Type:       "service",
		PropEquals: []Property{{Name: "supportedScheduler", Value: "PBS"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Path != "portals/iu/bsg" {
		t.Fatalf("PBS matches = %v", matches)
	}
}

func TestQueryUnderAndHasProp(t *testing.T) {
	r := seed(t)
	matches, err := r.Find(Query{Under: "portals/iu", Type: "service"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Path != "portals/iu/bsg" {
		t.Errorf("under iu = %v", matches)
	}
	matches, err = r.Find(Query{HasProp: "endpoint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Errorf("hasProp endpoint = %d", len(matches))
	}
	if _, err := r.Find(Query{Under: "nowhere"}); err == nil {
		t.Error("query under missing path accepted")
	}
}

func TestEmptyQueryMatchesAll(t *testing.T) {
	r := seed(t)
	matches, err := r.Find(Query{})
	if err != nil {
		t.Fatal(err)
	}
	// portals, portals/iu, portals/sdsc, 3 leaves = 6 containers.
	if len(matches) != 6 {
		t.Errorf("all containers = %d, want 6", len(matches))
	}
	// Sorted by path.
	for i := 1; i < len(matches); i++ {
		if matches[i-1].Path > matches[i].Path {
			t.Errorf("matches unsorted: %q > %q", matches[i-1].Path, matches[i].Path)
		}
	}
}

func TestExportImport(t *testing.T) {
	r := seed(t)
	doc := r.Export()
	if !strings.Contains(doc, "supportedScheduler") {
		t.Fatalf("export missing properties:\n%s", doc)
	}
	r2 := NewRegistry()
	if err := r2.Import(doc); err != nil {
		t.Fatal(err)
	}
	c, err := r2.Get("portals/sdsc/bsg")
	if err != nil {
		t.Fatal(err)
	}
	if scheds := c.PropAll("supportedScheduler"); len(scheds) != 2 || scheds[0] != "LSF" {
		t.Errorf("imported schedulers = %v", scheds)
	}
	if err := r2.Import("garbage"); err == nil {
		t.Error("garbage import accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := seed(t)
	c, _ := r.Get("portals/iu/bsg")
	c.SetProp("tampered", "yes")
	c2, _ := r.Get("portals/iu/bsg")
	if _, ok := c2.Prop("tampered"); ok {
		t.Error("Get returned aliased container")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Put("a/b/c"+string(rune('0'+i)), "service", []Property{{Name: "n", Value: "v"}})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = r.Find(Query{Type: "service"})
			}
		}()
	}
	wg.Wait()
	matches, _ := r.Find(Query{Type: "service"})
	if len(matches) != 8 {
		t.Errorf("services = %d, want 8", len(matches))
	}
}

func TestSOAPServiceRoundTrip(t *testing.T) {
	r := NewRegistry()
	p := core.NewProvider("reg-ssp", "loopback://reg")
	p.MustRegister(NewService(r))
	cl := NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://reg/XMLRegistry")

	err := cl.Put("portals/iu/bsg", "service", []Property{
		{Name: "supportedScheduler", Value: "PBS"},
		{Name: "endpoint", Value: "http://iu/bsg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.Get("portals/iu/bsg")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Prop("endpoint"); v != "http://iu/bsg" {
		t.Errorf("endpoint = %q", v)
	}
	matches, err := cl.Find(Query{Type: "service", PropEquals: []Property{{Name: "supportedScheduler", Value: "PBS"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Path != "portals/iu/bsg" {
		t.Errorf("matches = %v", matches)
	}
	if err := cl.Delete("portals/iu/bsg"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("portals/iu/bsg"); soap.AsPortalError(err) == nil {
		t.Errorf("expected portal error after delete, got %v", err)
	}
	if err := cl.Delete("portals/iu/bsg"); err == nil {
		t.Error("double delete accepted")
	}
}
