package xmlregistry

import (
	"encoding/json"
	"fmt"

	"repro/internal/persist"
)

// WAL record ops. The snapshot dump is a single opImport record holding the
// Export document: the Export/Import pair already round-trips the whole
// hierarchy (names, types, properties, child order), so the registry's
// snapshot format is its own interchange format.
const (
	opCreate = "xreg.create"
	opPut    = "xreg.put"
	opDelete = "xreg.delete"
	opImport = "xreg.import"
)

// record is the union WAL record for registry mutations.
type record struct {
	Path  string     `json:"path,omitempty"`
	Type  string     `json:"type,omitempty"`
	Props []Property `json:"props,omitempty"`
	Doc   string     `json:"doc,omitempty"`
}

// Persist replays st into the registry (which should be empty) and installs
// it as the registry's durability log: from here on every Create/Put/
// Delete/Import is acknowledged only after its record is fsynced. Call
// once, before the registry starts serving.
func (r *Registry) Persist(st persist.Store) error {
	if err := st.Replay(r.apply); err != nil {
		return err
	}
	r.persist = persist.Bind(st, r.dump)
	return nil
}

// ClosePersist flushes and closes the attached store, if any. The registry
// must have stopped serving writes.
func (r *Registry) ClosePersist() error {
	return r.persist.Close()
}

// CompactPersist forces one synchronous compaction (tests, operator hooks).
// Routine compaction is automatic and needs no calls.
func (r *Registry) CompactPersist() error {
	return r.persist.Compact()
}

// apply is the replay function. It reuses the public mutators (the binding
// is not installed yet, so nothing is re-logged) and ignores their errors:
// only successful mutations are ever logged, so an error here is a benign
// snapshot-overlap duplicate — e.g. a "create" already folded into the
// snapshot, or a "delete" of a path a replayed Import swapped away.
func (r *Registry) apply(op string, data []byte) error {
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("xmlregistry: replay %s: %w", op, err)
	}
	switch op {
	case opCreate:
		_, _ = r.Create(rec.Path, rec.Type)
	case opPut:
		_ = r.Put(rec.Path, rec.Type, rec.Props)
	case opDelete:
		_ = r.Delete(rec.Path)
	case opImport:
		_ = r.Import(rec.Doc)
	default:
		// Unknown op from a newer writer: skip rather than refuse to boot.
	}
	return nil
}

// dump re-emits current state for a compacting snapshot as one Export
// document. Export is weakly consistent under concurrent writers; records
// for those writes land in the post-rotation segment and are replayed over
// the snapshot, which is what makes the weak walk sufficient.
func (r *Registry) dump(add func(op string, data []byte) error) error {
	return persist.AddJSON(add, opImport, record{Doc: r.Export()})
}
