package xmlregistry

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/wal"
)

func openPersistent(t *testing.T, dir string) *Registry {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	r := NewRegistry()
	if err := r.Persist(l); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	return r
}

// TestHierarchyRoundTrip restarts the registry across every mutation kind —
// create, put, delete, a compacting snapshot, and post-snapshot tail writes —
// and asserts the recovered hierarchy renders identically.
func TestHierarchyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := openPersistent(t, dir)
	if _, err := r1.Create("/services/batch", "serviceGroup"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Put("/services/batch/iu", "service", []Property{
		{Name: "supportedScheduler", Value: "PBS"},
		{Name: "supportedScheduler", Value: "LoadLeveler"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Put("/services/batch/doomed", "service", nil); err != nil {
		t.Fatal(err)
	}
	if err := r1.Delete("/services/batch/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := r1.CompactPersist(); err != nil {
		t.Fatal(err)
	}
	// Tail writes after the snapshot: only in the log.
	if err := r1.Put("/services/batch/sdsc", "service", []Property{
		{Name: "supportedScheduler", Value: "NQS"},
	}); err != nil {
		t.Fatal(err)
	}
	want := r1.Export()
	if err := r1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	r2 := openPersistent(t, dir)
	defer r2.ClosePersist()
	if got := r2.Export(); got != want {
		t.Fatalf("recovered hierarchy differs:\n got %s\nwant %s", got, want)
	}
	if _, err := r2.Get("/services/batch/doomed"); err == nil {
		t.Fatal("deleted container resurrected by recovery")
	}
	c, err := r2.Get("/services/batch/sdsc")
	if err != nil {
		t.Fatalf("post-snapshot container lost: %v", err)
	}
	if v, _ := c.Prop("supportedScheduler"); v != "NQS" {
		t.Fatalf("recovered property = %q, want NQS", v)
	}
}

// TestExportConcurrentDelete pins the delete-during-Export fix: top-level
// containers deleted between Export's ordered-list walk and its shard load
// must be skipped — never rendered empty, never a panic — and the exported
// document must stay parseable (Import accepts it). Run with -race.
func TestExportConcurrentDelete(t *testing.T) {
	r := NewRegistry()
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := r.Create(fmt.Sprintf("/top-%02d", i), "serviceGroup"); err != nil {
			t.Fatal(err)
		}
		if err := r.Put(fmt.Sprintf("/top-%02d/leaf", i), "service", []Property{{Name: "n", Value: "1"}}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // deleter: tears down every other top-level subtree
		defer wg.Done()
		for i := 0; i < n; i += 2 {
			if err := r.Delete(fmt.Sprintf("/top-%02d", i)); err != nil {
				t.Errorf("Delete: %v", err)
			}
		}
	}()
	docs := make([]string, 0, 64)
	go func() { // exporter: renders continuously while deletes land
		defer wg.Done()
		for i := 0; i < 64; i++ {
			docs = append(docs, r.Export())
		}
	}()
	wg.Wait()
	for _, doc := range docs {
		fresh := NewRegistry()
		if err := fresh.Import(doc); err != nil {
			t.Fatalf("Export emitted an unimportable document: %v\n%s", err, doc)
		}
	}
	// After the dust settles only the odd-numbered subtrees remain.
	final := NewRegistry()
	if err := final.Import(r.Export()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := final.Get(fmt.Sprintf("/top-%02d/leaf", i))
		if i%2 == 0 && err == nil {
			t.Fatalf("deleted subtree top-%02d still exported", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving subtree top-%02d lost: %v", i, err)
		}
	}
}
