package xmlregistry

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentMixedWorkload drives puts, gets, deletes,
// structured queries, and exports against one registry at once, with each
// worker owning a top-level container (its own shard) while queries and
// exports sweep across all of them. Run under -race this pins the
// per-shard locking; the functional assertions are that reads are never
// torn and each worker's final subtree matches what it last wrote.
func TestRegistryConcurrentMixedWorkload(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 120
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			top := fmt.Sprintf("group-%d", g)
			for i := 0; i < iters; i++ {
				path := fmt.Sprintf("%s/svc-%d", top, i%10)
				switch i % 5 {
				case 0, 1:
					props := []Property{
						{Name: "supportedScheduler", Value: "PBS"},
						{Name: "rev", Value: fmt.Sprintf("%d", i)},
					}
					if err := r.Put(path, "service", props); err != nil {
						errs <- err
						return
					}
				case 2:
					c, err := r.Get(path)
					if err != nil {
						continue // not created yet or deleted — fine
					}
					// A visible container must carry both properties of one
					// Put generation, never a mix-in-progress.
					if _, ok := c.Prop("supportedScheduler"); !ok || len(c.Properties) != 2 {
						errs <- fmt.Errorf("torn read at %s: %+v", path, c.Properties)
						return
					}
				case 3:
					matches, err := r.Find(Query{Type: "service", PropEquals: []Property{{Name: "supportedScheduler", Value: "PBS"}}})
					if err != nil {
						errs <- err
						return
					}
					for _, m := range matches {
						if m.Container == nil || m.Path == "" {
							errs <- fmt.Errorf("torn match: %+v", m)
							return
						}
					}
				default:
					if i%3 == 0 {
						_ = r.Delete(path) // may or may not exist
					} else {
						_ = r.Export()
					}
				}
			}
			// Settle this worker's subtree into a known state for the final
			// cross-worker check.
			if err := r.Put(top+"/final", "service", []Property{{Name: "done", Value: "yes"}}); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		c, err := r.Get(fmt.Sprintf("group-%d/final", g))
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := c.Prop("done"); v != "yes" {
			t.Fatalf("group-%d final container = %+v", g, c.Properties)
		}
	}
	// Every worker's containers must appear in a quiesced Find sweep.
	matches, err := r.Find(Query{HasProp: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != workers {
		t.Fatalf("final sweep found %d containers, want %d", len(matches), workers)
	}
}
