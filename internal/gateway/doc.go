// Package gateway is the federated front door over a fleet of portal
// providers. Where rpc.Server hosts services on one node, the gateway
// makes several such nodes look like a single portal — the paper's
// interoperability promise carried one level up, from services that
// compose across groups to whole deployments that compose across sites.
// It is built entirely from the published contracts: the gateway learns
// what a backend offers the same way any client would, by reading its
// WS-Inspection document and the WSDL it points at.
//
// # Federation by inspection
//
// Mount crawls each backend's /inspection.wsil, fetches every advertised
// WSDL, and mounts the service on the gateway under the path it occupies
// on the backend. A service advertised by several backends becomes one
// replicated route; each additional replica's interface is checked with
// wsdl.CheckCompatible against the first-mounted contract and rejected on
// divergence, enforcing the agreed-interface discipline at federation
// time rather than at first failing call. The gateway republishes an
// aggregated inspection document (one entry per federated service,
// pointing at the gateway's own WSDL republication, plus links to every
// backend) so discovery composes transitively.
//
// # Health-aware consistent-hash routing
//
// Each request routes by consistent hashing: the request path and body
// hash to a point on a virtual-node ring over the mounted backends, and
// the request goes to the first replica clockwise whose circuit breaker
// admits it. The same inquiry therefore lands on the same replica —
// keeping that node's rpc.ResponseCache warm — while a node loss remaps
// only the keys that hashed into its arcs. Health comes from two feeds
// into one resilience.BreakerSet: a background /healthz prober
// (StartHealth) and the live outcome of every forwarded call. An open
// circuit removes the node from the healthy set; after the open window a
// half-open probe readmits it.
//
// # Relay semantics
//
// The gateway forwards request bytes verbatim and relays response bytes,
// HTTP status, and Retry-After unchanged — a fault raised by a backend
// arrives at the caller exactly as the backend wrote it, so end-to-end
// byte-identity with a direct connection holds (the golden suite and the
// chaos tests pin this). Failover retries are attempted only for
// operations the contract marks idempotent: a transport error on any
// other operation may mean an executed write, so the gateway returns a
// typed Unavailable fault with Retry-After and leaves the retry decision
// with the caller instead of risking a duplicate.
//
// # Write-through cache invalidation
//
// A successful non-idempotent operation invalidates the service's
// response caches fleet-wide: the handling backend flushes its own cache
// (its cache middleware already does this), and the gateway posts the
// authenticated __flush control op (rpc.FlushPath) to every other
// replica before relaying the response, so a read-after-write through
// the gateway never observes a stale cached answer.
package gateway
