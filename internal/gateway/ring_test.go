package gateway

import (
	"fmt"
	"testing"
)

// TestRingSequenceCoversAllNodes: every key's failover sequence visits
// each mounted node exactly once, primary first.
func TestRingSequenceCoversAllNodes(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := buildRing(nodes, 0)
	for i := 0; i < 50; i++ {
		key := hashBytes(fnvOffset64, []byte(fmt.Sprintf("key-%d", i)))
		seq := r.sequence(key, nil)
		if len(seq) != len(nodes) {
			t.Fatalf("key %d: sequence = %v", i, seq)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] || !containsNode(nodes, n) {
				t.Fatalf("key %d: bad sequence %v", i, seq)
			}
			seen[n] = true
		}
	}
}

// TestRingDeterministic: two rings built from the same nodes route every
// key identically — routing must not depend on construction order.
func TestRingDeterministic(t *testing.T) {
	r1 := buildRing([]string{"http://a", "http://b", "http://c"}, 16)
	r2 := buildRing([]string{"http://c", "http://a", "http://b"}, 16)
	for i := 0; i < 100; i++ {
		key := hashBytes(fnvOffset64, []byte(fmt.Sprintf("key-%d", i)))
		if got, want := r1.sequence(key, nil)[0], r2.sequence(key, nil)[0]; got != want {
			t.Fatalf("key %d: %q vs %q", i, got, want)
		}
	}
}

// TestRingStabilityOnNodeLoss pins the consistent-hashing property the
// response caches depend on: removing one node must remap only the keys
// that routed to it; every other key keeps its primary.
func TestRingStabilityOnNodeLoss(t *testing.T) {
	full := buildRing([]string{"http://a", "http://b", "http://c"}, 0)
	reduced := buildRing([]string{"http://a", "http://c"}, 0)
	moved := 0
	for i := 0; i < 500; i++ {
		key := hashBytes(fnvOffset64, []byte(fmt.Sprintf("key-%d", i)))
		before := full.sequence(key, nil)[0]
		after := reduced.sequence(key, nil)[0]
		if before == "http://b" {
			moved++
			continue // its keys must land somewhere else
		}
		if before != after {
			t.Fatalf("key %d moved %q -> %q though its node survived", i, before, after)
		}
	}
	if moved == 0 || moved == 500 {
		t.Fatalf("implausible key distribution: %d/500 on the lost node", moved)
	}
}

// TestRingFailoverSkipsLostNode: the failover sequence after the primary
// must also be stable, so retries of an idempotent op land on the same
// secondary a fresh reduced ring would pick.
func TestRingFailoverSkipsLostNode(t *testing.T) {
	full := buildRing([]string{"http://a", "http://b", "http://c"}, 0)
	reduced := buildRing([]string{"http://a", "http://c"}, 0)
	for i := 0; i < 200; i++ {
		key := hashBytes(fnvOffset64, []byte(fmt.Sprintf("key-%d", i)))
		seq := full.sequence(key, nil)
		// Drop the lost node from the full sequence: the first survivor
		// must be the reduced ring's primary.
		var firstSurvivor string
		for _, n := range seq {
			if n != "http://b" {
				firstSurvivor = n
				break
			}
		}
		if want := reduced.sequence(key, nil)[0]; firstSurvivor != want {
			t.Fatalf("key %d: failover picks %q, reduced ring says %q", i, firstSurvivor, want)
		}
	}
}

// TestRingEmpty: an empty ring yields an empty sequence, not a panic.
func TestRingEmpty(t *testing.T) {
	if seq := buildRing(nil, 0).sequence(42, nil); len(seq) != 0 {
		t.Fatalf("sequence = %v", seq)
	}
}
