package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/wsil"
	"repro/internal/xmlutil"
)

// Gateway is the federated portal front door: it mounts remote providers
// by consuming their published WSIL/WSDL, routes each request to a
// backend chosen by consistent hashing over the healthy node set, relays
// responses (faults and Retry-After included) byte-for-byte, aggregates
// the fleet's WS-Inspection documents, and propagates cache invalidation
// for forwarded writes. See doc.go for the architecture.
type Gateway struct {
	// Name identifies the gateway in its own faults and logs.
	Name string

	// Fetch retrieves discovery and health documents (WSIL, WSDL,
	// /healthz) from a backend URL. HTTP GET through the client pool by
	// default; tests override it to crawl in-process servers.
	Fetch func(url string) (string, error)
	// Forward posts one serialised request envelope to a backend.
	// HTTPForwarder over the client pool by default.
	Forward Forwarder
	// Flush posts the __flush cache-invalidation control op to one
	// backend. HTTP POST with the token header by default.
	Flush func(backend, serviceNS string) error
	// FlushToken authenticates __flush ops on the backends; empty
	// disables cross-node cache invalidation.
	FlushToken string
	// Breakers holds one circuit per backend, fed by both the health
	// prober and live forwarding outcomes; an open circuit removes the
	// backend from the healthy ring until its open window elapses.
	Breakers *resilience.BreakerSet
	// Replicas is the virtual-node count per backend on the ring
	// (defaultVnodes when 0).
	Replicas int

	pool  *soap.ClientPool
	stats *rpc.Stats
	mux   *http.ServeMux

	mu       sync.Mutex
	baseURL  string
	backends []string
	routes   map[string]*route
	ring     *ring

	healthStop chan struct{}
	healthDone chan struct{}
}

// route is one federated service: the path it occupies on the gateway
// (identical to its path on every backend), the agreed contract, and the
// replica set serving it.
type route struct {
	path     string
	svcName  string
	abstract string
	contract *wsdl.Interface
	backends []string
}

// New creates a gateway. baseURL is the externally visible URL prefix
// used in the aggregated WSIL and re-published WSDL documents.
func New(name, baseURL string) *Gateway {
	g := &Gateway{
		Name:    name,
		baseURL: strings.TrimSuffix(baseURL, "/"),
		pool:    &soap.ClientPool{Timeout: 30 * time.Second},
		stats:   rpc.NewStats(),
		mux:     http.NewServeMux(),
		routes:  map[string]*route{},
		ring:    buildRing(nil, 0),
		Breakers: &resilience.BreakerSet{Config: resilience.BreakerConfig{
			FailureThreshold: 3,
			OpenFor:          2 * time.Second,
		}},
	}
	g.Fetch = g.fetchHTTP
	g.Forward = &HTTPForwarder{Pool: g.pool}
	g.Flush = g.flushHTTP
	g.stats.RegisterBreakers("backends", g.Breakers)
	g.mux.Handle("/healthz", g.stats)
	g.mux.HandleFunc(wsil.WellKnownPath, g.serveWSIL)
	return g
}

// Stats returns the gateway's request stats collector (served at
// /healthz, with the backend circuits registered under "backends").
func (g *Gateway) Stats() *rpc.Stats { return g.stats }

// Handler returns the gateway's complete HTTP surface: every mounted
// service path, the aggregated WS-Inspection document, and /healthz.
func (g *Gateway) Handler() http.Handler { return g.mux }

// ServeHTTP makes the gateway itself mountable.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Backends returns the mounted backend base URLs in mount order.
func (g *Gateway) Backends() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.backends...)
}

// Mount federates the given backend base URLs: each backend's
// WS-Inspection document is fetched, every advertised service's WSDL is
// retrieved and parsed, and the service is mounted on the gateway under
// the same path it occupies on the backend. A service advertised by
// several backends becomes one replicated route; a replica whose contract
// diverges from the first-mounted interface is rejected — the paper's
// agreed-interface discipline, enforced at federation time.
func (g *Gateway) Mount(backends ...string) error {
	for _, b := range backends {
		if err := g.mountBackend(strings.TrimSuffix(b, "/")); err != nil {
			return err
		}
	}
	return nil
}

func (g *Gateway) mountBackend(base string) error {
	body, err := g.Fetch(base + wsil.WellKnownPath)
	if err != nil {
		return fmt.Errorf("gateway: inspect %s: %w", base, err)
	}
	doc, err := wsil.Parse(body)
	if err != nil {
		return fmt.Errorf("gateway: inspect %s: %w", base, err)
	}
	for _, entry := range doc.Services {
		loc := entry.WSDLLocation
		if !strings.HasPrefix(loc, base+"/") || !strings.HasSuffix(loc, "?wsdl") {
			return fmt.Errorf("gateway: %s advertises WSDL at %q, outside its own base", base, loc)
		}
		path := strings.TrimSuffix(strings.TrimPrefix(loc, base), "?wsdl")
		wsdlBody, err := g.Fetch(loc)
		if err != nil {
			return fmt.Errorf("gateway: fetch WSDL %s: %w", loc, err)
		}
		svc, err := wsdl.Parse(wsdlBody)
		if err != nil {
			return fmt.Errorf("gateway: parse WSDL %s: %w", loc, err)
		}
		if err := g.addRoute(path, base, entry, svc); err != nil {
			return err
		}
	}
	g.mu.Lock()
	if !containsNode(g.backends, base) {
		g.backends = append(g.backends, base)
		g.ring = buildRing(g.backends, g.Replicas)
	}
	g.mu.Unlock()
	return nil
}

func (g *Gateway) addRoute(path, backend string, entry wsil.ServiceEntry, svc *wsdl.Service) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt, ok := g.routes[path]
	if !ok {
		rt = &route{
			path:     path,
			svcName:  svc.Name,
			abstract: entry.Abstract,
			contract: svc.Interface,
		}
		g.routes[path] = rt
		g.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			g.serveRoute(rt, w, r)
		})
	} else if problems := wsdl.CheckCompatible(rt.contract, svc.Interface); len(problems) > 0 {
		return fmt.Errorf("gateway: %s replica of %s diverges from the agreed interface: %s",
			backend, path, problems[0])
	}
	if !containsNode(rt.backends, backend) {
		rt.backends = append(rt.backends, backend)
	}
	return nil
}

// serveRoute is the front-door HTTP handler for one federated service.
func (g *Gateway) serveRoute(rt *route, w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			g.serveWSDL(rt, w)
			return
		}
		http.Error(w, "soap endpoint: POST required (append ?wsdl for the contract)", http.StatusMethodNotAllowed)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint: POST required", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > soap.MaxMessageBytes() {
		soap.WriteFault(w, soap.OversizeFault(), http.StatusRequestEntityTooLarge)
		return
	}
	body := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(body)
	if err := soap.ReadMessage(body, r.Body); err != nil {
		if errors.Is(err, soap.ErrMessageTooLarge) {
			soap.WriteFault(w, soap.OversizeFault(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "gateway: read error", http.StatusBadRequest)
		return
	}
	g.forward(rt, w, r, body.Bytes())
}

// forward routes one request body to the healthy replica set. Idempotent
// operations walk the ring's failover sequence; everything else gets
// exactly one attempt — a lost response may mean an executed write, and
// replaying it on another replica could duplicate the effect — and then a
// typed Unavailable fault that leaves the retry decision with the caller.
func (g *Gateway) forward(rt *route, w http.ResponseWriter, r *http.Request, body []byte) {
	start := time.Now()
	ns, op, _ := soap.SniffBody(body)
	opKey := ns + "#" + op
	idempotent := false
	if o := rt.contract.Operation(op); o != nil && ns == rt.contract.TargetNS {
		idempotent = o.Idempotent
	}

	// The routing key mixes the path with the request bytes, so repeats
	// of the same inquiry land on the same replica and hit its cache.
	key := hashBytes(hashBytes(fnvOffset64, []byte(rt.path)), body)
	g.mu.Lock()
	seq := g.ring.sequence(key, make([]string, 0, len(g.backends)))
	replicas := append([]string(nil), rt.backends...)
	g.mu.Unlock()

	resp := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(resp)
	var lastErr error
	for _, node := range seq {
		if !containsNode(replicas, node) {
			continue // backend does not serve this service
		}
		br := g.Breakers.For(node)
		if br.Allow() != nil {
			continue // open circuit: out of the healthy set
		}
		resp.Reset()
		res, err := g.Forward.Forward(r.Context(), node, rt.path, opKey, body, resp)
		br.Record(err != nil)
		if err == nil {
			g.relay(w, res, resp.Bytes())
			if !idempotent && res.Status == http.StatusOK {
				g.invalidate(rt, node)
			}
			g.stats.Record(opKey, time.Since(start), nil)
			return
		}
		lastErr = err
		if !idempotent {
			break
		}
	}

	var pe *soap.PortalError
	if lastErr != nil {
		pe = soap.NewPortalError(g.Name, soap.ErrCodeUnavailable,
			"backend failed for %s: %v", opKey, lastErr)
	} else {
		pe = soap.NewPortalError(g.Name, soap.ErrCodeUnavailable,
			"no healthy backend serves %s", rt.path)
	}
	f := pe.Fault()
	f.RetryAfter = time.Second
	g.stats.Record(opKey, time.Since(start), pe)
	soap.WriteFault(w, f, 0)
}

// relay writes one backend response through unchanged. A failed or short
// write means the client disconnected mid-relay: the backend answered
// fine, so the failure is recorded in the relay.write_errors counter
// (visible at /healthz) and deliberately NOT fed to the backend's breaker
// — opening a circuit over a flaky client would punish a healthy backend.
func (g *Gateway) relay(w http.ResponseWriter, res ForwardResult, body []byte) {
	w.Header().Set("Content-Type", soap.ContentType)
	if res.RetryAfter != "" {
		w.Header().Set("Retry-After", res.RetryAfter)
	}
	status := res.Status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	if n, err := w.Write(body); err != nil || n < len(body) {
		g.stats.AddCounter("relay.write_errors", 1)
	}
}

// invalidate propagates a forwarded write through the fleet: the handling
// backend has already flushed its own response cache (its cache
// middleware does so on any successful non-cacheable op), and every other
// replica of the service receives the authenticated __flush control op so
// stale inquiry answers disappear fleet-wide. Flushes run concurrently
// but are awaited before the response returns, so a caller that issues a
// read-after-write through the gateway cannot observe a stale cache.
func (g *Gateway) invalidate(rt *route, handled string) {
	if g.FlushToken == "" || g.Flush == nil {
		return
	}
	g.mu.Lock()
	replicas := append([]string(nil), rt.backends...)
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range replicas {
		if b == handled {
			continue
		}
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			if err := g.Flush(b, rt.contract.TargetNS); err != nil {
				log.Printf("gateway %s: flush %s on %s: %v", g.Name, rt.contract.TargetNS, b, err)
			}
		}(b)
	}
	wg.Wait()
}

// serveWSIL publishes the aggregated WS-Inspection document: one entry
// per federated service pointing at the gateway's own WSDL republication,
// plus links to every backend's inspection document.
func (g *Gateway) serveWSIL(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	base := g.baseURL
	paths := make([]string, 0, len(g.routes))
	for p := range g.routes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	doc := &wsil.Document{}
	for _, p := range paths {
		rt := g.routes[p]
		doc.Services = append(doc.Services, wsil.ServiceEntry{
			Name:         rt.svcName,
			Abstract:     rt.abstract,
			WSDLLocation: base + rt.path + "?wsdl",
		})
	}
	for _, b := range g.backends {
		doc.Links = append(doc.Links, wsil.Link{Location: b + wsil.WellKnownPath})
	}
	g.mu.Unlock()
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	doc.AppendTo(buf)
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// serveWSDL republishes one federated service's contract with the
// gateway as the endpoint, so clients discovering through the gateway
// bind to the gateway.
func (g *Gateway) serveWSDL(rt *route, w http.ResponseWriter) {
	g.mu.Lock()
	base := g.baseURL
	g.mu.Unlock()
	svc := &wsdl.Service{Name: rt.svcName, Interface: rt.contract, Endpoint: base + rt.path}
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	svc.AppendTo(buf)
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// StartHealth begins polling every backend's /healthz at the given
// interval (2s when not positive), recording each probe on the backend's
// circuit: repeated failures open it — removing the node from the healthy
// ring — and a successful probe after the open window closes it again.
// Stop with Close.
func (g *Gateway) StartHealth(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	g.healthStop = make(chan struct{})
	g.healthDone = make(chan struct{})
	go g.healthLoop(interval)
}

func (g *Gateway) healthLoop(interval time.Duration) {
	defer close(g.healthDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		g.probeAll()
		select {
		case <-g.healthStop:
			return
		case <-t.C:
		}
	}
}

// probeAll probes every backend whose circuit admits an attempt. A node
// inside its open window is skipped — Allow would reject the probe anyway
// — and re-probed once the window elapses (half-open).
func (g *Gateway) probeAll() {
	for _, b := range g.Backends() {
		br := g.Breakers.For(b)
		if br.Allow() != nil {
			continue
		}
		_, err := g.Fetch(b + "/healthz")
		br.Record(err != nil)
	}
}

// Close stops the health prober and releases pooled connections.
func (g *Gateway) Close() {
	if g.healthStop != nil {
		close(g.healthStop)
		<-g.healthDone
		g.healthStop = nil
	}
	g.pool.CloseIdle()
}

// fetchHTTP is the production Fetch: a GET through the per-backend pool.
func (g *Gateway) fetchHTTP(u string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := g.pool.For(baseOf(u)).Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: HTTP %d", u, resp.StatusCode)
	}
	buf := &bytes.Buffer{}
	if err := soap.ReadMessage(buf, resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// flushHTTP is the production Flush: an authenticated POST to the
// backend's __flush control endpoint.
func (g *Gateway) flushHTTP(backend, serviceNS string) error {
	req, err := http.NewRequest(http.MethodPost,
		backend+rpc.FlushPath+"?ns="+url.QueryEscape(serviceNS), nil)
	if err != nil {
		return err
	}
	req.Header.Set(rpc.FlushTokenHeader, g.FlushToken)
	resp, err := g.pool.For(backend).Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("flush %s on %s: HTTP %d", serviceNS, backend, resp.StatusCode)
	}
	return nil
}

// baseOf reduces a URL to its scheme://host base, the client-pool key.
func baseOf(u string) string {
	parsed, err := url.Parse(u)
	if err != nil || parsed.Host == "" {
		return u
	}
	return parsed.Scheme + "://" + parsed.Host
}

// Loopback returns an in-process raw transport that drives requests
// through the gateway's complete HTTP surface (mux, route handler,
// forwarding) without TCP — the gateway-side mirror of
// rpc.Server.Transport, for tests and benchmarks.
func (g *Gateway) Loopback() soap.RawTransport {
	return &loopbackTransport{g: g}
}

type loopbackTransport struct {
	g *Gateway
}

func (t *loopbackTransport) RoundTrip(endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	return t.RoundTripCtx(context.Background(), endpoint, action, req)
}

func (t *loopbackTransport) RoundTripCtx(ctx context.Context, endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	if err := t.RoundTripRawCtx(ctx, endpoint, action, req, buf); err != nil {
		return nil, err
	}
	return soap.ParseEnvelopeBytes(buf.Bytes())
}

func (t *loopbackTransport) RoundTripRaw(endpoint, action string, req *soap.Envelope, resp *bytes.Buffer) error {
	return t.RoundTripRawCtx(context.Background(), endpoint, action, req, resp)
}

// RoundTripRawCtx serialises the request and drives it through the
// gateway mux with an in-memory response writer, keeping the HTTP status
// semantics of the wire path (only 200 and 500 carry envelopes).
func (t *loopbackTransport) RoundTripRawCtx(ctx context.Context, endpoint, action string, req *soap.Envelope, resp *bytes.Buffer) error {
	mark := resp.Len()
	buf := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(buf)
	req.AppendTo(buf)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("gateway: loopback request: %w", err)
	}
	hr.Header.Set("Content-Type", soap.ContentType)
	hr.Header.Set("SOAPAction", `"`+action+`"`)
	mw := &memResponse{header: http.Header{}, body: resp}
	t.g.mux.ServeHTTP(mw, hr)
	if mw.status == 0 {
		mw.status = http.StatusOK
	}
	if mw.status != http.StatusOK && mw.status != http.StatusInternalServerError {
		resp.Truncate(mark)
		return fmt.Errorf("gateway: endpoint %s returned HTTP %d", endpoint, mw.status)
	}
	return nil
}

// memResponse is the minimal in-memory http.ResponseWriter the loopback
// transport collects responses with.
type memResponse struct {
	header http.Header
	status int
	body   *bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.body.Write(p)
}
