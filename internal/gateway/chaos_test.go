package gateway_test

// Gateway chaos suite: two live backends, a seeded ChaosTransport tearing
// up one of them (then a kill switch taking it out entirely), and the
// gateway's invariants checked from the caller's seat:
//
//  1. idempotent requests always succeed while one backend is healthy,
//     with responses byte-identical to a direct connection,
//  2. non-idempotent writes are never duplicated — a lost response means
//     a typed fault, not a silent replay on another replica,
//  3. health-aware routing converges: a dead backend's circuit opens and
//     traffic flows to the survivor,
//  4. no goroutine leaks after Close.
//
// CI runs these under -race (chaos smoke step).

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batchscript"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/uddi"
)

// recorderFetch serves the gateway's discovery and health GETs straight
// from an in-process handler, gated by an optional kill switch.
func recorderFetch(backends map[string]http.Handler, dead map[string]*atomic.Bool) func(string) (string, error) {
	return func(u string) (string, error) {
		parsed, err := url.Parse(u)
		if err != nil {
			return "", err
		}
		base := parsed.Scheme + "://" + parsed.Host
		h, ok := backends[base]
		if !ok {
			return "", fmt.Errorf("no such backend %q", base)
		}
		if d := dead[base]; d != nil && d.Load() {
			return "", fmt.Errorf("GET %s: connection refused", u)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, u, nil))
		if rec.Code != http.StatusOK {
			return "", fmt.Errorf("GET %s: HTTP %d", u, rec.Code)
		}
		return rec.Body.String(), nil
	}
}

// routingForwarder picks a per-backend forwarder, so one backend's wire
// can burn while the other's stays clean.
type routingForwarder struct {
	m map[string]gateway.Forwarder
}

func (r *routingForwarder) Forward(ctx context.Context, backend, path, action string, body []byte, resp *bytes.Buffer) (gateway.ForwardResult, error) {
	return r.m[backend].Forward(ctx, backend, path, action, body, resp)
}

// killableRT simulates a crashed backend: once dead, every round trip is
// refused before the inner transport sees it.
type killableRT struct {
	inner soap.RawTransport
	dead  *atomic.Bool
}

func (k *killableRT) RoundTrip(endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	if k.dead.Load() {
		return nil, fmt.Errorf("soap: post %s: connection refused", endpoint)
	}
	return k.inner.RoundTrip(endpoint, action, req)
}

func (k *killableRT) RoundTripRaw(endpoint, action string, req *soap.Envelope, resp *bytes.Buffer) error {
	if k.dead.Load() {
		return fmt.Errorf("soap: post %s: connection refused", endpoint)
	}
	return k.inner.RoundTripRaw(endpoint, action, req, resp)
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// chaosFleet wires two in-process backends behind a gateway: backend a's
// wire runs through a seeded ChaosTransport (and a kill switch), backend
// b stays clean.
func chaosFleet(t *testing.T, build func(srv *rpc.Server), drop float64) (*gateway.Gateway, *soap.ChaosTransport, *atomic.Bool) {
	t.Helper()
	srvA := rpc.NewServer("a", "http://a.test")
	build(srvA)
	srvB := rpc.NewServer("b", "http://b.test")
	build(srvB)

	var aDead atomic.Bool
	chaos := &soap.ChaosTransport{
		Inner:    srvA.Transport().(soap.RawTransport),
		Seed:     7,
		DropRate: drop,
	}

	gw := gateway.New("gw", "http://gw.local")
	gw.Breakers = &resilience.BreakerSet{Config: resilience.BreakerConfig{
		FailureThreshold: 2, OpenFor: 300 * time.Millisecond,
	}}
	gw.Fetch = recorderFetch(
		map[string]http.Handler{"http://a.test": srvA.Handler(), "http://b.test": srvB.Handler()},
		map[string]*atomic.Bool{"http://a.test": &aDead},
	)
	gw.Forward = &routingForwarder{m: map[string]gateway.Forwarder{
		"http://a.test": &gateway.TransportForwarder{RT: &killableRT{inner: chaos, dead: &aDead}},
		"http://b.test": &gateway.TransportForwarder{RT: srvB.Transport().(soap.RawTransport)},
	}}
	if err := gw.Mount("http://a.test", "http://b.test"); err != nil {
		t.Fatal(err)
	}
	return gw, chaos, &aDead
}

// TestChaosGatewayFailover: every idempotent request through a
// half-broken fleet must succeed with the exact bytes a direct call to a
// healthy node returns — first with one backend dropping 50% of its
// responses, then with that backend dead outright.
func TestChaosGatewayFailover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srvRef := rpc.NewServer("ref", "http://ref.test")
	register := func(srv *rpc.Server) {
		srv.Provider("/ssp").MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	}
	register(srvRef)
	gw, chaos, aDead := chaosFleet(t, register, 0.5)
	gw.StartHealth(10 * time.Millisecond)
	defer waitGoroutines(t, baseline)
	defer gw.Close()

	send := func(i int) (int, []byte, []byte) {
		call := &soap.Call{ServiceNS: batchscript.ServiceNS, Method: "generateScript", Params: []soap.Value{
			soap.Str("scheduler", "PBS"), soap.Str("jobName", fmt.Sprintf("job-%d", i)),
			soap.Str("executable", "/bin/date"), soap.StrArray("arguments", []string{"-u"}),
			soap.Str("stdin", ""), soap.Str("queue", "batch"),
			soap.Int("nodes", 4), soap.Int("wallTimeSeconds", 3600),
		}}
		var body bytes.Buffer
		call.WireEnvelope().AppendTo(&body)

		// Reference bytes from an untouched node: what a direct client sees.
		var want bytes.Buffer
		if err := soap.RoundTripRawContext(context.Background(),
			srvRef.Transport().(soap.RawTransport),
			"http://ref.test/ssp/BatchScriptGenerator", batchscript.ServiceNS+"#generateScript",
			soap.RawEnvelope(body.Bytes()), &want); err != nil {
			t.Fatal(err)
		}

		rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", body.Bytes())
		return rec.Code, rec.Body.Bytes(), want.Bytes()
	}

	// Phase 1: backend a drops half its responses; varied job names spread
	// the routing keys over both nodes, so chaos genuinely fires.
	for i := 0; i < 40; i++ {
		code, got, want := send(i)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d\n%s", i, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: response diverges from direct\n got: %s\nwant: %s", i, got, want)
		}
	}
	if _, _, drops, _ := chaos.Injected(); drops == 0 {
		t.Error("chaos never fired: the failover path went unexercised")
	}

	// Phase 2: backend a dies outright; health probes must open its
	// circuit, and the survivor must carry every request.
	aDead.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for gw.Breakers.For("http://a.test").State() != resilience.StateOpen {
		if time.Now().After(deadline) {
			t.Fatal("dead backend's circuit never opened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 40; i < 60; i++ {
		code, got, want := send(i)
		if code != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d\n%s", i, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post-kill request %d: response diverges from direct", i)
		}
	}
}

// saveCounter counts saveBusiness handler executions — the ground truth
// the duplicate-write invariant is checked against.
type saveCounter struct {
	saves atomic.Uint64
}

func (e *saveCounter) mw(next core.HandlerFunc) core.HandlerFunc {
	return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		if ctx.Operation == "saveBusiness" {
			e.saves.Add(1)
		}
		return next(ctx, args)
	}
}

// TestChaosGatewayWritesNotDuplicated: a non-idempotent write whose
// response is lost must surface as a typed Unavailable fault — never a
// silent retry on another replica. Handler executions can therefore never
// exceed the number of calls, and every non-success is a classifiable
// fault.
func TestChaosGatewayWritesNotDuplicated(t *testing.T) {
	baseline := runtime.NumGoroutine()
	counters := make([]*saveCounter, 0, 2)
	register := func(srv *rpc.Server) {
		c := &saveCounter{}
		counters = append(counters, c)
		svc := uddi.NewService(uddi.NewRegistry())
		svc.Use(c.mw)
		srv.Provider("/uddi").MustRegister(svc)
	}
	gw, chaos, _ := chaosFleet(t, register, 0.4)
	gw.StartHealth(10 * time.Millisecond)
	defer waitGoroutines(t, baseline)
	defer gw.Close()

	const calls = 60
	successes, faults := 0, 0
	for i := 0; i < calls; i++ {
		call := &soap.Call{ServiceNS: uddi.ServiceNS, Method: "saveBusiness", Params: []soap.Value{
			soap.Str("name", fmt.Sprintf("biz-%d", i)),
			soap.Str("description", "chaos probe"),
		}}
		var body bytes.Buffer
		call.WireEnvelope().AppendTo(&body)
		rec := do(gw, http.MethodPost, "http://gw.local/uddi/UDDIRegistry", body.Bytes())
		switch {
		case rec.Code == http.StatusOK && !soap.IsFaultBytes(rec.Body.Bytes()):
			successes++
		case rec.Code == http.StatusInternalServerError:
			// Must be the gateway's typed degradation answer (or a relayed
			// backend fault), never a torn body.
			f := parseFault(t, rec.Body.Bytes())
			if pe := f.PortalError(); pe == nil {
				t.Fatalf("call %d: untyped fault %+v", i, f)
			}
			faults++
		default:
			t.Fatalf("call %d: unclassifiable response %d\n%s", i, rec.Code, rec.Body.Bytes())
		}
	}

	execs := counters[0].saves.Load() + counters[1].saves.Load()
	if execs > calls {
		t.Errorf("duplicated writes: %d executions for %d calls", execs, calls)
	}
	if uint64(successes) > execs {
		t.Errorf("%d successes but only %d executions", successes, execs)
	}
	if successes == 0 {
		t.Error("no write ever succeeded under chaos")
	}
	if faults == 0 {
		t.Error("chaos never surfaced a fault: drop rate had no effect")
	}
	t.Logf("calls=%d successes=%d faults=%d executions=%d", calls, successes, faults, execs)
	if _, _, drops, _ := chaos.Injected(); drops == 0 {
		t.Error("chaos transport never dropped a response")
	}
}
