package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	"repro/internal/soap"
)

// ForwardResult describes one relayed backend response.
type ForwardResult struct {
	// Status is the backend's HTTP status. Under the SOAP 1.1 binding it
	// is 200 for results and 500 for faults; 413 marks oversize
	// rejections. The gateway relays it unchanged.
	Status int
	// RetryAfter is the backend's Retry-After header value, relayed
	// verbatim ("" when absent).
	RetryAfter string
}

// Forwarder posts one serialised request envelope to a backend service
// endpoint (backend base URL + service path), appending the raw response
// envelope bytes to resp. Transport-level failures — the response bytes
// cannot be trusted, and the request may or may not have executed —
// return an error with resp restored; SOAP faults are NOT errors, they
// arrive as response bytes with Status 500 so the gateway can relay them
// unchanged.
type Forwarder interface {
	Forward(ctx context.Context, backend, path, action string, body []byte, resp *bytes.Buffer) (ForwardResult, error)
}

// HTTPForwarder relays envelopes over HTTP POST, preserving response
// bytes, status, and Retry-After exactly. Each backend gets its own
// pooled client from Pool, so one slow site cannot starve the others'
// connection pools.
type HTTPForwarder struct {
	// Pool hands out the per-backend clients; soap.DefaultClient() is
	// used when nil.
	Pool *soap.ClientPool
}

// Forward implements Forwarder over HTTP.
func (f *HTTPForwarder) Forward(ctx context.Context, backend, path, action string, body []byte, resp *bytes.Buffer) (ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, backend+path, bytes.NewReader(body))
	if err != nil {
		return ForwardResult{}, fmt.Errorf("gateway: build request: %w", err)
	}
	req.Header.Set("Content-Type", soap.ContentType)
	req.Header.Set("SOAPAction", `"`+action+`"`)
	hc := soap.DefaultClient()
	if f.Pool != nil {
		hc = f.Pool.For(backend)
	}
	res, err := hc.Do(req)
	if err != nil {
		return ForwardResult{}, fmt.Errorf("gateway: post %s%s: %w", backend, path, err)
	}
	defer res.Body.Close()
	mark := resp.Len()
	if err := soap.ReadMessage(resp, res.Body); err != nil {
		resp.Truncate(mark)
		return ForwardResult{}, fmt.Errorf("gateway: read response from %s%s: %w", backend, path, err)
	}
	return ForwardResult{Status: res.StatusCode, RetryAfter: res.Header.Get("Retry-After")}, nil
}

// TransportForwarder adapts any soap.RawTransport into a Forwarder: the
// request bytes ride through the transport verbatim (soap.RawEnvelope)
// and the HTTP status is reconstructed from the response body per the
// SOAP 1.1 convention (fault body ⇒ 500). Tests and benchmarks use it to
// put a ChaosTransport or an in-process server transport behind the
// gateway; Retry-After is HTTP transport metadata and is not
// reconstructed on this path.
type TransportForwarder struct {
	// RT carries the forwarded envelopes.
	RT soap.RawTransport
}

// Forward implements Forwarder over the wrapped transport.
func (f *TransportForwarder) Forward(ctx context.Context, backend, path, action string, body []byte, resp *bytes.Buffer) (ForwardResult, error) {
	mark := resp.Len()
	if err := soap.RoundTripRawContext(ctx, f.RT, backend+path, action, soap.RawEnvelope(body), resp); err != nil {
		resp.Truncate(mark)
		return ForwardResult{}, err
	}
	status := http.StatusOK
	if soap.IsFaultBytes(resp.Bytes()[mark:]) {
		status = http.StatusInternalServerError
	}
	return ForwardResult{Status: status}, nil
}
