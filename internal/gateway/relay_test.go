package gateway_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
)

// deadClientWriter models a client that closed its connection before the
// relay could write the response: net/http surfaces that as EPIPE from
// ResponseWriter.Write.
type deadClientWriter struct {
	header http.Header
	status int
}

func (d *deadClientWriter) Header() http.Header  { return d.header }
func (d *deadClientWriter) WriteHeader(code int) { d.status = code }
func (d *deadClientWriter) Write(p []byte) (int, error) {
	return 0, syscall.EPIPE
}

// TestRelayWriteErrorCounted pins the response-write bugfix: a client that
// disconnects mid-relay used to vanish without a trace. Now the failed write
// lands in the relay.write_errors counter — and does NOT trip the backend's
// breaker, because the backend answered fine.
func TestRelayWriteErrorCounted(t *testing.T) {
	_, ts := batchBackend(t, "iu")
	gw := newGateway(t, ts.URL)

	body := golden(t, "batchscript.req.xml")
	rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sanity forward failed: %d\n%s", rec.Code, rec.Body.String())
	}
	if n := gw.Stats().Counter("relay.write_errors"); n != 0 {
		t.Fatalf("healthy relay counted %d write errors", n)
	}

	// Same request, but the client is gone by the time the relay writes.
	dead := &deadClientWriter{header: http.Header{}}
	r := httptest.NewRequest(http.MethodPost,
		"http://gw.local/ssp/BatchScriptGenerator", bytes.NewReader(body))
	gw.Handler().ServeHTTP(dead, r)
	if dead.status != http.StatusOK {
		t.Fatalf("backend forward failed underneath the dead client: %d", dead.status)
	}
	if n := gw.Stats().Counter("relay.write_errors"); n != 1 {
		t.Fatalf("relay.write_errors = %d, want 1", n)
	}

	// The breaker must not have been fed: the next request from a live
	// client goes straight through.
	if err := gw.Breakers.For(ts.URL).Allow(); err != nil {
		t.Fatalf("dead client opened the backend's breaker: %v", err)
	}
	rec = do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up forward failed: %d\n%s", rec.Code, rec.Body.String())
	}
	if n := gw.Stats().Counter("relay.write_errors"); n != 1 {
		t.Fatalf("relay.write_errors grew to %d on a healthy relay", n)
	}
}
