package gateway

import (
	"sort"
	"strconv"

	"repro/internal/shardmap"
)

// ring is a consistent-hash ring over backend base URLs. Each backend is
// placed at `replicas` pseudo-random points (virtual nodes) on a 64-bit
// circle; a request key routes to the first backend clockwise from its
// hash. Adding or removing one backend therefore remaps only the keys
// that hashed into its arcs — the property that keeps each replica's
// response cache warm when the healthy set changes, instead of reshuffling
// every key as modulo hashing would.
//
// The ring always contains every mounted backend, healthy or not: health
// is applied at lookup time by walking the failover sequence and skipping
// nodes whose circuit is open, so a node's recovery restores exactly its
// old arcs.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultVnodes balances distribution evenness against lookup table size
// for the single-digit fleets a portal federation runs.
const defaultVnodes = 64

// buildRing places each node at `replicas` points (defaultVnodes when
// replicas is not positive).
func buildRing(nodes []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultVnodes
	}
	r := &ring{points: make([]ringPoint, 0, len(nodes)*replicas)}
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: shardmap.Hash(n + "#" + strconv.Itoa(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// sequence appends to dst the distinct nodes encountered walking the ring
// clockwise from key — the primary assignment first, then the failover
// order. Every mounted node appears exactly once.
func (r *ring) sequence(key uint64, dst []string) []string {
	if len(r.points) == 0 {
		return dst
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !containsNode(dst, p.node) {
			dst = append(dst, p.node)
		}
	}
	return dst
}

func containsNode(nodes []string, n string) bool {
	for _, v := range nodes {
		if v == n {
			return true
		}
	}
	return false
}

// hashBytes is FNV-1a over raw bytes — shardmap.Hash without the string
// conversion, which would copy every request body just to route it.
func hashBytes(seed uint64, data []byte) uint64 {
	const prime64 = 1099511628211
	h := seed
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// fnvOffset64 is the FNV-1a offset basis, the seed for request-key hashes.
const fnvOffset64 = 14695981039346656037
