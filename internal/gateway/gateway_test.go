package gateway_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batchscript"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/wsil"
)

// newBackend hosts the given services on a real HTTP listener, with the
// server's published base URL rewritten to the listener address so the
// WSIL/WSDL the gateway crawls points back at the listener.
func newBackend(t *testing.T, name string, build func(srv *rpc.Server)) (*rpc.Server, *httptest.Server) {
	t.Helper()
	srv := rpc.NewServer(name, "http://placeholder")
	build(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	srv.SetBaseURL(ts.URL)
	return srv, ts
}

func batchBackend(t *testing.T, name string) (*rpc.Server, *httptest.Server) {
	return newBackend(t, name, func(srv *rpc.Server) {
		srv.Provider("/ssp").MustRegister(batchscript.NewService(batchscript.NewIUGenerator()))
	})
}

func newGateway(t *testing.T, backends ...string) *gateway.Gateway {
	t.Helper()
	gw := gateway.New("gw", "http://gw.local")
	if err := gw.Mount(backends...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// do drives one request through the gateway's HTTP surface.
func do(gw *gateway.Gateway, method, target string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, r)
	return rec
}

func golden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "rpc", "testdata", "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func parseFault(t *testing.T, body []byte) *soap.Fault {
	t.Helper()
	env, err := soap.ParseEnvelopeBytes(body)
	if err != nil {
		t.Fatalf("fault body does not parse: %v\n%s", err, body)
	}
	resp, err := soap.ParseResponse(env)
	if err == nil || resp == nil || resp.Fault == nil {
		t.Fatalf("expected a fault, got %v (err %v)", resp, err)
	}
	return resp.Fault
}

// TestMountAggregatesInspection pins the federation surface: one entry
// per federated service pointing at the gateway's republished WSDL, links
// to every backend's own inspection document, and no duplicates when a
// backend is mounted twice.
func TestMountAggregatesInspection(t *testing.T) {
	_, a := batchBackend(t, "a")
	_, b := batchBackend(t, "b")
	gw := newGateway(t, a.URL, b.URL)
	if err := gw.Mount(a.URL); err != nil { // re-mount must be idempotent
		t.Fatal(err)
	}
	if got := gw.Backends(); len(got) != 2 {
		t.Fatalf("backends = %v", got)
	}

	rec := do(gw, http.MethodGet, "http://gw.local"+wsil.WellKnownPath, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("inspection status = %d", rec.Code)
	}
	doc, err := wsil.Parse(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 1 {
		t.Fatalf("services = %+v", doc.Services)
	}
	if got := doc.Services[0].WSDLLocation; got != "http://gw.local/ssp/BatchScriptGenerator?wsdl" {
		t.Errorf("WSDL location = %q", got)
	}
	if len(doc.Links) != 2 || doc.Links[0].Location != a.URL+wsil.WellKnownPath {
		t.Errorf("links = %+v", doc.Links)
	}
}

// TestWSDLRebindsToGateway: the republished contract must be the
// backend's interface with the gateway as endpoint, so clients
// discovering through the gateway bind to the gateway.
func TestWSDLRebindsToGateway(t *testing.T) {
	_, a := batchBackend(t, "a")
	gw := newGateway(t, a.URL)

	rec := do(gw, http.MethodGet, "http://gw.local/ssp/BatchScriptGenerator?wsdl", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("wsdl status = %d", rec.Code)
	}
	svc, err := wsdl.Parse(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if svc.Endpoint != "http://gw.local/ssp/BatchScriptGenerator" {
		t.Errorf("endpoint = %q", svc.Endpoint)
	}
	direct := batchscript.NewService(batchscript.NewIUGenerator()).Contract
	if problems := wsdl.CheckCompatible(direct, svc.Interface); len(problems) != 0 {
		t.Errorf("republished contract diverges: %v", problems)
	}
	// Plain GET without ?wsdl is not a SOAP request.
	if rec := do(gw, http.MethodGet, "http://gw.local/ssp/BatchScriptGenerator", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("plain GET = %d", rec.Code)
	}
}

// TestForwardByteIdentity: a request through the gateway must produce the
// exact bytes the golden suite pins for a direct connection — success
// and fault shapes both relay unmodified.
func TestForwardByteIdentity(t *testing.T) {
	_, a := batchBackend(t, "a")
	_, b := batchBackend(t, "b")
	gw := newGateway(t, a.URL, b.URL)

	rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", golden(t, "batchscript.req.xml"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != soap.ContentType {
		t.Errorf("content type = %q", ct)
	}
	if want := golden(t, "batchscript.resp.xml"); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("gateway response diverges from golden\n got: %s\nwant: %s", rec.Body.Bytes(), want)
	}
}

// TestFaultRelay: a backend fault arrives with its HTTP 500 status and
// the identical envelope a direct client would see.
func TestFaultRelay(t *testing.T) {
	_, a := batchBackend(t, "a")
	gw := newGateway(t, a.URL)

	call := &soap.Call{ServiceNS: batchscript.ServiceNS, Method: "generateScript", Params: []soap.Value{
		soap.Str("scheduler", "NO-SUCH-SCHEDULER"), soap.Str("jobName", "j"),
		soap.Str("executable", "/bin/true"), soap.Int("nodes", 1), soap.Int("wallTimeSeconds", 60),
	}}
	var req bytes.Buffer
	call.WireEnvelope().AppendTo(&req)

	// Direct to the backend first, for the reference bytes.
	direct, err := http.Post(a.URL+"/ssp/BatchScriptGenerator", soap.ContentType, bytes.NewReader(req.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := soap.ReadMessage(&want, direct.Body); err != nil {
		t.Fatal(err)
	}
	direct.Body.Close()
	if direct.StatusCode != http.StatusInternalServerError {
		t.Fatalf("direct fault status = %d", direct.StatusCode)
	}

	rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", req.Bytes())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("relayed fault status = %d", rec.Code)
	}
	f := parseFault(t, rec.Body.Bytes())
	if pe := f.PortalError(); pe == nil {
		t.Errorf("relayed fault lost its portal error: %+v", f)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Errorf("relayed fault diverges from direct\n got: %s\nwant: %s", rec.Body.Bytes(), want.Bytes())
	}
}

// forwardFunc fabricates backend responses, for relay-metadata tests.
type forwardFunc func(resp *bytes.Buffer) (gateway.ForwardResult, error)

func (f forwardFunc) Forward(_ context.Context, _, _, _ string, _ []byte, resp *bytes.Buffer) (gateway.ForwardResult, error) {
	return f(resp)
}

// TestRetryAfterRelay: the Retry-After transport metadata a degraded
// backend emits must reach the caller unchanged.
func TestRetryAfterRelay(t *testing.T) {
	_, a := batchBackend(t, "a")
	gw := newGateway(t, a.URL)
	fault := (&soap.Response{Fault: &soap.Fault{Code: soap.FaultServer, String: "busy"}}).WireEnvelope()
	gw.Forward = forwardFunc(func(resp *bytes.Buffer) (gateway.ForwardResult, error) {
		fault.AppendTo(resp)
		return gateway.ForwardResult{Status: http.StatusInternalServerError, RetryAfter: "7"}, nil
	})

	req := &soap.Call{ServiceNS: batchscript.ServiceNS, Method: "listSchedulers"}
	var body bytes.Buffer
	req.WireEnvelope().AppendTo(&body)
	rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", body.Bytes())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q", got)
	}
}

// TestOversizeRejected: the front door refuses oversize requests with the
// same typed 413 fault the kernel emits, before any forwarding happens.
func TestOversizeRejected(t *testing.T) {
	_, a := batchBackend(t, "a")
	gw := newGateway(t, a.URL)

	r := httptest.NewRequest(http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", strings.NewReader("<small/>"))
	r.ContentLength = soap.MaxMessageBytes() + 1
	rec := httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, r)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d", rec.Code)
	}
	f := parseFault(t, rec.Body.Bytes())
	if f.Code != soap.FaultClient {
		t.Errorf("fault code = %q", f.Code)
	}
	if pe := f.PortalError(); pe == nil || pe.Code != soap.ErrCodeBadRequest {
		t.Errorf("portal error = %+v", pe)
	}
}

// widgetDef builds a tiny service whose contract the divergence test can
// bend.
func widgetDef(idType string) *rpc.Def {
	return &rpc.Def{
		Name: "Widget", NS: "urn:test:widget",
		Ops: []rpc.Op{{
			Name: "get",
			In:   []wsdl.Param{{Name: "id", Type: idType}},
			Out:  []wsdl.Param{rpc.Str("value")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				return rpc.Ret("w"), nil
			},
		}},
	}
}

// TestMountRejectsDivergentReplica: a backend advertising the same path
// with an incompatible contract must be refused at federation time.
func TestMountRejectsDivergentReplica(t *testing.T) {
	_, a := newBackend(t, "a", func(srv *rpc.Server) {
		srv.Provider("").MustRegister(widgetDef("string").MustBuild())
	})
	_, b := newBackend(t, "b", func(srv *rpc.Server) {
		srv.Provider("").MustRegister(widgetDef("int").MustBuild())
	})
	gw := gateway.New("gw", "http://gw.local")
	t.Cleanup(gw.Close)
	if err := gw.Mount(a.URL); err != nil {
		t.Fatal(err)
	}
	err := gw.Mount(b.URL)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("divergent replica accepted: %v", err)
	}
	if got := gw.Backends(); len(got) != 1 {
		t.Errorf("divergent backend joined the ring: %v", got)
	}
}

// kvDef is a cacheable read / invalidating write pair for the fleet-wide
// flush test.
func kvDef(v *string, mu *sync.Mutex) *rpc.Def {
	return &rpc.Def{
		Name: "KVStore", NS: "urn:test:kv",
		Ops: []rpc.Op{
			{
				Name: "getValue", Out: []wsdl.Param{rpc.Str("value")}, Idempotent: true,
				Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
					mu.Lock()
					defer mu.Unlock()
					return rpc.Ret(*v), nil
				},
			},
			{
				Name: "setValue", In: []wsdl.Param{rpc.Str("value")}, Out: []wsdl.Param{rpc.Str("ok")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					mu.Lock()
					defer mu.Unlock()
					*v = in.Str("value")
					return rpc.Ret("ok"), nil
				},
			},
		},
	}
}

// TestWriteFlushesFleetCaches: a write forwarded to one replica must
// empty the response caches of every replica before the response returns
// — the handling backend via its own cache middleware, the siblings via
// the authenticated __flush control op.
func TestWriteFlushesFleetCaches(t *testing.T) {
	const token = "fleet-secret"
	var mu sync.Mutex
	vals := [2]string{"a0", "b0"}
	caches := make([]*rpc.ResponseCache, 2)
	servers := make([]*rpc.Server, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		srv, ts := newBackend(t, "kv", func(srv *rpc.Server) {
			svc := kvDef(&vals[i], &mu).MustBuild()
			caches[i] = rpc.NewResponseCache(time.Minute, 64)
			svc.Use(caches[i].Middleware(rpc.OpPrefixes("get")))
			srv.Provider("").MustRegister(svc)
			srv.RegisterFlushCache("urn:test:kv", caches[i])
			srv.EnableCacheFlush(token)
		})
		servers[i], urls[i] = srv, ts.URL
	}

	gw := gateway.New("gw", "http://gw.local")
	gw.FlushToken = token
	if err := gw.Mount(urls[0], urls[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	// Warm every replica's cache with a direct read.
	iface := widgetContract(t, urls[0])
	for i := 0; i < 2; i++ {
		cl := core.NewClient(&soap.HTTPTransport{}, urls[i]+"/KVStore", iface)
		if _, err := cl.Call("getValue"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Call("getValue"); err != nil {
			t.Fatal(err)
		}
		hits, _, entries := caches[i].Stats()
		if hits != 1 || entries != 1 {
			t.Fatalf("replica %d cache not warm: hits=%d entries=%d", i, hits, entries)
		}
	}

	// One write through the gateway, to whichever replica the ring picks.
	gwClient := core.NewClient(gw.Loopback(), "http://gw.local/KVStore", iface)
	if _, err := gwClient.Call("setValue", soap.Str("value", "new")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, _, entries := caches[i].Stats(); entries != 0 {
			t.Errorf("replica %d cache still has %d entries after a fleet write", i, entries)
		}
	}
	// Exactly one replica handled the write (flushing itself); the other
	// was flushed through the control op.
	if total := servers[0].Flushes() + servers[1].Flushes(); total != 1 {
		t.Errorf("control-op flushes = %d, want 1", total)
	}
}

// widgetContract fetches a mounted service's contract from its published
// WSDL, as a gateway client would.
func widgetContract(t *testing.T, base string) *wsdl.Interface {
	t.Helper()
	resp, err := http.Get(base + "/KVStore?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if err := soap.ReadMessage(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	svc, err := wsdl.Parse(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	return svc.Interface
}

// TestHealthProbeOpensBreaker: failing health probes must open the
// backend's circuit — removing it from the healthy set — without any
// request traffic.
func TestHealthProbeOpensBreaker(t *testing.T) {
	_, a := batchBackend(t, "a")
	gw := gateway.New("gw", "http://gw.local")
	gw.Breakers = &resilience.BreakerSet{Config: resilience.BreakerConfig{
		FailureThreshold: 2, OpenFor: time.Minute,
	}}
	if err := gw.Mount(a.URL); err != nil {
		t.Fatal(err)
	}
	a.Close() // backend dies; /healthz now refuses connections
	gw.StartHealth(5 * time.Millisecond)
	defer gw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for gw.Breakers.For(a.URL).State() != resilience.StateOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened on failed health probes")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With no healthy backend, forwarding degrades to a typed
	// Unavailable fault with Retry-After, not a hang or a raw error.
	req := &soap.Call{ServiceNS: batchscript.ServiceNS, Method: "listSchedulers"}
	var body bytes.Buffer
	req.WireEnvelope().AppendTo(&body)
	rec := do(gw, http.MethodPost, "http://gw.local/ssp/BatchScriptGenerator", body.Bytes())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q", got)
	}
	f := parseFault(t, rec.Body.Bytes())
	pe := f.PortalError()
	if pe == nil || pe.Code != soap.ErrCodeUnavailable || pe.Service != "gw" {
		t.Errorf("portal error = %+v", pe)
	}
}
