// Package srb simulates the SDSC Storage Resource Broker (SRB), the data
// management substrate of Section 3.2: a federated logical namespace of
// collections and data objects backed by named physical resources, an
// MCAT-style metadata catalog, and per-object access control. The SRB Web
// Services (internal/srbws) expose the same subset of functionality the
// paper's Python services did — ls, cat, get, put, and xml_call — on top of
// this simulator via the command-utility-shaped API (Sls, Scat, Sget,
// Sput), mirroring how the real services shelled out to the GSI-
// authenticated SRB command line tools.
package srb

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Permission is an access level on a collection or data object.
type Permission string

// Access levels.
const (
	PermNone  Permission = ""
	PermRead  Permission = "read"
	PermWrite Permission = "write"
	PermOwn   Permission = "own"
)

// allows reports whether holding p grants the access need.
func (p Permission) allows(need Permission) bool {
	switch need {
	case PermRead:
		return p == PermRead || p == PermWrite || p == PermOwn
	case PermWrite:
		return p == PermWrite || p == PermOwn
	case PermOwn:
		return p == PermOwn
	default:
		return true
	}
}

// Metadata is one MCAT attribute-value-unit triple.
type Metadata struct {
	Attribute string
	Value     string
	Unit      string
}

// Entry is a directory listing row.
type Entry struct {
	// Name is the object or collection name.
	Name string
	// IsCollection distinguishes collections from data objects.
	IsCollection bool
	// Size is the data object size in bytes (0 for collections).
	Size int
	// Resource is the physical resource holding the object.
	Resource string
	// Owner is the creating principal.
	Owner string
}

// object is a stored data object.
type object struct {
	content  string
	resource string
	owner    string
	created  time.Time
	acl      map[string]Permission
	metadata []Metadata
}

// collection is a directory in the logical namespace.
type collection struct {
	owner    string
	acl      map[string]Permission
	children map[string]*collection
	objects  map[string]*object
}

func newCollection(owner string) *collection {
	return &collection{
		owner:    owner,
		acl:      map[string]Permission{owner: PermOwn},
		children: map[string]*collection{},
		objects:  map[string]*object{},
	}
}

// Resource is one physical storage resource registered with the broker.
type Resource struct {
	// Name is the resource identifier, e.g. "sdsc-disk1".
	Name string
	// Capacity is the byte capacity; writes beyond it fail with a
	// disk-full error (the paper's canonical implementation-error example).
	Capacity int

	used int
}

// Broker is the SRB server: namespace, resources, catalog.
type Broker struct {
	// Zone is the SRB zone name used in logical paths.
	Zone string

	mu        sync.RWMutex
	root      *collection
	resources map[string]*Resource
	defRes    string
	now       func() time.Time
}

// NewBroker creates a broker with one unlimited default resource.
func NewBroker(zone string) *Broker {
	b := &Broker{
		Zone:      zone,
		root:      newCollection("srbAdmin"),
		resources: map[string]*Resource{},
		now:       time.Now,
	}
	b.AddResource(Resource{Name: "default-disk", Capacity: 0})
	return b
}

// SetTimeSource overrides the wall clock (virtual-clock integration).
func (b *Broker) SetTimeSource(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// AddResource registers a physical resource; the first becomes the default.
func (b *Broker) AddResource(r Resource) {
	b.mu.Lock()
	defer b.mu.Unlock()
	stored := r
	b.resources[r.Name] = &stored
	if b.defRes == "" {
		b.defRes = r.Name
	}
}

// ResourceUsage returns used and capacity bytes for a resource.
func (b *Broker) ResourceUsage(name string) (used, capacity int, err error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.resources[name]
	if !ok {
		return 0, 0, fmt.Errorf("srb: unknown resource %q", name)
	}
	return r.used, r.Capacity, nil
}

// CreateUser provisions a user's home collection
// (/<zone>/home/<user>), the layout SRB clients expect.
func (b *Broker) CreateUser(user string) string {
	home := fmt.Sprintf("/%s/home/%s", b.Zone, user)
	_ = b.Mkdir("srbAdmin", home)
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, _ := b.lookupCollection(home); c != nil {
		c.owner = user
		c.acl[user] = PermOwn
	}
	return home
}

// splitPath normalises and splits a logical path.
func splitPath(p string) ([]string, error) {
	p = path.Clean("/" + strings.TrimSpace(p))
	if p == "/" {
		return nil, nil
	}
	segs := strings.Split(strings.TrimPrefix(p, "/"), "/")
	for _, s := range segs {
		if s == "" || s == ".." {
			return nil, fmt.Errorf("srb: invalid path %q", p)
		}
	}
	return segs, nil
}

// lookupCollection walks to a collection; caller holds the lock.
func (b *Broker) lookupCollection(p string) (*collection, error) {
	segs, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	cur := b.root
	for _, s := range segs {
		next, ok := cur.children[s]
		if !ok {
			return nil, fmt.Errorf("srb: no such collection %q", p)
		}
		cur = next
	}
	return cur, nil
}

// lookupObject walks to a data object's parent and the object; caller
// holds the lock.
func (b *Broker) lookupObject(p string) (*collection, *object, string, error) {
	dir, name := path.Split(path.Clean("/" + strings.TrimSpace(p)))
	if name == "" {
		return nil, nil, "", fmt.Errorf("srb: invalid object path %q", p)
	}
	parent, err := b.lookupCollection(dir)
	if err != nil {
		return nil, nil, "", err
	}
	obj, ok := parent.objects[name]
	if !ok {
		return nil, nil, "", fmt.Errorf("srb: no such object %q", p)
	}
	return parent, obj, name, nil
}

// permFor resolves a user's effective permission on an ACL.
func permFor(acl map[string]Permission, user string) Permission {
	if p, ok := acl[user]; ok {
		return p
	}
	if p, ok := acl["public"]; ok {
		return p
	}
	return PermNone
}

// AccessError marks authorization failures so the web service layer can map
// them to the portal AccessDenied code.
type AccessError struct {
	User string
	Path string
	Need Permission
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	return fmt.Sprintf("srb: %s denied %s access to %s", e.User, e.Need, e.Path)
}

// Mkdir creates a collection (parents must exist; srbAdmin bypasses ACLs).
func (b *Broker) Mkdir(user, p string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	dir, name := path.Split(path.Clean("/" + strings.TrimSpace(p)))
	if name == "" {
		return fmt.Errorf("srb: invalid collection path %q", p)
	}
	parent, err := b.lookupCollection(dir)
	if err != nil {
		// srbAdmin may create intermediate collections (provisioning).
		if user != "srbAdmin" {
			return err
		}
		if err := b.mkdirAllLocked(dir); err != nil {
			return err
		}
		parent, _ = b.lookupCollection(dir)
	}
	if user != "srbAdmin" && !permFor(parent.acl, user).allows(PermWrite) {
		return &AccessError{User: user, Path: dir, Need: PermWrite}
	}
	if _, exists := parent.children[name]; exists {
		return fmt.Errorf("srb: collection %q already exists", p)
	}
	if _, exists := parent.objects[name]; exists {
		return fmt.Errorf("srb: %q exists as a data object", p)
	}
	c := newCollection(user)
	// Children inherit the parent's ACL entries below the creating owner.
	for u, perm := range parent.acl {
		if _, ok := c.acl[u]; !ok {
			c.acl[u] = perm
		}
	}
	parent.children[name] = c
	return nil
}

func (b *Broker) mkdirAllLocked(p string) error {
	segs, err := splitPath(p)
	if err != nil {
		return err
	}
	cur := b.root
	for _, s := range segs {
		next, ok := cur.children[s]
		if !ok {
			next = newCollection("srbAdmin")
			cur.children[s] = next
		}
		cur = next
	}
	return nil
}

// Sput stores a data object (overwriting requires write access; creating
// requires write on the parent). resource may be empty for the default.
func (b *Broker) Sput(user, p, content, resource string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	dir, name := path.Split(path.Clean("/" + strings.TrimSpace(p)))
	if name == "" {
		return fmt.Errorf("srb: invalid object path %q", p)
	}
	parent, err := b.lookupCollection(dir)
	if err != nil {
		return err
	}
	if resource == "" {
		resource = b.defRes
	}
	res, ok := b.resources[resource]
	if !ok {
		return fmt.Errorf("srb: unknown resource %q", resource)
	}
	existing, exists := parent.objects[name]
	if exists {
		if !permFor(existing.acl, user).allows(PermWrite) {
			return &AccessError{User: user, Path: p, Need: PermWrite}
		}
	} else {
		if !permFor(parent.acl, user).allows(PermWrite) {
			return &AccessError{User: user, Path: dir, Need: PermWrite}
		}
		if _, isColl := parent.children[name]; isColl {
			return fmt.Errorf("srb: %q exists as a collection", p)
		}
	}
	delta := len(content)
	if exists {
		delta -= len(existing.content)
	}
	if res.Capacity > 0 && res.used+delta > res.Capacity {
		return fmt.Errorf("srb: resource %s full: %d + %d exceeds capacity %d",
			resource, res.used, delta, res.Capacity)
	}
	res.used += delta
	if exists {
		existing.content = content
		existing.resource = resource
		return nil
	}
	parent.objects[name] = &object{
		content:  content,
		resource: resource,
		owner:    user,
		created:  b.now(),
		acl:      map[string]Permission{user: PermOwn},
	}
	return nil
}

// Sget retrieves a data object's content.
func (b *Broker) Sget(user, p string) (string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return "", err
	}
	if !permFor(obj.acl, user).allows(PermRead) {
		return "", &AccessError{User: user, Path: p, Need: PermRead}
	}
	return obj.content, nil
}

// Scat is Sget's alias matching the SRB utility names (the web service
// exposes both cat and get with different transfer semantics).
func (b *Broker) Scat(user, p string) (string, error) {
	return b.Sget(user, p)
}

// SgetRange reads size bytes at offset from a data object without copying
// the remainder — the bounded read the chunked-transfer extension needs.
// Reads past the end are truncated; a wholly out-of-range offset fails.
func (b *Broker) SgetRange(user, p string, offset, size int) (string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return "", err
	}
	if !permFor(obj.acl, user).allows(PermRead) {
		return "", &AccessError{User: user, Path: p, Need: PermRead}
	}
	if offset < 0 || size <= 0 || offset > len(obj.content) {
		return "", fmt.Errorf("srb: bad range offset=%d size=%d len=%d", offset, size, len(obj.content))
	}
	end := offset + size
	if end > len(obj.content) {
		end = len(obj.content)
	}
	return obj.content[offset:end], nil
}

// Size returns a data object's length in bytes.
func (b *Broker) Size(user, p string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return 0, err
	}
	if !permFor(obj.acl, user).allows(PermRead) {
		return 0, &AccessError{User: user, Path: p, Need: PermRead}
	}
	return len(obj.content), nil
}

// Sls lists a collection.
func (b *Broker) Sls(user, p string) ([]Entry, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, err := b.lookupCollection(p)
	if err != nil {
		return nil, err
	}
	if !permFor(c.acl, user).allows(PermRead) {
		return nil, &AccessError{User: user, Path: p, Need: PermRead}
	}
	var out []Entry
	for name, child := range c.children {
		out = append(out, Entry{Name: name, IsCollection: true, Owner: child.owner})
	}
	for name, obj := range c.objects {
		out = append(out, Entry{
			Name: name, Size: len(obj.content), Resource: obj.resource, Owner: obj.owner,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IsCollection != out[j].IsCollection {
			return out[i].IsCollection
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// Srm removes a data object, releasing its resource space.
func (b *Broker) Srm(user, p string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	parent, obj, name, err := b.lookupObject(p)
	if err != nil {
		return err
	}
	if !permFor(obj.acl, user).allows(PermWrite) {
		return &AccessError{User: user, Path: p, Need: PermWrite}
	}
	if res, ok := b.resources[obj.resource]; ok {
		res.used -= len(obj.content)
	}
	delete(parent.objects, name)
	return nil
}

// Chmod grants a permission on an object or collection (owner only).
func (b *Broker) Chmod(owner, p, user string, perm Permission) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, err := b.lookupCollection(p); err == nil {
		if !permFor(c.acl, owner).allows(PermOwn) {
			return &AccessError{User: owner, Path: p, Need: PermOwn}
		}
		c.acl[user] = perm
		return nil
	}
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return err
	}
	if !permFor(obj.acl, owner).allows(PermOwn) {
		return &AccessError{User: owner, Path: p, Need: PermOwn}
	}
	obj.acl[user] = perm
	return nil
}

// AddMetadata attaches an MCAT triple to a data object.
func (b *Broker) AddMetadata(user, p string, m Metadata) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return err
	}
	if !permFor(obj.acl, user).allows(PermWrite) {
		return &AccessError{User: user, Path: p, Need: PermWrite}
	}
	obj.metadata = append(obj.metadata, m)
	return nil
}

// GetMetadata lists a data object's MCAT triples.
func (b *Broker) GetMetadata(user, p string) ([]Metadata, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, obj, _, err := b.lookupObject(p)
	if err != nil {
		return nil, err
	}
	if !permFor(obj.acl, user).allows(PermRead) {
		return nil, &AccessError{User: user, Path: p, Need: PermRead}
	}
	return append([]Metadata(nil), obj.metadata...), nil
}

// QueryMetadata finds object paths under root whose metadata contains an
// attribute=value match — the MCAT discovery query.
func (b *Broker) QueryMetadata(user, root, attribute, value string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	start, err := b.lookupCollection(root)
	if err != nil {
		return nil, err
	}
	var out []string
	var walk func(c *collection, p string)
	walk = func(c *collection, p string) {
		if !permFor(c.acl, user).allows(PermRead) {
			return
		}
		var names []string
		for name := range c.objects {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			obj := c.objects[name]
			if !permFor(obj.acl, user).allows(PermRead) {
				continue
			}
			for _, m := range obj.metadata {
				if m.Attribute == attribute && m.Value == value {
					out = append(out, p+"/"+name)
					break
				}
			}
		}
		var dirs []string
		for name := range c.children {
			dirs = append(dirs, name)
		}
		sort.Strings(dirs)
		for _, name := range dirs {
			walk(c.children[name], p+"/"+name)
		}
	}
	walk(start, strings.TrimSuffix(path.Clean("/"+strings.TrimSpace(root)), "/"))
	return out, nil
}
