package srb

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testBroker(t *testing.T) (*Broker, string) {
	t.Helper()
	b := NewBroker("sdsc")
	home := b.CreateUser("mock")
	return b, home
}

func TestHomeProvisioning(t *testing.T) {
	b, home := testBroker(t)
	if home != "/sdsc/home/mock" {
		t.Fatalf("home = %q", home)
	}
	entries, err := b.Sls("mock", home)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("fresh home not empty: %v", entries)
	}
}

func TestPutGetCatRoundTrip(t *testing.T) {
	b, home := testBroker(t)
	if err := b.Sput("mock", home+"/results.dat", "simulation output", ""); err != nil {
		t.Fatal(err)
	}
	got, err := b.Sget("mock", home+"/results.dat")
	if err != nil || got != "simulation output" {
		t.Errorf("Sget = %q, %v", got, err)
	}
	got, err = b.Scat("mock", home+"/results.dat")
	if err != nil || got != "simulation output" {
		t.Errorf("Scat = %q, %v", got, err)
	}
	// Overwrite.
	if err := b.Sput("mock", home+"/results.dat", "v2", ""); err != nil {
		t.Fatal(err)
	}
	got, _ = b.Sget("mock", home+"/results.dat")
	if got != "v2" {
		t.Errorf("after overwrite = %q", got)
	}
}

func TestLsOrderingAndEntries(t *testing.T) {
	b, home := testBroker(t)
	_ = b.Mkdir("mock", home+"/zdir")
	_ = b.Mkdir("mock", home+"/adir")
	_ = b.Sput("mock", home+"/bfile", "12345", "")
	entries, err := b.Sls("mock", home)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	// Collections first, then objects, each alphabetical.
	if !entries[0].IsCollection || entries[0].Name != "adir" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[2].IsCollection || entries[2].Name != "bfile" || entries[2].Size != 5 {
		t.Errorf("entry 2 = %+v", entries[2])
	}
	if entries[2].Resource != "default-disk" || entries[2].Owner != "mock" {
		t.Errorf("entry 2 meta = %+v", entries[2])
	}
}

func TestACLEnforcement(t *testing.T) {
	b, home := testBroker(t)
	b.CreateUser("kurt")
	_ = b.Sput("mock", home+"/secret", "classified", "")
	if _, err := b.Sget("kurt", home+"/secret"); !isAccess(err) {
		t.Errorf("foreign read err = %v", err)
	}
	if err := b.Sput("kurt", home+"/intruder", "x", ""); !isAccess(err) {
		t.Errorf("foreign write err = %v", err)
	}
	if _, err := b.Sls("kurt", home); !isAccess(err) {
		t.Errorf("foreign ls err = %v", err)
	}
	// Grant read on the object.
	if err := b.Chmod("mock", home+"/secret", "kurt", PermRead); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Sget("kurt", home+"/secret"); err != nil || got != "classified" {
		t.Errorf("after grant = %q, %v", got, err)
	}
	// Read does not grant write.
	if err := b.Srm("kurt", home+"/secret"); !isAccess(err) {
		t.Errorf("rm with read-only err = %v", err)
	}
	// Non-owner cannot chmod.
	if err := b.Chmod("kurt", home+"/secret", "kurt", PermOwn); !isAccess(err) {
		t.Errorf("foreign chmod err = %v", err)
	}
	// Public grant on collection.
	if err := b.Chmod("mock", home, "public", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Sls("kurt", home); err != nil {
		t.Errorf("public ls err = %v", err)
	}
}

func isAccess(err error) bool {
	var ae *AccessError
	return errors.As(err, &ae)
}

func TestDiskFull(t *testing.T) {
	b, home := testBroker(t)
	b.AddResource(Resource{Name: "tiny", Capacity: 10})
	if err := b.Sput("mock", home+"/a", "123456", "tiny"); err != nil {
		t.Fatal(err)
	}
	err := b.Sput("mock", home+"/b", "123456", "tiny")
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("err = %v, want disk full", err)
	}
	// Overwrite that shrinks is fine.
	if err := b.Sput("mock", home+"/a", "1", "tiny"); err != nil {
		t.Errorf("shrink overwrite err = %v", err)
	}
	used, capacity, err := b.ResourceUsage("tiny")
	if err != nil || used != 1 || capacity != 10 {
		t.Errorf("usage = %d/%d, %v", used, capacity, err)
	}
	// rm releases space.
	if err := b.Srm("mock", home+"/a"); err != nil {
		t.Fatal(err)
	}
	used, _, _ = b.ResourceUsage("tiny")
	if used != 0 {
		t.Errorf("used after rm = %d", used)
	}
	if _, _, err := b.ResourceUsage("ghost"); err == nil {
		t.Error("unknown resource usage returned")
	}
}

func TestPathErrors(t *testing.T) {
	b, home := testBroker(t)
	if _, err := b.Sget("mock", home+"/missing"); err == nil {
		t.Error("missing object read")
	}
	if _, err := b.Sls("mock", "/sdsc/home/ghost"); err == nil {
		t.Error("missing collection listed")
	}
	if err := b.Sput("mock", "/sdsc/home/ghost/x", "v", ""); err == nil {
		t.Error("put into missing collection")
	}
	if err := b.Sput("mock", home+"/x", "v", "ghost-resource"); err == nil {
		t.Error("put to unknown resource")
	}
	if err := b.Mkdir("mock", home+"/../../etc"); err == nil {
		t.Error("path traversal accepted")
	}
	if err := b.Srm("mock", home+"/missing"); err == nil {
		t.Error("rm of missing object")
	}
	if err := b.Chmod("mock", home+"/missing", "kurt", PermRead); err == nil {
		t.Error("chmod of missing path")
	}
}

func TestNameCollisions(t *testing.T) {
	b, home := testBroker(t)
	_ = b.Mkdir("mock", home+"/data")
	if err := b.Mkdir("mock", home+"/data"); err == nil {
		t.Error("duplicate mkdir accepted")
	}
	if err := b.Sput("mock", home+"/data", "x", ""); err == nil {
		t.Error("object over collection accepted")
	}
	_ = b.Sput("mock", home+"/file", "x", "")
	if err := b.Mkdir("mock", home+"/file"); err == nil {
		t.Error("collection over object accepted")
	}
}

func TestMetadata(t *testing.T) {
	b, home := testBroker(t)
	_ = b.Mkdir("mock", home+"/runs")
	_ = b.Sput("mock", home+"/runs/run1.out", "data1", "")
	_ = b.Sput("mock", home+"/runs/run2.out", "data2", "")
	_ = b.AddMetadata("mock", home+"/runs/run1.out", Metadata{Attribute: "application", Value: "gaussian"})
	_ = b.AddMetadata("mock", home+"/runs/run2.out", Metadata{Attribute: "application", Value: "matmul"})
	_ = b.AddMetadata("mock", home+"/runs/run1.out", Metadata{Attribute: "nodes", Value: "8", Unit: "count"})

	md, err := b.GetMetadata("mock", home+"/runs/run1.out")
	if err != nil || len(md) != 2 {
		t.Fatalf("metadata = %v, %v", md, err)
	}
	if md[1].Unit != "count" {
		t.Errorf("unit = %q", md[1].Unit)
	}
	paths, err := b.QueryMetadata("mock", home, "application", "gaussian")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != home+"/runs/run1.out" {
		t.Errorf("query = %v", paths)
	}
	// Query respects ACLs: another user sees nothing.
	b.CreateUser("kurt")
	if _, err := b.QueryMetadata("kurt", home, "application", "gaussian"); !isAccess(err) {
		// lookupCollection succeeds but walk returns nothing readable; the
		// root collection itself is unreadable so walk prunes silently.
		// Accept either access error or empty result.
		paths, err2 := b.QueryMetadata("kurt", home, "application", "gaussian")
		if err2 != nil || len(paths) != 0 {
			t.Errorf("foreign query = %v, %v", paths, err2)
		}
		_ = err
	}
	if _, err := b.GetMetadata("kurt", home+"/runs/run1.out"); !isAccess(err) {
		t.Errorf("foreign metadata read err = %v", err)
	}
	if err := b.AddMetadata("kurt", home+"/runs/run1.out", Metadata{Attribute: "x", Value: "y"}); !isAccess(err) {
		t.Errorf("foreign metadata write err = %v", err)
	}
}

func TestTimeSource(t *testing.T) {
	b, home := testBroker(t)
	fixed := time.Date(2002, 6, 15, 12, 0, 0, 0, time.UTC)
	b.SetTimeSource(func() time.Time { return fixed })
	_ = b.Sput("mock", home+"/dated", "x", "")
	// Creation time is internal; verified indirectly via no panic and
	// deterministic behaviour. Entry does not expose it; this test pins the
	// SetTimeSource path.
}

func TestConcurrentAccess(t *testing.T) {
	b, home := testBroker(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				_ = b.Sput("mock", home+"/f"+string(rune('0'+i)), strings.Repeat("x", j), "")
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				_, _ = b.Sls("mock", home)
			}
		}()
	}
	wg.Wait()
	entries, err := b.Sls("mock", home)
	if err != nil || len(entries) != 8 {
		t.Errorf("entries = %d, %v", len(entries), err)
	}
}

func TestPermissionLattice(t *testing.T) {
	cases := []struct {
		have Permission
		need Permission
		want bool
	}{
		{PermOwn, PermRead, true},
		{PermOwn, PermWrite, true},
		{PermOwn, PermOwn, true},
		{PermWrite, PermRead, true},
		{PermWrite, PermWrite, true},
		{PermWrite, PermOwn, false},
		{PermRead, PermRead, true},
		{PermRead, PermWrite, false},
		{PermNone, PermRead, false},
		{PermNone, PermNone, true},
	}
	for _, tc := range cases {
		if got := tc.have.allows(tc.need); got != tc.want {
			t.Errorf("%q allows %q = %v, want %v", tc.have, tc.need, got, tc.want)
		}
	}
}
