// Package wsdl implements a WSDL 1.1 subset sufficient for the portal
// services: an abstract interface model (port types, operations, typed
// messages), generation of WSDL documents from the model, parsing documents
// back into the model, and the interface-compatibility check that realises
// the paper's central interoperability discipline — IU and SDSC "agreed to a
// common service interface" in WSDL and then implemented it independently
// (Section 3.4). Compatibility checking is what lets a client built against
// the agreed interface bind to either implementation.
package wsdl

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmlutil"
)

// Namespace URIs used in WSDL documents.
const (
	WSDLNS     = "http://schemas.xmlsoap.org/wsdl/"
	SOAPBindNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	XSDNS      = "http://www.w3.org/2001/XMLSchema"
	// ExtNS is the namespace of portal WSDL extension attributes — the
	// idempotency marker WSDL 1.1 lacks. WSDL 1.1 explicitly permits
	// foreign-namespace attributes on its elements, so annotated documents
	// stay valid for stock tooling.
	ExtNS = "urn:gce:wsdl-ext"
)

// Param is one typed message part.
type Param struct {
	// Name is the part name.
	Name string
	// Type is the XSD type local name ("string", "int", "boolean",
	// "double") or the extended names "stringArray" and "xml" for the two
	// compound payloads the portal services exchange.
	Type string
}

// Operation is one abstract operation: a request message and a response
// message.
type Operation struct {
	// Name of the operation.
	Name string
	// Doc is the human-readable description, emitted as wsdl:documentation.
	Doc string
	// Input parameters in order.
	Input []Param
	// Output parameters in order.
	Output []Param
	// Idempotent declares that repeating the operation observes the same
	// effect as invoking it once, so clients may retry it on ambiguous
	// transport failures. WSDL 1.1 has no standard marker for it, so it is
	// rendered as the ExtNS idempotent="true" extension attribute on the
	// portType operation — which is how a federating gateway that only
	// ever sees a provider's published WSDL learns which operations are
	// safe to fail over to another replica.
	Idempotent bool
}

// Interface is the abstract service contract: what the paper's groups
// agreed on before implementing independently.
type Interface struct {
	// Name is the port type name, e.g. "BatchScriptGenerator".
	Name string
	// TargetNS is the service namespace URI, e.g. "urn:batchscript".
	TargetNS string
	// Doc is the interface documentation.
	Doc string
	// Operations in declaration order.
	Operations []Operation
}

// Operation returns the named operation, or nil.
func (i *Interface) Operation(name string) *Operation {
	for k := range i.Operations {
		if i.Operations[k].Name == name {
			return &i.Operations[k]
		}
	}
	return nil
}

// OperationNames returns the sorted operation names; used by the
// method-count analyses in the context-manager experiments.
func (i *Interface) OperationNames() []string {
	names := make([]string, 0, len(i.Operations))
	for _, op := range i.Operations {
		names = append(names, op.Name)
	}
	sort.Strings(names)
	return names
}

// Service is a concrete deployment of an interface at an endpoint — the
// wsdl:service/port element pair.
type Service struct {
	// Name is the service name, e.g. "SDSCBatchScriptService".
	Name string
	// Interface is the abstract contract the endpoint implements.
	Interface *Interface
	// Endpoint is the SOAP address location URL.
	Endpoint string
}

// Document renders a complete WSDL document for the service: types (empty —
// parameters use flat XSD types plus the two portal compound types),
// messages, portType, SOAP binding, and service/port with the endpoint
// address.
func (s *Service) Document() *xmlutil.Element {
	iface := s.Interface
	def := xmlutil.NewNS(WSDLNS, "definitions").
		SetAttr("name", s.Name).
		SetAttr("targetNamespace", iface.TargetNS)
	if iface.Doc != "" {
		def.Add(xmlutil.NewNS(WSDLNS, "documentation")).Children[len(def.Children)-1].Text = iface.Doc
	}
	// Messages.
	for _, op := range iface.Operations {
		def.Add(messageElement(op.Name+"Request", op.Input))
		def.Add(messageElement(op.Name+"Response", op.Output))
	}
	// Port type.
	pt := xmlutil.NewNS(WSDLNS, "portType").SetAttr("name", iface.Name)
	for _, op := range iface.Operations {
		opEl := xmlutil.NewNS(WSDLNS, "operation").SetAttr("name", op.Name)
		if op.Idempotent {
			opEl.SetAttrNS(ExtNS, "idempotent", "true")
		}
		if op.Doc != "" {
			d := xmlutil.NewNS(WSDLNS, "documentation")
			d.Text = op.Doc
			opEl.Add(d)
		}
		opEl.Add(xmlutil.NewNS(WSDLNS, "input").SetAttr("message", "tns:"+op.Name+"Request"))
		opEl.Add(xmlutil.NewNS(WSDLNS, "output").SetAttr("message", "tns:"+op.Name+"Response"))
		pt.Add(opEl)
	}
	def.Add(pt)
	// SOAP RPC binding.
	bind := xmlutil.NewNS(WSDLNS, "binding").
		SetAttr("name", iface.Name+"SoapBinding").
		SetAttr("type", "tns:"+iface.Name)
	bind.Add(xmlutil.NewNS(SOAPBindNS, "binding").
		SetAttr("style", "rpc").
		SetAttr("transport", "http://schemas.xmlsoap.org/soap/http"))
	for _, op := range iface.Operations {
		opEl := xmlutil.NewNS(WSDLNS, "operation").SetAttr("name", op.Name)
		opEl.Add(xmlutil.NewNS(SOAPBindNS, "operation").SetAttr("soapAction", iface.TargetNS+"#"+op.Name))
		in := xmlutil.NewNS(WSDLNS, "input")
		in.Add(xmlutil.NewNS(SOAPBindNS, "body").SetAttr("use", "encoded").SetAttr("namespace", iface.TargetNS))
		out := xmlutil.NewNS(WSDLNS, "output")
		out.Add(xmlutil.NewNS(SOAPBindNS, "body").SetAttr("use", "encoded").SetAttr("namespace", iface.TargetNS))
		opEl.Add(in, out)
		bind.Add(opEl)
	}
	def.Add(bind)
	// Service + port.
	svc := xmlutil.NewNS(WSDLNS, "service").SetAttr("name", s.Name)
	port := xmlutil.NewNS(WSDLNS, "port").
		SetAttr("name", iface.Name+"Port").
		SetAttr("binding", "tns:"+iface.Name+"SoapBinding")
	port.Add(xmlutil.NewNS(SOAPBindNS, "address").SetAttr("location", s.Endpoint))
	svc.Add(port)
	def.Add(svc)
	return def
}

// xmlDecl prefixes every serialised WSDL document.
const xmlDecl = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// AppendTo streams the complete WSDL document (XML declaration included)
// into b without materialising the element tree Document builds. The
// output is byte-identical to the tree path; TestAppendToMatchesDocument
// pins the equivalence.
func (s *Service) AppendTo(b *bytes.Buffer) {
	iface := s.Interface
	w := xmlutil.AcquireWriter(b)
	defer w.Release()
	w.Raw(xmlDecl)
	w.Start(WSDLNS, "definitions")
	w.Attr("", "name", s.Name)
	w.Attr("", "targetNamespace", iface.TargetNS)
	if iface.Doc != "" {
		w.Start(WSDLNS, "documentation")
		w.Text(iface.Doc)
		w.End()
	}
	// Messages.
	for _, op := range iface.Operations {
		writeMessage(w, op.Name+"Request", op.Input)
		writeMessage(w, op.Name+"Response", op.Output)
	}
	// Port type.
	w.Start(WSDLNS, "portType")
	w.Attr("", "name", iface.Name)
	for _, op := range iface.Operations {
		w.Start(WSDLNS, "operation")
		w.Attr("", "name", op.Name)
		if op.Idempotent {
			w.Attr(ExtNS, "idempotent", "true")
		}
		if op.Doc != "" {
			w.Start(WSDLNS, "documentation")
			w.Text(op.Doc)
			w.End()
		}
		w.Start(WSDLNS, "input")
		w.Attr("", "message", "tns:"+op.Name+"Request")
		w.End()
		w.Start(WSDLNS, "output")
		w.Attr("", "message", "tns:"+op.Name+"Response")
		w.End()
		w.End()
	}
	w.End()
	// SOAP RPC binding.
	w.Start(WSDLNS, "binding")
	w.Attr("", "name", iface.Name+"SoapBinding")
	w.Attr("", "type", "tns:"+iface.Name)
	w.Start(SOAPBindNS, "binding")
	w.Attr("", "style", "rpc")
	w.Attr("", "transport", "http://schemas.xmlsoap.org/soap/http")
	w.End()
	for _, op := range iface.Operations {
		w.Start(WSDLNS, "operation")
		w.Attr("", "name", op.Name)
		w.Start(SOAPBindNS, "operation")
		w.Attr("", "soapAction", iface.TargetNS+"#"+op.Name)
		w.End()
		w.Start(WSDLNS, "input")
		w.Start(SOAPBindNS, "body")
		w.Attr("", "use", "encoded")
		w.Attr("", "namespace", iface.TargetNS)
		w.End()
		w.End()
		w.Start(WSDLNS, "output")
		w.Start(SOAPBindNS, "body")
		w.Attr("", "use", "encoded")
		w.Attr("", "namespace", iface.TargetNS)
		w.End()
		w.End()
		w.End()
	}
	w.End()
	// Service + port.
	w.Start(WSDLNS, "service")
	w.Attr("", "name", s.Name)
	w.Start(WSDLNS, "port")
	w.Attr("", "name", iface.Name+"Port")
	w.Attr("", "binding", "tns:"+iface.Name+"SoapBinding")
	w.Start(SOAPBindNS, "address")
	w.Attr("", "location", s.Endpoint)
	w.End()
	w.End()
	w.End()
	w.End()
}

func writeMessage(w *xmlutil.Writer, name string, params []Param) {
	w.Start(WSDLNS, "message")
	w.Attr("", "name", name)
	for _, p := range params {
		w.Start(WSDLNS, "part")
		w.Attr("", "name", p.Name)
		w.Attr("", "type", typeQName(p.Type))
		w.End()
	}
	w.End()
}

// Render returns the serialised WSDL document, streamed through the
// direct-to-buffer writer (Document is kept as the model form and as the
// differential-test oracle).
func (s *Service) Render() string {
	b := xmlutil.GetBuffer()
	defer xmlutil.PutBuffer(b)
	s.AppendTo(b)
	return b.String()
}

func messageElement(name string, params []Param) *xmlutil.Element {
	msg := xmlutil.NewNS(WSDLNS, "message").SetAttr("name", name)
	for _, p := range params {
		part := xmlutil.NewNS(WSDLNS, "part").
			SetAttr("name", p.Name).
			SetAttr("type", typeQName(p.Type))
		msg.Add(part)
	}
	return msg
}

func typeQName(t string) string {
	switch t {
	case "stringArray":
		return "tns:ArrayOfString"
	case "xml":
		return "tns:XMLDocument"
	default:
		return "xsd:" + t
	}
}

func typeLocal(qname string) string {
	local := qname
	if i := strings.LastIndex(qname, ":"); i >= 0 {
		local = qname[i+1:]
	}
	switch local {
	case "ArrayOfString":
		return "stringArray"
	case "XMLDocument":
		return "xml"
	default:
		return local
	}
}

// Parse reads a WSDL document back into a Service with its Interface.
func Parse(doc string) (*Service, error) {
	root, err := xmlutil.ParseString(doc)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	return FromElement(root)
}

// FromElement converts a parsed definitions element into a Service.
func FromElement(root *xmlutil.Element) (*Service, error) {
	if root.Name != "definitions" {
		return nil, fmt.Errorf("wsdl: root element %q is not definitions", root.Name)
	}
	iface := &Interface{TargetNS: root.AttrDefault("targetNamespace", "")}
	// Index messages.
	messages := map[string][]Param{}
	for _, msg := range root.ChildrenNamed("message") {
		var params []Param
		for _, part := range msg.ChildrenNamed("part") {
			params = append(params, Param{
				Name: part.AttrDefault("name", ""),
				Type: typeLocal(part.AttrDefault("type", "xsd:string")),
			})
		}
		messages[msg.AttrDefault("name", "")] = params
	}
	pt := root.Child("portType")
	if pt == nil {
		return nil, fmt.Errorf("wsdl: document has no portType")
	}
	iface.Name = pt.AttrDefault("name", "")
	if d := root.Child("documentation"); d != nil {
		iface.Doc = d.Text
	}
	for _, opEl := range pt.ChildrenNamed("operation") {
		op := Operation{
			Name:       opEl.AttrDefault("name", ""),
			Idempotent: opEl.AttrDefault("idempotent", "") == "true",
		}
		if d := opEl.Child("documentation"); d != nil {
			op.Doc = d.Text
		}
		if in := opEl.Child("input"); in != nil {
			op.Input = messages[localPart(in.AttrDefault("message", ""))]
		}
		if out := opEl.Child("output"); out != nil {
			op.Output = messages[localPart(out.AttrDefault("message", ""))]
		}
		iface.Operations = append(iface.Operations, op)
	}
	svc := &Service{Interface: iface}
	if svcEl := root.Child("service"); svcEl != nil {
		svc.Name = svcEl.AttrDefault("name", "")
		if port := svcEl.Child("port"); port != nil {
			if addr := port.Child("address"); addr != nil {
				svc.Endpoint = addr.AttrDefault("location", "")
			}
		}
	}
	if svc.Name == "" {
		svc.Name = iface.Name + "Service"
	}
	return svc, nil
}

func localPart(qname string) string {
	if i := strings.LastIndex(qname, ":"); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// Incompatibility describes one way an implementation diverges from an
// agreed interface.
type Incompatibility struct {
	// Operation is the affected operation name.
	Operation string
	// Reason explains the divergence.
	Reason string
}

func (ic Incompatibility) String() string {
	return fmt.Sprintf("%s: %s", ic.Operation, ic.Reason)
}

// CheckCompatible verifies that impl can serve every operation a client of
// the agreed interface may invoke: every agreed operation must exist in
// impl with identical parameter names and types in identical order, in the
// same target namespace. Extra operations in impl are allowed (a provider
// may offer more). It returns the list of divergences, empty when
// compatible.
func CheckCompatible(agreed, impl *Interface) []Incompatibility {
	var problems []Incompatibility
	if agreed.TargetNS != impl.TargetNS {
		problems = append(problems, Incompatibility{
			Operation: "*",
			Reason:    fmt.Sprintf("target namespace %q differs from agreed %q", impl.TargetNS, agreed.TargetNS),
		})
	}
	for _, op := range agreed.Operations {
		got := impl.Operation(op.Name)
		if got == nil {
			problems = append(problems, Incompatibility{Operation: op.Name, Reason: "operation missing"})
			continue
		}
		problems = append(problems, compareParams(op.Name, "input", op.Input, got.Input)...)
		problems = append(problems, compareParams(op.Name, "output", op.Output, got.Output)...)
	}
	return problems
}

func compareParams(opName, dir string, agreed, impl []Param) []Incompatibility {
	var problems []Incompatibility
	if len(agreed) != len(impl) {
		return []Incompatibility{{
			Operation: opName,
			Reason:    fmt.Sprintf("%s has %d parts, agreed interface has %d", dir, len(impl), len(agreed)),
		}}
	}
	for i := range agreed {
		if agreed[i].Name != impl[i].Name {
			problems = append(problems, Incompatibility{
				Operation: opName,
				Reason:    fmt.Sprintf("%s part %d named %q, agreed %q", dir, i, impl[i].Name, agreed[i].Name),
			})
		}
		if agreed[i].Type != impl[i].Type {
			problems = append(problems, Incompatibility{
				Operation: opName,
				Reason:    fmt.Sprintf("%s part %q has type %q, agreed %q", dir, agreed[i].Name, impl[i].Type, agreed[i].Type),
			})
		}
	}
	return problems
}

// Compatible reports whether impl can serve clients of the agreed
// interface.
func Compatible(agreed, impl *Interface) bool {
	return len(CheckCompatible(agreed, impl)) == 0
}
