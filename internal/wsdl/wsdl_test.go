package wsdl

import (
	"bytes"
	"strings"
	"testing"
)

// scriptGenInterface is the common batch-script interface the two groups
// agreed on (Section 3.4), reused across tests.
func scriptGenInterface() *Interface {
	return &Interface{
		Name:     "BatchScriptGenerator",
		TargetNS: "urn:gce:batchscript",
		Doc:      "Generates batch queuing scripts for HPC schedulers.",
		Operations: []Operation{
			{
				Name:       "listSchedulers",
				Doc:        "Lists the queuing systems this generator supports.",
				Output:     []Param{{Name: "schedulers", Type: "stringArray"}},
				Idempotent: true,
			},
			{
				Name: "generateScript",
				Input: []Param{
					{Name: "scheduler", Type: "string"},
					{Name: "jobName", Type: "string"},
					{Name: "executable", Type: "string"},
					{Name: "nodes", Type: "int"},
					{Name: "wallTimeSeconds", Type: "int"},
				},
				Output: []Param{{Name: "script", Type: "string"}},
			},
		},
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	svc := &Service{
		Name:      "SDSCBatchScriptService",
		Interface: scriptGenInterface(),
		Endpoint:  "http://hotpage.sdsc.edu:8080/soap/batchscript",
	}
	doc := svc.Render()
	if !strings.Contains(doc, "portType") || !strings.Contains(doc, "SDSCBatchScriptService") {
		t.Fatalf("document missing structure:\n%s", doc)
	}
	parsed, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != svc.Name {
		t.Errorf("name = %q", parsed.Name)
	}
	if parsed.Endpoint != svc.Endpoint {
		t.Errorf("endpoint = %q", parsed.Endpoint)
	}
	if parsed.Interface.Name != "BatchScriptGenerator" {
		t.Errorf("iface = %q", parsed.Interface.Name)
	}
	if parsed.Interface.TargetNS != "urn:gce:batchscript" {
		t.Errorf("ns = %q", parsed.Interface.TargetNS)
	}
	if len(parsed.Interface.Operations) != 2 {
		t.Fatalf("ops = %d", len(parsed.Interface.Operations))
	}
	gen := parsed.Interface.Operation("generateScript")
	if gen == nil {
		t.Fatal("generateScript missing")
	}
	if len(gen.Input) != 5 || gen.Input[3].Name != "nodes" || gen.Input[3].Type != "int" {
		t.Errorf("input = %+v", gen.Input)
	}
	ls := parsed.Interface.Operation("listSchedulers")
	if ls == nil || len(ls.Output) != 1 || ls.Output[0].Type != "stringArray" {
		t.Errorf("listSchedulers output = %+v", ls)
	}
}

func TestCompatibleIdentical(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	if problems := CheckCompatible(agreed, impl); len(problems) != 0 {
		t.Errorf("identical interfaces flagged: %v", problems)
	}
	if !Compatible(agreed, impl) {
		t.Error("Compatible = false for identical interfaces")
	}
}

func TestCompatibleExtraOperationsAllowed(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.Operations = append(impl.Operations, Operation{Name: "extraDiagnostics"})
	if !Compatible(agreed, impl) {
		t.Error("extra provider operations must not break compatibility")
	}
}

func TestIncompatibleMissingOperation(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.Operations = impl.Operations[:1]
	problems := CheckCompatible(agreed, impl)
	if len(problems) != 1 || problems[0].Operation != "generateScript" {
		t.Errorf("problems = %v", problems)
	}
	if !strings.Contains(problems[0].String(), "missing") {
		t.Errorf("reason = %q", problems[0].Reason)
	}
}

func TestIncompatibleTypeDrift(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.Operations[1].Input[3].Type = "string" // nodes int -> string
	problems := CheckCompatible(agreed, impl)
	if len(problems) != 1 {
		t.Fatalf("problems = %v", problems)
	}
	if !strings.Contains(problems[0].Reason, `"string"`) {
		t.Errorf("reason = %q", problems[0].Reason)
	}
}

func TestIncompatibleParamRename(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.Operations[1].Input[0].Name = "queueSystem"
	if Compatible(agreed, impl) {
		t.Error("renamed parameter must break compatibility")
	}
}

func TestIncompatibleArityChange(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.Operations[1].Input = impl.Operations[1].Input[:3]
	problems := CheckCompatible(agreed, impl)
	if len(problems) != 1 || !strings.Contains(problems[0].Reason, "parts") {
		t.Errorf("problems = %v", problems)
	}
}

func TestIncompatibleNamespace(t *testing.T) {
	agreed := scriptGenInterface()
	impl := scriptGenInterface()
	impl.TargetNS = "urn:other"
	problems := CheckCompatible(agreed, impl)
	if len(problems) == 0 || problems[0].Operation != "*" {
		t.Errorf("problems = %v", problems)
	}
}

func TestOperationNamesSorted(t *testing.T) {
	i := scriptGenInterface()
	names := i.OperationNames()
	if len(names) != 2 || names[0] != "generateScript" || names[1] != "listSchedulers" {
		t.Errorf("names = %v", names)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("<notwsdl/>"); err == nil {
		t.Error("non-WSDL root accepted")
	}
	if _, err := Parse("garbage"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(`<definitions xmlns="http://schemas.xmlsoap.org/wsdl/"/>`); err == nil {
		t.Error("document without portType accepted")
	}
}

func TestParseDefaultsServiceName(t *testing.T) {
	doc := `<definitions xmlns="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:x">
	  <portType name="Thing"><operation name="go"/></portType>
	</definitions>`
	svc, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name != "ThingService" {
		t.Errorf("defaulted name = %q", svc.Name)
	}
}

func TestXMLDocumentType(t *testing.T) {
	iface := &Interface{
		Name:     "Globusrun",
		TargetNS: "urn:globusrun",
		Operations: []Operation{{
			Name:   "submitXML",
			Input:  []Param{{Name: "request", Type: "xml"}},
			Output: []Param{{Name: "results", Type: "xml"}},
		}},
	}
	svc := &Service{Name: "G", Interface: iface, Endpoint: "http://x/soap"}
	parsed, err := Parse(svc.Render())
	if err != nil {
		t.Fatal(err)
	}
	op := parsed.Interface.Operation("submitXML")
	if op.Input[0].Type != "xml" || op.Output[0].Type != "xml" {
		t.Errorf("xml type lost: %+v", op)
	}
}

// TestIdempotentPreserved pins the idempotency extension attribute: the
// flag survives a render/parse round trip (so a gateway reading published
// WSDL recovers it) and absent markers parse as false.
func TestIdempotentPreserved(t *testing.T) {
	svc := &Service{Name: "S", Interface: scriptGenInterface(), Endpoint: "http://e"}
	doc := svc.Render()
	if !strings.Contains(doc, `idempotent="true"`) {
		t.Fatalf("idempotent marker not rendered:\n%s", doc)
	}
	parsed, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Interface.Operation("listSchedulers").Idempotent {
		t.Error("idempotent flag lost on round trip")
	}
	if parsed.Interface.Operation("generateScript").Idempotent {
		t.Error("unmarked operation parsed as idempotent")
	}
}

func TestDocPreserved(t *testing.T) {
	svc := &Service{Name: "S", Interface: scriptGenInterface(), Endpoint: "http://e"}
	parsed, err := Parse(svc.Render())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Interface.Doc == "" {
		t.Error("interface documentation lost")
	}
	if parsed.Interface.Operation("listSchedulers").Doc == "" {
		t.Error("operation documentation lost")
	}
}

// TestAppendToMatchesDocument pins the streamed WSDL writer to the
// element-tree renderer: both paths must emit byte-identical documents,
// across empty, minimal, and compound-typed interfaces.
func TestAppendToMatchesDocument(t *testing.T) {
	services := []*Service{
		{Name: "SDSCBatchScriptService", Interface: scriptGenInterface(),
			Endpoint: "http://hotpage.sdsc.edu:8080/soap/batchscript"},
		{Name: "Empty", Interface: &Interface{Name: "Nothing", TargetNS: "urn:none"}, Endpoint: "http://x"},
		{Name: "Compound", Interface: &Interface{
			Name: "C", TargetNS: "urn:compound",
			Operations: []Operation{{
				Name:   "mix",
				Input:  []Param{{Name: "doc", Type: "xml"}, {Name: "tags", Type: "stringArray"}},
				Output: []Param{{Name: "out", Type: "xml"}},
			}},
		}, Endpoint: "http://c/soap?q=a&b=c"},
	}
	for _, svc := range services {
		var streamed bytes.Buffer
		svc.AppendTo(&streamed)
		tree := xmlDecl + svc.Document().Render()
		if streamed.String() != tree {
			t.Errorf("%s: streamed WSDL differs from tree render\nstream: %s\ntree:   %s",
				svc.Name, streamed.String(), tree)
		}
		if svc.Render() != tree {
			t.Errorf("%s: Render no longer matches tree path", svc.Name)
		}
		// And the streamed form must parse back into the same model.
		back, err := Parse(streamed.String())
		if err != nil {
			t.Fatalf("%s: streamed WSDL does not parse: %v", svc.Name, err)
		}
		if !Compatible(svc.Interface, back.Interface) || !Compatible(back.Interface, svc.Interface) {
			t.Errorf("%s: streamed WSDL parsed into an incompatible interface", svc.Name)
		}
	}
}
