package portlet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	entries := []Entry{
		{Name: "gateway-ui", Type: "WebFormPortlet", URL: "http://gateway.iu.edu/forms", Title: "Gateway"},
		{Name: "hotpage-status", Type: "WebPagePortlet", URL: "http://hotpage.sdsc.edu/status", Title: "HotPage"},
	}
	doc := RenderRegistry(entries)
	parsed, err := ParseRegistry(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0].Name != "gateway-ui" || parsed[1].Type != "WebPagePortlet" {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestRegistryErrors(t *testing.T) {
	bad := []string{
		"garbage",
		"<wrongroot/>",
		`<registry><portlet-entry name="x"/></registry>`,                                                // no url
		`<registry><portlet-entry name="x" type="Rogue"><url>http://u</url></portlet-entry></registry>`, // bad type
	}
	for i, doc := range bad {
		if _, err := ParseRegistry(doc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Title defaults to name.
	entries, err := ParseRegistry(`<registry><portlet-entry name="x"><url>http://u</url></portlet-entry></registry>`)
	if err != nil || entries[0].Title != "x" || entries[0].Type != "WebPagePortlet" {
		t.Errorf("defaults = %+v, %v", entries, err)
	}
}

// remoteApp is a small stateful form application standing in for the
// legacy Gateway user interface: it counts visits per session cookie and
// serves linked pages.
func remoteApp(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		ck, err := r.Cookie("JSESSIONID")
		if err != nil {
			http.SetCookie(w, &http.Cookie{Name: "JSESSIONID", Value: "sess-1", Path: "/"})
			fmt.Fprint(w, `<p>new session</p><a href="/page2">next</a>`)
			return
		}
		fmt.Fprintf(w, `<p>resumed %s</p><a href="/page2">next</a>`, ck.Value)
	})
	mux.HandleFunc("/page2", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<form action="/submit" method="POST"><input name="q"/></form>`)
	})
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		_ = r.ParseForm()
		fmt.Fprintf(w, "<p>you said %s</p>", r.PostForm.Get("q"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRenderPageAggregation(t *testing.T) {
	remote := remoteApp(t)
	c := NewContainer(remote.Client(), "/portal")
	_ = c.Register(Entry{Name: "app", Type: "WebFormPortlet", URL: remote.URL + "/", Title: "Gateway UI"})
	_ = c.Register(Entry{Name: "static", Type: "WebPagePortlet", URL: remote.URL + "/page2", Title: "Static"})

	page := c.RenderPage("cyoun")
	if strings.Count(page, `<table class="portlet"`) != 2 {
		t.Errorf("nested tables = %d:\n%s", strings.Count(page, `<table class="portlet"`), page)
	}
	if !strings.Contains(page, "Gateway UI") || !strings.Contains(page, "new session") {
		t.Errorf("page:\n%s", page)
	}
	// In-memory copy kept.
	if copyHTML, ok := c.CachedCopy("cyoun", "app"); !ok || !strings.Contains(copyHTML, "new session") {
		t.Error("in-memory copy missing")
	}
}

func TestCustomization(t *testing.T) {
	remote := remoteApp(t)
	c := NewContainer(remote.Client(), "")
	_ = c.Register(Entry{Name: "a", Type: "WebPagePortlet", URL: remote.URL + "/", Title: "A"})
	_ = c.Register(Entry{Name: "b", Type: "WebPagePortlet", URL: remote.URL + "/page2", Title: "B"})
	// Default layout: everything.
	if got := c.Layout("new-user"); len(got) != 2 {
		t.Errorf("default layout = %v", got)
	}
	if err := c.Customize("cyoun", []string{"b"}); err != nil {
		t.Fatal(err)
	}
	page := c.RenderPage("cyoun")
	if strings.Contains(page, ">A<") || !strings.Contains(page, ">B<") {
		t.Errorf("customized page:\n%s", page)
	}
	if err := c.Customize("cyoun", []string{"ghost"}); err == nil {
		t.Error("unknown portlet accepted in layout")
	}
	if err := c.Register(Entry{Name: "a", URL: "http://x"}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// TestSessionStateMaintained verifies WebFormPortlet feature 2: cookies
// from the remote server persist across portlet fetches per user.
func TestSessionStateMaintained(t *testing.T) {
	remote := remoteApp(t)
	c := NewContainer(remote.Client(), "")
	_ = c.Register(Entry{Name: "app", Type: "WebFormPortlet", URL: remote.URL + "/", Title: "App"})
	first := c.RenderPage("cyoun")
	if !strings.Contains(first, "new session") {
		t.Fatalf("first visit:\n%s", first)
	}
	second := c.RenderPage("cyoun")
	if !strings.Contains(second, "resumed sess-1") {
		t.Errorf("second visit did not resume session:\n%s", second)
	}
	// Sessions are per-user.
	other := c.RenderPage("marpierce")
	if !strings.Contains(other, "new session") {
		t.Errorf("other user inherited session:\n%s", other)
	}
}

// TestURLRemapping verifies WebFormPortlet feature 3: links and form
// actions route back through the portlet window.
func TestURLRemapping(t *testing.T) {
	remote := remoteApp(t)
	c := NewContainer(remote.Client(), "/portal")
	_ = c.Register(Entry{Name: "app", Type: "WebFormPortlet", URL: remote.URL + "/", Title: "App"})
	page := c.RenderPage("u")
	wantLink := "/portal/portlet?name=app&amp;url=" + url.QueryEscape(remote.URL+"/page2")
	if !strings.Contains(page, wantLink) {
		t.Errorf("remapped link %q missing in:\n%s", wantLink, page)
	}
	// Plain WebPagePortlet does not remap.
	c2 := NewContainer(remote.Client(), "/portal")
	_ = c2.Register(Entry{Name: "app", Type: "WebPagePortlet", URL: remote.URL + "/", Title: "App"})
	page2 := c2.RenderPage("u")
	if strings.Contains(page2, "/portal/portlet?name=app") {
		t.Error("WebPagePortlet content was remapped")
	}
	// Anchors and javascript links are left alone.
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<a href="#top">top</a><a href="javascript:void(0)">js</a><a href="">empty</a>`)
	})
	special := httptest.NewServer(mux)
	defer special.Close()
	c3 := NewContainer(special.Client(), "/portal")
	_ = c3.Register(Entry{Name: "s", Type: "WebFormPortlet", URL: special.URL + "/", Title: "S"})
	page3 := c3.RenderPage("u")
	if !strings.Contains(page3, `href="#top"`) || !strings.Contains(page3, `href="javascript:void(0)"`) {
		t.Errorf("special links rewritten:\n%s", page3)
	}
}

// TestNavigationInsideWindow drives the full flow over the container's
// HTTP surface: aggregate page -> follow remapped link -> submit the form
// through the portlet (WebFormPortlet feature 1).
func TestNavigationInsideWindow(t *testing.T) {
	remote := remoteApp(t)
	c := NewContainer(remote.Client(), "")
	_ = c.Register(Entry{Name: "app", Type: "WebFormPortlet", URL: remote.URL + "/", Title: "App"})
	portal := httptest.NewServer(c)
	defer portal.Close()

	// Follow the remapped link to page2 inside the portlet window.
	resp, err := portal.Client().Get(portal.URL + "/portlet?name=app&user=cyoun&url=" +
		url.QueryEscape(remote.URL+"/page2"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "portlet?name=app") || !strings.Contains(string(body), url.QueryEscape(remote.URL+"/submit")) {
		t.Fatalf("page2 in window:\n%s", body)
	}
	// Post the form through the portlet.
	resp, err = portal.Client().Post(
		portal.URL+"/portlet?name=app&user=cyoun&url="+url.QueryEscape(remote.URL+"/submit"),
		"application/x-www-form-urlencoded",
		strings.NewReader("q=interop"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "you said interop") {
		t.Errorf("form post result:\n%s", body)
	}
	// Unknown portlet 404s.
	resp, _ = portal.Client().Get(portal.URL + "/portlet?name=ghost")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("ghost portlet status = %d", resp.StatusCode)
	}
	// POST to a WebPagePortlet is refused.
	_ = c.Register(Entry{Name: "static", Type: "WebPagePortlet", URL: remote.URL + "/page2", Title: "S"})
	resp, _ = portal.Client().Post(portal.URL+"/portlet?name=static", "application/x-www-form-urlencoded", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to WebPagePortlet status = %d", resp.StatusCode)
	}
}

func TestFetchFailureRendersInline(t *testing.T) {
	c := NewContainer(&http.Client{}, "")
	_ = c.Register(Entry{Name: "dead", Type: "WebPagePortlet", URL: "http://127.0.0.1:1/nothing", Title: "Dead"})
	page := c.RenderPage("u")
	if !strings.Contains(page, "portlet error") {
		t.Errorf("failure not inlined:\n%s", page)
	}
}
