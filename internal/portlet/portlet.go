// Package portlet implements the portlet aggregation layer of Section 5.4,
// modelled on Jetspeed: a registry configured from an xreg-style XML file,
// a container that composes portlets into "a collection of nested HTML
// tables, each containing material loaded from the specified content
// server", per-user customisation ("users can customize their portal
// displays by decorating them with only those portlets that interest
// them"), and two portlet types:
//
//   - WebPagePortlet loads a remote URL and keeps an in-memory copy for
//     reformatting.
//   - WebFormPortlet extends it with the paper's three features: it "can
//     post HTML Form parameters", "maintains session state with remote
//     Tomcat servers", and "remaps URLs in the remote page, so that the
//     content of pages loaded from followed links and clicked buttons is
//     loaded inside the portlet window".
package portlet

import (
	"fmt"
	"html"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"regexp"
	"strings"
	"sync"

	"repro/internal/xmlutil"
)

// Entry is one registered portlet definition (an xreg entry).
type Entry struct {
	// Name is the unique portlet name.
	Name string
	// Type is "WebPagePortlet" or "WebFormPortlet".
	Type string
	// URL is the remote content source.
	URL string
	// Title is the display title (defaults to Name).
	Title string
}

// ParseRegistry reads an xreg-style registry document:
//
//	<registry>
//	  <portlet-entry name="..." type="WebFormPortlet">
//	    <url>http://...</url><title>...</title>
//	  </portlet-entry>
//	</registry>
func ParseRegistry(doc string) ([]Entry, error) {
	root, err := xmlutil.ParseString(doc)
	if err != nil {
		return nil, fmt.Errorf("portlet: %w", err)
	}
	if root.Name != "registry" {
		return nil, fmt.Errorf("portlet: root element %q is not registry", root.Name)
	}
	var out []Entry
	for _, el := range root.ChildrenNamed("portlet-entry") {
		e := Entry{
			Name:  el.AttrDefault("name", ""),
			Type:  el.AttrDefault("type", "WebPagePortlet"),
			URL:   el.ChildText("url"),
			Title: el.ChildText("title"),
		}
		if e.Name == "" || e.URL == "" {
			return nil, fmt.Errorf("portlet: entry missing name or url")
		}
		if e.Title == "" {
			e.Title = e.Name
		}
		if e.Type != "WebPagePortlet" && e.Type != "WebFormPortlet" {
			return nil, fmt.Errorf("portlet: unknown portlet type %q", e.Type)
		}
		out = append(out, e)
	}
	return out, nil
}

// RenderRegistry emits the xreg document for a set of entries.
func RenderRegistry(entries []Entry) string {
	root := xmlutil.New("registry")
	for _, e := range entries {
		el := xmlutil.New("portlet-entry").SetAttr("name", e.Name).SetAttr("type", e.Type)
		el.AddText("url", e.URL)
		el.AddText("title", e.Title)
		root.Add(el)
	}
	return root.Render()
}

// Container is the portlet container: registry plus per-user layout and
// per-user remote sessions.
type Container struct {
	// Client fetches remote content.
	Client *http.Client
	// BasePath is the container's mount path, used in remapped URLs.
	BasePath string

	mu       sync.RWMutex
	entries  map[string]Entry
	order    []string
	layouts  map[string][]string       // user -> chosen portlet names
	jars     map[string]http.CookieJar // user|portlet -> session jar
	lastURLs map[string]string         // user|portlet -> current page URL
	cache    map[string]string         // user|portlet -> in-memory copy
}

// NewContainer creates an empty container.
func NewContainer(client *http.Client, basePath string) *Container {
	if client == nil {
		client = http.DefaultClient
	}
	return &Container{
		Client:   client,
		BasePath: strings.TrimSuffix(basePath, "/"),
		entries:  map[string]Entry{},
		layouts:  map[string][]string{},
		jars:     map[string]http.CookieJar{},
		lastURLs: map[string]string{},
		cache:    map[string]string{},
	}
}

// Register adds a portlet entry (administrator action: "Portal
// administrators decide which content sources to provide").
func (c *Container) Register(e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[e.Name]; dup {
		return fmt.Errorf("portlet: %q already registered", e.Name)
	}
	c.entries[e.Name] = e
	c.order = append(c.order, e.Name)
	return nil
}

// LoadRegistry registers every entry of an xreg document.
func (c *Container) LoadRegistry(doc string) error {
	entries, err := ParseRegistry(doc)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := c.Register(e); err != nil {
			return err
		}
	}
	return nil
}

// Entries lists registered portlets in registration order.
func (c *Container) Entries() []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Entry, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.entries[n])
	}
	return out
}

// Customize sets a user's chosen portlets; unknown names are rejected.
func (c *Container) Customize(user string, portlets []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range portlets {
		if _, ok := c.entries[n]; !ok {
			return fmt.Errorf("portlet: unknown portlet %q", n)
		}
	}
	c.layouts[user] = append([]string(nil), portlets...)
	return nil
}

// Layout returns a user's chosen portlets (all registered when the user
// never customised).
func (c *Container) Layout(user string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if l, ok := c.layouts[user]; ok {
		return append([]string(nil), l...)
	}
	return append([]string(nil), c.order...)
}

func sessionKey(user, portlet string) string { return user + "|" + portlet }

// jarFor returns (creating) the user+portlet cookie jar implementing the
// "maintains session state with remote Tomcat servers" feature.
func (c *Container) jarFor(user, portlet string) http.CookieJar {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := sessionKey(user, portlet)
	if j, ok := c.jars[key]; ok {
		return j
	}
	j, err := cookiejar.New(nil)
	if err != nil {
		panic("portlet: cookiejar: " + err.Error())
	}
	c.jars[key] = j
	return j
}

// fetch performs one remote request on behalf of a user's portlet,
// carrying its session cookies, and returns the (remapped) content.
func (c *Container) fetch(user string, e Entry, method, target string, form url.Values) (string, error) {
	jar := c.jarFor(user, e.Name)
	var req *http.Request
	var err error
	if method == http.MethodPost {
		req, err = http.NewRequest(method, target, strings.NewReader(form.Encode()))
		if req != nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		req, err = http.NewRequest(method, target, nil)
	}
	if err != nil {
		return "", fmt.Errorf("portlet: %s: %w", e.Name, err)
	}
	u, err := url.Parse(target)
	if err != nil {
		return "", err
	}
	for _, ck := range jar.Cookies(u) {
		req.AddCookie(ck)
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return "", fmt.Errorf("portlet: %s: fetch %s: %w", e.Name, target, err)
	}
	defer resp.Body.Close()
	jar.SetCookies(u, resp.Cookies())
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	content := string(body)
	if e.Type == "WebFormPortlet" {
		content = c.remapURLs(e.Name, target, content)
	}
	c.mu.Lock()
	c.lastURLs[sessionKey(user, e.Name)] = target
	c.cache[sessionKey(user, e.Name)] = content
	c.mu.Unlock()
	return content, nil
}

// CachedCopy returns the portlet's in-memory copy of its last page.
func (c *Container) CachedCopy(user, portlet string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.cache[sessionKey(user, portlet)]
	return s, ok
}

var (
	hrefPattern = regexp.MustCompile(`(href|action)\s*=\s*"([^"]*)"`)
)

// remapURLs rewrites link and form-action URLs so navigation stays inside
// the portlet window: each target becomes
// <base>/portlet?name=<n>&url=<absolute-target>.
func (c *Container) remapURLs(portletName, pageURL, content string) string {
	base, err := url.Parse(pageURL)
	if err != nil {
		return content
	}
	return hrefPattern.ReplaceAllStringFunc(content, func(m string) string {
		parts := hrefPattern.FindStringSubmatch(m)
		attr, target := parts[1], parts[2]
		if target == "" || strings.HasPrefix(target, "#") ||
			strings.HasPrefix(target, "javascript:") || strings.HasPrefix(target, "mailto:") {
			return m
		}
		abs, err := base.Parse(target)
		if err != nil {
			return m
		}
		remapped := fmt.Sprintf("%s/portlet?name=%s&url=%s",
			c.BasePath, url.QueryEscape(portletName), url.QueryEscape(abs.String()))
		return fmt.Sprintf(`%s="%s"`, attr, html.EscapeString(remapped))
	})
}

// RenderPage composes the user's portal page: the outer table contains one
// nested table per chosen portlet, each holding that portlet's content.
// Fetch failures render as an error cell rather than failing the page.
func (c *Container) RenderPage(user string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Computational Portal — %s</title></head><body>\n",
		html.EscapeString(user))
	b.WriteString(`<table class="portal" width="100%">` + "\n")
	for _, name := range c.Layout(user) {
		c.mu.RLock()
		e := c.entries[name]
		c.mu.RUnlock()
		b.WriteString("<tr><td>\n")
		fmt.Fprintf(&b, `<table class="portlet" border="1" width="100%%"><tr><th>%s</th></tr><tr><td>`+"\n",
			html.EscapeString(e.Title))
		content, err := c.fetch(user, e, http.MethodGet, e.URL, nil)
		if err != nil {
			fmt.Fprintf(&b, `<em>portlet error: %s</em>`, html.EscapeString(err.Error()))
		} else {
			b.WriteString(content)
		}
		b.WriteString("\n</td></tr></table>\n</td></tr>\n")
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

// userOf resolves the acting user from the request (the "user" query or
// form parameter; "guest" otherwise).
func userOf(r *http.Request) string {
	if u := r.URL.Query().Get("user"); u != "" {
		return u
	}
	if u := r.PostFormValue("user"); u != "" {
		return u
	}
	return "guest"
}

// ServeHTTP exposes the container: GET <base>/ renders the page; GET/POST
// <base>/portlet?name=N&url=U navigates inside a portlet window.
func (c *Container) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasSuffix(r.URL.Path, "/portlet"):
		c.servePortletNav(w, r)
	default:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = io.WriteString(w, c.RenderPage(userOf(r)))
	}
}

func (c *Container) servePortletNav(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	target := r.URL.Query().Get("url")
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		http.Error(w, "unknown portlet", http.StatusNotFound)
		return
	}
	if target == "" {
		target = e.URL
	}
	if e.Type != "WebFormPortlet" && r.Method == http.MethodPost {
		http.Error(w, "portlet does not accept form posts", http.StatusMethodNotAllowed)
		return
	}
	user := userOf(r)
	var form url.Values
	method := r.Method
	if method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		form = r.PostForm
	}
	content, err := c.fetch(user, e, method, target, form)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body><table class=\"portlet\" border=\"1\"><tr><th>%s</th></tr><tr><td>\n",
		html.EscapeString(e.Title))
	_, _ = io.WriteString(w, content)
	_, _ = io.WriteString(w, "\n</td></tr></table></body></html>\n")
}
