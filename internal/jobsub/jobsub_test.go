package jobsub

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/soap"
	"repro/internal/webflow"
)

const testUser = "mock@SDSC.EDU"

func newFixture(t *testing.T) (*grid.Grid, *GlobusrunClient) {
	t.Helper()
	g := grid.NewTestbed()
	g.Authorize(testUser)
	p := core.NewProvider("sdsc-ssp", "loopback://sdsc")
	p.MustRegister(NewGlobusrunService(g, testUser))
	cl := NewGlobusrunClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://sdsc/Globusrun")
	return g, cl
}

func TestRunPlainStrings(t *testing.T) {
	_, cl := newFixture(t)
	out, err := cl.Run("modi4.ncsa.uiuc.edu", "&(executable=/bin/hostname)(queue=debug)(maxWallTime=5)")
	if err != nil {
		t.Fatal(err)
	}
	if out != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("output = %q", out)
	}
}

func TestRunFailures(t *testing.T) {
	_, cl := newFixture(t)
	cases := []struct {
		name string
		host string
		rsl  string
		code string
	}{
		{"unknown host", "ghost.example.edu", "&(executable=/bin/date)", soap.ErrCodeNoSuchResource},
		{"bad rsl", "modi4.ncsa.uiuc.edu", "not rsl", soap.ErrCodeJobFailed},
		{"failing job", "modi4.ncsa.uiuc.edu", "&(executable=/bin/false)", soap.ErrCodeJobFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.Run(tc.host, tc.rsl)
			pe := soap.AsPortalError(err)
			if pe == nil || pe.Code != tc.code {
				t.Errorf("err = %v, want code %s", err, tc.code)
			}
		})
	}
}

func TestJobRequestDTDRoundTrip(t *testing.T) {
	jobs := []JobRequest{
		{Host: "modi4.ncsa.uiuc.edu", Spec: grid.JobSpec{
			Name: "j1", Executable: "/bin/echo", Args: []string{"a", "b"},
			Queue: "batch", Nodes: 4, WallTime: 30 * time.Minute, Stdin: "in.dat"}},
		{Host: "bluehorizon.sdsc.edu", Spec: grid.JobSpec{Executable: "/bin/date", Nodes: 1}},
	}
	parsed, err := ParseJobRequest(BuildJobRequest(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("jobs = %d", len(parsed))
	}
	if parsed[0].Spec.Name != "j1" || parsed[0].Spec.Nodes != 4 ||
		parsed[0].Spec.WallTime != 30*time.Minute || parsed[0].Spec.Stdin != "in.dat" {
		t.Errorf("job0 = %+v", parsed[0])
	}
	if len(parsed[0].Spec.Args) != 2 || parsed[0].Spec.Args[1] != "b" {
		t.Errorf("args = %q", parsed[0].Spec.Args)
	}
	if parsed[1].Host != "bluehorizon.sdsc.edu" || parsed[1].Spec.Nodes != 1 {
		t.Errorf("job1 = %+v", parsed[1])
	}
}

func TestParseJobRequestErrors(t *testing.T) {
	if _, err := ParseJobRequest(BuildJobRequest(nil)); err == nil {
		t.Error("empty request accepted")
	}
	doc := BuildJobRequest([]JobRequest{{Host: "h", Spec: grid.JobSpec{Executable: "/bin/date"}}})
	doc.Name = "wrong"
	if _, err := ParseJobRequest(doc); err == nil {
		t.Error("wrong root accepted")
	}
	noHost := BuildJobRequest([]JobRequest{{Host: "h", Spec: grid.JobSpec{Executable: "/bin/date"}}})
	noHost.Children[0].Child("host").Text = ""
	if _, err := ParseJobRequest(noHost); err == nil {
		t.Error("missing host accepted")
	}
	badCount := BuildJobRequest([]JobRequest{{Host: "h", Spec: grid.JobSpec{Executable: "/bin/date", Nodes: 2}}})
	badCount.Children[0].Child("count").Text = "NaN"
	if _, err := ParseJobRequest(badCount); err == nil {
		t.Error("bad count accepted")
	}
}

func TestRunXMLMultiJob(t *testing.T) {
	_, cl := newFixture(t)
	jobs := []JobRequest{
		{Host: "modi4.ncsa.uiuc.edu", Spec: grid.JobSpec{Executable: "/bin/hostname"}},
		{Host: "bluehorizon.sdsc.edu", Spec: grid.JobSpec{Executable: "/bin/echo", Args: []string{"multi", "job"}}},
		{Host: "modi4.ncsa.uiuc.edu", Spec: grid.JobSpec{Executable: "/bin/false"}},
		{Host: "ghost.example.edu", Spec: grid.JobSpec{Executable: "/bin/date"}},
	}
	results, err := cl.RunXML(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].State != grid.StateCompleted || results[0].Stdout != "modi4.ncsa.uiuc.edu\n" {
		t.Errorf("r0 = %+v", results[0])
	}
	if results[1].Stdout != "multi job\n" {
		t.Errorf("r1 = %+v", results[1])
	}
	// Per-job failures are reported in-band, not as a fault for the batch.
	if results[2].State != grid.StateFailed || results[2].ExitCode != 1 {
		t.Errorf("r2 = %+v", results[2])
	}
	if results[3].State != grid.StateFailed || !strings.Contains(results[3].Error, "no gatekeeper") {
		t.Errorf("r3 = %+v", results[3])
	}
}

func TestSubmitAndStatus(t *testing.T) {
	g, cl := newFixture(t)
	contact, err := cl.Submit("modi4.ncsa.uiuc.edu", "&(executable=/bin/sleep)(arguments=120)")
	if err != nil {
		t.Fatal(err)
	}
	state, err := cl.Status("modi4.ncsa.uiuc.edu", contact)
	if err != nil || state != grid.StateRunning {
		t.Errorf("state = %s, %v", state, err)
	}
	h, _ := g.Host("modi4.ncsa.uiuc.edu")
	h.Scheduler.Drain()
	state, err = cl.Status("modi4.ncsa.uiuc.edu", contact)
	if err != nil || state != grid.StateCompleted {
		t.Errorf("final state = %s, %v", state, err)
	}
	if _, err := cl.Status("modi4.ncsa.uiuc.edu", "https://x/9999.modi4"); err == nil {
		t.Error("unknown contact accepted")
	}
}

func TestNoPrincipalRejected(t *testing.T) {
	g := grid.NewTestbed()
	p := core.NewProvider("ssp", "loopback://x")
	p.MustRegister(NewGlobusrunService(g, "")) // no default principal
	cl := NewGlobusrunClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://x/Globusrun")
	_, err := cl.Run("modi4.ncsa.uiuc.edu", "&(executable=/bin/date)")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeAuthFailed {
		t.Errorf("err = %v", err)
	}
}

func TestParseSchedulerCommand(t *testing.T) {
	rsl, err := ParseSchedulerCommand("-q batch -n 4 -w 30 /usr/local/bin/matmul 256")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := grid.ParseRSL(rsl)
	if err != nil {
		t.Fatal(err)
	}
	spec := parsed.JobSpec()
	if spec.Queue != "batch" || spec.Nodes != 4 || spec.WallTime != 30*time.Minute {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Executable != "/usr/local/bin/matmul" || len(spec.Args) != 1 {
		t.Errorf("cmd = %q %q", spec.Executable, spec.Args)
	}
	for _, bad := range []string{"", "-q", "-n x /bin/date", "-w x /bin/date", "-q batch"} {
		if _, err := ParseSchedulerCommand(bad); err == nil {
			t.Errorf("ParseSchedulerCommand(%q) succeeded", bad)
		}
	}
}

// TestServiceComposition reproduces the paper's demonstration: "The
// interaction between the batch job submission Web Service and the
// Globusrun Web Service demonstrates a Web Service using another Web
// Service to perform a task." Both hops are real SOAP round trips.
func TestServiceComposition(t *testing.T) {
	_, globusrunClient := newFixture(t)
	batchProvider := core.NewProvider("batch-ssp", "loopback://batch")
	batchProvider.MustRegister(NewBatchJobService(globusrunClient))
	batchClient := NewBatchJobClient(&soap.LoopbackTransport{Handler: batchProvider.Dispatch}, "loopback://batch/BatchJobSubmission")

	out, err := batchClient.SubmitBatch("modi4.ncsa.uiuc.edu", "-q debug -w 5 /bin/echo composed services")
	if err != nil {
		t.Fatal(err)
	}
	if out != "composed services\n" {
		t.Errorf("output = %q", out)
	}
	// Errors from the inner service propagate with portal codes intact.
	_, err = batchClient.SubmitBatch("ghost.example.edu", "/bin/date")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeNoSuchResource {
		t.Errorf("propagated err = %v", err)
	}
	// Parse errors are client errors.
	_, err = batchClient.SubmitBatch("modi4.ncsa.uiuc.edu", "-n NaN /bin/date")
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeBadRequest {
		t.Errorf("parse err = %v", err)
	}
}

// TestWebFlowBridge reproduces the IU flavour: SOAP service wrapping the
// legacy CORBA WebFlow client over a live ORB connection.
func TestWebFlowBridge(t *testing.T) {
	g := grid.NewTestbed()
	g.Authorize("cyoun@IU.EDU")
	// Legacy WebFlow server.
	wfServer := webflow.NewServer()
	wfServer.RegisterServant(webflow.JobSubmissionKey, &webflow.JobSubmissionModule{Grid: g})
	if _, err := wfServer.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer wfServer.Close()
	// Bridge.
	orb := webflow.InitORB()
	defer orb.Shutdown()
	svc, err := NewWebFlowBridgeService(orb, wfServer.IOR(webflow.JobSubmissionKey), "cyoun@IU.EDU")
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProvider("iu-ssp", "loopback://iu")
	p.MustRegister(svc)
	cl := core.NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://iu/WebFlowJobSubmission", WebFlowBridgeContract())

	out, err := cl.CallText("runJob",
		soap.Str("host", "hpc-sge.iu.edu"),
		soap.Str("rsl", "&(executable=/bin/echo)(arguments=via webflow)"))
	if err != nil {
		t.Fatal(err)
	}
	if out != "via webflow\n" {
		t.Errorf("output = %q", out)
	}
	// Submit through the bridge.
	contact, err := cl.CallText("submitJob",
		soap.Str("host", "hpc-sge.iu.edu"),
		soap.Str("rsl", "&(executable=/bin/date)"))
	if err != nil || !strings.Contains(contact, "hpc-sge.iu.edu") {
		t.Errorf("contact = %q, %v", contact, err)
	}
	// ORB user exceptions become portal JobFailed errors.
	_, err = cl.CallText("runJob", soap.Str("host", "ghost.host"), soap.Str("rsl", "&(executable=/bin/date)"))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeJobFailed {
		t.Errorf("bridge err = %v", err)
	}
	// Bad IOR fails at construction.
	if _, err := NewWebFlowBridgeService(orb, "not-an-ior", "x"); err == nil {
		t.Error("bad IOR accepted")
	}
}
