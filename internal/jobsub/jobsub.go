// Package jobsub implements the job submission Web Services of Section
// 3.1, all three variants the paper describes:
//
//   - GlobusrunService (the SDSC flavour): a GSI-authenticated SOAP facade
//     over the grid gatekeeper, exposing "two different methods for job
//     execution, one that accepts the parameters of a job as a set of
//     plain strings and returns the results as a string, and one that
//     accepts an XML definition of a job" whose DTD "was designed to allow
//     multiple jobs to be included in a single XML string"; multi-job
//     requests execute sequentially.
//
//   - BatchJobService: "a method that takes string arguments that define
//     the host and batch scheduler commands to be run"; it parses those
//     strings and "uses the Globusrun job submission service previously
//     described to submit the job" — a Web Service using another Web
//     Service, the paper's service-composition demonstration.
//
//   - WebFlowBridgeService (the IU flavour): "a wrapper around a client
//     for the legacy CORBA-based WebFlow system", bridging SOAP to the
//     mini-ORB.
package jobsub

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/webflow"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// GlobusrunNS is the Globusrun service namespace.
const GlobusrunNS = "urn:gce:globusrun"

// GlobusrunContract returns the Globusrun WSDL interface.
func GlobusrunContract() *wsdl.Interface {
	return globusrunDef(nil, "").Interface()
}

// principalOf resolves the acting grid principal: the verified SAML
// principal when the SPP authenticates requests, else the configured
// default (unauthenticated deployments, e.g. the GCE testbed exercises).
func principalOf(ctx *core.Context, def string) string {
	if ctx.Principal != "" {
		return ctx.Principal
	}
	return def
}

// globusrunDef is the declarative Globusrun operation table bound to a
// grid. defaultPrincipal is used for unauthenticated calls; "" requires a
// verified principal on every call.
func globusrunDef(g *grid.Grid, defaultPrincipal string) *rpc.Def {
	fail := func(code, format string, a ...interface{}) error {
		return soap.NewPortalError("Globusrun", code, format, a...)
	}
	requirePrincipal := func(ctx *core.Context) (string, error) {
		p := principalOf(ctx, defaultPrincipal)
		if p == "" {
			return "", fail(soap.ErrCodeAuthFailed, "no authenticated principal and no default configured")
		}
		return p, nil
	}
	return &rpc.Def{
		Name: "Globusrun",
		NS:   GlobusrunNS,
		Doc:  "Secure, authenticated job execution on remote computational resources over the Grid.",
		Ops: []rpc.Op{
			{
				Name: "run",
				Doc:  "Runs one job described by plain strings; blocks and returns its output.",
				In:   []wsdl.Param{rpc.Str("host"), rpc.Str("rsl")},
				Out:  []wsdl.Param{rpc.Str("output")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					p, err := requirePrincipal(ctx)
					if err != nil {
						return nil, err
					}
					gk, err := g.Gatekeeper(in.Str("host"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					job, err := gk.Run(p, in.Str("rsl"))
					if err != nil {
						return nil, fail(soap.ErrCodeJobFailed, "%v", err)
					}
					if job.State != grid.StateCompleted {
						return nil, fail(soap.ErrCodeJobFailed, "job %s: %s (%s)", job.ID, job.State, job.Reason)
					}
					return rpc.Ret(job.Result.Stdout), nil
				},
			},
			{
				Name: "runXML",
				Doc:  "Runs one or more jobs from an XML job request, sequentially, returning XML results.",
				In:   []wsdl.Param{rpc.XML("request")},
				Out:  []wsdl.Param{rpc.XML("results")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					p, err := requirePrincipal(ctx)
					if err != nil {
						return nil, err
					}
					req := in.XML("request")
					if req == nil {
						return nil, fail(soap.ErrCodeBadRequest, "missing job request document")
					}
					jobs, err := ParseJobRequest(req)
					if err != nil {
						return nil, fail(soap.ErrCodeBadRequest, "%v", err)
					}
					results := xmlutil.New("jobResults")
					// Sequential execution, as the paper specifies.
					for i, jr := range jobs {
						results.Add(runOne(g, p, i, jr))
					}
					return rpc.Ret(results), nil
				},
			},
			{
				Name: "submit",
				Doc:  "Submits one job asynchronously and returns its contact string.",
				In:   []wsdl.Param{rpc.Str("host"), rpc.Str("rsl")},
				Out:  []wsdl.Param{rpc.Str("contact")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					p, err := requirePrincipal(ctx)
					if err != nil {
						return nil, err
					}
					gk, err := g.Gatekeeper(in.Str("host"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					contact, err := gk.Submit(p, in.Str("rsl"))
					if err != nil {
						return nil, fail(soap.ErrCodeJobFailed, "%v", err)
					}
					return rpc.Ret(contact), nil
				},
			},
			{
				Name:       "status",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("host"), rpc.Str("contact")},
				Out:        []wsdl.Param{rpc.Str("state")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					if _, err := requirePrincipal(ctx); err != nil {
						return nil, err
					}
					gk, err := g.Gatekeeper(in.Str("host"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					job, err := gk.Status(in.Str("contact"))
					if err != nil {
						return nil, fail(soap.ErrCodeNoSuchResource, "%v", err)
					}
					return rpc.Ret(string(job.State)), nil
				},
			},
		},
	}
}

// NewGlobusrunService builds the deployable Globusrun service over a grid
// from the declarative operation table. defaultPrincipal is used for
// unauthenticated calls; pass "" to require a verified principal on every
// call.
func NewGlobusrunService(g *grid.Grid, defaultPrincipal string) *core.Service {
	return globusrunDef(g, defaultPrincipal).MustBuild()
}

func runOne(g *grid.Grid, principal string, index int, jr JobRequest) *xmlutil.Element {
	el := xmlutil.New("jobResult").SetAttr("index", strconv.Itoa(index))
	fail := func(format string, a ...interface{}) *xmlutil.Element {
		el.AddText("state", string(grid.StateFailed))
		el.AddText("error", fmt.Sprintf(format, a...))
		return el
	}
	gk, err := g.Gatekeeper(jr.Host)
	if err != nil {
		return fail("%v", err)
	}
	job, err := gk.Run(principal, grid.FormatRSL(jr.Spec))
	if err != nil {
		return fail("%v", err)
	}
	el.AddText("state", string(job.State))
	el.AddText("jobID", job.ID)
	el.AddText("stdout", job.Result.Stdout)
	el.AddText("stderr", job.Result.Stderr)
	el.AddText("exitCode", strconv.Itoa(job.Result.ExitCode))
	if job.Reason != "" {
		el.AddText("error", job.Reason)
	}
	return el
}

// JobRequest is one job inside the XML multi-job DTD.
type JobRequest struct {
	// Host is the target machine.
	Host string
	// Spec is the job specification.
	Spec grid.JobSpec
}

// BuildJobRequest renders one or more job requests into the DTD's
// <jobRequest> document.
func BuildJobRequest(jobs []JobRequest) *xmlutil.Element {
	root := xmlutil.New("jobRequest")
	for _, jr := range jobs {
		j := xmlutil.New("job")
		j.AddText("host", jr.Host)
		j.AddText("executable", jr.Spec.Executable)
		for _, a := range jr.Spec.Args {
			j.AddText("argument", a)
		}
		if jr.Spec.Stdin != "" {
			j.AddText("stdin", jr.Spec.Stdin)
		}
		if jr.Spec.Queue != "" {
			j.AddText("queue", jr.Spec.Queue)
		}
		if jr.Spec.Nodes > 1 {
			j.AddText("count", strconv.Itoa(jr.Spec.Nodes))
		}
		if jr.Spec.WallTime > 0 {
			j.AddText("maxWallTime", strconv.Itoa(int(jr.Spec.WallTime/time.Minute)))
		}
		if jr.Spec.Name != "" {
			j.AddText("jobName", jr.Spec.Name)
		}
		root.Add(j)
	}
	return root
}

// ParseJobRequest parses a <jobRequest> document into its jobs.
func ParseJobRequest(root *xmlutil.Element) ([]JobRequest, error) {
	if root.Name != "jobRequest" {
		return nil, fmt.Errorf("jobsub: root element %q is not jobRequest", root.Name)
	}
	jobEls := root.ChildrenNamed("job")
	if len(jobEls) == 0 {
		return nil, fmt.Errorf("jobsub: request contains no jobs")
	}
	var out []JobRequest
	for i, j := range jobEls {
		jr := JobRequest{Host: j.ChildText("host")}
		if jr.Host == "" {
			return nil, fmt.Errorf("jobsub: job %d has no host", i)
		}
		jr.Spec.Executable = j.ChildText("executable")
		if jr.Spec.Executable == "" {
			return nil, fmt.Errorf("jobsub: job %d has no executable", i)
		}
		for _, a := range j.ChildrenNamed("argument") {
			jr.Spec.Args = append(jr.Spec.Args, a.Text)
		}
		jr.Spec.Stdin = j.ChildText("stdin")
		jr.Spec.Queue = j.ChildText("queue")
		jr.Spec.Name = j.ChildText("jobName")
		jr.Spec.Nodes = 1
		if c := j.Child("count"); c != nil {
			n, err := c.Int()
			if err != nil {
				return nil, fmt.Errorf("jobsub: job %d: bad count: %v", i, err)
			}
			jr.Spec.Nodes = n
		}
		if w := j.Child("maxWallTime"); w != nil {
			mins, err := w.Int()
			if err != nil {
				return nil, fmt.Errorf("jobsub: job %d: bad maxWallTime: %v", i, err)
			}
			jr.Spec.WallTime = time.Duration(mins) * time.Minute
		}
		out = append(out, jr)
	}
	return out, nil
}

// JobResult is one decoded entry of the XML results document.
type JobResult struct {
	// Index is the job's position in the request.
	Index int
	// State is the final lifecycle state.
	State grid.JobState
	// JobID is the scheduler ID (empty on pre-submission failure).
	JobID string
	// Stdout and Stderr are the captured streams.
	Stdout string
	Stderr string
	// ExitCode is the program exit status.
	ExitCode int
	// Error describes a failure.
	Error string
}

// ParseJobResults decodes the service's <jobResults> document.
func ParseJobResults(root *xmlutil.Element) ([]JobResult, error) {
	if root.Name != "jobResults" {
		return nil, fmt.Errorf("jobsub: root element %q is not jobResults", root.Name)
	}
	var out []JobResult
	for _, el := range root.ChildrenNamed("jobResult") {
		r := JobResult{
			State:  grid.JobState(el.ChildText("state")),
			JobID:  el.ChildText("jobID"),
			Stdout: el.ChildText("stdout"),
			Stderr: el.ChildText("stderr"),
			Error:  el.ChildText("error"),
		}
		r.Index, _ = strconv.Atoi(el.AttrDefault("index", "0"))
		if ec := el.Child("exitCode"); ec != nil {
			r.ExitCode, _ = ec.Int()
		}
		out = append(out, r)
	}
	return out, nil
}

// GlobusrunClient is a typed proxy to a Globusrun service.
type GlobusrunClient struct {
	c *core.Client
}

// NewGlobusrunClient binds to a Globusrun endpoint.
func NewGlobusrunClient(t soap.Transport, endpoint string) *GlobusrunClient {
	return &GlobusrunClient{c: core.NewClient(t, endpoint, GlobusrunContract())}
}

// Use adds a client interceptor (e.g. a SAML-attaching session).
func (cl *GlobusrunClient) Use(i core.ClientInterceptor) *GlobusrunClient {
	cl.c.Use(i)
	return cl
}

// Run executes one job synchronously and returns its stdout.
func (cl *GlobusrunClient) Run(host, rsl string) (string, error) {
	return cl.c.CallText("run", soap.Str("host", host), soap.Str("rsl", rsl))
}

// RunXML executes a multi-job request and returns the decoded results.
func (cl *GlobusrunClient) RunXML(jobs []JobRequest) ([]JobResult, error) {
	doc, err := cl.c.CallXMLCopy("runXML", soap.XMLDoc("request", BuildJobRequest(jobs)))
	if err != nil {
		return nil, err
	}
	return ParseJobResults(doc)
}

// Submit starts a job asynchronously.
func (cl *GlobusrunClient) Submit(host, rsl string) (string, error) {
	return cl.c.CallText("submit", soap.Str("host", host), soap.Str("rsl", rsl))
}

// Status polls a job by contact.
func (cl *GlobusrunClient) Status(host, contact string) (grid.JobState, error) {
	s, err := cl.c.CallText("status", soap.Str("host", host), soap.Str("contact", contact))
	return grid.JobState(s), err
}

// --- Batch job service (service composition) ---------------------------------

// BatchJobNS is the batch job service namespace.
const BatchJobNS = "urn:gce:batchjob"

// BatchJobContract returns the batch job submission interface: one method
// taking the host and scheduler command strings.
func BatchJobContract() *wsdl.Interface {
	return batchJobDef(nil).Interface()
}

// batchJobDef is the declarative batch job operation table delegating to
// a Globusrun client — the inter-service call the paper demonstrates.
func batchJobDef(globusrun *GlobusrunClient) *rpc.Def {
	return &rpc.Def{
		Name: "BatchJobSubmission",
		NS:   BatchJobNS,
		Doc:  "Submits batch jobs described by scheduler command strings; delegates to the Globusrun Web Service.",
		Ops: []rpc.Op{{
			Name: "submitBatch",
			Doc:  "Parses host and scheduler command strings and runs the job via Globusrun.",
			In:   []wsdl.Param{rpc.Str("host"), rpc.Str("command")},
			Out:  []wsdl.Param{rpc.Str("output")},
			Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
				rsl, err := ParseSchedulerCommand(in.Str("command"))
				if err != nil {
					return nil, soap.NewPortalError("BatchJobSubmission", soap.ErrCodeBadRequest, "%v", err)
				}
				out, err := globusrun.Run(in.Str("host"), rsl)
				if err != nil {
					if pe := soap.AsPortalError(err); pe != nil {
						return nil, pe
					}
					return nil, soap.NewPortalError("BatchJobSubmission", soap.ErrCodeJobFailed, "%v", err)
				}
				return rpc.Ret(out), nil
			},
		}},
	}
}

// ParseSchedulerCommand parses a qsub/bsub-flavoured command string of the
// form "[-q queue] [-n nodes] [-w minutes] executable [args...]" into RSL.
func ParseSchedulerCommand(command string) (string, error) {
	fields := strings.Fields(command)
	spec := grid.JobSpec{Nodes: 1}
	i := 0
	for i < len(fields) {
		switch fields[i] {
		case "-q":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -q requires a queue name")
			}
			spec.Queue = fields[i+1]
			i += 2
		case "-n":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -n requires a node count")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return "", fmt.Errorf("jobsub: bad node count %q", fields[i+1])
			}
			spec.Nodes = n
			i += 2
		case "-w":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -w requires minutes")
			}
			mins, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return "", fmt.Errorf("jobsub: bad walltime %q", fields[i+1])
			}
			spec.WallTime = time.Duration(mins) * time.Minute
			i += 2
		default:
			spec.Executable = fields[i]
			spec.Args = fields[i+1:]
			i = len(fields)
		}
	}
	if spec.Executable == "" {
		return "", fmt.Errorf("jobsub: command %q has no executable", command)
	}
	return grid.FormatRSL(spec), nil
}

// NewBatchJobService builds the batch job service from the declarative
// operation table.
func NewBatchJobService(globusrun *GlobusrunClient) *core.Service {
	return batchJobDef(globusrun).MustBuild()
}

// BatchJobClient is a typed proxy to the batch job service.
type BatchJobClient struct {
	c *core.Client
}

// NewBatchJobClient binds to a batch job service endpoint.
func NewBatchJobClient(t soap.Transport, endpoint string) *BatchJobClient {
	return &BatchJobClient{c: core.NewClient(t, endpoint, BatchJobContract())}
}

// SubmitBatch submits a scheduler command string.
func (cl *BatchJobClient) SubmitBatch(host, command string) (string, error) {
	return cl.c.CallText("submitBatch", soap.Str("host", host), soap.Str("command", command))
}

// --- WebFlow bridge service (IU flavour) --------------------------------------

// WebFlowBridgeNS is the IU bridge service namespace.
const WebFlowBridgeNS = "urn:gce:webflow-jobsub"

// WebFlowBridgeContract returns the IU job submission interface: the SOAP
// server methods "wrapped the existing WebFlow methods".
func WebFlowBridgeContract() *wsdl.Interface {
	return webflowBridgeDef(nil, "").Interface()
}

// webflowBridgeDef is the declarative SOAP-to-ORB bridge table forwarding
// to a resolved WebFlow module reference.
func webflowBridgeDef(ref *webflow.ObjectRef, defaultPrincipal string) *rpc.Def {
	fail := func(format string, a ...interface{}) error {
		return soap.NewPortalError("WebFlowJobSubmission", soap.ErrCodeJobFailed, format, a...)
	}
	return &rpc.Def{
		Name: "WebFlowJobSubmission",
		NS:   WebFlowBridgeNS,
		Doc:  "SOAP wrapper around the legacy CORBA-based WebFlow job submission module.",
		Ops: []rpc.Op{
			{
				Name: "runJob",
				In:   []wsdl.Param{rpc.Str("host"), rpc.Str("rsl")},
				Out:  []wsdl.Param{rpc.Str("output")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					p := principalOf(ctx, defaultPrincipal)
					res, err := ref.Invoke("runJob", p, in.Str("host"), in.Str("rsl"))
					if err != nil {
						return nil, fail("%v", err)
					}
					if len(res) < 2 || res[0] != string(grid.StateCompleted) {
						return nil, fail("webflow job state %v", res)
					}
					return rpc.Ret(res[1]), nil
				},
			},
			{
				Name: "submitJob",
				In:   []wsdl.Param{rpc.Str("host"), rpc.Str("rsl")},
				Out:  []wsdl.Param{rpc.Str("contact")},
				Handle: func(ctx *core.Context, in rpc.Args) ([]interface{}, error) {
					p := principalOf(ctx, defaultPrincipal)
					res, err := ref.Invoke("submitJob", p, in.Str("host"), in.Str("rsl"))
					if err != nil {
						return nil, fail("%v", err)
					}
					return rpc.Ret(res[0]), nil
				},
			},
		},
	}
}

// NewWebFlowBridgeService builds the SOAP-to-ORB bridge: it initialises a
// client ORB, resolves the WebFlow job submission module, and builds the
// descriptor table forwarding to it.
func NewWebFlowBridgeService(orb *webflow.ORB, moduleIOR, defaultPrincipal string) (*core.Service, error) {
	ref, err := orb.Resolve(moduleIOR)
	if err != nil {
		return nil, err
	}
	return webflowBridgeDef(ref, defaultPrincipal).Build()
}
